package flashwalker

// Public API facade: the implementation lives under internal/, and this
// file re-exports the types and entry points a downstream user needs —
// graph construction, walk specification, the FlashWalker simulator, the
// GraphWalker baseline, and the scaled dataset registry.

import (
	"context"

	"flashwalker/internal/baseline"
	"flashwalker/internal/core"
	"flashwalker/internal/errs"
	"flashwalker/internal/fault"
	"flashwalker/internal/graph"
	"flashwalker/internal/harness"
	"flashwalker/internal/sim"
	"flashwalker/internal/trace"
	"flashwalker/internal/walk"
)

// Re-exported types. Aliases keep the full method sets of the underlying
// implementations.
type (
	// Graph is an immutable directed graph in CSR form.
	Graph = graph.Graph
	// GraphBuilder accumulates edges and produces a Graph.
	GraphBuilder = graph.Builder
	// VertexID identifies a vertex.
	VertexID = graph.VertexID

	// WalkSpec selects the random-walk algorithm (kind, length, and the
	// kind-specific parameters).
	WalkSpec = walk.Spec
	// Walk is one walker's state (src, cur, hop).
	Walk = walk.Walk
	// WalkStats aggregates reference-executor outcomes.
	WalkStats = walk.Stats

	// Options are FlashWalker's Figure-9 feature toggles (walk query, hot
	// subgraphs, smart scheduling).
	Options = core.Options
	// EngineConfig holds the Table II accelerator parameters.
	EngineConfig = core.Config
	// RunConfig bundles everything one FlashWalker simulation needs.
	RunConfig = core.RunConfig
	// Result is a FlashWalker run's outcome and instrumentation.
	Result = core.Result
	// EnergyConfig and Energy estimate a run's energy from its counters.
	EnergyConfig = core.EnergyConfig
	Energy       = core.Energy
	// FaultConfig enables deterministic fault injection in the simulated
	// flash stack (set it on EngineConfig.Faults or BaselineConfig.Faults);
	// FaultCounters reports what was injected and how the engine responded.
	FaultConfig   = fault.Config
	FaultCounters = fault.Counters

	// BaselineConfig parameterizes the GraphWalker comparison system.
	BaselineConfig = baseline.Config
	// BaselineResult is a GraphWalker run's outcome.
	BaselineResult = baseline.Result

	// Dataset is one scaled analogue of the paper's Table IV graphs.
	Dataset = harness.Dataset

	// SimTime is a simulated duration in nanoseconds.
	SimTime = sim.Time

	// Tracer receives structured simulation events; TraceRecorder is the
	// in-memory implementation.
	Tracer        = trace.Tracer
	TraceRecorder = trace.Recorder
)

// Walk kinds.
const (
	// Unbiased walks sample neighbors uniformly.
	Unbiased = walk.Unbiased
	// Biased walks sample by edge weight (inverse transform sampling).
	Biased = walk.Biased
	// Restart walks stop with a per-hop probability (PPR-style).
	Restart = walk.Restart
	// SecondOrder walks use node2vec's p/q dynamic weights.
	SecondOrder = walk.SecondOrder
)

// AllOptions enables every FlashWalker optimization.
func AllOptions() Options { return core.AllOptions() }

// DefaultFaultConfig returns the representative enabled fault profile (2%
// read errors, 5% plane-busy stalls, bounded retry, sticky degradation).
func DefaultFaultConfig() FaultConfig { return fault.Default() }

// NewGraphBuilder creates a builder for a graph with numVertices vertices.
func NewGraphBuilder(numVertices uint64) *GraphBuilder { return graph.NewBuilder(numVertices) }

// GenerateRMAT builds a synthetic R-MAT graph with PaRMAT-default
// parameters.
func GenerateRMAT(vertices, edges, seed uint64) (*Graph, error) {
	return graph.RMAT(graph.DefaultRMAT(vertices, edges, seed))
}

// GeneratePowerLaw builds a power-law graph with the given skew exponent.
func GeneratePowerLaw(vertices, edges uint64, alpha float64, seed uint64) (*Graph, error) {
	return graph.PowerLaw(graph.PowerLawConfig{
		NumVertices: vertices, NumEdges: edges, Alpha: alpha, Seed: seed,
	})
}

// LoadGraph reads a graph from the binary format (see SaveGraph).
func LoadGraph(path string) (*Graph, error) { return graph.Load(path) }

// SaveGraph writes a graph in the binary format gengraph produces.
func SaveGraph(path string, g *Graph) error { return graph.Save(path, g) }

// Datasets returns the five scaled analogues of the paper's Table IV.
func Datasets() []Dataset { return harness.Datasets() }

// DatasetByName finds a registered dataset (TT-S, FS-S, CW-S, R2B-S,
// R8B-S).
func DatasetByName(name string) (Dataset, error) { return harness.DatasetByName(name) }

// DefaultRunConfig derives a proportionally scaled FlashWalker
// configuration for a dataset (Table II cycle times, scaled buffers).
func DefaultRunConfig(d Dataset, opts Options, numWalks int, seed uint64) RunConfig {
	return harness.FlashWalkerConfig(d, opts, numWalks, seed)
}

// DefaultBaselineConfig derives the scaled GraphWalker configuration
// (memory is the Figure-7 knob; harness.GWMem8GB is the default analogue).
func DefaultBaselineConfig(d Dataset, memBytes int64, seed uint64) BaselineConfig {
	return harness.GraphWalkerConfig(d, memBytes, seed)
}

// Scaled GraphWalker memory capacities (analogues of the paper's
// 4/8/16 GB).
const (
	BaselineMem4GB  = harness.GWMem4GB
	BaselineMem8GB  = harness.GWMem8GB
	BaselineMem16GB = harness.GWMem16GB
)

// Sentinel errors. Every failure from the entry points below wraps one of
// these, so callers classify with errors.Is instead of string matching.
var (
	// ErrCanceled reports a run halted by context cancellation. The
	// accompanying result, when non-nil, is a consistent partial snapshot
	// taken at the halting event boundary.
	ErrCanceled = errs.ErrCanceled
	// ErrInvalidConfig reports a rejected configuration or walk spec.
	ErrInvalidConfig = errs.ErrInvalidConfig
	// ErrUnknownDataset reports a dataset name missing from the registry.
	ErrUnknownDataset = errs.ErrUnknownDataset
)

// Progress is a live FlashWalker counter snapshot (RunConfig.OnProgress).
type Progress = core.Progress

// Simulate runs the FlashWalker in-storage accelerator on g. Canceling ctx
// halts the simulation at the next event boundary and returns the partial
// result along with an error wrapping ErrCanceled; an uncanceled run is
// bit-identical to one with context.Background().
//
// RunConfig.Cfg.Boards selects the device topology: 0 or 1 runs the classic
// single-board engine; N > 1 runs an N-board SSD array, each board owning a
// shard of the graph partitions, connected by a modeled inter-board fabric.
// Walk outcomes are identical across board counts (per-walk RNG streams);
// only the simulated timeline changes.
func Simulate(ctx context.Context, g *Graph, rc RunConfig) (*Result, error) {
	if rc.Cfg.Boards > 1 {
		a, err := core.NewArray(g, rc)
		if err != nil {
			return nil, err
		}
		return a.RunContext(ctx)
	}
	e, err := core.NewEngine(g, rc)
	if err != nil {
		return nil, err
	}
	return e.RunContext(ctx)
}

// SimulateBaseline runs the GraphWalker comparison system on g with
// numWalks walks starting at uniformly random vertices. Cancellation
// behaves as in Simulate.
func SimulateBaseline(ctx context.Context, g *Graph, cfg BaselineConfig, spec WalkSpec, numWalks int, startSeed uint64) (*BaselineResult, error) {
	e, err := baseline.New(g, cfg, spec, numWalks, startSeed)
	if err != nil {
		return nil, err
	}
	return e.RunContext(ctx)
}

// RunWalks executes walks directly on the graph (the reference CPU
// implementation, no hardware simulation): numWalks walks from uniformly
// random start vertices. The optional trace callback receives each walk's
// full path. Canceling ctx stops between walks and returns the partial
// stats with an error wrapping ErrCanceled.
func RunWalks(ctx context.Context, g *Graph, spec WalkSpec, numWalks int, seed uint64, traceFn func(i int, path []VertexID)) (*WalkStats, error) {
	ws := walk.NewWalks(spec, walk.UniformStarts(g, numWalks, seed), numWalks)
	return walk.RunContext(ctx, g, spec, ws, seed+1, traceFn)
}

// EstimateEnergy converts a FlashWalker result into a joule estimate using
// the default per-operation energies.
func EstimateEnergy(r *Result) Energy {
	return core.FlashWalkerEnergy(core.DefaultEnergy(), r)
}

// NewTraceRecorder returns an in-memory tracer to pass in
// RunConfig.Tracer.
func NewTraceRecorder() *TraceRecorder { return trace.NewRecorder() }
