package flashwalker

import (
	"context"
	"testing"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	g, err := GenerateRMAT(2048, 16384, 1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := DatasetByName("TT-S")
	if err != nil {
		t.Fatal(err)
	}
	// Borrow the dataset's scaled config shape but run on our own graph.
	rc := DefaultRunConfig(d, AllOptions(), 500, 1)
	res, err := Simulate(context.Background(), g, rc)
	if err != nil {
		t.Fatal(err)
	}
	if res.WalksFinished() != 500 {
		t.Fatalf("finished %d of 500", res.WalksFinished())
	}

	bl, err := SimulateBaseline(context.Background(), g, DefaultBaselineConfig(d, BaselineMem8GB, 1), rc.Spec, 500, 101)
	if err != nil {
		t.Fatal(err)
	}
	if bl.WalksFinished() != 500 {
		t.Fatalf("baseline finished %d", bl.WalksFinished())
	}
	if res.Time >= bl.Time {
		t.Errorf("FlashWalker (%v) not faster than baseline (%v)", res.Time, bl.Time)
	}
}

func TestPublicAPIReferenceWalks(t *testing.T) {
	g, err := GeneratePowerLaw(1024, 8192, 0.8, 2)
	if err != nil {
		t.Fatal(err)
	}
	spec := WalkSpec{Kind: Unbiased, Length: 6}
	paths := 0
	st, err := RunWalks(context.Background(), g, spec, 200, 3, func(i int, path []VertexID) { paths++ })
	if err != nil {
		t.Fatal(err)
	}
	if st.Started != 200 || paths != 200 {
		t.Fatalf("started %d, traced %d", st.Started, paths)
	}
}

func TestPublicAPIGraphIO(t *testing.T) {
	g, _ := GenerateRMAT(128, 512, 4)
	path := t.TempDir() + "/g.bin"
	if err := SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatal("round trip changed graph")
	}
}

func TestPublicAPIBuilder(t *testing.T) {
	bb := NewGraphBuilder(8)
	bb.AddEdge(0, 1)
	bb.AddWeightedEdge(1, 2, 3)
	g, err := bb.Build()
	if err != nil || g.OutDegree(0) != 1 || !g.Weighted() {
		t.Fatal("builder alias broken")
	}
}

func TestPublicAPITracingAndEnergy(t *testing.T) {
	g, _ := GenerateRMAT(1024, 8192, 5)
	d, _ := DatasetByName("FS-S")
	rec := NewTraceRecorder()
	rc := DefaultRunConfig(d, AllOptions(), 300, 1)
	rc.Tracer = rec
	res, err := Simulate(context.Background(), g, rc)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Fatal("no trace events")
	}
	e := EstimateEnergy(res)
	if e.Total() <= 0 {
		t.Fatal("no energy estimated")
	}
}

func TestPublicAPIDatasets(t *testing.T) {
	if len(Datasets()) != 5 {
		t.Fatal("dataset registry")
	}
	if _, err := DatasetByName("nope"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestPublicAPISecondOrder(t *testing.T) {
	g, _ := GenerateRMAT(512, 8192, 6)
	spec := WalkSpec{Kind: SecondOrder, Length: 6, P: 0.5, Q: 2}
	st, err := RunWalks(context.Background(), g, spec, 100, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Started != 100 {
		t.Fatal("second-order reference walks failed")
	}
}
