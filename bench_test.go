package flashwalker

// One benchmark per table and figure of the paper's evaluation section.
// Each benchmark runs its experiment at a reduced walk-count scale so the
// whole suite completes in minutes; cmd/experiments reproduces the same
// outputs at full scale. Custom metrics carry the figures' headline
// numbers (speedups, traffic ratios, straggler tails) into the benchmark
// output so `go test -bench=.` doubles as a results table.

import (
	"context"
	"fmt"
	"os"
	"testing"

	"flashwalker/internal/core"
	"flashwalker/internal/graph"
	"flashwalker/internal/harness"
	"flashwalker/internal/sim"
	"flashwalker/internal/walk"
)

// batchKernelDisabled turns the batched update kernel off for every
// engine-level bench in this file (FLASHWALKER_NO_BATCH=1). BENCH_PR7.json's
// "baseline" section was captured with it set, the "after" section without;
// outcomes are bit-identical either way, only wall-clock moves.
var batchKernelDisabled = os.Getenv("FLASHWALKER_NO_BATCH") == "1"

// benchScale reduces every experiment's walk counts (1.0 = the scaled
// defaults used by cmd/experiments).
const benchScale = 0.05

const benchSeed = 1

// benchWorkers runs the figure grids through the harness sweep pool at one
// worker per CPU; results are identical to serial, only wall-clock drops.
const benchWorkers = 0

// BenchmarkTable4Datasets regenerates Table IV: dataset statistics of the
// five scaled graphs (generation cost is what is measured; the registry
// caches them for the figure benchmarks).
func BenchmarkTable4Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Table4()
		if err != nil {
			b.Fatal(err)
		}
		var edges uint64
		for _, r := range rows {
			edges += r.E
		}
		b.ReportMetric(float64(edges), "edges")
	}
}

// BenchmarkFig1Breakdown regenerates Figure 1: GraphWalker's time-cost
// breakdown on the ClueWeb analogue. The headline metric is the fraction
// of time spent loading graph structure (the paper's motivation: it
// dominates).
func BenchmarkFig1Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Fig1(context.Background(), benchScale, benchSeed, benchWorkers)
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(100*last.LoadGraph, "load-graph-%")
	}
}

// BenchmarkFig5Speedup regenerates Figure 5: FlashWalker speedup over
// GraphWalker across all five datasets and a walk-count sweep.
func BenchmarkFig5Speedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Fig5(context.Background(), benchScale, benchSeed, benchWorkers)
		if err != nil {
			b.Fatal(err)
		}
		min, avg, max := harness.Fig5Summary(rows)
		b.ReportMetric(min, "speedup-min")
		b.ReportMetric(avg, "speedup-avg")
		b.ReportMetric(max, "speedup-max")
	}
}

// BenchmarkFig6Traffic regenerates Figure 6: flash read-traffic ratio and
// achieved flash bandwidth improvement at the fixed walk counts.
func BenchmarkFig6Traffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Fig6(context.Background(), benchScale, benchSeed, benchWorkers)
		if err != nil {
			b.Fatal(err)
		}
		var bwGain, traffic float64
		for _, r := range rows {
			bwGain += r.BandwidthGain
			traffic += r.TrafficReduction
		}
		n := float64(len(rows))
		b.ReportMetric(bwGain/n, "bw-gain-avg")
		b.ReportMetric(traffic/n, "traffic-reduction-avg")
	}
}

// BenchmarkFig7Memory regenerates Figure 7: speedup versus GraphWalker
// with the scaled 4/8/16 GB memory budgets.
func BenchmarkFig7Memory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Fig7(context.Background(), benchScale, benchSeed, benchWorkers)
		if err != nil {
			b.Fatal(err)
		}
		var at4, at16 float64
		var n4, n16 int
		for _, r := range rows {
			switch r.MemLabel {
			case "4GB":
				at4 += r.Speedup
				n4++
			case "16GB":
				at16 += r.Speedup
				n16++
			}
		}
		b.ReportMetric(at4/float64(n4), "speedup-4GB-avg")
		b.ReportMetric(at16/float64(n16), "speedup-16GB-avg")
	}
}

// BenchmarkFig8Resource regenerates Figure 8 on the ClueWeb analogue:
// binned flash/channel bandwidth and walk progression, with the
// straggler-tail fraction as the headline metric (the paper: ~90% of
// walks finish early, the rest dominates the run).
func BenchmarkFig8Resource(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := harness.Fig8(context.Background(), "CW-S", benchScale, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*s.StragglerTail(0.9), "straggler-tail-%")
		var peak float64
		for _, v := range s.ReadBW {
			if v > peak {
				peak = v
			}
		}
		b.ReportMetric(peak/1e9, "peak-read-GB/s")
	}
}

// BenchmarkFig9Ablation regenerates Figure 9: the incremental
// optimization study (baseline, +WQ, +WQ+HS, +WQ+HS+SS). It runs at a
// larger scale than the other benches: the optimizations amortize fixed
// costs (hot-subgraph preloads), so very small walk counts invert the
// effect the figure measures.
func BenchmarkFig9Ablation(b *testing.B) {
	const fig9Scale = 0.4
	for i := 0; i < b.N; i++ {
		rows, err := harness.Fig9(context.Background(), fig9Scale, benchSeed, benchWorkers)
		if err != nil {
			b.Fatal(err)
		}
		var full float64
		for _, r := range rows {
			full += r.WQHSSS
		}
		b.ReportMetric(full/float64(len(rows)), "all-opts-speedup-avg")
	}
}

// BenchmarkFlashWalkerTT measures a single FlashWalker run on the Twitter
// analogue (a unit of the Figure 5 grid, useful for profiling the
// simulator itself).
func BenchmarkFlashWalkerTT(b *testing.B) {
	d, err := harness.DatasetByName("TT-S")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := d.Graph(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var hops uint64
	for i := 0; i < b.N; i++ {
		res, err := harness.RunFlashWalker(context.Background(), d, core.AllOptions(), 5000, benchSeed, 0)
		if err != nil {
			b.Fatal(err)
		}
		hops += res.Hops
		b.ReportMetric(res.HopRate()/1e6, "sim-Mhops/s")
	}
	b.ReportMetric(float64(hops)/1e6/b.Elapsed().Seconds(), "wall-Mhops/s")
}

// BenchmarkGraphWalkerTT is the baseline counterpart of
// BenchmarkFlashWalkerTT.
func BenchmarkGraphWalkerTT(b *testing.B) {
	d, err := harness.DatasetByName("TT-S")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := d.Graph(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := harness.RunGraphWalker(context.Background(), d, harness.GWMem8GB, 5000, benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkArrayBoards measures the multi-board array on the multi-shard
// dataset at each board count of the scaling extension. The per-count
// sim-Mhops/s metric is the 1-board vs N-board step-rate comparison
// BENCH_PR6.json stores; speedup-vs-1board carries the simulated-time
// scaling alongside it. Walk outcomes are identical at every count, so
// the ratio isolates the fabric model's cost and the shard parallelism.
func BenchmarkArrayBoards(b *testing.B) {
	d, err := harness.DatasetByName("MB-S")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := d.Graph(); err != nil {
		b.Fatal(err)
	}
	const walks = 20_000
	var base sim.Time
	for _, nb := range harness.ExtBoardCounts {
		b.Run(fmt.Sprintf("boards=%d", nb), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := harness.RunFlashWalkerBoards(context.Background(), d, core.AllOptions(), walks, nb, benchSeed)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.HopRate()/1e6, "sim-Mhops/s")
				if nb == 1 {
					base = res.Time
				} else if base > 0 {
					b.ReportMetric(float64(base)/float64(res.Time), "speedup-vs-1board")
				}
			}
		})
	}
}

// BenchmarkEnergyExtension regenerates the energy-comparison extension
// experiment (the paper's §I energy motivation quantified).
func BenchmarkEnergyExtension(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.ExtEnergy(context.Background(), benchScale, benchSeed, benchWorkers)
		if err != nil {
			b.Fatal(err)
		}
		var ratio float64
		for _, r := range rows {
			ratio += r.Ratio
		}
		b.ReportMetric(ratio/float64(len(rows)), "energy-ratio-avg")
	}
}

// --- Ablation benches for the design choices DESIGN.md calls out. ---
// Each sweeps one modelling knob on the FS-S workload and reports the
// simulated time per setting, so the sensitivity of the headline results
// to that choice is measurable.

// runFSWith runs FS-S with a tweaked configuration.
func runFSWith(b *testing.B, mutate func(rc *core.RunConfig)) *core.Result {
	b.Helper()
	d, err := harness.DatasetByName("FS-S")
	if err != nil {
		b.Fatal(err)
	}
	g, err := d.Graph()
	if err != nil {
		b.Fatal(err)
	}
	rc := harness.FlashWalkerConfig(d, core.AllOptions(), 5000, benchSeed)
	rc.Cfg.DisableBatchKernel = batchKernelDisabled
	mutate(&rc)
	e, err := core.NewEngine(g, rc)
	if err != nil {
		b.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkAblationRovingInterval sweeps the channel-level roving-walk
// fetch interval (§III-B's "fixed time interval").
func BenchmarkAblationRovingInterval(b *testing.B) {
	for _, iv := range []sim.Time{500 * sim.Nanosecond, 2 * sim.Microsecond, 8 * sim.Microsecond, 32 * sim.Microsecond} {
		iv := iv
		b.Run(iv.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := runFSWith(b, func(rc *core.RunConfig) { rc.Cfg.RovingFetchInterval = iv })
				b.ReportMetric(res.Time.Seconds()*1e6, "sim-us")
			}
		})
	}
}

// BenchmarkAblationLoadBatching sweeps MinWalksToLoad (the scaled-density
// compensation documented in DESIGN.md §6 and EXPERIMENTS.md).
func BenchmarkAblationLoadBatching(b *testing.B) {
	for _, min := range []int{1, 4, 8, 32} {
		min := min
		b.Run(fmt.Sprintf("min=%d", min), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := runFSWith(b, func(rc *core.RunConfig) { rc.Cfg.MinWalksToLoad = min })
				b.ReportMetric(res.Time.Seconds()*1e6, "sim-us")
				b.ReportMetric(float64(res.Flash.ReadBytes)/(1<<20), "read-MiB")
			}
		})
	}
}

// BenchmarkAblationQueryCache sweeps the walk query cache size (§III-D).
func BenchmarkAblationQueryCache(b *testing.B) {
	for _, kb := range []int64{1, 4, 16} {
		kb := kb
		b.Run(fmt.Sprintf("%dKiB", kb), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := runFSWith(b, func(rc *core.RunConfig) { rc.Cfg.QueryCacheBytes = kb << 10 })
				b.ReportMetric(100*res.QueryCacheHitRate(), "hit-%")
				b.ReportMetric(res.Time.Seconds()*1e6, "sim-us")
			}
		})
	}
}

// BenchmarkAblationTablePorts sweeps the mapping-table bank count (the
// contention the query cache relieves).
func BenchmarkAblationTablePorts(b *testing.B) {
	for _, ports := range []int{1, 4, 16} {
		ports := ports
		b.Run(fmt.Sprintf("ports=%d", ports), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := runFSWith(b, func(rc *core.RunConfig) { rc.Cfg.TablePorts = ports })
				b.ReportMetric(res.Time.Seconds()*1e6, "sim-us")
			}
		})
	}
}

// BenchmarkSecondOrderWalks measures the in-storage dynamic (node2vec
// p/q) walk extension against first-order walks of the same shape: the
// overhead is the edge-filter probe traffic.
func BenchmarkSecondOrderWalks(b *testing.B) {
	var hops uint64
	for i := 0; i < b.N; i++ {
		res := runFSWith(b, func(rc *core.RunConfig) {
			rc.Spec = walk.Spec{Kind: walk.SecondOrder, Length: 6, P: 0.5, Q: 2}
		})
		hops += res.Hops
		b.ReportMetric(res.Time.Seconds()*1e6, "sim-us")
		b.ReportMetric(float64(res.FilterProbes), "filter-probes")
	}
	b.ReportMetric(float64(hops)/1e6/b.Elapsed().Seconds(), "wall-Mhops/s")
}

// BenchmarkBatchSecondOrder is the figure-scale workload the batched update
// kernel (internal/core/batch.go) targets: the FS-S second-order run at the
// full scaled walk count, where per-hop CPU — adjacency gathers and
// rejection-sampler bloom probes — dominates wall-clock. wall-Mhops/s is
// simulated hops retired per wall-clock second (host throughput; sim-us,
// the simulated timeline, is bit-identical with the kernel on or off).
// BENCH_PR7.json stores this bench unbatched (baseline) vs batched (after).
func BenchmarkBatchSecondOrder(b *testing.B) {
	d, err := harness.DatasetByName("FS-S")
	if err != nil {
		b.Fatal(err)
	}
	g, err := d.Graph()
	if err != nil {
		b.Fatal(err)
	}
	const walks = 40_000
	var hops uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Engine construction (partitioning, edge-filter build) is setup,
		// not step rate: only the walk drain is timed.
		b.StopTimer()
		rc := harness.FlashWalkerConfig(d, core.AllOptions(), walks, benchSeed)
		rc.Spec = walk.Spec{Kind: walk.SecondOrder, Length: 6, P: 0.5, Q: 2}
		rc.Cfg.DisableBatchKernel = batchKernelDisabled
		e, err := core.NewEngine(g, rc)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res, err := e.Run()
		if err != nil {
			b.Fatal(err)
		}
		hops += res.Hops
		b.ReportMetric(res.Time.Seconds()*1e6, "sim-us")
	}
	b.ReportMetric(float64(hops)/1e6/b.Elapsed().Seconds(), "wall-Mhops/s")
}

// BenchmarkAblationBiasedSampler compares the paper's ITS binary search
// against O(1) alias tables for biased walks (KnightKing's choice): the
// alias tables trade 2x per-edge metadata for constant-time sampling.
func BenchmarkAblationBiasedSampler(b *testing.B) {
	d, err := harness.DatasetByName("FS-S")
	if err != nil {
		b.Fatal(err)
	}
	gcfg := harness.Dataset{Name: "FS-W", IDBytes: 4, SubgraphBytes: d.SubgraphBytes}
	// A weighted FS-shaped graph.
	wg, err := weightedFS()
	if err != nil {
		b.Fatal(err)
	}
	for _, alias := range []bool{false, true} {
		alias := alias
		name := "its"
		if alias {
			name = "alias"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rc := harness.FlashWalkerConfig(gcfg, core.AllOptions(), 5000, benchSeed)
				rc.Spec = walk.Spec{Kind: walk.Biased, Length: 6}
				rc.UseAliasSampling = alias
				e, err := core.NewEngine(wg, rc)
				if err != nil {
					b.Fatal(err)
				}
				res, err := e.Run()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Time.Seconds()*1e6, "sim-us")
			}
		})
	}
}

var weightedFSCache *graph.Graph

func weightedFS() (*graph.Graph, error) {
	if weightedFSCache != nil {
		return weightedFSCache, nil
	}
	cfg := graph.RMATConfig{
		NumVertices: 16_016, NumEdges: 881_000,
		A: 0.48, B: 0.22, C: 0.22, D: 0.08,
		Noise: 0.05, RemoveDuplicates: true, Weighted: true, Seed: 42,
	}
	g, err := graph.RMAT(cfg)
	if err != nil {
		return nil, err
	}
	weightedFSCache = g
	return g, nil
}

// BenchmarkAblationAlpha sweeps Eq. 1's α (the Fig. 9 SS discussion: a
// lower α de-prioritizes buffered walks to relieve the channel bus).
func BenchmarkAblationAlpha(b *testing.B) {
	for _, alpha := range []float64{0.4, 1.2, 2.4} {
		alpha := alpha
		b.Run(fmt.Sprintf("alpha=%.1f", alpha), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := runFSWith(b, func(rc *core.RunConfig) { rc.Cfg.Alpha = alpha })
				b.ReportMetric(res.Time.Seconds()*1e6, "sim-us")
				b.ReportMetric(float64(res.PWBOverflows), "pwb-overflows")
			}
		})
	}
}
