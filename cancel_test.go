package flashwalker

import (
	"context"
	"errors"
	"testing"

	"flashwalker/internal/errs"
)

// A canceled context must halt Simulate at an event boundary and hand back
// a partial result whose error classifies via the re-exported sentinels.
func TestSimulateCancellation(t *testing.T) {
	g, err := GenerateRMAT(2048, 16384, 1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := DatasetByName("TT-S")
	if err != nil {
		t.Fatal(err)
	}
	rc := DefaultRunConfig(d, AllOptions(), 500, 1)
	rc.CheckpointEvery = 64 // halt promptly on the small run

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Simulate(ctx, g, rc)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("error %v does not wrap ErrCanceled", err)
	}
	var c *errs.Canceled
	if !errors.As(err, &c) {
		t.Fatal("errors.As failed to recover *errs.Canceled")
	}
	if c.Finished >= 500 {
		t.Errorf("canceled run claims %d finished walks", c.Finished)
	}
	if res == nil {
		t.Fatal("no partial result returned")
	}
	if res.WalksFinished() >= 500 {
		t.Errorf("partial result claims completion: %d finished", res.WalksFinished())
	}
}

// An uncanceled context must leave the run untouched: same result as the
// context-free path, bit for bit (the golden-seed digest test pins the
// full timeline; this checks the facade plumbing end to end).
func TestSimulateUncanceledIdentical(t *testing.T) {
	g, err := GenerateRMAT(1024, 8192, 7)
	if err != nil {
		t.Fatal(err)
	}
	d, err := DatasetByName("TT-S")
	if err != nil {
		t.Fatal(err)
	}
	rc := DefaultRunConfig(d, AllOptions(), 200, 1)
	base, err := Simulate(context.Background(), g, rc)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	withCtx, err := Simulate(ctx, g, rc)
	if err != nil {
		t.Fatal(err)
	}
	if base.Time != withCtx.Time || base.Hops != withCtx.Hops ||
		base.Completed != withCtx.Completed {
		t.Errorf("cancelable run diverged: %v/%d/%d vs %v/%d/%d",
			base.Time, base.Hops, base.Completed,
			withCtx.Time, withCtx.Hops, withCtx.Completed)
	}
}

func TestRunWalksCancellation(t *testing.T) {
	g, err := GeneratePowerLaw(1024, 8192, 0.8, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st, err := RunWalks(ctx, g, WalkSpec{Kind: Unbiased, Length: 6}, 1000, 3, nil)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("error %v does not wrap ErrCanceled", err)
	}
	if st == nil {
		t.Fatal("no partial stats returned")
	}
}
