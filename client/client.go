// Package client is the typed Go client for the flashwalkerd v1 HTTP API.
// It covers every /v1 route: job submission, status, listing, cancellation,
// the live completed-walk stream, DeepWalk corpora, and the graph registry.
//
// Errors returned by the server are decoded from the v1 error envelope
// into *APIError, so callers can switch on the stable machine-readable
// code (or the HTTP status) instead of parsing messages:
//
//	j, err := c.Submit(ctx, client.JobSpec{Graph: "TT-S"})
//	var apiErr *client.APIError
//	if errors.As(err, &apiErr) && apiErr.Code == "queue_full" { ... retry ... }
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"flashwalker/internal/service"
)

// Re-exported API types: the wire shapes are defined next to the handlers
// they serve.
type (
	JobSpec    = service.JobSpec
	JobStatus  = service.JobStatus
	JobResult  = service.JobResult
	Progress   = service.Progress
	WalkRecord = service.WalkRecord
	StreamEnd  = service.StreamEnd
	GraphInfo  = service.GraphInfo
)

// Job states and kinds, mirrored for callers that don't import the
// service package.
const (
	StateQueued   = service.StateQueued
	StateRunning  = service.StateRunning
	StateDone     = service.StateDone
	StateCanceled = service.StateCanceled
	StateFailed   = service.StateFailed

	KindFlashWalker = service.KindFlashWalker
	KindGraphWalker = service.KindGraphWalker
	KindDeepWalk    = service.KindDeepWalk
)

// APIError is a decoded v1 error envelope plus the HTTP status it rode on.
type APIError struct {
	Status  int    // HTTP status code
	Code    string // stable machine-readable code ("queue_full", ...)
	Message string
	JobID   string
}

func (e *APIError) Error() string {
	if e.JobID != "" {
		return fmt.Sprintf("flashwalker api: %s (%d, job %s): %s", e.Code, e.Status, e.JobID, e.Message)
	}
	return fmt.Sprintf("flashwalker api: %s (%d): %s", e.Code, e.Status, e.Message)
}

// Client talks to one flashwalkerd server.
type Client struct {
	base string
	hc   *http.Client
}

// New returns a client for the server at base (e.g.
// "http://127.0.0.1:8080"). The optional http.Client configures transport
// and timeouts; nil uses http.DefaultClient. Note a client-level Timeout
// applies to the whole response body and will cut long-lived Stream calls
// short — prefer a context deadline, or a dedicated client for streaming.
func New(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

// do issues one request and decodes the response into out (ignored when
// nil). Non-2xx responses become *APIError.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return decodeAPIError(resp)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decoding %s %s response: %w", method, path, err)
	}
	return nil
}

// decodeAPIError turns a non-2xx response into *APIError, degrading
// gracefully when the body is not a well-formed envelope.
func decodeAPIError(resp *http.Response) error {
	apiErr := &APIError{Status: resp.StatusCode, Code: "internal"}
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
			JobID   string `json:"job_id"`
		} `json:"error"`
	}
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if json.Unmarshal(data, &env) == nil && env.Error.Code != "" {
		apiErr.Code = env.Error.Code
		apiErr.Message = env.Error.Message
		apiErr.JobID = env.Error.JobID
	} else {
		apiErr.Message = strings.TrimSpace(string(data))
	}
	return apiErr
}

// Submit posts a job for execution.
func (c *Client) Submit(ctx context.Context, spec JobSpec) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs", spec, &st)
	return st, err
}

// Get returns one job's status, live progress included.
func (c *Client) Get(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &st)
	return st, err
}

// Cancel requests cancellation and returns the job's status.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs/"+url.PathEscape(id)+"/cancel", nil, &st)
	return st, err
}

// ListQuery filters and pages List.
type ListQuery struct {
	Status string // keep only jobs in this state
	Tenant string // keep only this tenant's jobs
	Limit  int    // page size; 0 uses the server default (100)
	Cursor string // next-cursor from the previous page
}

// JobsPage is one page of the job listing, oldest first.
type JobsPage struct {
	Jobs []JobStatus `json:"jobs"`
	// NextCursor is non-empty exactly when more matching jobs exist.
	NextCursor string `json:"next_cursor"`
}

// List returns one page of jobs.
func (c *Client) List(ctx context.Context, q ListQuery) (JobsPage, error) {
	v := url.Values{}
	if q.Status != "" {
		v.Set("status", q.Status)
	}
	if q.Tenant != "" {
		v.Set("tenant", q.Tenant)
	}
	if q.Limit > 0 {
		v.Set("limit", strconv.Itoa(q.Limit))
	}
	if q.Cursor != "" {
		v.Set("cursor", q.Cursor)
	}
	path := "/v1/jobs"
	if len(v) > 0 {
		path += "?" + v.Encode()
	}
	var page JobsPage
	err := c.do(ctx, http.MethodGet, path, nil, &page)
	return page, err
}

// ListAll walks every page of the filtered listing (ignoring q.Cursor).
func (c *Client) ListAll(ctx context.Context, q ListQuery) ([]JobStatus, error) {
	var all []JobStatus
	q.Cursor = ""
	for {
		page, err := c.List(ctx, q)
		if err != nil {
			return all, err
		}
		all = append(all, page.Jobs...)
		if page.NextCursor == "" {
			return all, nil
		}
		q.Cursor = page.NextCursor
	}
}

// Wait polls until the job reaches a terminal state (or ctx is done) and
// returns its final status.
func (c *Client) Wait(ctx context.Context, id string) (JobStatus, error) {
	for {
		st, err := c.Get(ctx, id)
		if err != nil {
			return st, err
		}
		switch st.State {
		case StateDone, StateCanceled, StateFailed:
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// Stream is a live NDJSON walk stream being consumed.
type Stream struct {
	resp *http.Response
	sc   *bufio.Scanner
	end  *StreamEnd
	next uint64
	err  error
}

// Stream opens the job's completed-walk stream at offset from (walks with
// seq >= from). The stream delivers records while the job runs; close it
// (or cancel ctx) to detach early. On server-side completion, End reports
// the job's terminal state and Next the offset to resume from.
func (c *Client) Stream(ctx context.Context, id string, from uint64) (*Stream, error) {
	path := c.base + "/v1/jobs/" + url.PathEscape(id) + "/stream"
	if from > 0 {
		path += "?from=" + strconv.FormatUint(from, 10)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, decodeAPIError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	return &Stream{resp: resp, sc: sc, next: from}, nil
}

// Next returns the next walk record, or ok=false when the stream is over
// (trailer received, connection lost, or context canceled) — check Err
// and End then.
func (s *Stream) Next() (WalkRecord, bool) {
	for s.end == nil && s.err == nil && s.sc.Scan() {
		line := bytes.TrimSpace(s.sc.Bytes())
		if len(line) == 0 {
			continue
		}
		// The trailer is the only frame without a "src" field; records are
		// the only frames with one. Distinguish on the state field.
		var rec WalkRecord
		if bytes.Contains(line, []byte(`"state"`)) {
			var end StreamEnd
			if json.Unmarshal(line, &end) == nil && end.State != "" {
				s.end = &end
				return WalkRecord{}, false
			}
		}
		if err := json.Unmarshal(line, &rec); err != nil {
			s.err = fmt.Errorf("client: bad stream frame %q: %w", line, err)
			return WalkRecord{}, false
		}
		s.next = rec.Seq + 1
		return rec, true
	}
	if s.end == nil && s.err == nil {
		s.err = s.sc.Err() // nil on clean EOF without trailer (server gone)
	}
	return WalkRecord{}, false
}

// End returns the server's trailer frame, nil if the stream ended without
// one (connection cut — resume from Next()).
func (s *Stream) End() *StreamEnd { return s.end }

// NextSeq returns the offset to resume from: one past the last record
// received.
func (s *Stream) NextSeq() uint64 { return s.next }

// Err reports a mid-stream failure (bad frame, broken connection).
func (s *Stream) Err() error { return s.err }

// Close detaches from the stream.
func (s *Stream) Close() error { return s.resp.Body.Close() }

// Corpus fetches a finished "deepwalk" job's corpus text and its
// server-reported SHA-256 (hex).
func (c *Client) Corpus(ctx context.Context, id string) (data []byte, sha string, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/v1/jobs/"+url.PathEscape(id)+"/corpus", nil)
	if err != nil {
		return nil, "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, "", decodeAPIError(resp)
	}
	data, err = io.ReadAll(resp.Body)
	return data, resp.Header.Get("X-Corpus-SHA256"), err
}

// Graphs lists the registered graphs.
func (c *Client) Graphs(ctx context.Context) ([]GraphInfo, error) {
	var out []GraphInfo
	err := c.do(ctx, http.MethodGet, "/v1/graphs", nil, &out)
	return out, err
}

// LoadGraph registers a graph file on the server under name.
func (c *Client) LoadGraph(ctx context.Context, name, path string) (GraphInfo, error) {
	var gi GraphInfo
	err := c.do(ctx, http.MethodPost, "/v1/graphs",
		map[string]string{"name": name, "path": path}, &gi)
	return gi, err
}

// Health checks the liveness probe.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Metrics fetches the Prometheus text exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", decodeAPIError(resp)
	}
	data, err := io.ReadAll(resp.Body)
	return string(data), err
}
