// Command benchdiff maintains the repo's benchmark baselines (BENCH_*.json)
// and reports perf movement between a committed baseline and a fresh run.
//
// Subcommands:
//
//	parse             read `go test -bench` output on stdin, print the
//	                  benchmark section as JSON (paste into a BENCH file)
//	diff <file>       print baseline-vs-after ratios for a BENCH file whose
//	                  "baseline" and "after" sections are both filled
//	fmtbench <file> <section>
//	                  re-emit a section in standard benchmark text format,
//	                  suitable for benchstat against a fresh run
//	gate <file> [section]
//	                  read a fresh `go test -bench` run on stdin and compare
//	                  it against the stored section (default "after"): exit 1
//	                  when any benchmark regresses by more than 25% — on its
//	                  step-rate metric (wall-Mhops/s / sim-Mhops/s) when the
//	                  stored entry has one, on ns/op otherwise. Stored
//	                  benchmarks missing from the fresh run only warn, so a
//	                  narrowed CI run cannot fail on absence.
//
// diff never fails the build: the comparison is informational. gate is the
// CI bench lane's soft gate — generous enough (25%) that shared-runner
// noise passes, tight enough that a real step-rate regression goes red.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// benchResult is one benchmark's figures; metrics holds the custom
// b.ReportMetric units (sim-Mhops/s, speedup-avg, ...).
type benchResult struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics"`
}

// benchFile mirrors BENCH_*.json.
type benchFile struct {
	Comment   string                 `json:"comment"`
	Baseline  map[string]benchResult `json:"baseline"`
	After     map[string]benchResult `json:"after"`
	Unmatched map[string]any         `json:"-"`
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "parse":
		results := parseBench(os.Stdin)
		out, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(out))
	case "diff":
		if len(os.Args) != 3 {
			usage()
		}
		diff(os.Args[2])
	case "fmtbench":
		if len(os.Args) != 4 {
			usage()
		}
		fmtbench(os.Args[2], os.Args[3])
	case "gate":
		section := "after"
		switch len(os.Args) {
		case 3:
		case 4:
			section = os.Args[3]
		default:
			usage()
		}
		gate(os.Args[2], section)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: benchdiff parse | diff <file> | fmtbench <file> <section> | gate <file> [section]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}

// parseBench extracts benchmark lines from `go test -bench` output. A line
// looks like:
//
//	BenchmarkFoo-8   2   64603502 ns/op   38.45 sim-Mhops/s   7468328 B/op   9452 allocs/op
func parseBench(f *os.File) map[string]benchResult {
	results := map[string]benchResult{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		// Strip the -GOMAXPROCS suffix so names are machine-independent.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		r := benchResult{Metrics: map[string]float64{}}
		// fields[1] is the iteration count; the rest are (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = val
			case "B/op":
				r.BytesPerOp = val
			case "allocs/op":
				r.AllocsPerOp = val
			default:
				r.Metrics[unit] = val
			}
		}
		results[name] = r
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	return results
}

func loadFile(path string) benchFile {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var bf benchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		fatal(err)
	}
	return bf
}

// diff prints per-benchmark before/after ratios. Speedups > 1 mean the
// "after" side is faster / lighter.
func diff(path string) {
	bf := loadFile(path)
	names := make([]string, 0, len(bf.Baseline))
	for name := range bf.Baseline {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("%-28s %14s %14s %9s %14s\n", "benchmark", "base", "after", "ratio", "allocs base->after")
	for _, name := range names {
		base := bf.Baseline[name]
		after, ok := bf.After[name]
		if !ok {
			fmt.Printf("%-28s %14.0f %14s\n", name, base.NsPerOp, "(missing)")
			continue
		}
		ratio := 0.0
		if after.NsPerOp > 0 {
			ratio = base.NsPerOp / after.NsPerOp
		}
		allocRatio := ""
		if after.AllocsPerOp > 0 {
			allocRatio = fmt.Sprintf("%.0f -> %.0f (%.1fx)",
				base.AllocsPerOp, after.AllocsPerOp, base.AllocsPerOp/after.AllocsPerOp)
		}
		fmt.Printf("%-28s %12.1fms %12.1fms %8.2fx %s\n",
			name, base.NsPerOp/1e6, after.NsPerOp/1e6, ratio, allocRatio)
	}
}

// fmtbench re-emits a stored section as standard benchmark lines so
// benchstat can compare it against a fresh run.
func fmtbench(path, section string) {
	bf := loadFile(path)
	var m map[string]benchResult
	switch section {
	case "baseline":
		m = bf.Baseline
	case "after":
		m = bf.After
	default:
		fatal(fmt.Errorf("unknown section %q (want baseline or after)", section))
	}
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		r := m[name]
		line := fmt.Sprintf("%s 1 %.0f ns/op", name, r.NsPerOp)
		if r.BytesPerOp > 0 {
			line += fmt.Sprintf(" %.0f B/op", r.BytesPerOp)
		}
		if r.AllocsPerOp > 0 {
			line += fmt.Sprintf(" %.0f allocs/op", r.AllocsPerOp)
		}
		units := make([]string, 0, len(r.Metrics))
		for u := range r.Metrics {
			units = append(units, u)
		}
		sort.Strings(units)
		for _, u := range units {
			line += fmt.Sprintf(" %g %s", r.Metrics[u], u)
		}
		fmt.Println(line)
	}
}

// gateTolerance is the soft gate's regression budget: a benchmark fails
// when it loses more than 25% of its stored step rate (or gains more than
// 25% ns/op when no step-rate metric is stored).
const gateTolerance = 1.25

// stepRateUnits are the throughput metrics the gate prefers over raw
// ns/op, in priority order (higher values are better).
var stepRateUnits = []string{"wall-Mhops/s", "sim-Mhops/s"}

// gate compares a fresh benchmark run (stdin) against the stored section
// and exits non-zero on a >25% regression. Step-rate metrics are judged
// when stored — they are what the baselines exist to protect — with ns/op
// as the fallback; missing benchmarks warn instead of failing so CI can
// gate on a subset run.
func gate(path, section string) {
	bf := loadFile(path)
	var stored map[string]benchResult
	switch section {
	case "baseline":
		stored = bf.Baseline
	case "after":
		stored = bf.After
	default:
		fatal(fmt.Errorf("unknown section %q (want baseline or after)", section))
	}
	fresh := parseBench(os.Stdin)

	names := make([]string, 0, len(stored))
	for name := range stored {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	for _, name := range names {
		base := stored[name]
		got, ok := fresh[name]
		if !ok {
			fmt.Printf("gate: %-32s WARN: missing from fresh run\n", name)
			continue
		}
		judged := false
		for _, unit := range stepRateUnits {
			b, f := base.Metrics[unit], got.Metrics[unit]
			if b <= 0 || f <= 0 {
				continue
			}
			judged = true
			if b/f > gateTolerance {
				fmt.Printf("gate: %-32s FAIL: %s %.4g -> %.4g (-%.0f%%, budget 25%%)\n",
					name, unit, b, f, (1-f/b)*100)
				failed = true
			} else {
				fmt.Printf("gate: %-32s ok: %s %.4g -> %.4g\n", name, unit, b, f)
			}
			break
		}
		if judged {
			continue
		}
		if base.NsPerOp > 0 && got.NsPerOp > 0 {
			if got.NsPerOp/base.NsPerOp > gateTolerance {
				fmt.Printf("gate: %-32s FAIL: ns/op %.4g -> %.4g (+%.0f%%, budget 25%%)\n",
					name, base.NsPerOp, got.NsPerOp, (got.NsPerOp/base.NsPerOp-1)*100)
				failed = true
			} else {
				fmt.Printf("gate: %-32s ok: ns/op %.4g -> %.4g\n", name, base.NsPerOp, got.NsPerOp)
			}
		}
	}
	if failed {
		fmt.Println("gate: step-rate regression beyond the 25% budget")
		os.Exit(1)
	}
	fmt.Println("gate: all benchmarks within the 25% budget")
}
