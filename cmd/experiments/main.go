// Command experiments regenerates every table and figure of the
// FlashWalker paper's evaluation section against the scaled datasets.
//
// Usage:
//
//	experiments -fig 1,5,6,7,8,9 -table 1,2,3,4 [-scale 1.0] [-seed 1]
//	experiments -all [-parallel N]
//	experiments -fig 8 -dataset CW-S
//
// -scale multiplies every walk count (use 0.1 for a quick pass); the
// tables are configuration/statistics only and ignore it. -parallel sets
// the sweep worker count (0 = one per CPU); every grid point is an
// independent seed-deterministic simulation, so the output is identical
// at any worker count.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"flashwalker/internal/harness"
)

func main() {
	figs := flag.String("fig", "", "comma-separated figure numbers to run (1,5,6,7,8,9)")
	tables := flag.String("table", "", "comma-separated table numbers to print (1,2,3,4)")
	energy := flag.Bool("energy", false, "run the energy-comparison extension experiment")
	algos := flag.Bool("algorithms", false, "run the walk-algorithm extension experiment")
	faults := flag.Bool("faults", false, "run the fault-injection extension experiment (clean vs default fault profile)")
	resume := flag.Bool("resume", false, "run the snapshot/resume extension experiment (uninterrupted vs snapshot->resume)")
	boards := flag.Bool("boards", false, "run the multi-board array scaling extension experiment (1/2/4/8 boards on MB-S)")
	batch := flag.Bool("batch", false, "run the batched-update-kernel before/after experiment (per-walk vs batched on FS-S second-order)")
	all := flag.Bool("all", false, "run every table and figure")
	scale := flag.Float64("scale", 1.0, "walk-count scale factor")
	seed := flag.Uint64("seed", 1, "root seed")
	dataset := flag.String("dataset", "CW-S", "dataset for figure 8")
	parallel := flag.Int("parallel", 0, "sweep worker count (0 = GOMAXPROCS)")
	csvDir := flag.String("csv", "", "also write machine-readable CSV files to this directory")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
	}
	memProfilePath = *memprofile

	// Ctrl-C (or SIGTERM) cancels in-flight sweeps at the next event
	// boundary; partial figures still flush their profiles on the way out.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fail(err)
		}
	}
	csvOut = *csvDir

	if *all {
		*figs = "1,5,6,7,8,9"
		*tables = "1,2,3,4"
	}
	if *figs == "" && *tables == "" && !*energy && !*algos && !*faults && !*resume && !*boards && !*batch {
		flag.Usage()
		os.Exit(2)
	}

	for _, t := range splitList(*tables) {
		if err := runTable(t); err != nil {
			fail(err)
		}
	}
	for _, f := range splitList(*figs) {
		if err := runFig(ctx, f, *scale, *seed, *dataset, *parallel); err != nil {
			fail(err)
		}
	}
	if *energy {
		rows, err := harness.ExtEnergy(ctx, *scale, *seed, *parallel)
		if err != nil {
			fail(err)
		}
		fmt.Println(harness.FormatExtEnergy(rows))
		if err := saveCSV("energy.csv", func(w *os.File) error {
			return harness.EnergyCSV(w, rows)
		}); err != nil {
			fail(err)
		}
	}
	if *algos {
		rows, err := harness.ExtAlgorithms(ctx, *scale, *seed, *parallel)
		if err != nil {
			fail(err)
		}
		fmt.Println(harness.FormatExtAlgorithms(rows))
	}
	if *faults {
		rows, err := harness.ExtFaults(ctx, *scale, *seed, *parallel)
		if err != nil {
			fail(err)
		}
		fmt.Println(harness.FormatExtFaults(rows))
		if err := saveCSV("faults.csv", func(w *os.File) error {
			return harness.FaultsCSV(w, rows)
		}); err != nil {
			fail(err)
		}
	}
	if *resume {
		rows, err := harness.ExtResume(ctx, *scale, *seed, *parallel)
		if err != nil {
			fail(err)
		}
		fmt.Println(harness.FormatExtResume(rows))
		if err := saveCSV("resume.csv", func(w *os.File) error {
			return harness.ResumeCSV(w, rows)
		}); err != nil {
			fail(err)
		}
	}
	if *boards {
		rows, err := harness.ExtBoards(ctx, *scale, *seed, *parallel)
		if err != nil {
			fail(err)
		}
		fmt.Println(harness.FormatExtBoards(rows))
		if err := saveCSV("boards.csv", func(w *os.File) error {
			return harness.BoardsCSV(w, rows)
		}); err != nil {
			fail(err)
		}
	}
	if *batch {
		rows, err := harness.ExtBatch(ctx, *scale, *seed)
		if err != nil {
			fail(err)
		}
		fmt.Println(harness.FormatExtBatch(rows))
		if err := saveCSV("batch.csv", func(w *os.File) error {
			return harness.BatchCSV(w, rows)
		}); err != nil {
			fail(err)
		}
	}
	stopProfiles()
}

// memProfilePath, when non-empty, is where the allocation profile is
// written on exit.
var memProfilePath string

// stopProfiles flushes any requested profiles; it runs on both the normal
// and the error exit path so partial runs still yield usable profiles.
func stopProfiles() {
	pprof.StopCPUProfile()
	if memProfilePath == "" {
		return
	}
	f, err := os.Create(memProfilePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		return
	}
	runtime.GC() // settle live heap so the profile reflects retained memory
	if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
	}
}

// csvOut, when non-empty, is the directory CSV copies of every result are
// written to.
var csvOut string

// saveCSV writes one figure's CSV next to the text output.
func saveCSV(name string, write func(w *os.File) error) error {
	if csvOut == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(csvOut, name))
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	// A failed close loses buffered CSV data; surface it instead of
	// reporting a clean run with a truncated file.
	return f.Close()
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

func runTable(t string) error {
	switch t {
	case "1":
		fmt.Println(harness.Table1())
	case "2":
		fmt.Println(harness.Table2())
	case "3":
		fmt.Println(harness.Table3())
	case "4":
		rows, err := harness.Table4()
		if err != nil {
			return err
		}
		fmt.Println(harness.FormatTable4(rows))
		if err := saveCSV("table4.csv", func(f *os.File) error {
			return harness.Table4CSV(f, rows)
		}); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown table %q (have 1-4)", t)
	}
	return nil
}

func runFig(ctx context.Context, f string, scale float64, seed uint64, dataset string, parallel int) error {
	switch f {
	case "1":
		rows, err := harness.Fig1(ctx, scale, seed, parallel)
		if err != nil {
			return err
		}
		fmt.Println(harness.FormatFig1(rows))
		return saveCSV("fig1.csv", func(w *os.File) error { return harness.Fig1CSV(w, rows) })
	case "5":
		rows, err := harness.Fig5(ctx, scale, seed, parallel)
		if err != nil {
			return err
		}
		fmt.Println(harness.FormatFig5(rows))
		return saveCSV("fig5.csv", func(w *os.File) error { return harness.Fig5CSV(w, rows) })
	case "6":
		rows, err := harness.Fig6(ctx, scale, seed, parallel)
		if err != nil {
			return err
		}
		fmt.Println(harness.FormatFig6(rows))
		return saveCSV("fig6.csv", func(w *os.File) error { return harness.Fig6CSV(w, rows) })
	case "7":
		rows, err := harness.Fig7(ctx, scale, seed, parallel)
		if err != nil {
			return err
		}
		fmt.Println(harness.FormatFig7(rows))
		return saveCSV("fig7.csv", func(w *os.File) error { return harness.Fig7CSV(w, rows) })
	case "8":
		s, err := harness.Fig8(ctx, dataset, scale, seed)
		if err != nil {
			return err
		}
		fmt.Println(harness.FormatFig8(s))
		fmt.Println(s.Sparklines())
		fmt.Printf("straggler tail (time after 90%% done): %.1f%% of run\n\n", 100*s.StragglerTail(0.9))
		return saveCSV("fig8.csv", func(w *os.File) error { return harness.Fig8CSV(w, s) })
	case "9":
		rows, err := harness.Fig9(ctx, scale, seed, parallel)
		if err != nil {
			return err
		}
		fmt.Println(harness.FormatFig9(rows))
		return saveCSV("fig9.csv", func(w *os.File) error { return harness.Fig9CSV(w, rows) })
	default:
		return fmt.Errorf("unknown figure %q (have 1,5,6,7,8,9)", f)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	stopProfiles()
	os.Exit(1)
}
