// Command flashwalker runs the FlashWalker in-storage accelerator
// simulation on a graph and prints the result.
//
// The graph comes either from a registered scaled dataset (-dataset) or
// from a binary graph file written by gengraph (-graph).
//
// Examples:
//
//	flashwalker -dataset TT-S -walks 10000
//	flashwalker -graph g.bin -walks 5000 -kind restart -stopprob 0.15
//	flashwalker -dataset FS-S -walks 10000 -no-wq -no-hs -no-ss
//	flashwalker -dataset TT-S -walks 10000 -faults -fault-read-rate 0.05
//	flashwalker -dataset MB-S -walks 10000 -boards 4
//	flashwalker -dataset MB-S -walks 10000 -boards 4 -kill-board 2 -kill-at 500000
//	flashwalker -dataset TT-S -walks 10000 -mutations stream.json
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"flashwalker/internal/core"
	"flashwalker/internal/errs"
	"flashwalker/internal/fault"
	"flashwalker/internal/graph"
	"flashwalker/internal/harness"
	"flashwalker/internal/metrics"
	"flashwalker/internal/sim"
	"flashwalker/internal/trace"
	"flashwalker/internal/walk"
)

func main() {
	dataset := flag.String("dataset", "", "scaled dataset name (TT-S, FS-S, CW-S, R2B-S, R8B-S, MB-S)")
	graphPath := flag.String("graph", "", "binary graph file (alternative to -dataset)")
	walks := flag.Int("walks", 10000, "number of walks")
	length := flag.Uint("length", harness.WalkLength, "walk length (hops)")
	kind := flag.String("kind", "unbiased", "walk kind: unbiased, biased, restart")
	stopProb := flag.Float64("stopprob", 0.15, "per-hop stop probability for -kind restart")
	seed := flag.Uint64("seed", 1, "simulation seed")
	noWQ := flag.Bool("no-wq", false, "disable the walk query optimization")
	noHS := flag.Bool("no-hs", false, "disable hot subgraphs")
	noSS := flag.Bool("no-ss", false, "disable score-based subgraph scheduling")
	subgraph := flag.Int64("subgraph", 4096, "graph block size in bytes (for -graph)")
	tracePath := flag.String("trace", "", "write a JSONL event trace to this file")
	faults := flag.Bool("faults", false, "enable deterministic fault injection (default profile)")
	faultSeed := flag.Uint64("fault-seed", 0, "override the fault RNG seed (with -faults)")
	faultReadRate := flag.Float64("fault-read-rate", -1, "override the per-sense read-error probability (with -faults)")
	faultBusyRate := flag.Float64("fault-busy-rate", -1, "override the per-sense plane-busy probability (with -faults)")
	boards := flag.Int("boards", 1, "number of SSD boards in the simulated array (>1 enables the inter-board fabric)")
	fabricLatencyNS := flag.Int64("fabric-latency-ns", -1, "override the fabric per-message latency in ns (with -boards > 1)")
	fabricMBps := flag.Int64("fabric-mbps", -1, "override the per-board fabric bandwidth in MB/s (with -boards > 1)")
	killBoard := flag.Int("kill-board", -1, "fail-stop this board mid-run (with -boards > 1)")
	killAt := flag.Int64("kill-at", 0, "simulated time in ns at which -kill-board dies")
	mutations := flag.String("mutations", "", "JSON file with a timestamped edge insert/delete stream applied during the run")
	flag.Parse()

	opts := core.Options{WalkQuery: !*noWQ, HotSubgraphs: !*noHS, SmartSchedule: !*noSS}
	spec, err := parseSpec(*kind, uint32(*length), *stopProb)
	if err != nil {
		fail(err)
	}

	var g *graph.Graph
	var rc core.RunConfig
	switch {
	case *dataset != "":
		d, err := harness.DatasetByName(*dataset)
		if err != nil {
			fail(err)
		}
		if g, err = d.Graph(); err != nil {
			fail(err)
		}
		rc = harness.FlashWalkerConfig(d, opts, *walks, *seed)
	case *graphPath != "":
		if g, err = graph.Load(*graphPath); err != nil {
			fail(err)
		}
		d := harness.Dataset{Name: *graphPath, IDBytes: 4, SubgraphBytes: *subgraph}
		rc = harness.FlashWalkerConfig(d, opts, *walks, *seed)
	default:
		fail(fmt.Errorf("one of -dataset or -graph is required"))
	}
	rc.Spec = spec

	if *faults {
		fc := fault.Default()
		if *faultSeed != 0 {
			fc.Seed = *faultSeed
		}
		if *faultReadRate >= 0 {
			fc.ReadErrorRate = *faultReadRate
		}
		if *faultBusyRate >= 0 {
			fc.PlaneBusyRate = *faultBusyRate
		}
		rc.Cfg.Faults = fc
	}

	rc.Cfg.Boards = *boards
	if *fabricLatencyNS >= 0 {
		rc.Cfg.FabricLatency = sim.Time(*fabricLatencyNS)
	}
	if *fabricMBps > 0 {
		rc.Cfg.FabricBytesPerSec = *fabricMBps * 1_000_000
	}
	if *killBoard >= 0 {
		rc.Cfg.Faults.KillBoard = *killBoard
		rc.Cfg.Faults.KillBoardAt = sim.Time(*killAt)
	}

	if *mutations != "" {
		ms, err := loadMutations(*mutations)
		if err != nil {
			fail(err)
		}
		rc.Mutations = ms
	}

	var traceFile *os.File
	var tw *trace.Writer
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fail(err)
		}
		traceFile = f
		tw = trace.NewWriter(f)
		rc.Tracer = tw
	}

	// Ctrl-C / SIGTERM cancels at the next event boundary; the partial
	// result is printed before exiting non-zero.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	res, err := runSim(ctx, g, rc)
	if res != nil {
		if err != nil {
			fmt.Println("run canceled; partial result:")
		}
		printResult(res)
	}
	if cerr := closeTrace(traceFile, tw); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		if errors.Is(err, errs.ErrCanceled) {
			fmt.Fprintln(os.Stderr, "flashwalker:", err)
			os.Exit(130)
		}
		fail(err)
	}
}

// runSim dispatches to the single-board engine or the multi-board array,
// mirroring the flashwalker.Simulate facade.
func runSim(ctx context.Context, g *graph.Graph, rc core.RunConfig) (*core.Result, error) {
	if rc.Cfg.Boards > 1 {
		a, err := core.NewArray(g, rc)
		if err != nil {
			return nil, err
		}
		return a.RunContext(ctx)
	}
	e, err := core.NewEngine(g, rc)
	if err != nil {
		return nil, err
	}
	return e.RunContext(ctx)
}

// loadMutations reads a mutation stream from a JSON file: an array of
// {"at_ns","op","src","dst","weight"} objects, time-sorted. Only the shape
// is checked here — the engine validates the stream against the graph and
// the partitioning's dense-vertex cap at construction.
func loadMutations(path string) (graph.MutationStream, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var ms graph.MutationStream
	if err := json.Unmarshal(data, &ms); err != nil {
		return nil, fmt.Errorf("mutations %s: %w", path, err)
	}
	if err := ms.ValidateShape(); err != nil {
		return nil, fmt.Errorf("mutations %s: %w", path, err)
	}
	return ms, nil
}

// closeTrace flushes and closes the trace output, reporting either the
// writer's deferred encode error or the file close error — both used to
// be silently dropped, leaving truncated traces looking complete.
func closeTrace(f *os.File, tw *trace.Writer) error {
	if f == nil {
		return nil
	}
	if err := tw.Err(); err != nil {
		f.Close()
		return fmt.Errorf("trace write: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("trace close: %w", err)
	}
	return nil
}

func parseSpec(kind string, length uint32, stopProb float64) (walk.Spec, error) {
	switch kind {
	case "unbiased":
		return walk.Spec{Kind: walk.Unbiased, Length: length}, nil
	case "biased":
		return walk.Spec{Kind: walk.Biased, Length: length}, nil
	case "restart":
		return walk.Spec{Kind: walk.Restart, Length: length, StopProb: stopProb}, nil
	default:
		return walk.Spec{}, fmt.Errorf("unknown walk kind %q", kind)
	}
}

func printResult(r *core.Result) {
	fmt.Printf("simulated time        %v\n", r.Time)
	fmt.Printf("walks                 %d started, %d completed, %d dead-ended\n",
		r.Started, r.Completed, r.DeadEnded)
	fmt.Printf("hops                  %d (%.2fM hops/s)\n", r.Hops, r.HopRate()/1e6)
	fmt.Printf("flash read            %s (%d pages)\n", metrics.FormatBytes(r.Flash.ReadBytes), r.Flash.ReadPages)
	fmt.Printf("flash written         %s (%d pages)\n", metrics.FormatBytes(r.Flash.WriteBytes), r.Flash.ProgramPages)
	fmt.Printf("channel-bus traffic   %s\n", metrics.FormatBytes(r.Flash.ChannelBytes))
	fmt.Printf("subgraph loads        %d (%d buffer-resident)\n", r.SubgraphLoads, r.SubgraphReloads)
	fmt.Printf("roving walks          %d in %d batches\n", r.RovingWalks, r.RovingTransfers)
	fmt.Printf("updates: chip         %d\n", r.ChipUpdates)
	fmt.Printf("updates: channel hot  %d\n", r.HotHitsChannel)
	fmt.Printf("updates: board hot    %d\n", r.HotHitsBoard)
	fmt.Printf("pre-walks (dense)     %d\n", r.PreWalks)
	fmt.Printf("query cache hit rate  %.1f%% (%d hits, %d misses)\n",
		100*r.QueryCacheHitRate(), r.QueryCacheHits, r.QueryCacheMisses)
	fmt.Printf("PWB overflows         %d\n", r.PWBOverflows)
	fmt.Printf("foreigner walks       %d (%d flushes)\n", r.ForeignerWalks, r.ForeignerFlushes)
	fmt.Printf("partition switches    %d\n", r.PartitionSwitches)
	if r.MutationsApplied != 0 {
		fmt.Printf("mutations applied     %d\n", r.MutationsApplied)
	}
	fmt.Printf("chip updater util     %.1f%% mean / %.1f%% max\n",
		100*r.ChipUpdaterUtil, 100*r.ChipUpdaterUtilMax)
	fmt.Printf("channel bus util max  %.1f%%\n", 100*r.ChannelBusUtilMax)
	if r.Boards > 1 {
		fmt.Printf("boards                %d\n", r.Boards)
		fmt.Printf("fabric traffic        %s (%d walks in %d batches)\n",
			metrics.FormatBytes(r.FabricBytes), r.FabricWalks, r.FabricBatches)
		if r.BoardKills != 0 {
			fmt.Printf("board kills           %d (%d walks evacuated)\n", r.BoardKills, r.EvacuatedWalks)
		}
	}
	if r.Faults != (fault.Counters{}) || r.FaultReroutes != 0 || r.FailoverBlocks != 0 {
		fmt.Printf("faults: read errors   %d (%d retries, %d exhausted)\n",
			r.Faults.ReadErrors, r.Faults.Retries, r.Faults.RetriesExhausted)
		fmt.Printf("faults: plane stalls  %d (%v stalled, %v backoff)\n",
			r.Faults.PlaneBusyStalls, r.Faults.StallTime, r.Faults.BackoffTime)
		fmt.Printf("faults: degradation   %d chips, %d blocks failed over, %d walks rerouted\n",
			r.Faults.DegradedChips, r.FailoverBlocks, r.FaultReroutes)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "flashwalker:", err)
	os.Exit(1)
}
