// Command flashwalkerd serves the walk service: an HTTP/JSON API that
// runs FlashWalker and GraphWalker-baseline simulations as managed jobs
// with live progress, cooperative cancellation, and a bounded queue.
//
// Usage:
//
//	flashwalkerd [-addr :8080] [-workers 2] [-queue 16] [-state-dir DIR]
//	             [-store fs|mem|http://...] [-snap-deltas 4]
//	             [-retain-jobs 0] [-retain-age 0] [-max-body-bytes 4194304]
//	             [-corpus-cache 16] [-tenant-max-queued 0]
//	             [-tenant-max-running 0] [-tenant-rate 0] [-tenant-burst 1]
//	             [-stream-ring 4096]
//
// With a durable store, jobs are durable: specs are journaled at
// submission, running engines checkpoint to snapshot objects at their
// checkpoint_every cadence (a full snapshot every -snap-deltas+1 cuts,
// delta snapshots in between), and a restarted daemon recovers the
// journal — finished jobs as history, unfinished ones re-enqueued and
// resumed from their last snapshot. A SIGKILLed daemon restarted on the
// same store finishes its jobs with results identical to an
// uninterrupted run.
//
// The store backend is picked by -store: "fs" (the default) keeps the
// PR-9 on-disk layout under -state-dir; "mem" holds durable state in
// process memory (useful for tests — state does not survive the
// process); an http:// or https:// URL targets an S3-style object
// server speaking GET/PUT/POST/DELETE on keys plus GET /?prefix= for
// listing (see internal/blob). -retain-jobs / -retain-age bound how
// much terminal job state the store accumulates.
//
// Endpoints (see internal/service):
//
//	POST /v1/jobs              {"graph":"TT-S","num_walks":1000,"seed":1}
//	                           add "tenant":"name" for per-tenant quotas,
//	                           add "fault_config":{"enabled":true,...} for
//	                           deterministic fault injection (invalid
//	                           configs are rejected with 400 at submission)
//	GET  /v1/jobs              list jobs (?status=, ?tenant=, limit/cursor)
//	GET  /v1/jobs/{id}         job status with live progress
//	POST /v1/jobs/{id}/cancel  cancel (running jobs keep a partial result)
//	GET  /v1/jobs/{id}/stream  NDJSON of completed walks, live; resumable
//	                           with ?from=seq
//	GET  /v1/jobs/{id}/corpus  a finished "deepwalk" job's corpus text
//	GET  /v1/graphs            registered graphs
//	POST /v1/graphs            {"name":"my-graph","path":"g.bin"}
//	GET  /healthz              liveness
//	GET  /metrics              Prometheus text metrics
//
// SIGINT/SIGTERM drain gracefully: the listener stops, running jobs are
// canceled at their next checkpoint, and the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"flashwalker/internal/blob"
	"flashwalker/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 2, "concurrent jobs")
	queue := flag.Int("queue", 16, "bounded job queue depth")
	stateDir := flag.String("state-dir", "", "durable job state directory (empty: in-memory only)")
	storeKind := flag.String("store", "fs",
		"durable store backend: fs (files under -state-dir), mem, or an http(s):// object-store base URL")
	snapDeltas := flag.Int("snap-deltas", 0,
		"delta snapshots between full snapshots (0: default 4, negative: full snapshots only)")
	retainJobs := flag.Int("retain-jobs", 0,
		"terminal jobs to retain in the durable store (0: unlimited)")
	retainAge := flag.Duration("retain-age", 0,
		"max age of terminal job state in the durable store (0: unlimited)")
	maxBodyBytes := flag.Int64("max-body-bytes", 0,
		"request body size cap for POST endpoints (0: default 4 MiB)")
	corpusCache := flag.Int("corpus-cache", 0,
		"precomputed walk-corpus cache entries for deepwalk jobs (0: default 16, negative: disabled)")
	tenantMaxQueued := flag.Int("tenant-max-queued", 0,
		"max queued jobs per tenant (0: unlimited)")
	tenantMaxRunning := flag.Int("tenant-max-running", 0,
		"max concurrently running jobs per tenant (0: unlimited)")
	tenantRate := flag.Float64("tenant-rate", 0,
		"per-tenant job submission rate limit in jobs/sec (0: unlimited)")
	tenantBurst := flag.Int("tenant-burst", 1,
		"per-tenant submission burst allowance when -tenant-rate is set")
	streamRing := flag.Int("stream-ring", 0,
		"completed-walk stream ring capacity in records (0: default 4096)")
	flag.Parse()

	cfg := service.Config{
		Workers: *workers, QueueDepth: *queue, StateDir: *stateDir,
		SnapshotDeltas:     *snapDeltas,
		RetainJobs:         *retainJobs,
		RetainAge:          *retainAge,
		MaxBodyBytes:       *maxBodyBytes,
		CorpusCacheEntries: *corpusCache,
		TenantMaxQueued:    *tenantMaxQueued,
		TenantMaxRunning:   *tenantMaxRunning,
		TenantRatePerSec:   *tenantRate,
		TenantRateBurst:    *tenantBurst,
		StreamRingWalks:    *streamRing,
	}
	switch {
	case *storeKind == "fs" || *storeKind == "":
		// Manager wraps StateDir in the FS store itself (empty: no
		// durability), preserving the PR-9 on-disk layout.
	case *storeKind == "mem":
		cfg.Store = blob.NewMem()
	case strings.HasPrefix(*storeKind, "http://") || strings.HasPrefix(*storeKind, "https://"):
		st, err := blob.NewHTTP(*storeKind, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flashwalkerd:", err)
			os.Exit(2)
		}
		cfg.Store = st
	default:
		fmt.Fprintf(os.Stderr, "flashwalkerd: bad -store %q (want fs, mem, or an http(s):// URL)\n", *storeKind)
		os.Exit(2)
	}
	if err := run(*addr, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "flashwalkerd:", err)
		os.Exit(1)
	}
}

func run(addr string, cfg service.Config) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	m, err := service.NewManager(service.NewRegistry(), cfg)
	if err != nil {
		return err
	}
	defer m.Close()

	srv := &http.Server{
		Addr:              addr,
		Handler:           service.NewHandler(m),
		ReadHeaderTimeout: 10 * time.Second,
		// ReadTimeout bounds slow request bodies; the stream handler clears
		// its per-request deadline, so long-lived streams are unaffected.
		ReadTimeout: 30 * time.Second,
		IdleTimeout: 2 * time.Minute,
		// WriteTimeout stays 0: it cannot be cleared per request, and any
		// value would sever healthy long-lived NDJSON streams mid-flight.
	}

	errc := make(chan error, 1)
	go func() {
		fmt.Printf("flashwalkerd: listening on %s (%d workers, queue %d)\n", addr, cfg.Workers, cfg.QueueDepth)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	fmt.Println("flashwalkerd: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
