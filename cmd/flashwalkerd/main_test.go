package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"flashwalker/client"
	"flashwalker/internal/blob"
	"flashwalker/internal/core"
	"flashwalker/internal/graph"
	"flashwalker/internal/harness"
)

// daemon is one flashwalkerd process under test, driven through the typed
// API client.
type daemon struct {
	t   *testing.T
	cmd *exec.Cmd
	c   *client.Client
}

// startDaemon launches the built binary against stateDir (plus any extra
// flags) and waits for /healthz to answer.
func startDaemon(t *testing.T, bin, stateDir string, port int, extra ...string) *daemon {
	t.Helper()
	args := []string{
		"-addr", fmt.Sprintf("127.0.0.1:%d", port),
		"-workers", "1",
		"-state-dir", stateDir,
	}
	args = append(args, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start flashwalkerd: %v", err)
	}
	d := &daemon{t: t, cmd: cmd, c: client.New(fmt.Sprintf("http://127.0.0.1:%d", port), nil)}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if err := d.c.Health(context.Background()); err == nil {
			return d
		}
		if time.Now().After(deadline) {
			d.kill()
			t.Fatal("daemon never became healthy")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// kill delivers SIGKILL — the crash under test, not a graceful drain.
func (d *daemon) kill() {
	_ = d.cmd.Process.Signal(syscall.SIGKILL)
	_, _ = d.cmd.Process.Wait()
}

func (d *daemon) submit(spec client.JobSpec) client.JobStatus {
	d.t.Helper()
	st, err := d.c.Submit(context.Background(), spec)
	if err != nil {
		d.t.Fatalf("submit: %v", err)
	}
	return st
}

func (d *daemon) get(id string) client.JobStatus {
	d.t.Helper()
	st, err := d.c.Get(context.Background(), id)
	if err != nil {
		d.t.Fatalf("get %s: %v", id, err)
	}
	return st
}

func (d *daemon) waitDone(id string, timeout time.Duration) client.JobStatus {
	d.t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	st, err := d.c.Wait(ctx, id)
	if err != nil {
		d.t.Fatalf("wait %s (last state %q): %v", id, st.State, err)
	}
	if st.State != client.StateDone {
		d.t.Fatalf("job %s terminal state %q: %s", id, st.State, st.Error)
	}
	return st
}

func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port
}

func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "flashwalkerd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestCrashRecovery is the end-to-end durability proof: a daemon with a
// state directory is SIGKILLed while a job is mid-run with a snapshot on
// disk; a fresh daemon on the same state directory must finish the job
// with a result identical to an uninterrupted run.
func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	bin := buildDaemon(t)

	spec := client.JobSpec{
		Graph: "TT-S", NumWalks: 20_000, Seed: 7, CheckpointEvery: 64,
	}

	// Reference: the same spec run to completion with no interruption.
	refDir := t.TempDir()
	dr := startDaemon(t, bin, refDir, freePort(t))
	refJob := dr.submit(spec)
	ref := dr.waitDone(refJob.ID, 2*time.Minute)
	dr.kill()
	if ref.Result == nil || ref.Result.Partial {
		t.Fatalf("reference result unusable: %+v", ref.Result)
	}

	// Victim: submit, wait for a snapshot to land, SIGKILL mid-run.
	stateDir := t.TempDir()
	d1 := startDaemon(t, bin, stateDir, freePort(t))
	job := d1.submit(spec)
	snapPath := filepath.Join(stateDir, "snapshots", job.ID+".snap")
	deadline := time.Now().Add(time.Minute)
	for {
		if fi, err := os.Stat(snapPath); err == nil && fi.Size() > 0 {
			break
		}
		if time.Now().After(deadline) {
			d1.kill()
			t.Fatal("running job never wrote a snapshot")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if jv := d1.get(job.ID); jv.State == client.StateDone {
		t.Fatal("job finished before the crash; nothing to recover")
	}
	d1.kill()

	// Survivor: same state dir, job must be recovered and finish with the
	// reference result bit for bit.
	d2 := startDaemon(t, bin, stateDir, freePort(t))
	defer d2.kill()
	got := d2.waitDone(job.ID, 2*time.Minute)
	if got.Result == nil {
		t.Fatal("recovered job has no result")
	}
	if *got.Result != *ref.Result {
		t.Fatalf("recovered result diverged:\n got %+v\nwant %+v", *got.Result, *ref.Result)
	}
	if _, err := os.Stat(snapPath); !os.IsNotExist(err) {
		t.Errorf("snapshot survived job completion: %v", err)
	}
	// Completion retires the whole chain: no delta containers left either.
	deltas, err := filepath.Glob(filepath.Join(stateDir, "snapshots", job.ID+".d*.snap"))
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 0 {
		t.Errorf("delta containers survived job completion: %v", deltas)
	}
}

// TestCrashRecoveryHTTPStore is the object-store variant of
// TestCrashRecovery: the daemon keeps ALL durable state in an S3-style
// object server (hosted by the test process, so it survives the daemon's
// SIGKILL), checkpoints as a delta chain (-snap-deltas 2), crashes with a
// full snapshot plus at least one delta in the store, and a fresh daemon
// pointed at the same URL must finish the job with a result identical to
// an uninterrupted run.
func TestCrashRecoveryHTTPStore(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	bin := buildDaemon(t)

	osrv := httptest.NewServer(blob.Handler(blob.NewMem()))
	defer osrv.Close()
	store, err := blob.NewHTTP(osrv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	storeFlags := []string{"-store", osrv.URL, "-snap-deltas", "2"}

	spec := client.JobSpec{
		Graph: "TT-S", NumWalks: 20_000, Seed: 7, CheckpointEvery: 64,
	}

	// Reference: the same spec run to completion with no interruption
	// (plain in-memory daemon; determinism does not depend on the store).
	dr := startDaemon(t, bin, t.TempDir(), freePort(t))
	refJob := dr.submit(spec)
	ref := dr.waitDone(refJob.ID, 2*time.Minute)
	dr.kill()
	if ref.Result == nil || ref.Result.Partial {
		t.Fatalf("reference result unusable: %+v", ref.Result)
	}

	// Victim: submit, wait until the chain (full + a delta) is in the
	// object store, SIGKILL mid-run.
	d1 := startDaemon(t, bin, t.TempDir(), freePort(t), storeFlags...)
	job := d1.submit(spec)
	fullKey := "snapshots/" + job.ID + ".snap"
	deltaKey := "snapshots/" + job.ID + ".d1.snap"
	deadline := time.Now().Add(time.Minute)
	for {
		_, ferr := store.Get(fullKey)
		_, derr := store.Get(deltaKey)
		if ferr == nil && derr == nil {
			break
		}
		if time.Now().After(deadline) {
			d1.kill()
			t.Fatalf("no full+delta chain in store (full: %v, delta: %v)", ferr, derr)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if jv := d1.get(job.ID); jv.State == client.StateDone {
		t.Fatal("job finished before the crash; nothing to recover")
	}
	d1.kill()

	// Survivor: same store URL, job recovered over HTTP and finished with
	// the reference result bit for bit.
	d2 := startDaemon(t, bin, t.TempDir(), freePort(t), storeFlags...)
	defer d2.kill()
	got := d2.waitDone(job.ID, 2*time.Minute)
	if got.Result == nil {
		t.Fatal("recovered job has no result")
	}
	if *got.Result != *ref.Result {
		t.Fatalf("recovered result diverged:\n got %+v\nwant %+v", *got.Result, *ref.Result)
	}
	// Completion retires the whole chain from the object store.
	if _, err := store.Get(fullKey); !errors.Is(err, blob.ErrNotFound) {
		t.Errorf("full snapshot survived completion (err %v)", err)
	}
	keys, err := store.List("snapshots/" + job.ID + ".d")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 0 {
		t.Errorf("delta containers survived completion: %v", keys)
	}
}

// TestCrashRecoveryMutations is the dynamic-graph variant of
// TestCrashRecovery: the job carries a mutation stream whose timestamps
// straddle the run, the daemon is SIGKILLed after the first snapshot lands
// (the snapshot carries the stream and its applied-prefix cursor), and the
// recovered job must replay the rest of the stream to a result identical to
// an uninterrupted run — mutations_applied included.
func TestCrashRecoveryMutations(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	bin := buildDaemon(t)

	// Probe the unmutated run in-process for its end time and a safely
	// sparse edge: the daemon derives the identical simulation from the
	// same (dataset, walks, seed), so fractions of the probe's end time
	// land inside the mutated run too.
	ds, err := harness.DatasetByName("TT-S")
	if err != nil {
		t.Fatal(err)
	}
	g, err := ds.Graph()
	if err != nil {
		t.Fatal(err)
	}
	rc := harness.FlashWalkerConfig(ds, core.AllOptions(), 20_000, 7)
	e, err := core.NewEngine(g, rc)
	if err != nil {
		t.Fatal(err)
	}
	probe, err := e.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	endNS := int64(probe.Time)
	pc := rc.PartCfg
	var src, dst graph.VertexID
	found := false
	for v := graph.VertexID(0); v < g.NumVertices() && !found; v++ {
		if d := g.OutDegree(v); d >= 1 && uint64(d)+1 < pc.EdgesPerBlock(g.Weighted()) {
			src, dst, found = v, g.OutEdges(v)[0], true
		}
	}
	if !found {
		t.Fatal("TT-S has no sparse vertex with out-edges")
	}
	ms := graph.MutationStream{
		{At: 0, Op: graph.OpDeleteEdge, Src: src, Dst: dst},
		{At: 0, Op: graph.OpInsertEdge, Src: src, Dst: dst},
		{At: endNS / 2, Op: graph.OpDeleteEdge, Src: src, Dst: dst},
		{At: endNS * 3 / 4, Op: graph.OpInsertEdge, Src: src, Dst: dst},
	}
	spec := client.JobSpec{
		Graph: "TT-S", NumWalks: 20_000, Seed: 7, CheckpointEvery: 64,
		Mutations: ms,
	}

	refDir := t.TempDir()
	dr := startDaemon(t, bin, refDir, freePort(t))
	refJob := dr.submit(spec)
	ref := dr.waitDone(refJob.ID, 2*time.Minute)
	dr.kill()
	if ref.Result == nil || ref.Result.Partial {
		t.Fatalf("reference result unusable: %+v", ref.Result)
	}
	if ref.Result.MutationsApplied != uint64(len(ms)) {
		t.Fatalf("reference applied %d of %d mutations", ref.Result.MutationsApplied, len(ms))
	}

	stateDir := t.TempDir()
	d1 := startDaemon(t, bin, stateDir, freePort(t))
	job := d1.submit(spec)
	snapPath := filepath.Join(stateDir, "snapshots", job.ID+".snap")
	deadline := time.Now().Add(time.Minute)
	for {
		if fi, err := os.Stat(snapPath); err == nil && fi.Size() > 0 {
			break
		}
		if time.Now().After(deadline) {
			d1.kill()
			t.Fatal("running job never wrote a snapshot")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if jv := d1.get(job.ID); jv.State == client.StateDone {
		t.Fatal("job finished before the crash; nothing to recover")
	}
	d1.kill()

	d2 := startDaemon(t, bin, stateDir, freePort(t))
	defer d2.kill()
	got := d2.waitDone(job.ID, 2*time.Minute)
	if got.Result == nil {
		t.Fatal("recovered job has no result")
	}
	if *got.Result != *ref.Result {
		t.Fatalf("recovered mutated result diverged:\n got %+v\nwant %+v", *got.Result, *ref.Result)
	}
}

// TestCrashRecoveryMultiBoard is the array variant of TestCrashRecovery: a
// two-board job on the multi-shard dataset is SIGKILLed mid-run (with its
// fleet-wide array snapshot on disk) and must recover to the same result an
// uninterrupted run produces. This exercises the flashwalker-core-array
// snapshot kind end to end, including any walks that were in flight on the
// inter-board fabric when the image was taken.
func TestCrashRecoveryMultiBoard(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	bin := buildDaemon(t)

	// MB-S is the only registry dataset with enough partitions for an
	// array (TT-S packs into a single shard); two boards split its nine
	// partitions and exchange foreigner walks over the fabric.
	spec := client.JobSpec{
		Graph: "MB-S", NumWalks: 60_000, Seed: 7,
		Boards: 2, CheckpointEvery: 64,
	}

	refDir := t.TempDir()
	dr := startDaemon(t, bin, refDir, freePort(t))
	refJob := dr.submit(spec)
	ref := dr.waitDone(refJob.ID, 4*time.Minute)
	dr.kill()
	if ref.Result == nil || ref.Result.Partial {
		t.Fatalf("reference result unusable: %+v", ref.Result)
	}

	stateDir := t.TempDir()
	d1 := startDaemon(t, bin, stateDir, freePort(t))
	job := d1.submit(spec)
	snapPath := filepath.Join(stateDir, "snapshots", job.ID+".snap")
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if fi, err := os.Stat(snapPath); err == nil && fi.Size() > 0 {
			break
		}
		if time.Now().After(deadline) {
			d1.kill()
			t.Fatal("running array job never wrote a snapshot")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if jv := d1.get(job.ID); jv.State == client.StateDone {
		t.Fatal("job finished before the crash; nothing to recover")
	}
	d1.kill()

	d2 := startDaemon(t, bin, stateDir, freePort(t))
	defer d2.kill()
	got := d2.waitDone(job.ID, 4*time.Minute)
	if got.Result == nil {
		t.Fatal("recovered job has no result")
	}
	if *got.Result != *ref.Result {
		t.Fatalf("recovered array result diverged:\n got %+v\nwant %+v", *got.Result, *ref.Result)
	}
	if _, err := os.Stat(snapPath); !os.IsNotExist(err) {
		t.Errorf("snapshot survived job completion: %v", err)
	}
}

// TestDaemonStreamAndTenantFlags proves the admission/stream flags reach
// the service: a daemon booted with per-tenant quotas rejects the over-quota
// submission with the tenant_quota envelope, and the walk stream delivers
// every completed walk of a job gaplessly over real HTTP.
func TestDaemonStreamAndTenantFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	bin := buildDaemon(t)
	d := startDaemon(t, bin, t.TempDir(), freePort(t),
		"-tenant-max-queued", "1", "-stream-ring", "128")
	defer d.kill()
	ctx := context.Background()

	// Fill tenant "a"'s queue allowance behind a long-running job, then
	// assert the next submission bounces with the machine-readable code.
	long := client.JobSpec{
		Graph: "TT-S", NumWalks: 200_000, Seed: 1, CheckpointEvery: 64, Tenant: "a",
	}
	hog := d.submit(long)
	// Wait for the worker to claim the hog so it no longer counts against
	// the queued quota; the next submission then sits queued alone.
	deadline := time.Now().Add(30 * time.Second)
	for d.get(hog.ID).State == client.StateQueued {
		if time.Now().After(deadline) {
			t.Fatal("hog job never started running")
		}
		time.Sleep(5 * time.Millisecond)
	}
	queued := d.submit(long) // worker=1, so this one sits queued
	_, err := d.c.Submit(ctx, long)
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 429 || apiErr.Code != "tenant_quota" {
		t.Fatalf("over-quota submit: want 429 tenant_quota, got %v", err)
	}
	metrics, err := d.c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metrics, `flashwalker_admission_rejected_total{reason="tenant_quota"} 1`) {
		t.Error("metrics missing the tenant_quota rejection count")
	}

	// Another tenant is not affected by tenant "a"'s quota; stream its
	// walks live while the hogs still occupy the worker and the queue.
	small := d.submit(client.JobSpec{
		Graph: "TT-S", NumWalks: 400, Seed: 2, Tenant: "b",
	})
	if _, err := d.c.Cancel(ctx, hog.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := d.c.Cancel(ctx, queued.ID); err != nil {
		t.Fatal(err)
	}
	st, err := d.c.Stream(ctx, small.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var n uint64
	for {
		rec, ok := st.Next()
		if !ok {
			break
		}
		if rec.Seq != n {
			t.Fatalf("stream gap: record seq %d at position %d", rec.Seq, n)
		}
		n++
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	end := st.End()
	if end == nil || end.State != client.StateDone || end.NextSeq != n {
		t.Fatalf("stream trailer %+v after %d records", end, n)
	}
	fin := d.waitDone(small.ID, time.Minute)
	if fin.Result == nil || fin.Result.Completed+fin.Result.DeadEnded != int(n) {
		t.Fatalf("streamed %d walks but result says %+v", n, fin.Result)
	}
}
