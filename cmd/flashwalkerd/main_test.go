package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// daemon is one flashwalkerd process under test.
type daemon struct {
	t    *testing.T
	cmd  *exec.Cmd
	base string
}

// startDaemon launches the built binary against stateDir and waits for
// /healthz to answer.
func startDaemon(t *testing.T, bin, stateDir string, port int) *daemon {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", fmt.Sprintf("127.0.0.1:%d", port),
		"-workers", "1",
		"-state-dir", stateDir,
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start flashwalkerd: %v", err)
	}
	d := &daemon{t: t, cmd: cmd, base: fmt.Sprintf("http://127.0.0.1:%d", port)}
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(d.base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return d
			}
		}
		if time.Now().After(deadline) {
			d.kill()
			t.Fatal("daemon never became healthy")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// kill delivers SIGKILL — the crash under test, not a graceful drain.
func (d *daemon) kill() {
	_ = d.cmd.Process.Signal(syscall.SIGKILL)
	_, _ = d.cmd.Process.Wait()
}

// jobView is the subset of the job status JSON the test asserts on.
type jobView struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Error  string `json:"error"`
	Result *struct {
		SimTimeNS int64  `json:"sim_time_ns"`
		Completed int    `json:"completed"`
		DeadEnded int    `json:"dead_ended"`
		Hops      uint64 `json:"hops"`
		Partial   bool   `json:"partial"`
	} `json:"result"`
}

func (d *daemon) submit(spec map[string]any) jobView {
	d.t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(d.base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		d.t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		d.t.Fatalf("submit status %d", resp.StatusCode)
	}
	var jv jobView
	if err := json.NewDecoder(resp.Body).Decode(&jv); err != nil {
		d.t.Fatalf("submit decode: %v", err)
	}
	return jv
}

func (d *daemon) get(id string) jobView {
	d.t.Helper()
	resp, err := http.Get(d.base + "/v1/jobs/" + id)
	if err != nil {
		d.t.Fatalf("get %s: %v", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		d.t.Fatalf("get %s status %d", id, resp.StatusCode)
	}
	var jv jobView
	if err := json.NewDecoder(resp.Body).Decode(&jv); err != nil {
		d.t.Fatalf("get %s decode: %v", id, err)
	}
	return jv
}

func (d *daemon) waitDone(id string, timeout time.Duration) jobView {
	d.t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		jv := d.get(id)
		switch jv.State {
		case "done":
			return jv
		case "failed", "canceled":
			d.t.Fatalf("job %s terminal state %q: %s", id, jv.State, jv.Error)
		}
		if time.Now().After(deadline) {
			d.t.Fatalf("job %s still %q after %v", id, jv.State, timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port
}

// TestCrashRecovery is the end-to-end durability proof: a daemon with a
// state directory is SIGKILLed while a job is mid-run with a snapshot on
// disk; a fresh daemon on the same state directory must finish the job
// with a result identical to an uninterrupted run of the same spec.
func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	bin := filepath.Join(t.TempDir(), "flashwalkerd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	spec := map[string]any{
		"graph": "TT-S", "num_walks": 20_000, "seed": 7, "checkpoint_every": 64,
	}

	// Reference: the same spec run to completion with no interruption.
	refDir := t.TempDir()
	dr := startDaemon(t, bin, refDir, freePort(t))
	refJob := dr.submit(spec)
	ref := dr.waitDone(refJob.ID, 2*time.Minute)
	dr.kill()
	if ref.Result == nil || ref.Result.Partial {
		t.Fatalf("reference result unusable: %+v", ref.Result)
	}

	// Victim: submit, wait for a snapshot to land, SIGKILL mid-run.
	stateDir := t.TempDir()
	d1 := startDaemon(t, bin, stateDir, freePort(t))
	job := d1.submit(spec)
	snapPath := filepath.Join(stateDir, "snapshots", job.ID+".snap")
	deadline := time.Now().Add(time.Minute)
	for {
		if fi, err := os.Stat(snapPath); err == nil && fi.Size() > 0 {
			break
		}
		if time.Now().After(deadline) {
			d1.kill()
			t.Fatal("running job never wrote a snapshot")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if jv := d1.get(job.ID); jv.State == "done" {
		t.Fatal("job finished before the crash; nothing to recover")
	}
	d1.kill()

	// Survivor: same state dir, job must be recovered and finish with the
	// reference result bit for bit.
	d2 := startDaemon(t, bin, stateDir, freePort(t))
	defer d2.kill()
	got := d2.waitDone(job.ID, 2*time.Minute)
	if got.Result == nil {
		t.Fatal("recovered job has no result")
	}
	if *got.Result != *ref.Result {
		t.Fatalf("recovered result diverged:\n got %+v\nwant %+v", *got.Result, *ref.Result)
	}
	if _, err := os.Stat(snapPath); !os.IsNotExist(err) {
		t.Errorf("snapshot survived job completion: %v", err)
	}
}

// TestCrashRecoveryMultiBoard is the array variant of TestCrashRecovery: a
// two-board job on the multi-shard dataset is SIGKILLed mid-run (with its
// fleet-wide array snapshot on disk) and must recover to the same result an
// uninterrupted run produces. This exercises the flashwalker-core-array
// snapshot kind end to end, including any walks that were in flight on the
// inter-board fabric when the image was taken.
func TestCrashRecoveryMultiBoard(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	bin := filepath.Join(t.TempDir(), "flashwalkerd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// MB-S is the only registry dataset with enough partitions for an
	// array (TT-S packs into a single shard); two boards split its nine
	// partitions and exchange foreigner walks over the fabric.
	spec := map[string]any{
		"graph": "MB-S", "num_walks": 60_000, "seed": 7,
		"boards": 2, "checkpoint_every": 64,
	}

	refDir := t.TempDir()
	dr := startDaemon(t, bin, refDir, freePort(t))
	refJob := dr.submit(spec)
	ref := dr.waitDone(refJob.ID, 4*time.Minute)
	dr.kill()
	if ref.Result == nil || ref.Result.Partial {
		t.Fatalf("reference result unusable: %+v", ref.Result)
	}

	stateDir := t.TempDir()
	d1 := startDaemon(t, bin, stateDir, freePort(t))
	job := d1.submit(spec)
	snapPath := filepath.Join(stateDir, "snapshots", job.ID+".snap")
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if fi, err := os.Stat(snapPath); err == nil && fi.Size() > 0 {
			break
		}
		if time.Now().After(deadline) {
			d1.kill()
			t.Fatal("running array job never wrote a snapshot")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if jv := d1.get(job.ID); jv.State == "done" {
		t.Fatal("job finished before the crash; nothing to recover")
	}
	d1.kill()

	d2 := startDaemon(t, bin, stateDir, freePort(t))
	defer d2.kill()
	got := d2.waitDone(job.ID, 4*time.Minute)
	if got.Result == nil {
		t.Fatal("recovered job has no result")
	}
	if *got.Result != *ref.Result {
		t.Fatalf("recovered array result diverged:\n got %+v\nwant %+v", *got.Result, *ref.Result)
	}
	if _, err := os.Stat(snapPath); !os.IsNotExist(err) {
		t.Errorf("snapshot survived job completion: %v", err)
	}
}
