// Command gengraph generates synthetic graphs (R-MAT, power-law, uniform)
// and writes them in the repository's binary graph format.
//
// Examples:
//
//	gengraph -kind rmat -v 65536 -e 1000000 -o g.bin
//	gengraph -kind powerlaw -v 10000 -e 200000 -alpha 0.8 -weighted -o w.bin
//	gengraph -kind rmat -dataset TT-S -o tt.bin    # materialize a registry graph
//	gengraph -dataset MB-S -o mb.bin               # multi-shard array workload
package main

import (
	"flag"
	"fmt"
	"os"

	"flashwalker/internal/core"
	"flashwalker/internal/graph"
	"flashwalker/internal/harness"
	"flashwalker/internal/metrics"
	"flashwalker/internal/partition"
)

func main() {
	kind := flag.String("kind", "rmat", "generator: rmat, powerlaw, uniform")
	v := flag.Uint64("v", 65536, "number of vertices")
	e := flag.Uint64("e", 1_000_000, "number of edges")
	alpha := flag.Float64("alpha", 0.7, "power-law exponent (powerlaw only)")
	weighted := flag.Bool("weighted", false, "attach uniform random edge weights")
	seed := flag.Uint64("seed", 1, "generator seed")
	dataset := flag.String("dataset", "", "materialize a registered scaled dataset instead")
	out := flag.String("o", "graph.bin", "output path")
	flag.Parse()

	var g *graph.Graph
	var err error
	var d harness.Dataset
	if *dataset != "" {
		var derr error
		d, derr = harness.DatasetByName(*dataset)
		if derr != nil {
			fail(derr)
		}
		g, err = d.Graph()
	} else {
		switch *kind {
		case "rmat":
			cfg := graph.DefaultRMAT(*v, *e, *seed)
			cfg.Weighted = *weighted
			g, err = graph.RMAT(cfg)
		case "powerlaw":
			g, err = graph.PowerLaw(graph.PowerLawConfig{
				NumVertices: *v, NumEdges: *e, Alpha: *alpha,
				Weighted: *weighted, Seed: *seed,
			})
		case "uniform":
			if *weighted {
				err = fmt.Errorf("-weighted is not supported by the uniform generator")
				break
			}
			g, err = graph.Uniform(*v, *e, *seed)
		default:
			err = fmt.Errorf("unknown generator %q", *kind)
		}
	}
	if err != nil {
		fail(err)
	}
	if err := graph.Save(*out, g); err != nil {
		fail(err)
	}
	s := graph.ComputeStats(g)
	fmt.Printf("wrote %s: |V|=%d |E|=%d maxdeg=%d gini=%.3f csr=%s\n",
		*out, s.NumVertices, s.NumEdges, s.MaxOutDeg, s.GiniOut,
		metrics.FormatBytes(g.CSRBytes(4)))
	if *dataset != "" {
		// Report how the dataset shards: partition count at the registry's
		// configured granularity (partitions are the unit a multi-board
		// array distributes over its boards).
		rc := harness.FlashWalkerConfig(d, core.AllOptions(), d.DefaultWalks, 1)
		part, perr := partition.Partition(g, rc.PartCfg)
		if perr != nil {
			fail(perr)
		}
		fmt.Printf("dataset %s: block=%s partitions=%d (usable to -boards %d)\n",
			d.Name, metrics.FormatBytes(d.SubgraphBytes), part.NumPartitions, part.NumPartitions)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "gengraph:", err)
	os.Exit(1)
}
