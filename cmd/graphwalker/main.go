// Command graphwalker runs the GraphWalker (ATC'20) baseline model on a
// graph and prints its result and time breakdown.
//
// Examples:
//
//	graphwalker -dataset CW-S -walks 10000 -mem 2097152
//	graphwalker -graph g.bin -walks 5000
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"flashwalker/internal/baseline"
	"flashwalker/internal/errs"
	"flashwalker/internal/fault"
	"flashwalker/internal/graph"
	"flashwalker/internal/harness"
	"flashwalker/internal/metrics"
	"flashwalker/internal/walk"
)

func main() {
	dataset := flag.String("dataset", "", "scaled dataset name (TT-S, FS-S, CW-S, R2B-S, R8B-S)")
	graphPath := flag.String("graph", "", "binary graph file (alternative to -dataset)")
	walks := flag.Int("walks", 10000, "number of walks")
	length := flag.Uint("length", harness.WalkLength, "walk length (hops)")
	mem := flag.Int64("mem", harness.GWMem8GB, "host memory bytes for graph blocks (scaled: 1MiB=4GB, 2MiB=8GB, 4MiB=16GB)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	faults := flag.Bool("faults", false, "enable deterministic fault injection on the SSD (default profile)")
	faultSeed := flag.Uint64("fault-seed", 0, "override the fault RNG seed (with -faults)")
	flag.Parse()

	spec := walk.Spec{Kind: walk.Unbiased, Length: uint32(*length)}

	var g *graph.Graph
	var cfg baseline.Config
	var err error
	switch {
	case *dataset != "":
		d, derr := harness.DatasetByName(*dataset)
		if derr != nil {
			fail(derr)
		}
		if g, err = d.Graph(); err != nil {
			fail(err)
		}
		cfg = harness.GraphWalkerConfig(d, *mem, *seed)
	case *graphPath != "":
		if g, err = graph.Load(*graphPath); err != nil {
			fail(err)
		}
		cfg = harness.GraphWalkerConfig(harness.Dataset{IDBytes: 4}, *mem, *seed)
	default:
		fail(fmt.Errorf("one of -dataset or -graph is required"))
	}

	if *faults {
		fc := fault.Default()
		if *faultSeed != 0 {
			fc.Seed = *faultSeed
		}
		cfg.Faults = fc
	}

	e, err := baseline.New(g, cfg, spec, *walks, *seed+100)
	if err != nil {
		fail(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := e.RunContext(ctx)
	if err != nil {
		if res != nil && errors.Is(err, errs.ErrCanceled) {
			fmt.Println("run canceled; partial result:")
			printResult(res)
			fmt.Fprintln(os.Stderr, "graphwalker:", err)
			os.Exit(130)
		}
		fail(err)
	}
	printResult(res)
}

func printResult(res *baseline.Result) {
	fmt.Printf("simulated time  %v\n", res.Time)
	fmt.Printf("walks           %d started, %d completed, %d dead-ended\n",
		res.Started, res.Completed, res.DeadEnded)
	fmt.Printf("hops            %d\n", res.Hops)
	fmt.Printf("block loads     %d (%s)\n", res.BlockLoads, metrics.FormatBytes(res.BlockBytes))
	fmt.Printf("walk spills     %d (%s out, %s back)\n",
		res.WalkSpills, metrics.FormatBytes(res.WalkSpillBytes), metrics.FormatBytes(res.WalkLoadBytes))
	fmt.Printf("iterations      %d\n", res.Iterations)
	fmt.Printf("PCIe traffic    %s\n", metrics.FormatBytes(res.Flash.HostBytes))
	if res.Faults != (fault.Counters{}) {
		fmt.Printf("faults          %d read errors, %d retries, %d plane stalls, %d chips degraded\n",
			res.Faults.ReadErrors, res.Faults.Retries, res.Faults.PlaneBusyStalls, res.Faults.DegradedChips)
	}
	if res.Breakdown != nil {
		fmt.Printf("time breakdown (component busy time):\n%s", res.Breakdown.String())
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "graphwalker:", err)
	os.Exit(1)
}
