// Command traceinfo summarizes a JSONL simulation trace produced by
// `flashwalker -trace`.
//
// Usage:
//
//	traceinfo trace.jsonl
//	flashwalker -dataset TT-S -walks 5000 -trace /dev/stdout | traceinfo -
package main

import (
	"fmt"
	"io"
	"os"

	"flashwalker/internal/trace"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: traceinfo <trace.jsonl | ->")
		os.Exit(2)
	}
	var r io.Reader
	if os.Args[1] == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fail(err)
		}
		defer f.Close()
		r = f
	}
	events, err := trace.ReadJSONL(r)
	if err != nil {
		fail(err)
	}
	fmt.Print(trace.Summarize(events).String())
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "traceinfo:", err)
	os.Exit(1)
}
