// DeepWalk-style corpus generation: fixed-length unbiased walks from every
// vertex produce the "sentences" a skip-gram model would train node
// embeddings on (Perozzi et al., KDD'14 — one of the workloads motivating
// FlashWalker).
//
// The example first materializes the walk corpus with the reference
// executor (so the paths are available to a downstream trainer), then runs
// the identical workload through the FlashWalker simulator to report what
// the in-storage accelerator would achieve.
package main

import (
	"fmt"
	"log"

	"flashwalker/internal/core"
	"flashwalker/internal/graph"
	"flashwalker/internal/harness"
	"flashwalker/internal/walk"
)

func main() {
	// A small social-network-like graph.
	g, err := graph.PowerLaw(graph.PowerLawConfig{
		NumVertices: 4096, NumEdges: 65536, Alpha: 0.8, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}

	// DeepWalk: gamma walks per vertex, length t. Here gamma=2, t=6.
	const walksPerVertex = 2
	spec := walk.Spec{Kind: walk.Unbiased, Length: 6}
	starts := walk.AllStarts(g)
	ws := walk.NewWalks(spec, starts, len(starts)*walksPerVertex)

	corpus := make([][]graph.VertexID, 0, len(ws))
	st, err := walk.Run(g, spec, ws, 99, func(i int, path []graph.VertexID) {
		cp := append([]graph.VertexID(nil), path...)
		corpus = append(corpus, cp)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d walks, %d hops, %d dead-ended\n",
		len(corpus), st.TotalHops, st.DeadEnded)
	fmt.Println("sample sentences:")
	for i := 0; i < 3 && i < len(corpus); i++ {
		fmt.Printf("  walk %d: %v\n", i, corpus[i])
	}
	fmt.Printf("most-visited vertex: %d (%d visits)\n",
		st.MaxVisited, st.Visits[st.MaxVisited])

	// The same workload on the in-storage accelerator.
	d := harness.Dataset{Name: "deepwalk", IDBytes: 4, SubgraphBytes: 4 << 10}
	rc := harness.FlashWalkerConfig(d, core.AllOptions(), len(ws), 1)
	eng, err := core.NewEngine(g, rc)
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFlashWalker would generate this corpus in %v (%.1fM hops/s in-storage)\n",
		res.Time, res.HopRate()/1e6)
}
