// Biased (weighted) random walks via inverse transform sampling — the
// second-order machinery behind node2vec-style sampling (Grover &
// Leskovec, KDD'16). Edge weights skew the neighbor-sampling probability
// distribution; FlashWalker implements the bias with the pre-computed
// cumulative-distribution list and a binary search in the walk updater
// (paper §III-B).
package main

import (
	"fmt"
	"log"

	"flashwalker/internal/core"
	"flashwalker/internal/graph"
	"flashwalker/internal/harness"
	"flashwalker/internal/walk"
)

func main() {
	// A weighted graph: R-MAT structure with uniform random edge weights.
	cfg := graph.DefaultRMAT(8192, 65536, 21)
	cfg.Weighted = true
	g, err := graph.RMAT(cfg)
	if err != nil {
		log.Fatal(err)
	}

	const numWalks = 8192
	spec := walk.Spec{Kind: walk.Biased, Length: 6}
	starts := walk.UniformStarts(g, numWalks, 13)
	ws := walk.NewWalks(spec, starts, numWalks)

	// Reference execution: verify the weight bias empirically on the
	// heaviest vertex.
	st, err := walk.Run(g, spec, ws, 17, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("biased corpus: %d walks, %d hops, most-visited vertex %d\n",
		st.Started, st.TotalHops, st.MaxVisited)

	// Show the sampling distribution at one vertex.
	v := st.MaxVisited
	if g.OutDegree(v) > 1 {
		w := g.OutWeights(v)
		sum := g.SumWeight(v)
		fmt.Printf("vertex %d neighbor-sampling probabilities (first 5 of %d):\n", v, len(w))
		for i := 0; i < 5 && i < len(w); i++ {
			fmt.Printf("  -> %-6d p=%.3f\n", g.OutEdges(v)[i], float64(w[i])/sum)
		}
	}

	// The same biased workload in-storage. Biased updates cost extra ITS
	// binary-search cycles in the walk updaters (visible as a lower hop
	// rate than the unbiased examples).
	d := harness.Dataset{Name: "node2vec", IDBytes: 4, SubgraphBytes: 8 << 10}
	rc := harness.FlashWalkerConfig(d, core.AllOptions(), numWalks, 5)
	rc.Spec = spec
	eng, err := core.NewEngine(g, rc)
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFlashWalker simulated time (1st-order biased): %v (%.1fM hops/s, %d pre-walks)\n",
		res.Time, res.HopRate()/1e6, res.PreWalks)

	// Full node2vec is second-order: the transition depends on the
	// previous vertex (return parameter p, in-out parameter q). In
	// storage this needs a neighbor test for a vertex whose subgraph may
	// not be loaded; the engine answers it from a DRAM-resident edge
	// Bloom filter, charging a channel-bus round trip per probe.
	rc2 := harness.FlashWalkerConfig(d, core.AllOptions(), numWalks, 5)
	rc2.Spec = walk.Spec{Kind: walk.SecondOrder, Length: 6, P: 0.5, Q: 2}
	eng2, err := core.NewEngine(g, rc2)
	if err != nil {
		log.Fatal(err)
	}
	res2, err := eng2.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FlashWalker simulated time (2nd-order p=0.5 q=2): %v (%d edge-filter probes)\n",
		res2.Time, res2.FilterProbes)
}
