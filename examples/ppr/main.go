// Personalized PageRank by random walks with restart: walks start at a
// seed vertex and terminate with probability alpha after each hop; the
// stationary visit distribution approximates the PPR vector (Fogaras et
// al. — one of the random-walk applications in the paper's introduction).
package main

import (
	"fmt"
	"log"
	"sort"

	"flashwalker/internal/core"
	"flashwalker/internal/graph"
	"flashwalker/internal/harness"
	"flashwalker/internal/walk"
)

func main() {
	g, err := graph.RMAT(graph.DefaultRMAT(8192, 131072, 5))
	if err != nil {
		log.Fatal(err)
	}

	const (
		seedVertex = graph.VertexID(42)
		numWalks   = 20000
		alpha      = 0.15 // restart probability
	)
	spec := walk.Spec{Kind: walk.Restart, Length: 64, StopProb: alpha}
	ws := walk.NewWalks(spec, []graph.VertexID{seedVertex}, numWalks)

	st, err := walk.Run(g, spec, ws, 7, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Rank vertices by visit count — the Monte-Carlo PPR estimate.
	type scored struct {
		v graph.VertexID
		n uint64
	}
	var ranking []scored
	for v, n := range st.Visits {
		if n > 0 {
			ranking = append(ranking, scored{graph.VertexID(v), n})
		}
	}
	sort.Slice(ranking, func(i, j int) bool { return ranking[i].n > ranking[j].n })

	total := float64(st.TotalHops + uint64(st.Started))
	fmt.Printf("personalized PageRank from vertex %d (%d walks, mean length %.1f):\n",
		seedVertex, numWalks, float64(st.TotalHops)/float64(numWalks))
	for i := 0; i < 10 && i < len(ranking); i++ {
		fmt.Printf("  #%-2d vertex %-6d ppr %.4f\n", i+1, ranking[i].v, float64(ranking[i].n)/total)
	}

	// The same computation fully in-storage: every walk starts at the
	// seed vertex, visits are tracked by the engine, and the PPR ranking
	// comes straight out of the accelerator run.
	d := harness.Dataset{Name: "ppr", IDBytes: 4, SubgraphBytes: 4 << 10}
	rc := harness.FlashWalkerConfig(d, core.AllOptions(), numWalks, 3)
	rc.Spec = spec
	rc.Starts = []graph.VertexID{seedVertex}
	rc.TrackVisits = true
	eng, err := core.NewEngine(g, rc)
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFlashWalker simulated time for %d restart walks: %v (%d hops)\n",
		numWalks, res.Time, res.Hops)
	scores := make([]float64, len(res.Visits))
	for v, n := range res.Visits {
		scores[v] = float64(n)
	}
	engTop := walk.TopK(scores, 5)
	fmt.Printf("in-storage PPR top-5: %v (reference top-5: %v)\n",
		engTop, walk.TopK(func() []float64 {
			out := make([]float64, len(st.Visits))
			for v, n := range st.Visits {
				out[v] = float64(n)
			}
			return out
		}(), 5))
}
