// Quickstart: build a small graph, run FlashWalker on it, and compare
// against the GraphWalker baseline — the minimal end-to-end tour of the
// library.
package main

import (
	"fmt"
	"log"

	"flashwalker/internal/baseline"
	"flashwalker/internal/core"
	"flashwalker/internal/graph"
	"flashwalker/internal/harness"
	"flashwalker/internal/metrics"
	"flashwalker/internal/walk"
)

func main() {
	// 1. Generate a skewed R-MAT graph (64 Ki edges).
	g, err := graph.RMAT(graph.DefaultRMAT(8192, 65536, 7))
	if err != nil {
		log.Fatal(err)
	}
	s := graph.ComputeStats(g)
	fmt.Printf("graph: %d vertices, %d edges, max out-degree %d, gini %.2f\n",
		s.NumVertices, s.NumEdges, s.MaxOutDeg, s.GiniOut)

	// 2. Describe the workload: 5000 unbiased walks of length 6 (the
	//    paper's fixed walk length).
	const numWalks = 5000
	d := harness.Dataset{Name: "quickstart", IDBytes: 4, SubgraphBytes: 4 << 10}

	// 3. Run FlashWalker (all optimizations on).
	rc := harness.FlashWalkerConfig(d, core.AllOptions(), numWalks, 1)
	eng, err := core.NewEngine(g, rc)
	if err != nil {
		log.Fatal(err)
	}
	fw, err := eng.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFlashWalker:  %v  (%d hops, %s flash read, %s over channel buses)\n",
		fw.Time, fw.Hops, metrics.FormatBytes(fw.Flash.ReadBytes),
		metrics.FormatBytes(fw.Flash.ChannelBytes))

	// 4. Run the GraphWalker baseline with a scaled 8 GB memory budget.
	gwCfg := harness.GraphWalkerConfig(d, harness.GWMem8GB, 1)
	spec := walk.Spec{Kind: walk.Unbiased, Length: harness.WalkLength}
	bl, err := baseline.New(g, gwCfg, spec, numWalks, 101)
	if err != nil {
		log.Fatal(err)
	}
	gw, err := bl.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GraphWalker:  %v  (%d hops, %s over PCIe)\n",
		gw.Time, gw.Hops, metrics.FormatBytes(gw.Flash.HostBytes))

	fmt.Printf("\nspeedup: %.2fx\n", float64(gw.Time)/float64(fw.Time))
}
