// Quickstart: boot the walk service in-process, then drive it end to end
// through the typed v1 API client — submit a FlashWalker job and the
// GraphWalker baseline, tail the FlashWalker job's completed walks live
// off the NDJSON stream, and compare the two simulated runtimes.
//
// The same client works against a separately running daemon: swap the
// embedded server for client.New("http://127.0.0.1:8080", nil).
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"

	"flashwalker/client"
	"flashwalker/internal/service"
)

func main() {
	// 1. Embed the service: a manager with two workers on a loopback port.
	//    (A production deployment runs `flashwalkerd` instead.)
	m, err := service.NewManager(service.NewRegistry(), service.Config{Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: service.NewHandler(m)}
	go srv.Serve(ln)
	defer srv.Close()

	ctx := context.Background()
	c := client.New("http://"+ln.Addr().String(), nil)

	// 2. Submit both engines against the paper's small Twitter sample.
	//    The tenant tag is how a shared daemon attributes quota and
	//    fair-share scheduling; it is optional on an idle private server.
	const numWalks = 5000
	fw, err := c.Submit(ctx, client.JobSpec{
		Graph: "TT-S", NumWalks: numWalks, Seed: 7, Tenant: "quickstart",
	})
	if err != nil {
		log.Fatal(err)
	}
	gw, err := c.Submit(ctx, client.JobSpec{
		Kind: client.KindGraphWalker, Graph: "TT-S", NumWalks: numWalks,
		Seed: 7, Tenant: "quickstart",
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Tail the FlashWalker job's completed walks while it runs. Each
	//    NDJSON frame is one finished walk; the trailer frame carries the
	//    job's terminal state and the offset a reconnect would resume from.
	st, err := c.Stream(ctx, fw.ID, 0)
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	var walks, deadEnds, hops uint64
	for {
		rec, ok := st.Next()
		if !ok {
			break
		}
		walks++
		hops += uint64(rec.Hops)
		if rec.DeadEnd {
			deadEnds++
		}
	}
	if err := st.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed %d walks live (%d hops, %d dead ends), trailer state %q\n",
		walks, hops, deadEnds, st.End().State)

	// 4. Wait for both results and compare the simulated runtimes.
	fwDone, err := c.Wait(ctx, fw.ID)
	if err != nil {
		log.Fatal(err)
	}
	gwDone, err := c.Wait(ctx, gw.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFlashWalker:  %d ns sim time (%d hops)\n",
		fwDone.Result.SimTimeNS, fwDone.Result.Hops)
	fmt.Printf("GraphWalker:  %d ns sim time (%d hops)\n",
		gwDone.Result.SimTimeNS, gwDone.Result.Hops)
	fmt.Printf("\nspeedup: %.2fx\n",
		float64(gwDone.Result.SimTimeNS)/float64(fwDone.Result.SimTimeNS))
}
