// SimRank similarity by random-walk pairs (Jeh & Widom, KDD'02 — one of
// the random-walk applications motivating FlashWalker, paper §I). Two
// walkers start at the queried vertices; their meeting time, discounted by
// the decay C, estimates the similarity. The exact SimRank semantics walk
// in-links, so the graph is reversed first.
package main

import (
	"fmt"
	"log"
	"sort"

	"flashwalker/internal/graph"
	"flashwalker/internal/walk"
)

func main() {
	g, err := graph.RMAT(graph.DefaultRMAT(2048, 32768, 33))
	if err != nil {
		log.Fatal(err)
	}
	// SimRank walks follow in-links: reverse the graph.
	rg := graph.Reverse(g)

	const (
		query = graph.VertexID(100)
		pairs = 4000
		decay = 0.6
	)
	// Score the query vertex against a candidate set (here: its own
	// 2-hop out-neighborhood plus a few random vertices).
	candidates := map[graph.VertexID]bool{}
	for _, n1 := range g.OutEdges(query) {
		candidates[n1] = true
		for _, n2 := range g.OutEdges(n1) {
			candidates[n2] = true
		}
	}
	delete(candidates, query)

	type scored struct {
		v graph.VertexID
		s float64
	}
	var results []scored
	for v := range candidates {
		s, err := walk.SimRank(rg, query, v, pairs, 8, decay, 7)
		if err != nil {
			log.Fatal(err)
		}
		if s > 0 {
			results = append(results, scored{v, s})
		}
	}
	sort.Slice(results, func(i, j int) bool { return results[i].s > results[j].s })

	fmt.Printf("SimRank (C=%.1f) of vertex %d against its 2-hop neighborhood (%d candidates):\n",
		decay, query, len(candidates))
	for i := 0; i < 10 && i < len(results); i++ {
		fmt.Printf("  #%-2d vertex %-6d s = %.4f\n", i+1, results[i].v, results[i].s)
	}
	if len(results) == 0 {
		fmt.Println("  (no positive similarities in the sampled pairs)")
	}

	// Sanity anchor: s(v,v) = 1 by definition.
	self, _ := walk.SimRank(rg, query, query, 1, 1, decay, 1)
	fmt.Printf("\nself-similarity s(%d,%d) = %.1f (definition check)\n", query, query, self)
}
