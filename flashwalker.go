// Package flashwalker is a simulation-based reproduction of
// "FlashWalker: An In-Storage Accelerator for Graph Random Walks"
// (Niu et al., IPDPS 2022).
//
// The implementation lives under internal/:
//
//   - internal/core — the FlashWalker accelerator hierarchy (the paper's
//     contribution)
//   - internal/baseline — the GraphWalker (ATC'20) comparison system
//   - internal/flash, internal/dram, internal/sim — the simulated SSD,
//     DRAM and discrete-event substrate
//   - internal/graph, internal/partition, internal/walk — graph data
//     structures, graph-block partitioning, and walk algorithms
//   - internal/harness — scaled datasets and the per-figure experiment
//     runners
//
// The benchmarks in bench_test.go regenerate every table and figure of
// the paper's evaluation section; cmd/experiments does the same from the
// command line at full scale.
package flashwalker
