module flashwalker

go 1.22
