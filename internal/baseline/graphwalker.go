// Package baseline re-implements GraphWalker (Wang et al., ATC'20), the
// software out-of-core random-walk system FlashWalker is evaluated against.
//
// GraphWalker's two ideas, both modelled here:
//
//   - Asynchronous walk updating: once a graph block is in memory, a walk
//     keeps hopping until it terminates or steps into a block that is NOT
//     memory-resident (no iteration-wise synchronization).
//   - State-aware scheduling: the next block to load is the one with the
//     most walks waiting in it.
//
// The engine executes against the same simulated SSD as FlashWalker, but
// through the host path: every graph byte crosses a channel bus AND the
// PCIe link, and updating happens at a CPU hop rate instead of in-storage
// updaters. Host memory is capacity-limited (the knob Figures 5/7 sweep);
// blocks evict LRU. Walk pools that outgrow their memory budget are
// spilled to disk and read back when their block is scheduled — the "walk
// management I/O" of Figure 1.
package baseline

import (
	"context"
	"fmt"

	"flashwalker/internal/errs"
	"flashwalker/internal/fault"
	"flashwalker/internal/flash"
	"flashwalker/internal/graph"
	"flashwalker/internal/metrics"
	"flashwalker/internal/partition"
	"flashwalker/internal/rng"
	"flashwalker/internal/sim"
	"flashwalker/internal/walk"
)

// Config parameterizes the GraphWalker model.
type Config struct {
	// MemoryBytes is the host memory available for graph blocks (the
	// paper's 4/8/16 GB knob, scaled).
	MemoryBytes int64
	// WalkMemBytes is the memory budget for walk pools before spilling.
	WalkMemBytes int64
	// BlockBytes is GraphWalker's block size (1 GB in the paper, scaled).
	BlockBytes int64
	// IDBytes is the vertex ID width.
	IDBytes int
	// CPUHopTime is the single-thread cost of one walk update (random DRAM
	// access dominated).
	CPUHopTime sim.Time
	// Threads is the host parallelism applied to walk updating.
	Threads int
	// Prefetch overlaps I/O with compute: while a batch updates, the
	// predicted next block (most waiting walks) loads in the background.
	// GraphWalker's real implementation issues asynchronous I/O; disable
	// to model a strictly serial load-then-update loop.
	Prefetch bool
	Seed     uint64
	// OnProgress, when non-nil, receives live counter snapshots from the
	// simulation goroutine at checkpoint boundaries during RunContext and
	// once more when the run ends.
	OnProgress func(Progress)
	// CheckpointEvery is the event interval between cancellation checks and
	// progress snapshots; 0 uses DefaultCheckpointEvery.
	CheckpointEvery uint64
	// Faults optionally perturbs the simulated SSD with the same
	// deterministic injector FlashWalker uses. GraphWalker has no
	// in-storage accelerators to fail over to, so degraded chips simply
	// serve reads with the injector's penalty. Note the baseline samples
	// hops from one shared stream, so unlike FlashWalker its trajectories
	// are NOT invariant under fault timing — only deterministic for a
	// fixed (seed, fault config) pair.
	Faults fault.Config
}

// DefaultCheckpointEvery is the default event interval between cooperative
// cancellation checks during RunContext. The baseline's events are much
// coarser than FlashWalker's (one per page read or CPU batch), so the
// interval is shorter.
const DefaultCheckpointEvery = 256

// Progress is a consistent mid-run snapshot of the baseline's headline
// counters, taken at an event boundary.
type Progress struct {
	Now        sim.Time
	Events     uint64
	Started    int
	Completed  int
	DeadEnded  int
	Hops       uint64
	BlockLoads uint64
	Iterations uint64
}

// WalksFinished reports completed + dead-ended walks at the snapshot.
func (p Progress) WalksFinished() int { return p.Completed + p.DeadEnded }

// Default returns a configuration matching the paper's host (8 cores) with
// memory left for the caller to scale.
func Default() Config {
	return Config{
		MemoryBytes:  8 << 30,
		WalkMemBytes: 64 << 20,
		BlockBytes:   1 << 30,
		IDBytes:      4,
		CPUHopTime:   120 * sim.Nanosecond,
		Threads:      8,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.MemoryBytes <= 0 || c.WalkMemBytes <= 0 || c.BlockBytes <= 0 {
		return fmt.Errorf("baseline: non-positive capacity: %w", errs.ErrInvalidConfig)
	}
	if c.IDBytes != 4 && c.IDBytes != 8 {
		return fmt.Errorf("baseline: IDBytes %d: %w", c.IDBytes, errs.ErrInvalidConfig)
	}
	if c.CPUHopTime <= 0 || c.Threads <= 0 {
		return fmt.Errorf("baseline: non-positive CPU parameters: %w", errs.ErrInvalidConfig)
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	return nil
}

// Result summarizes a GraphWalker run.
type Result struct {
	Time sim.Time

	Started   int
	Completed int
	DeadEnded int
	Hops      uint64

	Flash flash.Counters

	BlockLoads     uint64 // graph block loads from SSD
	BlockBytes     int64  // graph bytes read from SSD
	WalkSpills     uint64 // walk pool spills to disk
	WalkSpillBytes int64
	WalkLoadBytes  int64
	Iterations     uint64 // scheduling rounds
	Prefetches     uint64 // background block loads issued

	// Faults holds the injected-fault totals (all zero unless
	// Config.Faults.Enabled).
	Faults fault.Counters

	// Breakdown attributes busy time to components (Figure 1): "load
	// graph", "update walks", "walk I/O".
	Breakdown *metrics.Breakdown
}

// WalksFinished reports completed + dead-ended walks.
func (r *Result) WalksFinished() int { return r.Completed + r.DeadEnded }

// pool is the walk set waiting for one block. disk holds records whose
// buffer space was spilled to the SSD; the simulator keeps their state but
// charges the I/O both ways.
type pool struct {
	mem       []walkState
	disk      []walkState
	diskBytes int64
}

func (p *pool) total() int { return len(p.mem) + len(p.disk) }

type walkState struct {
	w         walk.Walk
	denseEdge int64 // >= 0: pre-chosen edge index for a dense vertex
	// prev is the previous vertex for second-order walks; hasPrev guards
	// the first hop.
	prev    graph.VertexID
	hasPrev bool
}

// Engine is one GraphWalker simulation.
type Engine struct {
	eng  *sim.Engine
	cfg  Config
	ssd  *flash.SSD
	g    *graph.Graph
	part *partition.Partitioned
	spec walk.Spec
	rng  *rng.RNG
	inj  *fault.Injector

	pools      []pool
	inMem      map[int]bool
	loading    map[int][]func() // in-flight loads and their waiters
	lru        []int            // block IDs, least-recent first
	memUsed    int64
	walkMemUse int64

	remaining int
	chipRR    int

	// numWalks/startSeed are kept verbatim for Snapshot: the baseline
	// restores by deterministic replay from the construction inputs.
	numWalks  int
	startSeed uint64

	res Result
}

// New builds a GraphWalker instance over the Table I/III SSD. numWalks
// walks start at uniformly random vertices drawn from startSeed.
func New(g *graph.Graph, cfg Config, spec walk.Spec, numWalks int, startSeed uint64) (*Engine, error) {
	return NewWithSSD(g, cfg, flash.Default(), spec, numWalks, startSeed)
}

// NewWithSSD is New with an explicit SSD configuration (tests use small
// geometries).
func NewWithSSD(g *graph.Graph, cfg Config, ssdCfg flash.Config, spec walk.Spec, numWalks int, startSeed uint64) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := spec.Validate(g); err != nil {
		return nil, err
	}
	if numWalks <= 0 {
		return nil, fmt.Errorf("baseline: numWalks %d <= 0: %w", numWalks, errs.ErrInvalidConfig)
	}
	part, err := partition.Partition(g, partition.Config{
		BlockBytes:            cfg.BlockBytes,
		IDBytes:               cfg.IDBytes,
		SubgraphsPerPartition: 1 << 30, // GraphWalker has no partition grouping
		RangeSize:             1 << 30,
	})
	if err != nil {
		return nil, err
	}
	eng := sim.New()
	ssd, err := flash.New(eng, ssdCfg)
	if err != nil {
		return nil, err
	}
	var inj *fault.Injector
	if cfg.Faults.Enabled {
		inj = fault.NewInjector(cfg.Faults, ssd.NumChips())
		ssd.AttachFaults(inj)
	}
	e := &Engine{
		eng:     eng,
		cfg:     cfg,
		ssd:     ssd,
		g:       g,
		part:    part,
		spec:    spec,
		rng:     rng.New(cfg.Seed),
		inj:     inj,
		pools:   make([]pool, part.NumBlocks()),
		inMem:   map[int]bool{},
		loading: map[int][]func(){},
	}
	e.res.Breakdown = metrics.NewBreakdown()
	e.numWalks = numWalks
	e.startSeed = startSeed
	e.seed(numWalks, startSeed)
	return e, nil
}

func (e *Engine) seed(n int, startSeed uint64) {
	starts := walk.UniformStarts(e.g, n, startSeed)
	ws := walk.NewWalks(e.spec, starts, n)
	e.remaining = len(ws)
	e.res.Started = len(ws)
	for i := range ws {
		st := walkState{w: ws[i], denseEdge: -1}
		e.routeTo(st, e.blockFor(&st))
	}
}

// blockFor resolves the destination block of a walk, pre-choosing the edge
// for dense vertices (their edges span several blocks).
func (e *Engine) blockFor(st *walkState) int {
	if meta, ok := e.part.Dense.Lookup(st.w.Cur); ok {
		var idx uint64
		if e.spec.Kind == walk.Biased {
			idx, _ = e.spec.ChooseEdge(e.rng, meta.OutDegree, e.g.OutCumWeights(st.w.Cur))
		} else {
			idx = e.rng.Uint64n(meta.OutDegree)
		}
		st.denseEdge = int64(idx)
		blockID, _ := partition.DenseBlockFor(meta, idx)
		return blockID
	}
	st.denseEdge = -1
	id, _ := e.part.BlockOf(st.w.Cur)
	return id
}

// routeTo places a walk into block b's pool, spilling pools to disk if the
// walk memory budget is exceeded.
func (e *Engine) routeTo(st walkState, b int) {
	if b < 0 {
		b = 0
	}
	e.pools[b].mem = append(e.pools[b].mem, st)
	e.walkMemUse += walk.StateBytes
	if e.walkMemUse > e.cfg.WalkMemBytes {
		e.spillLargestPool()
	}
}

// spillLargestPool writes the biggest in-memory pool to disk.
func (e *Engine) spillLargestPool() {
	best, bestLen := -1, 0
	for i := range e.pools {
		if e.inMem[i] {
			continue // the active blocks' pools drain immediately
		}
		if l := len(e.pools[i].mem); l > bestLen {
			best, bestLen = i, l
		}
	}
	if best < 0 || bestLen == 0 {
		return
	}
	p := &e.pools[best]
	bytes := int64(bestLen) * walk.StateBytes
	p.disk = append(p.disk, p.mem...)
	p.diskBytes += bytes
	p.mem = nil
	e.walkMemUse -= bytes
	e.res.WalkSpills++
	e.res.WalkSpillBytes += bytes
	// The spill crosses PCIe and programs flash pages.
	pages := e.ssd.PagesFor(bytes)
	e.res.Breakdown.Add("walk I/O", e.writePages(pages))
}

// writePages programs pages striped across chips, returning the elapsed
// wall time the write occupies (host waits on the transfer, not the
// program).
func (e *Engine) writePages(pages int) sim.Time {
	start := e.eng.Now()
	var end sim.Time
	bytes := int64(pages) * e.ssd.Cfg.PageBytes
	e.ssd.TransferHost(bytes, nil)
	for i := 0; i < pages; i++ {
		chip := e.ssd.Chip(e.chipRR)
		e.chipRR = (e.chipRR + 1) % e.ssd.NumChips()
		e.ssd.ProgramPagesFromBoard(chip, 1, nil)
	}
	end = start + sim.TransferTime(bytes, e.ssd.Cfg.PCIeBytesPerSec)
	return end - start
}

// Run executes the simulation and returns the result.
//
// Deprecated: use RunContext, which supports cancellation and live
// progress. Run is RunContext with a background context.
func (e *Engine) Run() (*Result, error) {
	return e.RunContext(context.Background())
}

// progress snapshots the engine's headline counters; only called from the
// simulation goroutine at event boundaries.
func (e *Engine) progress() Progress {
	return Progress{
		Now:        e.eng.Now(),
		Events:     e.eng.Processed(),
		Started:    e.res.Started,
		Completed:  e.res.Completed,
		DeadEnded:  e.res.DeadEnded,
		Hops:       e.res.Hops,
		BlockLoads: e.res.BlockLoads,
		Iterations: e.res.Iterations,
	}
}

// RunContext executes the simulation until every walk finishes or ctx is
// canceled. As with core.Engine.RunContext, cancellation is cooperative and
// checked only between events, so uncanceled runs are bit-identical to Run.
// On cancellation the partial Result is returned with an error satisfying
// errors.Is(err, errs.ErrCanceled).
func (e *Engine) RunContext(ctx context.Context) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if ctx.Done() != nil || e.cfg.OnProgress != nil {
		every := e.cfg.CheckpointEvery
		if every == 0 {
			every = DefaultCheckpointEvery
		}
		e.eng.SetCheckpoint(every, func() bool {
			if e.cfg.OnProgress != nil {
				e.cfg.OnProgress(e.progress())
			}
			return ctx.Err() == nil
		})
		defer e.eng.ClearCheckpoint()
	}
	e.eng.After(0, e.iterate)
	e.eng.Run()
	e.res.Time = e.eng.Now()
	e.res.Flash = e.ssd.Counters
	if e.inj != nil {
		e.res.Faults = e.inj.Counters
	}
	if e.cfg.OnProgress != nil {
		e.cfg.OnProgress(e.progress())
	}
	if e.eng.Halted() {
		return &e.res, fmt.Errorf("baseline: run canceled at %v: %w", e.res.Time, &errs.Canceled{
			Op: "baseline", Finished: e.res.WalksFinished(), Total: e.res.Started, Cause: ctx.Err(),
		})
	}
	if e.remaining != 0 {
		return nil, fmt.Errorf("baseline: %d walks unfinished", e.remaining)
	}
	return &e.res, nil
}

// pickBlock returns the block with the most waiting walks (state-aware
// scheduling), or -1 when no walks remain.
func (e *Engine) pickBlock() int {
	best, bestN := -1, 0
	for i := range e.pools {
		if n := e.pools[i].total(); n > bestN {
			best, bestN = i, n
		}
	}
	return best
}

// pickAbsentBlock returns the fullest block that is neither resident nor
// already loading (the prefetch target), or -1.
func (e *Engine) pickAbsentBlock() int {
	best, bestN := -1, 0
	for i := range e.pools {
		if e.inMem[i] {
			continue
		}
		if _, busy := e.loading[i]; busy {
			continue
		}
		if n := e.pools[i].total(); n > bestN {
			best, bestN = i, n
		}
	}
	return best
}

// iterate is one scheduling round: choose the fullest block, make it
// memory-resident (I/O), pull its spilled walks back (walk I/O), then
// update the batch (CPU), and repeat.
func (e *Engine) iterate() {
	b := e.pickBlock()
	if b < 0 {
		return // all walks finished
	}
	e.res.Iterations++
	e.ensureLoaded(b, func() {
		e.loadWalks(b, func() {
			e.updateBatch(b)
		})
	})
}

// ensureLoaded makes block b memory-resident, evicting LRU blocks as
// needed, and calls done when its bytes have crossed PCIe. Concurrent
// requests for the same block (scheduler + prefetcher) share one load.
func (e *Engine) ensureLoaded(b int, done func()) {
	if waiters, inFlight := e.loading[b]; inFlight {
		e.loading[b] = append(waiters, done)
		return
	}
	if e.inMem[b] {
		e.touch(b)
		done()
		return
	}
	blk := &e.part.Blocks[b]
	size := blk.Bytes
	if size == 0 {
		size = 1
	}
	for i := 0; e.memUsed+size > e.cfg.MemoryBytes && i < len(e.lru); {
		victim := e.lru[i]
		if _, busy := e.loading[victim]; busy {
			i++ // never evict a block still arriving
			continue
		}
		e.lru = append(e.lru[:i], e.lru[i+1:]...)
		delete(e.inMem, victim)
		vs := e.part.Blocks[victim].Bytes
		if vs == 0 {
			vs = 1
		}
		e.memUsed -= vs
	}
	e.inMem[b] = true
	e.lru = append(e.lru, b)
	e.memUsed += size
	pages := e.part.Pages(blk, e.ssd.Cfg.PageBytes)
	e.res.BlockLoads++
	e.res.BlockBytes += int64(pages) * e.ssd.Cfg.PageBytes
	if pages == 0 {
		done()
		return
	}
	e.loading[b] = []func(){done}
	start := e.eng.Now()
	left := pages
	for i := 0; i < pages; i++ {
		chip := e.ssd.Chip(e.chipRR)
		e.chipRR = (e.chipRR + 1) % e.ssd.NumChips()
		e.ssd.ReadPagesToHost(chip, 1, func() {
			left--
			if left == 0 {
				e.res.Breakdown.Add("load graph", e.eng.Now()-start)
				waiters := e.loading[b]
				delete(e.loading, b)
				for _, w := range waiters {
					w()
				}
			}
		})
	}
}

// touch refreshes b's LRU position.
func (e *Engine) touch(b int) {
	for i, id := range e.lru {
		if id == b {
			e.lru = append(e.lru[:i], e.lru[i+1:]...)
			e.lru = append(e.lru, b)
			return
		}
	}
}

// loadWalks reads block b's spilled walk pages back from disk.
func (e *Engine) loadWalks(b int, done func()) {
	p := &e.pools[b]
	if len(p.disk) == 0 {
		done()
		return
	}
	bytes := p.diskBytes
	pages := e.ssd.PagesFor(bytes)
	e.res.WalkLoadBytes += bytes
	p.mem = append(p.mem, p.disk...)
	e.walkMemUse += bytes
	p.disk = nil
	p.diskBytes = 0
	start := e.eng.Now()
	left := pages
	for i := 0; i < pages; i++ {
		chip := e.ssd.Chip(e.chipRR)
		e.chipRR = (e.chipRR + 1) % e.ssd.NumChips()
		e.ssd.ReadPagesToHost(chip, 1, func() {
			left--
			if left == 0 {
				e.res.Breakdown.Add("walk I/O", e.eng.Now()-start)
				done()
			}
		})
	}
	if pages == 0 {
		done()
	}
}

// updateBatch runs every walk waiting for block b until it terminates or
// leaves the memory-resident set (asynchronous walk updating).
func (e *Engine) updateBatch(b int) {
	batch := e.pools[b].mem
	e.pools[b].mem = nil
	e.walkMemUse -= int64(len(batch)) * walk.StateBytes
	if e.walkMemUse < 0 {
		e.walkMemUse = 0
	}
	var hops uint64
	type movedWalk struct {
		st walkState
		b  int
	}
	var moved []movedWalk
	for i := range batch {
		st := batch[i]
		for {
			deg := e.g.OutDegree(st.w.Cur)
			if deg == 0 {
				e.res.DeadEnded++
				e.remaining--
				break
			}
			var idx uint64
			switch {
			case st.denseEdge >= 0:
				idx = uint64(st.denseEdge)
				st.denseEdge = -1
			case e.spec.Kind == walk.SecondOrder && st.hasPrev:
				idx, _, _ = e.spec.ChooseEdgeSecondOrder(e.g, e.rng, st.w.Cur, st.prev)
			default:
				idx, _ = e.spec.ChooseEdge(e.rng, deg, e.g.OutCumWeights(st.w.Cur))
			}
			st.prev, st.hasPrev = st.w.Cur, true
			st.w.Cur = e.g.OutEdges(st.w.Cur)[idx]
			st.w.Hop--
			hops++
			if e.spec.TerminatesAfterHop(e.rng, &st.w) {
				e.res.Completed++
				e.remaining--
				break
			}
			nb := e.blockFor(&st)
			if nb >= 0 && !e.inMem[nb] {
				moved = append(moved, movedWalk{st: st, b: nb})
				break
			}
		}
	}
	e.res.Hops += hops
	cpu := sim.Time(hops) * e.cfg.CPUHopTime / sim.Time(e.cfg.Threads)
	if cpu == 0 && len(batch) > 0 {
		cpu = e.cfg.CPUHopTime
	}
	if cpu > 0 {
		e.res.Breakdown.Add("update walks", cpu)
	}
	if e.cfg.Prefetch {
		// Overlap: start loading the predicted next block while the CPU
		// chews on this batch. The prediction ignores the walks still
		// moving in this batch, exactly like an async I/O thread would.
		if nb := e.pickAbsentBlock(); nb >= 0 {
			e.res.Prefetches++
			e.ensureLoaded(nb, func() {})
		}
	}
	e.eng.After(cpu, func() {
		for i := range moved {
			e.routeTo(moved[i].st, moved[i].b)
		}
		e.iterate()
	})
}
