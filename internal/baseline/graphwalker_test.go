package baseline

import (
	"testing"

	"flashwalker/internal/flash"
	"flashwalker/internal/graph"
	"flashwalker/internal/sim"
	"flashwalker/internal/walk"
)

// testCfg is a scaled configuration: 16 KiB memory, 1 KiB blocks.
func testCfg() Config {
	return Config{
		MemoryBytes:  16 << 10,
		WalkMemBytes: 32 << 10,
		BlockBytes:   1 << 10,
		IDBytes:      4,
		CPUHopTime:   120 * sim.Nanosecond,
		Threads:      8,
		Seed:         1,
	}
}

func smallSSD() flash.Config {
	c := flash.Default()
	c.Channels = 4
	c.ChipsPerChannel = 2
	return c
}

func run(t *testing.T, g *graph.Graph, cfg Config, spec walk.Spec, n int) *Result {
	t.Helper()
	e, err := NewWithSSD(g, cfg, smallSSD(), spec, n, 7)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func rmat(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.RMAT(graph.DefaultRMAT(2048, 16384, 3))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func unbiased6() walk.Spec { return walk.Spec{Kind: walk.Unbiased, Length: 6} }

func TestAllWalksFinish(t *testing.T) {
	res := run(t, rmat(t), testCfg(), unbiased6(), 300)
	if res.WalksFinished() != res.Started || res.Started != 300 {
		t.Fatalf("finished %d of %d", res.WalksFinished(), res.Started)
	}
	if res.Time <= 0 {
		t.Fatal("no time elapsed")
	}
}

func TestHopBudgetRespected(t *testing.T) {
	res := run(t, rmat(t), testCfg(), unbiased6(), 300)
	if res.Hops > uint64(res.Started)*6 {
		t.Fatalf("hops %d exceed budget", res.Hops)
	}
	if res.Hops < uint64(res.Completed)*6 {
		t.Fatalf("completed walks under-hopped: %d", res.Hops)
	}
}

func TestRingWalkExactness(t *testing.T) {
	res := run(t, graph.Ring(512), testCfg(), unbiased6(), 100)
	if res.Completed != 100 || res.DeadEnded != 0 {
		t.Fatalf("completed %d dead %d", res.Completed, res.DeadEnded)
	}
	if res.Hops != 600 {
		t.Fatalf("hops %d", res.Hops)
	}
}

func TestDeterminism(t *testing.T) {
	g := rmat(t)
	a := run(t, g, testCfg(), unbiased6(), 200)
	b := run(t, g, testCfg(), unbiased6(), 200)
	if a.Time != b.Time || a.Hops != b.Hops || a.BlockLoads != b.BlockLoads {
		t.Fatal("runs with the same seed differ")
	}
}

func TestIOPathUsesPCIe(t *testing.T) {
	res := run(t, rmat(t), testCfg(), unbiased6(), 300)
	if res.Flash.HostBytes == 0 {
		t.Fatal("no bytes crossed PCIe")
	}
	if res.Flash.ChannelBytes == 0 {
		t.Fatal("no bytes crossed channel buses")
	}
	if res.BlockLoads == 0 {
		t.Fatal("no block loads")
	}
}

func TestSmallMemoryLoadsMore(t *testing.T) {
	g := rmat(t)
	small := testCfg()
	small.MemoryBytes = 4 << 10
	large := testCfg()
	large.MemoryBytes = 1 << 20 // whole graph fits
	rs := run(t, g, small, unbiased6(), 300)
	rl := run(t, g, large, unbiased6(), 300)
	if rs.BlockBytes <= rl.BlockBytes {
		t.Fatalf("smaller memory read less: %d vs %d", rs.BlockBytes, rl.BlockBytes)
	}
	if rs.Time <= rl.Time {
		t.Fatalf("smaller memory was faster: %v vs %v", rs.Time, rl.Time)
	}
}

func TestWholeGraphInMemoryLoadsOnce(t *testing.T) {
	g := rmat(t)
	cfg := testCfg()
	cfg.MemoryBytes = 1 << 20
	res := run(t, g, cfg, unbiased6(), 300)
	// Every block is loaded at most once.
	nb := res.BlockLoads
	var blocks uint64
	// Count blocks by reading the graph's partitioning indirectly: loads
	// never exceed the number of blocks when memory holds everything.
	blocks = uint64(g.NumEdges()*4/uint64(cfg.BlockBytes)) + 2
	if nb > blocks*2 {
		t.Fatalf("in-memory run loaded %d blocks (graph ~%d)", nb, blocks)
	}
}

func TestWalkSpilling(t *testing.T) {
	cfg := testCfg()
	cfg.WalkMemBytes = 512 // force spills
	res := run(t, rmat(t), cfg, unbiased6(), 2000)
	if res.WalksFinished() != res.Started {
		t.Fatalf("finished %d of %d", res.WalksFinished(), res.Started)
	}
	if res.WalkSpills == 0 || res.WalkSpillBytes == 0 {
		t.Fatal("tiny walk memory never spilled")
	}
	if res.WalkLoadBytes == 0 {
		t.Fatal("spilled walks never loaded back")
	}
}

func TestBreakdownPopulated(t *testing.T) {
	res := run(t, rmat(t), testCfg(), unbiased6(), 300)
	if res.Breakdown.Get("load graph") == 0 {
		t.Fatal("no load-graph time")
	}
	if res.Breakdown.Get("update walks") == 0 {
		t.Fatal("no update time")
	}
	// Out-of-core runs on slow storage are I/O bound (Figure 1).
	if res.Breakdown.Get("load graph") < res.Breakdown.Get("update walks") {
		t.Fatalf("I/O %v not dominant over CPU %v",
			res.Breakdown.Get("load graph"), res.Breakdown.Get("update walks"))
	}
}

func TestDenseVertexHandling(t *testing.T) {
	res := run(t, graph.Star(2000), testCfg(), unbiased6(), 200)
	if res.WalksFinished() != res.Started {
		t.Fatalf("finished %d of %d on star", res.WalksFinished(), res.Started)
	}
}

func TestBiasedWalks(t *testing.T) {
	cfg := graph.DefaultRMAT(1024, 8192, 5)
	cfg.Weighted = true
	g, err := graph.RMAT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, g, testCfg(), walk.Spec{Kind: walk.Biased, Length: 6}, 200)
	if res.WalksFinished() != res.Started {
		t.Fatal("biased walks incomplete")
	}
}

func TestRestartWalks(t *testing.T) {
	res := run(t, graph.Complete(128), testCfg(), walk.Spec{Kind: walk.Restart, Length: 100, StopProb: 0.25}, 500)
	if res.Completed != res.Started {
		t.Fatal("restart walks incomplete")
	}
	mean := float64(res.Hops) / float64(res.Started)
	if mean < 3 || mean > 6 {
		t.Fatalf("restart mean length %v, want ~4", mean)
	}
}

func TestDeadEnds(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3) // 3 is a sink
	g, _ := b.Build()
	res := run(t, g, testCfg(), unbiased6(), 50)
	if res.DeadEnded != 50 {
		t.Fatalf("dead-ended %d of 50", res.DeadEnded)
	}
}

func TestConfigValidation(t *testing.T) {
	g := graph.Ring(8)
	bads := []Config{
		{MemoryBytes: 0, WalkMemBytes: 1, BlockBytes: 1, IDBytes: 4, CPUHopTime: 1, Threads: 1},
		{MemoryBytes: 1, WalkMemBytes: 1, BlockBytes: 1 << 10, IDBytes: 5, CPUHopTime: 1, Threads: 1},
		{MemoryBytes: 1, WalkMemBytes: 1, BlockBytes: 1 << 10, IDBytes: 4, CPUHopTime: 0, Threads: 1},
	}
	for i, bad := range bads {
		if _, err := New(g, bad, unbiased6(), 10, 1); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := New(g, testCfg(), unbiased6(), 0, 1); err == nil {
		t.Error("zero walks accepted")
	}
	if _, err := New(g, testCfg(), walk.Spec{Kind: walk.Biased, Length: 6}, 10, 1); err == nil {
		t.Error("biased on unweighted accepted")
	}
}

func TestDefaultConfigValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestIterationsCounted(t *testing.T) {
	res := run(t, rmat(t), testCfg(), unbiased6(), 300)
	if res.Iterations == 0 {
		t.Fatal("no iterations recorded")
	}
}
