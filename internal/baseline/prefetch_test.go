package baseline

import (
	"testing"

	"flashwalker/internal/graph"
	"flashwalker/internal/walk"
)

func TestPrefetchCompletesAllWalks(t *testing.T) {
	cfg := testCfg()
	cfg.Prefetch = true
	res := run(t, rmat(t), cfg, unbiased6(), 400)
	if res.WalksFinished() != 400 {
		t.Fatalf("finished %d of 400 with prefetch", res.WalksFinished())
	}
	if res.Prefetches == 0 {
		t.Fatal("prefetch mode issued no prefetches")
	}
}

func TestPrefetchNeverSlower(t *testing.T) {
	// On an I/O-bound configuration, overlap must help (or at least not
	// hurt beyond mispredicted loads' extra traffic).
	g := rmat(t)
	cfg := testCfg()
	cfg.MemoryBytes = 8 << 10 // heavy pressure
	serial := run(t, g, cfg, unbiased6(), 1000)
	cfg.Prefetch = true
	overlapped := run(t, g, cfg, unbiased6(), 1000)
	if overlapped.Time > serial.Time*11/10 {
		t.Fatalf("prefetch slowed the run: %v vs %v", overlapped.Time, serial.Time)
	}
}

func TestPrefetchDeterminism(t *testing.T) {
	g := rmat(t)
	cfg := testCfg()
	cfg.Prefetch = true
	a := run(t, g, cfg, unbiased6(), 300)
	b := run(t, g, cfg, unbiased6(), 300)
	if a.Time != b.Time || a.Prefetches != b.Prefetches {
		t.Fatal("prefetch runs not deterministic")
	}
}

func TestPrefetchMayReadMore(t *testing.T) {
	// Mispredictions cost extra block loads; the counters must expose
	// them rather than hide them.
	g := rmat(t)
	cfg := testCfg()
	cfg.MemoryBytes = 8 << 10
	serial := run(t, g, cfg, unbiased6(), 1000)
	cfg.Prefetch = true
	overlapped := run(t, g, cfg, unbiased6(), 1000)
	if overlapped.BlockLoads < serial.BlockLoads {
		t.Fatalf("prefetch loaded fewer blocks (%d < %d)?", overlapped.BlockLoads, serial.BlockLoads)
	}
}

func TestSecondOrderWalksOnBaseline(t *testing.T) {
	// The baseline executes dynamic walks with exact adjacency (host
	// memory holds the graph blocks).
	b := graph.NewBuilder(64)
	for v := uint64(0); v < 64; v++ {
		b.AddEdge(v, (v+1)%64)
		b.AddEdge((v+1)%64, v)
		b.AddEdge(v, (v+9)%64)
		b.AddEdge((v+9)%64, v)
	}
	g, _ := b.Build()
	spec := walk.Spec{Kind: walk.SecondOrder, Length: 8, P: 0.5, Q: 2}
	res := run(t, g, testCfg(), spec, 200)
	if res.Completed != 200 {
		t.Fatalf("completed %d", res.Completed)
	}
	if res.Hops != 200*8 {
		t.Fatalf("hops %d", res.Hops)
	}
}
