package baseline

import (
	"context"
	"fmt"

	"flashwalker/internal/errs"
	"flashwalker/internal/fault"
	"flashwalker/internal/flash"
	"flashwalker/internal/graph"
	"flashwalker/internal/sim"
	"flashwalker/internal/walk"
)

// The baseline engine is closure-driven: its pending events capture Go
// closures (block-load completions, batch continuations), which no codec can
// serialize. Its snapshot is therefore a replay record, not a state image:
// the complete set of construction inputs, from which the whole run is a
// pure function — GraphWalker itself restarts interrupted walks the same
// way. ResumeContext rebuilds the engine from these inputs and re-runs it
// from event zero, producing the identical Result (same shared RNG stream,
// same event order); it trades repeated simulation time for zero mid-run
// serialization, which is acceptable because the baseline exists for
// comparison sweeps, not long-lived jobs.

// SnapshotConfig is Config minus the non-serializable OnProgress hook.
type SnapshotConfig struct {
	MemoryBytes     int64
	WalkMemBytes    int64
	BlockBytes      int64
	IDBytes         int
	CPUHopTime      sim.Time
	Threads         int
	Prefetch        bool
	Seed            uint64
	CheckpointEvery uint64
	Faults          fault.Config
}

// Snapshot records everything needed to reproduce a GraphWalker run.
type Snapshot struct {
	Cfg           SnapshotConfig
	SSDCfg        flash.Config
	Spec          walk.Spec
	NumWalks      int
	StartSeed     uint64
	GraphVertices uint64
	GraphEdges    uint64
}

// Snapshot captures the engine's construction inputs. Unlike
// core.Engine.Snapshot it can be taken at any moment — the image does not
// depend on how far the run has progressed.
func (e *Engine) Snapshot() *Snapshot {
	c := e.cfg
	return &Snapshot{
		Cfg: SnapshotConfig{
			MemoryBytes: c.MemoryBytes, WalkMemBytes: c.WalkMemBytes,
			BlockBytes: c.BlockBytes, IDBytes: c.IDBytes,
			CPUHopTime: c.CPUHopTime, Threads: c.Threads,
			Prefetch: c.Prefetch, Seed: c.Seed,
			CheckpointEvery: c.CheckpointEvery, Faults: c.Faults,
		},
		SSDCfg:        e.ssd.Cfg,
		Spec:          e.spec,
		NumWalks:      e.numWalks,
		StartSeed:     e.startSeed,
		GraphVertices: e.g.NumVertices(),
		GraphEdges:    e.g.NumEdges(),
	}
}

// ResumeContext reproduces the snapshotted run over the same graph by
// deterministic replay from event zero and drives it to completion. The
// returned Result is identical to what the uninterrupted run would have
// produced. onProgress, when non-nil, re-attaches live progress.
func ResumeContext(ctx context.Context, g *graph.Graph, snap *Snapshot, onProgress func(Progress)) (*Result, error) {
	if snap == nil {
		return nil, fmt.Errorf("baseline: nil snapshot: %w", errs.ErrInvalidConfig)
	}
	if g.NumVertices() != snap.GraphVertices || g.NumEdges() != snap.GraphEdges {
		return nil, fmt.Errorf("baseline: snapshot was taken over a graph with %d vertices / %d edges, got %d / %d: %w",
			snap.GraphVertices, snap.GraphEdges, g.NumVertices(), g.NumEdges(), errs.ErrInvalidConfig)
	}
	cfg := Config{
		MemoryBytes: snap.Cfg.MemoryBytes, WalkMemBytes: snap.Cfg.WalkMemBytes,
		BlockBytes: snap.Cfg.BlockBytes, IDBytes: snap.Cfg.IDBytes,
		CPUHopTime: snap.Cfg.CPUHopTime, Threads: snap.Cfg.Threads,
		Prefetch: snap.Cfg.Prefetch, Seed: snap.Cfg.Seed,
		CheckpointEvery: snap.Cfg.CheckpointEvery, Faults: snap.Cfg.Faults,
		OnProgress: onProgress,
	}
	e, err := NewWithSSD(g, cfg, snap.SSDCfg, snap.Spec, snap.NumWalks, snap.StartSeed)
	if err != nil {
		return nil, err
	}
	return e.RunContext(ctx)
}
