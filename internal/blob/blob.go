// Package blob is the pluggable durable-state backend behind the walk
// service: a minimal object-store interface over sealed byte blobs, with
// three implementations — the local filesystem (byte-compatible with the
// state-directory trees earlier versions wrote), an in-memory map for
// tests, and an HTTP client speaking S3-style verbs against a bucket URL.
//
// The service writes three families of keys through one Store:
//
//	jobs/<id>.json        job journal records (whole-record rewrites)
//	snapshots/<id>.snap   engine snapshot containers (internal/snapshot)
//	streams/<id>.ndjson   completed-walk spools (append-only NDJSON)
//
// Because the snapshot codec is versioned, kind-tagged and SHA-256-sealed,
// the bytes are self-validating wherever they land: a job journaled on one
// flashwalkerd can be recovered and resumed by another pointed at the same
// store, which is the storage foundation the multi-node roadmap items
// build on.
package blob

import (
	"errors"
	"fmt"
	"strings"
)

// ErrNotFound reports a Get against a key with no blob. Implementations
// wrap it so callers can match with errors.Is.
var ErrNotFound = errors.New("blob: not found")

// Store is a flat keyspace of byte blobs. Keys are slash-separated
// relative paths ("jobs/job-3.json"); ValidKey defines the grammar.
//
// The contract every implementation honors:
//
//   - Put is atomic: a concurrent or crash-interrupted reader observes
//     either the previous blob or the new one in full, never a torn mix.
//   - Get returns ErrNotFound (wrapped) for absent keys.
//   - Append extends a blob, creating it when absent. Appends are the one
//     non-sealed write path (the NDJSON spool); readers tolerate a torn
//     tail by truncating to the longest valid prefix.
//   - Delete of an absent key is not an error.
//   - List returns every key with the given prefix, sorted ascending;
//     in-flight temporary artifacts of atomic Puts are never listed.
//
// Methods may be called from multiple goroutines.
type Store interface {
	Put(key string, data []byte) error
	Get(key string) ([]byte, error)
	Append(key string, data []byte) error
	Delete(key string) error
	List(prefix string) ([]string, error)
}

// ValidKey enforces the key grammar shared by every backend: non-empty
// slash-separated segments with no ".", "..", or empty segment, so a key
// can never escape an FS store's root or alias another key.
func ValidKey(key string) error {
	if key == "" {
		return fmt.Errorf("blob: empty key")
	}
	if strings.ContainsAny(key, "\\\x00") {
		return fmt.Errorf("blob: key %q contains forbidden characters", key)
	}
	for _, seg := range strings.Split(key, "/") {
		switch seg {
		case "", ".", "..":
			return fmt.Errorf("blob: key %q has invalid path segment %q", key, seg)
		}
	}
	return nil
}
