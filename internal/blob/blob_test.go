package blob_test

import (
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"flashwalker/internal/blob"
)

// eachStore runs f against every Store implementation, so the whole
// contract below is proven for the FS layout, the in-memory map, and the
// HTTP client driven against the package's own Handler.
func eachStore(t *testing.T, f func(t *testing.T, s blob.Store)) {
	t.Run("fs", func(t *testing.T) {
		s, err := blob.NewFS(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		f(t, s)
	})
	t.Run("mem", func(t *testing.T) {
		f(t, blob.NewMem())
	})
	t.Run("http", func(t *testing.T) {
		ts := httptest.NewServer(blob.Handler(blob.NewMem()))
		t.Cleanup(ts.Close)
		s, err := blob.NewHTTP(ts.URL, nil)
		if err != nil {
			t.Fatal(err)
		}
		f(t, s)
	})
}

func TestStoreRoundTrip(t *testing.T) {
	eachStore(t, func(t *testing.T, s blob.Store) {
		if _, err := s.Get("jobs/missing.json"); !errors.Is(err, blob.ErrNotFound) {
			t.Fatalf("Get of absent key: %v, want ErrNotFound", err)
		}
		if err := s.Put("jobs/a.json", []byte("one")); err != nil {
			t.Fatalf("Put: %v", err)
		}
		got, err := s.Get("jobs/a.json")
		if err != nil || string(got) != "one" {
			t.Fatalf("Get = %q, %v; want \"one\"", got, err)
		}
		// Overwrite replaces the whole blob.
		if err := s.Put("jobs/a.json", []byte("two")); err != nil {
			t.Fatalf("overwrite Put: %v", err)
		}
		if got, _ = s.Get("jobs/a.json"); string(got) != "two" {
			t.Fatalf("after overwrite Get = %q, want \"two\"", got)
		}
		if err := s.Delete("jobs/a.json"); err != nil {
			t.Fatalf("Delete: %v", err)
		}
		if _, err := s.Get("jobs/a.json"); !errors.Is(err, blob.ErrNotFound) {
			t.Fatalf("Get after Delete: %v, want ErrNotFound", err)
		}
		if err := s.Delete("jobs/a.json"); err != nil {
			t.Fatalf("Delete of absent key must be a no-op, got %v", err)
		}
	})
}

func TestStoreAppend(t *testing.T) {
	eachStore(t, func(t *testing.T, s blob.Store) {
		// Append to an absent key creates it.
		if err := s.Append("streams/x.ndjson", []byte("a\n")); err != nil {
			t.Fatalf("creating Append: %v", err)
		}
		if err := s.Append("streams/x.ndjson", []byte("b\n")); err != nil {
			t.Fatalf("second Append: %v", err)
		}
		got, err := s.Get("streams/x.ndjson")
		if err != nil || string(got) != "a\nb\n" {
			t.Fatalf("Get after appends = %q, %v; want \"a\\nb\\n\"", got, err)
		}
	})
}

func TestStoreList(t *testing.T) {
	eachStore(t, func(t *testing.T, s blob.Store) {
		for _, k := range []string{"jobs/job-2.json", "jobs/job-10.json", "snapshots/job-2.snap"} {
			if err := s.Put(k, []byte("x")); err != nil {
				t.Fatalf("Put %s: %v", k, err)
			}
		}
		keys, err := s.List("jobs/")
		if err != nil {
			t.Fatalf("List: %v", err)
		}
		want := []string{"jobs/job-10.json", "jobs/job-2.json"}
		if !reflect.DeepEqual(keys, want) {
			t.Fatalf("List(jobs/) = %v, want %v (sorted)", keys, want)
		}
		keys, err = s.List("nothing/")
		if err != nil || len(keys) != 0 {
			t.Fatalf("List of empty prefix = %v, %v; want none", keys, err)
		}
	})
}

func TestStoreRejectsBadKeys(t *testing.T) {
	eachStore(t, func(t *testing.T, s blob.Store) {
		for _, k := range []string{"", "../escape", "a//b", "a/./b", "jobs/", "/abs"} {
			if err := s.Put(k, []byte("x")); err == nil {
				t.Errorf("Put(%q) accepted an invalid key", k)
			}
			if _, err := s.Get(k); err == nil {
				t.Errorf("Get(%q) accepted an invalid key", k)
			}
		}
	})
}

// TestFSListSkipsTempFiles pins the atomic-Put contract at the listing
// level: a crash can leave a ".tmp-" artifact behind, and it must never
// surface as a key.
func TestFSListSkipsTempFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := blob.NewFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("jobs/a.json", []byte("x")); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(dir, "jobs", "a.json.tmp-123")
	if err := os.WriteFile(tmp, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	keys, err := s.List("jobs/")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(keys, []string{"jobs/a.json"}) {
		t.Fatalf("List = %v, want just jobs/a.json (temp file leaked)", keys)
	}
}

// TestFSLayoutMatchesStateDir pins byte-compatibility with the layout the
// service wrote before the store existed: files created directly on disk
// are visible through the store under their relative keys, and blobs the
// store writes land at the same paths.
func TestFSLayoutMatchesStateDir(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "jobs"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "jobs", "job-1.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := blob.NewFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("jobs/job-1.json")
	if err != nil || string(got) != "{}" {
		t.Fatalf("Get of pre-existing file = %q, %v", got, err)
	}
	if err := s.Put("streams/job-1.ndjson", []byte("line\n")); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "streams", "job-1.ndjson"))
	if err != nil || string(raw) != "line\n" {
		t.Fatalf("on-disk bytes = %q, %v", raw, err)
	}
}
