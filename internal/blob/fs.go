package blob

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"flashwalker/internal/snapshot"
)

// FS is the local-filesystem Store: key "a/b.ext" lives at <root>/a/b.ext,
// which makes it byte-compatible with the state-directory layout earlier
// versions of the service wrote directly — an old -state-dir tree recovers
// unchanged when wrapped in an FS store.
type FS struct {
	root string
}

// NewFS opens (creating if needed) an FS store rooted at dir.
func NewFS(dir string) (*FS, error) {
	if dir == "" {
		return nil, fmt.Errorf("blob: empty FS store root")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("blob: fs store root: %w", err)
	}
	return &FS{root: dir}, nil
}

func (f *FS) path(key string) (string, error) {
	if err := ValidKey(key); err != nil {
		return "", err
	}
	return filepath.Join(f.root, filepath.FromSlash(key)), nil
}

// Put writes the blob atomically (temp file + fsync + rename + directory
// fsync), creating parent directories as needed.
func (f *FS) Put(key string, data []byte) error {
	p, err := f.path(key)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	return snapshot.WriteFileAtomic(p, data, 0o644)
}

func (f *FS) Get(key string) ([]byte, error) {
	p, err := f.path(key)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(p)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
		}
		return nil, err
	}
	return data, nil
}

func (f *FS) Append(key string, data []byte) error {
	p, err := f.path(key)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	fh, err := os.OpenFile(p, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := fh.Write(data); err != nil {
		fh.Close()
		return err
	}
	return fh.Close()
}

func (f *FS) Delete(key string) error {
	p, err := f.path(key)
	if err != nil {
		return err
	}
	if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

func (f *FS) List(prefix string) ([]string, error) {
	var keys []string
	err := filepath.WalkDir(f.root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			if os.IsNotExist(err) {
				return nil
			}
			return err
		}
		if d.IsDir() {
			return nil
		}
		rel, err := filepath.Rel(f.root, p)
		if err != nil {
			return err
		}
		key := filepath.ToSlash(rel)
		// In-flight atomic-Put temp files carry a ".tmp-" marker; a crash
		// can leave one behind, and it must never surface as a key.
		if strings.Contains(filepath.Base(key), ".tmp-") {
			return nil
		}
		if strings.HasPrefix(key, prefix) {
			keys = append(keys, key)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(keys)
	return keys, nil
}
