package blob

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// HTTP is an object-store client speaking S3-style verbs against a bucket
// base URL:
//
//	PUT    <base>/<key>           store a blob (atomic on the server)
//	GET    <base>/<key>           fetch a blob (404 -> ErrNotFound)
//	POST   <base>/<key>           append to a blob, creating it if absent
//	DELETE <base>/<key>           remove a blob (absent is fine)
//	GET    <base>/?prefix=<p>     list keys as a JSON string array
//
// POST-as-append and the list endpoint are the two extensions beyond plain
// S3 semantics; Handler in this package serves the full dialect, so the
// client is exercised against a real implementation in tests (httptest)
// and any process can host a store with a one-line mux registration.
type HTTP struct {
	base   string
	client *http.Client
}

// NewHTTP returns a client for the store at baseURL ("http://host:port" or
// "http://host:port/bucket"). A nil client uses a default with a 30s
// request timeout — durability writes must fail fast, not wedge a job.
func NewHTTP(baseURL string, client *http.Client) (*HTTP, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("blob: http store url: %w", err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("blob: http store url %q: scheme must be http or https", baseURL)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("blob: http store url %q has no host", baseURL)
	}
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	return &HTTP{base: strings.TrimRight(baseURL, "/"), client: client}, nil
}

func (h *HTTP) do(method, key string, body []byte) (*http.Response, error) {
	if err := ValidKey(key); err != nil {
		return nil, err
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, h.base+"/"+key, rd)
	if err != nil {
		return nil, err
	}
	return h.client.Do(req)
}

// fail drains the response into a bounded error message.
func fail(op, key string, resp *http.Response) error {
	snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
	return fmt.Errorf("blob: %s %s: %s: %s", op, key, resp.Status, strings.TrimSpace(string(snippet)))
}

func (h *HTTP) Put(key string, data []byte) error {
	resp, err := h.do(http.MethodPut, key, data)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fail("put", key, resp)
	}
	return nil
}

func (h *HTTP) Get(key string) ([]byte, error) {
	resp, err := h.do(http.MethodGet, key, nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	if resp.StatusCode/100 != 2 {
		return nil, fail("get", key, resp)
	}
	return io.ReadAll(resp.Body)
}

func (h *HTTP) Append(key string, data []byte) error {
	resp, err := h.do(http.MethodPost, key, data)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fail("append", key, resp)
	}
	return nil
}

func (h *HTTP) Delete(key string) error {
	resp, err := h.do(http.MethodDelete, key, nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 && resp.StatusCode != http.StatusNotFound {
		return fail("delete", key, resp)
	}
	return nil
}

func (h *HTTP) List(prefix string) ([]string, error) {
	req, err := http.NewRequest(http.MethodGet, h.base+"/?prefix="+url.QueryEscape(prefix), nil)
	if err != nil {
		return nil, err
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, fail("list", prefix, resp)
	}
	var keys []string
	if err := json.NewDecoder(resp.Body).Decode(&keys); err != nil {
		return nil, fmt.Errorf("blob: list %s: decoding key list: %w", prefix, err)
	}
	return keys, nil
}
