package blob

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Mem is the in-memory Store: a mutex-guarded map, used by tests and by
// `flashwalkerd -store mem` (durability semantics without disk — state
// lives exactly as long as the process).
type Mem struct {
	mu sync.Mutex
	m  map[string][]byte
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem {
	return &Mem{m: map[string][]byte{}}
}

func (s *Mem) Put(key string, data []byte) error {
	if err := ValidKey(key); err != nil {
		return err
	}
	s.mu.Lock()
	s.m[key] = append([]byte(nil), data...)
	s.mu.Unlock()
	return nil
}

func (s *Mem) Get(key string) ([]byte, error) {
	if err := ValidKey(key); err != nil {
		return nil, err
	}
	s.mu.Lock()
	data, ok := s.m[key]
	if ok {
		data = append([]byte(nil), data...)
	}
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	return data, nil
}

func (s *Mem) Append(key string, data []byte) error {
	if err := ValidKey(key); err != nil {
		return err
	}
	s.mu.Lock()
	s.m[key] = append(s.m[key], data...)
	s.mu.Unlock()
	return nil
}

func (s *Mem) Delete(key string) error {
	if err := ValidKey(key); err != nil {
		return err
	}
	s.mu.Lock()
	delete(s.m, key)
	s.mu.Unlock()
	return nil
}

func (s *Mem) List(prefix string) ([]string, error) {
	s.mu.Lock()
	var keys []string
	for k := range s.m {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	s.mu.Unlock()
	sort.Strings(keys)
	return keys, nil
}
