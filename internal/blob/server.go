package blob

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
)

// maxObjectBytes bounds one uploaded object. Engine snapshots for the
// simulated workloads are well under this; the cap exists so a buggy or
// hostile client cannot make the server buffer unbounded bodies.
const maxObjectBytes = 1 << 30

// Handler serves store over HTTP in the dialect the HTTP client speaks:
// PUT/GET/DELETE on /<key>, POST appends, GET /?prefix= lists. It is the
// httptest fake behind the client's tests and a minimal standalone object
// store — mount it under a bucket path with http.StripPrefix.
func Handler(store Store) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		key := strings.TrimPrefix(r.URL.Path, "/")
		if key == "" {
			if r.Method != http.MethodGet {
				http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
				return
			}
			keys, err := store.List(r.URL.Query().Get("prefix"))
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			if keys == nil {
				keys = []string{}
			}
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(keys)
			return
		}
		if err := ValidKey(key); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		switch r.Method {
		case http.MethodGet:
			data, err := store.Get(key)
			if err != nil {
				if errors.Is(err, ErrNotFound) {
					http.Error(w, err.Error(), http.StatusNotFound)
				} else {
					http.Error(w, err.Error(), http.StatusInternalServerError)
				}
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			_, _ = w.Write(data)
		case http.MethodPut, http.MethodPost:
			data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxObjectBytes))
			if err != nil {
				http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
				return
			}
			if r.Method == http.MethodPut {
				err = store.Put(key, data)
			} else {
				err = store.Append(key, data)
			}
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		case http.MethodDelete:
			if err := store.Delete(key); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
}
