// Package bloom implements the Bloom filter used by FlashWalker's dense
// vertices mapping table (paper §III-D).
//
// The board-level walk guider consults the filter before the dense-vertex
// hash table: a negative answer proves the vertex is not dense, so the
// (much larger) subgraph mapping table is searched directly. A false
// positive merely costs one wasted hash-table probe — correctness is
// preserved, exactly as the paper argues.
package bloom

import "math"

// Filter is a standard k-hash Bloom filter over uint64 keys.
type Filter struct {
	bits  []uint64
	nbits uint64
	k     int
	added int
	seed  uint64
}

// defaultSeed is the shared hash seed; Filter and Counting must use the
// same value so a Counting filter's probe answers match a plain Filter
// built over the same key multiset.
const defaultSeed = 0x9e3779b97f4a7c15

// geometry derives the (bit count, hash count) pair for n expected
// insertions at false-positive probability fp. Both filter variants share
// it: identical geometry is what makes their probe answers bit-identical.
func geometry(n int, fp float64) (m uint64, k int) {
	if n < 1 {
		n = 1
	}
	if fp <= 0 {
		fp = 1e-4
	}
	if fp >= 1 {
		fp = 0.5
	}
	// Optimal bit count m = -n ln(fp) / (ln 2)^2, hashes k = (m/n) ln 2.
	m = uint64(math.Ceil(-float64(n) * math.Log(fp) / (math.Ln2 * math.Ln2)))
	if m < 64 {
		m = 64
	}
	k = int(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	if k > 16 {
		k = 16
	}
	return m, k
}

// New creates a filter sized for n expected insertions at the target false
// positive probability fp (0 < fp < 1). n must be >= 1.
func New(n int, fp float64) *Filter {
	m, k := geometry(n, fp)
	return &Filter{
		bits:  make([]uint64, (m+63)/64),
		nbits: m,
		k:     k,
		seed:  defaultSeed,
	}
}

// mix is a 64-bit finalizer (Murmur3-style) applied per hash index.
func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// hashes derives the double-hashing bases; bit i lives at
// (h1 + i*h2) % nbits.
func (f *Filter) hashes(key uint64) (h1, h2 uint64) {
	h1 = mix(key ^ f.seed)
	h2 = mix(key+f.seed) | 1 // ensure odd stride
	return
}

// Add inserts key into the filter.
func (f *Filter) Add(key uint64) {
	h1, h2 := f.hashes(key)
	for i := 0; i < f.k; i++ {
		b := (h1 + uint64(i)*h2) % f.nbits
		f.bits[b>>6] |= 1 << (b & 63)
	}
	f.added++
}

// Contains reports whether key may have been added. False means definitely
// not added; true may be a false positive.
//
// Positions are computed lazily so a negative probe — the common case on
// the second-order sampler's hot path, where most candidates are not
// neighbors of prev — stops at its first zero bit instead of paying all k
// modular reductions and bit reads up front. The position formula must
// stay (h1 + i*h2) % nbits computed in wrapping uint64 arithmetic — i*h2
// overflows by design, so an incremental "add h2 mod nbits" rewrite would
// move bits and change answers. Identical positions mean identical
// answers, and with them identical trajectories.
func (f *Filter) Contains(key uint64) bool {
	h1, h2 := f.hashes(key)
	for i := 0; i < f.k; i++ {
		b := (h1 + uint64(i)*h2) % f.nbits
		if f.bits[b>>6]&(1<<(b&63)) == 0 {
			return false
		}
	}
	return true
}

// Added reports how many keys have been inserted.
func (f *Filter) Added() int { return f.added }

// Bits reports the filter size in bits.
func (f *Filter) Bits() uint64 { return f.nbits }

// Hashes reports the number of hash functions.
func (f *Filter) Hashes() int { return f.k }

// SizeBytes reports the memory footprint of the bit array.
func (f *Filter) SizeBytes() int { return len(f.bits) * 8 }
