package bloom

import (
	"testing"
	"testing/quick"

	"flashwalker/internal/rng"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(1000, 0.01)
	r := rng.New(1)
	keys := make([]uint64, 1000)
	for i := range keys {
		keys[i] = r.Uint64()
		f.Add(keys[i])
	}
	for i, k := range keys {
		if !f.Contains(k) {
			t.Fatalf("false negative for key %d (#%d)", k, i)
		}
	}
}

func TestFalsePositiveRate(t *testing.T) {
	f := New(10000, 0.01)
	r := rng.New(2)
	inserted := map[uint64]bool{}
	for i := 0; i < 10000; i++ {
		k := r.Uint64()
		f.Add(k)
		inserted[k] = true
	}
	fp := 0
	const probes = 100000
	for i := 0; i < probes; i++ {
		k := r.Uint64()
		if inserted[k] {
			continue
		}
		if f.Contains(k) {
			fp++
		}
	}
	rate := float64(fp) / probes
	// Allow 3x the design rate as slack.
	if rate > 0.03 {
		t.Fatalf("false positive rate %.4f exceeds 0.03", rate)
	}
}

func TestEmptyFilterContainsNothing(t *testing.T) {
	f := New(100, 0.01)
	r := rng.New(3)
	for i := 0; i < 1000; i++ {
		if f.Contains(r.Uint64()) {
			t.Fatal("empty filter reported membership")
		}
	}
}

func TestAddedCount(t *testing.T) {
	f := New(10, 0.01)
	for i := uint64(0); i < 7; i++ {
		f.Add(i)
	}
	if f.Added() != 7 {
		t.Fatalf("Added = %d, want 7", f.Added())
	}
}

func TestDegenerateParams(t *testing.T) {
	for _, c := range []struct {
		n  int
		fp float64
	}{{0, 0.01}, {10, 0}, {10, 1.5}, {-5, -1}} {
		f := New(c.n, c.fp)
		f.Add(42)
		if !f.Contains(42) {
			t.Fatalf("New(%d,%v): lost inserted key", c.n, c.fp)
		}
	}
}

func TestSizeScalesWithN(t *testing.T) {
	small := New(100, 0.01)
	large := New(100000, 0.01)
	if large.Bits() <= small.Bits() {
		t.Fatalf("larger n did not grow filter: %d vs %d", large.Bits(), small.Bits())
	}
	if small.SizeBytes() <= 0 || small.Hashes() < 1 {
		t.Fatal("invalid geometry")
	}
}

// Property: anything added is contained.
func TestMembershipProperty(t *testing.T) {
	f := New(5000, 0.01)
	check := func(key uint64) bool {
		f.Add(key)
		return f.Contains(key)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}
