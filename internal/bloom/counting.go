package bloom

// Counting is a delete-capable Bloom filter whose probe answers are
// bit-identical to a plain Filter built over the same key multiset. It
// exists for dynamic-graph runs: the second-order edge filter must track
// edge deletes, and a plain filter cannot clear bits.
//
// It keeps a per-position uint32 count alongside a mirrored bit array with
// the exact same geometry, seed, and (h1 + i*h2) % nbits positions as
// Filter. A bit is set iff its count is non-zero, and counts are additive
// over the key multiset, so any interleaving of Adds and Removes that
// yields multiset S leaves the bit array equal to a fresh plain Filter
// with S inserted — the property the mutation metamorphic tests pin.
// Contains reads only the bit array, with the same lazy early exit as
// Filter, so probe sequences (and therefore walk trajectories) match.
type Counting struct {
	bits   []uint64
	counts []uint32
	nbits  uint64
	k      int
	added  int
	seed   uint64
}

// NewCounting creates a counting filter sized for n expected insertions at
// false-positive probability fp, with geometry identical to New(n, fp).
func NewCounting(n int, fp float64) *Counting {
	m, k := geometry(n, fp)
	return &Counting{
		bits:   make([]uint64, (m+63)/64),
		counts: make([]uint32, m),
		nbits:  m,
		k:      k,
		seed:   defaultSeed,
	}
}

func (f *Counting) hashes(key uint64) (h1, h2 uint64) {
	h1 = mix(key ^ f.seed)
	h2 = mix(key+f.seed) | 1
	return
}

// Add inserts one instance of key.
func (f *Counting) Add(key uint64) {
	h1, h2 := f.hashes(key)
	for i := 0; i < f.k; i++ {
		b := (h1 + uint64(i)*h2) % f.nbits
		f.counts[b]++
		f.bits[b>>6] |= 1 << (b & 63)
	}
	f.added++
}

// Remove deletes one instance of key. The caller must only remove keys it
// added (the graph layer's delete-must-exist validation guarantees this);
// removing an absent key would corrupt counts, so an underflow panics
// rather than silently drifting from the rebuild-equivalent state.
func (f *Counting) Remove(key uint64) {
	h1, h2 := f.hashes(key)
	for i := 0; i < f.k; i++ {
		b := (h1 + uint64(i)*h2) % f.nbits
		if f.counts[b] == 0 {
			panic("bloom: Remove of a key that was never added")
		}
		f.counts[b]--
		if f.counts[b] == 0 {
			f.bits[b>>6] &^= 1 << (b & 63)
		}
	}
	f.added--
}

// Contains reports whether key may be present, with Filter's exact probe
// order and early exit (see Filter.Contains for why the position formula
// must not change).
func (f *Counting) Contains(key uint64) bool {
	h1, h2 := f.hashes(key)
	for i := 0; i < f.k; i++ {
		b := (h1 + uint64(i)*h2) % f.nbits
		if f.bits[b>>6]&(1<<(b&63)) == 0 {
			return false
		}
	}
	return true
}

// Added reports the net number of keys currently inserted.
func (f *Counting) Added() int { return f.added }

// Bits reports the filter size in bits.
func (f *Counting) Bits() uint64 { return f.nbits }

// Hashes reports the number of hash functions.
func (f *Counting) Hashes() int { return f.k }

// SizeBytes reports the memory footprint: the bit array plus the counts.
func (f *Counting) SizeBytes() int { return len(f.bits)*8 + len(f.counts)*4 }

// BitsEqual reports whether the counting filter's bit array is identical
// to the plain filter's — the rebuild-equivalence check the tests use.
func (f *Counting) BitsEqual(p *Filter) bool {
	if f.nbits != p.nbits || f.k != p.k {
		return false
	}
	for i := range f.bits {
		if f.bits[i] != p.bits[i] {
			return false
		}
	}
	return true
}
