package bloom

import "testing"

// TestCountingMatchesPlainRebuild is the filter-level rebuild-equivalence
// proof: any interleaving of Adds and Removes that leaves multiset S must
// leave a bit array identical to a fresh plain filter with S inserted —
// including probe answers for keys never inserted.
func TestCountingMatchesPlainRebuild(t *testing.T) {
	const n, fp = 500, 0.01
	c := NewCounting(n, fp)
	p := New(n, fp)
	if c.Bits() != p.Bits() || c.Hashes() != p.Hashes() {
		t.Fatalf("geometry mismatch: counting (%d bits, %d hashes), plain (%d, %d)",
			c.Bits(), c.Hashes(), p.Bits(), p.Hashes())
	}

	// Interleaved history: add 0..399, remove every third, re-add some,
	// with duplicates to exercise multiset counts.
	final := map[uint64]int{}
	add := func(k uint64) { c.Add(k); final[k]++ }
	rem := func(k uint64) { c.Remove(k); final[k]-- }
	for k := uint64(0); k < 400; k++ {
		add(k * 2654435761)
	}
	for k := uint64(0); k < 400; k += 3 {
		rem(k * 2654435761)
	}
	for k := uint64(0); k < 100; k += 3 {
		add(k * 2654435761)
		add(k * 2654435761) // duplicate
	}
	for k := uint64(0); k < 100; k += 3 {
		rem(k * 2654435761) // drop one duplicate, keep one
	}
	for k, cnt := range final {
		for i := 0; i < cnt; i++ {
			p.Add(k)
		}
	}
	if !c.BitsEqual(p) {
		t.Fatal("counting filter bits differ from a plain filter over the same multiset")
	}
	// Probe equivalence over present, removed, and never-added keys.
	for k := uint64(0); k < 2000; k++ {
		key := k * 0x9e3779b1
		if c.Contains(key) != p.Contains(key) {
			t.Fatalf("Contains(%d) disagrees with the plain filter", key)
		}
	}
}

// TestCountingRemoveClearsMembership pins the delete behaviour a plain
// filter cannot provide.
func TestCountingRemoveClearsMembership(t *testing.T) {
	c := NewCounting(10, 0.01)
	c.Add(42)
	if !c.Contains(42) {
		t.Fatal("added key not contained")
	}
	c.Remove(42)
	if c.Contains(42) {
		t.Fatal("removed key still contained (no other keys share its bits)")
	}
	if c.Added() != 0 {
		t.Fatalf("Added() = %d after balanced add/remove", c.Added())
	}
}

func TestCountingRemoveUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Remove of a never-added key did not panic")
		}
	}()
	NewCounting(10, 0.01).Remove(7)
}
