package core

import (
	"testing"

	"flashwalker/internal/graph"
	"flashwalker/internal/walk"
)

func weightedGraph(t *testing.T) *graph.Graph {
	t.Helper()
	cfg := graph.DefaultRMAT(1024, 8192, 5)
	cfg.Weighted = true
	g, err := graph.RMAT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAliasSamplingCompletes(t *testing.T) {
	g := weightedGraph(t)
	rc := testConfig()
	rc.Spec = walk.Spec{Kind: walk.Biased, Length: 6}
	rc.UseAliasSampling = true
	rc.NumWalks = 300
	res := runEngine(t, g, rc)
	if res.WalksFinished() != 300 {
		t.Fatalf("finished %d of 300 with alias sampling", res.WalksFinished())
	}
}

func TestAliasSamplingRequiresBiased(t *testing.T) {
	g := weightedGraph(t)
	rc := testConfig()
	rc.UseAliasSampling = true // spec is unbiased
	if _, err := NewEngine(g, rc); err == nil {
		t.Fatal("alias sampling accepted for unbiased walks")
	}
}

func TestAliasSamplingRequiresWeights(t *testing.T) {
	g := graph.Ring(64)
	rc := testConfig()
	rc.Spec = walk.Spec{Kind: walk.Biased, Length: 6}
	rc.UseAliasSampling = true
	if _, err := NewEngine(g, rc); err == nil {
		t.Fatal("alias sampling accepted for unweighted graph")
	}
}

func TestAliasComparableToITS(t *testing.T) {
	// Alias sampling charges constant updater ops instead of O(log deg)
	// ITS steps. The sampled trajectories differ (different RNG draws),
	// so end-to-end times wander a little; assert the alias run stays
	// within a tight band of the ITS run rather than strictly below it —
	// updater ops are a small share of end-to-end time at this scale.
	g := weightedGraph(t)
	rc := testConfig()
	rc.Spec = walk.Spec{Kind: walk.Biased, Length: 6}
	rc.NumWalks = 500
	its := runEngine(t, g, rc)
	rc.UseAliasSampling = true
	alias := runEngine(t, g, rc)
	if alias.Time > its.Time*115/100 {
		t.Fatalf("alias (%v) far slower than ITS (%v)", alias.Time, its.Time)
	}
	if alias.WalksFinished() != its.WalksFinished() {
		t.Fatal("workload shape changed")
	}
}
