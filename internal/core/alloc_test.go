package core

import (
	"testing"

	"flashwalker/internal/graph"
	"flashwalker/internal/walk"
)

// TestSteadyStateHopAllocFree guards the tentpole invariant of the typed-
// event refactor: once the pools are warm (a full run has grown them), the
// per-hop machinery — claiming a walk node, deciding the hop, recycling a
// batch buffer — performs zero allocations. Together with the sim-level
// guards (TestTypedSchedulingAllocFree, TestQueueAcquireEventAllocFree)
// this pins the whole hop path: every event it schedules is typed and every
// record it touches is pooled.
func TestSteadyStateHopAllocFree(t *testing.T) {
	g := testGraph(t)
	e, err := NewEngine(g, goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}

	// A live walk at a vertex with outgoing edges, far from termination.
	var v graph.VertexID
	for v = 0; v < g.NumVertices(); v++ {
		if g.OutDegree(v) > 0 {
			break
		}
	}
	st := wstate{w: walk.Walk{Cur: v, Hop: 1 << 20}, denseBlock: -1, rangeTag: -1, prev: noPrev,
		rng: *e.rootRNG.Derive(1)}

	allocs := testing.AllocsPerRun(1000, func() {
		ref, n := e.newNode()
		h := e.decideHop(st)
		n.st, n.terminal, n.deadEnd = h.next, h.terminal, h.deadEnd
		e.freeNodeRef(ref)

		buf := e.getWalkBuf()
		buf = append(buf, h.next)
		bref := e.newBatch(buf)
		e.putWalkBuf(e.takeBatch(bref))
	})
	if allocs != 0 {
		t.Fatalf("steady-state hop path allocated %.1f times per run, want 0", allocs)
	}
}

// TestQueryCacheFrontHitNoShift pins the LRU fast path: a hit on the front
// entry must not reorder (or copy) the entries.
func TestQueryCacheFrontHitNoShift(t *testing.T) {
	qc := newQueryCache(4*16, 16)
	qc.insert(30, 39, 3)
	qc.insert(20, 29, 2)
	qc.insert(10, 19, 1) // front
	if id, ok := qc.lookup(15); !ok || id != 1 {
		t.Fatalf("front lookup = %d,%v", id, ok)
	}
	want := []int32{1, 2, 3}
	for i := 0; i < qc.n; i++ {
		id := qc.blockIDs[qc.slot(i)]
		if id != want[i] {
			t.Fatalf("entry order after front hit = %v at %d, want %v", id, i, want)
		}
	}
	// A non-front hit still promotes.
	if id, ok := qc.lookup(35); !ok || id != 3 {
		t.Fatalf("mid lookup = %d,%v", id, ok)
	}
	if qc.blockIDs[qc.head] != 3 {
		t.Fatalf("entry %d at front after touch, want 3", qc.blockIDs[qc.head])
	}
}

// BenchmarkQueryCacheLookup measures the LRU probe: the front-hit fast path
// (the common case under power-law walk skew) versus a mid-cache hit that
// pays the promotion shift, at a realistic cache population.
func BenchmarkQueryCacheLookup(b *testing.B) {
	const entries = 64
	build := func() *queryCache {
		qc := newQueryCache(entries*16, 16)
		for i := 0; i < entries; i++ {
			lo := graph.VertexID(i * 10)
			qc.insert(lo, lo+9, i)
		}
		return qc
	}
	b.Run("front-hit", func(b *testing.B) {
		qc := build()
		front := qc.ranges[qc.slot(0)].lo
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			qc.lookup(front + 5)
		}
	})
	b.Run("mid-hit", func(b *testing.B) {
		qc := build()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// The hit promotes to front, so probing two spots alternates
			// between them and every lookup pays a mid-depth shift.
			qc.lookup(qc.ranges[qc.slot(entries/2)].lo + 5)
		}
	})
	b.Run("miss", func(b *testing.B) {
		qc := build()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			qc.lookup(graph.VertexID(entries*10 + 5))
		}
	})
}
