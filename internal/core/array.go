package core

import (
	"context"
	"fmt"

	"flashwalker/internal/errs"
	"flashwalker/internal/graph"
	"flashwalker/internal/partition"
	"flashwalker/internal/rng"
	"flashwalker/internal/sim"
	"flashwalker/internal/walk"
)

// This file is the multi-board SSD array: N board engines, each owning a
// round-robin shard of the graph partitions (partition.ShardMap), sharing
// one event kernel and connected by a modeled inter-board fabric.
//
// The fabric is one more sim resource alongside channels, chips and DRAM:
// each board has a FIFO egress link (sim.Queue) with FabricBytesPerSec
// bandwidth, and every message pays FabricLatency on top of its serialized
// transfer time (a PCIe-switch/NVMe-oF hop). A walk whose next vertex lives
// on another board's shard is serialized over the fabric instead of being
// parked in the local foreigner buffer: walks accumulate per (source,
// destination) pair until FabricBatchBytes, ship as one transfer, and land
// in the destination board's foreigner buffer (the same ForeignerBufBytes
// accounting and overflow-to-flash path a local demotion uses).
//
// Because every walk carries its own RNG stream, a walk's trajectory is
// identical whether it hops inside one board or crosses the fabric: board
// count, fabric timing, and even whole-device kills change when walks
// finish, never where they go. TestArrayOutcomeEquality and the kill tests
// lean on exactly this.

// Array event kinds (private to Array.HandleEvent).
const (
	evFabricArrive uint16 = iota // a fabric batch reached its destination; A = batch ref
	evBoardKill                  // whole-device fail-stop; B = board index
)

// fabricWalk is one walk in flight between boards, tagged with the
// destination partition its sender resolved (the walk's routing identity on
// the wire; recomputing it at arrival could disagree with the pre-walked
// dense-block choice).
type fabricWalk struct {
	st wstate
	p  int32
}

// egressBuf batches walks bound from one board to another.
type egressBuf struct {
	walks []fabricWalk
	bytes int64
}

// fabricBatch is a pooled in-flight fabric transfer record (referenced by
// evFabricArrive events, so it must survive snapshots by index).
type fabricBatch struct {
	walks []fabricWalk
	dst   int32
	free  int32
}

// Array is an N-board FlashWalker simulation instance. Construction mirrors
// Engine (NewArray/RunContext); Boards=1 arrays are valid and reproduce the
// single-board engine's timeline event for event.
type Array struct {
	eng    *sim.Engine
	cfg    Config
	g      *graph.Graph
	part   *partition.Partitioned
	shard  *partition.ShardMap
	boards []*Engine
	dead   []bool

	fabric   []*sim.Queue // per-board egress link
	egress   [][]egressBuf
	fbatches []fabricBatch
	freeFB   int32
	fwbufs   [][]fabricWalk

	numStarted int // walks seeded fleet-wide
	remaining  int // walks not yet finished fleet-wide
	inFabric   int // walks in egress buffers or in-flight batches

	fabricWalks    uint64
	fabricBatchCnt uint64
	fabricBytes    int64
	evacuated      uint64
	kills          uint64

	launched   bool
	failure    error
	audit      bool
	maxSimTime sim.Time
	rootRNG    *rng.RNG

	// Mutation stream state: the array applies the stream fleet-wide
	// (mutate.go) and mirrors its cursor onto every board.
	muts      graph.MutationStream
	mutCursor int

	onProgress func(Progress)
	checkEvery uint64
	onSnapshot func(*ArraySnapshot)
	snapEvery  uint64
	lastSnap   uint64

	// Completed-walk export (export.go): one fleet-wide finish sequence so
	// consumers see a single total order regardless of board count.
	onWalks   func([]WalkDone)
	emitEvery uint64
	exportBuf []WalkDone
	finSeq    uint64
}

// NewArray builds an N-board array over the graph and seeds the workload.
// Walk i draws its private RNG stream from the run seed by its global index,
// exactly as the single-board engine does, so trajectories — and therefore
// walk outcomes — are identical across board counts.
func NewArray(g *graph.Graph, rc RunConfig) (*Array, error) {
	a, err := newArray(g, rc)
	if err != nil {
		return nil, err
	}
	starts := rc.Starts
	if len(starts) > 0 {
		for _, v := range starts {
			if v >= g.NumVertices() {
				return nil, fmt.Errorf("core: start vertex %d out of range: %w", v, errs.ErrInvalidConfig)
			}
		}
	} else {
		starts = walk.UniformStarts(g, rc.NumWalks, rc.StartSeed)
	}
	a.seedWalks(starts, rc.NumWalks)
	return a, nil
}

// newArray builds the array skeleton — shared kernel, board engines, shard
// map, fabric — without seeding walks (ResumeArray overlays a snapshot).
func newArray(g *graph.Graph, rc RunConfig) (*Array, error) {
	if err := rc.Cfg.Validate(); err != nil {
		return nil, err
	}
	nb := rc.Cfg.Boards
	if nb < 1 {
		nb = 1
	}
	if rc.ProgressBin > 0 {
		return nil, fmt.Errorf("core: progress time series are per-board; not supported on arrays: %w", errs.ErrInvalidConfig)
	}
	if rc.Tracer != nil {
		return nil, fmt.Errorf("core: tracing is not supported on arrays: %w", errs.ErrInvalidConfig)
	}
	g, err := cloneForMutations(g, rc)
	if err != nil {
		return nil, err
	}
	part, err := partition.Partition(g, rc.PartCfg)
	if err != nil {
		return nil, err
	}
	prefix, err := applyMutationPrefix(g, part, rc.Mutations)
	if err != nil {
		return nil, err
	}
	shard, err := partition.NewShardMap(part.NumPartitions, nb)
	if err != nil {
		return nil, err
	}
	eng := sim.New()
	a := &Array{
		eng:        eng,
		cfg:        rc.Cfg,
		g:          g,
		part:       part,
		shard:      shard,
		muts:       rc.Mutations,
		mutCursor:  prefix,
		dead:       make([]bool, nb),
		fabric:     make([]*sim.Queue, nb),
		egress:     make([][]egressBuf, nb),
		freeFB:     -1,
		audit:      rc.Audit,
		maxSimTime: rc.MaxSimTime,
		rootRNG:    rng.New(rc.Cfg.Seed),
		onProgress: rc.OnProgress,
		checkEvery: rc.CheckpointEvery,
		snapEvery:  rc.SnapshotEvery,
		onWalks:    rc.OnWalks,
		emitEvery:  rc.EmitEvery,
	}
	if a.checkEvery == 0 {
		a.checkEvery = DefaultCheckpointEvery
	}
	if a.emitEvery == 0 {
		a.emitEvery = DefaultEmitEvery
	}
	// Board engines share the kernel and the partitioning but own their
	// devices and accelerator tiers; per-board hooks stay unset (the array
	// drives progress, snapshots, and the walk export fleet-wide).
	brc := rc
	brc.OnProgress = nil
	brc.OnSnapshot = nil
	brc.OnWalks = nil
	for b := 0; b < nb; b++ {
		e, err := newEngineOn(eng, g, brc, part, prefix)
		if err != nil {
			return nil, err
		}
		e.arr = a
		e.boardID = b
		a.boards = append(a.boards, e)
		a.fabric[b] = sim.NewQueue(eng)
		a.egress[b] = make([]egressBuf, nb)
	}
	// Attribute the construction-time prefix to the owning boards (the
	// per-board res is overlaid on resume, so this only matters for fresh
	// runs).
	for _, m := range a.muts[:prefix] {
		owner := a.shard.BoardOf(a.boards[0].homePartition(m.Src))
		a.boards[owner].res.MutationsApplied++
	}
	return a, nil
}

// seedWalks bins the workload onto the owning boards. Walk RNG streams are
// derived by global walk index from the array's root RNG, never a board's,
// keeping trajectories invariant under the board count.
func (a *Array) seedWalks(starts []graph.VertexID, n int) {
	ws := walk.NewWalks(a.boards[0].spec, starts, n)
	a.numStarted = len(ws)
	a.remaining = len(ws)
	for i := range ws {
		st := wstate{w: ws[i], denseBlock: -1, rangeTag: -1, prev: noPrev,
			rng: *a.rootRNG.Derive(uint64(i))}
		p := a.boards[0].homePartition(st.w.Cur)
		e := a.boards[a.shard.BoardOf(p)]
		if e.res.Visits != nil {
			e.res.Visits[st.w.Cur]++
		}
		e.pendingMem[p] = append(e.pendingMem[p], st)
		e.remaining++
		e.res.Started++
	}
	for _, e := range a.boards {
		for p := range e.pendingMem {
			e.flushMark[p] = len(e.pendingMem[p])
		}
	}
}

// NumBoards reports the array's board count.
func (a *Array) NumBoards() int { return len(a.boards) }

// SetSnapshotHook registers a fleet-wide snapshot hook before Run. The
// single-board RunConfig.OnSnapshot hook carries a per-engine Snapshot and
// therefore does not apply to arrays; this is the array-shaped equivalent.
func (a *Array) SetSnapshotHook(fn func(*ArraySnapshot), every uint64) {
	a.onSnapshot = fn
	a.snapEvery = every
}

// Run executes the array to completion (RunContext with a background
// context).
func (a *Array) Run() (*Result, error) { return a.RunContext(context.Background()) }

// RunContext executes the array until every walk finishes or ctx is
// canceled, with the same checkpoint semantics as Engine.RunContext: the
// hook runs strictly between events, so an uncanceled run's timeline is
// bit-identical with or without it.
func (a *Array) RunContext(ctx context.Context) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if ctx.Done() != nil || a.onProgress != nil || a.onSnapshot != nil {
		a.eng.SetCheckpoint(a.checkEvery, func() bool {
			if a.onProgress != nil {
				a.onProgress(a.progress())
			}
			if a.onSnapshot != nil && a.eng.Processed()-a.lastSnap >= a.snapEvery {
				// Flush exported walks first so a consumer persisting both
				// never sees a snapshot ahead of its walk records.
				a.flushWalks()
				if snap, err := a.buildSnapshot(); err == nil {
					a.lastSnap = a.eng.Processed()
					a.onSnapshot(snap)
				}
			}
			return ctx.Err() == nil
		})
		defer a.eng.ClearCheckpoint()
	}
	if a.onWalks != nil {
		a.eng.SetEmitter(a.emitEvery, a.flushWalks)
		defer a.eng.ClearEmitter()
	}
	if a.mutCursor < len(a.muts) {
		a.eng.SetApplier(a.applyMutations)
		defer a.eng.ClearApplier()
	}
	if !a.launched {
		a.launched = true
		for _, e := range a.boards {
			e.launch()
		}
		if a.cfg.Faults.KillBoardAt > 0 {
			a.eng.Schedule(a.cfg.Faults.KillBoardAt,
				sim.Event{Target: a, Kind: evBoardKill, B: int32(a.cfg.Faults.KillBoard)})
		}
		if a.remaining == 0 {
			a.finishAll()
		}
	}
	if a.maxSimTime > 0 {
		a.eng.RunUntil(a.maxSimTime)
	} else {
		a.eng.Run()
	}
	a.flushWalks()
	if a.failure != nil {
		return nil, a.failure
	}
	res := a.aggregate()
	if a.onProgress != nil {
		a.onProgress(a.progress())
	}
	if a.eng.Halted() {
		return res, fmt.Errorf("core: array run canceled at %v: %w", res.Time, &errs.Canceled{
			Op: "core", Finished: res.WalksFinished(), Total: res.Started, Cause: ctx.Err(),
		})
	}
	if a.remaining != 0 {
		if a.maxSimTime > 0 {
			return nil, fmt.Errorf("core: MaxSimTime %v exceeded with %d walks unfinished", a.maxSimTime, a.remaining)
		}
		return nil, fmt.Errorf("core: array drained with %d walks unfinished (%d in fabric)",
			a.remaining, a.inFabric)
	}
	return res, nil
}

// progress snapshots the fleet-wide headline counters at an event boundary.
func (a *Array) progress() Progress {
	pr := Progress{Now: a.eng.Now(), Events: a.eng.Processed()}
	for _, e := range a.boards {
		pr.Started += e.res.Started
		pr.Completed += e.res.Completed
		pr.DeadEnded += e.res.DeadEnded
		pr.Hops += e.res.Hops
		pr.PartitionSwitches += e.res.PartitionSwitches
	}
	return pr
}

// HandleEvent dispatches the array's fabric and fault events. It is
// exported only to satisfy sim.Handler.
func (a *Array) HandleEvent(ev sim.Event) {
	switch ev.Kind {
	case evFabricArrive:
		a.arrive(ev.A)
	case evBoardKill:
		a.killBoard(int(ev.B))
	default:
		panic("core: unknown array event kind")
	}
}

// --- Fabric. ---

// sendForeigner hands a walk bound for partition p (owned by another board)
// to the fabric: it joins the source board's egress batch toward the owner
// and ships when the batch fills (or when the source drains).
func (a *Array) sendForeigner(src *Engine, p int, st wstate) {
	dst := a.shard.BoardOf(p)
	eb := &a.egress[src.boardID][dst]
	if eb.walks == nil {
		eb.walks = a.getFW()
	}
	eb.walks = append(eb.walks, fabricWalk{st: st, p: int32(p)})
	eb.bytes += walk.StateBytes
	src.remaining--
	a.inFabric++
	a.fabricWalks++
	if eb.bytes >= a.cfg.FabricBatchBytes {
		a.flushEgress(src.boardID, dst)
	}
}

// flushEgress ships one (source, destination) egress batch: the transfer
// serializes on the source's fabric link, then pays the switch latency, and
// the arrival event delivers the walks.
func (a *Array) flushEgress(src, dst int) {
	eb := &a.egress[src][dst]
	if len(eb.walks) == 0 {
		return
	}
	ref := a.newFBatch(eb.walks, dst)
	bytes := eb.bytes
	eb.walks = nil
	eb.bytes = 0
	a.fabricBatchCnt++
	a.fabricBytes += bytes
	end := a.fabric[src].AcquireEvent(sim.TransferTime(bytes, a.cfg.FabricBytesPerSec), sim.Event{})
	a.eng.Schedule(end+a.cfg.FabricLatency, sim.Event{Target: a, Kind: evFabricArrive, A: ref})
}

// flushEgressFrom ships every batched walk a board still holds; called when
// the board drains so no walk waits forever on the batch threshold.
func (a *Array) flushEgressFrom(src int) {
	for dst := range a.egress[src] {
		a.flushEgress(src, dst)
	}
}

// arrive lands a fabric batch: walks join the destination board's foreigner
// buffer (waking it if idle); walks whose owner changed in flight — the
// destination died while they were on the wire — bounce to the new owner.
func (a *Array) arrive(ref int32) {
	walks, dst := a.takeFBatch(ref)
	e := a.boards[dst]
	var bounce []fabricWalk
	delivered := 0
	for i := range walks {
		p := int(walks[i].p)
		if a.shard.BoardOf(p) != dst {
			bounce = append(bounce, walks[i])
			continue
		}
		if e.pendingMem[p] == nil {
			e.pendingMem[p] = e.getWalkBuf()
		}
		e.pendingMem[p] = append(e.pendingMem[p], walks[i].st)
		e.foreignerBufBytes += walk.StateBytes
		if e.foreignerBufBytes >= e.cfg.ForeignerBufBytes {
			e.flushForeigners()
		}
		e.remaining++
		a.inFabric--
		delivered++
	}
	a.putFW(walks)
	if delivered > 0 && e.activeCur == 0 && !e.finished {
		// The board was idle; hand it the partition the arrivals landed in.
		e.advancePartition()
	}
	if len(bounce) > 0 {
		a.reforward(bounce)
	}
}

// reforward bounces mid-flight walks to their post-failover owners: the
// switch re-routes each group as a fresh transfer (buffered at the switch —
// the original sender may be dead, so no egress link is charged).
func (a *Array) reforward(walks []fabricWalk) {
	for b := range a.boards {
		var grp []fabricWalk
		var bytes int64
		for _, fw := range walks {
			if a.shard.BoardOf(int(fw.p)) != b {
				continue
			}
			if grp == nil {
				grp = a.getFW()
			}
			grp = append(grp, fw)
			bytes += walk.StateBytes
		}
		if grp == nil {
			continue
		}
		ref := a.newFBatch(grp, b)
		a.fabricBatchCnt++
		a.fabricBytes += bytes
		a.eng.ScheduleAfter(a.cfg.FabricLatency+sim.TransferTime(bytes, a.cfg.FabricBytesPerSec),
			sim.Event{Target: a, Kind: evFabricArrive, A: ref})
	}
}

// --- Whole-device kill. ---

// killBoard fail-stops board b: its shard is re-placed round-robin onto the
// survivors, its parked walks (pending lists, both memory and flash) are
// evacuated over the fabric to the new owners, and the walks active in its
// current partition drain to completion (fail-stop after command
// completion). In-flight batches addressed to it bounce in arrive.
func (a *Array) killBoard(b int) {
	if a.failure != nil || a.dead[b] {
		return
	}
	var alive []int
	for i := range a.boards {
		if i != b && !a.dead[i] {
			alive = append(alive, i)
		}
	}
	if len(alive) == 0 {
		a.fail(fmt.Errorf("core: board %d killed with no survivors", b))
		return
	}
	a.dead[b] = true
	a.kills++
	if _, err := a.shard.Reassign(b, alive); err != nil {
		a.fail(fmt.Errorf("core: kill board %d: %w", b, err))
		return
	}
	e := a.boards[b]
	for p := range e.pendingMem {
		mem := e.pendingMem[p]
		e.pendingMem[p] = nil
		fl := e.pendingFlash[p]
		e.pendingFlash[p] = nil
		e.pendingFlashBytes[p] = 0
		e.flushMark[p] = 0
		for i := range mem {
			a.evacuate(e, p, mem[i])
		}
		for i := range fl {
			a.evacuate(e, p, fl[i])
		}
		e.putWalkBuf(mem)
		e.putWalkBuf(fl)
	}
	e.foreignerBufBytes = 0
	a.flushEgressFrom(b)
	if e.activeCur == 0 {
		// Nothing left to drain: the board is done for good (arrivals are
		// re-forwarded, so nothing can wake it).
		e.finished = true
	}
}

// evacuate moves one parked walk off a killed board over the fabric. The
// recovery path replays the board's walk log from the host side, so the
// transfer is charged to the fabric only.
func (a *Array) evacuate(src *Engine, p int, st wstate) {
	a.evacuated++
	a.sendForeigner(src, p, st)
}

// --- Termination / accounting. ---

// walkFinished tracks the fleet-wide walk count; when it hits zero every
// board is finished and the periodic ticks stop rescheduling, so the shared
// kernel drains.
func (a *Array) walkFinished() {
	a.remaining--
	if a.remaining == 0 {
		a.finishAll()
	}
}

// checkStalled fails the run when every board idles with walks still
// unaccounted for — the array analogue of the single-board "no partitions
// left but walks remain" lost-walk guard. An idle fleet with an empty
// fabric can never make progress again, so failing beats spinning on
// channel ticks forever. Called whenever a board goes idle.
func (a *Array) checkStalled() {
	if a.remaining == 0 || a.inFabric > 0 || a.failure != nil {
		return
	}
	for _, e := range a.boards {
		if e.activeCur > 0 || e.storedWalks() > 0 {
			return
		}
	}
	a.fail(fmt.Errorf("core: array stalled with %d walks unaccounted for", a.remaining))
}

func (a *Array) finishAll() {
	for _, e := range a.boards {
		e.finished = true
	}
}

// fail aborts the array run; every board is marked failed so per-board
// guards (snapshot, audit) hold.
func (a *Array) fail(err error) {
	if a.failure == nil {
		a.failure = err
	}
	for _, e := range a.boards {
		if e.failure == nil {
			e.failure = err
		}
		e.finished = true
	}
}

// auditConservation is the fleet-wide walk-conservation check: walks parked
// on boards, active in current partitions (minus the store double-count),
// in the fabric, or finished must sum to the seeded count. Exact at any
// event boundary; invoked at every board's partition switch.
func (a *Array) auditConservation(where string) {
	if !a.audit || a.failure != nil {
		return
	}
	stored, active, overlap, finished := 0, 0, 0, 0
	for _, e := range a.boards {
		stored += e.storedWalks()
		active += e.activeCur
		overlap += e.activeCurStoredOverlap()
		finished += e.res.Completed + e.res.DeadEnded
	}
	if got := stored + active - overlap + a.inFabric + finished; got != a.numStarted {
		a.fail(fmt.Errorf("core: array audit(%s): %d stored + %d active - %d overlap + %d fabric + %d finished != %d started",
			where, stored, active, overlap, a.inFabric, finished, a.numStarted))
	}
}

// aggregate folds the per-board results and the fabric counters into one
// fleet-wide Result.
func (a *Array) aggregate() *Result {
	res := &Result{
		Time:           a.eng.Now(),
		Boards:         len(a.boards),
		FabricWalks:    a.fabricWalks,
		FabricBatches:  a.fabricBatchCnt,
		FabricBytes:    a.fabricBytes,
		EvacuatedWalks: a.evacuated,
		BoardKills:     a.kills,
	}
	var chipU, chipMax, chanU, boardU, busMax, dramU float64
	for _, e := range a.boards {
		e.collectTierStats()
		r := &e.res
		res.Started += r.Started
		res.Completed += r.Completed
		res.DeadEnded += r.DeadEnded
		res.Hops += r.Hops

		res.Flash.ReadPages += e.ssd.Counters.ReadPages
		res.Flash.ProgramPages += e.ssd.Counters.ProgramPages
		res.Flash.ErasedBlocks += e.ssd.Counters.ErasedBlocks
		res.Flash.ReadBytes += e.ssd.Counters.ReadBytes
		res.Flash.WriteBytes += e.ssd.Counters.WriteBytes
		res.Flash.ChannelBytes += e.ssd.Counters.ChannelBytes
		res.Flash.HostBytes += e.ssd.Counters.HostBytes
		res.DRAMReadBytes += e.dr.ReadBytes
		res.DRAMWriteBytes += e.dr.WriteBytes

		res.RovingTransfers += r.RovingTransfers
		res.RovingWalks += r.RovingWalks
		res.QueryCacheHits += r.QueryCacheHits
		res.QueryCacheMisses += r.QueryCacheMisses
		res.TableSearchSteps += r.TableSearchSteps
		res.RangeQueries += r.RangeQueries
		res.PreWalks += r.PreWalks
		res.FilterProbes += r.FilterProbes
		res.HotHitsChannel += r.HotHitsChannel
		res.HotHitsBoard += r.HotHitsBoard
		res.ChipUpdates += r.ChipUpdates
		res.SubgraphLoads += r.SubgraphLoads
		res.SubgraphReloads += r.SubgraphReloads
		res.PWBOverflows += r.PWBOverflows
		res.ForeignerWalks += r.ForeignerWalks
		res.ForeignerFlushes += r.ForeignerFlushes
		res.CompletedFlushes += r.CompletedFlushes
		res.GuiderStalls += r.GuiderStalls
		res.PartitionSwitches += r.PartitionSwitches
		res.MutationsApplied += r.MutationsApplied

		if e.inj != nil {
			res.Faults.ReadErrors += e.inj.Counters.ReadErrors
			res.Faults.Retries += e.inj.Counters.Retries
			res.Faults.RetriesExhausted += e.inj.Counters.RetriesExhausted
			res.Faults.PlaneBusyStalls += e.inj.Counters.PlaneBusyStalls
			res.Faults.StallTime += e.inj.Counters.StallTime
			res.Faults.BackoffTime += e.inj.Counters.BackoffTime
			res.Faults.DegradedChips += e.inj.Counters.DegradedChips
		}
		res.FaultReroutes += r.FaultReroutes
		res.FailoverBlocks += r.FailoverBlocks

		chipU += r.ChipUpdaterUtil
		if r.ChipUpdaterUtilMax > chipMax {
			chipMax = r.ChipUpdaterUtilMax
		}
		chanU += r.ChannelGuiderUtil
		boardU += r.BoardGuiderUtil
		if r.ChannelBusUtilMax > busMax {
			busMax = r.ChannelBusUtilMax
		}
		dramU += e.dr.Utilization()

		if r.Visits != nil {
			if res.Visits == nil {
				res.Visits = make([]uint64, len(r.Visits))
			}
			for v, n := range r.Visits {
				res.Visits[v] += n
			}
		}
	}
	nb := float64(len(a.boards))
	res.ChipUpdaterUtil = chipU / nb
	res.ChipUpdaterUtilMax = chipMax
	res.ChannelGuiderUtil = chanU / nb
	res.BoardGuiderUtil = boardU / nb
	res.ChannelBusUtilMax = busMax
	res.DRAMPortUtil = dramU / nb
	return res
}

// --- Pools. ---

// getFW hands out a recycled fabric-walk buffer (len 0).
func (a *Array) getFW() []fabricWalk {
	if n := len(a.fwbufs); n > 0 {
		b := a.fwbufs[n-1]
		a.fwbufs[n-1] = nil
		a.fwbufs = a.fwbufs[:n-1]
		return b
	}
	return make([]fabricWalk, 0, 16)
}

// putFW recycles a fabric-walk buffer once its walks were handed on.
func (a *Array) putFW(b []fabricWalk) {
	if b == nil {
		return
	}
	a.fwbufs = append(a.fwbufs, b[:0])
}

// newFBatch parks an in-flight fabric transfer in a pooled record.
func (a *Array) newFBatch(walks []fabricWalk, dst int) int32 {
	var ref int32
	if a.freeFB >= 0 {
		ref = a.freeFB
		a.freeFB = a.fbatches[ref].free
	} else {
		a.fbatches = append(a.fbatches, fabricBatch{})
		ref = int32(len(a.fbatches) - 1)
	}
	a.fbatches[ref] = fabricBatch{walks: walks, dst: int32(dst), free: -1}
	return ref
}

// takeFBatch releases a batch record, returning its walks and destination.
func (a *Array) takeFBatch(ref int32) ([]fabricWalk, int) {
	fb := a.fbatches[ref]
	a.fbatches[ref] = fabricBatch{free: a.freeFB}
	a.freeFB = ref
	return fb.walks, int(fb.dst)
}
