package core

import (
	"context"
	"errors"
	"testing"

	"flashwalker/internal/errs"
	"flashwalker/internal/graph"
	"flashwalker/internal/sim"
	"flashwalker/internal/snapshot"
)

// interruptArray runs rc until a snapshot satisfying want is captured (the
// snapshotAt-th one), cancels the run at that exact checkpoint, and returns
// the snapshot after round-tripping it through the on-disk codec. want ==
// nil accepts every snapshot.
func interruptArray(t *testing.T, g *graph.Graph, rc RunConfig, snapshotAt int, want func(*ArraySnapshot) bool) *ArraySnapshot {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var captured *ArraySnapshot
	count := 0
	rc.CheckpointEvery = 64
	a, err := NewArray(g, rc)
	if err != nil {
		t.Fatalf("NewArray: %v", err)
	}
	a.SetSnapshotHook(func(s *ArraySnapshot) {
		if want != nil && !want(s) {
			return
		}
		count++
		if count == snapshotAt {
			captured = s
			cancel()
		}
	}, 1)
	if _, err := a.RunContext(ctx); err == nil {
		t.Fatalf("run finished after only %d matching snapshots; interrupt never landed", count)
	}
	if captured == nil {
		t.Fatalf("run ended with %d matching snapshots, wanted %d", count, snapshotAt)
	}
	data, err := snapshot.Encode("core-array", captured)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	back := new(ArraySnapshot)
	if err := snapshot.Decode(data, "core-array", back); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	return back
}

// TestArrayResumeMetamorphic extends the PR-5 resume invariant to arrays:
// a 2-board run interrupted at a snapshot that has walks IN FLIGHT on the
// fabric (in-fabric count > 0, so egress buffers and pending evFabricArrive
// events are part of the restored image), serialized, deserialized, and
// resumed lands on a bit-identical Result to the uninterrupted run.
func TestArrayResumeMetamorphic(t *testing.T) {
	g := testGraph(t)
	rc := arrayConfig(2)
	rc.TrackVisits = true
	clean := runArray(t, g, rc)

	snap := interruptArray(t, g, rc, 1, func(s *ArraySnapshot) bool { return s.InFabric > 0 })
	if snap.InFabric == 0 {
		t.Fatal("captured snapshot has no in-flight fabric walks")
	}
	res, err := ResumeArrayContext(context.Background(), g, snap, ArrayResumeOptions{})
	if err != nil {
		t.Fatalf("ResumeArrayContext: %v", err)
	}
	if got, want := digestResult(res), digestResult(clean); got != want {
		t.Fatalf("resumed array diverged from uninterrupted run:\n got %s\nwant %s", got, want)
	}
	if res.FabricWalks != clean.FabricWalks || res.FabricBatches != clean.FabricBatches ||
		res.FabricBytes != clean.FabricBytes {
		t.Fatalf("fabric counters diverged: resumed %d/%d/%d, clean %d/%d/%d",
			res.FabricWalks, res.FabricBatches, res.FabricBytes,
			clean.FabricWalks, clean.FabricBatches, clean.FabricBytes)
	}
	for v := range clean.Visits {
		if res.Visits[v] != clean.Visits[v] {
			t.Fatalf("vertex %d visited %d times resumed, %d clean", v, res.Visits[v], clean.Visits[v])
		}
	}
}

// TestArrayResumeChained proves array snapshots compose, interrupting the
// resumed leg again deeper into the run.
func TestArrayResumeChained(t *testing.T) {
	g := testGraph(t)
	rc := arrayConfig(2)
	clean := runArray(t, g, rc)

	first := interruptArray(t, g, rc, 2, nil)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var second *ArraySnapshot
	count := 0
	a, err := ResumeArray(g, first, ArrayResumeOptions{
		CheckpointEvery: 64,
		SnapshotEvery:   1,
		OnSnapshot: func(s *ArraySnapshot) {
			count++
			if count == 2 {
				second = s
				cancel()
			}
		},
	})
	if err != nil {
		t.Fatalf("ResumeArray: %v", err)
	}
	if _, err := a.RunContext(ctx); err == nil {
		t.Fatalf("second leg finished after %d snapshots; interrupt never landed", count)
	}
	if second == nil {
		t.Fatalf("second leg took %d snapshots, wanted 2", count)
	}

	res, err := ResumeArrayContext(context.Background(), g, second, ArrayResumeOptions{})
	if err != nil {
		t.Fatalf("final ResumeArrayContext: %v", err)
	}
	if got, want := digestResult(res), digestResult(clean); got != want {
		t.Fatalf("twice-resumed array diverged:\n got %s\nwant %s", got, want)
	}
}

// TestArrayResumeRejectsBadSnapshot guards the array resume validations.
func TestArrayResumeRejectsBadSnapshot(t *testing.T) {
	g := testGraph(t)
	snap := interruptArray(t, g, arrayConfig(2), 1, nil)

	if _, err := ResumeArray(g, nil, ArrayResumeOptions{}); !errors.Is(err, errs.ErrInvalidConfig) {
		t.Fatalf("nil snapshot: %v, want ErrInvalidConfig", err)
	}
	other, err := graph.RMAT(graph.DefaultRMAT(1024, 8192, 5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ResumeArray(other, snap, ArrayResumeOptions{}); !errors.Is(err, errs.ErrInvalidConfig) {
		t.Fatalf("wrong-graph resume: %v, want ErrInvalidConfig", err)
	}
}

// killConfig is the golden workload on nb boards with board `board` killed
// at killAt. Partitions are cut fine (8 subgraphs each) so every board owns
// several and the killed one still holds parked walks to evacuate; with the
// default coarse cut a board owns one partition and consumes arrivals the
// moment they land, leaving a kill nothing to evacuate.
func killConfig(nb, board int, killAt sim.Time) RunConfig {
	rc := arrayConfig(nb)
	rc.PartCfg.SubgraphsPerPartition = 8
	rc.TrackVisits = true
	rc.Cfg.Faults.KillBoardAt = killAt
	rc.Cfg.Faults.KillBoard = board
	return rc
}

// TestArrayBoardKillOutcomeEquality is the whole-device fault invariant: a
// mid-run fail-stop of one board (shard re-placed onto the survivors,
// parked walks evacuated over the fabric, in-flight batches bounced) still
// finishes every walk with outcomes and visit counts identical to the
// clean run — per-walk RNG streams make trajectories independent of where
// walks execute, kills included.
func TestArrayBoardKillOutcomeEquality(t *testing.T) {
	g := testGraph(t)
	cleanRC := killConfig(3, 0, 0) // killAt 0 = kill disabled, same workload
	cleanV := runArray(t, g, cleanRC)

	// Kill board 1 midway through the clean run's ~970 us timeline.
	rc := killConfig(3, 1, 200*sim.Microsecond)
	res := runArray(t, g, rc)
	if res.BoardKills != 1 {
		t.Fatalf("BoardKills = %d, want 1", res.BoardKills)
	}
	if res.WalksFinished() != res.Started {
		t.Fatalf("kill run finished %d of %d walks", res.WalksFinished(), res.Started)
	}
	if res.Started != cleanV.Started || res.Completed != cleanV.Completed ||
		res.DeadEnded != cleanV.DeadEnded || res.Hops != cleanV.Hops {
		t.Fatalf("kill run outcomes (%d/%d/%d/%d) != clean (%d/%d/%d/%d)",
			res.Started, res.Completed, res.DeadEnded, res.Hops,
			cleanV.Started, cleanV.Completed, cleanV.DeadEnded, cleanV.Hops)
	}
	for v := range cleanV.Visits {
		if res.Visits[v] != cleanV.Visits[v] {
			t.Fatalf("vertex %d visited %d times with kill, %d clean", v, res.Visits[v], cleanV.Visits[v])
		}
	}

	// Killing a board that still holds parked walks must evacuate them.
	if res.EvacuatedWalks == 0 {
		t.Fatal("kill at 200us evacuated nothing")
	}
	// Determinism: the same kill twice lands on the same digest.
	if a, b := digestResult(res), digestResult(runArray(t, g, rc)); a != b {
		t.Fatalf("kill run not deterministic:\n a %s\n b %s", a, b)
	}
}

// TestArrayBoardKillTimingSweep kills at several points of the timeline —
// before launch work completes, mid-run, and after most walks finished —
// and requires every variant to finish all walks with clean outcomes.
func TestArrayBoardKillTimingSweep(t *testing.T) {
	g := testGraph(t)
	cleanRC := killConfig(3, 0, 0)
	cleanRC.TrackVisits = false
	clean := runArray(t, g, cleanRC)
	for _, at := range []sim.Time{1 * sim.Microsecond, 150 * sim.Microsecond, 700 * sim.Microsecond} {
		rc := killConfig(3, 2, at)
		rc.TrackVisits = false
		res := runArray(t, g, rc)
		if res.WalksFinished() != res.Started {
			t.Fatalf("kill at %v: finished %d of %d", at, res.WalksFinished(), res.Started)
		}
		if res.Completed != clean.Completed || res.Hops != clean.Hops {
			t.Fatalf("kill at %v changed outcomes: %d/%d vs clean %d/%d",
				at, res.Completed, res.Hops, clean.Completed, clean.Hops)
		}
	}
}

// TestArrayKillThenResume combines both fault layers: interrupt a 2-board
// kill run at a snapshot taken BEFORE the kill fires (the pending kill is a
// typed event in the exported heap), resume from the serialized image, and
// require the resumed run to replay the kill and land on the uninterrupted
// kill run's exact digest.
func TestArrayKillThenResume(t *testing.T) {
	g := testGraph(t)
	rc := killConfig(2, 1, 200*sim.Microsecond)
	clean := runArray(t, g, rc)

	snap := interruptArray(t, g, rc, 2, nil)
	res, err := ResumeArrayContext(context.Background(), g, snap, ArrayResumeOptions{})
	if err != nil {
		t.Fatalf("ResumeArrayContext: %v", err)
	}
	if res.BoardKills != 1 {
		t.Fatalf("resumed run recorded %d kills, want 1", res.BoardKills)
	}
	if got, want := digestResult(res), digestResult(clean); got != want {
		t.Fatalf("resumed kill run diverged:\n got %s\nwant %s", got, want)
	}
}
