package core

import (
	"context"
	"fmt"

	"flashwalker/internal/errs"
	"flashwalker/internal/graph"
	"flashwalker/internal/sim"
)

// Array checkpoint/restore. The fleet shares ONE event kernel, so an
// ArraySnapshot holds one sim.EngineState plus a per-board body Snapshot
// (walk stores, device bookings, pooled records — everything except the
// kernel) and the fabric's own state: per-link queue bookings, the batched
// egress buffers, and the pooled in-flight transfer records the pending
// evFabricArrive events reference by index.
//
// Event-target IDs for the fleet-wide export: the array itself is 0 (its
// fabric arrivals and kill events are typed events targeting the Array),
// and board b's engine and SSD are 1+2b and 2+2b. The single-board mapping
// (engine=0, SSD=1) is untouched.

// arrayTargetArray is the Array's own event-target ID.
const arrayTargetArray int32 = 0

func arrayTargetEngine(b int) int32 { return int32(1 + 2*b) }
func arrayTargetSSD(b int) int32    { return int32(2 + 2*b) }

// FabricWalkState is one in-flight fabric walk in serializable form.
type FabricWalkState struct {
	St WalkState
	P  int32
}

// EgressState is one (source, destination) egress batch being accumulated.
type EgressState struct {
	Walks []FabricWalkState
	Bytes int64
}

// FabricBatchState is one pooled fabric transfer record (live or free).
type FabricBatchState struct {
	Walks []FabricWalkState
	Dst   int32
	Free  int32
}

// ArraySnapshot is the complete serializable state of a paused Array.
type ArraySnapshot struct {
	// Identity. Per-board identity (Cfg, device configs, spec, graph
	// counts) lives in each board Snapshot; every board carries the same
	// values, and ResumeArray rebuilds the fleet from Boards[0].
	NumBoards int

	// The shared event kernel, exported once with the fleet-wide mapping.
	Sim sim.EngineState

	// Per-board state; the Sim field of each entry is unused (zero).
	Boards []*Snapshot

	// Shard ownership and device liveness.
	Owners []int32
	Dead   []bool

	// Fabric state.
	FabricQ   []sim.QueueState
	Egress    [][]EgressState
	FBatches  []FabricBatchState
	FreeFB    int32
	InFabric  int
	Remaining int
	Started   int

	RootRNG [4]uint64

	FabricWalks   uint64
	FabricBatches uint64
	FabricBytes   int64
	Evacuated     uint64
	Kills         uint64
}

func fwOut(ws []fabricWalk) []FabricWalkState {
	if ws == nil {
		return nil
	}
	out := make([]FabricWalkState, len(ws))
	for i := range ws {
		out[i] = FabricWalkState{St: wsOut(&ws[i].st), P: ws[i].p}
	}
	return out
}

func fwIn(ws []FabricWalkState) []fabricWalk {
	if len(ws) == 0 {
		return nil
	}
	out := make([]fabricWalk, len(ws))
	for i := range ws {
		out[i] = fabricWalk{st: wsIn(ws[i].St), p: ws[i].P}
	}
	return out
}

// Snapshot captures the array's complete state; the same restrictions as
// Engine.Snapshot apply (strictly between events, no pending setup
// closures, no tracers or time series, not after a failure).
func (a *Array) Snapshot() (*ArraySnapshot, error) {
	return a.buildSnapshot()
}

func (a *Array) buildSnapshot() (*ArraySnapshot, error) {
	if a.failure != nil {
		return nil, fmt.Errorf("core: cannot snapshot a failed run: %w", a.failure)
	}
	targetID := func(h sim.Handler) (int32, error) {
		if h == sim.Handler(a) {
			return arrayTargetArray, nil
		}
		for b, e := range a.boards {
			switch h {
			case sim.Handler(e):
				return arrayTargetEngine(b), nil
			case sim.Handler(e.ssd):
				return arrayTargetSSD(b), nil
			}
		}
		return 0, fmt.Errorf("unknown event target %T", h)
	}
	s := &ArraySnapshot{
		NumBoards: len(a.boards),
		Owners:    a.shard.Owners(),
		Dead:      append([]bool(nil), a.dead...),
		FreeFB:    a.freeFB,
		InFabric:  a.inFabric,
		Remaining: a.remaining,
		Started:   a.numStarted,
		RootRNG:   a.rootRNG.State(),

		FabricWalks:   a.fabricWalks,
		FabricBatches: a.fabricBatchCnt,
		FabricBytes:   a.fabricBytes,
		Evacuated:     a.evacuated,
		Kills:         a.kills,
	}
	for b, e := range a.boards {
		body, err := e.buildSnapshotBody(targetID)
		if err != nil {
			return nil, fmt.Errorf("core: snapshot board %d: %w", b, err)
		}
		s.Boards = append(s.Boards, body)
		s.FabricQ = append(s.FabricQ, a.fabric[b].State())
		row := make([]EgressState, len(a.egress[b]))
		for dst := range a.egress[b] {
			row[dst] = EgressState{Walks: fwOut(a.egress[b][dst].walks), Bytes: a.egress[b][dst].bytes}
		}
		s.Egress = append(s.Egress, row)
	}
	s.FBatches = make([]FabricBatchState, len(a.fbatches))
	for i := range a.fbatches {
		s.FBatches[i] = FabricBatchState{
			Walks: fwOut(a.fbatches[i].walks), Dst: a.fbatches[i].dst, Free: a.fbatches[i].free,
		}
	}
	// The kernel export goes last: it fails while setup closures (the
	// per-board hot-subgraph preloads) are still pending, which is also the
	// signal the checkpoint hook uses to retry later.
	simState, err := a.eng.ExportState(targetID)
	if err != nil {
		return nil, err
	}
	s.Sim = simState
	return s, nil
}

// ResumeArray rebuilds an array from a snapshot over the same graph. Like
// ResumeEngine, the resumed fleet continues the interrupted run exactly —
// same clock, same pending events (fabric transfers included), same RNG
// positions — so its final Result is bit-identical to the uninterrupted
// run.
func ResumeArray(g *graph.Graph, snap *ArraySnapshot, opts ArrayResumeOptions) (*Array, error) {
	if snap == nil {
		return nil, fmt.Errorf("core: nil snapshot: %w", errs.ErrInvalidConfig)
	}
	if snap.NumBoards < 1 || len(snap.Boards) != snap.NumBoards {
		return nil, fmt.Errorf("core: snapshot has %d board bodies for %d boards: %w",
			len(snap.Boards), snap.NumBoards, errs.ErrInvalidConfig)
	}
	id := snap.Boards[0]
	if g.NumVertices() != id.GraphVertices || g.NumEdges() != id.GraphEdges {
		return nil, fmt.Errorf("core: snapshot was taken over a graph with %d vertices / %d edges, got %d / %d: %w",
			id.GraphVertices, id.GraphEdges, g.NumVertices(), g.NumEdges(), errs.ErrInvalidConfig)
	}
	rc := RunConfig{
		Cfg: id.Cfg, FlashCfg: id.FlashCfg, DRAMCfg: id.DRAMCfg,
		PartCfg: id.PartCfg, Spec: id.Spec, NumWalks: id.NumWalks,
		MaxSimTime: id.MaxSimTime, TrackVisits: id.TrackVisits,
		Audit: id.Audit, UseAliasSampling: id.UseAliasSampling,
		Mutations:  id.Mutations,
		OnProgress: opts.OnProgress, CheckpointEvery: opts.CheckpointEvery,
		OnWalks: opts.OnWalks, EmitEvery: opts.EmitEvery,
	}
	a, err := newArray(g, rc)
	if err != nil {
		return nil, err
	}
	a.onSnapshot = opts.OnSnapshot
	a.snapEvery = opts.SnapshotEvery
	if err := a.restore(snap); err != nil {
		return nil, err
	}
	// The fleet-wide finish sequence continues from the restored boards'
	// finished counts: the export flushed every record below that total
	// before the snapshot was delivered.
	a.finSeq = 0
	for _, e := range a.boards {
		a.finSeq += uint64(e.res.Completed + e.res.DeadEnded)
	}
	return a, nil
}

// ArrayResumeOptions parameterizes a resumed array run.
type ArrayResumeOptions struct {
	OnProgress      func(Progress)
	OnSnapshot      func(*ArraySnapshot)
	SnapshotEvery   uint64
	CheckpointEvery uint64
	// OnWalks / EmitEvery re-attach the completed-walk export; the resumed
	// fleet continues the finish-order numbering from the snapshot's
	// restored per-board finished counts.
	OnWalks   func([]WalkDone)
	EmitEvery uint64
}

// ResumeArrayContext is ResumeArray followed by RunContext.
func ResumeArrayContext(ctx context.Context, g *graph.Graph, snap *ArraySnapshot, opts ArrayResumeOptions) (*Result, error) {
	a, err := ResumeArray(g, snap, opts)
	if err != nil {
		return nil, err
	}
	return a.RunContext(ctx)
}

// restore overlays the snapshot's state onto a freshly built skeleton.
func (a *Array) restore(snap *ArraySnapshot) error {
	nb := len(a.boards)
	switch {
	case snap.NumBoards != nb:
		return fmt.Errorf("core: resume: snapshot has %d boards, config has %d", snap.NumBoards, nb)
	case len(snap.FabricQ) != nb, len(snap.Egress) != nb, len(snap.Dead) != nb:
		return fmt.Errorf("core: resume: snapshot fabric state sized for %d boards, config has %d", len(snap.FabricQ), nb)
	}
	target := func(id int32) (sim.Handler, error) {
		if id == arrayTargetArray {
			return a, nil
		}
		b := int(id-1) / 2
		if b < 0 || b >= nb {
			return nil, fmt.Errorf("unknown target id %d", id)
		}
		if (id-1)%2 == 0 {
			return a.boards[b], nil
		}
		return a.boards[b].ssd, nil
	}
	if err := a.eng.ImportState(snap.Sim, target); err != nil {
		return err
	}
	// Replay the fleet's applied mutations beyond the construction-time
	// prefix; every board's cursor follows. The per-board attribution this
	// produces is overwritten by the res overlays below.
	id := snap.Boards[0]
	if id.MutApplied < a.mutCursor || id.MutApplied > len(a.muts) {
		return fmt.Errorf("core: resume: snapshot applied %d of %d mutations (prefix %d)",
			id.MutApplied, len(a.muts), a.mutCursor)
	}
	for a.mutCursor < id.MutApplied {
		if err := a.applyMutation(a.muts[a.mutCursor]); err != nil {
			return fmt.Errorf("core: resume: replay mutation %d: %w", a.mutCursor, err)
		}
		a.mutCursor++
	}
	for _, e := range a.boards {
		e.mutCursor = a.mutCursor
	}
	for b, e := range a.boards {
		if err := e.restoreBody(snap.Boards[b], target); err != nil {
			return fmt.Errorf("core: resume board %d: %w", b, err)
		}
		a.fabric[b].Restore(snap.FabricQ[b])
		if len(snap.Egress[b]) != nb {
			return fmt.Errorf("core: resume: egress row %d has %d entries, want %d", b, len(snap.Egress[b]), nb)
		}
		for dst := range a.egress[b] {
			a.egress[b][dst] = egressBuf{walks: fwIn(snap.Egress[b][dst].Walks), bytes: snap.Egress[b][dst].Bytes}
		}
	}
	if err := a.shard.SetOwners(snap.Owners); err != nil {
		return fmt.Errorf("core: resume: %w", err)
	}
	copy(a.dead, snap.Dead)
	a.fbatches = make([]fabricBatch, len(snap.FBatches))
	for i, fb := range snap.FBatches {
		a.fbatches[i] = fabricBatch{walks: fwIn(fb.Walks), dst: fb.Dst, free: fb.Free}
	}
	a.freeFB = snap.FreeFB
	a.inFabric = snap.InFabric
	a.remaining = snap.Remaining
	a.numStarted = snap.Started
	a.rootRNG.SetState(snap.RootRNG)
	a.fabricWalks = snap.FabricWalks
	a.fabricBatchCnt = snap.FabricBatches
	a.fabricBytes = snap.FabricBytes
	a.evacuated = snap.Evacuated
	a.kills = snap.Kills
	// The launch work already happened in the original run; its events —
	// the scheduled kill included — are in the restored heap.
	a.launched = true
	a.lastSnap = a.eng.Processed()
	return nil
}
