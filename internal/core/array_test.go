package core

import (
	"errors"
	"testing"

	"flashwalker/internal/errs"
	"flashwalker/internal/graph"
	"flashwalker/internal/sim"
	"flashwalker/internal/trace"
)

// arrayGoldenDigest2 pins the golden workload's full timeline on a 2-board
// array, the multi-board counterpart of goldenDigest: any change to fabric
// timing, shard placement, or cross-board event ordering moves it. The same
// update discipline applies — refactors keep it bit-identical, intentional
// behaviour changes must say so.
const arrayGoldenDigest2 = "time=1018000 started=500 completed=416 dead=84 hops=2564 " +
	"readPages=590 progPages=0 readB=2416640 chanB=477972 " +
	"dramR=39360 dramW=39360 " +
	"qcHit=436 qcMiss=2040 search=8040 range=1559 prewalk=0 " +
	"hotCh=217 hotBd=444 chip=1987 loads=836 reloads=342 " +
	"pwb=0 foreign=496 switches=11"

func runArray(t *testing.T, g *graph.Graph, rc RunConfig) *Result {
	t.Helper()
	a, err := NewArray(g, rc)
	if err != nil {
		t.Fatalf("NewArray: %v", err)
	}
	res, err := a.Run()
	if err != nil {
		t.Fatalf("array Run: %v", err)
	}
	return res
}

// arrayConfig is goldenConfig on nb boards.
func arrayConfig(nb int) RunConfig {
	rc := goldenConfig()
	rc.Cfg.Boards = nb
	return rc
}

// TestArrayBoards1MatchesGolden is the behaviour-preservation proof of the
// array layer: a 1-board array reproduces the single-board engine's golden
// digest bit for bit — the shared-kernel refactor added no events, changed
// no ordering, and moved no RNG draw.
func TestArrayBoards1MatchesGolden(t *testing.T) {
	g := testGraph(t)
	res := runArray(t, g, arrayConfig(1))
	if got := digestResult(res); got != goldenDigest {
		t.Fatalf("1-board array diverged from the single-board golden digest:\n got %s\nwant %s", got, goldenDigest)
	}
	if res.Boards != 1 || res.FabricWalks != 0 || res.FabricBytes != 0 {
		t.Fatalf("1-board array used the fabric: %+v", res)
	}
}

// TestArrayGoldenDigest2 pins the 2-board timeline (and is the multi-board
// golden-digest check the CI race lane runs by name).
func TestArrayGoldenDigest2(t *testing.T) {
	g := testGraph(t)
	res := runArray(t, g, arrayConfig(2))
	if got := digestResult(res); got != arrayGoldenDigest2 {
		t.Fatalf("2-board golden digest changed:\n got %s\nwant %s", got, arrayGoldenDigest2)
	}
	if res.FabricWalks == 0 || res.FabricBatches == 0 || res.FabricBytes == 0 {
		t.Fatalf("2-board run shipped nothing over the fabric: %+v", res)
	}
}

// TestArrayRepeatable guards multi-board determinism: two arrays built from
// the same RunConfig produce identical digests.
func TestArrayRepeatable(t *testing.T) {
	g := testGraph(t)
	for _, nb := range []int{2, 3} {
		a := digestResult(runArray(t, g, arrayConfig(nb)))
		b := digestResult(runArray(t, g, arrayConfig(nb)))
		if a != b {
			t.Fatalf("%d boards: same config, different digests:\n a %s\n b %s", nb, a, b)
		}
	}
}

// TestArrayOutcomeEquality is the fabric's metamorphic invariant: because
// every walk owns an RNG stream derived from its global index, trajectories
// depend only on (walk, graph) — board count and fabric timing change when
// walks finish, never where they go. Walk outcomes and per-vertex visit
// counts must match the single-board engine exactly for any board count.
func TestArrayOutcomeEquality(t *testing.T) {
	g := testGraph(t)
	rc := goldenConfig()
	rc.TrackVisits = true
	clean := runEngine(t, g, rc)
	for _, nb := range []int{1, 2, 3, 4} {
		rcN := rc
		rcN.Cfg.Boards = nb
		res := runArray(t, g, rcN)
		if res.Started != clean.Started || res.Completed != clean.Completed ||
			res.DeadEnded != clean.DeadEnded || res.Hops != clean.Hops {
			t.Fatalf("%d boards: outcomes (%d/%d/%d/%d) != single-board (%d/%d/%d/%d)",
				nb, res.Started, res.Completed, res.DeadEnded, res.Hops,
				clean.Started, clean.Completed, clean.DeadEnded, clean.Hops)
		}
		if len(res.Visits) != len(clean.Visits) {
			t.Fatalf("%d boards: visit vector length %d, want %d", nb, len(res.Visits), len(clean.Visits))
		}
		for v := range clean.Visits {
			if res.Visits[v] != clean.Visits[v] {
				t.Fatalf("%d boards: vertex %d visited %d times, single-board %d",
					nb, v, res.Visits[v], clean.Visits[v])
			}
		}
		if nb > 1 && res.FabricWalks == 0 {
			t.Fatalf("%d boards: no fabric traffic on a multi-partition workload", nb)
		}
	}
}

// TestArrayWalksConserved runs a larger multi-board workload with the
// fleet-wide conservation audit on and every stress knob that moves walks
// between stores (tiny foreigner buffer, tiny PWB entries, many partitions).
func TestArrayWalksConserved(t *testing.T) {
	g := testGraph(t)
	rc := testConfig()
	rc.Cfg.Boards = 3
	rc.Audit = true
	rc.PartCfg.SubgraphsPerPartition = 8
	rc.Cfg.ForeignerBufBytes = 256
	rc.Cfg.PartitionWalkEntryBytes = 64
	rc.NumWalks = 500
	res := runArray(t, g, rc)
	if res.WalksFinished() != res.Started {
		t.Fatalf("finished %d of %d walks", res.WalksFinished(), res.Started)
	}
	if res.ForeignerFlushes == 0 {
		t.Fatal("tiny foreigner buffer never flushed on the array path")
	}
	if res.PartitionSwitches < uint64(res.Boards) {
		t.Fatalf("only %d partition switches across %d boards", res.PartitionSwitches, res.Boards)
	}
}

// TestArrayFabricTimingMatters checks the fabric is a real modeled resource:
// slowing it down must stretch the simulated end-to-end time without
// changing any walk outcome.
func TestArrayFabricTimingMatters(t *testing.T) {
	g := testGraph(t)
	fast := runArray(t, g, arrayConfig(2))
	slow := arrayConfig(2)
	slow.Cfg.FabricLatency = 200 * sim.Microsecond
	slow.Cfg.FabricBytesPerSec = 1 << 20
	sres := runArray(t, g, slow)
	if sres.Time <= fast.Time {
		t.Fatalf("slow fabric finished in %v, fast fabric in %v", sres.Time, fast.Time)
	}
	if sres.Hops != fast.Hops || sres.Completed != fast.Completed {
		t.Fatal("fabric timing changed walk outcomes")
	}
}

// TestNewArrayRejectsBadInput covers the array-specific construction guards.
func TestNewArrayRejectsBadInput(t *testing.T) {
	g := testGraph(t)

	rc := arrayConfig(2)
	rc.ProgressBin = 100 * sim.Microsecond
	if _, err := NewArray(g, rc); !errors.Is(err, errs.ErrInvalidConfig) {
		t.Fatalf("ProgressBin on an array: %v, want ErrInvalidConfig", err)
	}

	rc = arrayConfig(2)
	rc.Tracer = trace.NewRecorder()
	if _, err := NewArray(g, rc); !errors.Is(err, errs.ErrInvalidConfig) {
		t.Fatalf("Tracer on an array: %v, want ErrInvalidConfig", err)
	}

	rc = arrayConfig(2)
	rc.Cfg.FabricBytesPerSec = 0
	if _, err := NewArray(g, rc); !errors.Is(err, errs.ErrInvalidConfig) {
		t.Fatalf("zero fabric bandwidth: %v, want ErrInvalidConfig", err)
	}

	rc = arrayConfig(MaxBoards + 1)
	if _, err := NewArray(g, rc); !errors.Is(err, errs.ErrInvalidConfig) {
		t.Fatalf("%d boards accepted: %v", MaxBoards+1, err)
	}

	// The single-board constructor refuses multi-board configs outright.
	if _, err := NewEngine(g, arrayConfig(2)); !errors.Is(err, errs.ErrInvalidConfig) {
		t.Fatalf("NewEngine accepted Boards=2: %v", err)
	}
}
