package core

import (
	"sort"

	"flashwalker/internal/walk"
)

// Batched, cache-conscious walk-update kernel.
//
// When an updater receives a burst of walks at once — a chip slot
// activating with its claimed walks (chip.go loadPartDone) or a roving
// batch landing at a channel guider (events.go evChanBatch) — the decisions
// for the whole burst are made in a single pass ORDERED BY CURRENT VERTEX
// (and by (prev, cur) for second-order walks, so edge-bloom probes for the
// same vertex pair coalesce). Sorting means the adjacency ranges,
// cumulative-weight arrays, and alias rows the pass touches stream through
// the CPU caches sequentially instead of hopping randomly across the graph.
//
// This reordering is outcome-safe — and keeps every golden digest
// bit-identical — for two reasons:
//
//  1. Every sampling draw comes from the walk's PRIVATE RNG stream
//     (wstate.rng), so the values a walk draws are independent of which
//     other walks were decided before it. decideHop's only shared write is
//     res.Visits[v]++, an order-independent sum.
//
//  2. Only the pure decision pass is reordered. Everything with a
//     device-visible effect — filter-probe DRAM/bus charges, wnode
//     allocation, and the completion-event dispatch with its service time —
//     runs afterwards in the ORIGINAL arrival order, so the simulated
//     timeline is byte-for-byte the same as deciding one walk at a time.
//
// Sites that mutate shared state during classification (the board guider's
// query-cache LRU and pre-walk draws, route.go) are never batch-reordered.

// batchSorter sorts a permutation of batch indices by walk locality. It is
// an Engine field (not a local) so the sort.Interface conversion in
// sort.Sort(&e.bsort) does not allocate — the steady-state hop path must
// stay allocation-free (alloc_test.go).
type batchSorter struct {
	walks  []wstate
	perm   []int32
	byPrev bool
}

func (s *batchSorter) Len() int      { return len(s.perm) }
func (s *batchSorter) Swap(i, j int) { s.perm[i], s.perm[j] = s.perm[j], s.perm[i] }
func (s *batchSorter) Less(i, j int) bool {
	return walkLess(&s.walks[s.perm[i]], &s.walks[s.perm[j]], s.byPrev)
}

// walkLess is the batch locality order: by (prev, cur) when byPrev is set
// (second-order walks, coalescing edge-bloom probes per vertex pair), by
// current vertex otherwise.
func walkLess(a, b *wstate, byPrev bool) bool {
	if byPrev && a.prev != b.prev {
		return a.prev < b.prev
	}
	return a.w.Cur < b.w.Cur
}

// insertionSortMax is the batch size up to which sortedPerm uses a direct
// insertion sort. Update bursts are slot claims and roving batches — tens
// of walks — where insertion sort beats sort.Sort's interface-call overhead
// by a wide margin; the comparison sort remains as the large-batch fallback.
const insertionSortMax = 48

// sortedPerm returns the indices of walks ordered by current vertex (and
// previous vertex first when byPrev is set). The permutation slice is
// engine-owned scratch, valid until the next call.
func (e *Engine) sortedPerm(walks []wstate, byPrev bool) []int32 {
	n := len(walks)
	if cap(e.bsort.perm) < n {
		e.bsort.perm = make([]int32, n)
	}
	perm := e.bsort.perm[:n]
	e.bsort.perm = perm
	for i := range perm {
		perm[i] = int32(i)
	}
	if n <= insertionSortMax {
		for i := 1; i < n; i++ {
			p := perm[i]
			j := i
			for j > 0 && walkLess(&walks[p], &walks[perm[j-1]], byPrev) {
				perm[j] = perm[j-1]
				j--
			}
			perm[j] = p
		}
		return perm
	}
	e.bsort.walks, e.bsort.byPrev = walks, byPrev
	sort.Sort(&e.bsort)
	e.bsort.walks = nil
	return perm
}

// decideBatch decides every walk's hop in one locality-sorted pass.
// Outcomes land at each walk's ORIGINAL index so the caller dispatches them
// in arrival order; the returned slice is engine-owned scratch, valid until
// the next call.
func (e *Engine) decideBatch(walks []wstate) []hopOutcome {
	n := len(walks)
	if cap(e.batchOuts) < n {
		e.batchOuts = make([]hopOutcome, n)
	}
	outs := e.batchOuts[:n]
	e.batchOuts = outs
	for _, idx := range e.sortedPerm(walks, e.spec.Kind == walk.SecondOrder) {
		outs[idx] = e.decideHop(walks[idx])
	}
	return outs
}
