package core

import (
	"fmt"
	"testing"

	"flashwalker/internal/graph"
	"flashwalker/internal/walk"
)

// TestBatchKernelEquivalence is the batched kernel's correctness property:
// deciding a burst of walks in locality-sorted order (batch.go) must be
// indistinguishable — bit-identical digest, including the simulated
// timeline, and identical per-vertex visit counts — from deciding them one
// at a time in arrival order. The matrix crosses every spec kind with fault
// injection and board counts because each axis exercises a different batch
// path: unbiased/biased stress the chip slot-load bursts, second-order adds
// the (prev, cur) sort over bloom probes, faults shift burst composition,
// and 2 boards route batches across the fabric.
func TestBatchKernelEquivalence(t *testing.T) {
	plain := testGraph(t)
	weighted := weightedGraph(t)

	kinds := []struct {
		name string
		g    *graph.Graph
		spec walk.Spec
	}{
		{"unbiased", plain, walk.Spec{Kind: walk.Unbiased, Length: 6}},
		{"biased", weighted, walk.Spec{Kind: walk.Biased, Length: 6}},
		{"secondorder", plain, walk.Spec{Kind: walk.SecondOrder, Length: 8, P: 0.5, Q: 2}},
	}

	for _, k := range kinds {
		for _, faults := range []bool{false, true} {
			for _, boards := range []int{1, 2} {
				name := fmt.Sprintf("%s/faults=%v/boards=%d", k.name, faults, boards)
				t.Run(name, func(t *testing.T) {
					rc := goldenConfig()
					rc.Spec = k.spec
					rc.TrackVisits = true
					rc.Cfg.Boards = boards
					if faults {
						rc.Cfg.Faults = aggressiveFaults()
					}

					run := func(disable bool) *Result {
						rc := rc
						rc.Cfg.DisableBatchKernel = disable
						if boards > 1 {
							return runArray(t, k.g, rc)
						}
						return runEngine(t, k.g, rc)
					}
					batched := run(false)
					perWalk := run(true)

					bd, pd := digestResult(batched), digestResult(perWalk)
					if bd != pd {
						t.Errorf("digest diverged:\nbatched:  %s\nper-walk: %s", bd, pd)
					}
					if len(batched.Visits) != len(perWalk.Visits) {
						t.Fatalf("visit table length %d vs %d", len(batched.Visits), len(perWalk.Visits))
					}
					for v := range batched.Visits {
						if batched.Visits[v] != perWalk.Visits[v] {
							t.Fatalf("visit count diverged at vertex %d: batched %d, per-walk %d",
								v, batched.Visits[v], perWalk.Visits[v])
						}
					}
				})
			}
		}
	}
}

// TestSortedPermOrders pins sortedPerm's contract across both code paths
// (the small-batch insertion sort and the sort.Sort fallback): the result
// is a permutation of the batch indices in nondecreasing locality order.
func TestSortedPermOrders(t *testing.T) {
	g := testGraph(t)
	rc := goldenConfig()
	rc.Spec = walk.Spec{Kind: walk.SecondOrder, Length: 8, P: 0.5, Q: 2}
	e, err := NewEngine(g, rc)
	if err != nil {
		t.Fatal(err)
	}
	nv := graph.VertexID(g.NumVertices())
	for _, n := range []int{0, 1, 2, insertionSortMax, insertionSortMax + 1, 300} {
		for _, byPrev := range []bool{false, true} {
			walks := make([]wstate, n)
			for i := range walks {
				walks[i].w.Cur = graph.VertexID(i*2654435761) % nv
				walks[i].prev = graph.VertexID(i*40503+7) % nv
			}
			perm := e.sortedPerm(walks, byPrev)
			if len(perm) != n {
				t.Fatalf("n=%d byPrev=%v: perm length %d", n, byPrev, len(perm))
			}
			seen := make([]bool, n)
			for _, p := range perm {
				if seen[p] {
					t.Fatalf("n=%d byPrev=%v: index %d appears twice", n, byPrev, p)
				}
				seen[p] = true
			}
			for i := 1; i < n; i++ {
				a, b := &walks[perm[i-1]], &walks[perm[i]]
				if walkLess(b, a, byPrev) {
					t.Fatalf("n=%d byPrev=%v: out of order at %d: (%d,%d) after (%d,%d)",
						n, byPrev, i, b.prev, b.w.Cur, a.prev, a.w.Cur)
				}
			}
		}
	}
}
