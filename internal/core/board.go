package core

import (
	"flashwalker/internal/sim"
	"flashwalker/internal/walk"
)

// boardAccel is the board-level accelerator (§III-D): it resolves roving
// walks through the subgraph mapping table (with walk query caches), runs
// dense-vertex pre-walking, updates walks in its hot subgraphs (the shared
// tierCommon pipeline), manages the partition walk buffer / foreigner /
// completed buffers, and hosts the subgraph scheduler (implemented in
// Engine.insertPWB / chipAccel.scheduleSlot). The classification itself
// lives in route.go.
type boardAccel struct {
	tierCommon

	// ports are the mapping table's banks; binary-search accesses
	// serialize per bank, modelling the contention the query cache
	// relieves (§III-D).
	ports   []*sim.Queue
	portRR  int
	caches  []*queryCache
	cacheRR int

	completedBytes int64
}

// Guide runs a walk through the board-level walk guider: classify first
// (route.go), then charge the guider ops and any mapping-table port time,
// then apply the decision (evBoardGuided / evBoardPortDone continuations).
func (b *boardAccel) Guide(st wstate) {
	d := b.classify(st)
	e := b.e
	ref, n := e.newNode()
	n.st = d.st
	n.block, n.foreign, n.steps = int32(d.blockID), int32(d.foreignPart), int32(d.searchSteps)
	b.dispatchGuideEvent(d.ops, sim.Event{Target: e, Kind: evBoardGuided, A: ref})
}

// route applies a classification.
func (b *boardAccel) route(d routeDecision) {
	e := b.e
	if d.foreignPart >= 0 {
		e.demoteWalk(d.foreignPart, d.st)
		return
	}
	if d.blockID < 0 {
		e.fail(errUnroutable)
		return
	}
	// Board-level hot subgraph: update in place (§III-D).
	if e.cfg.Opts.HotSubgraphs && b.hotReady && d.st.denseBlock < 0 &&
		b.hot.contains(d.blockID) && b.tryHotUpdate(d.st) {
		return
	}
	// Degraded destination chip: try the channel-level failover copy first
	// (degrade.go); a miss falls through — the chip still works, just slow.
	if e.rerouteDegraded(d.blockID, d.st) {
		return
	}
	e.insertPWB(d.blockID, d.st)
}

// completed accumulates a finished walk in the board's completed-walk
// buffer, flushing to flash when full.
func (b *boardAccel) completed() {
	e := b.e
	b.completedBytes += walk.StateBytes
	if b.completedBytes >= e.cfg.CompletedBufBytes {
		pages := int((b.completedBytes + e.ssd.Cfg.PageBytes - 1) / e.ssd.Cfg.PageBytes)
		e.ssd.ProgramPagesFromBoard(e.flushChip(), pages, nil)
		b.completedBytes = 0
		e.res.CompletedFlushes++
	}
}

var errUnroutable = &unroutableError{}

type unroutableError struct{}

func (*unroutableError) Error() string {
	return "core: walk had no destination block in the current partition"
}
