package core

import (
	fl "flashwalker/internal/flash"
	"flashwalker/internal/trace"
)

// channelAccel is a channel-level accelerator (§III-C): it fetches roving
// walks from its chips at a fixed interval, updates walks landing in its
// hot subgraphs (the shared tierCommon pipeline), performs the approximate
// walk search for the rest, and forwards them to the board.
type channelAccel struct {
	tierCommon
	id      int
	channel *fl.Channel
}

// scheduleTick arms the periodic roving-walk fetch.
func (ca *channelAccel) scheduleTick() {
	if ca.e.finished {
		return
	}
	ca.e.eng.After(ca.e.cfg.RovingFetchInterval, func() {
		ca.tick()
		ca.scheduleTick()
	})
}

// tick collects roving walks from every chip on the channel; each chip's
// batch crosses the channel bus as one transfer.
func (ca *channelAccel) tick() {
	e := ca.e
	first := ca.id * e.ssd.Cfg.ChipsPerChannel
	for k := 0; k < e.ssd.Cfg.ChipsPerChannel; k++ {
		chip := e.chips[first+k]
		walks, bytes := chip.takeRoving()
		if len(walks) == 0 {
			continue
		}
		e.res.RovingTransfers++
		e.res.RovingWalks += uint64(len(walks))
		e.emit(trace.RovingBatch, int64(chip.id), int64(len(walks)))
		batch := walks
		e.ssd.TransferChannel(ca.channel, bytes, func() {
			for i := range batch {
				ca.Guide(batch[i])
			}
		})
	}
}

// Guide classifies a roving walk at the channel level: hot-subgraph
// membership first, then the approximate walk search (range query), which
// can detect foreigners without board involvement.
func (ca *channelAccel) Guide(st wstate) {
	e := ca.e
	ops := 1
	var hotBlock = -1
	if e.cfg.Opts.HotSubgraphs && ca.hotReady && st.denseBlock < 0 {
		b, steps := ca.hot.find(st.w.Cur)
		ops += steps
		hotBlock = b
	}
	var rangeID = -1
	var foreignPart = -1
	if hotBlock < 0 && e.cfg.Opts.WalkQuery && st.denseBlock < 0 {
		ri, steps := e.part.RangeOf(st.w.Cur)
		ops += steps
		rangeID = ri
		e.res.RangeQueries++
		if ri >= 0 {
			r := e.part.Ranges[ri]
			pf := e.part.PartitionOf(r.FirstBlock)
			pl := e.part.PartitionOf(r.LastBlock)
			if pf == pl && pf != e.curPart {
				// The whole range lies outside the current partition: the
				// walk is a foreigner, detected without board involvement.
				foreignPart = pf
			}
		}
	}
	ca.dispatchGuide(ops, func() {
		if hotBlock >= 0 && ca.tryHotUpdate(st) {
			return
		}
		if foreignPart >= 0 {
			e.demoteWalk(foreignPart, st)
			return
		}
		st.rangeTag = rangeID
		e.board.Guide(st)
	})
}
