package core

import (
	fl "flashwalker/internal/flash"
	"flashwalker/internal/sim"
	"flashwalker/internal/trace"
)

// channelAccel is a channel-level accelerator (§III-C): it fetches roving
// walks from its chips at a fixed interval, updates walks landing in its
// hot subgraphs (the shared tierCommon pipeline), performs the approximate
// walk search for the rest, and forwards them to the board.
type channelAccel struct {
	tierCommon
	id      int
	channel *fl.Channel
	// failover marks that a degraded chip's hot subgraphs were merged into
	// this channel's hot set (degrade.go); it keeps the hot path live even
	// when Opts.HotSubgraphs is off.
	failover bool
}

// scheduleTick arms the periodic roving-walk fetch.
func (ca *channelAccel) scheduleTick() {
	if ca.e.finished {
		return
	}
	ca.e.eng.ScheduleAfter(ca.e.cfg.RovingFetchInterval,
		sim.Event{Target: ca.e, Kind: evChanTick, B: int32(ca.id)})
}

// tick collects roving walks from every chip on the channel; each chip's
// batch crosses the channel bus as one transfer (parked in a pooled batch
// record until the evChanBatch completion).
func (ca *channelAccel) tick() {
	e := ca.e
	first := ca.id * e.ssd.Cfg.ChipsPerChannel
	for k := 0; k < e.ssd.Cfg.ChipsPerChannel; k++ {
		chip := e.chips[first+k]
		walks, bytes := chip.takeRoving()
		if len(walks) == 0 {
			continue
		}
		e.res.RovingTransfers++
		e.res.RovingWalks += uint64(len(walks))
		e.emit(trace.RovingBatch, int64(chip.id), int64(len(walks)))
		bref := e.newBatch(walks)
		e.ssd.TransferChannelE(ca.channel, bytes,
			sim.Event{Target: e, Kind: evChanBatch, A: bref, B: int32(ca.id)})
	}
}

// chanGuide is one walk's channel-level classification: the guider op count
// plus the hot-block/foreign-partition/range verdicts that evChanGuided
// will apply.
type chanGuide struct {
	ops     int
	hot     int32
	foreign int32
	rangeID int32
}

// classify computes a roving walk's channel-level verdict: hot-subgraph
// membership first, then the approximate walk search (range query), which
// can detect foreigners without board involvement. It is pure apart from
// the RangeQueries counter (an order-independent sum), which is what lets
// guideBatch reorder the classification pass.
func (ca *channelAccel) classify(st *wstate) chanGuide {
	e := ca.e
	ops := 1
	var hotBlock = -1
	if (e.cfg.Opts.HotSubgraphs || ca.failover) && ca.hotReady && ca.hot != nil && st.denseBlock < 0 {
		b, steps := ca.hot.find(st.w.Cur)
		ops += steps
		hotBlock = b
	}
	var rangeID = -1
	var foreignPart = -1
	if hotBlock < 0 && e.cfg.Opts.WalkQuery && st.denseBlock < 0 {
		ri, steps := e.part.RangeOf(st.w.Cur)
		ops += steps
		rangeID = ri
		e.res.RangeQueries++
		if ri >= 0 {
			r := e.part.Ranges[ri]
			pf := e.part.PartitionOf(r.FirstBlock)
			pl := e.part.PartitionOf(r.LastBlock)
			if pf == pl && pf != e.curPart {
				// The whole range lies outside the current partition: the
				// walk is a foreigner, detected without board involvement.
				foreignPart = pf
			}
		}
	}
	return chanGuide{ops: ops, hot: int32(hotBlock), foreign: int32(foreignPart), rangeID: int32(rangeID)}
}

// Guide classifies a roving walk at the channel level and dispatches the
// guider completion.
func (ca *channelAccel) Guide(st wstate) {
	ca.dispatchGuided(st, ca.classify(&st))
}

// dispatchGuided books the guider service for an already classified walk.
func (ca *channelAccel) dispatchGuided(st wstate, d chanGuide) {
	e := ca.e
	ref, n := e.newNode()
	n.st = st
	n.hot, n.foreign, n.rangeID = d.hot, d.foreign, d.rangeID
	ca.dispatchGuideEvent(d.ops,
		sim.Event{Target: e, Kind: evChanGuided, A: ref, B: int32(ca.id)})
}

// guideBatch runs the batched kernel over a roving batch: classify every
// walk in one pass sorted by current vertex (hot-index and range lookups
// stream through adjacent keys), then dispatch the guider completions in
// arrival order so the timeline is bit-identical to per-walk Guide calls.
func (ca *channelAccel) guideBatch(batch []wstate) {
	e := ca.e
	n := len(batch)
	if cap(e.chanGuides) < n {
		e.chanGuides = make([]chanGuide, n)
	}
	gs := e.chanGuides[:n]
	e.chanGuides = gs
	for _, idx := range e.sortedPerm(batch, false) {
		gs[idx] = ca.classify(&batch[idx])
	}
	for i := range batch {
		ca.dispatchGuided(batch[i], gs[i])
	}
}

// applyGuide is the evChanGuided continuation.
func (ca *channelAccel) applyGuide(st wstate, hotBlock, foreignPart, rangeID int32) {
	e := ca.e
	if hotBlock >= 0 && ca.tryHotUpdate(st) {
		return
	}
	if foreignPart >= 0 {
		e.demoteWalk(int(foreignPart), st)
		return
	}
	st.rangeTag = int(rangeID)
	e.board.Guide(st)
}
