package core

import (
	fl "flashwalker/internal/flash"
	"flashwalker/internal/sim"
	"flashwalker/internal/trace"
)

// channelAccel is a channel-level accelerator (§III-C): it fetches roving
// walks from its chips at a fixed interval, updates walks landing in its
// hot subgraphs (the shared tierCommon pipeline), performs the approximate
// walk search for the rest, and forwards them to the board.
type channelAccel struct {
	tierCommon
	id      int
	channel *fl.Channel
	// failover marks that a degraded chip's hot subgraphs were merged into
	// this channel's hot set (degrade.go); it keeps the hot path live even
	// when Opts.HotSubgraphs is off.
	failover bool
}

// scheduleTick arms the periodic roving-walk fetch.
func (ca *channelAccel) scheduleTick() {
	if ca.e.finished {
		return
	}
	ca.e.eng.ScheduleAfter(ca.e.cfg.RovingFetchInterval,
		sim.Event{Target: ca.e, Kind: evChanTick, B: int32(ca.id)})
}

// tick collects roving walks from every chip on the channel; each chip's
// batch crosses the channel bus as one transfer (parked in a pooled batch
// record until the evChanBatch completion).
func (ca *channelAccel) tick() {
	e := ca.e
	first := ca.id * e.ssd.Cfg.ChipsPerChannel
	for k := 0; k < e.ssd.Cfg.ChipsPerChannel; k++ {
		chip := e.chips[first+k]
		walks, bytes := chip.takeRoving()
		if len(walks) == 0 {
			continue
		}
		e.res.RovingTransfers++
		e.res.RovingWalks += uint64(len(walks))
		e.emit(trace.RovingBatch, int64(chip.id), int64(len(walks)))
		bref := e.newBatch(walks)
		e.ssd.TransferChannelE(ca.channel, bytes,
			sim.Event{Target: e, Kind: evChanBatch, A: bref, B: int32(ca.id)})
	}
}

// Guide classifies a roving walk at the channel level: hot-subgraph
// membership first, then the approximate walk search (range query), which
// can detect foreigners without board involvement.
func (ca *channelAccel) Guide(st wstate) {
	e := ca.e
	ops := 1
	var hotBlock = -1
	if (e.cfg.Opts.HotSubgraphs || ca.failover) && ca.hotReady && ca.hot != nil && st.denseBlock < 0 {
		b, steps := ca.hot.find(st.w.Cur)
		ops += steps
		hotBlock = b
	}
	var rangeID = -1
	var foreignPart = -1
	if hotBlock < 0 && e.cfg.Opts.WalkQuery && st.denseBlock < 0 {
		ri, steps := e.part.RangeOf(st.w.Cur)
		ops += steps
		rangeID = ri
		e.res.RangeQueries++
		if ri >= 0 {
			r := e.part.Ranges[ri]
			pf := e.part.PartitionOf(r.FirstBlock)
			pl := e.part.PartitionOf(r.LastBlock)
			if pf == pl && pf != e.curPart {
				// The whole range lies outside the current partition: the
				// walk is a foreigner, detected without board involvement.
				foreignPart = pf
			}
		}
	}
	ref, n := e.newNode()
	n.st = st
	n.hot, n.foreign, n.rangeID = int32(hotBlock), int32(foreignPart), int32(rangeID)
	ca.dispatchGuideEvent(ops,
		sim.Event{Target: e, Kind: evChanGuided, A: ref, B: int32(ca.id)})
}

// applyGuide is the evChanGuided continuation.
func (ca *channelAccel) applyGuide(st wstate, hotBlock, foreignPart, rangeID int32) {
	e := ca.e
	if hotBlock >= 0 && ca.tryHotUpdate(st) {
		return
	}
	if foreignPart >= 0 {
		e.demoteWalk(int(foreignPart), st)
		return
	}
	st.rangeTag = int(rangeID)
	e.board.Guide(st)
}
