package core

import (
	"sort"

	fl "flashwalker/internal/flash"
	"flashwalker/internal/graph"
	"flashwalker/internal/partition"
	"flashwalker/internal/rng"
	"flashwalker/internal/sim"
	"flashwalker/internal/trace"
)

// simTime converts an int operation count to a sim.Time multiplier.
func simTime(n int) sim.Time { return sim.Time(n) }

// hotEntry is one resident hot subgraph, kept sorted by LowVertex so the
// guider's membership test is a binary search.
type hotEntry struct {
	low, high graph.VertexID
	block     int
}

// hotIndex is a sorted hot-subgraph membership structure shared by the
// channel- and board-level accelerators.
type hotIndex struct {
	entries []hotEntry
	set     map[int]bool
}

func newHotIndex(part *partition.Partitioned, ids []int) *hotIndex {
	h := &hotIndex{set: map[int]bool{}}
	for _, id := range ids {
		b := &part.Blocks[id]
		h.entries = append(h.entries, hotEntry{low: b.LowVertex, high: b.HighVertex, block: id})
		h.set[id] = true
	}
	sort.Slice(h.entries, func(i, j int) bool { return h.entries[i].low < h.entries[j].low })
	return h
}

// find binary-searches for the hot block containing v; steps is the number
// of comparisons (guider operations).
func (h *hotIndex) find(v graph.VertexID) (block, steps int) {
	lo, hi := 0, len(h.entries)-1
	for lo <= hi {
		steps++
		mid := (lo + hi) / 2
		e := h.entries[mid]
		switch {
		case v < e.low:
			hi = mid - 1
		case v > e.high:
			lo = mid + 1
		default:
			return e.block, steps
		}
	}
	if steps == 0 {
		steps = 1
	}
	return -1, steps
}

func (h *hotIndex) contains(block int) bool { return h != nil && h.set[block] }

func (h *hotIndex) ids() []int {
	if h == nil {
		return nil
	}
	out := make([]int, 0, len(h.entries))
	for _, e := range h.entries {
		out = append(out, e.block)
	}
	return out
}

// channelAccel is a channel-level accelerator (§III-C): it fetches roving
// walks from its chips at a fixed interval, updates walks landing in its
// hot subgraphs, performs the approximate walk search for the rest, and
// forwards them to the board.
type channelAccel struct {
	e       *Engine
	id      int
	channel *fl.Channel
	updater *unitPool
	guider  *unitPool

	hot      *hotIndex
	hotReady bool

	queueBytes int64 // walks buffered for hot-subgraph updating

	rng *rng.RNG
}

func (ca *channelAccel) setHotBlocks(ids []int) {
	ca.hot = newHotIndex(ca.e.part, ids)
}

func (ca *channelAccel) hotList() []int { return ca.hot.ids() }

// scheduleTick arms the periodic roving-walk fetch.
func (ca *channelAccel) scheduleTick() {
	if ca.e.finished {
		return
	}
	ca.e.eng.After(ca.e.cfg.RovingFetchInterval, func() {
		ca.tick()
		ca.scheduleTick()
	})
}

// tick collects roving walks from every chip on the channel; each chip's
// batch crosses the channel bus as one transfer.
func (ca *channelAccel) tick() {
	e := ca.e
	first := ca.id * e.ssd.Cfg.ChipsPerChannel
	for k := 0; k < e.ssd.Cfg.ChipsPerChannel; k++ {
		chip := e.chips[first+k]
		walks, bytes := chip.takeRoving()
		if len(walks) == 0 {
			continue
		}
		e.res.RovingTransfers++
		e.res.RovingWalks += uint64(len(walks))
		e.emit(trace.RovingBatch, int64(chip.id), int64(len(walks)))
		batch := walks
		e.ssd.TransferChannel(ca.channel, bytes, func() {
			for i := range batch {
				ca.guide(batch[i])
			}
		})
	}
}

// guide classifies a roving walk at the channel level.
func (ca *channelAccel) guide(st wstate) {
	e := ca.e
	ops := 1
	var hotBlock = -1
	if e.cfg.Opts.HotSubgraphs && ca.hotReady && st.denseBlock < 0 {
		b, steps := ca.hot.find(st.w.Cur)
		ops += steps
		hotBlock = b
	}
	var rangeID = -1
	var foreignPart = -1
	if hotBlock < 0 && e.cfg.Opts.WalkQuery && st.denseBlock < 0 {
		ri, steps := e.part.RangeOf(st.w.Cur)
		ops += steps
		rangeID = ri
		e.res.RangeQueries++
		if ri >= 0 {
			r := e.part.Ranges[ri]
			pf := e.part.PartitionOf(r.FirstBlock)
			pl := e.part.PartitionOf(r.LastBlock)
			if pf == pl && pf != e.curPart {
				// The whole range lies outside the current partition: the
				// walk is a foreigner, detected without board involvement.
				foreignPart = pf
			}
		}
	}
	ca.guider.dispatch(simTime(ops)*e.cfg.ChannelGuiderCycle, func() {
		switch {
		case hotBlock >= 0 && ca.queueBytes+st.sizeBytes() <= e.cfg.ChannelWalkQueueBytes:
			ca.queueBytes += st.sizeBytes()
			ca.enqueueUpdate(st)
		case foreignPart >= 0:
			e.demoteWalk(foreignPart, st)
		default:
			st.rangeTag = rangeID
			e.board.guide(st)
		}
	})
}

// enqueueUpdate runs a walk through the channel-level updater.
func (ca *channelAccel) enqueueUpdate(st wstate) {
	e := ca.e
	size := st.sizeBytes()
	h := e.decideHop(ca.rng, st)
	e.chargeFilterProbes(h, nil)
	ca.updater.dispatch(e.updateService(e.cfg.ChannelUpdaterCycle, h), func() {
		ca.queueBytes -= size
		e.res.HotHitsChannel++
		if !h.deadEnd {
			e.res.Hops++
		}
		if h.terminal {
			e.board.completed()
			e.finishWalk(!h.deadEnd)
			return
		}
		ca.guide(h.next)
	})
}
