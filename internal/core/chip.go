package core

import (
	"flashwalker/internal/trace"
	"flashwalker/internal/walk"

	fl "flashwalker/internal/flash"
)

// chipSlot is one subgraph buffer entry of a chip-level accelerator plus
// its associated walk queue (§III-B).
type chipSlot struct {
	block   int  // resident block ID, -1 when the buffer entry is empty
	loading bool // a load command is in flight
	idle    bool // no walks owned and nothing scheduled; block stays resident
	defers  int  // consecutive load postponements to let walks accumulate
	pending int  // walks owned by the slot (queued + in update)
}

// maxLoadDefers bounds consecutive deferrals so progress is guaranteed.
// One deferral captures most of the batching benefit; longer waits stall
// the chip pipeline more than they save in page reads.
const maxLoadDefers = 1

// chipAccel is a chip-level accelerator: it loads subgraphs from its own
// chip's flash planes, updates the walks landing in them, classifies
// updated walks (stay local vs. roving), and buffers roving walks until
// the channel-level accelerator fetches them. Unlike the channel and board
// tiers its residency is slot-driven, not hot-index-driven: the embedded
// tierCommon's hot index stays empty and HotBlocks reports nil.
type chipAccel struct {
	tierCommon
	id    int
	chip  *fl.Chip
	slots []*chipSlot

	roving      []wstate
	rovingBytes int64

	completedBytes int64

	// myBlocks caches this chip's block IDs in the current partition.
	myBlocks []int
}

// refreshBlocks recomputes the candidate blocks for the current partition
// and resets slot residency (the previous partition's subgraphs are stale).
func (c *chipAccel) refreshBlocks() {
	c.myBlocks = c.myBlocks[:0]
	for _, b := range c.e.place.BlocksOnChip(c.id) {
		if c.e.inCurrentPartition(b) {
			c.myBlocks = append(c.myBlocks, b)
		}
	}
	for _, s := range c.slots {
		s.block = -1
		s.loading = false
		s.idle = true
	}
}

// trySchedule fills every idle slot that can get work. Slots whose
// resident block has walks are preferred (no page re-read), then the rest
// pick by score.
func (c *chipAccel) trySchedule() {
	for _, s := range c.slots {
		if s.idle && !s.loading && s.block >= 0 &&
			len(c.e.pwb[s.block])+len(c.e.fls[s.block]) > 0 {
			c.loadBlock(s, s.block)
		}
	}
	for _, s := range c.slots {
		if s.idle && !s.loading {
			c.scheduleSlot(s)
		}
	}
}

// blockLoaded reports whether blockID is resident (or loading) in any slot.
func (c *chipAccel) blockLoaded(blockID int) *chipSlot {
	for _, s := range c.slots {
		if s.block == blockID {
			return s
		}
	}
	return nil
}

// scheduleSlot asks the board scheduler for this slot's next subgraph and
// starts loading it. The board picks the highest-score candidate among the
// chip's blocks in the current partition (per-chip top-N list, §III-D).
func (c *chipAccel) scheduleSlot(s *chipSlot) {
	if c.e.finished {
		return
	}
	best, bestScore := -1, 0.0
	scanned := 0
	for _, b := range c.myBlocks {
		if len(c.e.pwb[b])+len(c.e.fls[b]) == 0 {
			continue
		}
		if other := c.blockLoaded(b); other != nil && other != s {
			continue
		}
		scanned++
		sc := c.e.score[b]
		if sc <= 0 {
			// Cached score may be stale (batched updates); fall back to
			// the live walk count so a block never starves.
			sc = float64(len(c.e.pwb[b]) + len(c.e.fls[b]))
		}
		if best == -1 || sc > bestScore {
			best, bestScore = b, sc
		}
		if scanned >= c.e.cfg.TopN && best != -1 {
			// The hardware only maintains a top-N list per chip; bounding
			// the scan models that.
			break
		}
	}
	if best == -1 {
		// No work: the slot keeps its subgraph resident (SRAM is not
		// wiped), so a later walk for the same block skips the page reads.
		s.idle = true
		s.defers = 0
		return
	}
	resident := best == s.block
	if c.e.cfg.MinWalksToLoad > 1 && !resident && s.defers < maxLoadDefers &&
		len(c.e.pwb[best])+len(c.e.fls[best]) < c.e.cfg.MinWalksToLoad {
		// Batch the load: give trickling walks time to accumulate before
		// paying the page reads. The slot is not idle while deferred
		// (only the timer re-triggers it); the deferral count bounds the
		// wait so progress is guaranteed.
		s.defers++
		s.idle = false
		c.e.eng.After(c.e.cfg.LoadIdleDelay, func() {
			if s.defers > 0 && !s.loading && s.pending == 0 {
				c.scheduleSlot(s)
			}
		})
		return
	}
	s.defers = 0
	c.loadBlock(s, best)
}

// loadBlock issues the load command and fetches the subgraph plus its
// walks (§III-B step 1).
func (c *chipAccel) loadBlock(s *chipSlot, blockID int) {
	e := c.e
	resident := s.block == blockID
	s.block = blockID
	s.loading = true
	s.idle = false
	e.res.SubgraphLoads++
	if resident {
		e.res.SubgraphReloads++
	}

	// Claim walks now so concurrent scheduling doesn't double-take.
	take := e.slotCapWalks
	fromPWB := e.pwb[blockID]
	if len(fromPWB) > take {
		fromPWB = fromPWB[:take]
	}
	e.pwb[blockID] = e.pwb[blockID][len(fromPWB):]
	var pwbBytes int64
	for i := range fromPWB {
		pwbBytes += fromPWB[i].sizeBytes()
	}
	e.pwbBytes[blockID] -= pwbBytes
	if e.pwbBytes[blockID] < 0 {
		e.pwbBytes[blockID] = 0
	}
	take -= len(fromPWB)

	fromFlash := e.fls[blockID]
	if len(fromFlash) > take {
		fromFlash = fromFlash[:take]
	}
	e.fls[blockID] = e.fls[blockID][len(fromFlash):]
	flashPages := 0
	if len(fromFlash) > 0 {
		if len(e.fls[blockID]) == 0 {
			flashPages = e.flsPages[blockID]
			e.flsPages[blockID] = 0
		} else {
			flashPages = (len(fromFlash) + e.walksPerPage - 1) / e.walksPerPage
			e.flsPages[blockID] -= flashPages
			if e.flsPages[blockID] < 0 {
				e.flsPages[blockID] = 0
			}
		}
	}
	e.refreshScore(blockID)

	walks := append(fromFlash, fromPWB...)
	e.emit(trace.SubgraphLoad, int64(blockID), int64(len(walks)))

	// Three concurrent activities gate activation: the subgraph page
	// reads, the walk delivery from the partition walk buffer (DRAM read +
	// channel-bus transfer), and the local read of flushed walks.
	parts := 1 // command
	if !resident {
		parts++
	}
	if len(fromPWB) > 0 {
		parts++
	}
	if flashPages > 0 {
		parts++
	}
	left := parts
	oneDone := func() {
		left--
		if left > 0 {
			return
		}
		s.loading = false
		if len(walks) == 0 {
			// Raced: walks were claimed but another path drained them (not
			// expected, but keep the slot live).
			c.slotDrained(s)
			return
		}
		for i := range walks {
			c.enqueue(s, walks[i])
		}
	}

	// Load command crosses the channel bus (extended ONFI command, §III-C).
	e.ssd.TransferChannel(c.chip.Channel, e.cfg.CommandBytes, oneDone)
	if !resident {
		pages := e.part.Pages(&e.part.Blocks[blockID], e.ssd.Cfg.PageBytes)
		e.ssd.ReadPagesLocal(c.chip, pages, oneDone)
	}
	if len(fromPWB) > 0 {
		e.dr.Read(pwbBytes, nil)
		e.ssd.TransferChannel(c.chip.Channel, pwbBytes, oneDone)
	}
	if flashPages > 0 {
		e.ssd.ReadPagesLocal(c.chip, flashPages, oneDone)
	}
}

// EnqueueUpdate runs a walk through this chip's updater: into the slot
// holding its subgraph, or — when no slot has it resident — the roving
// buffer so a higher tier takes over. Overrides the tierCommon pipeline
// because chip updates are slot-owned.
func (c *chipAccel) EnqueueUpdate(st wstate) {
	if s := c.matchSlot(st); s != nil {
		c.enqueue(s, st)
		return
	}
	c.addRoving(st)
}

// enqueue hands a walk to the slot's queue; the updater serves it FIFO.
func (c *chipAccel) enqueue(s *chipSlot, st wstate) {
	s.pending++
	s.idle = false
	h := c.e.decideHop(c.rng, st)
	c.e.chargeFilterProbes(h, c)
	c.updater.dispatch(c.e.updateService(c.updaterCycle, h), func() {
		c.finishUpdate(s, h)
	})
}

// finishUpdate applies a hop's outcome (§III-B steps 2-7).
func (c *chipAccel) finishUpdate(s *chipSlot, h hopOutcome) {
	e := c.e
	s.pending--
	e.res.ChipUpdates++
	if !h.deadEnd {
		e.res.Hops++
	}
	if h.terminal {
		c.completedBytes += walk.StateBytes
		if c.completedBytes >= e.cfg.ChipCompletedBufBytes {
			pages := int((c.completedBytes + e.ssd.Cfg.PageBytes - 1) / e.ssd.Cfg.PageBytes)
			e.ssd.ProgramPagesLocal(c.chip, pages, nil)
			c.completedBytes = 0
			e.res.CompletedFlushes++
		}
		e.finishWalk(!h.deadEnd)
		c.checkDrained(s)
		return
	}
	c.Guide(h.next)
	c.checkDrained(s)
}

// checkDrained notifies the scheduler when a slot's walk queue empties
// (§III-D: "When a walk queue for a loaded subgraph becomes empty ... the
// subgraph scheduler ... is informed").
func (c *chipAccel) checkDrained(s *chipSlot) {
	if s.pending == 0 && !s.loading {
		c.slotDrained(s)
	}
}

func (c *chipAccel) slotDrained(s *chipSlot) {
	c.scheduleSlot(s)
}

// Guide classifies an updated walk: back into a loaded subgraph's queue, or
// into the roving buffer for the channel-level accelerator (§III-B).
func (c *chipAccel) Guide(st wstate) {
	// One compare per loaded subgraph plus the move.
	c.dispatchGuide(1+len(c.slots), func() {
		c.route(st)
	})
}

func (c *chipAccel) route(st wstate) {
	if target := c.matchSlot(st); target != nil {
		c.enqueue(target, st)
		return
	}
	c.addRoving(st)
}

// addRoving buffers a walk for the channel-level accelerator's next fetch,
// stalling the guider when the roving buffer is full.
func (c *chipAccel) addRoving(st wstate) {
	e := c.e
	if c.rovingBytes+st.sizeBytes() > e.cfg.ChipRovingBufBytes {
		// Roving buffer full: the guider stalls until the channel-level
		// accelerator's next fetch drains it.
		e.res.GuiderStalls++
		c.guider.dispatch(e.cfg.RovingFetchInterval, func() {
			c.route(st)
		})
		return
	}
	c.rovingBytes += st.sizeBytes()
	c.roving = append(c.roving, st)
}

// matchSlot finds a loaded slot whose subgraph contains the walk.
func (c *chipAccel) matchSlot(st wstate) *chipSlot {
	for _, s := range c.slots {
		if s.block < 0 || s.loading {
			continue
		}
		b := &c.e.part.Blocks[s.block]
		if b.Dense {
			if st.denseBlock == s.block {
				return s
			}
			continue
		}
		if st.denseBlock < 0 && st.w.Cur >= b.LowVertex && st.w.Cur <= b.HighVertex {
			return s
		}
	}
	return nil
}

// takeRoving hands the roving buffer's contents to the channel fetcher.
func (c *chipAccel) takeRoving() ([]wstate, int64) {
	w, b := c.roving, c.rovingBytes
	c.roving = nil
	c.rovingBytes = 0
	return w, b
}
