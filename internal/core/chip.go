package core

import (
	"math/bits"

	"flashwalker/internal/sim"
	"flashwalker/internal/trace"
	"flashwalker/internal/walk"

	fl "flashwalker/internal/flash"
)

// chipSlot is one subgraph buffer entry of a chip-level accelerator plus
// its associated walk queue (§III-B).
type chipSlot struct {
	idx     int  // position in the chip's slot array (event payload)
	block   int  // resident block ID, -1 when the buffer entry is empty
	loading bool // a load command is in flight
	idle    bool // no walks owned and nothing scheduled; block stays resident
	defers  int  // consecutive load postponements to let walks accumulate
	pending int  // walks owned by the slot (queued + in update)

	// In-flight load state: gating parts left and the claimed walks.
	loadLeft  int
	loadWalks []wstate
}

// maxLoadDefers bounds consecutive deferrals so progress is guaranteed.
// One deferral captures most of the batching benefit; longer waits stall
// the chip pipeline more than they save in page reads.
const maxLoadDefers = 1

// chipAccel is a chip-level accelerator: it loads subgraphs from its own
// chip's flash planes, updates the walks landing in them, classifies
// updated walks (stay local vs. roving), and buffers roving walks until
// the channel-level accelerator fetches them. Unlike the channel and board
// tiers its residency is slot-driven, not hot-index-driven: the embedded
// tierCommon's hot index stays empty and HotBlocks reports nil.
type chipAccel struct {
	tierCommon
	id    int
	chip  *fl.Chip
	slots []*chipSlot

	roving      []wstate
	rovingBytes int64

	completedBytes int64

	// myBlocks caches this chip's block IDs in the current partition;
	// workBits marks the myBlocks positions whose stores (pwb + fls)
	// currently hold walks. The bitmap is the scheduler's top-N work index:
	// insertions and claims maintain it in O(1), so scheduleSlot scans only
	// blocks that actually have work instead of every candidate.
	myBlocks []int
	workBits []uint64
}

// refreshBlocks recomputes the candidate blocks for the current partition
// and resets slot residency (the previous partition's subgraphs are stale).
func (c *chipAccel) refreshBlocks() {
	e := c.e
	for _, b := range c.myBlocks {
		e.blockPos[b] = -1
	}
	c.myBlocks = c.myBlocks[:0]
	for _, b := range e.place.BlocksOnChip(c.id) {
		if e.inCurrentPartition(b) {
			e.blockPos[b] = int32(len(c.myBlocks))
			c.myBlocks = append(c.myBlocks, b)
		}
	}
	words := (len(c.myBlocks) + 63) / 64
	if cap(c.workBits) < words {
		c.workBits = make([]uint64, words)
	}
	c.workBits = c.workBits[:words]
	for i := range c.workBits {
		c.workBits[i] = 0
	}
	for pos, b := range c.myBlocks {
		if len(e.pwb[b])+len(e.fls[b]) > 0 {
			c.workBits[pos>>6] |= 1 << (uint(pos) & 63)
		}
	}
	for _, s := range c.slots {
		s.block = -1
		s.loading = false
		s.idle = true
	}
}

// noteWork re-derives block b's work-index bit from its store lengths
// (b must be one of this chip's current-partition blocks).
func (c *chipAccel) noteWork(b int) {
	pos := c.e.blockPos[b]
	if pos < 0 {
		return
	}
	bit := uint64(1) << (uint(pos) & 63)
	if len(c.e.pwb[b])+len(c.e.fls[b]) > 0 {
		c.workBits[pos>>6] |= bit
	} else {
		c.workBits[pos>>6] &^= bit
	}
}

// trySchedule fills every idle slot that can get work. Slots whose
// resident block has walks are preferred (no page re-read), then the rest
// pick by score.
func (c *chipAccel) trySchedule() {
	for _, s := range c.slots {
		if s.idle && !s.loading && s.block >= 0 &&
			len(c.e.pwb[s.block])+len(c.e.fls[s.block]) > 0 {
			c.loadBlock(s, s.block)
		}
	}
	for _, s := range c.slots {
		if s.idle && !s.loading {
			c.scheduleSlot(s)
		}
	}
}

// blockLoaded reports whether blockID is resident (or loading) in any slot.
func (c *chipAccel) blockLoaded(blockID int) *chipSlot {
	for _, s := range c.slots {
		if s.block == blockID {
			return s
		}
	}
	return nil
}

// scheduleSlot asks the board scheduler for this slot's next subgraph and
// starts loading it. The board picks the highest-score candidate among the
// chip's blocks in the current partition (per-chip top-N list, §III-D).
func (c *chipAccel) scheduleSlot(s *chipSlot) {
	if c.e.finished {
		return
	}
	// Walk the work index: set bits correspond exactly to the non-empty
	// blocks the previous full scan would have visited, in myBlocks order.
	best, bestScore := -1, 0.0
	scanned := 0
scan:
	for wi, word := range c.workBits {
		for word != 0 {
			pos := wi<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			b := c.myBlocks[pos]
			if other := c.blockLoaded(b); other != nil && other != s {
				continue
			}
			scanned++
			sc := c.e.score[b]
			if sc <= 0 {
				// Cached score may be stale (batched updates); fall back to
				// the live walk count so a block never starves.
				sc = float64(len(c.e.pwb[b]) + len(c.e.fls[b]))
			}
			if best == -1 || sc > bestScore {
				best, bestScore = b, sc
			}
			if scanned >= c.e.cfg.TopN && best != -1 {
				// The hardware only maintains a top-N list per chip; bounding
				// the scan models that.
				break scan
			}
		}
	}
	if best == -1 {
		// No work: the slot keeps its subgraph resident (SRAM is not
		// wiped), so a later walk for the same block skips the page reads.
		s.idle = true
		s.defers = 0
		return
	}
	resident := best == s.block
	if c.e.cfg.MinWalksToLoad > 1 && !resident && s.defers < maxLoadDefers &&
		len(c.e.pwb[best])+len(c.e.fls[best]) < c.e.cfg.MinWalksToLoad {
		// Batch the load: give trickling walks time to accumulate before
		// paying the page reads. The slot is not idle while deferred
		// (only the timer re-triggers it); the deferral count bounds the
		// wait so progress is guaranteed.
		s.defers++
		s.idle = false
		c.e.eng.ScheduleAfter(c.e.cfg.LoadIdleDelay,
			sim.Event{Target: c.e, Kind: evSlotRetry, B: int32(c.id), C: int64(s.idx)})
		return
	}
	s.defers = 0
	c.loadBlock(s, best)
}

// loadBlock issues the load command and fetches the subgraph plus its
// walks (§III-B step 1).
func (c *chipAccel) loadBlock(s *chipSlot, blockID int) {
	e := c.e
	resident := s.block == blockID
	s.block = blockID
	s.loading = true
	s.idle = false
	e.res.SubgraphLoads++
	if resident {
		e.res.SubgraphReloads++
	}

	// Claim walks now so concurrent scheduling doesn't double-take. The
	// claims copy into a pooled buffer and compact the source stores in
	// place (front-reslicing would leak capacity and — with a shared
	// backing array — let the flash/PWB claims alias each other).
	take := e.slotCapWalks
	pw := e.pwb[blockID]
	nPWB := len(pw)
	if nPWB > take {
		nPWB = take
	}
	var pwbBytes int64
	for i := 0; i < nPWB; i++ {
		pwbBytes += pw[i].sizeBytes()
	}
	e.pwbBytes[blockID] -= pwbBytes
	if e.pwbBytes[blockID] < 0 {
		e.pwbBytes[blockID] = 0
	}
	take -= nPWB

	fs := e.fls[blockID]
	nFlash := len(fs)
	if nFlash > take {
		nFlash = take
	}
	flashPages := 0
	if nFlash > 0 {
		if nFlash == len(fs) {
			flashPages = e.flsPages[blockID]
			e.flsPages[blockID] = 0
		} else {
			flashPages = (nFlash + e.walksPerPage - 1) / e.walksPerPage
			e.flsPages[blockID] -= flashPages
			if e.flsPages[blockID] < 0 {
				e.flsPages[blockID] = 0
			}
		}
	}

	walks := e.getWalkBuf()
	walks = append(walks, fs[:nFlash]...)
	walks = append(walks, pw[:nPWB]...)
	e.pwb[blockID] = compactFront(pw, nPWB)
	e.fls[blockID] = compactFront(fs, nFlash)
	c.noteWork(blockID)
	e.refreshScore(blockID)
	e.emit(trace.SubgraphLoad, int64(blockID), int64(len(walks)))

	// Three concurrent activities gate activation: the subgraph page
	// reads, the walk delivery from the partition walk buffer (DRAM read +
	// channel-bus transfer), and the local read of flushed walks.
	parts := 1 // command
	if !resident {
		parts++
	}
	if nPWB > 0 {
		parts++
	}
	if flashPages > 0 {
		parts++
	}
	s.loadLeft = parts
	s.loadWalks = walks
	partDone := sim.Event{Target: e, Kind: evLoadPart, B: int32(c.id), C: int64(s.idx)}

	// Load command crosses the channel bus (extended ONFI command, §III-C).
	e.ssd.TransferChannelE(c.chip.Channel, e.cfg.CommandBytes, partDone)
	if !resident {
		pages := e.part.Pages(&e.part.Blocks[blockID], e.ssd.Cfg.PageBytes)
		e.ssd.ReadPagesLocalE(c.chip, pages, partDone)
	}
	if nPWB > 0 {
		e.dr.Read(pwbBytes, nil)
		e.ssd.TransferChannelE(c.chip.Channel, pwbBytes, partDone)
	}
	if flashPages > 0 {
		e.ssd.ReadPagesLocalE(c.chip, flashPages, partDone)
	}
}

// compactFront removes the first n elements of s in place, keeping the
// backing capacity for reuse.
func compactFront(s []wstate, n int) []wstate {
	if n == 0 {
		return s
	}
	m := copy(s, s[n:])
	return s[:m]
}

// loadPartDone retires one gating part of a slot load; the last part
// activates the subgraph and enqueues the claimed walks.
func (c *chipAccel) loadPartDone(s *chipSlot) {
	s.loadLeft--
	if s.loadLeft > 0 {
		return
	}
	s.loading = false
	walks := s.loadWalks
	s.loadWalks = nil
	if len(walks) == 0 {
		// Raced: walks were claimed but another path drained them (not
		// expected, but keep the slot live).
		c.slotDrained(s)
		c.e.putWalkBuf(walks)
		return
	}
	if len(walks) > 1 && !c.e.cfg.DisableBatchKernel {
		// Batched kernel (batch.go): decide the whole burst in one
		// locality-sorted pass, then dispatch in arrival order so the
		// timeline is bit-identical to the per-walk loop below.
		outs := c.e.decideBatch(walks)
		for i := range walks {
			c.enqueueDecided(s, outs[i])
		}
	} else {
		for i := range walks {
			c.enqueue(s, walks[i])
		}
	}
	c.e.putWalkBuf(walks)
}

// EnqueueUpdate runs a walk through this chip's updater: into the slot
// holding its subgraph, or — when no slot has it resident — the roving
// buffer so a higher tier takes over. Overrides the tierCommon pipeline
// because chip updates are slot-owned.
func (c *chipAccel) EnqueueUpdate(st wstate) {
	if s := c.matchSlot(st); s != nil {
		c.enqueue(s, st)
		return
	}
	c.addRoving(st)
}

// enqueue hands a walk to the slot's queue; the updater serves it FIFO.
func (c *chipAccel) enqueue(s *chipSlot, st wstate) {
	c.enqueueDecided(s, c.e.decideHop(st))
}

// enqueueDecided is enqueue for a hop already decided by the batch kernel:
// everything with a device-visible effect (probe charges, wnode allocation,
// the service-time dispatch) happens here, in the caller's order.
func (c *chipAccel) enqueueDecided(s *chipSlot, h hopOutcome) {
	s.pending++
	s.idle = false
	c.e.chargeFilterProbes(h, c)
	ref, n := c.e.newNode()
	n.st, n.terminal, n.deadEnd = h.next, h.terminal, h.deadEnd
	c.updater.dispatchEvent(c.e.updateService(c.updaterCycle, h),
		sim.Event{Target: c.e, Kind: evChipUpdateDone, A: ref, B: int32(c.id), C: int64(s.idx)})
}

// finishUpdate applies a hop's outcome (§III-B steps 2-7).
func (c *chipAccel) finishUpdate(s *chipSlot, st wstate, terminal, deadEnd bool) {
	e := c.e
	s.pending--
	e.res.ChipUpdates++
	if !deadEnd {
		e.res.Hops++
	}
	if terminal {
		c.completedBytes += walk.StateBytes
		if c.completedBytes >= e.cfg.ChipCompletedBufBytes {
			pages := int((c.completedBytes + e.ssd.Cfg.PageBytes - 1) / e.ssd.Cfg.PageBytes)
			e.ssd.ProgramPagesLocal(c.chip, pages, nil)
			c.completedBytes = 0
			e.res.CompletedFlushes++
		}
		e.finishWalk(&st, !deadEnd)
		c.checkDrained(s)
		return
	}
	c.Guide(st)
	c.checkDrained(s)
}

// checkDrained notifies the scheduler when a slot's walk queue empties
// (§III-D: "When a walk queue for a loaded subgraph becomes empty ... the
// subgraph scheduler ... is informed").
func (c *chipAccel) checkDrained(s *chipSlot) {
	if s.pending == 0 && !s.loading {
		c.slotDrained(s)
	}
}

func (c *chipAccel) slotDrained(s *chipSlot) {
	c.scheduleSlot(s)
}

// Guide classifies an updated walk: back into a loaded subgraph's queue, or
// into the roving buffer for the channel-level accelerator (§III-B).
func (c *chipAccel) Guide(st wstate) {
	// One compare per loaded subgraph plus the move.
	ref, n := c.e.newNode()
	n.st = st
	c.dispatchGuideEvent(1+len(c.slots),
		sim.Event{Target: c.e, Kind: evChipRoute, A: ref, B: int32(c.id)})
}

func (c *chipAccel) route(st wstate) {
	if target := c.matchSlot(st); target != nil {
		c.enqueue(target, st)
		return
	}
	c.addRoving(st)
}

// addRoving buffers a walk for the channel-level accelerator's next fetch,
// stalling the guider when the roving buffer is full.
func (c *chipAccel) addRoving(st wstate) {
	e := c.e
	if c.rovingBytes+st.sizeBytes() > e.cfg.ChipRovingBufBytes {
		// Roving buffer full: the guider stalls until the channel-level
		// accelerator's next fetch drains it.
		e.res.GuiderStalls++
		ref, n := e.newNode()
		n.st = st
		c.guider.dispatchEvent(e.cfg.RovingFetchInterval,
			sim.Event{Target: e, Kind: evChipRoute, A: ref, B: int32(c.id)})
		return
	}
	c.rovingBytes += st.sizeBytes()
	if c.roving == nil {
		c.roving = e.getWalkBuf()
	}
	c.roving = append(c.roving, st)
}

// matchSlot finds a loaded slot whose subgraph contains the walk.
func (c *chipAccel) matchSlot(st wstate) *chipSlot {
	for _, s := range c.slots {
		if s.block < 0 || s.loading {
			continue
		}
		b := &c.e.part.Blocks[s.block]
		if b.Dense {
			if st.denseBlock == s.block {
				return s
			}
			continue
		}
		if st.denseBlock < 0 && st.w.Cur >= b.LowVertex && st.w.Cur <= b.HighVertex {
			return s
		}
	}
	return nil
}

// takeRoving hands the roving buffer's contents to the channel fetcher.
func (c *chipAccel) takeRoving() ([]wstate, int64) {
	w, b := c.roving, c.rovingBytes
	c.roving = nil
	c.rovingBytes = 0
	return w, b
}
