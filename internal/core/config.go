// Package core implements FlashWalker itself: the board-level,
// channel-level and chip-level accelerators, the walk routing machinery
// (subgraph mapping table, approximate walk search, walk query caches,
// dense-vertex pre-walking), the partition walk buffer with
// overflow-to-flash, and the Eq. 1 subgraph scheduler.
//
// The engine is a discrete-event model: each accelerator's updater and
// guider pools are serializing resources with the per-operation cycle
// times of Table II, flash and DRAM come from internal/flash and
// internal/dram, and walks are individually tracked as they move between
// queues, buffers, and devices.
package core

import (
	"fmt"

	"flashwalker/internal/errs"
	"flashwalker/internal/fault"
	"flashwalker/internal/sim"
)

// Options are the Figure-9 feature toggles. The "baseline" FlashWalker of
// §IV-E has all three disabled; the full system enables all three.
type Options struct {
	// WalkQuery (WQ) enables the approximate walk search in channel-level
	// accelerators (range-granular queries that shrink the board-level
	// binary search) and the board-level walk query caches.
	WalkQuery bool
	// HotSubgraphs (HS) stores the top in-degree subgraphs in the
	// channel-level and board-level subgraph buffers so walks landing in
	// them are updated without descending to a chip.
	HotSubgraphs bool
	// SmartSchedule (SS) schedules subgraphs by the Eq. 1 critical-degree
	// score. When disabled, the scheduler falls back to most-buffered-
	// walks-first (GraphWalker-style state-aware ordering).
	SmartSchedule bool
}

// AllOptions enables every optimization.
func AllOptions() Options {
	return Options{WalkQuery: true, HotSubgraphs: true, SmartSchedule: true}
}

// Config holds the accelerator parameters (Table II) plus the engine's
// behavioural knobs.
type Config struct {
	// --- Table II cycle times (interval between operations per unit). ---
	ChipUpdaterCycle    sim.Time // 16 ns (500 MHz)
	ChipGuiderCycle     sim.Time // 16 ns
	ChannelUpdaterCycle sim.Time // 8 ns
	ChannelGuiderCycle  sim.Time // 8 ns
	BoardUpdaterCycle   sim.Time // 4 ns (1 GHz)
	BoardGuiderCycle    sim.Time // 4 ns

	// --- Table II unit counts. ---
	ChipUpdaters    int // 1
	ChipGuiders     int // 1
	ChannelUpdaters int // 1
	ChannelGuiders  int // 4
	BoardUpdaters   int // 4
	BoardGuiders    int // 128

	// OpsPerUpdate is the number of operations a walk updater performs per
	// walk when not stalled (5 in §IV-A). Biased walks add their ITS
	// binary-search steps on top.
	OpsPerUpdate int

	// --- Table II buffer capacities (bytes). ---
	ChipSubgraphBufBytes    int64 // 1 MB
	ChannelSubgraphBufBytes int64 // 2 MB
	BoardSubgraphBufBytes   int64 // 16 MB
	ChipWalkQueueBytes      int64 // 64 KB
	ChannelWalkQueueBytes   int64 // 128 KB
	BoardWalkQueueBytes     int64 // 1 MB
	ChipRovingBufBytes      int64 // 32 KB

	// --- §IV-A table and cache capacities. ---
	MappingTableBytes int64 // 2 MB board subgraph mapping table
	DenseTableBytes   int64 // 128 KB dense vertices mapping table
	QueryCacheBytes   int64 // 4 KB per walk query cache
	NumQueryCaches    int   // 32 caches, shared 4 guiders each
	MappingEntryBytes int64 // bytes per mapping entry (2 IDs + addr + degree)
	// TablePorts is the number of independent banks of the mapping table;
	// searches serialize per bank, modelling the access contention the
	// query cache relieves.
	TablePorts int

	// --- Buffering / flushing. ---
	// PartitionWalkEntryBytes is the DRAM capacity of one partition walk
	// buffer entry; when an entry fills, it overflows to flash (§III-D).
	PartitionWalkEntryBytes int64
	// CompletedBufBytes / ForeignerBufBytes are the board-side buffers
	// flushed to flash when full.
	CompletedBufBytes int64
	ForeignerBufBytes int64
	// ChipCompletedBufBytes is each chip's completed-walk buffer.
	ChipCompletedBufBytes int64

	// RovingFetchInterval is the fixed interval at which a channel-level
	// accelerator collects roving walks from its chips (§III-B).
	RovingFetchInterval sim.Time
	// MinWalksToLoad batches subgraph loads: a slot defers once (for
	// LoadIdleDelay) when its best candidate has fewer buffered walks, so
	// trickling walks amortize the page reads. After one deferral the load
	// proceeds regardless, guaranteeing progress. Set to 1 to disable.
	MinWalksToLoad int
	// LoadIdleDelay is the single deferral interval for MinWalksToLoad.
	LoadIdleDelay sim.Time
	// CommandBytes is the size of a scheduling command on the channel bus.
	CommandBytes int64

	// --- Eq. 1 scheduling. ---
	Alpha float64 // weight of buffered walks (1.2 default; 0.4 in Fig. 9 SS)
	Beta  float64 // non-dense multiplier (1.5)
	// TopN is the per-chip top-N candidate list length.
	TopN int
	// ScoreUpdateEveryM batches scoreboard updates: a block's cached score
	// is refreshed only every M-th walk insertion (§III-D).
	ScoreUpdateEveryM int

	// --- Multi-board SSD array. ---
	// Boards is the number of shard-owning boards in the simulated array.
	// 0 or 1 runs the classic single-board engine; N > 1 runs N boards,
	// each owning a round-robin shard of the graph partitions, connected
	// by a modeled inter-board fabric (see internal/core's array layer).
	Boards int
	// FabricLatency is the fixed per-message latency of the inter-board
	// fabric (PCIe-switch/NVMe-oF hop), charged on top of the serialized
	// transfer time.
	FabricLatency sim.Time
	// FabricBytesPerSec is the per-board egress bandwidth of the fabric.
	FabricBytesPerSec int64
	// FabricBatchBytes is the egress batching threshold: foreigner walks
	// bound for another board accumulate per (source, destination) pair
	// and ship when the batch reaches this size (or when the source board
	// drains, so no walk is ever stranded).
	FabricBatchBytes int64

	Opts Options

	// DisableBatchKernel turns off the batched, locality-sorted walk-update
	// kernel (batch.go): slot-load walk bursts and roving batches are then
	// decided one walk at a time in arrival order, and the second-order
	// probe memo is not built. Outcomes and the simulated timeline are
	// bit-identical either way — every sampling draw comes from the walk's
	// private RNG stream, so decision order cannot change trajectories. The
	// knob exists for before/after wall-clock measurement (cmd/experiments
	// -batch, the bench suite) and the equivalence property tests.
	DisableBatchKernel bool

	Seed uint64

	// Faults configures deterministic fault injection in the flash stack
	// (internal/fault). The zero value disables it; a zero-rate enabled
	// config injects nothing and leaves the timeline bit-identical.
	Faults fault.Config
}

// Default returns the Table II configuration with the paper's default
// α = 1.2, β = 1.5.
func Default() Config {
	return Config{
		ChipUpdaterCycle:    16 * sim.Nanosecond,
		ChipGuiderCycle:     16 * sim.Nanosecond,
		ChannelUpdaterCycle: 8 * sim.Nanosecond,
		ChannelGuiderCycle:  8 * sim.Nanosecond,
		BoardUpdaterCycle:   4 * sim.Nanosecond,
		BoardGuiderCycle:    4 * sim.Nanosecond,

		ChipUpdaters:    1,
		ChipGuiders:     1,
		ChannelUpdaters: 1,
		ChannelGuiders:  4,
		BoardUpdaters:   4,
		BoardGuiders:    128,

		OpsPerUpdate: 5,

		ChipSubgraphBufBytes:    1 << 20,
		ChannelSubgraphBufBytes: 2 << 20,
		BoardSubgraphBufBytes:   16 << 20,
		ChipWalkQueueBytes:      64 << 10,
		ChannelWalkQueueBytes:   128 << 10,
		BoardWalkQueueBytes:     1 << 20,
		ChipRovingBufBytes:      32 << 10,

		MappingTableBytes: 2 << 20,
		DenseTableBytes:   128 << 10,
		QueryCacheBytes:   4 << 10,
		NumQueryCaches:    32,
		MappingEntryBytes: 32,
		TablePorts:        4,

		PartitionWalkEntryBytes: 16 << 10,
		CompletedBufBytes:       64 << 10,
		ForeignerBufBytes:       64 << 10,
		ChipCompletedBufBytes:   8 << 10,

		RovingFetchInterval: 2 * sim.Microsecond,
		MinWalksToLoad:      1,
		LoadIdleDelay:       20 * sim.Microsecond,
		CommandBytes:        16,

		Alpha:             1.2,
		Beta:              1.5,
		TopN:              8,
		ScoreUpdateEveryM: 8,

		// Fabric defaults model a PCIe-switch hop between boards: ~1 us
		// switch+protocol latency, 4 GB/s effective per-board egress, and
		// 4 KB transfer batches. Only read when Boards > 1.
		Boards:            1,
		FabricLatency:     1 * sim.Microsecond,
		FabricBytesPerSec: 4 << 30,
		FabricBatchBytes:  4 << 10,

		Opts: AllOptions(),
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	type namedTime struct {
		name string
		v    sim.Time
	}
	for _, nt := range []namedTime{
		{"ChipUpdaterCycle", c.ChipUpdaterCycle},
		{"ChipGuiderCycle", c.ChipGuiderCycle},
		{"ChannelUpdaterCycle", c.ChannelUpdaterCycle},
		{"ChannelGuiderCycle", c.ChannelGuiderCycle},
		{"BoardUpdaterCycle", c.BoardUpdaterCycle},
		{"BoardGuiderCycle", c.BoardGuiderCycle},
		{"RovingFetchInterval", c.RovingFetchInterval},
		{"LoadIdleDelay", c.LoadIdleDelay},
	} {
		if nt.v <= 0 {
			return fmt.Errorf("core: %s must be positive: %w", nt.name, errs.ErrInvalidConfig)
		}
	}
	type namedInt struct {
		name string
		v    int
	}
	for _, ni := range []namedInt{
		{"ChipUpdaters", c.ChipUpdaters},
		{"ChipGuiders", c.ChipGuiders},
		{"ChannelUpdaters", c.ChannelUpdaters},
		{"ChannelGuiders", c.ChannelGuiders},
		{"BoardUpdaters", c.BoardUpdaters},
		{"BoardGuiders", c.BoardGuiders},
		{"OpsPerUpdate", c.OpsPerUpdate},
		{"NumQueryCaches", c.NumQueryCaches},
		{"TablePorts", c.TablePorts},
		{"MinWalksToLoad", c.MinWalksToLoad},
		{"TopN", c.TopN},
		{"ScoreUpdateEveryM", c.ScoreUpdateEveryM},
	} {
		if ni.v <= 0 {
			return fmt.Errorf("core: %s must be positive: %w", ni.name, errs.ErrInvalidConfig)
		}
	}
	type namedBytes struct {
		name string
		v    int64
	}
	for _, nb := range []namedBytes{
		{"ChipSubgraphBufBytes", c.ChipSubgraphBufBytes},
		{"ChannelSubgraphBufBytes", c.ChannelSubgraphBufBytes},
		{"BoardSubgraphBufBytes", c.BoardSubgraphBufBytes},
		{"ChipWalkQueueBytes", c.ChipWalkQueueBytes},
		{"ChannelWalkQueueBytes", c.ChannelWalkQueueBytes},
		{"BoardWalkQueueBytes", c.BoardWalkQueueBytes},
		{"ChipRovingBufBytes", c.ChipRovingBufBytes},
		{"MappingTableBytes", c.MappingTableBytes},
		{"QueryCacheBytes", c.QueryCacheBytes},
		{"MappingEntryBytes", c.MappingEntryBytes},
		{"PartitionWalkEntryBytes", c.PartitionWalkEntryBytes},
		{"CompletedBufBytes", c.CompletedBufBytes},
		{"ForeignerBufBytes", c.ForeignerBufBytes},
		{"ChipCompletedBufBytes", c.ChipCompletedBufBytes},
		{"CommandBytes", c.CommandBytes},
	} {
		if nb.v <= 0 {
			return fmt.Errorf("core: %s must be positive: %w", nb.name, errs.ErrInvalidConfig)
		}
	}
	if c.Alpha <= 0 || c.Beta <= 0 {
		return fmt.Errorf("core: Alpha/Beta must be positive: %w", errs.ErrInvalidConfig)
	}
	if c.Boards < 0 || c.Boards > MaxBoards {
		return fmt.Errorf("core: Boards %d outside [0, %d]: %w", c.Boards, MaxBoards, errs.ErrInvalidConfig)
	}
	if c.Boards > 1 {
		if c.FabricLatency < 0 {
			return fmt.Errorf("core: negative FabricLatency %v: %w", c.FabricLatency, errs.ErrInvalidConfig)
		}
		if c.FabricBytesPerSec <= 0 {
			return fmt.Errorf("core: FabricBytesPerSec must be positive with Boards > 1: %w", errs.ErrInvalidConfig)
		}
		if c.FabricBatchBytes <= 0 {
			return fmt.Errorf("core: FabricBatchBytes must be positive with Boards > 1: %w", errs.ErrInvalidConfig)
		}
	}
	if c.Faults.KillBoardAt > 0 {
		if c.Boards <= 1 {
			return fmt.Errorf("core: whole-device kill (Faults.KillBoardAt) requires Boards > 1: %w", errs.ErrInvalidConfig)
		}
		if c.Faults.KillBoard >= c.Boards {
			return fmt.Errorf("core: Faults.KillBoard %d outside array of %d boards: %w", c.Faults.KillBoard, c.Boards, errs.ErrInvalidConfig)
		}
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	return nil
}

// MaxBoards bounds the array size a Config may request; it exists to keep
// hostile service submissions from allocating an absurd device fleet.
const MaxBoards = 64
