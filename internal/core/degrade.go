package core

import "sort"

// Degraded-mode rerouting: when the fault injector marks a chip as degraded
// (sticky, after Config.Faults.DegradeAfterErrors read errors), the
// scheduler fails the chip's hottest subgraphs over to the owning
// channel-level accelerator. Walks bound for those blocks are then updated
// at the channel instead of descending to the slow chip; walks for the
// chip's remaining blocks still reach it — degraded chips serve reads
// correctly, just with the injector's latency penalty.

// chipDegraded is the injector's OnDegrade hook. It fires at most once per
// chip, in deterministic simulated-event order, so the failover (and its
// rescue traffic) replays identically for a given fault seed.
func (e *Engine) chipDegraded(chip int) {
	e.degraded[chip] = true
	ca := e.chans[chip/e.ssd.Cfg.ChipsPerChannel]

	// The rescue set — the chip's hottest non-dense blocks — may claim up
	// to half the channel subgraph buffer, evicting the coldest existing
	// residents to make room: serving the sick chip's traffic at the
	// channel beats keeping a marginally hotter block of a healthy chip.
	sums := e.part.InDegreeSums()
	existing := ca.HotBlocks()
	used := map[int]bool{}
	for _, id := range existing {
		used[id] = true
	}
	added := e.pickHotBlocks(sums, e.place.BlocksOnChip(chip),
		e.cfg.ChannelSubgraphBufBytes/2, used)
	if len(added) == 0 {
		return
	}

	var total int64
	for _, id := range added {
		total += e.part.Blocks[id].Bytes
	}
	// Keep the hottest existing residents that still fit beside the rescue
	// set (sorted hottest-first; ties break on block ID for determinism).
	sort.Slice(existing, func(i, j int) bool {
		if sums[existing[i]] != sums[existing[j]] {
			return sums[existing[i]] > sums[existing[j]]
		}
		return existing[i] < existing[j]
	})
	kept := existing[:0]
	budget := e.cfg.ChannelSubgraphBufBytes - total
	for _, id := range existing {
		if b := e.part.Blocks[id].Bytes; b <= budget {
			kept = append(kept, id)
			budget -= b
		}
	}
	ca.SetHotBlocks(append(kept, added...))
	ca.failover = true
	e.res.FailoverBlocks += uint64(len(added))

	// Rescue copy: read each failed-over block off the sick chip into the
	// channel buffer, paying the flash and bus traffic.
	for _, id := range added {
		pages := e.part.Pages(&e.part.Blocks[id], e.ssd.Cfg.PageBytes)
		e.ssd.ReadPagesToChannel(e.ssd.Chip(e.place.ChipOf(id)), pages, nil)
	}
}

// rerouteDegraded sends a walk bound for a degraded chip's failed-over
// block to the channel-level accelerator instead of the chip. It reports
// false (walk untouched) when the destination chip is healthy, the block
// was not failed over, or the channel's hot-update queue is full.
func (e *Engine) rerouteDegraded(blockID int, st wstate) bool {
	if e.degraded == nil {
		return false
	}
	chip := e.place.ChipOf(blockID)
	if !e.degraded[chip] {
		return false
	}
	ca := e.chans[chip/e.ssd.Cfg.ChipsPerChannel]
	if !ca.hot.contains(blockID) || !ca.tryHotUpdate(st) {
		return false
	}
	e.res.FaultReroutes++
	return true
}
