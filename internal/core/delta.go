package core

import (
	"fmt"
	"slices"
)

// Delta snapshots. A full engine Snapshot is dominated by the per-block
// walk stores (PWB/FLS) and the per-partition pending stores — and between
// two consecutive checkpoint cuts only the stores the scheduler actually
// touched change. A SnapshotDelta carries the full scalar state (cheap)
// plus only the dirtied store slices, chained to the exact container it
// diffs against by that container's SHA-256 seal. Deltas are a storage-
// layer construct: resume reconstructs the full image with ApplyDelta and
// hands it to the unchanged ResumeEngine path, so the engine's restore
// logic and its bit-identical-resume invariant are untouched.

// SnapshotDelta is the difference between two consecutive snapshot cuts of
// the same run.
type SnapshotDelta struct {
	// BaseSHA is the container seal (snapshot.Seal) of the encoded image
	// this delta chains to: the preceding full snapshot container or the
	// preceding delta container. Application verifies it, so a delta can
	// never be applied to the wrong base.
	BaseSHA [32]byte
	// Chain is this delta's 1-based position in the chain since the last
	// full snapshot.
	Chain int
	// Body is the cut's complete snapshot minus the big store slices
	// (PWB, FLS, PendingMem, PendingFlash are nil'd out).
	Body Snapshot
	// Blocks lists the dirtied block indices; PWB[i] and FLS[i] are block
	// Blocks[i]'s stores at the cut.
	Blocks []int
	PWB    [][]WalkState
	FLS    [][]WalkState
	// Parts lists the dirtied partition indices; PendingMem[i] and
	// PendingFlash[i] are partition Parts[i]'s stores at the cut.
	Parts        []int
	PendingMem   [][]WalkState
	PendingFlash [][]WalkState
}

// DiffSnapshot builds the delta from base to cur, chained to the encoded
// base image's seal. Store slices are shared with cur, not copied:
// snapshots are built fresh per cut and treated as immutable afterwards.
func DiffSnapshot(base, cur *Snapshot, baseSHA [32]byte, chain int) *SnapshotDelta {
	d := &SnapshotDelta{BaseSHA: baseSHA, Chain: chain, Body: *cur}
	d.Body.PWB, d.Body.FLS = nil, nil
	d.Body.PendingMem, d.Body.PendingFlash = nil, nil
	for b := range cur.PWB {
		if b < len(base.PWB) && b < len(base.FLS) &&
			slices.Equal(base.PWB[b], cur.PWB[b]) && slices.Equal(base.FLS[b], cur.FLS[b]) {
			continue
		}
		d.Blocks = append(d.Blocks, b)
		d.PWB = append(d.PWB, cur.PWB[b])
		d.FLS = append(d.FLS, cur.FLS[b])
	}
	for p := range cur.PendingMem {
		if p < len(base.PendingMem) && p < len(base.PendingFlash) &&
			slices.Equal(base.PendingMem[p], cur.PendingMem[p]) &&
			slices.Equal(base.PendingFlash[p], cur.PendingFlash[p]) {
			continue
		}
		d.Parts = append(d.Parts, p)
		d.PendingMem = append(d.PendingMem, cur.PendingMem[p])
		d.PendingFlash = append(d.PendingFlash, cur.PendingFlash[p])
	}
	return d
}

// ApplyDelta reconstructs the full snapshot a delta describes: the delta's
// body plus the base's store slices with the dirtied entries replaced.
// Clean stores are shared with base (snapshots are immutable), so chain
// application allocates only the per-cut bookkeeping. The caller verifies
// BaseSHA against the actual base container before calling.
func ApplyDelta(base *Snapshot, d *SnapshotDelta) (*Snapshot, error) {
	if base == nil || d == nil {
		return nil, fmt.Errorf("core: apply delta: nil base or delta")
	}
	nb := len(d.Body.PWBBytes)
	np := len(d.Body.FlushMark)
	if len(base.PWB) != nb || len(base.FLS) != nb {
		return nil, fmt.Errorf("core: delta sized for %d blocks, base has %d", nb, len(base.PWB))
	}
	if len(base.PendingMem) != np || len(base.PendingFlash) != np {
		return nil, fmt.Errorf("core: delta sized for %d partitions, base has %d", np, len(base.PendingMem))
	}
	if len(d.PWB) != len(d.Blocks) || len(d.FLS) != len(d.Blocks) {
		return nil, fmt.Errorf("core: delta block stores (%d/%d) disagree with index list (%d)",
			len(d.PWB), len(d.FLS), len(d.Blocks))
	}
	if len(d.PendingMem) != len(d.Parts) || len(d.PendingFlash) != len(d.Parts) {
		return nil, fmt.Errorf("core: delta partition stores (%d/%d) disagree with index list (%d)",
			len(d.PendingMem), len(d.PendingFlash), len(d.Parts))
	}
	full := d.Body
	full.PWB = append([][]WalkState(nil), base.PWB...)
	full.FLS = append([][]WalkState(nil), base.FLS...)
	for i, b := range d.Blocks {
		if b < 0 || b >= nb {
			return nil, fmt.Errorf("core: delta block index %d outside [0, %d)", b, nb)
		}
		full.PWB[b] = d.PWB[i]
		full.FLS[b] = d.FLS[i]
	}
	full.PendingMem = append([][]WalkState(nil), base.PendingMem...)
	full.PendingFlash = append([][]WalkState(nil), base.PendingFlash...)
	for i, p := range d.Parts {
		if p < 0 || p >= np {
			return nil, fmt.Errorf("core: delta partition index %d outside [0, %d)", p, np)
		}
		full.PendingMem[p] = d.PendingMem[i]
		full.PendingFlash[p] = d.PendingFlash[i]
	}
	return &full, nil
}
