package core

import (
	"reflect"
	"strings"
	"testing"
)

// TestSnapshotDeltaSelf pins two delta-layer basics: diffing a snapshot
// against itself dirties nothing, and applying that empty delta
// reconstructs the identical image (clean stores shared with the base).
func TestSnapshotDeltaSelf(t *testing.T) {
	g := testGraph(t)
	s := interruptCore(t, g, goldenConfig(), 2)

	var sha [32]byte
	d := DiffSnapshot(s, s, sha, 1)
	if len(d.Blocks) != 0 || len(d.Parts) != 0 {
		t.Fatalf("self-diff dirtied %d blocks and %d partitions, want none", len(d.Blocks), len(d.Parts))
	}
	if d.Chain != 1 {
		t.Fatalf("Chain = %d, want 1", d.Chain)
	}
	full, err := ApplyDelta(s, d)
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	if !reflect.DeepEqual(s, full) {
		t.Fatal("empty delta did not reconstruct the identical snapshot")
	}
}

// TestApplyDeltaRejectsMismatch guards the shape checks: a delta built for
// one layout must not silently apply to a base with a different one.
func TestApplyDeltaRejectsMismatch(t *testing.T) {
	g := testGraph(t)
	s := interruptCore(t, g, goldenConfig(), 1)

	if _, err := ApplyDelta(nil, &SnapshotDelta{}); err == nil {
		t.Fatal("ApplyDelta accepted a nil base")
	}
	if _, err := ApplyDelta(s, nil); err == nil {
		t.Fatal("ApplyDelta accepted a nil delta")
	}

	d := DiffSnapshot(s, s, [32]byte{}, 1)
	short := *s
	short.PWB = short.PWB[:len(short.PWB)-1]
	if _, err := ApplyDelta(&short, d); err == nil || !strings.Contains(err.Error(), "blocks") {
		t.Fatalf("ApplyDelta over mis-sized base: %v, want block-count error", err)
	}

	bad := *d
	bad.Blocks = []int{len(s.PWB)} // out of range
	bad.PWB = [][]WalkState{nil}
	bad.FLS = [][]WalkState{nil}
	if _, err := ApplyDelta(s, &bad); err == nil {
		t.Fatal("ApplyDelta accepted an out-of-range block index")
	}
}
