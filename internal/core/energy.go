package core

import (
	"fmt"

	"flashwalker/internal/sim"
)

// EnergyConfig holds per-operation energy estimates used to convert a
// run's traffic counters into an energy figure. The paper motivates
// in-storage processing partly by "high memory cost and energy consumption
// for managing graph and walks" (§I); this model quantifies that claim as
// an extension experiment.
//
// Defaults are order-of-magnitude literature estimates for MLC NAND, ONFI
// buses, DDR4, and small 45 nm accelerators (the paper's FreePDK45 RTL):
// absolute joules are indicative, ratios between systems are the point.
type EnergyConfig struct {
	// Flash array energies.
	ReadPageNJ    float64 // energy to sense one 4 KiB page (~40 uJ -> 40000 nJ)
	ProgramPageNJ float64 // one page program (~200 uJ)
	EraseBlockNJ  float64 // one block erase (~1.5 mJ)

	// Interconnect energies per byte.
	ChannelPJPerByte float64 // ONFI NV-DDR2 transfer (~20 pJ/byte)
	PCIePJPerByte    float64 // PCIe 3.0 (~60 pJ/byte incl. SerDes)
	DRAMPJPerByte    float64 // DDR4 access (~150 pJ/byte incl. activation)

	// Accelerator energies.
	AccelOpPJ float64 // one updater/guider operation (~5 pJ at 45 nm)
	// AccelStaticW is total leakage+clock power of all accelerator PEs
	// (paper area 1.30+1.84+14.31 mm^2 -> ~0.5 W at 45 nm).
	AccelStaticW float64

	// Host-side (GraphWalker) energies.
	HostCPUActiveW float64 // package power while updating walks (~65 W)
	HostIdleW      float64 // host idle floor while waiting on I/O (~20 W)
}

// DefaultEnergy returns the literature-estimate configuration.
func DefaultEnergy() EnergyConfig {
	return EnergyConfig{
		ReadPageNJ:       40_000,
		ProgramPageNJ:    200_000,
		EraseBlockNJ:     1_500_000,
		ChannelPJPerByte: 20,
		PCIePJPerByte:    60,
		DRAMPJPerByte:    150,
		AccelOpPJ:        5,
		AccelStaticW:     0.5,
		HostCPUActiveW:   65,
		HostIdleW:        20,
	}
}

// Validate checks the configuration.
func (c EnergyConfig) Validate() error {
	vals := []float64{
		c.ReadPageNJ, c.ProgramPageNJ, c.EraseBlockNJ,
		c.ChannelPJPerByte, c.PCIePJPerByte, c.DRAMPJPerByte,
		c.AccelOpPJ, c.AccelStaticW, c.HostCPUActiveW, c.HostIdleW,
	}
	for i, v := range vals {
		if v < 0 {
			return fmt.Errorf("core: energy parameter %d negative", i)
		}
	}
	return nil
}

// Energy is a joule breakdown of one run.
type Energy struct {
	FlashJ   float64 // page reads + programs + erases
	ChannelJ float64 // channel-bus transfers
	PCIeJ    float64 // host-link transfers
	DRAMJ    float64 // on-board or host DRAM traffic
	ComputeJ float64 // accelerator ops or host CPU active energy
	StaticJ  float64 // leakage / idle floor over the elapsed time
}

// Total sums the components.
func (e Energy) Total() float64 {
	return e.FlashJ + e.ChannelJ + e.PCIeJ + e.DRAMJ + e.ComputeJ + e.StaticJ
}

// FlashWalkerEnergy estimates the energy of a FlashWalker run from its
// result counters.
func FlashWalkerEnergy(c EnergyConfig, r *Result) Energy {
	var e Energy
	e.FlashJ = nj(float64(r.Flash.ReadPages)*c.ReadPageNJ +
		float64(r.Flash.ProgramPages)*c.ProgramPageNJ +
		float64(r.Flash.ErasedBlocks)*c.EraseBlockNJ)
	e.ChannelJ = pj(float64(r.Flash.ChannelBytes) * c.ChannelPJPerByte)
	e.PCIeJ = pj(float64(r.Flash.HostBytes) * c.PCIePJPerByte)
	e.DRAMJ = pj(float64(r.DRAMReadBytes+r.DRAMWriteBytes) * c.DRAMPJPerByte)
	// Accelerator dynamic energy: every update is OpsPerUpdate ops, every
	// routing decision a handful; approximate ops as updates*5 + searches.
	ops := float64(r.Hops)*5 +
		float64(r.TableSearchSteps) +
		float64(r.QueryCacheHits+r.QueryCacheMisses) +
		float64(r.RovingWalks)*2
	e.ComputeJ = pj(ops * c.AccelOpPJ)
	e.StaticJ = c.AccelStaticW * r.Time.Seconds()
	return e
}

// GraphWalkerEnergyInput is the subset of baseline results the energy
// model needs (kept as plain values to avoid an import cycle).
type GraphWalkerEnergyInput struct {
	Time          sim.Time
	CPUBusy       sim.Time // "update walks" component
	ReadPages     uint64
	ProgramPages  uint64
	ErasedBlocks  uint64
	ChannelBytes  int64
	HostBytes     int64
	HostDRAMBytes int64 // graph bytes staged through host memory
}

// GraphWalkerEnergy estimates the energy of a baseline run.
func GraphWalkerEnergy(c EnergyConfig, in GraphWalkerEnergyInput) Energy {
	var e Energy
	e.FlashJ = nj(float64(in.ReadPages)*c.ReadPageNJ +
		float64(in.ProgramPages)*c.ProgramPageNJ +
		float64(in.ErasedBlocks)*c.EraseBlockNJ)
	e.ChannelJ = pj(float64(in.ChannelBytes) * c.ChannelPJPerByte)
	e.PCIeJ = pj(float64(in.HostBytes) * c.PCIePJPerByte)
	e.DRAMJ = pj(float64(in.HostDRAMBytes) * c.DRAMPJPerByte)
	e.ComputeJ = (c.HostCPUActiveW - c.HostIdleW) * in.CPUBusy.Seconds()
	e.StaticJ = c.HostIdleW * in.Time.Seconds()
	return e
}

func nj(v float64) float64 { return v * 1e-9 }
func pj(v float64) float64 { return v * 1e-12 }
