package core

import (
	"testing"

	"flashwalker/internal/flash"
	"flashwalker/internal/sim"
)

func TestDefaultEnergyValid(t *testing.T) {
	if err := DefaultEnergy().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEnergyValidateRejectsNegative(t *testing.T) {
	c := DefaultEnergy()
	c.ReadPageNJ = -1
	if c.Validate() == nil {
		t.Fatal("negative parameter accepted")
	}
}

func TestFlashWalkerEnergyComponents(t *testing.T) {
	c := DefaultEnergy()
	r := &Result{
		Time: sim.Second,
		Hops: 1000,
		Flash: flash.Counters{
			ReadPages:    100,
			ProgramPages: 10,
			ErasedBlocks: 1,
			ChannelBytes: 1 << 20,
			HostBytes:    0,
		},
		DRAMReadBytes:  1 << 20,
		DRAMWriteBytes: 1 << 20,
	}
	e := FlashWalkerEnergy(c, r)
	// Flash: 100*40uJ + 10*200uJ + 1*1.5mJ = 4mJ + 2mJ + 1.5mJ = 7.5 mJ.
	if e.FlashJ < 0.0074 || e.FlashJ > 0.0076 {
		t.Fatalf("FlashJ = %v, want ~7.5 mJ", e.FlashJ)
	}
	// Static: 0.5 W x 1 s = 0.5 J.
	if e.StaticJ != 0.5 {
		t.Fatalf("StaticJ = %v", e.StaticJ)
	}
	if e.PCIeJ != 0 {
		t.Fatalf("FlashWalker used PCIe energy: %v", e.PCIeJ)
	}
	if e.Total() <= e.StaticJ {
		t.Fatal("total not accumulating components")
	}
}

func TestGraphWalkerEnergyComponents(t *testing.T) {
	c := DefaultEnergy()
	in := GraphWalkerEnergyInput{
		Time:          sim.Second,
		CPUBusy:       sim.Second / 2,
		ReadPages:     100,
		HostBytes:     1 << 20,
		HostDRAMBytes: 1 << 20,
	}
	e := GraphWalkerEnergy(c, in)
	// Compute: (65-20) W * 0.5 s = 22.5 J; static 20 J.
	if e.ComputeJ != 22.5 {
		t.Fatalf("ComputeJ = %v", e.ComputeJ)
	}
	if e.StaticJ != 20 {
		t.Fatalf("StaticJ = %v", e.StaticJ)
	}
	if e.PCIeJ <= 0 {
		t.Fatal("no PCIe energy on the host path")
	}
}

func TestEnergyComparisonEndToEnd(t *testing.T) {
	// A real engine run: FlashWalker's energy should be far below a
	// host-based run of the same workload, dominated by the host's static
	// and CPU power over its longer runtime.
	g := testGraph(t)
	rc := testConfig()
	res := runEngine(t, g, rc)
	fwE := FlashWalkerEnergy(DefaultEnergy(), res)
	if fwE.Total() <= 0 {
		t.Fatal("zero FlashWalker energy")
	}
	gwE := GraphWalkerEnergy(DefaultEnergy(), GraphWalkerEnergyInput{
		Time:      res.Time * 5, // a plausibly slower host run
		CPUBusy:   res.Time,
		ReadPages: res.Flash.ReadPages,
		HostBytes: res.Flash.ReadBytes,
	})
	if gwE.Total() <= fwE.Total() {
		t.Fatalf("host energy %v not above in-storage %v", gwE.Total(), fwE.Total())
	}
}
