package core

import (
	"fmt"

	"flashwalker/internal/bloom"
	"flashwalker/internal/dram"
	"flashwalker/internal/flash"
	"flashwalker/internal/graph"
	"flashwalker/internal/metrics"
	"flashwalker/internal/partition"
	"flashwalker/internal/rng"
	"flashwalker/internal/sim"
	"flashwalker/internal/trace"
	"flashwalker/internal/walk"
)

// wstate is a walk in flight through the accelerator hierarchy, carrying the
// routing annotations the hardware attaches: the pre-walked dense block and
// edge (paper §III-D) and the subgraph-range tag from the approximate walk
// search (§III-C).
type wstate struct {
	w          walk.Walk
	denseBlock int    // destination dense block after pre-walking, -1 otherwise
	denseEdge  uint64 // chosen edge index within Cur's edge list (pre-walked)
	rangeTag   int    // subgraph range ID from the approximate search, -1 untagged
	// prev is the previous vertex (second-order walks); noPrev before the
	// first hop. Unlike the tags above it persists across routing.
	prev graph.VertexID
}

// noPrev marks a walk that has not hopped yet.
const noPrev = ^graph.VertexID(0)

func (ws *wstate) clearTags() {
	ws.denseBlock = -1
	ws.rangeTag = -1
}

// sizeBytes is the buffer/flash footprint of the walk record; pre-walked
// dense walks omit cur (§III-D).
func (ws *wstate) sizeBytes() int64 {
	if ws.denseBlock >= 0 {
		return walk.DenseStateBytes
	}
	return walk.StateBytes
}

// RunConfig bundles everything one FlashWalker run needs.
type RunConfig struct {
	Cfg       Config
	FlashCfg  flash.Config
	DRAMCfg   dram.Config
	PartCfg   partition.Config
	Spec      walk.Spec
	NumWalks  int
	StartSeed uint64
	// Starts, when non-empty, supplies the walks' start vertices (cycled
	// when NumWalks exceeds its length) instead of uniform random draws —
	// e.g. PPR runs every walk from one source.
	Starts []graph.VertexID
	// ProgressBin, when non-zero, enables the Figure-8 time series.
	ProgressBin sim.Time
	// MaxSimTime aborts runs exceeding this simulated time (0 = unlimited).
	MaxSimTime sim.Time
	// TrackVisits records per-vertex visit counts in Result.Visits
	// (validation and analytics; costs one counter array).
	TrackVisits bool
	// Tracer, when non-nil, receives structured simulation events
	// (subgraph loads, roving batches, flushes, partition switches).
	Tracer trace.Tracer
	// Audit enables walk-conservation checks at every partition switch
	// and at completion: the walks in all stores plus the finished count
	// must equal the started count. Costs a scan per switch.
	Audit bool
	// UseAliasSampling makes biased walks sample with precomputed alias
	// tables (O(1) per hop, KnightKing-style) instead of the paper's ITS
	// binary search. The tables double the per-edge metadata stored with
	// each subgraph (see walk.GraphAlias.SizeBytes).
	UseAliasSampling bool
}

// Engine is one FlashWalker simulation instance.
type Engine struct {
	eng   *sim.Engine
	cfg   Config
	ssd   *flash.SSD
	dr    *dram.DRAM
	g     *graph.Graph
	part  *partition.Partitioned
	place *partition.Placement
	spec  walk.Spec

	chips []*chipAccel
	chans []*channelAccel
	board *boardAccel

	// Per-block walk stores outside the accelerators.
	pwb       [][]wstate // partition walk buffer entries (DRAM)
	pwbBytes  []int64
	fls       [][]wstate // walks overflowed to flash, per block
	flsPages  []int
	score     []float64 // cached Eq. 1 score per block
	scorePend []int     // inserts since last score refresh

	// Walks awaiting a future partition. pendingMem walks live in board
	// DRAM/host; pendingFlash walks were flushed and must be read back.
	pendingMem        [][]wstate
	pendingFlash      [][]wstate
	pendingFlashBytes []int64
	// flushMark[p] is the prefix of pendingMem[p] that is NOT sitting in
	// the board's foreigner buffer (initial seeds and previously settled
	// walks). pendingMem[p][flushMark[p]:] are the foreigner-buffer
	// residents that a buffer overflow flushes to flash.
	flushMark         []int
	foreignerBufBytes int64

	// edgeFilter answers neighbor-membership queries for second-order
	// walks (nil otherwise); it lives in on-board DRAM.
	edgeFilter *bloom.Filter
	// alias holds per-vertex alias tables when UseAliasSampling is set on
	// a biased run (nil otherwise).
	alias *walk.GraphAlias

	curPart   int
	activeCur int // walks of the current partition inside the system
	remaining int // walks not yet finished anywhere
	finished  bool
	failure   error
	audit     bool

	res Result

	slotsPerChip int
	slotCapWalks int
	walksPerPage int

	flushChipRR int // round-robin chip cursor for board-side flushes

	maxSimTime sim.Time
	tracer     trace.Tracer

	rootRNG *rng.RNG
}

// emit sends a trace event if tracing is enabled.
func (e *Engine) emit(kind trace.Kind, a, b int64) {
	if e.tracer != nil {
		e.tracer.Emit(trace.Event{At: e.eng.Now(), Kind: kind, A: a, B: b})
	}
}

// NewEngine builds a FlashWalker instance over the graph. The walks start
// at numWalks uniformly random vertices drawn from startSeed.
func NewEngine(g *graph.Graph, rc RunConfig) (*Engine, error) {
	if err := rc.Cfg.Validate(); err != nil {
		return nil, err
	}
	if err := rc.Spec.Validate(g); err != nil {
		return nil, err
	}
	if rc.NumWalks <= 0 {
		return nil, fmt.Errorf("core: NumWalks %d <= 0", rc.NumWalks)
	}
	part, err := partition.Partition(g, rc.PartCfg)
	if err != nil {
		return nil, err
	}
	eng := sim.New()
	ssd, err := flash.New(eng, rc.FlashCfg)
	if err != nil {
		return nil, err
	}
	dr, err := dram.New(eng, rc.DRAMCfg)
	if err != nil {
		return nil, err
	}
	place, err := partition.NewPlacement(part, rc.FlashCfg.Channels, rc.FlashCfg.ChipsPerChannel)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		eng:   eng,
		cfg:   rc.Cfg,
		ssd:   ssd,
		dr:    dr,
		g:     g,
		part:  part,
		place: place,
		spec:  rc.Spec,

		pwb:       make([][]wstate, part.NumBlocks()),
		pwbBytes:  make([]int64, part.NumBlocks()),
		fls:       make([][]wstate, part.NumBlocks()),
		flsPages:  make([]int, part.NumBlocks()),
		score:     make([]float64, part.NumBlocks()),
		scorePend: make([]int, part.NumBlocks()),

		pendingMem:        make([][]wstate, part.NumPartitions),
		pendingFlash:      make([][]wstate, part.NumPartitions),
		pendingFlashBytes: make([]int64, part.NumPartitions),
		flushMark:         make([]int, part.NumPartitions),

		curPart:    -1,
		maxSimTime: rc.MaxSimTime,
		tracer:     rc.Tracer,
		audit:      rc.Audit,
		rootRNG:    rng.New(rc.Cfg.Seed),
	}

	e.slotsPerChip = int(rc.Cfg.ChipSubgraphBufBytes / rc.PartCfg.BlockBytes)
	if e.slotsPerChip < 1 {
		e.slotsPerChip = 1
	}
	e.slotCapWalks = int(rc.Cfg.ChipWalkQueueBytes / walk.StateBytes / int64(e.slotsPerChip))
	if e.slotCapWalks < 1 {
		e.slotCapWalks = 1
	}
	e.walksPerPage = int(rc.FlashCfg.PageBytes / walk.StateBytes)
	if e.walksPerPage < 1 {
		e.walksPerPage = 1
	}

	if rc.TrackVisits {
		e.res.Visits = make([]uint64, g.NumVertices())
	}
	if rc.Spec.Kind == walk.SecondOrder {
		e.edgeFilter = partition.EdgeFilter(g, 0.01)
	}
	if rc.UseAliasSampling {
		if rc.Spec.Kind != walk.Biased {
			return nil, fmt.Errorf("core: alias sampling only applies to biased walks")
		}
		ga, err := walk.NewGraphAlias(g)
		if err != nil {
			return nil, err
		}
		e.alias = ga
	}
	if rc.ProgressBin > 0 {
		ssd.ReadTS = metrics.NewTimeSeries(rc.ProgressBin)
		ssd.WriteTS = metrics.NewTimeSeries(rc.ProgressBin)
		ssd.ChannelTS = metrics.NewTimeSeries(rc.ProgressBin)
		e.res.ReadTS = ssd.ReadTS
		e.res.WriteTS = ssd.WriteTS
		e.res.ChannelTS = ssd.ChannelTS
		e.res.ProgressTS = metrics.NewTimeSeries(rc.ProgressBin)
	}

	e.buildAccelerators()
	if len(rc.Starts) > 0 {
		for _, v := range rc.Starts {
			if v >= g.NumVertices() {
				return nil, fmt.Errorf("core: start vertex %d out of range", v)
			}
		}
		e.seedWalksFrom(rc.Starts, rc.NumWalks)
	} else {
		e.seedWalksFrom(walk.UniformStarts(e.g, rc.NumWalks, rc.StartSeed), rc.NumWalks)
	}
	return e, nil
}

// buildAccelerators wires the three accelerator tiers.
func (e *Engine) buildAccelerators() {
	numChips := e.ssd.NumChips()
	for i := 0; i < numChips; i++ {
		c := &chipAccel{
			e:       e,
			id:      i,
			chip:    e.ssd.Chip(i),
			updater: newUnitPool(e.eng, e.cfg.ChipUpdaters),
			guider:  newUnitPool(e.eng, e.cfg.ChipGuiders),
			rng:     e.rootRNG.Derive(uint64(1000 + i)),
		}
		for s := 0; s < e.slotsPerChip; s++ {
			c.slots = append(c.slots, &chipSlot{block: -1})
		}
		e.chips = append(e.chips, c)
	}
	for ch := 0; ch < e.ssd.Cfg.Channels; ch++ {
		ca := &channelAccel{
			e:       e,
			id:      ch,
			channel: e.ssd.Channel(ch),
			updater: newUnitPool(e.eng, e.cfg.ChannelUpdaters),
			guider:  newUnitPool(e.eng, e.cfg.ChannelGuiders),
			rng:     e.rootRNG.Derive(uint64(2000 + ch)),
		}
		e.chans = append(e.chans, ca)
	}
	b := &boardAccel{
		e:       e,
		updater: newUnitPool(e.eng, e.cfg.BoardUpdaters),
		guider:  newUnitPool(e.eng, e.cfg.BoardGuiders),
		rng:     e.rootRNG.Derive(3000),
	}
	for i := 0; i < e.cfg.TablePorts; i++ {
		b.ports = append(b.ports, sim.NewQueue(e.eng))
	}
	if e.cfg.Opts.WalkQuery {
		for i := 0; i < e.cfg.NumQueryCaches; i++ {
			b.caches = append(b.caches, newQueryCache(e.cfg.QueryCacheBytes, e.cfg.MappingEntryBytes))
		}
	}
	e.board = b
	e.selectHotSubgraphs()
}

// selectHotSubgraphs picks the top in-degree non-dense blocks for the board
// and for each channel (paper §III-C: channels keep the top-K among blocks
// on their own chips).
func (e *Engine) selectHotSubgraphs() {
	if !e.cfg.Opts.HotSubgraphs {
		return
	}
	sums := e.part.InDegreeSums()
	pick := func(candidates []int, capBytes int64) []int {
		budget := capBytes
		// Selection sort of the top items by in-degree sum; candidate lists
		// are small (blocks per channel).
		chosen := []int{}
		used := map[int]bool{}
		for {
			best, bestSum := -1, uint64(0)
			for _, id := range candidates {
				b := &e.part.Blocks[id]
				if used[id] || b.Dense || b.Bytes > budget {
					continue
				}
				if best == -1 || sums[id] > bestSum {
					best, bestSum = id, sums[id]
				}
			}
			if best == -1 {
				break
			}
			used[best] = true
			budget -= e.part.Blocks[best].Bytes
			chosen = append(chosen, best)
		}
		return chosen
	}
	all := make([]int, e.part.NumBlocks())
	for i := range all {
		all[i] = i
	}
	e.board.setHotBlocks(pick(all, e.cfg.BoardSubgraphBufBytes))
	for ch, ca := range e.chans {
		ca.setHotBlocks(pick(e.place.BlocksOnChannel(ch), e.cfg.ChannelSubgraphBufBytes))
	}
}

// seedWalksFrom creates the workload from the given start vertices and
// sorts walks into per-partition pending lists (walk initialization is
// host-side preprocessing; it is not charged to the simulated clock,
// matching the paper's exclusion of preprocessing).
func (e *Engine) seedWalksFrom(starts []graph.VertexID, n int) {
	ws := walk.NewWalks(e.spec, starts, n)
	e.remaining = len(ws)
	e.res.Started = len(ws)
	for i := range ws {
		st := wstate{w: ws[i], denseBlock: -1, rangeTag: -1, prev: noPrev}
		if e.res.Visits != nil {
			e.res.Visits[st.w.Cur]++
		}
		p := e.homePartition(st.w.Cur)
		e.pendingMem[p] = append(e.pendingMem[p], st)
	}
	for p := range e.pendingMem {
		e.flushMark[p] = len(e.pendingMem[p])
	}
}

// homePartition reports which partition a vertex's subgraph belongs to
// (dense vertices use their first block).
func (e *Engine) homePartition(v graph.VertexID) int {
	if m, ok := e.part.Dense.Lookup(v); ok {
		return e.part.PartitionOf(m.FirstBlockID)
	}
	id, _ := e.part.BlockOf(v)
	if id < 0 {
		return 0
	}
	return e.part.PartitionOf(id)
}

// Run executes the simulation to completion and returns the result.
func (e *Engine) Run() (*Result, error) {
	e.preloadHotSubgraphs()
	for _, ca := range e.chans {
		ca.scheduleTick()
	}
	if !e.advancePartition() {
		e.finished = true
	}
	if e.maxSimTime > 0 {
		e.eng.RunUntil(e.maxSimTime)
		if e.remaining != 0 && e.failure == nil {
			return nil, fmt.Errorf("core: MaxSimTime %v exceeded with %d walks unfinished", e.maxSimTime, e.remaining)
		}
	} else {
		e.eng.Run()
	}
	if e.failure != nil {
		return nil, e.failure
	}
	if e.remaining != 0 {
		return nil, fmt.Errorf("core: simulation drained with %d walks unfinished (activeCur=%d, partition=%d)",
			e.remaining, e.activeCur, e.curPart)
	}
	e.res.Time = e.eng.Now()
	e.res.Flash = e.ssd.Counters
	e.res.DRAMReadBytes = e.dr.ReadBytes
	e.res.DRAMWriteBytes = e.dr.WriteBytes
	e.res.DRAMPortUtil = e.dr.Utilization()
	e.res.BoardGuiderUtil = e.board.guider.utilization()
	var chipU, chipMax, busMax float64
	for _, c := range e.chips {
		u := c.updater.utilization()
		chipU += u
		if u > chipMax {
			chipMax = u
		}
	}
	e.res.ChipUpdaterUtil = chipU / float64(len(e.chips))
	e.res.ChipUpdaterUtilMax = chipMax
	var chGU float64
	for _, ca := range e.chans {
		chGU += ca.guider.utilization()
		if u := ca.channel.Bus.Utilization(); u > busMax {
			busMax = u
		}
	}
	e.res.ChannelGuiderUtil = chGU / float64(len(e.chans))
	e.res.ChannelBusUtilMax = busMax
	return &e.res, nil
}

// preloadHotSubgraphs reads hot blocks into the channel and board buffers
// at time zero, paying the flash and bus traffic.
func (e *Engine) preloadHotSubgraphs() {
	if !e.cfg.Opts.HotSubgraphs {
		e.board.hotReady = true
		for _, ca := range e.chans {
			ca.hotReady = true
		}
		return
	}
	load := func(ids []int, ready *bool) {
		if len(ids) == 0 {
			*ready = true
			return
		}
		left := len(ids)
		for _, id := range ids {
			pages := e.part.Pages(&e.part.Blocks[id], e.ssd.Cfg.PageBytes)
			chip := e.ssd.Chip(e.place.ChipOf(id))
			e.ssd.ReadPagesToChannel(chip, pages, func() {
				left--
				if left == 0 {
					*ready = true
				}
			})
		}
	}
	load(e.board.hotList(), &e.board.hotReady)
	for _, ca := range e.chans {
		load(ca.hotList(), &ca.hotReady)
	}
}

// fail aborts the simulation with an error.
func (e *Engine) fail(err error) {
	if e.failure == nil {
		e.failure = err
	}
	e.finished = true
}

// finishWalk retires a walk (completed or dead-ended).
func (e *Engine) finishWalk(completed bool) {
	if completed {
		e.res.Completed++
		e.emit(trace.WalkDone, 1, 0)
	} else {
		e.res.DeadEnded++
		e.emit(trace.WalkDone, 0, 0)
	}
	if e.res.ProgressTS != nil {
		e.res.ProgressTS.Add(e.eng.Now(), 1)
	}
	e.remaining--
	e.activeCur--
	e.checkPartitionDone()
}

// demoteWalk moves a foreigner out of the current partition: the walk
// lands in the board's foreigner buffer (tracked as the tail of
// pendingMem[p]); if the buffer fills, every buffered foreigner is flushed
// to flash (§III-C/D).
func (e *Engine) demoteWalk(p int, st wstate) {
	st.clearTags()
	e.pendingMem[p] = append(e.pendingMem[p], st)
	e.foreignerBufBytes += walk.StateBytes
	e.res.ForeignerWalks++
	if e.foreignerBufBytes >= e.cfg.ForeignerBufBytes {
		e.flushForeigners()
	}
	e.activeCur--
	e.checkPartitionDone()
}

// flushForeigners writes every foreigner-buffer resident to flash and
// records the read-back debt per destination partition.
func (e *Engine) flushForeigners() {
	var totalBytes int64
	for p := range e.pendingMem {
		tail := e.pendingMem[p][e.flushMark[p]:]
		if len(tail) == 0 {
			continue
		}
		bytes := int64(len(tail)) * walk.StateBytes
		e.pendingFlash[p] = append(e.pendingFlash[p], tail...)
		e.pendingFlashBytes[p] += bytes
		e.pendingMem[p] = e.pendingMem[p][:e.flushMark[p]]
		totalBytes += bytes
	}
	e.foreignerBufBytes = 0
	if totalBytes == 0 {
		return
	}
	e.res.ForeignerFlushes++
	e.emit(trace.ForeignerFlush, totalBytes, 0)
	e.dr.Read(totalBytes, nil)
	pages := int((totalBytes + e.ssd.Cfg.PageBytes - 1) / e.ssd.Cfg.PageBytes)
	e.ssd.ProgramPagesFromBoard(e.flushChip(), pages, nil)
}

// checkPartitionDone advances to the next partition once the current one is
// fully drained.
func (e *Engine) checkPartitionDone() {
	if e.finished || e.activeCur > 0 {
		return
	}
	if e.activeCur < 0 {
		e.fail(fmt.Errorf("core: activeCur went negative"))
		return
	}
	if !e.advancePartition() {
		e.finished = true
		if e.remaining != 0 {
			e.fail(fmt.Errorf("core: no partitions left but %d walks remain", e.remaining))
		}
	}
}

// auditConservation verifies that every started walk is accounted for:
// finished + in pending stores + active in the current partition. Called
// between partitions (activeCur == 0, so nothing is in flight).
func (e *Engine) auditConservation(where string) {
	if !e.audit || e.failure != nil {
		return
	}
	stored := 0
	for p := range e.pendingMem {
		stored += len(e.pendingMem[p]) + len(e.pendingFlash[p])
	}
	for b := range e.pwb {
		stored += len(e.pwb[b]) + len(e.fls[b])
	}
	finished := e.res.Completed + e.res.DeadEnded
	if got := stored + finished + e.activeCur - e.activeCurStoredOverlap(); got != e.res.Started {
		e.fail(fmt.Errorf("core: audit(%s): %d stored + %d finished + %d active != %d started",
			where, stored, finished, e.activeCur, e.res.Started))
	}
}

// activeCurStoredOverlap counts walks that are both active and sitting in
// a per-block store of the current partition (pwb/fls double-count
// against activeCur in the audit sum).
func (e *Engine) activeCurStoredOverlap() int {
	if e.curPart < 0 {
		return 0
	}
	first, last := e.part.PartitionSpan(e.curPart)
	n := 0
	for b := first; b <= last; b++ {
		n += len(e.pwb[b]) + len(e.fls[b])
	}
	return n
}

// advancePartition selects the next partition holding walks and dispatches
// its pending set. It reports false when no walks remain anywhere.
func (e *Engine) advancePartition() bool {
	e.auditConservation("partition-switch")
	np := e.part.NumPartitions
	for step := 1; step <= np; step++ {
		p := (e.curPart + step) % np
		if e.curPart < 0 {
			p = step - 1
		}
		if len(e.pendingMem[p]) == 0 && len(e.pendingFlash[p]) == 0 {
			continue
		}
		e.startPartition(p)
		return true
	}
	return false
}

// startPartition switches the engine to partition p: invalidates the query
// caches (their entries map the old partition's table), refreshes each
// chip's candidate block list, reads back flushed foreigner walks, and
// routes every pending walk through the board guider.
func (e *Engine) startPartition(p int) {
	e.curPart = p
	e.res.PartitionSwitches++
	e.emit(trace.PartitionSwitch, int64(p),
		int64(len(e.pendingMem[p])+len(e.pendingFlash[p])))
	for _, qc := range e.board.caches {
		qc.invalidate()
	}
	for _, c := range e.chips {
		c.refreshBlocks()
	}

	// Foreigner-buffer residents bound for p are consumed now.
	e.foreignerBufBytes -= int64(len(e.pendingMem[p])-e.flushMark[p]) * walk.StateBytes
	if e.foreignerBufBytes < 0 {
		e.foreignerBufBytes = 0
	}
	e.flushMark[p] = 0
	mem := e.pendingMem[p]
	e.pendingMem[p] = nil
	fl := e.pendingFlash[p]
	flBytes := e.pendingFlashBytes[p]
	e.pendingFlash[p] = nil
	e.pendingFlashBytes[p] = 0

	e.activeCur = len(mem) + len(fl)

	dispatch := func(ws []wstate) {
		for i := range ws {
			e.board.guide(ws[i])
		}
	}
	dispatch(mem)
	if len(fl) > 0 {
		// Read the flushed foreigner pages back (striped over chips, the
		// same way they were written).
		pages := int((flBytes + e.ssd.Cfg.PageBytes - 1) / e.ssd.Cfg.PageBytes)
		left := pages
		for i := 0; i < pages; i++ {
			chip := e.ssd.Chip(e.flushChipRR)
			e.flushChipRR = (e.flushChipRR + 1) % e.ssd.NumChips()
			e.ssd.ReadPagesToChannel(chip, 1, func() {
				left--
				if left == 0 {
					dispatch(fl)
				}
			})
		}
	}
	if e.activeCur == 0 {
		// Nothing was pending after all (shouldn't happen, lists checked).
		e.checkPartitionDone()
	}
}

// flushChip picks the next chip for board-side flash writes (round-robin).
func (e *Engine) flushChip() *flash.Chip {
	c := e.ssd.Chip(e.flushChipRR)
	e.flushChipRR = (e.flushChipRR + 1) % e.ssd.NumChips()
	return c
}

// inCurrentPartition reports whether block b belongs to the active
// partition.
func (e *Engine) inCurrentPartition(b int) bool {
	return e.part.PartitionOf(b) == e.curPart
}

// blockScore computes the Eq. 1 critical degree for block b. With
// SmartSchedule disabled it degrades to the walk count (GraphWalker-style
// most-walks-first).
func (e *Engine) blockScore(b int) float64 {
	pwb := float64(len(e.pwb[b]))
	fl := float64(len(e.fls[b]))
	if !e.cfg.Opts.SmartSchedule {
		return pwb + fl
	}
	s := pwb*e.cfg.Alpha + fl
	if !e.part.Blocks[b].Dense {
		s *= e.cfg.Beta
	}
	return s
}

// refreshScore recomputes block b's cached score.
func (e *Engine) refreshScore(b int) {
	e.score[b] = e.blockScore(b)
	e.scorePend[b] = 0
}

// insertPWB places a walk into the partition walk buffer entry of block b,
// overflowing the entry to flash when it fills (§III-D). chargeDRAM writes
// the record through the DRAM port.
func (e *Engine) insertPWB(b int, st wstate) {
	sz := st.sizeBytes()
	e.dr.Write(sz, nil)
	e.pwb[b] = append(e.pwb[b], st)
	e.pwbBytes[b] += sz
	if e.pwbBytes[b] > e.cfg.PartitionWalkEntryBytes {
		e.overflowPWB(b)
	}
	e.scorePend[b]++
	if e.scorePend[b] >= e.cfg.ScoreUpdateEveryM {
		e.refreshScore(b)
	}
	// A chip with an idle slot may now have work.
	e.chips[e.place.ChipOf(b)].trySchedule()
}

// overflowPWB flushes block b's walk buffer entry to flash.
func (e *Engine) overflowPWB(b int) {
	walks := e.pwb[b]
	bytes := e.pwbBytes[b]
	e.pwb[b] = nil
	e.pwbBytes[b] = 0
	e.fls[b] = append(e.fls[b], walks...)
	pages := int((bytes + e.ssd.Cfg.PageBytes - 1) / e.ssd.Cfg.PageBytes)
	e.flsPages[b] += pages
	e.res.PWBOverflows++
	e.emit(trace.PWBOverflow, int64(b), int64(len(walks)))
	// The entry moves through the chip-level walk-overflow buffer and is
	// programmed on the block's own chip, so the read-back later is local.
	e.dr.Read(bytes, nil)
	e.ssd.ProgramPagesFromBoard(e.ssd.Chip(e.place.ChipOf(b)), pages, nil)
	e.refreshScore(b)
}
