package core

import (
	"context"
	"fmt"

	"flashwalker/internal/bloom"
	"flashwalker/internal/dram"
	"flashwalker/internal/errs"
	"flashwalker/internal/fault"
	"flashwalker/internal/flash"
	"flashwalker/internal/graph"
	"flashwalker/internal/metrics"
	"flashwalker/internal/partition"
	"flashwalker/internal/rng"
	"flashwalker/internal/sim"
	"flashwalker/internal/trace"
	"flashwalker/internal/walk"
)

// The engine implementation is split across focused files:
//
//	engine.go    — Engine struct, construction, Run loop, failure handling
//	tier.go      — the tierAccel interface and the shared tier machinery
//	wiring.go    — accelerator tier construction and hot-subgraph preload
//	lifecycle.go — walk seeding, retirement, partition advance
//	routing.go   — foreigner demotion/flush and the conservation audit
//	scheduler.go — Eq. 1 scores and the partition walk buffer (PWB)
//	route.go     — board-level routing decisions (classify/search)
//	chip.go, channel.go, board.go — the three tier implementations
//	hop.go       — walk-update (hop) decisions
//	tables.go    — query cache and unit pools

// wstate is a walk in flight through the accelerator hierarchy, carrying the
// routing annotations the hardware attaches: the pre-walked dense block and
// edge (paper §III-D) and the subgraph-range tag from the approximate walk
// search (§III-C).
type wstate struct {
	w          walk.Walk
	denseBlock int    // destination dense block after pre-walking, -1 otherwise
	denseEdge  uint64 // chosen edge index within Cur's edge list (pre-walked)
	rangeTag   int    // subgraph range ID from the approximate search, -1 untagged
	// prev is the previous vertex (second-order walks); noPrev before the
	// first hop. Unlike the tags above it persists across routing.
	prev graph.VertexID
	// rng is the walk's private sampling stream (KnightKing-style), derived
	// from the run seed per walk at seeding time. Because every hop draws
	// from the walk's own stream — never a tier's — the trajectory depends
	// only on the walk and the graph, not on which accelerator performs the
	// update or when. That makes trajectories invariant under fault-induced
	// timing shifts: injected faults change when walks finish, never where
	// they go (the metamorphic property internal/fault relies on).
	rng rng.RNG
}

// noPrev marks a walk that has not hopped yet.
const noPrev = ^graph.VertexID(0)

func (ws *wstate) clearTags() {
	ws.denseBlock = -1
	ws.rangeTag = -1
}

// sizeBytes is the buffer/flash footprint of the walk record; pre-walked
// dense walks omit cur (§III-D).
func (ws *wstate) sizeBytes() int64 {
	if ws.denseBlock >= 0 {
		return walk.DenseStateBytes
	}
	return walk.StateBytes
}

// RunConfig bundles everything one FlashWalker run needs.
type RunConfig struct {
	Cfg       Config
	FlashCfg  flash.Config
	DRAMCfg   dram.Config
	PartCfg   partition.Config
	Spec      walk.Spec
	NumWalks  int
	StartSeed uint64
	// Starts, when non-empty, supplies the walks' start vertices (cycled
	// when NumWalks exceeds its length) instead of uniform random draws —
	// e.g. PPR runs every walk from one source.
	Starts []graph.VertexID
	// ProgressBin, when non-zero, enables the Figure-8 time series.
	ProgressBin sim.Time
	// MaxSimTime aborts runs exceeding this simulated time (0 = unlimited).
	MaxSimTime sim.Time
	// TrackVisits records per-vertex visit counts in Result.Visits
	// (validation and analytics; costs one counter array).
	TrackVisits bool
	// Tracer, when non-nil, receives structured simulation events
	// (subgraph loads, roving batches, flushes, partition switches).
	Tracer trace.Tracer
	// Audit enables walk-conservation checks at every partition switch
	// and at completion: the walks in all stores plus the finished count
	// must equal the started count. Costs a scan per switch.
	Audit bool
	// UseAliasSampling makes biased walks sample with precomputed alias
	// tables (O(1) per hop, KnightKing-style) instead of the paper's ITS
	// binary search. The tables double the per-edge metadata stored with
	// each subgraph (see walk.GraphAlias.SizeBytes).
	UseAliasSampling bool
	// Mutations is a deterministic edge insert/delete stream applied during
	// the run: a mutation stamped T becomes visible to the first simulated
	// event at time >= T and to nothing before it (At == 0 mutations apply
	// at construction, before hot-subgraph selection). The engine clones
	// the graph, so the caller's Graph is never modified, and maintains
	// every derived index — block degree tables, the second-order edge
	// filter, alias tables — incrementally; the result is bit-identical to
	// rebuilding those structures over the mutated graph. The stream must
	// satisfy graph.MutationStream.Validate over the initial graph with the
	// partitioning's dense-vertex threshold as the degree cap (the frozen
	// block skeleton cannot re-partition mid-run). Empty means a static
	// graph: the classic, byte-identical path.
	Mutations graph.MutationStream
	// OnProgress, when non-nil, receives live counter snapshots from the
	// simulation goroutine at checkpoint boundaries (every CheckpointEvery
	// events) and once more when the run ends. The callback must be fast
	// and must not call back into the engine.
	OnProgress func(Progress)
	// CheckpointEvery is the event interval between cancellation checks and
	// progress snapshots; 0 uses DefaultCheckpointEvery. Checkpoints run
	// strictly between simulated events, so they never perturb the
	// timeline.
	CheckpointEvery uint64
	// OnSnapshot, when non-nil, receives durable engine snapshots taken at
	// checkpoint boundaries (see Engine.Snapshot). A snapshot captures the
	// full mid-run state — walk stores, accelerator queues, device
	// bookings, the pending event heap — and ResumeEngine replays the run
	// from it bit-identically. Snapshots that cannot be taken yet (setup
	// closures still draining) are skipped silently; the callback must not
	// call back into the engine.
	OnSnapshot func(*Snapshot)
	// SnapshotEvery is the minimum number of processed events between
	// OnSnapshot deliveries; snapshots are only attempted at checkpoint
	// boundaries, so the effective cadence is the next checkpoint after
	// the interval elapses. 0 snapshots at every checkpoint.
	SnapshotEvery uint64
	// OnWalks, when non-nil, receives finished walks in retirement order
	// (see export.go). Deliveries happen strictly between simulated events
	// — at emitter boundaries, before every snapshot, and at run end — so
	// attaching a consumer never perturbs the timeline. The record slice is
	// reused between deliveries; the callback must copy what it keeps and
	// must not call back into the engine.
	OnWalks func([]WalkDone)
	// EmitEvery is the event interval between OnWalks deliveries; 0 uses
	// DefaultEmitEvery.
	EmitEvery uint64
}

// DefaultCheckpointEvery is the default event interval between cooperative
// cancellation checks and progress snapshots during RunContext.
const DefaultCheckpointEvery = 4096

// Progress is a consistent mid-run snapshot of an engine's headline
// counters, taken at an event boundary.
type Progress struct {
	// Now is the simulated clock at the snapshot.
	Now sim.Time
	// Events is the number of simulation events processed so far.
	Events uint64
	// Started / Completed / DeadEnded mirror the Result fields.
	Started   int
	Completed int
	DeadEnded int
	// Hops is the number of walk updates performed so far.
	Hops uint64
	// PartitionSwitches counts partition advances so far.
	PartitionSwitches uint64
}

// WalksFinished reports completed + dead-ended walks at the snapshot.
func (p Progress) WalksFinished() int { return p.Completed + p.DeadEnded }

// Engine is one FlashWalker simulation instance.
type Engine struct {
	eng   *sim.Engine
	cfg   Config
	ssd   *flash.SSD
	dr    *dram.DRAM
	g     *graph.Graph
	part  *partition.Partitioned
	place *partition.Placement
	spec  walk.Spec

	chips []*chipAccel
	chans []*channelAccel
	board *boardAccel
	// tiers is every accelerator in the hierarchy behind the shared
	// interface, in construction order (chips, channels, board).
	tiers []tierAccel

	// Per-block walk stores outside the accelerators.
	pwb       [][]wstate // partition walk buffer entries (DRAM)
	pwbBytes  []int64
	fls       [][]wstate // walks overflowed to flash, per block
	flsPages  []int
	score     []float64 // cached Eq. 1 score per block
	scorePend []int     // inserts since last score refresh
	// blockPos is each block's position in its chip's current myBlocks
	// list (-1 outside the active partition); it backs the per-chip
	// scheduler work bitmaps (chipAccel.workBits).
	blockPos []int32

	// Walks awaiting a future partition. pendingMem walks live in board
	// DRAM/host; pendingFlash walks were flushed and must be read back.
	pendingMem        [][]wstate
	pendingFlash      [][]wstate
	pendingFlashBytes []int64
	// flushMark[p] is the prefix of pendingMem[p] that is NOT sitting in
	// the board's foreigner buffer (initial seeds and previously settled
	// walks). pendingMem[p][flushMark[p]:] are the foreigner-buffer
	// residents that a buffer overflow flushes to flash.
	flushMark         []int
	foreignerBufBytes int64

	// edgeFilter answers neighbor-membership queries for second-order
	// walks (nil otherwise); it lives in on-board DRAM. Static runs use a
	// plain bloom.Filter; dynamic runs use the counting variant below so
	// edge deletes can clear bits.
	edgeFilter edgeProber
	// edgeFilterC is the delete-capable filter behind edgeFilter on runs
	// with a mutation stream (nil otherwise).
	edgeFilterC *bloom.Counting
	// alias holds per-vertex alias tables when UseAliasSampling is set on
	// a biased run (nil otherwise).
	alias *walk.GraphAlias

	// Typed-event pools (events.go): walk nodes crossing event boundaries,
	// in-flight roving batches, and recycled walk batch buffers.
	nodes     []wnode
	freeNode  int32
	batches   []walkBatch
	freeBatch int32
	wbufs     [][]wstate

	// Batched update kernel scratch (batch.go): the locality sorter and the
	// per-batch outcome/classification buffers. All engine-owned so the
	// steady state stays allocation-free; empty between events, so
	// snapshots never need to capture them.
	bsort      batchSorter
	batchOuts  []hopOutcome
	chanGuides []chanGuide

	// Flushed-foreigner read-back in flight during a partition switch.
	switchLeft  int
	switchWalks []wstate

	curPart   int
	activeCur int // walks of the current partition inside the system
	remaining int // walks not yet finished anywhere
	finished  bool
	failure   error
	audit     bool

	res Result

	slotsPerChip int
	slotCapWalks int
	walksPerPage int

	flushChipRR int // round-robin chip cursor for board-side flushes

	maxSimTime sim.Time
	tracer     trace.Tracer

	onProgress func(Progress)
	checkEvery uint64

	onSnapshot func(*Snapshot)
	snapEvery  uint64
	lastSnap   uint64

	// Completed-walk export (export.go); unused in array boards, which
	// export through the shared Array instead.
	onWalks   func([]WalkDone)
	emitEvery uint64
	exportBuf []WalkDone

	// started flips when RunContext performs the one-time launch work
	// (hot-subgraph preload, channel ticks, first partition). A resumed
	// engine starts with it set: the launch events are already in the
	// restored heap.
	started bool

	rootRNG *rng.RNG

	// inj is the fault injector (nil unless Cfg.Faults.Enabled); degraded
	// mirrors the injector's sticky per-chip flags for the router's fast
	// path, and is nil when injection is off.
	inj      *fault.Injector
	degraded []bool

	// arr/boardID tie a board engine into a multi-board array (nil/0 in
	// single-board runs, the unchanged classic path). An array board shares
	// the array's sim.Engine, owns only its shard's partitions, and hands
	// foreigners bound for other shards to the array's fabric.
	arr     *Array
	boardID int

	// Mutation stream state (mutate.go). muts is the full stream;
	// mutCursor is the next unapplied index (At == 0 prefix already applied
	// at construction). In arrays the Array drives application fleet-wide
	// and mirrors its cursor onto every board. initVertices/initEdges are
	// the graph's pre-mutation counts — the identity a snapshot records,
	// since a resumed run rebuilds from the initial graph and replays.
	muts         graph.MutationStream
	mutCursor    int
	initVertices uint64
	initEdges    uint64
}

// edgeProber is the membership-probe interface shared by the static and
// counting edge Bloom filters; both answer bit-identically over the same
// edge multiset.
type edgeProber interface {
	Contains(key uint64) bool
}

// progress snapshots the engine's headline counters. Only called from the
// simulation goroutine at event boundaries, so the reads are consistent.
func (e *Engine) progress() Progress {
	return Progress{
		Now:               e.eng.Now(),
		Events:            e.eng.Processed(),
		Started:           e.res.Started,
		Completed:         e.res.Completed,
		DeadEnded:         e.res.DeadEnded,
		Hops:              e.res.Hops,
		PartitionSwitches: e.res.PartitionSwitches,
	}
}

// emit sends a trace event if tracing is enabled.
func (e *Engine) emit(kind trace.Kind, a, b int64) {
	if e.tracer != nil {
		e.tracer.Emit(trace.Event{At: e.eng.Now(), Kind: kind, A: a, B: b})
	}
}

// NewEngine builds a FlashWalker instance over the graph. The walks start
// at numWalks uniformly random vertices drawn from startSeed.
func NewEngine(g *graph.Graph, rc RunConfig) (*Engine, error) {
	if rc.Cfg.Boards > 1 {
		return nil, fmt.Errorf("core: Boards=%d needs the array engine (NewArray): %w", rc.Cfg.Boards, errs.ErrInvalidConfig)
	}
	e, err := newEngine(g, rc)
	if err != nil {
		return nil, err
	}
	if len(rc.Starts) > 0 {
		for _, v := range rc.Starts {
			if v >= g.NumVertices() {
				return nil, fmt.Errorf("core: start vertex %d out of range: %w", v, errs.ErrInvalidConfig)
			}
		}
		e.seedWalksFrom(rc.Starts, rc.NumWalks)
	} else {
		e.seedWalksFrom(walk.UniformStarts(e.g, rc.NumWalks, rc.StartSeed), rc.NumWalks)
	}
	return e, nil
}

// newEngine builds the engine skeleton — devices, accelerators, pools —
// without seeding any walks. NewEngine seeds a fresh workload on top;
// ResumeEngine overlays a snapshot's state instead. A mutation stream is
// validated here, the graph is cloned (callers keep their Graph pristine),
// and the At == 0 prefix is applied before the accelerators are built so
// hot-subgraph selection sees the patched degree sums.
func newEngine(g *graph.Graph, rc RunConfig) (*Engine, error) {
	g, err := cloneForMutations(g, rc)
	if err != nil {
		return nil, err
	}
	part, err := partition.Partition(g, rc.PartCfg)
	if err != nil {
		return nil, err
	}
	prefix, err := applyMutationPrefix(g, part, rc.Mutations)
	if err != nil {
		return nil, err
	}
	e, err := newEngineOn(sim.New(), g, rc, part, prefix)
	if err != nil {
		return nil, err
	}
	e.res.MutationsApplied = uint64(prefix)
	return e, nil
}

// newEngineOn is newEngine over a caller-supplied event kernel and
// partitioning: the array layer builds N board engines on one shared
// sim.Engine so the whole fleet drains a single timeline. mutCursor is the
// already-applied prefix of rc.Mutations — the caller (newEngine, newArray)
// has patched g and part up to it, and derived indexes built here (edge
// filter, alias tables) are built over the patched graph, which is
// bit-identical to building them initial-then-incrementally.
func newEngineOn(eng *sim.Engine, g *graph.Graph, rc RunConfig, part *partition.Partitioned, mutCursor int) (*Engine, error) {
	if err := rc.Cfg.Validate(); err != nil {
		return nil, err
	}
	if err := rc.Spec.Validate(g); err != nil {
		return nil, err
	}
	if rc.NumWalks <= 0 {
		return nil, fmt.Errorf("core: NumWalks %d <= 0: %w", rc.NumWalks, errs.ErrInvalidConfig)
	}
	ssd, err := flash.New(eng, rc.FlashCfg)
	if err != nil {
		return nil, err
	}
	dr, err := dram.New(eng, rc.DRAMCfg)
	if err != nil {
		return nil, err
	}
	place, err := partition.NewPlacement(part, rc.FlashCfg.Channels, rc.FlashCfg.ChipsPerChannel)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		eng:   eng,
		cfg:   rc.Cfg,
		ssd:   ssd,
		dr:    dr,
		g:     g,
		part:  part,
		place: place,
		spec:  rc.Spec,

		pwb:       make([][]wstate, part.NumBlocks()),
		pwbBytes:  make([]int64, part.NumBlocks()),
		fls:       make([][]wstate, part.NumBlocks()),
		flsPages:  make([]int, part.NumBlocks()),
		score:     make([]float64, part.NumBlocks()),
		scorePend: make([]int, part.NumBlocks()),
		blockPos:  make([]int32, part.NumBlocks()),

		pendingMem:        make([][]wstate, part.NumPartitions),
		pendingFlash:      make([][]wstate, part.NumPartitions),
		pendingFlashBytes: make([]int64, part.NumPartitions),
		flushMark:         make([]int, part.NumPartitions),

		freeNode:   -1,
		freeBatch:  -1,
		curPart:    -1,
		maxSimTime: rc.MaxSimTime,
		tracer:     rc.Tracer,
		audit:      rc.Audit,
		onProgress: rc.OnProgress,
		checkEvery: rc.CheckpointEvery,
		onSnapshot: rc.OnSnapshot,
		snapEvery:  rc.SnapshotEvery,
		onWalks:    rc.OnWalks,
		emitEvery:  rc.EmitEvery,
		rootRNG:    rng.New(rc.Cfg.Seed),

		muts:         rc.Mutations,
		mutCursor:    mutCursor,
		initVertices: g.NumVertices(),
		initEdges: uint64(int64(g.NumEdges()) -
			(rc.Mutations.NetEdges(0) - rc.Mutations.NetEdges(mutCursor))),
	}
	if e.checkEvery == 0 {
		e.checkEvery = DefaultCheckpointEvery
	}
	if e.emitEvery == 0 {
		e.emitEvery = DefaultEmitEvery
	}
	if rc.Cfg.Faults.Enabled {
		e.inj = fault.NewInjector(rc.Cfg.Faults, ssd.NumChips())
		e.inj.OnDegrade = e.chipDegraded
		e.degraded = make([]bool, ssd.NumChips())
		ssd.AttachFaults(e.inj)
	}

	for i := range e.blockPos {
		e.blockPos[i] = -1
	}
	e.slotsPerChip = int(rc.Cfg.ChipSubgraphBufBytes / rc.PartCfg.BlockBytes)
	if e.slotsPerChip < 1 {
		e.slotsPerChip = 1
	}
	e.slotCapWalks = int(rc.Cfg.ChipWalkQueueBytes / walk.StateBytes / int64(e.slotsPerChip))
	if e.slotCapWalks < 1 {
		e.slotCapWalks = 1
	}
	e.walksPerPage = int(rc.FlashCfg.PageBytes / walk.StateBytes)
	if e.walksPerPage < 1 {
		e.walksPerPage = 1
	}

	if rc.TrackVisits {
		e.res.Visits = make([]uint64, g.NumVertices())
	}
	if rc.Spec.Kind == walk.SecondOrder {
		if len(rc.Mutations) > 0 {
			// Size for the edge count after the whole stream: identical
			// geometry to the plain filter a run over the fully mutated
			// graph would build, so probe answers — and trajectories —
			// match the rebuild leg of the metamorphic tests.
			final := int(int64(g.NumEdges())+rc.Mutations.NetEdges(mutCursor)) + 1
			e.edgeFilterC = partition.EdgeFilterCounting(g, 0.01, final)
			e.edgeFilter = e.edgeFilterC
		} else {
			e.edgeFilter = partition.EdgeFilter(g, 0.01)
		}
	}
	if rc.UseAliasSampling {
		if rc.Spec.Kind != walk.Biased {
			return nil, fmt.Errorf("core: alias sampling only applies to biased walks: %w", errs.ErrInvalidConfig)
		}
		ga, err := walk.NewGraphAlias(g)
		if err != nil {
			return nil, err
		}
		e.alias = ga
	}
	if rc.ProgressBin > 0 {
		ssd.ReadTS = metrics.NewTimeSeries(rc.ProgressBin)
		ssd.WriteTS = metrics.NewTimeSeries(rc.ProgressBin)
		ssd.ChannelTS = metrics.NewTimeSeries(rc.ProgressBin)
		e.res.ReadTS = ssd.ReadTS
		e.res.WriteTS = ssd.WriteTS
		e.res.ChannelTS = ssd.ChannelTS
		e.res.ProgressTS = metrics.NewTimeSeries(rc.ProgressBin)
	}

	e.buildAccelerators()
	return e, nil
}

// Run executes the simulation to completion and returns the result.
//
// Deprecated: use RunContext, which supports cancellation and live
// progress. Run is RunContext with a background context.
func (e *Engine) Run() (*Result, error) {
	return e.RunContext(context.Background())
}

// RunContext executes the simulation until every walk finishes or ctx is
// canceled. Cancellation is cooperative: the event kernel checks ctx at
// checkpoint boundaries (every CheckpointEvery events, never mid-event), so
// the simulated timeline of an uncanceled run is bit-identical to Run. On
// cancellation it returns the partial Result accumulated so far together
// with an error satisfying errors.Is(err, errs.ErrCanceled); the Result's
// counters are a consistent snapshot at the halting event boundary.
func (e *Engine) RunContext(ctx context.Context) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if ctx.Done() != nil || e.onProgress != nil || e.onSnapshot != nil {
		e.eng.SetCheckpoint(e.checkEvery, func() bool {
			if e.onProgress != nil {
				e.onProgress(e.progress())
			}
			if e.onSnapshot != nil && e.eng.Processed()-e.lastSnap >= e.snapEvery {
				// Flush exported walks first so a consumer persisting both
				// never sees a snapshot ahead of its walk records.
				e.flushWalks()
				// Snapshots are pure reads of engine state between events;
				// a build error means setup closures are still draining, so
				// just try again at a later checkpoint.
				if snap, err := e.buildSnapshot(); err == nil {
					e.lastSnap = e.eng.Processed()
					e.onSnapshot(snap)
				}
			}
			return ctx.Err() == nil
		})
		defer e.eng.ClearCheckpoint()
	}
	if e.onWalks != nil {
		e.eng.SetEmitter(e.emitEvery, e.flushWalks)
		defer e.eng.ClearEmitter()
	}
	if e.mutCursor < len(e.muts) {
		e.eng.SetApplier(e.applyMutations)
		defer e.eng.ClearApplier()
	}
	e.launch()
	if e.maxSimTime > 0 {
		e.eng.RunUntil(e.maxSimTime)
	} else {
		e.eng.Run()
	}
	e.flushWalks()
	if e.failure != nil {
		return nil, e.failure
	}
	e.res.Time = e.eng.Now()
	e.res.Flash = e.ssd.Counters
	e.res.DRAMReadBytes = e.dr.ReadBytes
	e.res.DRAMWriteBytes = e.dr.WriteBytes
	e.res.DRAMPortUtil = e.dr.Utilization()
	if e.inj != nil {
		e.res.Faults = e.inj.Counters
	}
	e.collectTierStats()
	if e.onProgress != nil {
		e.onProgress(e.progress())
	}
	if e.eng.Halted() {
		return &e.res, fmt.Errorf("core: run canceled at %v: %w", e.res.Time, &errs.Canceled{
			Op: "core", Finished: e.res.WalksFinished(), Total: e.res.Started, Cause: ctx.Err(),
		})
	}
	if e.remaining != 0 {
		if e.maxSimTime > 0 {
			return nil, fmt.Errorf("core: MaxSimTime %v exceeded with %d walks unfinished", e.maxSimTime, e.remaining)
		}
		return nil, fmt.Errorf("core: simulation drained with %d walks unfinished (activeCur=%d, partition=%d)",
			e.remaining, e.activeCur, e.curPart)
	}
	return &e.res, nil
}

// collectTierStats folds every tier's utilization snapshot into the result
// (averages and maxima per level) plus the channel-bus peak.
func (e *Engine) collectTierStats() {
	var chipU, chipMax, chanGU float64
	var nChip, nChan int
	for _, t := range e.tiers {
		st := t.Stats()
		switch st.Level {
		case tierChip:
			nChip++
			chipU += st.UpdaterUtil
			if st.UpdaterUtil > chipMax {
				chipMax = st.UpdaterUtil
			}
		case tierChannel:
			nChan++
			chanGU += st.GuiderUtil
		case tierBoard:
			e.res.BoardGuiderUtil = st.GuiderUtil
		}
	}
	if nChip > 0 {
		e.res.ChipUpdaterUtil = chipU / float64(nChip)
	}
	e.res.ChipUpdaterUtilMax = chipMax
	if nChan > 0 {
		e.res.ChannelGuiderUtil = chanGU / float64(nChan)
	}
	var busMax float64
	for _, ca := range e.chans {
		if u := ca.channel.Bus.Utilization(); u > busMax {
			busMax = u
		}
	}
	e.res.ChannelBusUtilMax = busMax
}

// launch performs the one-time start-of-run work: the hot-subgraph preload,
// the periodic channel roving ticks, and the first partition dispatch. A
// board engine inside an array may legitimately start with no local walks —
// it idles (unfinished, ticks running) until the fabric delivers some.
func (e *Engine) launch() {
	if e.started {
		return
	}
	e.started = true
	e.preloadHotSubgraphs()
	for _, ca := range e.chans {
		ca.scheduleTick()
	}
	if !e.advancePartition() && e.arr == nil {
		e.finished = true
	}
}

// fail aborts the simulation with an error. A board engine inside an array
// fails the whole array: one inconsistent device invalidates the fleet run.
func (e *Engine) fail(err error) {
	if e.arr != nil {
		e.arr.fail(err)
		return
	}
	if e.failure == nil {
		e.failure = err
	}
	e.finished = true
}
