package core

import (
	"testing"

	"flashwalker/internal/dram"
	"flashwalker/internal/flash"
	"flashwalker/internal/graph"
	"flashwalker/internal/partition"
	"flashwalker/internal/sim"
	"flashwalker/internal/walk"
)

// testConfig returns a small, fast configuration: a 4-channel x 2-chip SSD,
// 1 KiB blocks, and accelerator buffers scaled to match.
func testConfig() RunConfig {
	fc := flash.Default()
	fc.Channels = 4
	fc.ChipsPerChannel = 2
	cfg := Default()
	cfg.ChipSubgraphBufBytes = 4 << 10 // 4 slots of 1 KiB
	cfg.ChannelSubgraphBufBytes = 8 << 10
	cfg.BoardSubgraphBufBytes = 16 << 10
	cfg.ChipWalkQueueBytes = 16 << 10
	cfg.PartitionWalkEntryBytes = 4 << 10
	cfg.Seed = 1
	return RunConfig{
		Cfg:      cfg,
		FlashCfg: fc,
		DRAMCfg:  dram.Default(),
		PartCfg: partition.Config{
			BlockBytes:            1 << 10,
			IDBytes:               4,
			SubgraphsPerPartition: 64,
			RangeSize:             8,
		},
		Spec:      walk.Spec{Kind: walk.Unbiased, Length: 6},
		NumWalks:  200,
		StartSeed: 7,
	}
}

func runEngine(t *testing.T, g *graph.Graph, rc RunConfig) *Result {
	t.Helper()
	e, err := NewEngine(g, rc)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.RMAT(graph.DefaultRMAT(2048, 16384, 3))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAllWalksFinish(t *testing.T) {
	g := testGraph(t)
	res := runEngine(t, g, testConfig())
	if res.WalksFinished() != res.Started {
		t.Fatalf("finished %d of %d walks", res.WalksFinished(), res.Started)
	}
	if res.Started != 200 {
		t.Fatalf("started %d", res.Started)
	}
	if res.Time <= 0 {
		t.Fatal("no simulated time elapsed")
	}
}

func TestHopConservation(t *testing.T) {
	// Every completed walk does exactly Length hops; dead-ended walks do
	// fewer. With dead ends possible, hops <= started*Length and
	// hops >= completed*Length.
	g := testGraph(t)
	rc := testConfig()
	res := runEngine(t, g, rc)
	maxHops := uint64(res.Started) * uint64(rc.Spec.Length)
	minHops := uint64(res.Completed) * uint64(rc.Spec.Length)
	if res.Hops > maxHops || res.Hops < minHops {
		t.Fatalf("hops %d outside [%d, %d] (completed=%d dead=%d)",
			res.Hops, minHops, maxHops, res.Completed, res.DeadEnded)
	}
}

func TestNoDeadEndsOnRing(t *testing.T) {
	g := graph.Ring(512)
	rc := testConfig()
	res := runEngine(t, g, rc)
	if res.DeadEnded != 0 {
		t.Fatalf("%d dead ends on a ring", res.DeadEnded)
	}
	if res.Completed != res.Started {
		t.Fatalf("completed %d of %d", res.Completed, res.Started)
	}
	if res.Hops != uint64(res.Started)*6 {
		t.Fatalf("hops = %d, want %d", res.Hops, res.Started*6)
	}
}

func TestDeterminism(t *testing.T) {
	g := testGraph(t)
	rc := testConfig()
	a := runEngine(t, g, rc)
	b := runEngine(t, g, rc)
	if a.Time != b.Time {
		t.Fatalf("times differ: %v vs %v", a.Time, b.Time)
	}
	if a.Hops != b.Hops || a.Completed != b.Completed {
		t.Fatal("walk outcomes differ between identical runs")
	}
	if a.Flash.ReadBytes != b.Flash.ReadBytes || a.Flash.ChannelBytes != b.Flash.ChannelBytes {
		t.Fatal("traffic differs between identical runs")
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	g := testGraph(t)
	rc := testConfig()
	a := runEngine(t, g, rc)
	rc.Cfg.Seed = 99
	b := runEngine(t, g, rc)
	if a.Hops == b.Hops && a.Time == b.Time && a.Flash.ReadBytes == b.Flash.ReadBytes {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestFlashTrafficRecorded(t *testing.T) {
	g := testGraph(t)
	res := runEngine(t, g, testConfig())
	if res.Flash.ReadBytes == 0 {
		t.Fatal("no flash reads recorded")
	}
	if res.SubgraphLoads == 0 {
		t.Fatal("no subgraph loads recorded")
	}
	if res.ChipUpdates == 0 {
		t.Fatal("no chip updates recorded")
	}
}

func TestBaselineOptionsWork(t *testing.T) {
	g := testGraph(t)
	rc := testConfig()
	rc.Cfg.Opts = Options{} // no WQ, no HS, no SS
	res := runEngine(t, g, rc)
	if res.WalksFinished() != res.Started {
		t.Fatalf("baseline finished %d of %d", res.WalksFinished(), res.Started)
	}
	if res.QueryCacheHits+res.QueryCacheMisses != 0 {
		t.Fatal("query cache used with WQ disabled")
	}
	if res.HotHitsBoard+res.HotHitsChannel != 0 {
		t.Fatal("hot subgraphs used with HS disabled")
	}
	if res.RangeQueries != 0 {
		t.Fatal("range queries with WQ disabled")
	}
}

func TestEachOptionIndividually(t *testing.T) {
	g := testGraph(t)
	for _, opts := range []Options{
		{WalkQuery: true},
		{HotSubgraphs: true},
		{SmartSchedule: true},
		AllOptions(),
	} {
		rc := testConfig()
		rc.Cfg.Opts = opts
		res := runEngine(t, g, rc)
		if res.WalksFinished() != res.Started {
			t.Fatalf("opts %+v: finished %d of %d", opts, res.WalksFinished(), res.Started)
		}
	}
}

func TestWalkQueryCacheUsed(t *testing.T) {
	g := testGraph(t)
	rc := testConfig()
	res := runEngine(t, g, rc)
	if res.QueryCacheHits+res.QueryCacheMisses == 0 {
		t.Skip("no roving walks reached the board (tiny run)")
	}
	if res.QueryCacheHitRate() <= 0 {
		t.Fatal("query cache never hit")
	}
}

func TestDenseVertexPreWalking(t *testing.T) {
	// A star with a hub too big for one block forces pre-walking: every
	// spoke->hub hop routes through the dense table.
	g := graph.Star(2000) // hub degree 2000 > 1KiB/4B edges per block
	rc := testConfig()
	rc.NumWalks = 100
	res := runEngine(t, g, rc)
	if res.WalksFinished() != res.Started {
		t.Fatalf("finished %d of %d", res.WalksFinished(), res.Started)
	}
	if res.PreWalks == 0 {
		t.Fatal("no pre-walks on a dense-hub graph")
	}
}

func TestBiasedWalks(t *testing.T) {
	cfg := graph.DefaultRMAT(1024, 8192, 5)
	cfg.Weighted = true
	g, err := graph.RMAT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rc := testConfig()
	rc.Spec = walk.Spec{Kind: walk.Biased, Length: 6}
	res := runEngine(t, g, rc)
	if res.WalksFinished() != res.Started {
		t.Fatalf("biased finished %d of %d", res.WalksFinished(), res.Started)
	}
}

func TestRestartWalks(t *testing.T) {
	g := graph.Complete(256)
	rc := testConfig()
	rc.Spec = walk.Spec{Kind: walk.Restart, Length: 100, StopProb: 0.25}
	rc.NumWalks = 300
	res := runEngine(t, g, rc)
	if res.Completed != res.Started {
		t.Fatalf("restart completed %d of %d", res.Completed, res.Started)
	}
	// Mean geometric(0.25) length is 4; with 300 walks the total should be
	// nowhere near the 100-hop cap.
	if res.Hops > uint64(res.Started)*20 {
		t.Fatalf("restart walks too long: %d hops", res.Hops)
	}
}

func TestMultiplePartitions(t *testing.T) {
	g := testGraph(t)
	rc := testConfig()
	rc.PartCfg.SubgraphsPerPartition = 8 // force many partitions
	res := runEngine(t, g, rc)
	if res.WalksFinished() != res.Started {
		t.Fatalf("finished %d of %d", res.WalksFinished(), res.Started)
	}
	if res.PartitionSwitches < 2 {
		t.Fatalf("only %d partition switches", res.PartitionSwitches)
	}
	if res.ForeignerWalks == 0 {
		t.Fatal("no foreigners despite many partitions")
	}
}

func TestForeignerFlushing(t *testing.T) {
	g := testGraph(t)
	rc := testConfig()
	rc.PartCfg.SubgraphsPerPartition = 8
	rc.Cfg.ForeignerBufBytes = 256 // tiny: force flushes
	rc.NumWalks = 500
	res := runEngine(t, g, rc)
	if res.WalksFinished() != res.Started {
		t.Fatalf("finished %d of %d", res.WalksFinished(), res.Started)
	}
	if res.ForeignerFlushes == 0 {
		t.Fatal("tiny foreigner buffer never flushed")
	}
	if res.Flash.WriteBytes == 0 {
		t.Fatal("foreigner flushes wrote nothing")
	}
}

func TestPWBOverflow(t *testing.T) {
	g := testGraph(t)
	rc := testConfig()
	rc.Cfg.PartitionWalkEntryBytes = 64 // ~3 walks per entry
	rc.NumWalks = 1000
	res := runEngine(t, g, rc)
	if res.WalksFinished() != res.Started {
		t.Fatalf("finished %d of %d", res.WalksFinished(), res.Started)
	}
	if res.PWBOverflows == 0 {
		t.Fatal("tiny walk buffer entries never overflowed")
	}
}

func TestProgressTimeSeries(t *testing.T) {
	g := testGraph(t)
	rc := testConfig()
	rc.ProgressBin = 100 * sim.Microsecond
	res := runEngine(t, g, rc)
	if res.ProgressTS == nil || res.ReadTS == nil {
		t.Fatal("time series not attached")
	}
	if int(res.ProgressTS.Total()) != res.WalksFinished() {
		t.Fatalf("progress total %v != finished %d", res.ProgressTS.Total(), res.WalksFinished())
	}
	if res.ReadTS.Total() != float64(res.Flash.ReadBytes) {
		t.Fatalf("read TS %v != counter %d", res.ReadTS.Total(), res.Flash.ReadBytes)
	}
}

func TestNewEngineRejectsBadInput(t *testing.T) {
	g := testGraph(t)
	rc := testConfig()
	rc.NumWalks = 0
	if _, err := NewEngine(g, rc); err == nil {
		t.Fatal("zero walks accepted")
	}
	rc = testConfig()
	rc.Spec.Length = 0
	if _, err := NewEngine(g, rc); err == nil {
		t.Fatal("invalid spec accepted")
	}
	rc = testConfig()
	rc.Cfg.OpsPerUpdate = 0
	if _, err := NewEngine(g, rc); err == nil {
		t.Fatal("invalid core config accepted")
	}
	rc = testConfig()
	rc.FlashCfg.Channels = 0
	if _, err := NewEngine(g, rc); err == nil {
		t.Fatal("invalid flash config accepted")
	}
	rc = testConfig()
	rc.PartCfg.BlockBytes = 0
	if _, err := NewEngine(g, rc); err == nil {
		t.Fatal("invalid partition config accepted")
	}
}

func TestMaxSimTimeAborts(t *testing.T) {
	g := testGraph(t)
	rc := testConfig()
	rc.NumWalks = 2000
	rc.MaxSimTime = 1 * sim.Microsecond // far too short
	e, err := NewEngine(g, rc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err == nil {
		t.Fatal("run exceeding MaxSimTime did not error")
	}
}

func TestRovingWalksMove(t *testing.T) {
	g := testGraph(t)
	res := runEngine(t, g, testConfig())
	if res.RovingTransfers == 0 || res.RovingWalks == 0 {
		t.Fatal("no roving traffic on a multi-block graph")
	}
	if res.Flash.ChannelBytes == 0 {
		t.Fatal("no channel-bus traffic")
	}
}

func TestHotSubgraphsAbsorbWalks(t *testing.T) {
	// A heavily skewed graph whose hot blocks fit in the channel/board
	// buffers should see hot hits.
	g, err := graph.PowerLaw(graph.PowerLawConfig{NumVertices: 1024, NumEdges: 16384, Alpha: 1.2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rc := testConfig()
	rc.NumWalks = 500
	res := runEngine(t, g, rc)
	if res.HotHitsChannel+res.HotHitsBoard == 0 {
		t.Fatal("no hot-subgraph hits on a skewed graph")
	}
}

func TestUtilizationsInRange(t *testing.T) {
	g := testGraph(t)
	res := runEngine(t, g, testConfig())
	for name, u := range map[string]float64{
		"chipUpd":    res.ChipUpdaterUtil,
		"chipUpdMax": res.ChipUpdaterUtilMax,
		"chanGuider": res.ChannelGuiderUtil,
		"boardGuide": res.BoardGuiderUtil,
		"busMax":     res.ChannelBusUtilMax,
		"dram":       res.DRAMPortUtil,
	} {
		if u < 0 || u > 1 {
			t.Fatalf("%s utilization %v outside [0,1]", name, u)
		}
	}
}

func TestSmallGraphSingleBlock(t *testing.T) {
	// A graph that fits in one block: no roving, no foreigners.
	g := graph.Ring(32)
	rc := testConfig()
	rc.NumWalks = 50
	res := runEngine(t, g, rc)
	if res.WalksFinished() != res.Started {
		t.Fatalf("finished %d of %d", res.WalksFinished(), res.Started)
	}
	if res.ForeignerWalks != 0 {
		t.Fatalf("foreigners on a single-block graph: %d", res.ForeignerWalks)
	}
}

func TestHopRateAndHitRateHelpers(t *testing.T) {
	r := &Result{Hops: 100, Time: sim.Second}
	if r.HopRate() != 100 {
		t.Fatal("HopRate")
	}
	r2 := &Result{}
	if r2.HopRate() != 0 || r2.QueryCacheHitRate() != 0 {
		t.Fatal("zero-value helpers")
	}
	r3 := &Result{QueryCacheHits: 3, QueryCacheMisses: 1}
	if r3.QueryCacheHitRate() != 0.75 {
		t.Fatal("hit rate")
	}
}
