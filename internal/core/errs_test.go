package core

import (
	"errors"
	"testing"

	"flashwalker/internal/errs"
	"flashwalker/internal/sim"
)

// Every Validate rejection must classify as ErrInvalidConfig so callers
// can distinguish bad input from simulation failures without string
// matching.
func TestConfigValidateWrapsInvalidConfig(t *testing.T) {
	cases := map[string]func(*Config){
		"zero cycle":    func(c *Config) { c.ChipUpdaterCycle = 0 },
		"zero units":    func(c *Config) { c.BoardGuiders = 0 },
		"zero buffer":   func(c *Config) { c.ChipSubgraphBufBytes = 0 },
		"bad alpha":     func(c *Config) { c.Alpha = -1 },
		"negative time": func(c *Config) { c.LoadIdleDelay = -sim.Nanosecond },
	}
	for name, mutate := range cases {
		cfg := Default()
		mutate(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if !errors.Is(err, errs.ErrInvalidConfig) {
			t.Errorf("%s: error %v does not wrap ErrInvalidConfig", name, err)
		}
	}
	if err := Default().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}
