package core

import "flashwalker/internal/sim"

// This file is the engine's typed-event layer. Every steady-state
// continuation the accelerator tiers used to express as a captured closure
// is now a sim.Event targeting the Engine, dispatched through the jump
// table in HandleEvent. The walk being carried across the event boundary
// lives in a pooled wnode addressed by the event's A payload, so the hop
// path performs no allocation once the pools are warm.
//
// Ownership rule: a wnode holds a walk only across a single event boundary
// (dispatch -> completion). The durable stores (pwb, fls, roving, pending
// lists, slot load buffers) hold walk values, never node references, so a
// node is always freed inside the handler that consumes it — before any
// re-routing that might claim a fresh node.

// Core event kinds (private to Engine.HandleEvent; the sim and flash
// layers each have their own kind space behind their own Handlers).
const (
	evChipRoute      uint16 = iota // chip guider done (or stall retry): route walk at chip
	evChipUpdateDone               // chip updater done: apply hop outcome to slot
	evTierUpdateDone               // channel/board updater done (shared hot pipeline)
	evChanGuided                   // channel guider done: apply classification
	evChanBatch                    // roving batch crossed the channel bus
	evChanTick                     // periodic roving fetch
	evBoardGuided                  // board guider done: maybe hit the table port
	evBoardPortDone                // mapping-table port access done: route
	evSlotRetry                    // deferred-load timer fired
	evLoadPart                     // one gating part of a slot load finished
	evSwitchPage                   // one flushed-foreigner page read back
)

// wnode carries one walk (plus per-event scratch) across an event boundary.
type wnode struct {
	st       wstate
	prevSize int64 // tier update: queueBytes claimed at dispatch
	hot      int32 // channel guide: hot block, -1 none
	foreign  int32 // guide: destination partition when leaving, -1 none
	rangeID  int32 // channel guide: approximate-search range tag
	block    int32 // board guide: destination block, -1 none
	steps    int32 // board guide: mapping-table port steps
	terminal bool  // update: walk finished
	deadEnd  bool  // update: finished at a zero-degree vertex
	free     int32 // free-list link
}

// newNode claims a pooled node.
func (e *Engine) newNode() (int32, *wnode) {
	var ref int32
	if e.freeNode >= 0 {
		ref = e.freeNode
		e.freeNode = e.nodes[ref].free
	} else {
		e.nodes = append(e.nodes, wnode{})
		ref = int32(len(e.nodes) - 1)
	}
	n := &e.nodes[ref]
	*n = wnode{free: -1}
	return ref, n
}

// node resolves a reference. The pointer is only valid until the next
// newNode call (the backing array may grow).
func (e *Engine) node(ref int32) *wnode { return &e.nodes[ref] }

// freeNodeRef recycles a node.
func (e *Engine) freeNodeRef(ref int32) {
	e.nodes[ref] = wnode{free: e.freeNode}
	e.freeNode = ref
}

// getWalkBuf hands out a recycled walk batch buffer (len 0).
func (e *Engine) getWalkBuf() []wstate {
	if n := len(e.wbufs); n > 0 {
		b := e.wbufs[n-1]
		e.wbufs[n-1] = nil
		e.wbufs = e.wbufs[:n-1]
		return b
	}
	return make([]wstate, 0, 16)
}

// putWalkBuf recycles a batch buffer once its walks have been handed on.
func (e *Engine) putWalkBuf(b []wstate) {
	if b == nil {
		return
	}
	e.wbufs = append(e.wbufs, b[:0])
}

// walkBatch is an in-flight roving batch crossing a channel bus.
type walkBatch struct {
	walks []wstate
	free  int32
}

// newBatch parks a roving batch for the duration of its bus transfer.
func (e *Engine) newBatch(walks []wstate) int32 {
	var ref int32
	if e.freeBatch >= 0 {
		ref = e.freeBatch
		e.freeBatch = e.batches[ref].free
	} else {
		e.batches = append(e.batches, walkBatch{})
		ref = int32(len(e.batches) - 1)
	}
	e.batches[ref] = walkBatch{walks: walks, free: -1}
	return ref
}

// takeBatch releases a batch record, returning its walks.
func (e *Engine) takeBatch(ref int32) []wstate {
	walks := e.batches[ref].walks
	e.batches[ref] = walkBatch{free: e.freeBatch}
	e.freeBatch = ref
	return walks
}

// HandleEvent is the engine's event jump table. A carries a wnode or batch
// reference, B an accelerator index, C a slot index — per kind. It is
// exported only to satisfy sim.Handler.
func (e *Engine) HandleEvent(ev sim.Event) {
	switch ev.Kind {
	case evChipRoute:
		c := e.chips[ev.B]
		st := e.node(ev.A).st
		e.freeNodeRef(ev.A)
		c.route(st)

	case evChipUpdateDone:
		c := e.chips[ev.B]
		s := c.slots[ev.C]
		n := e.node(ev.A)
		st, terminal, deadEnd := n.st, n.terminal, n.deadEnd
		e.freeNodeRef(ev.A)
		c.finishUpdate(s, st, terminal, deadEnd)

	case evTierUpdateDone:
		var t *tierCommon
		if ev.B >= 0 {
			t = &e.chans[ev.B].tierCommon
		} else {
			t = &e.board.tierCommon
		}
		n := e.node(ev.A)
		st, size, terminal, deadEnd := n.st, n.prevSize, n.terminal, n.deadEnd
		e.freeNodeRef(ev.A)
		t.finishHotUpdate(st, size, terminal, deadEnd)

	case evChanGuided:
		ca := e.chans[ev.B]
		n := e.node(ev.A)
		st, hot, foreign, rangeID := n.st, n.hot, n.foreign, n.rangeID
		e.freeNodeRef(ev.A)
		ca.applyGuide(st, hot, foreign, rangeID)

	case evChanBatch:
		batch := e.takeBatch(ev.A)
		ca := e.chans[ev.B]
		if len(batch) > 1 && !e.cfg.DisableBatchKernel {
			ca.guideBatch(batch)
		} else {
			for i := range batch {
				ca.Guide(batch[i])
			}
		}
		e.putWalkBuf(batch)

	case evChanTick:
		ca := e.chans[ev.B]
		ca.tick()
		ca.scheduleTick()

	case evBoardGuided:
		n := e.node(ev.A)
		if n.steps > 0 {
			b := e.board
			port := b.ports[b.portRR]
			b.portRR = (b.portRR + 1) % len(b.ports)
			port.AcquireEvent(simTime(int(n.steps))*b.guiderCycle,
				sim.Event{Target: e, Kind: evBoardPortDone, A: ev.A})
			return
		}
		e.routeBoardNode(ev.A)

	case evBoardPortDone:
		e.routeBoardNode(ev.A)

	case evSlotRetry:
		c := e.chips[ev.B]
		s := c.slots[ev.C]
		if s.defers > 0 && !s.loading && s.pending == 0 {
			c.scheduleSlot(s)
		}

	case evLoadPart:
		e.chips[ev.B].loadPartDone(e.chips[ev.B].slots[ev.C])

	case evSwitchPage:
		e.switchLeft--
		if e.switchLeft == 0 {
			ws := e.switchWalks
			e.switchWalks = nil
			for i := range ws {
				e.board.Guide(ws[i])
			}
			e.putWalkBuf(ws)
		}

	default:
		panic("core: unknown event kind")
	}
}

// routeBoardNode applies a board classification parked in a node.
func (e *Engine) routeBoardNode(ref int32) {
	n := e.node(ref)
	d := routeDecision{st: n.st, blockID: int(n.block), foreignPart: int(n.foreign)}
	e.freeNodeRef(ref)
	e.board.route(d)
}
