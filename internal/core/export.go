package core

import (
	"flashwalker/internal/graph"
	"flashwalker/internal/sim"
)

// Completed-walk export: a streaming observer over walk retirement.
//
// When RunConfig.OnWalks is set, every finished walk (completed or
// dead-ended) is appended to an engine-owned buffer at the instant
// finishWalk retires it, and the buffer is handed to the callback in
// batches — at emitter boundaries (sim.SetEmitter, every EmitEvery
// processed events, strictly between events), immediately before every
// snapshot delivery, and once more when the run ends. Appending to the
// buffer is the only work done on the hot path, the callback itself only
// ever runs between events, and nothing here touches the clock or the
// schedule, so an exported run's timeline is bit-identical to an
// unexported one — the same pure-observer contract as the checkpoint hook.
//
// Records carry a walk sequence number assigned in finish order. Finish
// order is a pure function of the simulated timeline, which is
// deterministic, so sequence numbers are stable across runs; and because
// snapshots capture the finished-walk counters (single engine) or the
// per-board counters (array), a resumed run continues the numbering
// exactly where the snapshot cut it. Flushing the export buffer before
// every snapshot delivery means a consumer that persists both sees every
// record below a snapshot's finished count before it sees the snapshot —
// a crash-recovered consumer never has a gap.

// WalkDone is one finished walk, exported in retirement order.
type WalkDone struct {
	// Seq is the walk's position in the run's finish order, starting at 0.
	// Deterministic for a given workload, continuous across snapshot/resume.
	Seq uint64
	// Src and End are the walk's start vertex and final vertex.
	Src graph.VertexID
	End graph.VertexID
	// Hops is the number of hops actually taken.
	Hops uint32
	// DeadEnd marks a walk that stopped at a vertex with no outgoing edge
	// before reaching its configured length.
	DeadEnd bool
	// At is the simulated time the walk retired.
	At sim.Time
}

// DefaultEmitEvery is the default event interval between OnWalks deliveries.
const DefaultEmitEvery = 1024

// exportWalk appends the just-retired walk to the single-engine export
// buffer. Called from finishWalk after the result counters were bumped, so
// the finish-order sequence number is counters-1.
func (e *Engine) exportWalk(st *wstate, completed bool) {
	e.exportBuf = append(e.exportBuf, WalkDone{
		Seq:     uint64(e.res.Completed+e.res.DeadEnded) - 1,
		Src:     st.w.Src,
		End:     st.w.Cur,
		Hops:    e.spec.Length - st.w.Hop,
		DeadEnd: !completed,
		At:      e.eng.Now(),
	})
}

// flushWalks delivers the buffered records to the OnWalks callback and
// resets the buffer. The slice is reused between deliveries; the callback
// must copy anything it keeps.
func (e *Engine) flushWalks() {
	if e.onWalks == nil || len(e.exportBuf) == 0 {
		return
	}
	e.onWalks(e.exportBuf)
	e.exportBuf = e.exportBuf[:0]
}

// exportWalk is the array-side twin: boards share one fleet-wide finish
// sequence so the stream a consumer sees is a single total order, exactly
// like the single-engine one.
func (a *Array) exportWalk(e *Engine, st *wstate, completed bool) {
	a.exportBuf = append(a.exportBuf, WalkDone{
		Seq:     a.finSeq,
		Src:     st.w.Src,
		End:     st.w.Cur,
		Hops:    e.spec.Length - st.w.Hop,
		DeadEnd: !completed,
		At:      a.eng.Now(),
	})
	a.finSeq++
}

// flushWalks delivers the array's buffered records (see Engine.flushWalks).
func (a *Array) flushWalks() {
	if a.onWalks == nil || len(a.exportBuf) == 0 {
		return
	}
	a.onWalks(a.exportBuf)
	a.exportBuf = a.exportBuf[:0]
}
