package core

import (
	"context"
	"testing"

	"flashwalker/internal/graph"
	"flashwalker/internal/walk"
)

// collectWalks returns an OnWalks callback that copies every delivered
// record (the engine reuses the batch slice) into *out.
func collectWalks(out *[]WalkDone) func([]WalkDone) {
	return func(recs []WalkDone) {
		*out = append(*out, recs...)
	}
}

// checkExport verifies the export invariants against the run's Result:
// finish-order seqs are exactly 0..n-1 in delivery order, the completed /
// dead-ended split matches, hop counts respect the spec, and retirement
// times never go backwards.
func checkExport(t *testing.T, recs []WalkDone, res *Result, spec walk.Spec) {
	t.Helper()
	if len(recs) != res.WalksFinished() {
		t.Fatalf("exported %d records, result finished %d", len(recs), res.WalksFinished())
	}
	completed := 0
	for i, r := range recs {
		if r.Seq != uint64(i) {
			t.Fatalf("record %d has seq %d; export must be gapless and in finish order", i, r.Seq)
		}
		if r.DeadEnd {
			if r.Hops >= spec.Length {
				t.Fatalf("dead-ended record %d took %d hops of %d", i, r.Hops, spec.Length)
			}
		} else {
			completed++
			if r.Hops != spec.Length {
				t.Fatalf("completed record %d took %d hops, want %d", i, r.Hops, spec.Length)
			}
		}
		if i > 0 && r.At < recs[i-1].At {
			t.Fatalf("record %d retired at %v, before record %d at %v", i, r.At, i-1, recs[i-1].At)
		}
	}
	if completed != res.Completed {
		t.Fatalf("exported %d completed walks, result says %d", completed, res.Completed)
	}
}

// TestWalkExportDoesNotPerturbTimeline is the export twin of the golden
// digest test: attaching an OnWalks consumer must leave the simulated
// timeline bit-identical, while delivering every finished walk exactly once
// in finish order.
func TestWalkExportDoesNotPerturbTimeline(t *testing.T) {
	g := testGraph(t)
	rc := goldenConfig()
	var recs []WalkDone
	rc.OnWalks = collectWalks(&recs)
	rc.EmitEvery = 256
	res := runEngine(t, g, rc)
	if got := digestResult(res); got != goldenDigest {
		t.Fatalf("walk export moved the golden timeline:\n got %s\nwant %s", got, goldenDigest)
	}
	checkExport(t, recs, res, rc.Spec)
}

// TestWalkExportResumeContinuity proves seq continuity across
// snapshot/resume: an interrupted-and-resumed run's export, deduplicated on
// seq (the interrupted run keeps emitting between the captured snapshot and
// the cancellation), is record-for-record identical to the uninterrupted
// run's export.
func TestWalkExportResumeContinuity(t *testing.T) {
	g := testGraph(t)

	ref := goldenConfig()
	var want []WalkDone
	ref.OnWalks = collectWalks(&want)
	refRes := runEngine(t, g, ref)
	checkExport(t, want, refRes, ref.Spec)

	rc := goldenConfig()
	var phase1 []WalkDone
	rc.OnWalks = collectWalks(&phase1)
	rc.EmitEvery = 64
	snap := interruptCore(t, g, rc, 3)

	var phase2 []WalkDone
	res, err := ResumeContext(context.Background(), g, snap, ResumeOptions{
		OnWalks: collectWalks(&phase2), EmitEvery: 64,
	})
	if err != nil {
		t.Fatalf("ResumeContext: %v", err)
	}
	if got := digestResult(res); got != digestResult(refRes) {
		t.Fatalf("resumed digest diverged:\n got %s\nwant %s", got, digestResult(refRes))
	}

	cut := uint64(snap.Res.Completed + snap.Res.DeadEnded)
	if len(phase1) < int(cut) {
		t.Fatalf("interrupted run exported %d records, snapshot finished count is %d: flush-before-snapshot broken", len(phase1), cut)
	}
	if len(phase2) == 0 || phase2[0].Seq != cut {
		t.Fatalf("resumed export starts at seq %d of %d records, want %d", phase2[0].Seq, len(phase2), cut)
	}

	// Merge: snapshot-prefix from phase1, the rest from phase2; overlapping
	// records (seq >= cut seen by both) must agree exactly.
	got := append(append([]WalkDone(nil), phase1[:cut]...), phase2...)
	for _, r := range phase1[cut:] {
		if r != got[r.Seq] {
			t.Fatalf("overlap record seq %d differs between interrupted and resumed run:\n %+v\n %+v", r.Seq, r, got[r.Seq])
		}
	}
	if len(got) != len(want) {
		t.Fatalf("merged export has %d records, uninterrupted run %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d differs:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

// TestWalkExportArray checks the fleet-wide export: a 1-board array
// reproduces the single-engine export record for record, and a 2-board
// array exports a gapless fleet-wide finish sequence whose walk outcomes
// (keyed by start vertex multiset) match the aggregate result.
func TestWalkExportArray(t *testing.T) {
	g := testGraph(t)

	single := goldenConfig()
	var want []WalkDone
	single.OnWalks = collectWalks(&want)
	runEngine(t, g, single)

	rc1 := arrayConfig(1)
	var got1 []WalkDone
	rc1.OnWalks = collectWalks(&got1)
	res1 := runArray(t, g, rc1)
	checkExport(t, got1, res1, rc1.Spec)
	if len(got1) != len(want) {
		t.Fatalf("1-board array exported %d records, single engine %d", len(got1), len(want))
	}
	for i := range want {
		if got1[i] != want[i] {
			t.Fatalf("1-board array record %d differs:\n got %+v\nwant %+v", i, got1[i], want[i])
		}
	}

	rc2 := arrayConfig(2)
	var got2 []WalkDone
	rc2.OnWalks = collectWalks(&got2)
	res2 := runArray(t, g, rc2)
	checkExport(t, got2, res2, rc2.Spec)
}

// TestWalkExportArrayResumeContinuity is the array flavour of the resume
// continuity proof, with the interrupt landing while walks are in flight on
// the fabric.
func TestWalkExportArrayResumeContinuity(t *testing.T) {
	g := testGraph(t)

	ref := arrayConfig(2)
	var want []WalkDone
	ref.OnWalks = collectWalks(&want)
	refRes := runArray(t, g, ref)
	checkExport(t, want, refRes, ref.Spec)

	rc := arrayConfig(2)
	var phase1 []WalkDone
	rc.OnWalks = collectWalks(&phase1)
	rc.EmitEvery = 64
	snap := interruptArray(t, g, rc, 2, func(s *ArraySnapshot) bool { return s.InFabric > 0 })

	cut := uint64(0)
	for _, b := range snap.Boards {
		cut += uint64(b.Res.Completed + b.Res.DeadEnded)
	}
	var phase2 []WalkDone
	res, err := ResumeArrayContext(context.Background(), g, snap, ArrayResumeOptions{
		OnWalks: collectWalks(&phase2), EmitEvery: 64,
	})
	if err != nil {
		t.Fatalf("ResumeArrayContext: %v", err)
	}
	if got := digestResult(res); got != digestResult(refRes) {
		t.Fatalf("resumed array digest diverged:\n got %s\nwant %s", got, digestResult(refRes))
	}
	if len(phase1) < int(cut) {
		t.Fatalf("interrupted array exported %d records, snapshot finished count is %d", len(phase1), cut)
	}
	if cut > 0 && (len(phase2) == 0 || phase2[0].Seq != cut) {
		t.Fatalf("resumed array export starts at seq %d, want %d", phase2[0].Seq, cut)
	}
	got := append(append([]WalkDone(nil), phase1[:cut]...), phase2...)
	if len(got) != len(want) {
		t.Fatalf("merged array export has %d records, uninterrupted run %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("array record %d differs:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

// TestWalkExportStartsMatchWorkload checks Src fidelity: every exported
// record's start vertex multiset equals the seeded workload's.
func TestWalkExportStartsMatchWorkload(t *testing.T) {
	g := testGraph(t)
	rc := testConfig()
	starts := walk.UniformStarts(g, rc.NumWalks, rc.StartSeed)
	var recs []WalkDone
	rc.OnWalks = collectWalks(&recs)
	runEngine(t, g, rc)
	wantCount := map[graph.VertexID]int{}
	for _, v := range starts {
		wantCount[v]++
	}
	for _, r := range recs {
		wantCount[r.Src]--
	}
	for v, n := range wantCount {
		if n != 0 {
			t.Fatalf("start vertex %d: export count off by %+d", v, -n)
		}
	}
}
