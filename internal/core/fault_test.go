package core

import (
	"testing"

	"flashwalker/internal/fault"
	"flashwalker/internal/sim"
	"flashwalker/internal/walk"
)

// Fault-injection tests for the full engine: the metamorphic guarantee
// (faults change when walks finish, never whether or where they go), the
// zero-rate bit-identity with the golden digest, and replay determinism of
// fault-enabled runs.

// aggressiveFaults is a profile hot enough to exercise every fault path on
// the small test rig: frequent read errors, early sticky degradation, and
// plane-busy stalls.
func aggressiveFaults() fault.Config {
	c := fault.Default()
	c.ReadErrorRate = 0.1
	c.PlaneBusyRate = 0.1
	c.DegradeAfterErrors = 4
	return c
}

// TestGoldenDigestZeroRateFaults proves the injector's zero-rate identity at
// engine scope: an attached injector with every rate at zero makes no draws
// and injects no latency, so the run is bit-identical to the golden digest.
func TestGoldenDigestZeroRateFaults(t *testing.T) {
	g := testGraph(t)
	rc := goldenConfig()
	rc.Cfg.Faults = fault.Config{Enabled: true, Seed: 0xFA17}
	res := runEngine(t, g, rc)
	if got := digestResult(res); got != goldenDigest {
		t.Fatalf("zero-rate injector moved the golden timeline:\n got %s\nwant %s", got, goldenDigest)
	}
	if res.Faults != (fault.Counters{}) {
		t.Fatalf("zero-rate injector counted faults: %+v", res.Faults)
	}
}

// TestMetamorphicCleanVsFaulty is the load-bearing invariant: because every
// walk samples from its own RNG stream, injected faults shift the event
// timeline but cannot change any trajectory. Clean and faulty runs must
// agree exactly on walk outcomes — including per-vertex visit counts — not
// just approximately.
func TestMetamorphicCleanVsFaulty(t *testing.T) {
	g := testGraph(t)
	specs := map[string]walk.Spec{
		"unbiased":    {Kind: walk.Unbiased, Length: 6},
		"secondorder": {Kind: walk.SecondOrder, Length: 6, P: 0.5, Q: 2},
	}
	for name, spec := range specs {
		t.Run(name, func(t *testing.T) {
			rc := goldenConfig()
			rc.Spec = spec
			rc.TrackVisits = true
			clean := runEngine(t, g, rc)

			rc.Cfg.Faults = aggressiveFaults()
			faulty := runEngine(t, g, rc)

			if faulty.Faults.ReadErrors == 0 {
				t.Fatalf("fault profile injected nothing: %+v", faulty.Faults)
			}
			if clean.Started != faulty.Started ||
				clean.Completed != faulty.Completed ||
				clean.DeadEnded != faulty.DeadEnded ||
				clean.Hops != faulty.Hops {
				t.Fatalf("faults changed walk outcomes:\nclean  started=%d completed=%d dead=%d hops=%d\nfaulty started=%d completed=%d dead=%d hops=%d",
					clean.Started, clean.Completed, clean.DeadEnded, clean.Hops,
					faulty.Started, faulty.Completed, faulty.DeadEnded, faulty.Hops)
			}
			for v := range clean.Visits {
				if clean.Visits[v] != faulty.Visits[v] {
					t.Fatalf("vertex %d visited %d times clean vs %d faulty",
						v, clean.Visits[v], faulty.Visits[v])
				}
			}
		})
	}
}

// TestFaultyRunDeterministic runs the same fault-enabled fixture three times
// and requires identical digests AND identical fault/retry/degradation
// counters: the fault sequence is a pure function of (workload, fault seed).
func TestFaultyRunDeterministic(t *testing.T) {
	g := testGraph(t)
	run := func() (string, *Result) {
		rc := goldenConfig()
		rc.Cfg.Faults = aggressiveFaults()
		res := runEngine(t, g, rc)
		return digestResult(res), res
	}
	d0, r0 := run()
	for i := 1; i < 3; i++ {
		d, r := run()
		if d != d0 {
			t.Fatalf("run %d digest diverged:\n got %s\nwant %s", i, d, d0)
		}
		if r.Faults != r0.Faults || r.FaultReroutes != r0.FaultReroutes ||
			r.FailoverBlocks != r0.FailoverBlocks {
			t.Fatalf("run %d fault counters diverged:\n got %+v reroutes=%d failover=%d\nwant %+v reroutes=%d failover=%d",
				i, r.Faults, r.FaultReroutes, r.FailoverBlocks,
				r0.Faults, r0.FaultReroutes, r0.FailoverBlocks)
		}
	}
	if r0.Faults.ReadErrors == 0 || r0.Faults.Retries == 0 {
		t.Fatalf("fixture injected no faults: %+v", r0.Faults)
	}
}

// TestDegradationFailsOverToChannel drives a chip into sticky degradation
// and checks the scheduler response: blocks fail over into the channel hot
// set and later walks for them are rerouted there.
func TestDegradationFailsOverToChannel(t *testing.T) {
	g := testGraph(t)
	rc := goldenConfig()
	rc.Cfg.Faults = fault.Config{
		Enabled:             true,
		Seed:                0xFA17,
		ReadErrorRate:       0.3,
		MaxRetries:          2,
		RetryBackoff:        5 * sim.Microsecond,
		DegradeAfterErrors:  2,
		DegradedReadPenalty: 30 * sim.Microsecond,
	}
	res := runEngine(t, g, rc)
	if res.Faults.DegradedChips == 0 {
		t.Fatalf("no chip degraded under 30%% error rate: %+v", res.Faults)
	}
	if res.FailoverBlocks == 0 {
		t.Fatal("degraded chips failed no blocks over to their channel")
	}
	if res.FaultReroutes == 0 {
		t.Fatal("no walk was rerouted to a failed-over channel block")
	}
	if res.WalksFinished() != res.Started {
		t.Fatalf("degradation lost walks: %d of %d finished", res.WalksFinished(), res.Started)
	}
}

// TestFaultPropertyRandomized sweeps randomized (seed, fault-rate) pairs and
// asserts the engine-level invariants hold under every one: each started
// walk terminates exactly once, the conservation audit stays silent, and
// the clean twin of every faulty run agrees on outcomes.
func TestFaultPropertyRandomized(t *testing.T) {
	g := testGraph(t)
	iters := 6
	if testing.Short() {
		iters = 2
	}
	for i := 0; i < iters; i++ {
		rc := testConfig()
		rc.Audit = true
		rc.Cfg.Seed = uint64(100 + i)
		rc.StartSeed = uint64(200 + i)
		rc.NumWalks = 100 + 25*i
		clean := runEngine(t, g, rc)

		rc.Cfg.Faults = fault.Config{
			Enabled:            true,
			Seed:               uint64(300 + i),
			ReadErrorRate:      0.02 * float64(i+1),
			PlaneBusyRate:      0.03 * float64(i),
			PlaneBusyTime:      15 * sim.Microsecond,
			MaxRetries:         i % 4,
			RetryBackoff:       sim.Time(5+i) * sim.Microsecond,
			DegradeAfterErrors: 8 * (i + 1),
		}
		faulty := runEngine(t, g, rc)

		for name, r := range map[string]*Result{"clean": clean, "faulty": faulty} {
			if r.Completed+r.DeadEnded != r.Started {
				t.Fatalf("iter %d %s: %d completed + %d dead != %d started",
					i, name, r.Completed, r.DeadEnded, r.Started)
			}
		}
		if clean.Completed != faulty.Completed || clean.Hops != faulty.Hops {
			t.Fatalf("iter %d: clean (completed=%d hops=%d) vs faulty (completed=%d hops=%d)",
				i, clean.Completed, clean.Hops, faulty.Completed, faulty.Hops)
		}
	}
}
