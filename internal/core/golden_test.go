package core

import (
	"fmt"
	"testing"

	"flashwalker/internal/walk"
)

// goldenDigest is the reference digest of a fixed (graph, seed, walk count)
// run. Any change to it means the simulated timeline moved: RNG draw order,
// event ordering, or routing changed somewhere. Refactors must keep it
// bit-identical; a PR that intentionally changes simulated behaviour must
// say so and update this constant.
//
// Intentional update (fault-injection PR): sampling moved from per-tier RNG
// streams to per-walk streams (wstate.rng), and dense pre-walk tags now
// survive foreigner demotion. Both changes make walk trajectories
// independent of event timing — the property the metamorphic fault tests
// rely on — and shifted every draw, so the digest was re-captured. The
// digest must continue to hold with fault injection disabled AND with a
// zero-rate injector attached (TestGoldenDigestZeroRateFaults).
const goldenDigest = "time=896000 started=500 completed=416 dead=84 hops=2564 " +
	"readPages=462 progPages=0 readB=1892352 chanB=278924 " +
	"dramR=39300 dramW=39300 " +
	"qcHit=522 qcMiss=1961 search=7797 range=1556 prewalk=0 " +
	"hotCh=217 hotBd=449 chip=1982 loads=691 reloads=277 " +
	"pwb=0 foreign=496 switches=6"

// goldenConfig is the golden run's workload: the standard small test rig
// with every optimization on, second partition pressure (low per-partition
// block count), and the conservation audit enabled.
func goldenConfig() RunConfig {
	rc := testConfig()
	rc.Cfg.Opts = AllOptions()
	rc.NumWalks = 500
	rc.StartSeed = 11
	rc.Cfg.Seed = 9
	rc.Audit = true
	rc.Spec = walk.Spec{Kind: walk.Unbiased, Length: 6}
	return rc
}

func digestResult(res *Result) string {
	return fmt.Sprintf(
		"time=%d started=%d completed=%d dead=%d hops=%d "+
			"readPages=%d progPages=%d readB=%d chanB=%d "+
			"dramR=%d dramW=%d "+
			"qcHit=%d qcMiss=%d search=%d range=%d prewalk=%d "+
			"hotCh=%d hotBd=%d chip=%d loads=%d reloads=%d "+
			"pwb=%d foreign=%d switches=%d",
		res.Time, res.Started, res.Completed, res.DeadEnded, res.Hops,
		res.Flash.ReadPages, res.Flash.ProgramPages, res.Flash.ReadBytes, res.Flash.ChannelBytes,
		res.DRAMReadBytes, res.DRAMWriteBytes,
		res.QueryCacheHits, res.QueryCacheMisses, res.TableSearchSteps, res.RangeQueries, res.PreWalks,
		res.HotHitsChannel, res.HotHitsBoard, res.ChipUpdates, res.SubgraphLoads, res.SubgraphReloads,
		res.PWBOverflows, res.ForeignerWalks, res.PartitionSwitches)
}

// TestGoldenSeedDigest pins the full simulated timeline of one fixed run.
func TestGoldenSeedDigest(t *testing.T) {
	g := testGraph(t)
	res := runEngine(t, g, goldenConfig())
	if got := digestResult(res); got != goldenDigest {
		t.Fatalf("golden digest changed:\n got %s\nwant %s", got, goldenDigest)
	}
}

// TestGoldenSeedRepeatable guards the determinism the digest relies on:
// two engines built from the same RunConfig produce identical digests.
func TestGoldenSeedRepeatable(t *testing.T) {
	g := testGraph(t)
	a := digestResult(runEngine(t, g, goldenConfig()))
	b := digestResult(runEngine(t, g, goldenConfig()))
	if a != b {
		t.Fatalf("same config, different digests:\n a %s\n b %s", a, b)
	}
}
