package core

import (
	"fmt"
	"testing"

	"flashwalker/internal/walk"
)

// goldenDigest is the reference digest of a fixed (graph, seed, walk count)
// run, captured before the tierAccel refactor. Any change to it means the
// simulated timeline moved: RNG draw order, event ordering, or routing
// changed somewhere. Refactors must keep it bit-identical; a PR that
// intentionally changes simulated behaviour must say so and update this
// constant.
const goldenDigest = "time=874000 started=500 completed=406 dead=94 hops=2530 " +
	"readPages=471 progPages=0 readB=1929216 chanB=278600 " +
	"dramR=39280 dramW=39280 " +
	"qcHit=537 qcMiss=1909 search=7508 range=1541 prewalk=0 " +
	"hotCh=228 hotBd=411 chip=1985 loads=697 reloads=274 " +
	"pwb=0 foreign=496 switches=7"

// goldenConfig is the golden run's workload: the standard small test rig
// with every optimization on, second partition pressure (low per-partition
// block count), and the conservation audit enabled.
func goldenConfig() RunConfig {
	rc := testConfig()
	rc.Cfg.Opts = AllOptions()
	rc.NumWalks = 500
	rc.StartSeed = 11
	rc.Cfg.Seed = 9
	rc.Audit = true
	rc.Spec = walk.Spec{Kind: walk.Unbiased, Length: 6}
	return rc
}

func digestResult(res *Result) string {
	return fmt.Sprintf(
		"time=%d started=%d completed=%d dead=%d hops=%d "+
			"readPages=%d progPages=%d readB=%d chanB=%d "+
			"dramR=%d dramW=%d "+
			"qcHit=%d qcMiss=%d search=%d range=%d prewalk=%d "+
			"hotCh=%d hotBd=%d chip=%d loads=%d reloads=%d "+
			"pwb=%d foreign=%d switches=%d",
		res.Time, res.Started, res.Completed, res.DeadEnded, res.Hops,
		res.Flash.ReadPages, res.Flash.ProgramPages, res.Flash.ReadBytes, res.Flash.ChannelBytes,
		res.DRAMReadBytes, res.DRAMWriteBytes,
		res.QueryCacheHits, res.QueryCacheMisses, res.TableSearchSteps, res.RangeQueries, res.PreWalks,
		res.HotHitsChannel, res.HotHitsBoard, res.ChipUpdates, res.SubgraphLoads, res.SubgraphReloads,
		res.PWBOverflows, res.ForeignerWalks, res.PartitionSwitches)
}

// TestGoldenSeedDigest pins the full simulated timeline of one fixed run.
func TestGoldenSeedDigest(t *testing.T) {
	g := testGraph(t)
	res := runEngine(t, g, goldenConfig())
	if got := digestResult(res); got != goldenDigest {
		t.Fatalf("golden digest changed:\n got %s\nwant %s", got, goldenDigest)
	}
}

// TestGoldenSeedRepeatable guards the determinism the digest relies on:
// two engines built from the same RunConfig produce identical digests.
func TestGoldenSeedRepeatable(t *testing.T) {
	g := testGraph(t)
	a := digestResult(runEngine(t, g, goldenConfig()))
	b := digestResult(runEngine(t, g, goldenConfig()))
	if a != b {
		t.Fatalf("same config, different digests:\n a %s\n b %s", a, b)
	}
}
