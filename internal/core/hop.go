package core

import (
	"flashwalker/internal/graph"
	"flashwalker/internal/partition"
	"flashwalker/internal/rng"
	"flashwalker/internal/sim"
	"flashwalker/internal/walk"
)

// hopOutcome is a fully decided walk update: the walk's next state, whether
// it terminates, and the extra updater operations beyond the flat
// OpsPerUpdate (ITS binary-search steps for biased walks).
type hopOutcome struct {
	next     wstate
	terminal bool
	deadEnd  bool
	extraOps int
	// filterProbes counts edge-bloom-filter membership queries the
	// second-order sampler issued (each is a DRAM access; chip-level
	// updaters additionally pay a channel-bus round trip).
	filterProbes int
}

// decideHop computes a walk update. The decision is made at dispatch time
// (before the updater's service interval elapses) so the service time can
// include the data-dependent ITS cost; the simulation stays deterministic
// because every draw comes from the walk's private RNG stream (wstate.rng),
// making the trajectory independent of which tier updates the walk and of
// any fault-induced timing shifts.
func (e *Engine) decideHop(st wstate) hopOutcome {
	deg := e.g.OutDegree(st.w.Cur)
	if deg == 0 {
		return hopOutcome{next: st, terminal: true, deadEnd: true}
	}
	out := st
	r := &out.rng
	var idx uint64
	var extra, probes int
	if st.denseBlock >= 0 {
		// Pre-walking already chose the edge (§III-D); the updater just
		// dereferences it.
		idx = st.denseEdge
	} else {
		idx, extra, probes = e.chooseNextEdge(r, st, deg)
	}
	out.prev = st.w.Cur
	out.w.Cur = e.g.OutEdges(st.w.Cur)[idx]
	out.w.Hop--
	out.clearTags()
	if e.res.Visits != nil {
		e.res.Visits[out.w.Cur]++
	}
	return hopOutcome{
		next:         out,
		terminal:     e.spec.TerminatesAfterHop(r, &out.w),
		extraOps:     extra,
		filterProbes: probes,
	}
}

// chooseNextEdge draws st's next edge index for a vertex of degree deg from
// r (the walk's own stream). Factored out of decideHop so the board's dense
// pre-walk (route.go) consumes the stream exactly as a direct update would:
// a dense vertex can also sit inside a non-dense block's vertex range, and
// whether such a walk is pre-walked or updated in place is timing-dependent,
// so both paths must make identical draws.
func (e *Engine) chooseNextEdge(r *rng.RNG, st wstate, deg uint64) (idx uint64, extra, probes int) {
	switch {
	case e.spec.Kind == walk.SecondOrder && st.prev != noPrev:
		// Dynamic (node2vec) sampling: rejection with the DRAM-resident
		// edge Bloom filter standing in for the previous vertex's
		// adjacency (which may live in an unloaded subgraph).
		var rejects int
		idx, probes, rejects = e.spec.ChooseEdgeSecondOrderFiltered(
			r, e.g.OutEdges(st.w.Cur), st.prev,
			func(cand graph.VertexID) bool {
				return e.edgeFilter.Contains(partition.EdgeKey(st.prev, cand))
			})
		extra = 2*probes + rejects
	case e.alias != nil:
		// Alias sampling: O(1) per hop regardless of degree, at 2x the
		// per-edge metadata.
		idx = e.alias.ChooseEdge(r, st.w.Cur)
		extra = 1
	default:
		idx, extra = e.spec.ChooseEdge(r, deg, e.g.OutCumWeights(st.w.Cur))
	}
	return idx, extra, probes
}

// chargeFilterProbes accounts the DRAM accesses (and, for chip-level
// updaters, the channel-bus round trips) of a hop's edge-filter queries.
func (e *Engine) chargeFilterProbes(h hopOutcome, chip *chipAccel) {
	if h.filterProbes == 0 {
		return
	}
	const probeBytes = 8
	e.dr.Read(int64(h.filterProbes)*probeBytes, nil)
	e.res.FilterProbes += uint64(h.filterProbes)
	if chip != nil {
		// Request up, response down: one small transfer each way.
		e.ssd.TransferChannel(chip.chip.Channel, int64(h.filterProbes)*2*e.cfg.CommandBytes, nil)
	}
}

// updateService converts a hop decision into an updater service time at the
// given cycle length.
func (e *Engine) updateService(cycle sim.Time, h hopOutcome) sim.Time {
	return sim.Time(e.cfg.OpsPerUpdate+h.extraOps) * cycle
}
