package core

import (
	"fmt"

	"flashwalker/internal/graph"
	"flashwalker/internal/sim"
	"flashwalker/internal/trace"
	"flashwalker/internal/walk"
)

// This file is the walk lifecycle: seeding the workload, retiring finished
// walks, and advancing through graph partitions as each drains.

// seedWalksFrom creates the workload from the given start vertices and
// sorts walks into per-partition pending lists (walk initialization is
// host-side preprocessing; it is not charged to the simulated clock,
// matching the paper's exclusion of preprocessing).
func (e *Engine) seedWalksFrom(starts []graph.VertexID, n int) {
	ws := walk.NewWalks(e.spec, starts, n)
	e.remaining = len(ws)
	e.res.Started = len(ws)
	for i := range ws {
		// Each walk gets its own derived RNG stream so its trajectory is
		// independent of scheduling and of injected faults (see wstate.rng).
		st := wstate{w: ws[i], denseBlock: -1, rangeTag: -1, prev: noPrev,
			rng: *e.rootRNG.Derive(uint64(i))}
		if e.res.Visits != nil {
			e.res.Visits[st.w.Cur]++
		}
		p := e.homePartition(st.w.Cur)
		e.pendingMem[p] = append(e.pendingMem[p], st)
	}
	for p := range e.pendingMem {
		e.flushMark[p] = len(e.pendingMem[p])
	}
}

// homePartition reports which partition a vertex's subgraph belongs to
// (dense vertices use their first block).
func (e *Engine) homePartition(v graph.VertexID) int {
	if m, ok := e.part.Dense.Lookup(v); ok {
		return e.part.PartitionOf(m.FirstBlockID)
	}
	id, _ := e.part.BlockOf(v)
	if id < 0 {
		return 0
	}
	return e.part.PartitionOf(id)
}

// finishWalk retires a walk (completed or dead-ended). st is the walk's
// final state, read only for the completed-walk export (export.go).
func (e *Engine) finishWalk(st *wstate, completed bool) {
	if completed {
		e.res.Completed++
		e.emit(trace.WalkDone, 1, 0)
	} else {
		e.res.DeadEnded++
		e.emit(trace.WalkDone, 0, 0)
	}
	if e.res.ProgressTS != nil {
		e.res.ProgressTS.Add(e.eng.Now(), 1)
	}
	e.remaining--
	if e.arr != nil {
		if e.arr.onWalks != nil {
			e.arr.exportWalk(e, st, completed)
		}
		e.arr.walkFinished()
	} else if e.onWalks != nil {
		e.exportWalk(st, completed)
	}
	e.activeCur--
	e.checkPartitionDone()
}

// checkPartitionDone advances to the next partition once the current one is
// fully drained.
func (e *Engine) checkPartitionDone() {
	if e.finished || e.activeCur > 0 {
		return
	}
	if e.activeCur < 0 {
		e.fail(fmt.Errorf("core: activeCur went negative"))
		return
	}
	if e.arr != nil {
		// The board just drained: ship every batched foreigner now so no
		// walk waits on an egress threshold that will never be reached.
		e.arr.flushEgressFrom(e.boardID)
	}
	if !e.advancePartition() {
		if e.arr != nil {
			// An idle array board is not done — fabric deliveries can wake
			// it — unless it is dead, in which case nothing ever will (its
			// shard was re-placed and arrivals are re-forwarded).
			if e.arr.dead[e.boardID] {
				e.finished = true
			} else {
				e.arr.checkStalled()
			}
			return
		}
		e.finished = true
		if e.remaining != 0 {
			e.fail(fmt.Errorf("core: no partitions left but %d walks remain", e.remaining))
		}
	}
}

// advancePartition selects the next partition holding walks and dispatches
// its pending set. It reports false when no walks remain anywhere.
func (e *Engine) advancePartition() bool {
	e.auditConservation("partition-switch")
	np := e.part.NumPartitions
	for step := 1; step <= np; step++ {
		p := (e.curPart + step) % np
		if e.curPart < 0 {
			p = step - 1
		}
		if len(e.pendingMem[p]) == 0 && len(e.pendingFlash[p]) == 0 {
			continue
		}
		if e.arr != nil && e.arr.shard.BoardOf(p) != e.boardID {
			// Not this board's shard (possible only transiently around a
			// device kill, while evacuated walks are still in flight).
			continue
		}
		e.startPartition(p)
		return true
	}
	return false
}

// startPartition switches the engine to partition p: invalidates the query
// caches (their entries map the old partition's table), refreshes each
// chip's candidate block list, reads back flushed foreigner walks, and
// routes every pending walk through the board guider.
func (e *Engine) startPartition(p int) {
	e.curPart = p
	e.res.PartitionSwitches++
	e.emit(trace.PartitionSwitch, int64(p),
		int64(len(e.pendingMem[p])+len(e.pendingFlash[p])))
	for _, qc := range e.board.caches {
		qc.invalidate()
	}
	for _, c := range e.chips {
		c.refreshBlocks()
	}

	// Foreigner-buffer residents bound for p are consumed now.
	e.foreignerBufBytes -= int64(len(e.pendingMem[p])-e.flushMark[p]) * walk.StateBytes
	if e.foreignerBufBytes < 0 {
		e.foreignerBufBytes = 0
	}
	e.flushMark[p] = 0
	mem := e.pendingMem[p]
	e.pendingMem[p] = nil
	fl := e.pendingFlash[p]
	flBytes := e.pendingFlashBytes[p]
	e.pendingFlash[p] = nil
	e.pendingFlashBytes[p] = 0

	e.activeCur = len(mem) + len(fl)

	for i := range mem {
		e.board.Guide(mem[i])
	}
	e.putWalkBuf(mem)
	if len(fl) > 0 {
		// Read the flushed foreigner pages back (striped over chips, the
		// same way they were written). The last page's evSwitchPage
		// completion dispatches the batch.
		pages := int((flBytes + e.ssd.Cfg.PageBytes - 1) / e.ssd.Cfg.PageBytes)
		e.switchLeft = pages
		e.switchWalks = fl
		for i := 0; i < pages; i++ {
			chip := e.ssd.Chip(e.flushChipRR)
			e.flushChipRR = (e.flushChipRR + 1) % e.ssd.NumChips()
			e.ssd.ReadPagesToChannelE(chip, 1, sim.Event{Target: e, Kind: evSwitchPage})
		}
	}
	if e.activeCur == 0 {
		// Nothing was pending after all (shouldn't happen, lists checked).
		e.checkPartitionDone()
	}
}
