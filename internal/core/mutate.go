package core

import (
	"fmt"

	"flashwalker/internal/errs"
	"flashwalker/internal/graph"
	"flashwalker/internal/partition"
	"flashwalker/internal/sim"
)

// Dynamic-graph mutation support. A RunConfig.Mutations stream is applied
// strictly between simulated events through the kernel's applier hook
// (sim.SetApplier): a mutation stamped T is applied immediately before the
// first event at time >= T, so it is visible to that event and invisible to
// everything earlier. The At == 0 prefix applies at construction, before
// hot-subgraph selection and walk seeding.
//
// Every derived structure is maintained incrementally and provably matches
// a from-scratch rebuild over the mutated graph:
//
//   - the CSR arrays (graph.ApplyMutation — splice-equals-rebuild, proven
//     in internal/graph),
//   - per-block degree tables and byte sizes (Partitioned.ApplyEdgeDelta;
//     the block skeleton itself is frozen — stream validation caps every
//     touched vertex below the dense threshold, and overflowing a block
//     fails the run rather than silently re-partitioning),
//   - the second-order edge Bloom filter (bloom.Counting — counts are
//     additive over the edge multiset, proven in internal/bloom),
//   - per-vertex alias tables (GraphAlias.RebuildVertex — a table is a
//     pure function of one vertex's weight vector).
//
// TestMutationMetamorphic in this package closes the loop end to end:
// running with an At == 0 stream is bit-identical to running over the
// rebuilt mutated graph with no stream.

// ValidateMutations checks a stream against the initial graph with the
// partitioning's dense-vertex threshold as the degree cap. The service
// layer's normalize calls it at submission so a bad stream is a 400, never
// an async worker failure.
func ValidateMutations(g *graph.Graph, pc partition.Config, ms graph.MutationStream) error {
	return validateMutations(g, pc, ms)
}

// validateMutations checks a stream against the initial graph with the
// partitioning's dense-vertex threshold as the degree cap. Shared by the
// engine, the array, and the service layer's normalize.
func validateMutations(g *graph.Graph, pc partition.Config, ms graph.MutationStream) error {
	if len(ms) == 0 {
		return nil
	}
	var maxDeg uint64
	if eb := pc.EdgeBytes(g.Weighted()); eb > 0 && pc.BlockBytes > int64(pc.IDBytes) {
		maxDeg = pc.EdgesPerBlock(g.Weighted())
	}
	if err := ms.Validate(g, maxDeg); err != nil {
		return fmt.Errorf("core: mutation stream: %v: %w", err, errs.ErrInvalidConfig)
	}
	return nil
}

// cloneForMutations validates the stream and returns a private copy of the
// graph to mutate; with no stream the caller's graph is used directly (the
// classic zero-copy static path).
func cloneForMutations(g *graph.Graph, rc RunConfig) (*graph.Graph, error) {
	if len(rc.Mutations) == 0 {
		return g, nil
	}
	if err := validateMutations(g, rc.PartCfg, rc.Mutations); err != nil {
		return nil, err
	}
	return g.Clone(), nil
}

// applyMutationPrefix applies the stream's At == 0 prefix to the graph and
// partition stats, returning the applied count. These mutations are
// "before the run": later construction steps (hot-subgraph selection, edge
// filter, alias tables, walk seeding) all see the patched graph.
func applyMutationPrefix(g *graph.Graph, part *partition.Partitioned, ms graph.MutationStream) (int, error) {
	n := 0
	for ; n < len(ms) && ms[n].At == 0; n++ {
		if err := applyShared(g, part, ms[n]); err != nil {
			return n, err
		}
	}
	return n, nil
}

// applyShared patches the structures every board shares: the CSR arrays
// and the per-block degree/byte stats.
func applyShared(g *graph.Graph, part *partition.Partitioned, m graph.Mutation) error {
	delta := int64(1)
	if m.Op == graph.OpDeleteEdge {
		delta = -1
	}
	if err := part.ApplyEdgeDelta(m.Src, delta); err != nil {
		return err
	}
	return g.ApplyMutation(m)
}

// applyIndexes patches this engine's private derived indexes after the
// shared graph was mutated: the counting edge filter and the mutated
// vertex's alias table. In arrays every board applies this for every
// mutation — each board owns its own filter and tables.
func (e *Engine) applyIndexes(m graph.Mutation) error {
	if e.edgeFilterC != nil {
		key := partition.EdgeKey(m.Src, m.Dst)
		if m.Op == graph.OpInsertEdge {
			e.edgeFilterC.Add(key)
		} else {
			e.edgeFilterC.Remove(key)
		}
	}
	if e.alias != nil {
		return e.alias.RebuildVertex(e.g, m.Src)
	}
	return nil
}

// applyMutation applies one mutation end to end on a single-board engine.
func (e *Engine) applyMutation(m graph.Mutation) error {
	if err := applyShared(e.g, e.part, m); err != nil {
		return err
	}
	if err := e.applyIndexes(m); err != nil {
		return err
	}
	e.res.MutationsApplied++
	return nil
}

// applyMutations is the single-board applier hook: it applies every
// not-yet-applied mutation stamped at or before the next event's time. An
// apply failure (block overflow) fails the run.
func (e *Engine) applyMutations(next sim.Time) {
	for e.mutCursor < len(e.muts) && sim.Time(e.muts[e.mutCursor].At) <= next {
		if err := e.applyMutation(e.muts[e.mutCursor]); err != nil {
			e.fail(fmt.Errorf("core: mutation %d: %w", e.mutCursor, err))
			e.eng.ClearApplier()
			return
		}
		e.mutCursor++
	}
}

// applyMutation applies one mutation fleet-wide: the shared graph and
// partition stats once, then every board's private indexes. The board
// owning the mutated vertex's home partition gets the attribution count —
// a sharded mutation lands on its owning board.
func (a *Array) applyMutation(m graph.Mutation) error {
	if err := applyShared(a.g, a.part, m); err != nil {
		return err
	}
	for _, e := range a.boards {
		if err := e.applyIndexes(m); err != nil {
			return err
		}
	}
	owner := a.shard.BoardOf(a.boards[0].homePartition(m.Src))
	a.boards[owner].res.MutationsApplied++
	return nil
}

// applyMutations is the array's applier hook; the array drives the stream
// for the whole fleet and mirrors its cursor onto every board so per-board
// snapshots record the true applied count.
func (a *Array) applyMutations(next sim.Time) {
	for a.mutCursor < len(a.muts) && sim.Time(a.muts[a.mutCursor].At) <= next {
		if err := a.applyMutation(a.muts[a.mutCursor]); err != nil {
			a.fail(fmt.Errorf("core: mutation %d: %w", a.mutCursor, err))
			a.eng.ClearApplier()
			return
		}
		a.mutCursor++
		for _, e := range a.boards {
			e.mutCursor = a.mutCursor
		}
	}
}
