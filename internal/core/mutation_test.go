package core

import (
	"context"
	"errors"
	"testing"

	"flashwalker/internal/errs"
	"flashwalker/internal/fault"
	"flashwalker/internal/graph"
	"flashwalker/internal/partition"
	"flashwalker/internal/sim"
	"flashwalker/internal/snapshot"
	"flashwalker/internal/walk"
)

// The dynamic-graph proof suite. The headline invariant
// (TestMutationMetamorphic) is rebuild-equivalence: a run that replays a
// mutation stream incrementally — patching the CSR arrays, block degree
// tables, edge bloom, and alias tables between events — lands on the exact
// Result of a run built from scratch over the mutated edge list. The timed
// variants extend the proof across a mid-stream snapshot -> kill -> resume
// cut, and the array tests across board counts and a whole-device kill.
//
// The test graph is built so the mutation stream provably cannot move the
// frozen partition skeleton: uniform out-degree 8 with block sizes chosen
// to leave per-block byte slack (see mutPartCfg), and the per-block
// mutation budget in mutStream stays inside that slack. The skeleton
// stability is asserted, not assumed (assertSkeletonStable).

const (
	mutNV  = 256
	mutDeg = 8
)

// mutDst is the deterministic adjacency formula of the mutation test
// graph: for each vertex the 8 destinations are distinct (55*i mod 256 is
// injective on i in [0,8)), so weighted graphs have no parallel edges and
// delete targets are unambiguous.
func mutDst(v, i uint64) graph.VertexID {
	return graph.VertexID((177*v + 55*i + 17) % mutNV)
}

func mutWeight(v, i uint64) float32 {
	return float32(1 + (v+3*i)%7)
}

func buildMutGraph(t *testing.T, edges []graph.Edge, weighted bool) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(mutNV)
	for _, e := range edges {
		if weighted {
			b.AddWeightedEdge(e.Src, e.Dst, e.Weight)
		} else {
			b.AddEdge(e.Src, e.Dst)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("build mutation test graph: %v", err)
	}
	return g
}

// mutTestGraph returns the uniform-degree test graph and its edge list
// (the edge list feeds the from-scratch rebuild leg).
func mutTestGraph(t *testing.T, weighted bool) (*graph.Graph, []graph.Edge) {
	t.Helper()
	var edges []graph.Edge
	for v := uint64(0); v < mutNV; v++ {
		for i := uint64(0); i < mutDeg; i++ {
			e := graph.Edge{Src: graph.VertexID(v), Dst: mutDst(v, i), Weight: 1}
			if weighted {
				e.Weight = mutWeight(v, i)
			}
			edges = append(edges, e)
		}
	}
	return buildMutGraph(t, edges, weighted), edges
}

// mutPartCfg sizes blocks so every block holds a whole number of degree-8
// vertices with slack left over: unweighted 192 B holds 5 vertices
// (5*(4+8*4) = 180, 12 B slack = 3 edge inserts), weighted 300 B holds 4
// (4*(4+8*8) = 272, 28 B slack = 3 edge inserts). mutStream's per-block
// budget stays below the slack, so Partition() over the mutated graph cuts
// the exact same block boundaries.
func mutPartCfg(weighted bool) partition.Config {
	pc := partition.Config{
		BlockBytes:            192,
		IDBytes:               4,
		SubgraphsPerPartition: 8,
		RangeSize:             8,
	}
	if weighted {
		pc.BlockBytes = 300
	}
	return pc
}

// mutConfig is the golden workload re-pointed at the boundary-stable
// partitioning, with visit tracking on.
func mutConfig(weighted bool) RunConfig {
	rc := goldenConfig()
	rc.PartCfg = mutPartCfg(weighted)
	rc.TrackVisits = true
	return rc
}

// freshDst picks a destination vertex not already adjacent to v and not
// already claimed by an earlier insert — weighted inserts must not create
// parallel edges with distinct weights (Builder's rebuild order is
// unspecified there).
func freshDst(edges []graph.Edge, used map[[2]graph.VertexID]bool, v graph.VertexID) graph.VertexID {
	have := map[graph.VertexID]bool{}
	for _, e := range edges {
		if e.Src == v {
			have[e.Dst] = true
		}
	}
	for d := graph.VertexID(0); ; d++ {
		if !have[d] && !used[[2]graph.VertexID{v, d}] {
			used[[2]graph.VertexID{v, d}] = true
			return d
		}
	}
}

// mutStream is the canonical test stream (all At == 0; retime with
// timedStream). It touches several distinct blocks, mixes inserts and
// deletes (including a net-zero block and a self-loop), and keeps every
// block within mutPartCfg's byte slack.
func mutStream(edges []graph.Edge, weighted bool) graph.MutationStream {
	if !weighted {
		return graph.MutationStream{
			{Op: graph.OpInsertEdge, Src: 3, Dst: 9},
			{Op: graph.OpInsertEdge, Src: 3, Dst: 200},
			{Op: graph.OpDeleteEdge, Src: 40, Dst: mutDst(40, 0)},
			{Op: graph.OpInsertEdge, Src: 41, Dst: 7},
			{Op: graph.OpDeleteEdge, Src: 100, Dst: mutDst(100, 3)},
			{Op: graph.OpDeleteEdge, Src: 102, Dst: mutDst(102, 5)},
			{Op: graph.OpInsertEdge, Src: 200, Dst: 200},
			{Op: graph.OpInsertEdge, Src: 250, Dst: 0},
		}
	}
	used := map[[2]graph.VertexID]bool{}
	return graph.MutationStream{
		{Op: graph.OpInsertEdge, Src: 3, Dst: freshDst(edges, used, 3), Weight: 2.5},
		{Op: graph.OpDeleteEdge, Src: 4, Dst: mutDst(4, 1)},
		{Op: graph.OpInsertEdge, Src: 5, Dst: freshDst(edges, used, 5), Weight: 0.75},
		{Op: graph.OpDeleteEdge, Src: 40, Dst: mutDst(40, 2)},
		{Op: graph.OpInsertEdge, Src: 97, Dst: freshDst(edges, used, 97), Weight: 1.25},
		{Op: graph.OpInsertEdge, Src: 98, Dst: freshDst(edges, used, 98), Weight: 3},
		{Op: graph.OpDeleteEdge, Src: 200, Dst: mutDst(200, 7)},
	}
}

// timedStream restamps a copy of the stream with the given (sorted) times.
func timedStream(ms graph.MutationStream, times []int64) graph.MutationStream {
	out := append(graph.MutationStream(nil), ms...)
	for i := range out {
		out[i].At = times[i]
	}
	return out
}

// probeClocks runs the mutation-free workload once and records the
// simulated clock at every 64-event checkpoint. Event density is far from
// uniform on small workloads (half the timeline can pass in the first few
// dozen events), so mid-run mutation timestamps are placed against these
// observed clocks, not against fractions of the end time.
func probeClocks(t *testing.T, g *graph.Graph, rc RunConfig, array bool) []sim.Time {
	t.Helper()
	rc.CheckpointEvery = 64
	var clocks []sim.Time
	rc.OnProgress = func(p Progress) { clocks = append(clocks, p.Now) }
	if array {
		runArray(t, g, rc)
	} else {
		runEngine(t, g, rc)
	}
	return clocks
}

// midStreamTimes stamps an n-mutation stream so a checkpoint provably
// falls strictly mid-stream: two mutations near the start, the rest
// spread across the event-dense middle quarter of the probe timeline —
// after the earliest checkpoints (so their cursor reads 2) and well
// before the end (so every mutation still fires).
func midStreamTimes(t *testing.T, n int, clocks []sim.Time) []int64 {
	t.Helper()
	if len(clocks) < 8 {
		t.Fatalf("only %d checkpoints; workload too small to cut mid-stream", len(clocks))
	}
	lo, hi := int64(clocks[len(clocks)/4]), int64(clocks[len(clocks)/2])
	times := make([]int64, n)
	for i := range times {
		switch i {
		case 0:
			times[i] = int64(1 * sim.Microsecond)
		case 1:
			times[i] = int64(2 * sim.Microsecond)
		default:
			times[i] = lo + int64(i-1)*(hi-lo)/int64(n)
		}
	}
	return times
}

// applyStreamToEdges produces the mutated edge multiset for the rebuild
// leg: inserts append, deletes remove one matching (src, dst) edge.
func applyStreamToEdges(t *testing.T, edges []graph.Edge, ms graph.MutationStream) []graph.Edge {
	t.Helper()
	out := append([]graph.Edge(nil), edges...)
	for _, m := range ms {
		if m.Op == graph.OpInsertEdge {
			out = append(out, graph.Edge{Src: m.Src, Dst: m.Dst, Weight: m.Weight})
			continue
		}
		found := -1
		for i, e := range out {
			if e.Src == m.Src && e.Dst == m.Dst {
				found = i
				break
			}
		}
		if found < 0 {
			t.Fatalf("stream deletes edge (%d,%d) missing from the edge list", m.Src, m.Dst)
		}
		out = append(out[:found], out[found+1:]...)
	}
	return out
}

// assertSkeletonStable is the precondition of the rebuild-equivalence
// proof: partitioning the initial and the mutated graph must cut identical
// block boundaries, or the two legs would not share a skeleton to agree on.
func assertSkeletonStable(t *testing.T, pc partition.Config, g0, g1 *graph.Graph) {
	t.Helper()
	p0, err := partition.Partition(g0, pc)
	if err != nil {
		t.Fatalf("partition initial graph: %v", err)
	}
	p1, err := partition.Partition(g1, pc)
	if err != nil {
		t.Fatalf("partition mutated graph: %v", err)
	}
	if len(p0.Blocks) != len(p1.Blocks) {
		t.Fatalf("mutation stream changed the block count: %d -> %d", len(p0.Blocks), len(p1.Blocks))
	}
	for i := range p0.Blocks {
		a, b := p0.Blocks[i], p1.Blocks[i]
		if a.LowVertex != b.LowVertex || a.HighVertex != b.HighVertex || a.Dense != b.Dense {
			t.Fatalf("mutation stream moved block %d's boundary: [%d,%d,dense=%v] -> [%d,%d,dense=%v]",
				i, a.LowVertex, a.HighVertex, a.Dense, b.LowVertex, b.HighVertex, b.Dense)
		}
	}
}

func assertSameVisits(t *testing.T, got, want []uint64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("visit vector length %d, want %d", len(got), len(want))
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("vertex %d visited %d times, want %d", v, got[v], want[v])
		}
	}
}

// TestMutationMetamorphic is the headline equivalence proof: for every
// walk kind (unbiased, second-order with its edge bloom, biased via ITS
// and via alias tables), with and without fault injection, on one board
// and on a 2-board array, applying a stream up front (running over the
// rebuilt mutated graph with no stream) and replaying the same stream
// incrementally yield bit-identical digests, timelines, and per-vertex
// visit counts.
func TestMutationMetamorphic(t *testing.T) {
	cases := []struct {
		name     string
		weighted bool
		spec     walk.Spec
		faults   fault.Config
		alias    bool
		boards   int
	}{
		{name: "unbiased", spec: walk.Spec{Kind: walk.Unbiased, Length: 6}},
		{name: "unbiased-faults", spec: walk.Spec{Kind: walk.Unbiased, Length: 6}, faults: resumeFaultConfig()},
		{name: "secondorder", spec: walk.Spec{Kind: walk.SecondOrder, Length: 6, P: 0.5, Q: 2}},
		{name: "secondorder-faults", spec: walk.Spec{Kind: walk.SecondOrder, Length: 6, P: 0.5, Q: 2}, faults: resumeFaultConfig()},
		{name: "biased", weighted: true, spec: walk.Spec{Kind: walk.Biased, Length: 6}},
		{name: "biased-alias", weighted: true, spec: walk.Spec{Kind: walk.Biased, Length: 6}, alias: true},
		{name: "unbiased-2boards", spec: walk.Spec{Kind: walk.Unbiased, Length: 6}, boards: 2},
		{name: "secondorder-2boards", spec: walk.Spec{Kind: walk.SecondOrder, Length: 6, P: 0.5, Q: 2}, boards: 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, edges := mutTestGraph(t, tc.weighted)
			ms := mutStream(edges, tc.weighted)
			mg := buildMutGraph(t, applyStreamToEdges(t, edges, ms), tc.weighted)

			rc := mutConfig(tc.weighted)
			rc.Spec = tc.spec
			rc.Cfg.Faults = tc.faults
			rc.UseAliasSampling = tc.alias
			assertSkeletonStable(t, rc.PartCfg, g, mg)

			run := func(g *graph.Graph, rc RunConfig) *Result {
				if tc.boards > 1 {
					rc.Cfg.Boards = tc.boards
					return runArray(t, g, rc)
				}
				return runEngine(t, g, rc)
			}
			rebuilt := run(mg, rc)
			rc.Mutations = ms
			inc := run(g, rc)

			if rebuilt.MutationsApplied != 0 {
				t.Fatalf("rebuild leg applied %d mutations, want 0", rebuilt.MutationsApplied)
			}
			if inc.MutationsApplied != uint64(len(ms)) {
				t.Fatalf("incremental leg applied %d mutations, want %d", inc.MutationsApplied, len(ms))
			}
			if got, want := digestResult(inc), digestResult(rebuilt); got != want {
				t.Fatalf("incremental stream diverged from up-front rebuild:\n got %s\nwant %s", got, want)
			}
			assertSameVisits(t, inc.Visits, rebuilt.Visits)
		})
	}
}

// interruptMidStream runs rc until the first snapshot whose mutation
// cursor is strictly inside the stream (some applied, some still
// pending), cancels there, and returns the snapshot after an on-disk
// codec round trip.
func interruptMidStream(t *testing.T, g *graph.Graph, rc RunConfig, nmuts int) *Snapshot {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var captured *Snapshot
	rc.CheckpointEvery = 64
	rc.SnapshotEvery = 1
	rc.OnSnapshot = func(s *Snapshot) {
		if captured == nil && s.MutApplied > 0 && s.MutApplied < nmuts {
			captured = s
			cancel()
		}
	}
	e, err := NewEngine(g, rc)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if _, err := e.RunContext(ctx); err == nil {
		t.Fatal("run finished without a strictly mid-stream snapshot")
	}
	if captured == nil {
		t.Fatal("no snapshot landed strictly mid-stream")
	}
	data, err := snapshot.Encode("core-engine", captured)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	back := new(Snapshot)
	if err := snapshot.Decode(data, "core-engine", back); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	return back
}

// interruptArrayMidStream is interruptMidStream for arrays; board 0's
// identity body carries the fleet's mutation cursor.
func interruptArrayMidStream(t *testing.T, g *graph.Graph, rc RunConfig, nmuts int) *ArraySnapshot {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var captured *ArraySnapshot
	rc.CheckpointEvery = 64
	a, err := NewArray(g, rc)
	if err != nil {
		t.Fatalf("NewArray: %v", err)
	}
	a.SetSnapshotHook(func(s *ArraySnapshot) {
		if captured == nil && s.Boards[0].MutApplied > 0 && s.Boards[0].MutApplied < nmuts {
			captured = s
			cancel()
		}
	}, 1)
	if _, err := a.RunContext(ctx); err == nil {
		t.Fatal("array run finished without a strictly mid-stream snapshot")
	}
	if captured == nil {
		t.Fatal("no array snapshot landed strictly mid-stream")
	}
	data, err := snapshot.Encode("core-array", captured)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	back := new(ArraySnapshot)
	if err := snapshot.Decode(data, "core-array", back); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	return back
}

// TestMutationMetamorphicResume extends the equivalence across a
// snapshot -> kill -> resume cut taken strictly mid-stream: the snapshot
// records a partially applied stream, the resumed engine rebuilds from the
// initial graph and replays exactly the applied prefix, and the remainder
// of the stream fires from the restored timeline — landing bit-identical
// to the uninterrupted run.
func TestMutationMetamorphicResume(t *testing.T) {
	cases := []struct {
		name     string
		weighted bool
		spec     walk.Spec
		alias    bool
	}{
		{name: "secondorder", spec: walk.Spec{Kind: walk.SecondOrder, Length: 6, P: 0.5, Q: 2}},
		{name: "biased-alias", weighted: true, spec: walk.Spec{Kind: walk.Biased, Length: 6}, alias: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, edges := mutTestGraph(t, tc.weighted)
			rc := mutConfig(tc.weighted)
			rc.Spec = tc.spec
			rc.UseAliasSampling = tc.alias

			clocks := probeClocks(t, g, rc, false) // mutation-free run scales the timestamps
			ms0 := mutStream(edges, tc.weighted)
			ms := timedStream(ms0, midStreamTimes(t, len(ms0), clocks))
			rc.Mutations = ms

			clean := runEngine(t, g, rc)
			if clean.MutationsApplied != uint64(len(ms)) {
				t.Fatalf("straight run applied %d of %d mutations", clean.MutationsApplied, len(ms))
			}

			snap := interruptMidStream(t, g, rc, len(ms))
			if snap.MutApplied <= 0 || snap.MutApplied >= len(ms) {
				t.Fatalf("snapshot cursor %d not strictly inside the %d-mutation stream", snap.MutApplied, len(ms))
			}
			res, err := ResumeContext(context.Background(), g, snap, ResumeOptions{})
			if err != nil {
				t.Fatalf("ResumeContext: %v", err)
			}
			if res.MutationsApplied != uint64(len(ms)) {
				t.Fatalf("resumed run applied %d of %d mutations", res.MutationsApplied, len(ms))
			}
			if got, want := digestResult(res), digestResult(clean); got != want {
				t.Fatalf("resumed mutation run diverged:\n got %s\nwant %s", got, want)
			}
			assertSameVisits(t, res.Visits, clean.Visits)
		})
	}
}

// TestArrayMutationOutcomeEquality shards one At == 0 stream across 1, 2,
// and 4 boards: every topology applies the full stream (each mutation
// attributed to the board owning its vertex's home partition), and walk
// outcomes and visit counts are identical to the single-board engine.
func TestArrayMutationOutcomeEquality(t *testing.T) {
	g, edges := mutTestGraph(t, false)
	ms := mutStream(edges, false)
	rc := mutConfig(false)
	rc.Mutations = ms

	single := runEngine(t, g, rc)
	if single.MutationsApplied != uint64(len(ms)) {
		t.Fatalf("single board applied %d of %d mutations", single.MutationsApplied, len(ms))
	}
	for _, nb := range []int{1, 2, 4} {
		rcN := rc
		rcN.Cfg.Boards = nb
		res := runArray(t, g, rcN)
		if res.MutationsApplied != uint64(len(ms)) {
			t.Fatalf("%d boards applied %d of %d mutations", nb, res.MutationsApplied, len(ms))
		}
		if res.Started != single.Started || res.Completed != single.Completed ||
			res.DeadEnded != single.DeadEnded || res.Hops != single.Hops {
			t.Fatalf("%d boards outcomes (%d/%d/%d/%d) != single board (%d/%d/%d/%d)",
				nb, res.Started, res.Completed, res.DeadEnded, res.Hops,
				single.Started, single.Completed, single.DeadEnded, single.Hops)
		}
		assertSameVisits(t, res.Visits, single.Visits)
		if nb == 1 {
			if got, want := digestResult(res), digestResult(single); got != want {
				t.Fatalf("1-board array diverged from the engine on the same stream:\n got %s\nwant %s", got, want)
			}
		}
	}
}

// TestArrayMutationKillOutcomeEquality reruns the PR-6 whole-device fault
// invariant with a mutation stream on board: killing one board mid-run
// (survivors absorb its shard and evacuated walks) changes nothing about
// walk outcomes or visit counts versus the clean 3-board run.
func TestArrayMutationKillOutcomeEquality(t *testing.T) {
	g, edges := mutTestGraph(t, false)
	ms := mutStream(edges, false)
	rc := mutConfig(false)
	rc.Cfg.Boards = 3
	rc.Mutations = ms
	clean := runArray(t, g, rc)

	kill := rc
	kill.Cfg.Faults.KillBoard = 1
	kill.Cfg.Faults.KillBoardAt = clean.Time / 2
	res := runArray(t, g, kill)
	if res.BoardKills != 1 {
		t.Fatalf("BoardKills = %d, want 1", res.BoardKills)
	}
	if res.MutationsApplied != uint64(len(ms)) {
		t.Fatalf("kill run applied %d of %d mutations", res.MutationsApplied, len(ms))
	}
	if res.Started != clean.Started || res.Completed != clean.Completed ||
		res.DeadEnded != clean.DeadEnded || res.Hops != clean.Hops {
		t.Fatalf("kill run outcomes (%d/%d/%d/%d) != clean (%d/%d/%d/%d)",
			res.Started, res.Completed, res.DeadEnded, res.Hops,
			clean.Started, clean.Completed, clean.DeadEnded, clean.Hops)
	}
	assertSameVisits(t, res.Visits, clean.Visits)
}

// TestArrayMutationKillThenResume combines all three fault layers: a
// 2-board run with a timed stream and a device kill scheduled between the
// stream's timestamps, interrupted at a strictly mid-stream snapshot and
// resumed — the resumed run replays the applied prefix, fires the
// remaining mutations AND the pending kill, and lands on the straight
// run's exact digest.
func TestArrayMutationKillThenResume(t *testing.T) {
	g, edges := mutTestGraph(t, false)
	rc := mutConfig(false)
	rc.Cfg.Boards = 2

	clocks := probeClocks(t, g, rc, true)
	ms0 := mutStream(edges, false)
	times := midStreamTimes(t, len(ms0), clocks)
	rc.Mutations = timedStream(ms0, times)
	ms := rc.Mutations
	rc.Cfg.Faults.KillBoard = 1
	// Kill in the middle of the timed span, between the stream's stamps.
	rc.Cfg.Faults.KillBoardAt = sim.Time((times[2] + times[len(times)-1]) / 2)

	clean := runArray(t, g, rc)
	if clean.BoardKills != 1 {
		t.Fatalf("straight run recorded %d kills, want 1", clean.BoardKills)
	}
	if clean.MutationsApplied != uint64(len(ms)) {
		t.Fatalf("straight run applied %d of %d mutations", clean.MutationsApplied, len(ms))
	}

	snap := interruptArrayMidStream(t, g, rc, len(ms))
	res, err := ResumeArrayContext(context.Background(), g, snap, ArrayResumeOptions{})
	if err != nil {
		t.Fatalf("ResumeArrayContext: %v", err)
	}
	if res.BoardKills != 1 {
		t.Fatalf("resumed run recorded %d kills, want 1", res.BoardKills)
	}
	if res.MutationsApplied != uint64(len(ms)) {
		t.Fatalf("resumed run applied %d of %d mutations", res.MutationsApplied, len(ms))
	}
	if got, want := digestResult(res), digestResult(clean); got != want {
		t.Fatalf("resumed kill+mutation run diverged:\n got %s\nwant %s", got, want)
	}
	assertSameVisits(t, res.Visits, clean.Visits)
}

// TestMutationInsertDeleteCancels proves equal timestamps apply in stream
// order and that incremental application is exactly invertible: inserting
// a brand-new edge and deleting it at the same instant restores every
// structure (CSR arrays, block stats, bloom counts) bit for bit, so the
// run matches a mutation-free one. The reversed stream — delete before
// its own insert — must be rejected up front.
func TestMutationInsertDeleteCancels(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec walk.Spec
	}{
		{name: "unbiased", spec: walk.Spec{Kind: walk.Unbiased, Length: 6}},
		{name: "secondorder", spec: walk.Spec{Kind: walk.SecondOrder, Length: 6, P: 0.5, Q: 2}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g, _ := mutTestGraph(t, false)
			rc := mutConfig(false)
			rc.Spec = tc.spec
			base := runEngine(t, g, rc)

			at := int64(base.Time) / 4
			rc.Mutations = graph.MutationStream{
				{At: at, Op: graph.OpInsertEdge, Src: 7, Dst: 7},
				{At: at, Op: graph.OpDeleteEdge, Src: 7, Dst: 7},
			}
			res := runEngine(t, g, rc)
			if res.MutationsApplied != 2 {
				t.Fatalf("applied %d mutations, want 2", res.MutationsApplied)
			}
			if got, want := digestResult(res), digestResult(base); got != want {
				t.Fatalf("insert+delete of the same edge at one instant moved the run:\n got %s\nwant %s", got, want)
			}
			assertSameVisits(t, res.Visits, base.Visits)

			rc.Mutations = graph.MutationStream{
				{At: at, Op: graph.OpDeleteEdge, Src: 7, Dst: 7},
				{At: at, Op: graph.OpInsertEdge, Src: 7, Dst: 7},
			}
			if _, err := NewEngine(g, rc); !errors.Is(err, errs.ErrInvalidConfig) {
				t.Fatalf("delete-before-insert at equal timestamps: %v, want ErrInvalidConfig", err)
			}
		})
	}
}

// TestMutationVisibilityBounds pins the visibility rule at the run's
// boundaries: a mutation stamped past the end is never applied and the
// run is bit-identical to a mutation-free one, while the same mutation at
// At == 0 is visible everywhere and moves the timeline.
func TestMutationVisibilityBounds(t *testing.T) {
	g, _ := mutTestGraph(t, false)
	rc := mutConfig(false)
	base := runEngine(t, g, rc)
	if base.Visits[40] == 0 {
		t.Fatal("test workload never visits vertex 40; pick a different mutation target")
	}
	del := graph.Mutation{Op: graph.OpDeleteEdge, Src: 40, Dst: mutDst(40, 0)}

	late := rc
	del.At = int64(base.Time) * 10
	late.Mutations = graph.MutationStream{del}
	resLate := runEngine(t, g, late)
	if resLate.MutationsApplied != 0 {
		t.Fatalf("mutation stamped past the end applied %d times", resLate.MutationsApplied)
	}
	if got, want := digestResult(resLate), digestResult(base); got != want {
		t.Fatalf("never-applied mutation still moved the run:\n got %s\nwant %s", got, want)
	}
	assertSameVisits(t, resLate.Visits, base.Visits)

	early := rc
	del.At = 0
	early.Mutations = graph.MutationStream{del}
	resEarly := runEngine(t, g, early)
	if resEarly.MutationsApplied != 1 {
		t.Fatalf("At=0 mutation applied %d times, want 1", resEarly.MutationsApplied)
	}
	if digestResult(resEarly) == digestResult(base) {
		t.Fatal("deleting a visited vertex's edge at At=0 left the run unchanged")
	}
}

// TestMutationStreamRejected guards validation at both construction
// entry points: malformed streams fail NewEngine and NewArray with
// ErrInvalidConfig before any state is built.
func TestMutationStreamRejected(t *testing.T) {
	g, _ := mutTestGraph(t, false)
	overCap := graph.MutationStream{}
	for j := 0; j < 40; j++ { // degree 8 + 40 > the 47-edge dense threshold
		overCap = append(overCap, graph.Mutation{Op: graph.OpInsertEdge, Src: 7, Dst: graph.VertexID(j)})
	}
	bad := map[string]graph.MutationStream{
		"time-unsorted": {
			{At: 5, Op: graph.OpInsertEdge, Src: 3, Dst: 4},
			{At: 1, Op: graph.OpInsertEdge, Src: 3, Dst: 5},
		},
		"negative-time":   {{At: -5, Op: graph.OpInsertEdge, Src: 3, Dst: 4}},
		"missing-edge":    {{Op: graph.OpDeleteEdge, Src: 3, Dst: 3}},
		"vertex-range":    {{Op: graph.OpInsertEdge, Src: mutNV, Dst: 0}},
		"unknown-op":      {{Op: "rewire", Src: 1, Dst: 2}},
		"weight-on-plain": {{Op: graph.OpInsertEdge, Src: 1, Dst: 2, Weight: 1.5}},
		"degree-cap":      overCap,
	}
	for name, ms := range bad {
		t.Run(name, func(t *testing.T) {
			rc := mutConfig(false)
			rc.Mutations = ms
			if _, err := NewEngine(g, rc); !errors.Is(err, errs.ErrInvalidConfig) {
				t.Fatalf("NewEngine: %v, want ErrInvalidConfig", err)
			}
			rc.Cfg.Boards = 2
			if _, err := NewArray(g, rc); !errors.Is(err, errs.ErrInvalidConfig) {
				t.Fatalf("NewArray: %v, want ErrInvalidConfig", err)
			}
		})
	}
}

// TestMutationEmptyStreamKeepsGoldenDigest is the acceptance guard that
// the feature is fully nil-gated: a zero-length (but non-nil) stream runs
// the classic static path and reproduces the pinned golden digest byte
// for byte — no golden was re-captured for this change.
func TestMutationEmptyStreamKeepsGoldenDigest(t *testing.T) {
	g := testGraph(t)
	rc := goldenConfig()
	rc.Mutations = graph.MutationStream{}
	res := runEngine(t, g, rc)
	if got := digestResult(res); got != goldenDigest {
		t.Fatalf("empty mutation stream moved the golden digest:\n got %s\nwant %s", got, goldenDigest)
	}
	if res.MutationsApplied != 0 {
		t.Fatalf("empty stream applied %d mutations", res.MutationsApplied)
	}
}
