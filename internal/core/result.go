package core

import (
	"flashwalker/internal/fault"
	"flashwalker/internal/flash"
	"flashwalker/internal/metrics"
	"flashwalker/internal/sim"
)

// Result aggregates a FlashWalker run's outcome and instrumentation.
type Result struct {
	// Time is the simulated end-to-end execution time.
	Time sim.Time

	// Walk outcomes.
	Started   int
	Completed int
	DeadEnded int
	Hops      uint64

	// Flash / DRAM traffic, copied from the device models at completion.
	Flash flash.Counters
	DRAMReadBytes,
	DRAMWriteBytes int64

	// Routing instrumentation.
	RovingTransfers   uint64 // chip->channel roving batches
	RovingWalks       uint64 // walks moved in those batches
	QueryCacheHits    uint64
	QueryCacheMisses  uint64
	TableSearchSteps  uint64 // binary-search steps on the mapping table
	RangeQueries      uint64 // channel-level approximate searches
	PreWalks          uint64 // dense-vertex pre-walk decisions
	FilterProbes      uint64 // edge-bloom probes by second-order sampling
	HotHitsChannel    uint64 // walks updated in channel-level hot subgraphs
	HotHitsBoard      uint64 // walks updated in board-level hot subgraphs
	ChipUpdates       uint64 // walks updated by chip-level accelerators
	SubgraphLoads     uint64 // subgraph load commands issued to chips
	SubgraphReloads   uint64 // loads that found the block already resident
	PWBOverflows      uint64 // partition-walk-buffer entry flushes to flash
	ForeignerWalks    uint64 // walks classified as foreigners
	ForeignerFlushes  uint64 // foreigner buffer flushes to flash
	CompletedFlushes  uint64 // completed-walk buffer flushes
	GuiderStalls      uint64 // chip guider stalls on a full roving buffer
	PartitionSwitches uint64
	MutationsApplied  uint64 // graph mutations applied (this board's share)

	// Multi-board array instrumentation (all zero on single-board runs).
	Boards         int    // board count the run executed on
	FabricWalks    uint64 // walks serialized over the inter-board fabric
	FabricBatches  uint64 // fabric transfer batches shipped
	FabricBytes    int64  // bytes crossing the fabric
	EvacuatedWalks uint64 // walks evacuated off a killed board
	BoardKills     uint64 // whole-device kills injected

	// Fault-injection outcome (all zero unless Config.Faults.Enabled).
	Faults         fault.Counters
	FaultReroutes  uint64 // walks rerouted from degraded chips to their channel
	FailoverBlocks uint64 // blocks failed over into channel hot sets

	// Utilizations at completion (0..1).
	ChipUpdaterUtil    float64
	ChannelGuiderUtil  float64
	BoardGuiderUtil    float64
	ChannelBusUtilMax  float64
	DRAMPortUtil       float64
	ChipUpdaterUtilMax float64

	// Visits holds per-vertex visit counts when RunConfig.TrackVisits is
	// set (start vertices count once; every hop counts its destination).
	Visits []uint64

	// Optional time series (bin width set by RunConfig.ProgressBin).
	ReadTS     *metrics.TimeSeries // flash read bytes
	WriteTS    *metrics.TimeSeries // flash program bytes
	ChannelTS  *metrics.TimeSeries // channel bus bytes
	ProgressTS *metrics.TimeSeries // walks finished per bin
}

// WalksFinished reports completed + dead-ended walks.
func (r *Result) WalksFinished() int { return r.Completed + r.DeadEnded }

// HopRate reports updated hops per simulated second.
func (r *Result) HopRate() float64 {
	if r.Time <= 0 {
		return 0
	}
	return float64(r.Hops) / r.Time.Seconds()
}

// QueryCacheHitRate reports the walk query cache hit fraction.
func (r *Result) QueryCacheHitRate() float64 {
	tot := r.QueryCacheHits + r.QueryCacheMisses
	if tot == 0 {
		return 0
	}
	return float64(r.QueryCacheHits) / float64(tot)
}
