package core

import (
	"context"
	"errors"
	"testing"

	"flashwalker/internal/errs"
	"flashwalker/internal/fault"
	"flashwalker/internal/graph"
	"flashwalker/internal/sim"
	"flashwalker/internal/snapshot"
	"flashwalker/internal/walk"
)

// resumeFaultConfig is a fault mix aggressive enough to degrade chips and
// trigger failover during the golden workload.
func resumeFaultConfig() fault.Config {
	return fault.Config{
		Enabled:             true,
		Seed:                0xFA17,
		ReadErrorRate:       0.3,
		MaxRetries:          2,
		RetryBackoff:        5 * sim.Microsecond,
		DegradeAfterErrors:  2,
		DegradedReadPenalty: 30 * sim.Microsecond,
	}
}

// interruptCore runs rc until its snapshotAt-th successful snapshot,
// cancels the run at that exact checkpoint, and returns the snapshot after
// round-tripping it through the on-disk codec (so the test also proves the
// whole state image survives serialization, not just in-process copying).
func interruptCore(t *testing.T, g *graph.Graph, rc RunConfig, snapshotAt int) *Snapshot {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var captured *Snapshot
	count := 0
	rc.CheckpointEvery = 64
	rc.SnapshotEvery = 1
	rc.OnSnapshot = func(s *Snapshot) {
		count++
		if count == snapshotAt {
			captured = s
			cancel()
		}
	}
	e, err := NewEngine(g, rc)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if _, err := e.RunContext(ctx); err == nil {
		t.Fatalf("run finished after only %d snapshots; interrupt never landed", count)
	}
	if captured == nil {
		t.Fatalf("run ended with %d snapshots, wanted %d", count, snapshotAt)
	}
	data, err := snapshot.Encode("core-engine", captured)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	back := new(Snapshot)
	if err := snapshot.Decode(data, "core-engine", back); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	return back
}

// TestResumeMetamorphic is the headline invariant of the checkpoint layer:
// for every walk kind, with and without fault injection, run-to-completion
// and snapshot -> kill -> serialize -> deserialize -> resume produce
// bit-identical Results — same full digest (timeline included) and same
// per-vertex visit counts.
func TestResumeMetamorphic(t *testing.T) {
	cases := map[string]struct {
		spec   walk.Spec
		faults fault.Config
	}{
		"unbiased":           {spec: walk.Spec{Kind: walk.Unbiased, Length: 6}},
		"unbiased-faults":    {spec: walk.Spec{Kind: walk.Unbiased, Length: 6}, faults: resumeFaultConfig()},
		"secondorder":        {spec: walk.Spec{Kind: walk.SecondOrder, Length: 6, P: 0.5, Q: 2}},
		"secondorder-faults": {spec: walk.Spec{Kind: walk.SecondOrder, Length: 6, P: 0.5, Q: 2}, faults: resumeFaultConfig()},
	}
	g := testGraph(t)
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			rc := goldenConfig()
			rc.Spec = tc.spec
			rc.Cfg.Faults = tc.faults
			rc.TrackVisits = true
			clean := runEngine(t, g, rc)

			snap := interruptCore(t, g, rc, 3)
			res, err := ResumeContext(context.Background(), g, snap, ResumeOptions{})
			if err != nil {
				t.Fatalf("ResumeContext: %v", err)
			}
			if got, want := digestResult(res), digestResult(clean); got != want {
				t.Fatalf("resumed run diverged from uninterrupted run:\n got %s\nwant %s", got, want)
			}
			if len(res.Visits) != len(clean.Visits) {
				t.Fatalf("visit vector length %d, want %d", len(res.Visits), len(clean.Visits))
			}
			for v := range clean.Visits {
				if res.Visits[v] != clean.Visits[v] {
					t.Fatalf("vertex %d visited %d times resumed, %d clean", v, res.Visits[v], clean.Visits[v])
				}
			}
		})
	}
}

// TestResumeChained proves snapshots compose: a resumed run keeps
// snapshotting, and resuming from a second-generation snapshot still lands
// on the uninterrupted result.
func TestResumeChained(t *testing.T) {
	g := testGraph(t)
	rc := goldenConfig()
	clean := runEngine(t, g, rc)

	first := interruptCore(t, g, rc, 2)

	// Resume, snapshot again further in, interrupt again.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var second *Snapshot
	count := 0
	e, err := ResumeEngine(g, first, ResumeOptions{
		CheckpointEvery: 64,
		SnapshotEvery:   1,
		OnSnapshot: func(s *Snapshot) {
			count++
			if count == 2 {
				second = s
				cancel()
			}
		},
	})
	if err != nil {
		t.Fatalf("ResumeEngine: %v", err)
	}
	if _, err := e.RunContext(ctx); err == nil {
		t.Fatalf("second leg finished after %d snapshots; interrupt never landed", count)
	}
	if second == nil {
		t.Fatalf("second leg took %d snapshots, wanted 2", count)
	}

	res, err := ResumeContext(context.Background(), g, second, ResumeOptions{})
	if err != nil {
		t.Fatalf("final ResumeContext: %v", err)
	}
	if got, want := digestResult(res), digestResult(clean); got != want {
		t.Fatalf("twice-resumed run diverged:\n got %s\nwant %s", got, want)
	}
}

// TestResumeRejectsWrongGraph guards against resuming over the wrong
// dataset: graph identity is validated before any state is overlaid.
func TestResumeRejectsWrongGraph(t *testing.T) {
	g := testGraph(t)
	snap := interruptCore(t, g, goldenConfig(), 1)

	other, err := graph.RMAT(graph.DefaultRMAT(1024, 8192, 5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ResumeEngine(other, snap, ResumeOptions{}); err == nil {
		t.Fatal("resume over a different graph succeeded")
	} else if !errors.Is(err, errs.ErrInvalidConfig) {
		t.Fatalf("wrong-graph resume error %v, want ErrInvalidConfig", err)
	}
}
