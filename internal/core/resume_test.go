package core

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"testing"

	"flashwalker/internal/blob"
	"flashwalker/internal/errs"
	"flashwalker/internal/fault"
	"flashwalker/internal/graph"
	"flashwalker/internal/sim"
	"flashwalker/internal/snapshot"
	"flashwalker/internal/walk"
)

// resumeFaultConfig is a fault mix aggressive enough to degrade chips and
// trigger failover during the golden workload.
func resumeFaultConfig() fault.Config {
	return fault.Config{
		Enabled:             true,
		Seed:                0xFA17,
		ReadErrorRate:       0.3,
		MaxRetries:          2,
		RetryBackoff:        5 * sim.Microsecond,
		DegradeAfterErrors:  2,
		DegradedReadPenalty: 30 * sim.Microsecond,
	}
}

// interruptCore runs rc until its snapshotAt-th successful snapshot,
// cancels the run at that exact checkpoint, and returns the snapshot after
// round-tripping it through the on-disk codec (so the test also proves the
// whole state image survives serialization, not just in-process copying).
func interruptCore(t *testing.T, g *graph.Graph, rc RunConfig, snapshotAt int) *Snapshot {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var captured *Snapshot
	count := 0
	rc.CheckpointEvery = 64
	rc.SnapshotEvery = 1
	rc.OnSnapshot = func(s *Snapshot) {
		count++
		if count == snapshotAt {
			captured = s
			cancel()
		}
	}
	e, err := NewEngine(g, rc)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if _, err := e.RunContext(ctx); err == nil {
		t.Fatalf("run finished after only %d snapshots; interrupt never landed", count)
	}
	if captured == nil {
		t.Fatalf("run ended with %d snapshots, wanted %d", count, snapshotAt)
	}
	data, err := snapshot.Encode("core-engine", captured)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	back := new(Snapshot)
	if err := snapshot.Decode(data, "core-engine", back); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	return back
}

// interruptCoreChain is interruptCore's multi-cut sibling: it runs rc,
// retains the first `cuts` consecutive snapshots, and cancels the run at
// the last one. The raw snapshots come back un-serialized — the delta
// chain tests round-trip them through containers themselves.
func interruptCoreChain(t *testing.T, g *graph.Graph, rc RunConfig, cuts int) []*Snapshot {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var snaps []*Snapshot
	rc.CheckpointEvery = 64
	rc.SnapshotEvery = 1
	rc.OnSnapshot = func(s *Snapshot) {
		snaps = append(snaps, s)
		if len(snaps) == cuts {
			cancel()
		}
	}
	e, err := NewEngine(g, rc)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if _, err := e.RunContext(ctx); err == nil {
		t.Fatalf("run finished after only %d snapshots; interrupt never landed", len(snaps))
	}
	if len(snaps) < cuts {
		t.Fatalf("run ended with %d snapshots, wanted %d", len(snaps), cuts)
	}
	return snaps[:cuts]
}

// resumeFromDeltaChain is the storage-layer delta path end to end: take
// `cuts` consecutive snapshot cuts, encode cut 0 as a full container and
// each later cut as a delta container chained by the previous container's
// seal, push the whole chain through an HTTP object store (the package's
// own httptest-served Handler), read it back verifying every link, apply
// the deltas, and resume from the reconstructed image.
func resumeFromDeltaChain(t *testing.T, g *graph.Graph, rc RunConfig, cuts int) *Result {
	t.Helper()
	snaps := interruptCoreChain(t, g, rc, cuts)

	ts := httptest.NewServer(blob.Handler(blob.NewMem()))
	defer ts.Close()
	store, err := blob.NewHTTP(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}

	key := func(i int) string {
		if i == 0 {
			return "snapshots/job-t.snap"
		}
		return fmt.Sprintf("snapshots/job-t.d%d.snap", i)
	}
	data, err := snapshot.Encode("core-engine", snaps[0])
	if err != nil {
		t.Fatalf("Encode full: %v", err)
	}
	if err := store.Put(key(0), data); err != nil {
		t.Fatalf("Put full: %v", err)
	}
	sha, err := snapshot.Seal(data)
	if err != nil {
		t.Fatalf("Seal full: %v", err)
	}
	for i := 1; i < len(snaps); i++ {
		d := DiffSnapshot(snaps[i-1], snaps[i], sha, i)
		if len(d.Blocks) == 0 && len(d.Parts) == 0 {
			t.Fatalf("cut %d dirtied no stores; the chain test is vacuous", i)
		}
		dd, err := snapshot.Encode("core-delta", d)
		if err != nil {
			t.Fatalf("Encode delta %d: %v", i, err)
		}
		if err := store.Put(key(i), dd); err != nil {
			t.Fatalf("Put delta %d: %v", i, err)
		}
		if sha, err = snapshot.Seal(dd); err != nil {
			t.Fatalf("Seal delta %d: %v", i, err)
		}
	}

	// Read the chain back and reconstruct the final image.
	data, err = store.Get(key(0))
	if err != nil {
		t.Fatalf("Get full: %v", err)
	}
	cur := new(Snapshot)
	if err := snapshot.Decode(data, "core-engine", cur); err != nil {
		t.Fatalf("Decode full: %v", err)
	}
	if sha, err = snapshot.Seal(data); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(snaps); i++ {
		dd, err := store.Get(key(i))
		if err != nil {
			t.Fatalf("Get delta %d: %v", i, err)
		}
		var d SnapshotDelta
		if err := snapshot.Decode(dd, "core-delta", &d); err != nil {
			t.Fatalf("Decode delta %d: %v", i, err)
		}
		if d.BaseSHA != sha {
			t.Fatalf("delta %d chains to %x, container before it sealed %x", i, d.BaseSHA, sha)
		}
		if cur, err = ApplyDelta(cur, &d); err != nil {
			t.Fatalf("ApplyDelta %d: %v", i, err)
		}
		if sha, err = snapshot.Seal(dd); err != nil {
			t.Fatal(err)
		}
	}
	res, err := ResumeContext(context.Background(), g, cur, ResumeOptions{})
	if err != nil {
		t.Fatalf("ResumeContext from delta chain: %v", err)
	}
	return res
}

// TestResumeMetamorphic is the headline invariant of the checkpoint layer:
// for every walk kind, with and without fault injection, run-to-completion
// and snapshot -> kill -> serialize -> deserialize -> resume produce
// bit-identical Results — same full digest (timeline included) and same
// per-vertex visit counts. The delta-chain leg proves the same for the
// storage layer's full -> K deltas -> kill -> resume path, through an HTTP
// object store.
func TestResumeMetamorphic(t *testing.T) {
	cases := map[string]struct {
		spec   walk.Spec
		faults fault.Config
	}{
		"unbiased":           {spec: walk.Spec{Kind: walk.Unbiased, Length: 6}},
		"unbiased-faults":    {spec: walk.Spec{Kind: walk.Unbiased, Length: 6}, faults: resumeFaultConfig()},
		"secondorder":        {spec: walk.Spec{Kind: walk.SecondOrder, Length: 6, P: 0.5, Q: 2}},
		"secondorder-faults": {spec: walk.Spec{Kind: walk.SecondOrder, Length: 6, P: 0.5, Q: 2}, faults: resumeFaultConfig()},
	}
	g := testGraph(t)
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			rc := goldenConfig()
			rc.Spec = tc.spec
			rc.Cfg.Faults = tc.faults
			rc.TrackVisits = true
			clean := runEngine(t, g, rc)

			snap := interruptCore(t, g, rc, 3)
			res, err := ResumeContext(context.Background(), g, snap, ResumeOptions{})
			if err != nil {
				t.Fatalf("ResumeContext: %v", err)
			}
			if got, want := digestResult(res), digestResult(clean); got != want {
				t.Fatalf("resumed run diverged from uninterrupted run:\n got %s\nwant %s", got, want)
			}
			if len(res.Visits) != len(clean.Visits) {
				t.Fatalf("visit vector length %d, want %d", len(res.Visits), len(clean.Visits))
			}
			for v := range clean.Visits {
				if res.Visits[v] != clean.Visits[v] {
					t.Fatalf("vertex %d visited %d times resumed, %d clean", v, res.Visits[v], clean.Visits[v])
				}
			}

			chainRes := resumeFromDeltaChain(t, g, rc, 4)
			if got, want := digestResult(chainRes), digestResult(clean); got != want {
				t.Fatalf("delta-chain resume diverged from uninterrupted run:\n got %s\nwant %s", got, want)
			}
			for v := range clean.Visits {
				if chainRes.Visits[v] != clean.Visits[v] {
					t.Fatalf("vertex %d visited %d times via delta chain, %d clean", v, chainRes.Visits[v], clean.Visits[v])
				}
			}
		})
	}
}

// TestResumeChained proves snapshots compose: a resumed run keeps
// snapshotting, and resuming from a second-generation snapshot still lands
// on the uninterrupted result.
func TestResumeChained(t *testing.T) {
	g := testGraph(t)
	rc := goldenConfig()
	clean := runEngine(t, g, rc)

	first := interruptCore(t, g, rc, 2)

	// Resume, snapshot again further in, interrupt again.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var second *Snapshot
	count := 0
	e, err := ResumeEngine(g, first, ResumeOptions{
		CheckpointEvery: 64,
		SnapshotEvery:   1,
		OnSnapshot: func(s *Snapshot) {
			count++
			if count == 2 {
				second = s
				cancel()
			}
		},
	})
	if err != nil {
		t.Fatalf("ResumeEngine: %v", err)
	}
	if _, err := e.RunContext(ctx); err == nil {
		t.Fatalf("second leg finished after %d snapshots; interrupt never landed", count)
	}
	if second == nil {
		t.Fatalf("second leg took %d snapshots, wanted 2", count)
	}

	res, err := ResumeContext(context.Background(), g, second, ResumeOptions{})
	if err != nil {
		t.Fatalf("final ResumeContext: %v", err)
	}
	if got, want := digestResult(res), digestResult(clean); got != want {
		t.Fatalf("twice-resumed run diverged:\n got %s\nwant %s", got, want)
	}
}

// TestResumeRejectsWrongGraph guards against resuming over the wrong
// dataset: graph identity is validated before any state is overlaid.
func TestResumeRejectsWrongGraph(t *testing.T) {
	g := testGraph(t)
	snap := interruptCore(t, g, goldenConfig(), 1)

	other, err := graph.RMAT(graph.DefaultRMAT(1024, 8192, 5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ResumeEngine(other, snap, ResumeOptions{}); err == nil {
		t.Fatal("resume over a different graph succeeded")
	} else if !errors.Is(err, errs.ErrInvalidConfig) {
		t.Fatalf("wrong-graph resume error %v, want ErrInvalidConfig", err)
	}
}
