package core

import (
	"flashwalker/internal/partition"
)

// This file holds the board-level routing decision logic — the one place a
// walk's destination is resolved. The tiers below it (channel, chip) only
// test membership in their own residents; everything that consults the
// subgraph mapping table, the dense-vertices table, or the walk query
// caches is here, so a new routing policy is a localized change.

// routeDecision is a precomputed guider classification.
type routeDecision struct {
	st          wstate
	blockID     int // destination block in current partition, -1 if n/a
	foreignPart int // >=0: walk leaves the current partition
	ops         int // guider operations
	searchSteps int // mapping table accesses needing a port
}

// classify decides a walk's destination: dense pre-walk, query-cache hit,
// or mapping-table binary search (restricted to the tagged range when the
// approximate walk search ran).
func (b *boardAccel) classify(st wstate) routeDecision {
	e := b.e
	d := routeDecision{st: st, blockID: -1, foreignPart: -1, ops: 1}

	// Pre-walked dense walks already know their block.
	if st.denseBlock >= 0 {
		d.blockID = st.denseBlock
		if !e.inCurrentPartition(d.blockID) {
			d.foreignPart = e.part.PartitionOf(d.blockID)
		}
		return d
	}

	// Dense-vertices mapping table: bloom filter, then hash table
	// (§III-D). The serial lookup is cheap because the filter rejects
	// almost every non-dense vertex.
	d.ops++ // bloom probe
	if e.part.Dense.Contains(st.w.Cur) {
		d.ops++ // hash probe
		if meta, ok := e.part.Dense.Lookup(st.w.Cur); ok {
			// Pre-walking: choose the next edge now, before loading any of
			// the dense vertex's graph blocks, and route the walk to the
			// block holding that edge. The draw comes from the walk's own
			// stream via the same sampler decideHop uses, so pre-walked and
			// directly-updated paths consume the stream identically.
			idx, extra, probes := e.chooseNextEdge(&d.st.rng, st, meta.OutDegree)
			e.chargeFilterProbes(hopOutcome{filterProbes: probes}, nil)
			d.ops += 1 + extra
			blockID, _ := partition.DenseBlockFor(meta, idx)
			d.st.denseBlock = blockID
			d.st.denseEdge = idx
			d.blockID = blockID
			e.res.PreWalks++
			if !e.inCurrentPartition(blockID) {
				d.foreignPart = e.part.PartitionOf(blockID)
			}
			return d
		}
		// Bloom false positive: fall through to the normal search; the
		// design stays correct (§III-D).
	}

	// Walk query cache (§III-D).
	if e.cfg.Opts.WalkQuery && len(b.caches) > 0 {
		qc := b.caches[b.cacheRR]
		b.cacheRR = (b.cacheRR + 1) % len(b.caches)
		d.ops++ // cache probe
		if blockID, ok := qc.lookup(st.w.Cur); ok {
			e.res.QueryCacheHits++
			d.blockID = blockID
			if !e.inCurrentPartition(blockID) {
				d.foreignPart = e.part.PartitionOf(blockID)
			}
			return d
		}
		e.res.QueryCacheMisses++
		blockID, steps := b.search(st)
		d.searchSteps = steps
		d.blockID = blockID
		if blockID >= 0 {
			blk := &e.part.Blocks[blockID]
			qc.insert(blk.LowVertex, blk.HighVertex, blockID)
			if !e.inCurrentPartition(blockID) {
				d.foreignPart = e.part.PartitionOf(blockID)
			}
		} else {
			d.foreignPart, d.searchSteps = b.resolveForeign(st, d.searchSteps)
		}
		return d
	}

	// No walk-query optimization: full binary search over the current
	// partition's mapping entries.
	blockID, steps := b.search(st)
	d.searchSteps = steps
	d.blockID = blockID
	if blockID >= 0 {
		if !e.inCurrentPartition(blockID) {
			d.foreignPart = e.part.PartitionOf(blockID)
		}
	} else {
		d.foreignPart, d.searchSteps = b.resolveForeign(st, d.searchSteps)
	}
	return d
}

// search binary-searches the subgraph mapping table for the walk's current
// vertex. With a range tag the search is restricted to the intersection of
// the tagged range and the current partition; otherwise it spans the
// current partition's entries.
func (b *boardAccel) search(st wstate) (blockID, steps int) {
	e := b.e
	first, last := e.part.PartitionSpan(e.curPart)
	if st.rangeTag >= 0 {
		r := e.part.Ranges[st.rangeTag]
		if r.FirstBlock > first {
			first = r.FirstBlock
		}
		if r.LastBlock < last {
			last = r.LastBlock
		}
		if first > last {
			return -1, 1
		}
	}
	blockID, steps = e.part.BlockOfInRange(st.w.Cur, partition.Range{FirstBlock: first, LastBlock: last})
	e.res.TableSearchSteps += uint64(steps)
	return blockID, steps
}

// resolveForeign determines a foreigner's destination partition with a
// global table search (charged on top of the failed partition search).
func (b *boardAccel) resolveForeign(st wstate, steps int) (part, totalSteps int) {
	e := b.e
	blockID, extra := e.part.BlockOf(st.w.Cur)
	e.res.TableSearchSteps += uint64(extra)
	if blockID < 0 {
		// Unmapped vertex (can only be dense, which was handled above) —
		// treat as home partition to stay safe.
		return e.homePartition(st.w.Cur), steps + extra
	}
	return e.part.PartitionOf(blockID), steps + extra
}
