package core

import (
	"testing"

	"flashwalker/internal/graph"
	"flashwalker/internal/rng"
	"flashwalker/internal/walk"
)

// Tests for the board-level routing decision logic (route.go) and the
// shared hot-update admission (tier.go). The engine is built but never
// run: classify and route are called directly with crafted walk states,
// so each decision path is pinned independently of event ordering.

// newRouteEngine builds an engine and pretends partition 0 is active, the
// state classify sees mid-run.
func newRouteEngine(t *testing.T, g *graph.Graph, rc RunConfig) *Engine {
	t.Helper()
	e, err := NewEngine(g, rc)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	e.curPart = 0
	return e
}

// routeWalk is a fresh, untagged walk sitting at v. The walk gets its own
// seeded RNG stream (a zero-value stream is degenerate and must never be
// drawn from).
func routeWalk(v graph.VertexID) wstate {
	return wstate{w: walk.Walk{Src: v, Cur: v, Hop: 6}, denseBlock: -1, rangeTag: -1, prev: noPrev,
		rng: *rng.New(uint64(v) + 1)}
}

// firstNonDense returns the first non-dense block of partition p and a
// vertex stored in it.
func firstNonDense(t *testing.T, e *Engine, p int) (blockID int, v graph.VertexID) {
	t.Helper()
	first, last := e.part.PartitionSpan(p)
	for b := first; b <= last; b++ {
		if !e.part.Blocks[b].Dense {
			return b, e.part.Blocks[b].LowVertex
		}
	}
	t.Fatalf("partition %d has no non-dense block", p)
	return -1, 0
}

func TestClassifyDecisions(t *testing.T) {
	g := testGraph(t)
	base := testConfig()
	base.PartCfg.SubgraphsPerPartition = 8 // force multiple partitions

	cases := []struct {
		name string
		opts Options
		// prep returns the walk to classify, possibly after warming caches.
		prep  func(t *testing.T, e *Engine) wstate
		check func(t *testing.T, e *Engine, d routeDecision)
	}{
		{
			name: "binary search without walk query",
			opts: Options{},
			prep: func(t *testing.T, e *Engine) wstate {
				_, v := firstNonDense(t, e, 0)
				return routeWalk(v)
			},
			check: func(t *testing.T, e *Engine, d routeDecision) {
				blk, _ := firstNonDense(t, e, 0)
				if d.blockID != blk {
					t.Fatalf("blockID = %d, want %d", d.blockID, blk)
				}
				if d.searchSteps < 1 {
					t.Fatal("binary search charged no table steps")
				}
				if d.foreignPart != -1 {
					t.Fatalf("local walk marked foreign (partition %d)", d.foreignPart)
				}
				if e.res.QueryCacheHits+e.res.QueryCacheMisses != 0 {
					t.Fatal("query cache consulted with WalkQuery disabled")
				}
			},
		},
		{
			name: "query cache miss falls back to search",
			opts: Options{WalkQuery: true},
			prep: func(t *testing.T, e *Engine) wstate {
				_, v := firstNonDense(t, e, 0)
				return routeWalk(v)
			},
			check: func(t *testing.T, e *Engine, d routeDecision) {
				if e.res.QueryCacheMisses != 1 || e.res.QueryCacheHits != 0 {
					t.Fatalf("hits=%d misses=%d, want cold miss", e.res.QueryCacheHits, e.res.QueryCacheMisses)
				}
				if d.searchSteps < 1 {
					t.Fatal("miss did not search the mapping table")
				}
				if blk, _ := firstNonDense(t, e, 0); d.blockID != blk {
					t.Fatalf("blockID = %d, want %d", d.blockID, blk)
				}
			},
		},
		{
			name: "query cache hit skips the table",
			opts: Options{WalkQuery: true},
			prep: func(t *testing.T, e *Engine) wstate {
				_, v := firstNonDense(t, e, 0)
				// The board rotates round-robin over its caches; one miss per
				// cache fills them all, so the next classify must hit.
				for range e.board.caches {
					e.board.classify(routeWalk(v))
				}
				return routeWalk(v)
			},
			check: func(t *testing.T, e *Engine, d routeDecision) {
				if e.res.QueryCacheHits != 1 {
					t.Fatalf("hits = %d after warming every cache", e.res.QueryCacheHits)
				}
				if d.searchSteps != 0 {
					t.Fatal("cache hit still searched the mapping table")
				}
				if blk, _ := firstNonDense(t, e, 0); d.blockID != blk {
					t.Fatalf("blockID = %d, want %d", d.blockID, blk)
				}
			},
		},
		{
			name: "foreigner resolves its destination partition",
			opts: Options{},
			prep: func(t *testing.T, e *Engine) wstate {
				if e.part.NumPartitions < 2 {
					t.Skip("graph fits one partition")
				}
				_, v := firstNonDense(t, e, 1)
				return routeWalk(v)
			},
			check: func(t *testing.T, e *Engine, d routeDecision) {
				if d.blockID != -1 {
					t.Fatalf("foreigner got local block %d", d.blockID)
				}
				if d.foreignPart != 1 {
					t.Fatalf("foreignPart = %d, want 1", d.foreignPart)
				}
			},
		},
		{
			name: "range tag restricts the search to the right block",
			opts: Options{},
			prep: func(t *testing.T, e *Engine) wstate {
				blk, v := firstNonDense(t, e, 0)
				st := routeWalk(v)
				for _, r := range e.part.Ranges {
					if r.FirstBlock <= blk && blk <= r.LastBlock {
						st.rangeTag = r.ID
						break
					}
				}
				if st.rangeTag < 0 {
					t.Fatalf("no range covers block %d", blk)
				}
				return st
			},
			check: func(t *testing.T, e *Engine, d routeDecision) {
				if blk, _ := firstNonDense(t, e, 0); d.blockID != blk {
					t.Fatalf("tagged search found block %d, want %d", d.blockID, blk)
				}
				if d.foreignPart != -1 {
					t.Fatal("tagged local walk marked foreign")
				}
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rc := base
			rc.Cfg.Opts = tc.opts
			e := newRouteEngine(t, g, rc)
			st := tc.prep(t, e)
			d := e.board.classify(st)
			tc.check(t, e, d)
		})
	}
}

func TestClassifyDensePreWalk(t *testing.T) {
	// A star hub too big for one block lands in the dense-vertices table.
	g := graph.Star(2000)
	e := newRouteEngine(t, g, testConfig())
	var hub graph.VertexID
	found := false
	for v := graph.VertexID(0); uint64(v) < g.NumVertices(); v++ {
		if _, ok := e.part.Dense.Lookup(v); ok {
			hub, found = v, true
			break
		}
	}
	if !found {
		t.Fatal("no dense vertex on a 2000-spoke star")
	}

	d := e.board.classify(routeWalk(hub))
	if d.st.denseBlock < 0 {
		t.Fatal("dense vertex not pre-walked")
	}
	if d.blockID != d.st.denseBlock {
		t.Fatalf("routed to %d, pre-walked block is %d", d.blockID, d.st.denseBlock)
	}
	if d.searchSteps != 0 {
		t.Fatal("dense path searched the mapping table")
	}
	if e.res.PreWalks != 1 {
		t.Fatalf("PreWalks = %d", e.res.PreWalks)
	}
	if e.inCurrentPartition(d.blockID) != (d.foreignPart == -1) {
		t.Fatalf("partition membership and foreignPart disagree: block %d, foreignPart %d",
			d.blockID, d.foreignPart)
	}

	// A pre-walked walk arriving at the board keeps its chosen block and is
	// not pre-walked again.
	d2 := e.board.classify(d.st)
	if d2.blockID != d.st.denseBlock || d2.ops != 1 {
		t.Fatalf("re-classify: blockID=%d ops=%d", d2.blockID, d2.ops)
	}
	if e.res.PreWalks != 1 {
		t.Fatalf("PreWalks = %d after re-classify", e.res.PreWalks)
	}
}

func TestRouteHotSubgraphAdmission(t *testing.T) {
	g := testGraph(t)
	e := newRouteEngine(t, g, testConfig())
	b := e.board
	blk, v := firstNonDense(t, e, 0)
	st := routeWalk(v)
	e.activeCur = 10 // keep demotions from ending the (unstarted) partition

	// Not hot: the walk buffers into the block's PWB entry.
	b.route(routeDecision{st: st, blockID: blk, foreignPart: -1})
	if len(e.pwb[blk]) != 1 {
		t.Fatalf("PWB entry holds %d walks, want 1", len(e.pwb[blk]))
	}

	// Hot and under the queue cap: updated in place, not buffered.
	b.hot = newHotIndex(e.part, []int{blk})
	b.hotReady = true
	before := b.queueBytes
	b.route(routeDecision{st: st, blockID: blk, foreignPart: -1})
	if len(e.pwb[blk]) != 1 {
		t.Fatal("hot walk was buffered to the PWB")
	}
	if b.queueBytes != before+st.sizeBytes() {
		t.Fatalf("queueBytes = %d, want %d", b.queueBytes, before+st.sizeBytes())
	}

	// Queue full: hot routing falls back to the PWB.
	b.queueBytes = b.queueCap
	b.route(routeDecision{st: st, blockID: blk, foreignPart: -1})
	if len(e.pwb[blk]) != 2 {
		t.Fatal("over-cap hot walk not buffered to the PWB")
	}

	// A foreign decision wins over everything else. pendingMem[1] already
	// holds seeded walks, so compare against the pre-route length.
	if e.part.NumPartitions >= 2 {
		seeded := len(e.pendingMem[1])
		b.route(routeDecision{st: st, blockID: -1, foreignPart: 1})
		if e.res.ForeignerWalks != 1 || len(e.pendingMem[1]) != seeded+1 {
			t.Fatalf("foreigner not demoted: walks=%d pending=%d (seeded %d)",
				e.res.ForeignerWalks, len(e.pendingMem[1]), seeded)
		}
	}
}
