package core

import (
	"fmt"

	"flashwalker/internal/flash"
	"flashwalker/internal/trace"
	"flashwalker/internal/walk"
)

// This file is the engine-side walk routing support shared by the tiers —
// the foreigner path (demotion, buffer flush, read-back debt) — and the
// walk-conservation audit that proves no walk is lost or duplicated while
// moving between stores.

// demoteWalk moves a foreigner out of the current partition: the walk
// lands in the board's foreigner buffer (tracked as the tail of
// pendingMem[p]); if the buffer fills, every buffered foreigner is flushed
// to flash (§III-C/D).
func (e *Engine) demoteWalk(p int, st wstate) {
	// Only the range tag is partition-relative; the dense pre-walk decision
	// (denseBlock/denseEdge) is globally valid and already consumed a draw
	// from the walk's RNG stream, so it must survive demotion — clearing it
	// would make the walk re-draw when its partition starts, desyncing the
	// stream between runs whose demotion timing differs.
	st.rangeTag = -1
	if e.arr != nil && e.arr.shard.BoardOf(p) != e.boardID {
		// The destination partition lives on another board's shard: the
		// walk is serialized over the inter-board fabric instead of parked
		// in the local foreigner buffer.
		e.res.ForeignerWalks++
		e.arr.sendForeigner(e, p, st)
		e.activeCur--
		e.checkPartitionDone()
		return
	}
	if e.pendingMem[p] == nil {
		e.pendingMem[p] = e.getWalkBuf()
	}
	e.pendingMem[p] = append(e.pendingMem[p], st)
	e.foreignerBufBytes += walk.StateBytes
	e.res.ForeignerWalks++
	if e.foreignerBufBytes >= e.cfg.ForeignerBufBytes {
		e.flushForeigners()
	}
	e.activeCur--
	e.checkPartitionDone()
}

// flushForeigners writes every foreigner-buffer resident to flash and
// records the read-back debt per destination partition.
func (e *Engine) flushForeigners() {
	var totalBytes int64
	for p := range e.pendingMem {
		tail := e.pendingMem[p][e.flushMark[p]:]
		if len(tail) == 0 {
			continue
		}
		bytes := int64(len(tail)) * walk.StateBytes
		e.pendingFlash[p] = append(e.pendingFlash[p], tail...)
		e.pendingFlashBytes[p] += bytes
		e.pendingMem[p] = e.pendingMem[p][:e.flushMark[p]]
		totalBytes += bytes
	}
	e.foreignerBufBytes = 0
	if totalBytes == 0 {
		return
	}
	e.res.ForeignerFlushes++
	e.emit(trace.ForeignerFlush, totalBytes, 0)
	e.dr.Read(totalBytes, nil)
	pages := int((totalBytes + e.ssd.Cfg.PageBytes - 1) / e.ssd.Cfg.PageBytes)
	e.ssd.ProgramPagesFromBoard(e.flushChip(), pages, nil)
}

// flushChip picks the next chip for board-side flash writes (round-robin).
func (e *Engine) flushChip() *flash.Chip {
	c := e.ssd.Chip(e.flushChipRR)
	e.flushChipRR = (e.flushChipRR + 1) % e.ssd.NumChips()
	return c
}

// inCurrentPartition reports whether block b belongs to the active
// partition.
func (e *Engine) inCurrentPartition(b int) bool {
	return e.part.PartitionOf(b) == e.curPart
}

// auditConservation verifies that every started walk is accounted for:
// finished + in pending stores + active in the current partition. Called
// between partitions (activeCur == 0, so nothing is in flight).
func (e *Engine) auditConservation(where string) {
	if !e.audit || e.failure != nil {
		return
	}
	if e.arr != nil {
		// Per-board conservation does not hold once walks migrate; the
		// array audits the fleet-wide sum (boards + fabric) instead.
		e.arr.auditConservation(where)
		return
	}
	stored := e.storedWalks()
	finished := e.res.Completed + e.res.DeadEnded
	if got := stored + finished + e.activeCur - e.activeCurStoredOverlap(); got != e.res.Started {
		e.fail(fmt.Errorf("core: audit(%s): %d stored + %d finished + %d active != %d started",
			where, stored, finished, e.activeCur, e.res.Started))
	}
}

// storedWalks counts every walk parked in this board's stores (pending
// lists plus per-block buffers); the array's fleet-wide audit sums it.
func (e *Engine) storedWalks() int {
	stored := 0
	for p := range e.pendingMem {
		stored += len(e.pendingMem[p]) + len(e.pendingFlash[p])
	}
	for b := range e.pwb {
		stored += len(e.pwb[b]) + len(e.fls[b])
	}
	return stored
}

// activeCurStoredOverlap counts walks that are both active and sitting in
// a per-block store of the current partition (pwb/fls double-count
// against activeCur in the audit sum).
func (e *Engine) activeCurStoredOverlap() int {
	if e.curPart < 0 {
		return 0
	}
	first, last := e.part.PartitionSpan(e.curPart)
	n := 0
	for b := first; b <= last; b++ {
		n += len(e.pwb[b]) + len(e.fls[b])
	}
	return n
}
