package core

import "flashwalker/internal/trace"

// This file is the subgraph scheduler's engine side: the Eq. 1 critical
// degree scores and the partition walk buffer (PWB) with its
// overflow-to-flash path (§III-D). The per-chip candidate scan consuming
// these scores lives in chipAccel.scheduleSlot.

// blockScore computes the Eq. 1 critical degree for block b. With
// SmartSchedule disabled it degrades to the walk count (GraphWalker-style
// most-walks-first).
func (e *Engine) blockScore(b int) float64 {
	pwb := float64(len(e.pwb[b]))
	fl := float64(len(e.fls[b]))
	if !e.cfg.Opts.SmartSchedule {
		return pwb + fl
	}
	s := pwb*e.cfg.Alpha + fl
	if !e.part.Blocks[b].Dense {
		s *= e.cfg.Beta
	}
	return s
}

// refreshScore recomputes block b's cached score.
func (e *Engine) refreshScore(b int) {
	e.score[b] = e.blockScore(b)
	e.scorePend[b] = 0
}

// insertPWB places a walk into the partition walk buffer entry of block b,
// overflowing the entry to flash when it fills (§III-D). The record is
// written through the DRAM port.
func (e *Engine) insertPWB(b int, st wstate) {
	sz := st.sizeBytes()
	e.dr.Write(sz, nil)
	e.pwb[b] = append(e.pwb[b], st)
	e.pwbBytes[b] += sz
	if e.pwbBytes[b] > e.cfg.PartitionWalkEntryBytes {
		e.overflowPWB(b)
	}
	e.scorePend[b]++
	if e.scorePend[b] >= e.cfg.ScoreUpdateEveryM {
		e.refreshScore(b)
	}
	// A chip with an idle slot may now have work.
	c := e.chips[e.place.ChipOf(b)]
	c.noteWork(b)
	c.trySchedule()
}

// overflowPWB flushes block b's walk buffer entry to flash.
func (e *Engine) overflowPWB(b int) {
	walks := e.pwb[b]
	bytes := e.pwbBytes[b]
	e.pwbBytes[b] = 0
	e.fls[b] = append(e.fls[b], walks...)
	e.pwb[b] = walks[:0] // entry keeps its capacity for the next fill
	pages := int((bytes + e.ssd.Cfg.PageBytes - 1) / e.ssd.Cfg.PageBytes)
	e.flsPages[b] += pages
	e.res.PWBOverflows++
	e.emit(trace.PWBOverflow, int64(b), int64(len(walks)))
	// The entry moves through the chip-level walk-overflow buffer and is
	// programmed on the block's own chip, so the read-back later is local.
	e.dr.Read(bytes, nil)
	e.ssd.ProgramPagesFromBoard(e.ssd.Chip(e.place.ChipOf(b)), pages, nil)
	e.refreshScore(b)
}
