package core

import (
	"testing"

	"flashwalker/internal/graph"
	"flashwalker/internal/walk"
)

func secondOrderGraph(t *testing.T) *graph.Graph {
	t.Helper()
	// Bidirectional edges so backtracking is always available.
	b := graph.NewBuilder(512)
	for v := uint64(0); v < 512; v++ {
		for _, d := range []uint64{(v + 1) % 512, (v + 17) % 512, (v + 101) % 512} {
			b.AddEdge(v, d)
			b.AddEdge(d, v)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestEngineSecondOrderCompletes(t *testing.T) {
	g := secondOrderGraph(t)
	rc := testConfig()
	rc.Spec = walk.Spec{Kind: walk.SecondOrder, Length: 8, P: 0.5, Q: 2}
	rc.NumWalks = 300
	res := runEngine(t, g, rc)
	if res.Completed != 300 {
		t.Fatalf("completed %d of 300", res.Completed)
	}
	if res.Hops != 300*8 {
		t.Fatalf("hops %d", res.Hops)
	}
	if res.FilterProbes == 0 {
		t.Fatal("second-order run never probed the edge filter")
	}
}

func TestEngineSecondOrderChargesDRAM(t *testing.T) {
	g := secondOrderGraph(t)
	rc := testConfig()
	rc.Spec = walk.Spec{Kind: walk.SecondOrder, Length: 8, P: 0.5, Q: 2}
	rc.NumWalks = 200
	res := runEngine(t, g, rc)

	rc2 := testConfig()
	rc2.NumWalks = 200
	rc2.Spec = walk.Spec{Kind: walk.Unbiased, Length: 8}
	base := runEngine(t, g, rc2)

	// The probe traffic must show up as extra DRAM reads relative to the
	// first-order run of the same shape.
	if res.DRAMReadBytes <= base.DRAMReadBytes {
		t.Fatalf("second-order DRAM reads %d not above first-order %d",
			res.DRAMReadBytes, base.DRAMReadBytes)
	}
}

func TestEngineSecondOrderBacktrackBias(t *testing.T) {
	// Low p (cheap returns) should re-visit vertices more than high p:
	// compare the number of distinct vertices visited.
	g := secondOrderGraph(t)
	distinct := func(p float64) int {
		rc := testConfig()
		rc.Spec = walk.Spec{Kind: walk.SecondOrder, Length: 12, P: p, Q: 1}
		rc.NumWalks = 400
		rc.TrackVisits = true
		res := runEngine(t, g, rc)
		n := 0
		for _, v := range res.Visits {
			if v > 0 {
				n++
			}
		}
		return n
	}
	explore, backtrack := distinct(8), distinct(0.125)
	if backtrack >= explore {
		t.Fatalf("p=0.125 visited %d distinct vertices, p=8 visited %d — no return bias",
			backtrack, explore)
	}
}

func TestEngineSecondOrderDeterministic(t *testing.T) {
	g := secondOrderGraph(t)
	rc := testConfig()
	rc.Spec = walk.Spec{Kind: walk.SecondOrder, Length: 6, P: 0.5, Q: 2}
	rc.NumWalks = 150
	a := runEngine(t, g, rc)
	b := runEngine(t, g, rc)
	if a.Time != b.Time || a.Hops != b.Hops || a.FilterProbes != b.FilterProbes {
		t.Fatal("second-order runs not deterministic")
	}
}

func TestEngineFirstOrderHasNoFilter(t *testing.T) {
	g := secondOrderGraph(t)
	rc := testConfig()
	rc.NumWalks = 100
	res := runEngine(t, g, rc)
	if res.FilterProbes != 0 {
		t.Fatal("first-order run probed the edge filter")
	}
}
