package core

import (
	"context"
	"fmt"

	"flashwalker/internal/dram"
	"flashwalker/internal/errs"
	"flashwalker/internal/fault"
	"flashwalker/internal/flash"
	"flashwalker/internal/graph"
	"flashwalker/internal/partition"
	"flashwalker/internal/sim"
	"flashwalker/internal/walk"
)

// This file is the engine's durable checkpoint/restore layer. A Snapshot is
// a pure-data image of a paused engine taken strictly between simulated
// events: every walk (with its private RNG stream), every buffer and queue
// booking, the pooled node/batch/op records the pending events reference,
// the fault injector's stream position, and the event heap itself.
// ResumeEngine rebuilds the engine skeleton from the snapshot's identity
// section (the original RunConfig inputs) and overlays the captured state;
// because the walk trajectories are timing-independent (per-walk RNG
// streams) AND the heap restore preserves exact (time, seq) event order,
// a resumed run's Result is bit-identical to the uninterrupted run — the
// invariant TestResumeMetamorphic proves against the golden digest.
//
// What is NOT captured: closures. Pending sim closure events (At/After) and
// flash ops with func() completions make the export fail; they only exist
// while the time-0 hot-subgraph preload drains, so checkpoint-driven
// snapshots simply skip until the steady (all typed events) state is
// reached. Progress time series and tracers are also not captured — attach
// neither when snapshotting.

// Event-target IDs for the sim/flash export mapping. Steady-state events
// target exactly two handlers: the core engine's jump table and the SSD's.
const (
	targetEngine int32 = 0
	targetSSD    int32 = 1
)

// WalkState is a wstate in serializable form.
type WalkState struct {
	W          walk.Walk
	DenseBlock int
	DenseEdge  uint64
	RangeTag   int
	Prev       graph.VertexID
	RNG        [4]uint64
}

// NodeState is one pooled wnode (live or free-listed).
type NodeState struct {
	St       WalkState
	PrevSize int64
	Hot      int32
	Foreign  int32
	RangeID  int32
	Block    int32
	Steps    int32
	Terminal bool
	DeadEnd  bool
	Free     int32
}

// BatchState is one pooled in-flight roving batch record.
type BatchState struct {
	Walks []WalkState
	Free  int32
}

// SlotState is one chip subgraph slot.
type SlotState struct {
	Block     int
	Loading   bool
	Idle      bool
	Defers    int
	Pending   int
	LoadLeft  int
	LoadWalks []WalkState
}

// UnitPoolState is an updater/guider pool's bookings and accounting.
type UnitPoolState struct {
	Units []sim.QueueState
	Jobs  uint64
	Busy  sim.Time
}

// TierState is the state every accelerator tier shares.
type TierState struct {
	Updater    UnitPoolState
	Guider     UnitPoolState
	QueueBytes int64
	HotIDs     []int
	HotNil     bool
	HotReady   bool
}

// ChipState is one chip-level accelerator.
type ChipState struct {
	Tier           TierState
	Slots          []SlotState
	Roving         []WalkState
	RovingBytes    int64
	CompletedBytes int64
	MyBlocks       []int
}

// ChanState is one channel-level accelerator.
type ChanState struct {
	Tier     TierState
	Failover bool
}

// CacheState is one walk query cache's LRU contents (front = most recent).
type CacheState struct {
	Lows   []graph.VertexID
	Highs  []graph.VertexID
	Blocks []int
	Hits   uint64
	Misses uint64
}

// BoardState is the board-level accelerator.
type BoardState struct {
	Tier           TierState
	Ports          []sim.QueueState
	PortRR         int
	Caches         []CacheState
	CacheRR        int
	CompletedBytes int64
}

// Snapshot is the complete serializable state of a paused Engine.
type Snapshot struct {
	// Identity: the construction inputs. ResumeEngine rebuilds the engine
	// skeleton from these and validates the graph against the counts.
	Cfg              Config
	FlashCfg         flash.Config
	DRAMCfg          dram.Config
	PartCfg          partition.Config
	Spec             walk.Spec
	NumWalks         int
	MaxSimTime       sim.Time
	TrackVisits      bool
	Audit            bool
	UseAliasSampling bool
	// GraphVertices/GraphEdges are the INITIAL graph's counts (before any
	// mutations): a resumed run is handed the initial graph and replays
	// the stream's applied prefix itself.
	GraphVertices uint64
	GraphEdges    uint64
	// Mutations is the run's full mutation stream; MutApplied is how many
	// of them had been applied when the snapshot was taken. ResumeEngine
	// re-applies mutations [0, MutApplied) to the initial graph before
	// overlaying state, and the applier hook resumes from the cursor.
	Mutations  graph.MutationStream
	MutApplied int

	// Kernel and device state.
	Sim      sim.EngineState
	Flash    flash.State
	DRAM     dram.State
	Injector *fault.State

	RootRNG [4]uint64

	// Per-block walk stores and scheduler state.
	PWB       [][]WalkState
	PWBBytes  []int64
	FLS       [][]WalkState
	FLSPages  []int
	Score     []float64
	ScorePend []int

	// Per-partition pending walks and the foreigner buffer.
	PendingMem        [][]WalkState
	PendingFlash      [][]WalkState
	PendingFlashBytes []int64
	FlushMark         []int
	ForeignerBufBytes int64

	// Pooled records referenced by pending events.
	Nodes     []NodeState
	FreeNode  int32
	Batches   []BatchState
	FreeBatch int32

	// Flushed-foreigner read-back in flight.
	SwitchLeft  int
	SwitchWalks []WalkState

	CurPart   int
	ActiveCur int
	Remaining int
	Finished  bool

	FlushChipRR int

	Chips []ChipState
	Chans []ChanState
	Board BoardState

	Res Result
}

// --- Conversions. ---

func wsOut(st *wstate) WalkState {
	return WalkState{W: st.w, DenseBlock: st.denseBlock, DenseEdge: st.denseEdge,
		RangeTag: st.rangeTag, Prev: st.prev, RNG: st.rng.State()}
}

func wsIn(ws WalkState) wstate {
	st := wstate{w: ws.W, denseBlock: ws.DenseBlock, denseEdge: ws.DenseEdge,
		rangeTag: ws.RangeTag, prev: ws.Prev}
	st.rng.SetState(ws.RNG)
	return st
}

func walksOut(ws []wstate) []WalkState {
	if ws == nil {
		return nil
	}
	out := make([]WalkState, len(ws))
	for i := range ws {
		out[i] = wsOut(&ws[i])
	}
	return out
}

func walksIn(ws []WalkState) []wstate {
	if len(ws) == 0 {
		return nil
	}
	out := make([]wstate, len(ws))
	for i := range ws {
		out[i] = wsIn(ws[i])
	}
	return out
}

func poolOut(p *unitPool) UnitPoolState {
	st := UnitPoolState{Units: make([]sim.QueueState, len(p.units)), Jobs: p.jobs, Busy: p.busy}
	for i, u := range p.units {
		st.Units[i] = u.State()
	}
	return st
}

func poolIn(p *unitPool, st UnitPoolState, what string) error {
	if len(st.Units) != len(p.units) {
		return fmt.Errorf("core: resume: %s has %d units, snapshot has %d", what, len(p.units), len(st.Units))
	}
	for i, u := range p.units {
		u.Restore(st.Units[i])
	}
	p.jobs = st.Jobs
	p.busy = st.Busy
	return nil
}

func tierOut(t *tierCommon) TierState {
	return TierState{
		Updater:    poolOut(t.updater),
		Guider:     poolOut(t.guider),
		QueueBytes: t.queueBytes,
		HotIDs:     t.hot.ids(),
		HotNil:     t.hot == nil,
		HotReady:   t.hotReady,
	}
}

func tierIn(t *tierCommon, st TierState, what string) error {
	if err := poolIn(t.updater, st.Updater, what+" updater"); err != nil {
		return err
	}
	if err := poolIn(t.guider, st.Guider, what+" guider"); err != nil {
		return err
	}
	t.queueBytes = st.QueueBytes
	if st.HotNil {
		t.hot = nil
	} else {
		t.SetHotBlocks(st.HotIDs)
	}
	t.hotReady = st.HotReady
	return nil
}

// --- Export. ---

// Snapshot captures the engine's complete state. It is safe to call
// strictly between simulated events: from the RunConfig.OnSnapshot hook,
// before RunContext, or after a halted (canceled) RunContext. It fails
// while setup closures are still draining (the time-0 hot-subgraph
// preload), when a tracer or progress time series is attached, or after a
// simulation failure.
func (e *Engine) Snapshot() (*Snapshot, error) {
	return e.buildSnapshot()
}

func (e *Engine) buildSnapshot() (*Snapshot, error) {
	targetID := func(h sim.Handler) (int32, error) {
		switch h {
		case sim.Handler(e):
			return targetEngine, nil
		case sim.Handler(e.ssd):
			return targetSSD, nil
		}
		return 0, fmt.Errorf("unknown event target %T", h)
	}
	s, err := e.buildSnapshotBody(targetID)
	if err != nil {
		return nil, err
	}
	simState, err := e.eng.ExportState(targetID)
	if err != nil {
		return nil, err
	}
	s.Sim = simState
	return s, nil
}

// buildSnapshotBody captures everything except the event kernel, whose
// export the caller owns: the single-board path exports it with the
// two-target mapping above, while the array exports the shared kernel once
// for all boards with a fleet-wide mapping. targetID is also used for the
// flash export (typed op completions reference engine/SSD targets).
func (e *Engine) buildSnapshotBody(targetID func(sim.Handler) (int32, error)) (*Snapshot, error) {
	if e.failure != nil {
		return nil, fmt.Errorf("core: cannot snapshot a failed run: %w", e.failure)
	}
	if e.tracer != nil {
		return nil, fmt.Errorf("core: cannot snapshot with a tracer attached")
	}
	if e.res.ProgressTS != nil || e.ssd.ReadTS != nil {
		return nil, fmt.Errorf("core: cannot snapshot with progress time series attached")
	}
	flashState, err := e.ssd.ExportState(targetID)
	if err != nil {
		return nil, err
	}

	s := &Snapshot{
		Cfg:              e.cfg,
		FlashCfg:         e.ssd.Cfg,
		DRAMCfg:          e.dr.Cfg,
		PartCfg:          e.part.Cfg,
		Spec:             e.spec,
		NumWalks:         e.res.Started,
		MaxSimTime:       e.maxSimTime,
		TrackVisits:      e.res.Visits != nil,
		Audit:            e.audit,
		UseAliasSampling: e.alias != nil,
		GraphVertices:    e.initVertices,
		GraphEdges:       e.initEdges,
		Mutations:        e.muts,
		MutApplied:       e.mutCursor,

		Flash: flashState,
		DRAM:  e.dr.State(),

		RootRNG: e.rootRNG.State(),

		PWBBytes:  append([]int64(nil), e.pwbBytes...),
		FLSPages:  append([]int(nil), e.flsPages...),
		Score:     append([]float64(nil), e.score...),
		ScorePend: append([]int(nil), e.scorePend...),

		PendingFlashBytes: append([]int64(nil), e.pendingFlashBytes...),
		FlushMark:         append([]int(nil), e.flushMark...),
		ForeignerBufBytes: e.foreignerBufBytes,

		FreeNode:  e.freeNode,
		FreeBatch: e.freeBatch,

		SwitchLeft:  e.switchLeft,
		SwitchWalks: walksOut(e.switchWalks),

		CurPart:   e.curPart,
		ActiveCur: e.activeCur,
		Remaining: e.remaining,
		Finished:  e.finished,

		FlushChipRR: e.flushChipRR,

		Res: e.res,
	}
	if e.inj != nil {
		st := e.inj.State()
		s.Injector = &st
	}
	s.Res.Visits = append([]uint64(nil), e.res.Visits...)

	s.PWB = make([][]WalkState, len(e.pwb))
	s.FLS = make([][]WalkState, len(e.fls))
	for b := range e.pwb {
		s.PWB[b] = walksOut(e.pwb[b])
		s.FLS[b] = walksOut(e.fls[b])
	}
	s.PendingMem = make([][]WalkState, len(e.pendingMem))
	s.PendingFlash = make([][]WalkState, len(e.pendingFlash))
	for p := range e.pendingMem {
		s.PendingMem[p] = walksOut(e.pendingMem[p])
		s.PendingFlash[p] = walksOut(e.pendingFlash[p])
	}

	s.Nodes = make([]NodeState, len(e.nodes))
	for i := range e.nodes {
		n := &e.nodes[i]
		s.Nodes[i] = NodeState{
			St: wsOut(&n.st), PrevSize: n.prevSize,
			Hot: n.hot, Foreign: n.foreign, RangeID: n.rangeID,
			Block: n.block, Steps: n.steps,
			Terminal: n.terminal, DeadEnd: n.deadEnd, Free: n.free,
		}
	}
	s.Batches = make([]BatchState, len(e.batches))
	for i := range e.batches {
		s.Batches[i] = BatchState{Walks: walksOut(e.batches[i].walks), Free: e.batches[i].free}
	}

	s.Chips = make([]ChipState, len(e.chips))
	for i, c := range e.chips {
		cs := ChipState{
			Tier:           tierOut(&c.tierCommon),
			Slots:          make([]SlotState, len(c.slots)),
			Roving:         walksOut(c.roving),
			RovingBytes:    c.rovingBytes,
			CompletedBytes: c.completedBytes,
			MyBlocks:       append([]int(nil), c.myBlocks...),
		}
		for j, sl := range c.slots {
			cs.Slots[j] = SlotState{
				Block: sl.block, Loading: sl.loading, Idle: sl.idle,
				Defers: sl.defers, Pending: sl.pending,
				LoadLeft: sl.loadLeft, LoadWalks: walksOut(sl.loadWalks),
			}
		}
		s.Chips[i] = cs
	}
	s.Chans = make([]ChanState, len(e.chans))
	for i, ca := range e.chans {
		s.Chans[i] = ChanState{Tier: tierOut(&ca.tierCommon), Failover: ca.failover}
	}
	b := e.board
	bs := BoardState{
		Tier:           tierOut(&b.tierCommon),
		Ports:          make([]sim.QueueState, len(b.ports)),
		PortRR:         b.portRR,
		Caches:         make([]CacheState, len(b.caches)),
		CacheRR:        b.cacheRR,
		CompletedBytes: b.completedBytes,
	}
	for i, p := range b.ports {
		bs.Ports[i] = p.State()
	}
	for i, qc := range b.caches {
		c := CacheState{Hits: qc.hits, Misses: qc.misses}
		for j := 0; j < qc.n; j++ {
			p := qc.slot(j)
			c.Lows = append(c.Lows, qc.ranges[p].lo)
			c.Highs = append(c.Highs, qc.ranges[p].hi)
			c.Blocks = append(c.Blocks, int(qc.blockIDs[p]))
		}
		bs.Caches[i] = c
	}
	s.Board = bs
	return s, nil
}

// --- Restore. ---

// ResumeOptions parameterizes a resumed run; everything about the workload
// itself comes from the snapshot.
type ResumeOptions struct {
	// OnProgress is RunConfig.OnProgress for the resumed run.
	OnProgress func(Progress)
	// OnSnapshot / SnapshotEvery re-arm periodic snapshots on the resumed
	// run (a resumed job keeps checkpointing).
	OnSnapshot    func(*Snapshot)
	SnapshotEvery uint64
	// CheckpointEvery is RunConfig.CheckpointEvery; 0 uses the default.
	CheckpointEvery uint64
	// OnWalks / EmitEvery re-attach the completed-walk export (export.go).
	// The snapshot carries the finished-walk counters, so the resumed run
	// continues the finish-order sequence numbering without a gap.
	OnWalks   func([]WalkDone)
	EmitEvery uint64
}

// ResumeEngine rebuilds an engine from a snapshot over the same graph. The
// resumed engine continues the interrupted run exactly: same clock, same
// pending events, same walk and fault RNG positions, so its final Result is
// bit-identical to the run the snapshot was taken from.
func ResumeEngine(g *graph.Graph, snap *Snapshot, opts ResumeOptions) (*Engine, error) {
	if snap == nil {
		return nil, fmt.Errorf("core: nil snapshot: %w", errs.ErrInvalidConfig)
	}
	if g.NumVertices() != snap.GraphVertices || g.NumEdges() != snap.GraphEdges {
		return nil, fmt.Errorf("core: snapshot was taken over a graph with %d vertices / %d edges, got %d / %d: %w",
			snap.GraphVertices, snap.GraphEdges, g.NumVertices(), g.NumEdges(), errs.ErrInvalidConfig)
	}
	rc := RunConfig{
		Cfg: snap.Cfg, FlashCfg: snap.FlashCfg, DRAMCfg: snap.DRAMCfg,
		PartCfg: snap.PartCfg, Spec: snap.Spec, NumWalks: snap.NumWalks,
		MaxSimTime: snap.MaxSimTime, TrackVisits: snap.TrackVisits,
		Audit: snap.Audit, UseAliasSampling: snap.UseAliasSampling,
		Mutations:  snap.Mutations,
		OnProgress: opts.OnProgress, CheckpointEvery: opts.CheckpointEvery,
		OnSnapshot: opts.OnSnapshot, SnapshotEvery: opts.SnapshotEvery,
		OnWalks: opts.OnWalks, EmitEvery: opts.EmitEvery,
	}
	e, err := newEngine(g, rc)
	if err != nil {
		return nil, err
	}
	if err := e.restore(snap); err != nil {
		return nil, err
	}
	return e, nil
}

// ResumeContext is ResumeEngine followed by RunContext: it resumes the
// snapshotted run and drives it to completion (or cancellation).
func ResumeContext(ctx context.Context, g *graph.Graph, snap *Snapshot, opts ResumeOptions) (*Result, error) {
	e, err := ResumeEngine(g, snap, opts)
	if err != nil {
		return nil, err
	}
	return e.RunContext(ctx)
}

// restore overlays the snapshot's state onto a freshly built skeleton.
func (e *Engine) restore(snap *Snapshot) error {
	// Kernel: pending events reference node/batch/op records by index, so
	// the pools restored below must land in the exact same layout.
	target := func(id int32) (sim.Handler, error) {
		switch id {
		case targetEngine:
			return e, nil
		case targetSSD:
			return e.ssd, nil
		}
		return nil, fmt.Errorf("unknown target id %d", id)
	}
	if err := e.eng.ImportState(snap.Sim, target); err != nil {
		return err
	}
	// Replay the mutations the original run had applied beyond the At == 0
	// prefix (which construction already applied). Incremental apply is
	// rebuild-equivalent, so the graph and every derived index land in the
	// exact state the snapshot saw. Runs before the res overlay below, so
	// attribution counters come from the snapshot, not the replay.
	if snap.MutApplied < e.mutCursor || snap.MutApplied > len(e.muts) {
		return fmt.Errorf("core: resume: snapshot applied %d of %d mutations (prefix %d)",
			snap.MutApplied, len(e.muts), e.mutCursor)
	}
	for e.mutCursor < snap.MutApplied {
		if err := e.applyMutation(e.muts[e.mutCursor]); err != nil {
			return fmt.Errorf("core: resume: replay mutation %d: %w", e.mutCursor, err)
		}
		e.mutCursor++
	}
	return e.restoreBody(snap, target)
}

// restoreBody overlays everything except the event kernel, whose import the
// caller owns (the array imports the shared kernel once, then restores each
// board's body). target resolves flash op completion targets.
func (e *Engine) restoreBody(snap *Snapshot, target func(int32) (sim.Handler, error)) error {
	nb := e.part.NumBlocks()
	np := e.part.NumPartitions
	switch {
	case len(snap.PWB) != nb, len(snap.FLS) != nb, len(snap.PWBBytes) != nb,
		len(snap.FLSPages) != nb, len(snap.Score) != nb, len(snap.ScorePend) != nb:
		return fmt.Errorf("core: resume: snapshot block stores sized for %d blocks, partitioning has %d", len(snap.PWB), nb)
	case len(snap.PendingMem) != np, len(snap.PendingFlash) != np,
		len(snap.PendingFlashBytes) != np, len(snap.FlushMark) != np:
		return fmt.Errorf("core: resume: snapshot pending stores sized for %d partitions, partitioning has %d", len(snap.PendingMem), np)
	case len(snap.Chips) != len(e.chips):
		return fmt.Errorf("core: resume: snapshot has %d chips, geometry has %d", len(snap.Chips), len(e.chips))
	case len(snap.Chans) != len(e.chans):
		return fmt.Errorf("core: resume: snapshot has %d channels, geometry has %d", len(snap.Chans), len(e.chans))
	case len(snap.Board.Ports) != len(e.board.ports):
		return fmt.Errorf("core: resume: snapshot has %d table ports, config has %d", len(snap.Board.Ports), len(e.board.ports))
	case len(snap.Board.Caches) != len(e.board.caches):
		return fmt.Errorf("core: resume: snapshot has %d query caches, config has %d", len(snap.Board.Caches), len(e.board.caches))
	case (snap.Injector != nil) != (e.inj != nil):
		return fmt.Errorf("core: resume: snapshot and config disagree on fault injection")
	}

	if err := e.ssd.ImportState(snap.Flash, target); err != nil {
		return err
	}
	if err := e.dr.Restore(snap.DRAM); err != nil {
		return err
	}
	if e.inj != nil {
		e.inj.Restore(*snap.Injector)
		copy(e.degraded, snap.Injector.Degraded)
	}
	e.rootRNG.SetState(snap.RootRNG)

	for b := 0; b < nb; b++ {
		e.pwb[b] = walksIn(snap.PWB[b])
		e.fls[b] = walksIn(snap.FLS[b])
	}
	copy(e.pwbBytes, snap.PWBBytes)
	copy(e.flsPages, snap.FLSPages)
	copy(e.score, snap.Score)
	copy(e.scorePend, snap.ScorePend)

	for p := 0; p < np; p++ {
		e.pendingMem[p] = walksIn(snap.PendingMem[p])
		e.pendingFlash[p] = walksIn(snap.PendingFlash[p])
	}
	copy(e.pendingFlashBytes, snap.PendingFlashBytes)
	copy(e.flushMark, snap.FlushMark)
	e.foreignerBufBytes = snap.ForeignerBufBytes

	e.nodes = make([]wnode, len(snap.Nodes))
	for i, ns := range snap.Nodes {
		e.nodes[i] = wnode{
			st: wsIn(ns.St), prevSize: ns.PrevSize,
			hot: ns.Hot, foreign: ns.Foreign, rangeID: ns.RangeID,
			block: ns.Block, steps: ns.Steps,
			terminal: ns.Terminal, deadEnd: ns.DeadEnd, free: ns.Free,
		}
	}
	e.freeNode = snap.FreeNode
	e.batches = make([]walkBatch, len(snap.Batches))
	for i, bs := range snap.Batches {
		e.batches[i] = walkBatch{walks: walksIn(bs.Walks), free: bs.Free}
	}
	e.freeBatch = snap.FreeBatch

	e.switchLeft = snap.SwitchLeft
	e.switchWalks = walksIn(snap.SwitchWalks)

	e.curPart = snap.CurPart
	e.activeCur = snap.ActiveCur
	e.remaining = snap.Remaining
	e.finished = snap.Finished
	e.flushChipRR = snap.FlushChipRR

	for i := range e.blockPos {
		e.blockPos[i] = -1
	}
	for i, c := range e.chips {
		cs := &snap.Chips[i]
		if len(cs.Slots) != len(c.slots) {
			return fmt.Errorf("core: resume: chip %d has %d slots in snapshot, config has %d", i, len(cs.Slots), len(c.slots))
		}
		if err := tierIn(&c.tierCommon, cs.Tier, fmt.Sprintf("chip %d", i)); err != nil {
			return err
		}
		for j, sl := range c.slots {
			ss := &cs.Slots[j]
			sl.block = ss.Block
			sl.loading = ss.Loading
			sl.idle = ss.Idle
			sl.defers = ss.Defers
			sl.pending = ss.Pending
			sl.loadLeft = ss.LoadLeft
			sl.loadWalks = walksIn(ss.LoadWalks)
		}
		c.roving = walksIn(cs.Roving)
		c.rovingBytes = cs.RovingBytes
		c.completedBytes = cs.CompletedBytes
		c.myBlocks = append(c.myBlocks[:0], cs.MyBlocks...)
		// blockPos and the scheduler work bitmap are derived indexes:
		// rebuild them from the restored block lists and store lengths
		// (refreshBlocks would also reset slot residency, so not that).
		for pos, b := range c.myBlocks {
			e.blockPos[b] = int32(pos)
		}
		words := (len(c.myBlocks) + 63) / 64
		if cap(c.workBits) < words {
			c.workBits = make([]uint64, words)
		}
		c.workBits = c.workBits[:words]
		for w := range c.workBits {
			c.workBits[w] = 0
		}
		for pos, b := range c.myBlocks {
			if len(e.pwb[b])+len(e.fls[b]) > 0 {
				c.workBits[pos>>6] |= 1 << (uint(pos) & 63)
			}
		}
	}
	for i, ca := range e.chans {
		cs := &snap.Chans[i]
		if err := tierIn(&ca.tierCommon, cs.Tier, fmt.Sprintf("channel %d", i)); err != nil {
			return err
		}
		ca.failover = cs.Failover
	}
	b := e.board
	if err := tierIn(&b.tierCommon, snap.Board.Tier, "board"); err != nil {
		return err
	}
	for i, p := range b.ports {
		p.Restore(snap.Board.Ports[i])
	}
	b.portRR = snap.Board.PortRR
	for i, qc := range b.caches {
		cs := &snap.Board.Caches[i]
		qc.invalidate()
		for j := range cs.Lows {
			qc.insertTail(cs.Lows[j], cs.Highs[j], cs.Blocks[j])
		}
		qc.hits = cs.Hits
		qc.misses = cs.Misses
	}
	b.cacheRR = snap.Board.CacheRR
	b.completedBytes = snap.Board.CompletedBytes

	e.res = snap.Res
	e.res.Visits = append([]uint64(nil), snap.Res.Visits...)

	// The launch work (preload, ticks, first partition) already happened in
	// the original run; its events are in the restored heap.
	e.started = true
	e.lastSnap = e.eng.Processed()
	return nil
}
