package core

import (
	"flashwalker/internal/graph"
	"flashwalker/internal/sim"
)

// queryCache is one walk query cache (§III-D): a tiny LRU of recently
// resolved subgraph mapping entries. A probe hits when a cached entry's
// vertex range covers the queried vertex; hot subgraphs therefore stay
// resident in every cache, which is exactly the locality argument the
// paper makes (binary-search upper levels + power-law walk skew).
type queryCache struct {
	capacity int
	// entries holds block IDs ordered by recency (front = most recent).
	entries []cachedEntry
	hits    uint64
	misses  uint64
}

type cachedEntry struct {
	low, high graph.VertexID
	blockID   int
}

func newQueryCache(capacityBytes, entryBytes int64) *queryCache {
	cap := int(capacityBytes / entryBytes)
	if cap < 1 {
		cap = 1
	}
	return &queryCache{capacity: cap}
}

// lookup probes the cache for v, returning the covering block ID on hit.
func (qc *queryCache) lookup(v graph.VertexID) (blockID int, ok bool) {
	for i := range qc.entries {
		e := qc.entries[i]
		if v >= e.low && v <= e.high {
			qc.hits++
			if i > 0 {
				// Move to front (LRU touch); a front hit — the common case
				// under power-law walk skew — skips the shift entirely.
				copy(qc.entries[1:i+1], qc.entries[:i])
				qc.entries[0] = e
			}
			return e.blockID, true
		}
	}
	qc.misses++
	return -1, false
}

// insert caches a resolved entry at the front, evicting the LRU tail.
func (qc *queryCache) insert(low, high graph.VertexID, blockID int) {
	e := cachedEntry{low: low, high: high, blockID: blockID}
	if len(qc.entries) < qc.capacity {
		qc.entries = append(qc.entries, cachedEntry{})
	}
	copy(qc.entries[1:], qc.entries[:len(qc.entries)-1])
	qc.entries[0] = e
}

// invalidate clears the cache (used on partition switches: entries map
// vertices of the old partition's table).
func (qc *queryCache) invalidate() { qc.entries = qc.entries[:0] }

// unitPool models a pool of identical hardware units (updaters or guiders)
// as N serializing servers with least-loaded dispatch: a job of the given
// service time starts on whichever unit frees first.
type unitPool struct {
	eng   *sim.Engine
	units []*sim.Queue
	jobs  uint64
	busy  sim.Time
}

func newUnitPool(eng *sim.Engine, n int) *unitPool {
	p := &unitPool{eng: eng}
	for i := 0; i < n; i++ {
		p.units = append(p.units, sim.NewQueue(eng))
	}
	return p
}

// dispatch schedules a job on the least-busy unit and returns its
// completion time; done (optional) fires then.
func (p *unitPool) dispatch(service sim.Time, done func()) sim.Time {
	p.jobs++
	p.busy += service
	return p.pick().Acquire(service, done)
}

// dispatchEvent is dispatch with a typed completion (no closure).
func (p *unitPool) dispatchEvent(service sim.Time, done sim.Event) sim.Time {
	p.jobs++
	p.busy += service
	return p.pick().AcquireEvent(service, done)
}

// pick returns the least-busy unit (first wins ties, matching FIFO issue
// order on an idle pool).
func (p *unitPool) pick() *sim.Queue {
	best := p.units[0]
	for _, u := range p.units[1:] {
		if u.BusyUntil() < best.BusyUntil() {
			best = u
		}
	}
	return best
}

// utilization reports mean unit utilization.
func (p *unitPool) utilization() float64 {
	el := p.eng.Now()
	if el <= 0 {
		return 0
	}
	u := float64(p.busy) / (float64(el) * float64(len(p.units)))
	if u > 1 {
		u = 1
	}
	return u
}
