package core

import (
	"flashwalker/internal/graph"
	"flashwalker/internal/sim"
)

// queryCache is one walk query cache (§III-D): a tiny LRU of recently
// resolved subgraph mapping entries. A probe hits when a cached entry's
// vertex range covers the queried vertex; hot subgraphs therefore stay
// resident in every cache, which is exactly the locality argument the
// paper makes (binary-search upper levels + power-law walk skew).
// Entries live in a fixed ring ordered by recency: logical position i
// (0 = most recent) occupies physical slot (head+i) % capacity. The miss
// path — the common case at figure scale, where ~80% of probes resolve
// outside the cache — scans all entries and then inserts, so both halves
// are engineered for it: the scan streams dense 16-byte {lo, hi} pairs a
// prefetcher can follow, and the ring makes insert-at-front O(1) where a
// shifted array paid a full-cache memmove per miss. Hits still pay the
// move-to-front shift, but under power-law walk skew they sit near the
// front.
// Recency order is semantically load-bearing, not just an eviction policy:
// a dense single-vertex block's range can sit inside a normal block's
// range, and on overlap the MOST RECENTLY touched entry answers — so hits
// must keep the exact shift-to-front behavior (a cheaper swap would
// reorder the middle of the cache and change later answers).
type vrange struct{ lo, hi graph.VertexID }

type queryCache struct {
	capacity int
	ranges   []vrange // ring, physical slot = (head + logical) % capacity
	blockIDs []int32
	head     int // physical slot of the most recent entry
	n        int // live entries
	hits     uint64
	misses   uint64
}

func newQueryCache(capacityBytes, entryBytes int64) *queryCache {
	cap := int(capacityBytes / entryBytes)
	if cap < 1 {
		cap = 1
	}
	return &queryCache{capacity: cap}
}

// slot maps a logical recency position to its physical ring slot.
func (qc *queryCache) slot(i int) int {
	p := qc.head + i
	if p >= qc.capacity {
		p -= qc.capacity
	}
	return p
}

// lookup probes the cache for v, returning the covering block ID on hit.
// The scan costs one unsigned compare per entry: lo <= v <= hi is exactly
// v-lo <= hi-lo in uint64 arithmetic (v < lo wraps v-lo past any width),
// and the re-sliced spans let the compiler drop per-element bounds checks.
func (qc *queryCache) lookup(v graph.VertexID) (blockID int, ok bool) {
	r := qc.ranges
	// Scan the ring in recency order: [head, end) then the wrapped prefix.
	hi := qc.head + qc.n
	if hi > len(r) {
		hi = len(r)
	}
	s := r[qc.head:hi]
	for j := range s {
		if v-s[j].lo <= s[j].hi-s[j].lo {
			qc.hits++
			if j > 0 {
				qc.promote(j)
			}
			return int(qc.blockIDs[qc.head]), true
		}
	}
	if w := qc.head + qc.n - len(r); w > 0 {
		s := r[:w]
		for j := range s {
			if v-s[j].lo <= s[j].hi-s[j].lo {
				qc.hits++
				qc.promote(j + len(r) - qc.head)
				return int(qc.blockIDs[qc.head]), true
			}
		}
	}
	qc.misses++
	return -1, false
}

// promote shifts logical entries [0, i) one position later and moves the
// entry at logical depth i to the front — the exact move-to-front the
// recency semantics require. The shift is at most three memmoves (the ring
// wraps once at most), not an element-by-element walk.
func (qc *queryCache) promote(i int) {
	p := qc.slot(i)
	lohi, id := qc.ranges[p], qc.blockIDs[p]
	r, b := qc.ranges, qc.blockIDs
	if p >= qc.head {
		// Contiguous: physical [head, p) moves to [head+1, p+1).
		copy(r[qc.head+1:p+1], r[qc.head:p])
		copy(b[qc.head+1:p+1], b[qc.head:p])
	} else {
		// Wrapped: shift the prefix [0, p) first, carry the last slot
		// around the seam, then shift the tail [head, cap-1).
		copy(r[1:p+1], r[:p])
		copy(b[1:p+1], b[:p])
		last := len(r) - 1
		r[0], b[0] = r[last], b[last]
		copy(r[qc.head+1:], r[qc.head:last])
		copy(b[qc.head+1:], b[qc.head:last])
	}
	r[qc.head] = lohi
	b[qc.head] = id
}

// insert caches a resolved entry at the front, evicting the LRU tail when
// full: the ring's head steps back onto the tail slot, so eviction is the
// overwrite itself — no shifting.
func (qc *queryCache) insert(low, high graph.VertexID, blockID int) {
	if qc.ranges == nil {
		qc.ranges = make([]vrange, qc.capacity)
		qc.blockIDs = make([]int32, qc.capacity)
	}
	qc.head--
	if qc.head < 0 {
		qc.head = qc.capacity - 1
	}
	if qc.n < qc.capacity {
		qc.n++
	}
	qc.ranges[qc.head] = vrange{lo: low, hi: high}
	qc.blockIDs[qc.head] = int32(blockID)
}

// insertTail appends an entry at the LRU tail, preserving the order of the
// entries already present. Snapshot restore uses it to rebuild the recency
// order exactly as saved (front first).
func (qc *queryCache) insertTail(low, high graph.VertexID, blockID int) {
	if qc.ranges == nil {
		qc.ranges = make([]vrange, qc.capacity)
		qc.blockIDs = make([]int32, qc.capacity)
	}
	if qc.n == qc.capacity {
		return // restoring more entries than capacity cannot happen; guard anyway
	}
	p := qc.slot(qc.n)
	qc.ranges[p] = vrange{lo: low, hi: high}
	qc.blockIDs[p] = int32(blockID)
	qc.n++
}

// invalidate clears the cache (used on partition switches: entries map
// vertices of the old partition's table).
func (qc *queryCache) invalidate() {
	qc.head = 0
	qc.n = 0
}

// unitPool models a pool of identical hardware units (updaters or guiders)
// as N serializing servers with least-loaded dispatch: a job of the given
// service time starts on whichever unit frees first.
type unitPool struct {
	eng   *sim.Engine
	units []*sim.Queue
	jobs  uint64
	busy  sim.Time
}

func newUnitPool(eng *sim.Engine, n int) *unitPool {
	p := &unitPool{eng: eng}
	for i := 0; i < n; i++ {
		p.units = append(p.units, sim.NewQueue(eng))
	}
	return p
}

// dispatch schedules a job on the least-busy unit and returns its
// completion time; done (optional) fires then.
func (p *unitPool) dispatch(service sim.Time, done func()) sim.Time {
	p.jobs++
	p.busy += service
	return p.pick().Acquire(service, done)
}

// dispatchEvent is dispatch with a typed completion (no closure).
func (p *unitPool) dispatchEvent(service sim.Time, done sim.Event) sim.Time {
	p.jobs++
	p.busy += service
	return p.pick().AcquireEvent(service, done)
}

// pick returns the least-busy unit (first wins ties, matching FIFO issue
// order on an idle pool).
func (p *unitPool) pick() *sim.Queue {
	best := p.units[0]
	for _, u := range p.units[1:] {
		if u.BusyUntil() < best.BusyUntil() {
			best = u
		}
	}
	return best
}

// utilization reports mean unit utilization.
func (p *unitPool) utilization() float64 {
	el := p.eng.Now()
	if el <= 0 {
		return 0
	}
	u := float64(p.busy) / (float64(el) * float64(len(p.units)))
	if u > 1 {
		u = 1
	}
	return u
}
