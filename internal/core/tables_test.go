package core

import (
	"testing"

	"flashwalker/internal/sim"
)

func TestQueryCacheHitAfterInsert(t *testing.T) {
	qc := newQueryCache(4<<10, 32) // 128 entries
	qc.insert(10, 20, 3)
	if b, ok := qc.lookup(15); !ok || b != 3 {
		t.Fatalf("lookup(15) = %d,%v", b, ok)
	}
	if b, ok := qc.lookup(10); !ok || b != 3 {
		t.Fatalf("boundary low miss: %d,%v", b, ok)
	}
	if b, ok := qc.lookup(20); !ok || b != 3 {
		t.Fatalf("boundary high miss: %d,%v", b, ok)
	}
	if _, ok := qc.lookup(21); ok {
		t.Fatal("hit outside the cached range")
	}
	if qc.hits != 3 || qc.misses != 1 {
		t.Fatalf("hits=%d misses=%d", qc.hits, qc.misses)
	}
}

func TestQueryCacheLRUEviction(t *testing.T) {
	qc := newQueryCache(64, 32) // capacity 2 entries
	qc.insert(0, 9, 1)
	qc.insert(10, 19, 2)
	// Touch entry 1 so entry 2 becomes LRU.
	if _, ok := qc.lookup(5); !ok {
		t.Fatal("entry 1 evicted prematurely")
	}
	qc.insert(20, 29, 3) // evicts LRU (entry 2)
	if _, ok := qc.lookup(15); ok {
		t.Fatal("LRU entry not evicted")
	}
	if _, ok := qc.lookup(5); !ok {
		t.Fatal("recently used entry evicted")
	}
	if _, ok := qc.lookup(25); !ok {
		t.Fatal("new entry missing")
	}
}

func TestQueryCacheInvalidate(t *testing.T) {
	qc := newQueryCache(4<<10, 32)
	qc.insert(0, 100, 7)
	qc.invalidate()
	if _, ok := qc.lookup(50); ok {
		t.Fatal("hit after invalidate")
	}
}

func TestQueryCacheMinimumCapacity(t *testing.T) {
	qc := newQueryCache(8, 32) // smaller than one entry -> capacity 1
	qc.insert(0, 5, 1)
	if _, ok := qc.lookup(3); !ok {
		t.Fatal("single-entry cache broken")
	}
	qc.insert(6, 9, 2)
	if _, ok := qc.lookup(3); ok {
		t.Fatal("capacity-1 cache kept two entries")
	}
}

func TestUnitPoolSingleUnitSerializes(t *testing.T) {
	eng := sim.New()
	p := newUnitPool(eng, 1)
	var ends []sim.Time
	p.dispatch(10, func() { ends = append(ends, eng.Now()) })
	p.dispatch(10, func() { ends = append(ends, eng.Now()) })
	eng.Run()
	if len(ends) != 2 || ends[0] != 10 || ends[1] != 20 {
		t.Fatalf("ends = %v", ends)
	}
}

func TestUnitPoolParallelUnits(t *testing.T) {
	eng := sim.New()
	p := newUnitPool(eng, 4)
	var ends []sim.Time
	for i := 0; i < 4; i++ {
		p.dispatch(10, func() { ends = append(ends, eng.Now()) })
	}
	eng.Run()
	for _, e := range ends {
		if e != 10 {
			t.Fatalf("4 jobs on 4 units did not run in parallel: %v", ends)
		}
	}
	// A 5th job queues behind the least busy unit.
	p.dispatch(10, func() { ends = append(ends, eng.Now()) })
	eng.Run()
	if ends[4] != 20 {
		t.Fatalf("5th job ended at %v", ends[4])
	}
}

func TestUnitPoolUtilization(t *testing.T) {
	eng := sim.New()
	p := newUnitPool(eng, 2)
	p.dispatch(50, nil)
	eng.Run()
	eng.RunUntil(100)
	// One unit busy 50 of 100 ns, the other idle: mean 0.25.
	if u := p.utilization(); u != 0.25 {
		t.Fatalf("utilization = %v", u)
	}
	if p.jobs != 1 {
		t.Fatalf("jobs = %d", p.jobs)
	}
}

func TestHotIndexFind(t *testing.T) {
	g := testGraph(t)
	rc := testConfig()
	e, err := NewEngine(g, rc)
	if err != nil {
		t.Fatal(err)
	}
	hot := e.board.hot
	if hot == nil || len(hot.entries) == 0 {
		t.Skip("no hot blocks selected")
	}
	// Every hot entry's own range must be findable.
	for _, he := range hot.entries {
		b, steps := hot.find(he.low)
		if b != he.block {
			t.Fatalf("find(%d) = %d, want %d", he.low, b, he.block)
		}
		if steps < 1 {
			t.Fatal("no steps counted")
		}
		if !hot.contains(he.block) {
			t.Fatal("contains() disagrees with entries")
		}
	}
	if hot.contains(-5) {
		t.Fatal("contains(-5)")
	}
	if got := len(hot.ids()); got != len(hot.entries) {
		t.Fatalf("ids() len %d", got)
	}
}

func TestHotIndexEmptyFind(t *testing.T) {
	h := &hotIndex{set: map[int]bool{}}
	b, steps := h.find(5)
	if b != -1 || steps != 1 {
		t.Fatalf("empty find = %d,%d", b, steps)
	}
	var nilIdx *hotIndex
	if nilIdx.contains(1) {
		t.Fatal("nil contains")
	}
	if nilIdx.ids() != nil {
		t.Fatal("nil ids")
	}
}
