package core

import (
	"sort"

	"flashwalker/internal/graph"
	"flashwalker/internal/partition"
	"flashwalker/internal/sim"
)

// simTime converts an int operation count to a sim.Time multiplier.
func simTime(n int) sim.Time { return sim.Time(n) }

// tierAccel is the contract shared by the three accelerator tiers (chip,
// channel, board). The engine drives every tier through it: Guide
// classifies a walk at the tier and routes it onward, EnqueueUpdate runs a
// walk through the tier's updater pool, HotBlocks/SetHotBlocks manage the
// tier's resident hot-subgraph set, and Stats snapshots utilization.
// Adding a fourth tier (or replacing a routing policy) means implementing
// this interface and wiring it in buildAccelerators — nothing else.
type tierAccel interface {
	// Guide classifies a walk at this tier (guider pipeline) and routes it
	// onward: into the tier's own updater, down to a lower tier's buffers,
	// or out to the foreigner path.
	Guide(st wstate)
	// EnqueueUpdate runs a walk through this tier's updater pool and
	// re-guides or retires the outcome.
	EnqueueUpdate(st wstate)
	// HotBlocks reports the tier's resident hot-subgraph block IDs.
	HotBlocks() []int
	// SetHotBlocks installs the tier's hot-subgraph set.
	SetHotBlocks(ids []int)
	// Stats snapshots the tier's utilization counters.
	Stats() TierStats
}

// Tier level names reported in TierStats.Level.
const (
	tierChip    = "chip"
	tierChannel = "channel"
	tierBoard   = "board"
)

// TierStats is one tier's utilization snapshot.
type TierStats struct {
	Level       string // "chip", "channel", or "board"
	UpdaterUtil float64
	GuiderUtil  float64
	UpdaterJobs uint64
	GuiderJobs  uint64
	QueueBytes  int64 // walks currently buffered for hot-subgraph updating
}

// tierCommon is the state and behaviour every accelerator tier shares: the
// updater/guider unit pools, the hot-subgraph index, and the hot-update
// walk queue. chipAccel, channelAccel and boardAccel embed it; the chip
// tier leaves the hot index empty (its residency is slot-driven, see
// chipSlot). Tiers hold no RNG: all sampling draws come from the walk's
// own stream (wstate.rng), so outcomes do not depend on which tier runs
// the update.
type tierCommon struct {
	e       *Engine
	updater *unitPool
	guider  *unitPool

	hot      *hotIndex
	hotReady bool

	queueBytes int64 // walks buffered for hot-subgraph updating

	level        string
	updaterCycle sim.Time
	guiderCycle  sim.Time
	queueCap     int64   // hot-update queue capacity (0: tier has none)
	hotHits      *uint64 // Result counter for hot-subgraph updates (nil: chip)
	tierID       int32   // channel index; -1 for the board (event routing)
	self         tierAccel
}

func (t *tierCommon) SetHotBlocks(ids []int) {
	t.hot = newHotIndex(t.e.part, ids)
}

func (t *tierCommon) HotBlocks() []int { return t.hot.ids() }

func (t *tierCommon) Stats() TierStats {
	return TierStats{
		Level:       t.level,
		UpdaterUtil: t.updater.utilization(),
		GuiderUtil:  t.guider.utilization(),
		UpdaterJobs: t.updater.jobs,
		GuiderJobs:  t.guider.jobs,
		QueueBytes:  t.queueBytes,
	}
}

// dispatchGuide charges ops guider operations at this tier's cycle time,
// then applies the routing outcome.
func (t *tierCommon) dispatchGuide(ops int, apply func()) {
	t.guider.dispatch(simTime(ops)*t.guiderCycle, apply)
}

// dispatchGuideEvent is dispatchGuide with a typed completion (the hot
// path: no closure).
func (t *tierCommon) dispatchGuideEvent(ops int, done sim.Event) {
	t.guider.dispatchEvent(simTime(ops)*t.guiderCycle, done)
}

// tryHotUpdate claims hot-update queue capacity for st and, on success,
// runs it through the tier's updater. It reports false (walk untouched)
// when the queue is full.
func (t *tierCommon) tryHotUpdate(st wstate) bool {
	if t.queueBytes+st.sizeBytes() > t.queueCap {
		return false
	}
	t.queueBytes += st.sizeBytes()
	t.self.EnqueueUpdate(st)
	return true
}

// EnqueueUpdate is the shared hot-subgraph update pipeline (§III-C/D):
// decide the hop, charge its filter probes, occupy an updater for the
// service time, then retire the walk or re-guide it at this tier. The
// chip tier overrides it (its updates are slot-owned, see chipAccel).
func (t *tierCommon) EnqueueUpdate(st wstate) {
	e := t.e
	size := st.sizeBytes()
	h := e.decideHop(st)
	e.chargeFilterProbes(h, nil)
	ref, n := e.newNode()
	n.st, n.prevSize = h.next, size
	n.terminal, n.deadEnd = h.terminal, h.deadEnd
	t.updater.dispatchEvent(e.updateService(t.updaterCycle, h),
		sim.Event{Target: e, Kind: evTierUpdateDone, A: ref, B: t.tierID})
}

// finishHotUpdate retires or re-guides a walk whose hot-subgraph update
// completed (the evTierUpdateDone continuation).
func (t *tierCommon) finishHotUpdate(st wstate, size int64, terminal, deadEnd bool) {
	e := t.e
	t.queueBytes -= size
	if t.hotHits != nil {
		*t.hotHits++
	}
	if !deadEnd {
		e.res.Hops++
	}
	if terminal {
		e.board.completed()
		e.finishWalk(&st, !deadEnd)
		return
	}
	t.self.Guide(st)
}

// hotEntry is one resident hot subgraph, kept sorted by LowVertex so the
// guider's membership test is a binary search.
type hotEntry struct {
	low, high graph.VertexID
	block     int
}

// hotIndex is a sorted hot-subgraph membership structure shared by the
// accelerator tiers. The boundary columns are kept in flat parallel arrays
// (struct-of-arrays) so a find probe touches two adjacent vertex IDs per
// step instead of a full entry record.
type hotIndex struct {
	entries []hotEntry
	lows    []graph.VertexID
	highs   []graph.VertexID
	blocks  []int32
	set     map[int]bool
}

func newHotIndex(part *partition.Partitioned, ids []int) *hotIndex {
	h := &hotIndex{set: map[int]bool{}}
	for _, id := range ids {
		b := &part.Blocks[id]
		h.entries = append(h.entries, hotEntry{low: b.LowVertex, high: b.HighVertex, block: id})
		h.set[id] = true
	}
	sort.Slice(h.entries, func(i, j int) bool { return h.entries[i].low < h.entries[j].low })
	for i := range h.entries {
		h.lows = append(h.lows, h.entries[i].low)
		h.highs = append(h.highs, h.entries[i].high)
		h.blocks = append(h.blocks, int32(h.entries[i].block))
	}
	return h
}

// find binary-searches for the hot block containing v; steps is the number
// of comparisons (guider operations).
func (h *hotIndex) find(v graph.VertexID) (block, steps int) {
	lo, hi := 0, len(h.lows)-1
	for lo <= hi {
		steps++
		mid := (lo + hi) / 2
		switch {
		case v < h.lows[mid]:
			hi = mid - 1
		case v > h.highs[mid]:
			lo = mid + 1
		default:
			return int(h.blocks[mid]), steps
		}
	}
	if steps == 0 {
		steps = 1
	}
	return -1, steps
}

func (h *hotIndex) contains(block int) bool { return h != nil && h.set[block] }

func (h *hotIndex) ids() []int {
	if h == nil {
		return nil
	}
	out := make([]int, 0, len(h.entries))
	for _, e := range h.entries {
		out = append(out, e.block)
	}
	return out
}
