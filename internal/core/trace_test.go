package core

import (
	"testing"

	"flashwalker/internal/trace"
)

func TestEngineEmitsTraceEvents(t *testing.T) {
	g := testGraph(t)
	rec := trace.NewRecorder()
	rc := testConfig()
	rc.Tracer = rec
	rc.NumWalks = 300
	res := runEngine(t, g, rc)

	if got := rec.Count(trace.WalkDone); got != uint64(res.WalksFinished()) {
		t.Fatalf("WalkDone events %d != finished %d", got, res.WalksFinished())
	}
	if got := rec.Count(trace.SubgraphLoad); got != res.SubgraphLoads {
		t.Fatalf("SubgraphLoad events %d != counter %d", got, res.SubgraphLoads)
	}
	if got := rec.Count(trace.RovingBatch); got != res.RovingTransfers {
		t.Fatalf("RovingBatch events %d != counter %d", got, res.RovingTransfers)
	}
	if got := rec.Count(trace.PartitionSwitch); got != res.PartitionSwitches {
		t.Fatalf("PartitionSwitch events %d != counter %d", got, res.PartitionSwitches)
	}
}

func TestTraceEventsAreTimeOrdered(t *testing.T) {
	g := testGraph(t)
	rec := trace.NewRecorder()
	rc := testConfig()
	rc.Tracer = rec
	rc.NumWalks = 200
	runEngine(t, g, rc)
	evs := rec.Events()
	if len(evs) == 0 {
		t.Fatal("no events recorded")
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatalf("events out of order at %d: %v then %v", i, evs[i-1].At, evs[i].At)
		}
	}
	// The first partition switch must precede the first subgraph load.
	firstSwitch, firstLoad := -1, -1
	for i, e := range evs {
		if e.Kind == trace.PartitionSwitch && firstSwitch == -1 {
			firstSwitch = i
		}
		if e.Kind == trace.SubgraphLoad && firstLoad == -1 {
			firstLoad = i
		}
	}
	if firstSwitch == -1 || firstLoad == -1 || firstSwitch > firstLoad {
		t.Fatalf("ordering: switch at %d, load at %d", firstSwitch, firstLoad)
	}
}

func TestTraceRovingBatchesAccountWalks(t *testing.T) {
	g := testGraph(t)
	rec := trace.NewRecorder()
	rc := testConfig()
	rc.Tracer = rec
	rc.NumWalks = 300
	res := runEngine(t, g, rc)
	var walks int64
	for _, e := range rec.Events() {
		if e.Kind == trace.RovingBatch {
			if e.B <= 0 {
				t.Fatal("empty roving batch traced")
			}
			walks += e.B
		}
	}
	if uint64(walks) != res.RovingWalks {
		t.Fatalf("traced roving walks %d != counter %d", walks, res.RovingWalks)
	}
}

func TestNoTracerNoOverheadPath(t *testing.T) {
	// Tracing disabled must not change simulated results.
	g := testGraph(t)
	rc := testConfig()
	a := runEngine(t, g, rc)
	rc.Tracer = trace.NewRecorder()
	b := runEngine(t, g, rc)
	if a.Time != b.Time || a.Hops != b.Hops {
		t.Fatal("tracing changed the simulation")
	}
}
