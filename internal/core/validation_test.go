package core

// Cross-validation tests: the simulated accelerator must execute the same
// random-walk semantics as the plain reference executor (internal/walk)
// and the GraphWalker baseline — not the same trajectories (different RNG
// streams), but the same statistical behaviour and exact accounting
// invariants.

import (
	"math"
	"testing"

	"flashwalker/internal/baseline"
	"flashwalker/internal/graph"
	"flashwalker/internal/walk"
)

// TestEngineMatchesReferenceHopCounts: on a dead-end-free graph both the
// engine and the reference executor must complete every walk in exactly
// Length hops.
func TestEngineMatchesReferenceHopCounts(t *testing.T) {
	g := graph.Complete(128)
	rc := testConfig()
	rc.NumWalks = 400
	res := runEngine(t, g, rc)

	spec := rc.Spec
	ws := walk.NewWalks(spec, walk.UniformStarts(g, 400, rc.StartSeed), 400)
	ref, err := walk.Run(g, spec, ws, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hops != ref.TotalHops {
		t.Fatalf("engine hops %d != reference %d", res.Hops, ref.TotalHops)
	}
	if res.Completed != ref.Completed {
		t.Fatalf("engine completed %d != reference %d", res.Completed, ref.Completed)
	}
}

// TestEngineDeadEndRateMatchesReference: on a graph with sinks, the
// fraction of dead-ended walks must statistically agree between the
// engine and the reference executor.
func TestEngineDeadEndRateMatchesReference(t *testing.T) {
	// Half the vertices are sinks.
	b := graph.NewBuilder(400)
	for v := uint64(0); v < 200; v++ {
		b.AddEdge(v, (v+1)%200) // live cycle
		b.AddEdge(v, 200+v)     // edge into a sink
		b.AddEdge(v, (v+7)%200) // more live edges
		b.AddEdge(v, 200+(v+3)%200)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	rc := testConfig()
	rc.NumWalks = n
	res := runEngine(t, g, rc)

	spec := rc.Spec
	ws := walk.NewWalks(spec, walk.UniformStarts(g, n, rc.StartSeed), n)
	ref, err := walk.Run(g, spec, ws, 99, nil)
	if err != nil {
		t.Fatal(err)
	}
	engRate := float64(res.DeadEnded) / float64(res.Started)
	refRate := float64(ref.DeadEnded) / float64(ref.Started)
	if math.Abs(engRate-refRate) > 0.05 {
		t.Fatalf("dead-end rates diverge: engine %.3f vs reference %.3f", engRate, refRate)
	}
}

// TestEngineMatchesBaselineOutcomes: both simulated systems run the same
// workload; their aggregate outcomes (completions, dead-ends, total hops)
// must agree within statistical noise.
func TestEngineMatchesBaselineOutcomes(t *testing.T) {
	g := testGraph(t)
	const n = 1500
	rc := testConfig()
	rc.NumWalks = n
	fw := runEngine(t, g, rc)

	cfg := baseline.Config{
		MemoryBytes:  1 << 20,
		WalkMemBytes: 1 << 20,
		BlockBytes:   8 << 10,
		IDBytes:      4,
		CPUHopTime:   100,
		Threads:      8,
		Seed:         5,
	}
	e, err := baseline.New(g, cfg, rc.Spec, n, rc.StartSeed)
	if err != nil {
		t.Fatal(err)
	}
	gw, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if fw.Started != gw.Started {
		t.Fatal("different workloads")
	}
	fwDead := float64(fw.DeadEnded) / float64(fw.Started)
	gwDead := float64(gw.DeadEnded) / float64(gw.Started)
	if math.Abs(fwDead-gwDead) > 0.05 {
		t.Fatalf("dead-end rates: FlashWalker %.3f vs GraphWalker %.3f", fwDead, gwDead)
	}
	// Hops per completed walk must be exactly Length in both.
	if fw.Hops < uint64(fw.Completed)*6 || gw.Hops < uint64(gw.Completed)*6 {
		t.Fatal("completed walks under-hopped")
	}
}

// TestWalkCountConservation: started = completed + dead-ended, exactly, in
// every option configuration and partitioning regime.
func TestWalkCountConservation(t *testing.T) {
	g := testGraph(t)
	for _, spp := range []int{4, 16, 64, 4096} {
		for _, opts := range []Options{{}, AllOptions()} {
			rc := testConfig()
			rc.PartCfg.SubgraphsPerPartition = spp
			rc.Cfg.Opts = opts
			rc.NumWalks = 700
			res := runEngine(t, g, rc)
			if res.Completed+res.DeadEnded != res.Started {
				t.Fatalf("spp=%d opts=%+v: %d + %d != %d",
					spp, opts, res.Completed, res.DeadEnded, res.Started)
			}
		}
	}
}

// TestAuditModeCleanRun: the conservation auditor must stay silent on a
// healthy run across partitioning regimes and option sets.
func TestAuditModeCleanRun(t *testing.T) {
	g := testGraph(t)
	for _, spp := range []int{8, 64, 4096} {
		rc := testConfig()
		rc.Audit = true
		rc.PartCfg.SubgraphsPerPartition = spp
		rc.NumWalks = 600
		res := runEngine(t, g, rc)
		if res.WalksFinished() != 600 {
			t.Fatalf("spp=%d: finished %d", spp, res.WalksFinished())
		}
	}
}

// TestEngineVisitSkewMatchesReference: the engine's traffic should reflect
// the same hot-vertex skew the reference executor sees — hot subgraphs
// must absorb a meaningful share of updates on a skewed graph.
func TestEngineVisitSkewMatchesReference(t *testing.T) {
	g, err := graph.PowerLaw(graph.PowerLawConfig{
		NumVertices: 2048, NumEdges: 32768, Alpha: 1.0, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	rc := testConfig()
	rc.NumWalks = 1000
	res := runEngine(t, g, rc)
	hotShare := float64(res.HotHitsBoard+res.HotHitsChannel) /
		float64(res.Hops+uint64(res.DeadEnded))
	if hotShare < 0.02 {
		t.Fatalf("hot subgraphs absorbed only %.1f%% of updates on a skewed graph", 100*hotShare)
	}
}

// TestTinyBuffersStillComplete: pathologically small buffers must degrade
// performance, never correctness.
func TestTinyBuffersStillComplete(t *testing.T) {
	g := testGraph(t)
	rc := testConfig()
	rc.Cfg.ChipRovingBufBytes = 64 // ~3 walks
	rc.Cfg.ChipWalkQueueBytes = 256
	rc.Cfg.PartitionWalkEntryBytes = 64
	rc.Cfg.ForeignerBufBytes = 128
	rc.Cfg.CompletedBufBytes = 64
	rc.Cfg.ChipCompletedBufBytes = 64
	rc.Cfg.ChannelWalkQueueBytes = 128
	rc.Cfg.BoardWalkQueueBytes = 128
	rc.NumWalks = 400
	res := runEngine(t, g, rc)
	if res.WalksFinished() != res.Started {
		t.Fatalf("finished %d of %d with tiny buffers", res.WalksFinished(), res.Started)
	}
	if res.GuiderStalls == 0 {
		t.Error("tiny roving buffer never stalled a guider")
	}
}

// TestSingleChipGeometry: degenerate SSD geometries must work.
func TestSingleChipGeometry(t *testing.T) {
	g := graph.Ring(256)
	rc := testConfig()
	rc.FlashCfg.Channels = 1
	rc.FlashCfg.ChipsPerChannel = 1
	rc.NumWalks = 100
	res := runEngine(t, g, rc)
	if res.WalksFinished() != 100 {
		t.Fatalf("finished %d of 100 on a single chip", res.WalksFinished())
	}
}

// TestManySlotsGeometry: a chip buffer far larger than the graph must keep
// everything resident after warmup.
func TestManySlotsGeometry(t *testing.T) {
	g := graph.Ring(256) // 1 or 2 blocks
	rc := testConfig()
	rc.Cfg.ChipSubgraphBufBytes = 64 << 10 // 64 slots of 1 KiB
	rc.NumWalks = 200
	res := runEngine(t, g, rc)
	if res.WalksFinished() != 200 {
		t.Fatal("incomplete")
	}
}

// TestLongWalks: hop budgets far above the default stress the roving
// pipeline (each walk crosses many subgraphs).
func TestLongWalks(t *testing.T) {
	g := testGraph(t)
	rc := testConfig()
	rc.Spec.Length = 40
	rc.NumWalks = 150
	res := runEngine(t, g, rc)
	if res.WalksFinished() != 150 {
		t.Fatal("incomplete")
	}
	if res.Hops < uint64(res.Completed)*40 {
		t.Fatal("hop accounting wrong for long walks")
	}
}

// TestChannelDetectsForeigners: when a subgraph range lies entirely in a
// non-current partition, the channel-level approximate search classifies
// the walk as a foreigner without board-guider involvement — observable as
// foreigners appearing while the full mapping-table search stays cold for
// those walks (range queries >> table searches for out-of-partition hits).
func TestChannelDetectsForeigners(t *testing.T) {
	g := testGraph(t)
	rc := testConfig()
	// Align ranges within partitions so most ranges are unambiguous.
	rc.PartCfg.SubgraphsPerPartition = 16
	rc.PartCfg.RangeSize = 8
	rc.NumWalks = 800
	res := runEngine(t, g, rc)
	if res.WalksFinished() != 800 {
		t.Fatalf("finished %d", res.WalksFinished())
	}
	if res.ForeignerWalks == 0 {
		t.Fatal("no foreigners with 16-block partitions")
	}
	if res.RangeQueries == 0 {
		t.Fatal("approximate search never ran")
	}
}

// TestZeroLengthBudgetRejected guards the config boundary.
func TestZeroLengthBudgetRejected(t *testing.T) {
	g := graph.Ring(8)
	rc := testConfig()
	rc.Spec.Length = 0
	if _, err := NewEngine(g, rc); err == nil {
		t.Fatal("zero-length walks accepted")
	}
}
