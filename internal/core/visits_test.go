package core

import (
	"testing"

	"flashwalker/internal/graph"
	"flashwalker/internal/stats"
	"flashwalker/internal/walk"
)

func TestVisitTrackingConservation(t *testing.T) {
	g := testGraph(t)
	rc := testConfig()
	rc.TrackVisits = true
	rc.NumWalks = 500
	res := runEngine(t, g, rc)
	if res.Visits == nil {
		t.Fatal("visits not tracked")
	}
	var total uint64
	for _, v := range res.Visits {
		total += v
	}
	// Visits = starts + hops, exactly (the reference executor's invariant).
	want := uint64(res.Started) + res.Hops
	if total != want {
		t.Fatalf("visit total %d != starts+hops %d", total, want)
	}
}

func TestVisitsDisabledByDefault(t *testing.T) {
	g := graph.Ring(64)
	rc := testConfig()
	rc.NumWalks = 50
	res := runEngine(t, g, rc)
	if res.Visits != nil {
		t.Fatal("visits tracked without TrackVisits")
	}
}

// TestVisitDistributionMatchesReference compares the engine's stationary
// visit distribution against the reference executor's on the same graph
// and workload size. Different RNG streams mean different trajectories,
// but the per-vertex visit *distribution* must agree: we compare the two
// empirical distributions with a total-variation bound.
func TestVisitDistributionMatchesReference(t *testing.T) {
	g := graph.Complete(64) // symmetric: tight expected distribution
	const n = 3000
	rc := testConfig()
	rc.TrackVisits = true
	rc.NumWalks = n
	res := runEngine(t, g, rc)

	spec := rc.Spec
	ws := walk.NewWalks(spec, walk.UniformStarts(g, n, rc.StartSeed), n)
	ref, err := walk.Run(g, spec, ws, 12345, nil)
	if err != nil {
		t.Fatal(err)
	}

	eng := make([]float64, len(res.Visits))
	refv := make([]float64, len(ref.Visits))
	for v := range res.Visits {
		eng[v] = float64(res.Visits[v])
		refv[v] = float64(ref.Visits[v])
	}
	tv, err := stats.TotalVariation(eng, refv)
	if err != nil {
		t.Fatal(err)
	}
	if tv > 0.05 {
		t.Fatalf("visit distributions diverge: TV distance %.4f", tv)
	}
}

func TestEngineCustomStarts(t *testing.T) {
	g := graph.Complete(64)
	rc := testConfig()
	rc.TrackVisits = true
	rc.NumWalks = 500
	rc.Starts = []graph.VertexID{7}
	res := runEngine(t, g, rc)
	if res.Completed != 500 {
		t.Fatalf("completed %d", res.Completed)
	}
	// Every walk started at 7, so vertex 7 has at least 500 visits.
	if res.Visits[7] < 500 {
		t.Fatalf("source visits %d", res.Visits[7])
	}
}

func TestEngineRejectsBadStarts(t *testing.T) {
	g := graph.Ring(8)
	rc := testConfig()
	rc.Starts = []graph.VertexID{99}
	if _, err := NewEngine(g, rc); err == nil {
		t.Fatal("out-of-range start accepted")
	}
}

func TestEnginePPRFromSource(t *testing.T) {
	// In-engine personalized PageRank: restart walks all from one source;
	// the visit distribution must concentrate around the source compared
	// with uniform starts.
	g, err := graph.RMAT(graph.DefaultRMAT(1024, 16384, 21))
	if err != nil {
		t.Fatal(err)
	}
	src := graph.VertexID(0)
	for g.OutDegree(src) == 0 {
		src++
	}
	rc := testConfig()
	rc.Spec = walk.Spec{Kind: walk.Restart, Length: 64, StopProb: 0.2}
	rc.NumWalks = 1000
	rc.Starts = []graph.VertexID{src}
	rc.TrackVisits = true
	res := runEngine(t, g, rc)
	if res.WalksFinished() != 1000 {
		t.Fatalf("finished %d (dead ends on sinks are fine, losses are not)", res.WalksFinished())
	}
	maxV, maxN := graph.VertexID(0), uint64(0)
	for v, n := range res.Visits {
		if n > maxN {
			maxV, maxN = graph.VertexID(v), n
		}
	}
	if maxV != src {
		t.Fatalf("most-visited vertex %d, want source %d", maxV, src)
	}
}

// TestVisitSkewOnPowerLaw: hot vertices must dominate visits the same way
// in the engine as in the reference run (rank correlation on the top set).
func TestVisitSkewOnPowerLaw(t *testing.T) {
	g, err := graph.PowerLaw(graph.PowerLawConfig{
		NumVertices: 1024, NumEdges: 16384, Alpha: 1.0, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 3000
	rc := testConfig()
	rc.TrackVisits = true
	rc.NumWalks = n
	res := runEngine(t, g, rc)

	spec := rc.Spec
	ws := walk.NewWalks(spec, walk.UniformStarts(g, n, rc.StartSeed), n)
	ref, err := walk.Run(g, spec, ws, 777, nil)
	if err != nil {
		t.Fatal(err)
	}

	// The engine's top-20 most-visited vertices should overlap heavily
	// with the reference's top-20.
	engScores := make([]float64, len(res.Visits))
	refScores := make([]float64, len(ref.Visits))
	for v := range res.Visits {
		engScores[v] = float64(res.Visits[v])
		refScores[v] = float64(ref.Visits[v])
	}
	engTop := walk.TopK(engScores, 20)
	refTop := walk.TopK(refScores, 20)
	refSet := map[graph.VertexID]bool{}
	for _, v := range refTop {
		refSet[v] = true
	}
	overlap := 0
	for _, v := range engTop {
		if refSet[v] {
			overlap++
		}
	}
	if overlap < 12 {
		t.Fatalf("top-20 hot-vertex overlap only %d/20", overlap)
	}
}
