package core

import "flashwalker/internal/sim"

// buildAccelerators wires the accelerator hierarchy: one chip-level
// accelerator per flash chip, one channel-level accelerator per channel,
// and the board-level accelerator, all registered in e.tiers behind the
// shared tierAccel interface. A fourth tier would be constructed and
// appended here.
func (e *Engine) buildAccelerators() {
	numChips := e.ssd.NumChips()
	for i := 0; i < numChips; i++ {
		c := &chipAccel{
			tierCommon: tierCommon{
				e:            e,
				updater:      newUnitPool(e.eng, e.cfg.ChipUpdaters),
				guider:       newUnitPool(e.eng, e.cfg.ChipGuiders),
				level:        tierChip,
				updaterCycle: e.cfg.ChipUpdaterCycle,
				guiderCycle:  e.cfg.ChipGuiderCycle,
			},
			id:   i,
			chip: e.ssd.Chip(i),
		}
		c.self = c
		for s := 0; s < e.slotsPerChip; s++ {
			c.slots = append(c.slots, &chipSlot{idx: s, block: -1})
		}
		e.chips = append(e.chips, c)
		e.tiers = append(e.tiers, c)
	}
	for ch := 0; ch < e.ssd.Cfg.Channels; ch++ {
		ca := &channelAccel{
			tierCommon: tierCommon{
				e:            e,
				updater:      newUnitPool(e.eng, e.cfg.ChannelUpdaters),
				guider:       newUnitPool(e.eng, e.cfg.ChannelGuiders),
				level:        tierChannel,
				updaterCycle: e.cfg.ChannelUpdaterCycle,
				guiderCycle:  e.cfg.ChannelGuiderCycle,
				queueCap:     e.cfg.ChannelWalkQueueBytes,
				hotHits:      &e.res.HotHitsChannel,
				tierID:       int32(ch),
			},
			id:      ch,
			channel: e.ssd.Channel(ch),
		}
		ca.self = ca
		e.chans = append(e.chans, ca)
		e.tiers = append(e.tiers, ca)
	}
	b := &boardAccel{
		tierCommon: tierCommon{
			e:            e,
			updater:      newUnitPool(e.eng, e.cfg.BoardUpdaters),
			guider:       newUnitPool(e.eng, e.cfg.BoardGuiders),
			level:        tierBoard,
			updaterCycle: e.cfg.BoardUpdaterCycle,
			guiderCycle:  e.cfg.BoardGuiderCycle,
			queueCap:     e.cfg.BoardWalkQueueBytes,
			hotHits:      &e.res.HotHitsBoard,
			tierID:       -1,
		},
	}
	b.self = b
	for i := 0; i < e.cfg.TablePorts; i++ {
		b.ports = append(b.ports, sim.NewQueue(e.eng))
	}
	if e.cfg.Opts.WalkQuery {
		for i := 0; i < e.cfg.NumQueryCaches; i++ {
			b.caches = append(b.caches, newQueryCache(e.cfg.QueryCacheBytes, e.cfg.MappingEntryBytes))
		}
	}
	e.board = b
	e.tiers = append(e.tiers, b)
	e.selectHotSubgraphs()
}

// selectHotSubgraphs picks the top in-degree non-dense blocks for the board
// and for each channel (paper §III-C: channels keep the top-K among blocks
// on their own chips).
func (e *Engine) selectHotSubgraphs() {
	if !e.cfg.Opts.HotSubgraphs {
		return
	}
	sums := e.part.InDegreeSums()
	all := make([]int, e.part.NumBlocks())
	for i := range all {
		all[i] = i
	}
	e.board.SetHotBlocks(e.pickHotBlocks(sums, all, e.cfg.BoardSubgraphBufBytes, map[int]bool{}))
	for ch, ca := range e.chans {
		ca.SetHotBlocks(e.pickHotBlocks(sums, e.place.BlocksOnChannel(ch),
			e.cfg.ChannelSubgraphBufBytes, map[int]bool{}))
	}
}

// pickHotBlocks greedily selects the top in-degree non-dense candidates that
// fit in budget bytes, skipping (and marking) blocks already in used. Shared
// by the initial hot-subgraph selection and the degraded-chip failover
// (degrade.go). Selection sort: candidate lists are small (blocks per
// channel).
func (e *Engine) pickHotBlocks(sums []uint64, candidates []int, budget int64, used map[int]bool) []int {
	chosen := []int{}
	for {
		best, bestSum := -1, uint64(0)
		for _, id := range candidates {
			b := &e.part.Blocks[id]
			if used[id] || b.Dense || b.Bytes > budget {
				continue
			}
			if best == -1 || sums[id] > bestSum {
				best, bestSum = id, sums[id]
			}
		}
		if best == -1 {
			break
		}
		used[best] = true
		budget -= e.part.Blocks[best].Bytes
		chosen = append(chosen, best)
	}
	return chosen
}

// preloadHotSubgraphs reads hot blocks into the channel and board buffers
// at time zero, paying the flash and bus traffic.
func (e *Engine) preloadHotSubgraphs() {
	if !e.cfg.Opts.HotSubgraphs {
		e.board.hotReady = true
		for _, ca := range e.chans {
			ca.hotReady = true
		}
		return
	}
	load := func(ids []int, ready *bool) {
		if len(ids) == 0 {
			*ready = true
			return
		}
		left := len(ids)
		for _, id := range ids {
			pages := e.part.Pages(&e.part.Blocks[id], e.ssd.Cfg.PageBytes)
			chip := e.ssd.Chip(e.place.ChipOf(id))
			e.ssd.ReadPagesToChannel(chip, pages, func() {
				left--
				if left == 0 {
					*ready = true
				}
			})
		}
	}
	load(e.board.HotBlocks(), &e.board.hotReady)
	for _, ca := range e.chans {
		load(ca.HotBlocks(), &ca.hotReady)
	}
}
