// Package dram models the SSD's on-board DRAM (Table III: DDR4-1600, one
// channel, 64-bit bus) as a fixed-latency, bandwidth-limited FIFO port.
//
// The board-level accelerator keeps the partition walk buffer, the subgraph
// mapping table and the foreigner buffer in this DRAM, so mapping-table
// searches and walk-buffer traffic contend on the port — the contention the
// paper's walk query cache exists to relieve.
package dram

import (
	"fmt"

	"flashwalker/internal/sim"
)

// Config describes the DRAM device.
type Config struct {
	// AccessLatency is the closed-row random access time (tRCD+tCL+burst at
	// the Table III timings: ~27.5 ns for DDR4-1600 CL22; rounded to 28 ns).
	AccessLatency sim.Time
	// BytesPerSec is the peak transfer rate (DDR4-1600 x64: 12.8 GB/s).
	BytesPerSec int64
	// CapacityBytes is the DRAM size (4 GB in Table III).
	CapacityBytes int64
	// Banks is the number of independently busy banks; accesses stripe
	// round-robin, so small-record traffic (walk buffer writes) overlaps
	// the way a real banked DDR4 device pipelines it. DDR4 has 16 banks;
	// the default models 8 usefully independent ones.
	Banks int
}

// Default returns Table III's DRAM configuration.
func Default() Config {
	return Config{
		AccessLatency: 28 * sim.Nanosecond,
		BytesPerSec:   12_800_000_000,
		CapacityBytes: 4 << 30,
		Banks:         8,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.AccessLatency <= 0 || c.BytesPerSec <= 0 || c.CapacityBytes <= 0 {
		return fmt.Errorf("dram: non-positive parameter %+v", c)
	}
	return nil
}

// DRAM is the simulated device.
type DRAM struct {
	Eng   *sim.Engine
	Cfg   Config
	banks []*sim.Queue
	rr    int

	ReadBytes  int64
	WriteBytes int64
	Accesses   uint64
}

// New builds a DRAM model on the engine.
func New(eng *sim.Engine, cfg Config) (*DRAM, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Banks
	if n < 1 {
		n = 1
	}
	d := &DRAM{Eng: eng, Cfg: cfg}
	for i := 0; i < n; i++ {
		d.banks = append(d.banks, sim.NewQueue(eng))
	}
	return d, nil
}

func (d *DRAM) access(bytes int64, done func()) sim.Time {
	service := d.Cfg.AccessLatency + sim.TransferTime(bytes, d.Cfg.BytesPerSec)
	d.Accesses++
	bank := d.banks[d.rr]
	d.rr = (d.rr + 1) % len(d.banks)
	return bank.Acquire(service, done)
}

// Read models reading bytes; done fires at completion. Returns the
// completion time.
func (d *DRAM) Read(bytes int64, done func()) sim.Time {
	d.ReadBytes += bytes
	return d.access(bytes, done)
}

// Write models writing bytes; done fires at completion.
func (d *DRAM) Write(bytes int64, done func()) sim.Time {
	d.WriteBytes += bytes
	return d.access(bytes, done)
}

// Utilization reports the mean bank busy fraction.
func (d *DRAM) Utilization() float64 {
	var u float64
	for _, b := range d.banks {
		u += b.Utilization()
	}
	return u / float64(len(d.banks))
}
