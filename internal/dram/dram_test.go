package dram

import (
	"testing"

	"flashwalker/internal/sim"
)

func TestDefaultValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBad(t *testing.T) {
	for _, c := range []Config{
		{AccessLatency: 0, BytesPerSec: 1, CapacityBytes: 1},
		{AccessLatency: 1, BytesPerSec: 0, CapacityBytes: 1},
		{AccessLatency: 1, BytesPerSec: 1, CapacityBytes: 0},
	} {
		if c.Validate() == nil {
			t.Errorf("config %+v accepted", c)
		}
		if _, err := New(sim.New(), c); err == nil {
			t.Errorf("New accepted %+v", c)
		}
	}
}

func TestReadTiming(t *testing.T) {
	eng := sim.New()
	cfg := Config{AccessLatency: 28, BytesPerSec: 12_800_000_000, CapacityBytes: 1 << 30}
	d, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 128 bytes at 12.8 GB/s = 10 ns, plus 28 ns access.
	end := d.Read(128, nil)
	if end != 38 {
		t.Fatalf("read end = %v, want 38", end)
	}
}

func TestPortSerializes(t *testing.T) {
	eng := sim.New()
	d, _ := New(eng, Config{AccessLatency: 10, BytesPerSec: 1_000_000_000, CapacityBytes: 1 << 20})
	// two 1000-byte ops: each 10 + 1000ns = 1010ns; second queues.
	e1 := d.Read(1000, nil)
	e2 := d.Write(1000, nil)
	if e1 != 1010 || e2 != 2020 {
		t.Fatalf("ends = %v, %v", e1, e2)
	}
	if d.ReadBytes != 1000 || d.WriteBytes != 1000 || d.Accesses != 2 {
		t.Fatal("counters wrong")
	}
}

func TestCallbacksFire(t *testing.T) {
	eng := sim.New()
	d, _ := New(eng, Default())
	fired := 0
	d.Read(64, func() { fired++ })
	d.Write(64, func() { fired++ })
	eng.Run()
	if fired != 2 {
		t.Fatalf("callbacks fired %d", fired)
	}
}

func TestUtilization(t *testing.T) {
	eng := sim.New()
	d, _ := New(eng, Config{AccessLatency: 50, BytesPerSec: 1e12, CapacityBytes: 1 << 20})
	d.Read(0, nil)
	eng.Run()
	eng.RunUntil(100)
	u := d.Utilization()
	if u < 0.49 || u > 0.51 {
		t.Fatalf("Utilization = %v, want ~0.5", u)
	}
}
