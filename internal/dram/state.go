package dram

import (
	"fmt"

	"flashwalker/internal/sim"
)

// State is the serializable mid-run state of a DRAM: bank bookings, the
// round-robin cursor, and traffic counters. The config is rebuilt on
// restore, not serialized here.
type State struct {
	Banks      []sim.QueueState
	RR         int
	ReadBytes  int64
	WriteBytes int64
	Accesses   uint64
}

// State captures the device's mid-run state.
func (d *DRAM) State() State {
	st := State{
		Banks:      make([]sim.QueueState, len(d.banks)),
		RR:         d.rr,
		ReadBytes:  d.ReadBytes,
		WriteBytes: d.WriteBytes,
		Accesses:   d.Accesses,
	}
	for i, b := range d.banks {
		st.Banks[i] = b.State()
	}
	return st
}

// Restore overlays a captured State onto a freshly built DRAM of the same
// configuration.
func (d *DRAM) Restore(st State) error {
	if len(st.Banks) != len(d.banks) {
		return fmt.Errorf("dram: restore: %d banks in state, device has %d", len(st.Banks), len(d.banks))
	}
	for i, b := range d.banks {
		b.Restore(st.Banks[i])
	}
	d.rr = st.RR
	d.ReadBytes = st.ReadBytes
	d.WriteBytes = st.WriteBytes
	d.Accesses = st.Accesses
	return nil
}
