// Package errs defines the typed error taxonomy shared by every layer of
// the repository. Callers classify failures with errors.Is against these
// sentinels instead of matching message strings; producing packages wrap
// them with %w and add their own context.
package errs

import (
	"errors"
	"fmt"
)

var (
	// ErrCanceled marks a run halted by context cancellation. The engines
	// return it alongside a partial Result whose counters are a consistent
	// snapshot taken at an event boundary.
	ErrCanceled = errors.New("run canceled")

	// ErrInvalidConfig marks a configuration or workload parameter rejected
	// by validation (non-positive capacity, bad generator probabilities,
	// out-of-range start vertex, ...).
	ErrInvalidConfig = errors.New("invalid configuration")

	// ErrUnknownDataset marks a lookup of a dataset or graph name that is
	// not registered.
	ErrUnknownDataset = errors.New("unknown dataset")
)

// Canceled is the structured form of a cancellation: which engine halted,
// how far it got, and the context error that triggered the halt. It
// unwraps to both ErrCanceled and Cause, so errors.Is(err, ErrCanceled)
// and errors.Is(err, context.Canceled) both match, and
// errors.As(err, &*Canceled) recovers the partial-progress detail.
type Canceled struct {
	// Op names the halted engine ("core", "baseline", "walk").
	Op string
	// Finished and Total count walks done and requested at the halt.
	Finished, Total int
	// Cause is the context error (context.Canceled or DeadlineExceeded).
	Cause error
}

func (c *Canceled) Error() string {
	return fmt.Sprintf("%s: run canceled with %d of %d walks finished: %v",
		c.Op, c.Finished, c.Total, c.Cause)
}

// Unwrap exposes both the ErrCanceled sentinel and the context cause to
// the errors.Is/errors.As traversal.
func (c *Canceled) Unwrap() []error { return []error{ErrCanceled, c.Cause} }
