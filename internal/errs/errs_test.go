package errs

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestCanceledUnwrapsSentinelAndCause(t *testing.T) {
	c := &Canceled{Op: "core", Finished: 3, Total: 10, Cause: context.Canceled}
	if !errors.Is(c, ErrCanceled) {
		t.Error("Canceled does not match ErrCanceled")
	}
	if !errors.Is(c, context.Canceled) {
		t.Error("Canceled does not match its context cause")
	}
	// Wrapping with extra context must not break classification.
	wrapped := fmt.Errorf("outer layer: %w", c)
	if !errors.Is(wrapped, ErrCanceled) {
		t.Error("wrapped Canceled does not match ErrCanceled")
	}
	var got *Canceled
	if !errors.As(wrapped, &got) {
		t.Fatal("errors.As failed to recover *Canceled")
	}
	if got.Op != "core" || got.Finished != 3 || got.Total != 10 {
		t.Errorf("errors.As recovered wrong detail: %+v", got)
	}
}

func TestSentinelsAreDistinct(t *testing.T) {
	sentinels := []error{ErrCanceled, ErrInvalidConfig, ErrUnknownDataset}
	for i, a := range sentinels {
		for j, b := range sentinels {
			if (i == j) != errors.Is(a, b) {
				t.Errorf("sentinel %d vs %d: unexpected Is result", i, j)
			}
		}
	}
}
