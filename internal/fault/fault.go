// Package fault is the deterministic fault-injection subsystem for the
// simulated flash stack. Real SSDs fail in three characteristic ways the
// paper's idealized model ignores: a page sense returns an ECC-uncorrectable
// read that must be retried, a plane reports busy and delays the sense, and
// a worn chip degrades permanently, serving every subsequent read slowly and
// with an elevated error rate.
//
// The injector draws every fault decision from its own RNG stream, seeded by
// Config.Seed and never shared with the walk RNG. Two consequences, both
// load-bearing for the test layer:
//
//   - A run with all rates at zero makes no draws at all (rng.Bool(0)
//     returns without consuming state) and injects no latency, so it is
//     bit-identical to a run with no injector attached. The golden-seed
//     digest therefore holds with faults disabled AND with a zero-rate
//     injector attached.
//   - Faults perturb only the event timeline, never a walk's trajectory:
//     each walk carries its own RNG stream (see internal/core), so clean and
//     faulty runs complete exactly the same walks in the same number of
//     hops. Faults change when walks finish, never whether.
//
// Fault decisions are drawn in simulated-event order, which the event kernel
// makes deterministic, so the same (seed, config) pair reproduces the same
// fault sequence — and the same counters — on every run.
package fault

import (
	"fmt"
	"math"

	"flashwalker/internal/errs"
	"flashwalker/internal/rng"
	"flashwalker/internal/sim"
)

// Config parameterizes the injector. The zero value is a valid, disabled
// configuration.
type Config struct {
	// Enabled turns injection on. When false the rest of the fields are
	// ignored and the engines never construct an injector.
	Enabled bool `json:"enabled"`
	// Seed seeds the dedicated fault RNG stream. Independent from the
	// simulation seed: the same workload can be replayed under different
	// fault sequences and vice versa.
	Seed uint64 `json:"seed"`

	// ReadErrorRate is the per-sense probability that a page read fails
	// and must be retried (ECC-uncorrectable).
	ReadErrorRate float64 `json:"read_error_rate"`
	// PlaneBusyRate is the per-sense probability that the target plane is
	// busy (e.g. background media management) and the sense stalls.
	PlaneBusyRate float64 `json:"plane_busy_rate"`
	// PlaneBusyTime is the extra plane occupancy charged per busy stall.
	PlaneBusyTime sim.Time `json:"plane_busy_time"`

	// MaxRetries bounds the re-senses of a failing page. Retry i waits
	// RetryBackoff << i before re-acquiring the same plane (exponential
	// backoff). After MaxRetries the data is taken as recovered by the
	// controller's heroics and the operation proceeds: a fault may never
	// lose a walk.
	MaxRetries int `json:"max_retries"`
	// RetryBackoff is the base backoff before the first retry.
	RetryBackoff sim.Time `json:"retry_backoff"`

	// DegradeAfterErrors permanently degrades a chip once it has served
	// this many read errors (0 = chips never degrade). Degradation is
	// sticky: every later sense on the chip pays DegradedReadPenalty, and
	// the scheduler is told so it can fail the chip's hot subgraphs over
	// to the channel accelerator.
	DegradeAfterErrors int `json:"degrade_after_errors"`
	// DegradedReadPenalty is the extra sense latency on a degraded chip.
	DegradedReadPenalty sim.Time `json:"degraded_read_penalty"`

	// KillBoardAt, when positive, fail-stops one whole board of a
	// multi-board array at that simulated time: the board's shard is
	// re-placed onto the survivors and its buffered walks are evacuated
	// over the inter-board fabric (see internal/core's array layer).
	// Independent of Enabled — a kill can be injected without rate-based
	// injection — and rejected by single-board runs. Zero disables it.
	KillBoardAt sim.Time `json:"kill_board_at,omitempty"`
	// KillBoard is the board index KillBoardAt applies to.
	KillBoard int `json:"kill_board,omitempty"`
}

// Default returns a representative enabled fault profile: 2% read errors,
// 5% plane-busy stalls, bounded retry with 10 us base backoff, and sticky
// chip degradation after 64 errors.
func Default() Config {
	return Config{
		Enabled:             true,
		Seed:                0xFA17,
		ReadErrorRate:       0.02,
		PlaneBusyRate:       0.05,
		PlaneBusyTime:       25 * sim.Microsecond,
		MaxRetries:          4,
		RetryBackoff:        10 * sim.Microsecond,
		DegradeAfterErrors:  64,
		DegradedReadPenalty: 35 * sim.Microsecond,
	}
}

// maxRetriesCap bounds MaxRetries so the exponential backoff shift
// (RetryBackoff << attempt) cannot overflow sim.Time.
const maxRetriesCap = 32

// Validate checks the configuration; failures wrap errs.ErrInvalidConfig.
// A disabled zero value validates clean.
func (c Config) Validate() error {
	for _, rate := range []struct {
		name string
		v    float64
	}{
		{"ReadErrorRate", c.ReadErrorRate},
		{"PlaneBusyRate", c.PlaneBusyRate},
	} {
		// The negated comparison also rejects NaN.
		if !(rate.v >= 0 && rate.v <= 1) || math.IsNaN(rate.v) {
			return fmt.Errorf("fault: %s %v outside [0, 1]: %w", rate.name, rate.v, errs.ErrInvalidConfig)
		}
	}
	for _, d := range []struct {
		name string
		v    sim.Time
	}{
		{"PlaneBusyTime", c.PlaneBusyTime},
		{"RetryBackoff", c.RetryBackoff},
		{"DegradedReadPenalty", c.DegradedReadPenalty},
	} {
		if d.v < 0 {
			return fmt.Errorf("fault: negative %s %v: %w", d.name, d.v, errs.ErrInvalidConfig)
		}
	}
	if c.MaxRetries < 0 || c.MaxRetries > maxRetriesCap {
		return fmt.Errorf("fault: MaxRetries %d outside [0, %d]: %w", c.MaxRetries, maxRetriesCap, errs.ErrInvalidConfig)
	}
	if c.DegradeAfterErrors < 0 {
		return fmt.Errorf("fault: negative DegradeAfterErrors %d: %w", c.DegradeAfterErrors, errs.ErrInvalidConfig)
	}
	if c.KillBoardAt < 0 {
		return fmt.Errorf("fault: negative KillBoardAt %v: %w", c.KillBoardAt, errs.ErrInvalidConfig)
	}
	if c.KillBoard < 0 {
		return fmt.Errorf("fault: negative KillBoard %d: %w", c.KillBoard, errs.ErrInvalidConfig)
	}
	return nil
}

// Counters accumulates injected faults and the engine's responses. All
// values are deterministic for a given (workload seed, fault config) pair.
type Counters struct {
	ReadErrors       uint64   // senses that failed and needed a retry decision
	Retries          uint64   // re-senses issued
	RetriesExhausted uint64   // failures that hit MaxRetries and proceeded
	PlaneBusyStalls  uint64   // senses delayed by a busy plane
	StallTime        sim.Time // total plane-busy occupancy injected
	BackoffTime      sim.Time // total retry backoff waited
	DegradedChips    uint64   // chips that crossed DegradeAfterErrors
}

// Injector draws faults for one simulated SSD. It is not safe for
// concurrent use; like the rest of the simulator it runs on the
// single-threaded event loop.
type Injector struct {
	cfg Config
	rng *rng.RNG

	// Counters is updated in place as faults are drawn; read it after (or
	// during) a run for the totals.
	Counters Counters

	// OnDegrade, when non-nil, fires once per chip the moment it crosses
	// DegradeAfterErrors. The core engine hooks this to fail the chip's
	// hot subgraphs over to its channel accelerator.
	OnDegrade func(chip int)

	chipErrors []int
	degraded   []bool
}

// NewInjector builds an injector for numChips chips. The caller should have
// validated cfg; NewInjector trusts it.
func NewInjector(cfg Config, numChips int) *Injector {
	return &Injector{
		cfg:        cfg,
		rng:        rng.New(cfg.Seed),
		chipErrors: make([]int, numChips),
		degraded:   make([]bool, numChips),
	}
}

// Config returns the injector's configuration.
func (in *Injector) Config() Config { return in.cfg }

// Degraded reports whether chip has crossed its error threshold.
func (in *Injector) Degraded(chip int) bool { return in.degraded[chip] }

// MaxRetries reports the retry bound.
func (in *Injector) MaxRetries() int { return in.cfg.MaxRetries }

// ReadIssueDelay returns the extra plane occupancy for one page sense on
// chip: the sticky degradation penalty (no draw) plus, with probability
// PlaneBusyRate, a plane-busy stall (at most one draw).
func (in *Injector) ReadIssueDelay(chip int) sim.Time {
	var d sim.Time
	if in.degraded[chip] {
		d += in.cfg.DegradedReadPenalty
	}
	if in.rng.Bool(in.cfg.PlaneBusyRate) {
		in.Counters.PlaneBusyStalls++
		in.Counters.StallTime += in.cfg.PlaneBusyTime
		d += in.cfg.PlaneBusyTime
	}
	return d
}

// ReadFails draws whether the sense that just completed on chip returned an
// uncorrectable error (at most one draw). A failure counts toward the
// chip's degradation threshold regardless of whether the retry succeeds.
func (in *Injector) ReadFails(chip int) bool {
	if !in.rng.Bool(in.cfg.ReadErrorRate) {
		return false
	}
	in.Counters.ReadErrors++
	in.chipErrors[chip]++
	if in.cfg.DegradeAfterErrors > 0 && !in.degraded[chip] &&
		in.chipErrors[chip] >= in.cfg.DegradeAfterErrors {
		in.degraded[chip] = true
		in.Counters.DegradedChips++
		if in.OnDegrade != nil {
			in.OnDegrade(chip)
		}
	}
	return true
}

// RetryDelay accounts one retry and returns its exponential backoff:
// RetryBackoff << attempt, where attempt counts prior tries of this page.
func (in *Injector) RetryDelay(attempt int) sim.Time {
	d := in.cfg.RetryBackoff << attempt
	in.Counters.Retries++
	in.Counters.BackoffTime += d
	return d
}

// RetryExhausted accounts a failure that hit MaxRetries; the caller
// proceeds with the (recovered) data.
func (in *Injector) RetryExhausted() {
	in.Counters.RetriesExhausted++
}
