package fault

import (
	"errors"
	"math"
	"testing"

	"flashwalker/internal/errs"
	"flashwalker/internal/sim"
)

func TestValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero value should validate: %v", err)
	}
	if err := Default().Validate(); err != nil {
		t.Fatalf("Default should validate: %v", err)
	}
	bad := []Config{
		{ReadErrorRate: -0.1},
		{ReadErrorRate: 1.5},
		{ReadErrorRate: math.NaN()},
		{PlaneBusyRate: 2},
		{PlaneBusyTime: -sim.Microsecond},
		{RetryBackoff: -1},
		{DegradedReadPenalty: -1},
		{MaxRetries: -1},
		{MaxRetries: maxRetriesCap + 1},
		{DegradeAfterErrors: -1},
	}
	for i, c := range bad {
		err := c.Validate()
		if err == nil {
			t.Fatalf("case %d: %+v should fail validation", i, c)
		}
		if !errors.Is(err, errs.ErrInvalidConfig) {
			t.Fatalf("case %d: error %v does not wrap ErrInvalidConfig", i, err)
		}
	}
}

// drive makes a fixed call sequence against the injector and returns the
// resulting counters.
func drive(in *Injector, n int) Counters {
	for i := 0; i < n; i++ {
		chip := i % 4
		in.ReadIssueDelay(chip)
		if in.ReadFails(chip) {
			attempt := 0
			for attempt < in.MaxRetries() && in.ReadFails(chip) {
				in.RetryDelay(attempt)
				attempt++
			}
			if attempt == in.MaxRetries() {
				in.RetryExhausted()
			}
		}
	}
	return in.Counters
}

func TestInjectorDeterministic(t *testing.T) {
	cfg := Default()
	a := drive(NewInjector(cfg, 4), 5000)
	b := drive(NewInjector(cfg, 4), 5000)
	if a != b {
		t.Fatalf("same seed produced different fault sequences:\n%+v\n%+v", a, b)
	}
	if a.ReadErrors == 0 || a.PlaneBusyStalls == 0 {
		t.Fatalf("default profile injected nothing over 5000 senses: %+v", a)
	}
	cfg.Seed++
	c := drive(NewInjector(cfg, 4), 5000)
	if a == c {
		t.Fatalf("different fault seeds produced identical counters: %+v", a)
	}
}

func TestZeroRatesInjectNothing(t *testing.T) {
	cfg := Default()
	cfg.ReadErrorRate = 0
	cfg.PlaneBusyRate = 0
	in := NewInjector(cfg, 4)
	for i := 0; i < 1000; i++ {
		if d := in.ReadIssueDelay(i % 4); d != 0 {
			t.Fatalf("zero-rate injector delayed a sense by %v", d)
		}
		if in.ReadFails(i % 4) {
			t.Fatal("zero-rate injector failed a read")
		}
	}
	if in.Counters != (Counters{}) {
		t.Fatalf("zero-rate injector counted faults: %+v", in.Counters)
	}
}

func TestDegradationStickyAndSignaledOnce(t *testing.T) {
	cfg := Config{
		Enabled:             true,
		ReadErrorRate:       1, // every sense fails
		DegradeAfterErrors:  3,
		DegradedReadPenalty: 7 * sim.Microsecond,
	}
	in := NewInjector(cfg, 2)
	var degraded []int
	in.OnDegrade = func(chip int) { degraded = append(degraded, chip) }
	for i := 0; i < 10; i++ {
		in.ReadFails(1)
	}
	if len(degraded) != 1 || degraded[0] != 1 {
		t.Fatalf("expected exactly one degrade signal for chip 1, got %v", degraded)
	}
	if !in.Degraded(1) || in.Degraded(0) {
		t.Fatalf("degradation flags wrong: chip0=%v chip1=%v", in.Degraded(0), in.Degraded(1))
	}
	if in.Counters.DegradedChips != 1 {
		t.Fatalf("DegradedChips = %d, want 1", in.Counters.DegradedChips)
	}
	if d := in.ReadIssueDelay(1); d != cfg.DegradedReadPenalty {
		t.Fatalf("degraded chip sense delay = %v, want %v", d, cfg.DegradedReadPenalty)
	}
	if d := in.ReadIssueDelay(0); d != 0 {
		t.Fatalf("healthy chip sense delay = %v, want 0", d)
	}
}

func TestRetryDelayExponential(t *testing.T) {
	cfg := Config{RetryBackoff: 10 * sim.Microsecond, MaxRetries: 4}
	in := NewInjector(cfg, 1)
	for attempt, want := range []sim.Time{
		10 * sim.Microsecond, 20 * sim.Microsecond, 40 * sim.Microsecond, 80 * sim.Microsecond,
	} {
		if d := in.RetryDelay(attempt); d != want {
			t.Fatalf("RetryDelay(%d) = %v, want %v", attempt, d, want)
		}
	}
	if in.Counters.Retries != 4 || in.Counters.BackoffTime != 150*sim.Microsecond {
		t.Fatalf("retry accounting wrong: %+v", in.Counters)
	}
}
