package fault

// State is the serializable mid-run state of an Injector. The config is not
// part of it: a restored run reconstructs the injector from the same
// validated Config and overlays this state, so the fault stream continues
// exactly where the snapshot left it.
type State struct {
	RNG        [4]uint64
	Counters   Counters
	ChipErrors []int
	Degraded   []bool
}

// State captures the injector's RNG position, counters, and per-chip
// error/degradation tracking.
func (in *Injector) State() State {
	st := State{
		RNG:        in.rng.State(),
		Counters:   in.Counters,
		ChipErrors: append([]int(nil), in.chipErrors...),
		Degraded:   append([]bool(nil), in.degraded...),
	}
	return st
}

// Restore overlays a captured State onto the injector. The chip count must
// match the geometry the injector was built for. Restoring does not re-fire
// OnDegrade for already-degraded chips: the engine restoring the snapshot
// also restores the failover state those callbacks produced.
func (in *Injector) Restore(st State) {
	in.rng.SetState(st.RNG)
	in.Counters = st.Counters
	copy(in.chipErrors, st.ChipErrors)
	copy(in.degraded, st.Degraded)
}
