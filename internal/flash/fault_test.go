package flash

import (
	"testing"

	"flashwalker/internal/fault"
	"flashwalker/internal/sim"
)

// faultWorkload drives a mixed read workload across every chip and returns
// the finish time. done-counting proves no operation is lost to a fault.
func faultWorkload(t *testing.T, s *SSD, eng *sim.Engine) (sim.Time, int) {
	t.Helper()
	finished := 0
	for i := 0; i < 50; i++ {
		chip := s.Chip(i % s.NumChips())
		s.ReadPagesLocal(chip, 2, func() { finished++ })
		s.ReadPagesToChannel(chip, 1, func() { finished++ })
		s.ReadPagesToHost(chip, 1, func() { finished++ })
	}
	eng.Run()
	return eng.Now(), finished
}

func TestZeroRateInjectorIsTimingIdentical(t *testing.T) {
	cleanEng, clean := newSSD(t, smallCfg())
	cleanNow, cleanDone := faultWorkload(t, clean, cleanEng)

	cfg := fault.Default()
	cfg.ReadErrorRate = 0
	cfg.PlaneBusyRate = 0
	zeroEng, zero := newSSD(t, smallCfg())
	zero.AttachFaults(fault.NewInjector(cfg, zero.NumChips()))
	zeroNow, zeroDone := faultWorkload(t, zero, zeroEng)

	if cleanNow != zeroNow || cleanDone != zeroDone {
		t.Fatalf("zero-rate injector perturbed the timeline: clean (%v, %d) vs zero-rate (%v, %d)",
			cleanNow, cleanDone, zeroNow, zeroDone)
	}
	if clean.Counters != zero.Counters {
		t.Fatalf("zero-rate injector changed traffic: %+v vs %+v", clean.Counters, zero.Counters)
	}
}

func TestFaultsDelayButNeverLoseOperations(t *testing.T) {
	cleanEng, clean := newSSD(t, smallCfg())
	_, cleanDone := faultWorkload(t, clean, cleanEng)

	cfg := fault.Default()
	cfg.ReadErrorRate = 0.2 // high enough that 200 senses surely hit some
	faultyEng, faulty := newSSD(t, smallCfg())
	inj := fault.NewInjector(cfg, faulty.NumChips())
	faulty.AttachFaults(inj)
	_, faultyDone := faultWorkload(t, faulty, faultyEng)

	if faultyDone != cleanDone {
		t.Fatalf("faults lost operations: %d completions vs %d clean", faultyDone, cleanDone)
	}
	if inj.Counters.ReadErrors == 0 || inj.Counters.Retries == 0 {
		t.Fatalf("expected injected read errors at rate %v: %+v", cfg.ReadErrorRate, inj.Counters)
	}
	// Retries re-sense pages, so the faulty run reads strictly more. (Wall
	// time is NOT compared: a retry on an idle plane can overlap the busy
	// channel bus and even reshuffle arbitration in the faulty run's favor.)
	if faulty.Counters.ReadPages <= clean.Counters.ReadPages {
		t.Fatalf("retries should re-sense pages: %d <= %d",
			faulty.Counters.ReadPages, clean.Counters.ReadPages)
	}
}

func TestFaultyRunReplaysExactly(t *testing.T) {
	run := func() (sim.Time, fault.Counters, Counters) {
		eng, s := newSSD(t, smallCfg())
		inj := fault.NewInjector(fault.Default(), s.NumChips())
		s.AttachFaults(inj)
		now, _ := faultWorkload(t, s, eng)
		return now, inj.Counters, s.Counters
	}
	aNow, aFaults, aTraffic := run()
	bNow, bFaults, bTraffic := run()
	if aNow != bNow || aFaults != bFaults || aTraffic != bTraffic {
		t.Fatalf("faulty run not reproducible:\n(%v, %+v, %+v)\n(%v, %+v, %+v)",
			aNow, aFaults, aTraffic, bNow, bFaults, bTraffic)
	}
}

func TestDegradedChipServesReadsSlowly(t *testing.T) {
	cfg := fault.Config{
		Enabled:             true,
		ReadErrorRate:       1,
		MaxRetries:          0, // fail, exhaust immediately, proceed
		DegradeAfterErrors:  1,
		DegradedReadPenalty: 65 * sim.Microsecond,
	}
	eng, s := newSSD(t, smallCfg())
	inj := fault.NewInjector(cfg, s.NumChips())
	s.AttachFaults(inj)
	chip := s.Chip(0)
	s.ReadPagesLocal(chip, 1, nil) // first read degrades the chip
	eng.Run()
	if !inj.Degraded(0) {
		t.Fatal("chip 0 should be degraded after its first error")
	}
	start := eng.Now()
	s.ReadPagesLocal(chip, 1, nil)
	eng.Run()
	want := s.Cfg.ReadLatency + cfg.DegradedReadPenalty
	if got := eng.Now() - start; got != want {
		t.Fatalf("degraded sense took %v, want %v", got, want)
	}
}
