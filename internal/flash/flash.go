// Package flash models the SSD's storage back end with the timing structure
// that drives the paper's results: per-plane page read/program latency, the
// per-channel ONFI bus as a serializing resource, and the PCIe link to the
// host. Geometry and latencies default to Tables I and III.
//
// Three data paths are modelled, matching the three consumers:
//
//   - Chip-local: a chip-level accelerator reads pages from its own planes
//     into its subgraph buffer. No channel-bus time — this is the data
//     movement FlashWalker eliminates.
//   - Channel: data moves between a chip and the channel-/board-level
//     accelerators, paying plane latency plus the channel bus transfer.
//   - Host: data additionally crosses the PCIe link (GraphWalker's path).
package flash

import (
	"fmt"

	"flashwalker/internal/fault"
	"flashwalker/internal/metrics"
	"flashwalker/internal/sim"
)

// Config describes SSD geometry and timing (Tables I & III).
type Config struct {
	Channels        int
	ChipsPerChannel int
	DiesPerChip     int
	PlanesPerDie    int
	BlocksPerPlane  int
	PagesPerBlock   int
	PageBytes       int64

	ReadLatency    sim.Time // page sense time (35 us)
	ProgramLatency sim.Time // page program time (350 us)
	EraseLatency   sim.Time // block erase (2 ms)

	ChannelBytesPerSec int64 // ONFI NV-DDR2 (333 MB/s)
	PCIeBytesPerSec    int64 // host link (1 GB/s x 4 lanes)
}

// Default returns the configuration of Tables I and III.
func Default() Config {
	return Config{
		Channels:           32,
		ChipsPerChannel:    4,
		DiesPerChip:        2,
		PlanesPerDie:       4,
		BlocksPerPlane:     2048,
		PagesPerBlock:      64,
		PageBytes:          4096,
		ReadLatency:        35 * sim.Microsecond,
		ProgramLatency:     350 * sim.Microsecond,
		EraseLatency:       2 * sim.Millisecond,
		ChannelBytesPerSec: 333_000_000,
		PCIeBytesPerSec:    4_000_000_000,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Channels <= 0, c.ChipsPerChannel <= 0, c.DiesPerChip <= 0, c.PlanesPerDie <= 0:
		return fmt.Errorf("flash: non-positive geometry %+v", c)
	case c.PageBytes <= 0:
		return fmt.Errorf("flash: non-positive page size")
	case c.ReadLatency <= 0 || c.ProgramLatency <= 0:
		return fmt.Errorf("flash: non-positive latency")
	case c.ChannelBytesPerSec <= 0 || c.PCIeBytesPerSec <= 0:
		return fmt.Errorf("flash: non-positive bandwidth")
	}
	return nil
}

// NumChips reports the total chip count.
func (c Config) NumChips() int { return c.Channels * c.ChipsPerChannel }

// PlanesPerChip reports planes per chip.
func (c Config) PlanesPerChip() int { return c.DiesPerChip * c.PlanesPerDie }

// CapacityBytes reports the total flash capacity.
func (c Config) CapacityBytes() int64 {
	return int64(c.NumChips()) * int64(c.PlanesPerChip()) *
		int64(c.BlocksPerPlane) * int64(c.PagesPerBlock) * c.PageBytes
}

// MaxChannelBW reports the theoretical aggregate channel bandwidth
// (Figure 8's 10.4 GB/s line for 32 channels at 333 MB/s).
func (c Config) MaxChannelBW() float64 {
	return float64(c.Channels) * float64(c.ChannelBytesPerSec)
}

// MaxReadBW reports the theoretical aggregate plane read throughput
// (Figure 8's 55.8 GB/s line: planes × page / readLatency).
func (c Config) MaxReadBW() float64 {
	planes := float64(c.NumChips() * c.PlanesPerChip())
	return planes * float64(c.PageBytes) / c.ReadLatency.Seconds()
}

// Counters accumulates traffic.
type Counters struct {
	ReadPages    uint64
	ProgramPages uint64
	ErasedBlocks uint64
	ReadBytes    int64 // bytes sensed out of flash arrays
	WriteBytes   int64 // bytes programmed into flash arrays
	ChannelBytes int64 // bytes crossing any channel bus
	HostBytes    int64 // bytes crossing PCIe
}

// SSD is the simulated device.
type SSD struct {
	Eng *sim.Engine
	Cfg Config

	channels []*Channel
	pcie     *sim.Queue

	Counters Counters

	// Pooled multi-part operation records; freeOp heads the free list.
	ops    []flashOp
	freeOp int32

	// faults, when non-nil, injects read errors, plane-busy stalls, and
	// chip degradation into the sense path. nil (the default) keeps the
	// fault-free code path bit-identical to builds before injection
	// existed; an attached injector with all rates at zero draws nothing
	// and is likewise timing-identical (see package fault).
	faults *fault.Injector

	// Optional time series, attached by the harness for Figure 8.
	ReadTS    *metrics.TimeSeries
	WriteTS   *metrics.TimeSeries
	ChannelTS *metrics.TimeSeries
}

// Channel is one flash channel: a serializing bus plus chips.
type Channel struct {
	ID    int
	Bus   *sim.Queue
	Chips []*Chip
}

// Chip is one flash chip; its planes serve page operations independently.
type Chip struct {
	Channel *Channel
	ID      int // global chip index
	planes  []*sim.Queue
	next    int // round-robin plane cursor
}

// New builds an SSD on the engine.
func New(eng *sim.Engine, cfg Config) (*SSD, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &SSD{Eng: eng, Cfg: cfg, pcie: sim.NewQueue(eng), freeOp: -1}
	for ch := 0; ch < cfg.Channels; ch++ {
		c := &Channel{ID: ch, Bus: sim.NewQueue(eng)}
		for k := 0; k < cfg.ChipsPerChannel; k++ {
			chip := &Chip{
				Channel: c,
				ID:      ch*cfg.ChipsPerChannel + k,
				planes:  make([]*sim.Queue, cfg.PlanesPerChip()),
			}
			for p := range chip.planes {
				chip.planes[p] = sim.NewQueue(eng)
			}
			c.Chips = append(c.Chips, chip)
		}
		s.channels = append(s.channels, c)
	}
	return s, nil
}

// Channel returns channel ch.
func (s *SSD) Channel(ch int) *Channel { return s.channels[ch] }

// Chip returns the chip with global index idx.
func (s *SSD) Chip(idx int) *Chip {
	return s.channels[idx/s.Cfg.ChipsPerChannel].Chips[idx%s.Cfg.ChipsPerChannel]
}

// NumChips reports the chip count.
func (s *SSD) NumChips() int { return s.Cfg.NumChips() }

// AttachFaults installs a fault injector on the sense path. Call before the
// simulation starts; nil detaches. The injector's draws happen in event
// order, so a given (workload seed, fault seed) pair replays exactly.
func (s *SSD) AttachFaults(inj *fault.Injector) { s.faults = inj }

// Faults returns the attached injector (nil when fault-free).
func (s *SSD) Faults() *fault.Injector { return s.faults }

func (s *SSD) recordRead(at sim.Time, bytes int64) {
	s.Counters.ReadPages++
	s.Counters.ReadBytes += bytes
	if s.ReadTS != nil {
		s.ReadTS.Add(at, float64(bytes))
	}
}

func (s *SSD) recordWrite(at sim.Time, bytes int64) {
	s.Counters.ProgramPages++
	s.Counters.WriteBytes += bytes
	if s.WriteTS != nil {
		s.WriteTS.Add(at, float64(bytes))
	}
}

func (s *SSD) recordChannel(at sim.Time, bytes int64) {
	s.Counters.ChannelBytes += bytes
	if s.ChannelTS != nil {
		s.ChannelTS.Add(at, float64(bytes))
	}
}

// --- Typed-event plumbing. ---
//
// Every data-path operation below is a multi-part operation: n per-page (or
// per-payload) timelines that each end by accounting traffic and notifying a
// shared completion. The per-part timelines are typed sim events targeting
// the SSD itself — no closures — and the shared completion lives in a pooled
// op record addressed by index, so steady-state flash traffic allocates
// nothing. The caller's completion is either a typed event (the E-suffixed
// variants, used by the accelerator hot path) or a func() (the classic API,
// which costs exactly one op-record store).

// Flash event kinds (private to the SSD's HandleEvent).
const (
	fkReadDone    uint16 = iota // page sensed on a plane (local path / FTL)
	fkSensedChan                // page sensed, next crosses the channel bus
	fkChanPage                  // page crossed the bus to channel/board
	fkSensedHost                // page sensed, bound for the host
	fkChanHost                  // page crossed the bus, next crosses PCIe
	fkHostPage                  // page reached host memory
	fkProgramDone               // page programmed on a plane
	fkBoardOnChip               // board payload page arrived at the chip
	fkXferChan                  // arbitrary channel-bus payload transferred
	fkXferHost                  // arbitrary PCIe payload transferred
	fkErased                    // block erased
)

// flashOp is one pooled multi-part operation: the completion fires when all
// parts have finished. Exactly one of done / doneFn is set (or neither).
type flashOp struct {
	remaining int32
	free      int32 // free-list link
	done      sim.Event
	doneFn    func()
}

// newOp claims a pooled op record for n parts.
func (s *SSD) newOp(n int, done sim.Event, doneFn func()) int32 {
	var idx int32
	if s.freeOp >= 0 {
		idx = s.freeOp
		s.freeOp = s.ops[idx].free
	} else {
		s.ops = append(s.ops, flashOp{})
		idx = int32(len(s.ops) - 1)
	}
	s.ops[idx] = flashOp{remaining: int32(n), free: -1, done: done, doneFn: doneFn}
	return idx
}

// opPart retires one part of the op; the last part fires the completion
// inline (matching the old closure fan-out, which called done() inside the
// final page's event) and recycles the record.
func (s *SSD) opPart(idx int32) {
	op := &s.ops[idx]
	op.remaining--
	if op.remaining > 0 {
		return
	}
	done, doneFn := op.done, op.doneFn
	*op = flashOp{free: s.freeOp}
	s.freeOp = idx
	if doneFn != nil {
		doneFn()
	} else if !done.None() {
		done.Target.HandleEvent(done)
	}
}

// HandleEvent advances the per-part timelines. A = op index, B = global chip
// index (stages that still need the chip), C = payload bytes for arbitrary
// transfers, or plane|attempt<<32 for the sense kinds (the retry path needs
// both to re-acquire the same plane). It is exported only to satisfy
// sim.Handler.
func (s *SSD) HandleEvent(ev sim.Event) {
	now := s.Eng.Now()
	switch ev.Kind {
	case fkReadDone:
		s.recordRead(now, s.Cfg.PageBytes)
		if s.retryRead(now, ev) {
			return
		}
		s.opPart(ev.A)
	case fkSensedChan:
		s.recordRead(now, s.Cfg.PageBytes)
		if s.retryRead(now, ev) {
			return
		}
		chip := s.Chip(int(ev.B))
		xfer := sim.TransferTime(s.Cfg.PageBytes, s.Cfg.ChannelBytesPerSec)
		chip.Channel.Bus.AcquireAfterEvent(now, xfer,
			sim.Event{Target: s, Kind: fkChanPage, A: ev.A})
	case fkChanPage:
		s.recordChannel(now, s.Cfg.PageBytes)
		s.opPart(ev.A)
	case fkSensedHost:
		s.recordRead(now, s.Cfg.PageBytes)
		if s.retryRead(now, ev) {
			return
		}
		chip := s.Chip(int(ev.B))
		xfer := sim.TransferTime(s.Cfg.PageBytes, s.Cfg.ChannelBytesPerSec)
		chip.Channel.Bus.AcquireAfterEvent(now, xfer,
			sim.Event{Target: s, Kind: fkChanHost, A: ev.A})
	case fkChanHost:
		s.recordChannel(now, s.Cfg.PageBytes)
		xfer := sim.TransferTime(s.Cfg.PageBytes, s.Cfg.PCIeBytesPerSec)
		s.pcie.AcquireAfterEvent(now, xfer,
			sim.Event{Target: s, Kind: fkHostPage, A: ev.A})
	case fkHostPage:
		s.Counters.HostBytes += s.Cfg.PageBytes
		s.opPart(ev.A)
	case fkProgramDone:
		s.recordWrite(now, s.Cfg.PageBytes)
		s.opPart(ev.A)
	case fkBoardOnChip:
		s.recordChannel(now, s.Cfg.PageBytes)
		chip := s.Chip(int(ev.B))
		pl := chip.planes[chip.next]
		chip.next = (chip.next + 1) % len(chip.planes)
		pl.AcquireAfterEvent(now, s.Cfg.ProgramLatency,
			sim.Event{Target: s, Kind: fkProgramDone, A: ev.A})
	case fkXferChan:
		s.recordChannel(now, ev.C)
		s.opPart(ev.A)
	case fkXferHost:
		s.Counters.HostBytes += ev.C
		s.opPart(ev.A)
	case fkErased:
		s.Counters.ErasedBlocks++
		s.opPart(ev.A)
	default:
		panic(fmt.Sprintf("flash: unknown event kind %d", ev.Kind))
	}
}

// skip handles the degenerate zero-part case: the completion still fires as
// a scheduled event at the current time, as the old API did.
func (s *SSD) skip(done sim.Event, doneFn func()) {
	if doneFn != nil {
		s.Eng.After(0, doneFn)
	} else if !done.None() {
		s.Eng.ScheduleAfter(0, done)
	}
}

// --- Sense path and fault injection. ---

// senseService returns the plane occupancy for one page sense: ReadLatency
// plus any injected plane-busy stall or degraded-chip penalty.
func (s *SSD) senseService(chipID int) sim.Time {
	lat := s.Cfg.ReadLatency
	if s.faults != nil {
		lat += s.faults.ReadIssueDelay(chipID)
	}
	return lat
}

// sense issues one page sense on the chip's next plane, recording the plane
// index (and attempt 0) in the event payload so a failed sense can retry on
// the same plane.
func (s *SSD) sense(chip *Chip, kind uint16, op int32) {
	p := chip.next
	chip.next = (chip.next + 1) % len(chip.planes)
	chip.planes[p].AcquireEvent(s.senseService(chip.ID),
		sim.Event{Target: s, Kind: kind, A: op, B: int32(chip.ID), C: int64(p)})
}

// retryRead reports whether the sense that just completed failed and was
// rescheduled. On failure the same plane is re-acquired after an exponential
// backoff with the attempt count bumped in the payload; once MaxRetries is
// exhausted the controller recovers the data and the operation proceeds, so
// a fault delays but never loses an operation.
func (s *SSD) retryRead(now sim.Time, ev sim.Event) bool {
	if s.faults == nil {
		return false
	}
	chipID := int(ev.B)
	if !s.faults.ReadFails(chipID) {
		return false
	}
	attempt := int(ev.C >> 32)
	if attempt >= s.faults.MaxRetries() {
		s.faults.RetryExhausted()
		return false
	}
	delay := s.faults.RetryDelay(attempt)
	chip := s.Chip(chipID)
	plane := int(ev.C & 0xffffffff)
	ev.C = int64(plane) | int64(attempt+1)<<32
	chip.planes[plane].AcquireAfterEvent(now+delay, s.senseService(chipID), ev)
	return true
}

// ReadPagesLocal reads n pages from the chip's planes into the chip-level
// accelerator. Pages round-robin across planes; each plane senses serially
// at ReadLatency per page. done fires when the last page is available.
// The channel bus is NOT used: this is the in-storage path.
func (s *SSD) ReadPagesLocal(chip *Chip, n int, done func()) {
	s.readPagesLocal(chip, n, sim.Event{}, done)
}

// ReadPagesLocalE is ReadPagesLocal with a typed completion (allocation-free).
func (s *SSD) ReadPagesLocalE(chip *Chip, n int, done sim.Event) {
	s.readPagesLocal(chip, n, done, nil)
}

func (s *SSD) readPagesLocal(chip *Chip, n int, done sim.Event, doneFn func()) {
	if n <= 0 {
		s.skip(done, doneFn)
		return
	}
	op := s.newOp(n, done, doneFn)
	for i := 0; i < n; i++ {
		s.sense(chip, fkReadDone, op)
	}
}

// ReadPagesToChannel reads n pages and transfers each over the channel bus
// to the channel-level (or board-level) accelerator. done fires when the
// last page has crossed the bus.
func (s *SSD) ReadPagesToChannel(chip *Chip, n int, done func()) {
	s.readPagesToChannel(chip, n, sim.Event{}, done)
}

// ReadPagesToChannelE is ReadPagesToChannel with a typed completion.
func (s *SSD) ReadPagesToChannelE(chip *Chip, n int, done sim.Event) {
	s.readPagesToChannel(chip, n, done, nil)
}

func (s *SSD) readPagesToChannel(chip *Chip, n int, done sim.Event, doneFn func()) {
	if n <= 0 {
		s.skip(done, doneFn)
		return
	}
	op := s.newOp(n, done, doneFn)
	for i := 0; i < n; i++ {
		s.sense(chip, fkSensedChan, op)
	}
}

// ReadPagesToHost reads n pages and moves them over the channel bus and the
// PCIe link to the host (the GraphWalker path). done fires when the last
// page reaches host memory.
func (s *SSD) ReadPagesToHost(chip *Chip, n int, done func()) {
	if n <= 0 {
		s.skip(sim.Event{}, done)
		return
	}
	op := s.newOp(n, sim.Event{}, done)
	for i := 0; i < n; i++ {
		s.sense(chip, fkSensedHost, op)
	}
}

// ProgramPagesLocal programs n pages on the chip's planes (data already at
// the chip — e.g. a chip-level accelerator flushing its overflow buffer).
func (s *SSD) ProgramPagesLocal(chip *Chip, n int, done func()) {
	if n <= 0 {
		s.skip(sim.Event{}, done)
		return
	}
	op := s.newOp(n, sim.Event{}, done)
	for i := 0; i < n; i++ {
		pl := chip.planes[chip.next]
		chip.next = (chip.next + 1) % len(chip.planes)
		pl.AcquireEvent(s.Cfg.ProgramLatency, sim.Event{Target: s, Kind: fkProgramDone, A: op})
	}
}

// ProgramPagesFromBoard moves n pages from the board over the channel bus
// to the chip and programs them (the board flushing overflow / completed /
// foreigner walks to flash, §III-D).
func (s *SSD) ProgramPagesFromBoard(chip *Chip, n int, done func()) {
	if n <= 0 {
		s.skip(sim.Event{}, done)
		return
	}
	op := s.newOp(n, sim.Event{}, done)
	xfer := sim.TransferTime(s.Cfg.PageBytes, s.Cfg.ChannelBytesPerSec)
	for i := 0; i < n; i++ {
		chip.Channel.Bus.AcquireEvent(xfer,
			sim.Event{Target: s, Kind: fkBoardOnChip, A: op, B: int32(chip.ID)})
	}
}

// TransferChannel occupies the chip's channel bus for an arbitrary payload
// (roving walks moving chip->channel or commands/walks moving down). done
// fires when the transfer completes.
func (s *SSD) TransferChannel(ch *Channel, bytes int64, done func()) {
	s.transferChannel(ch, bytes, sim.Event{}, done)
}

// TransferChannelE is TransferChannel with a typed completion.
func (s *SSD) TransferChannelE(ch *Channel, bytes int64, done sim.Event) {
	s.transferChannel(ch, bytes, done, nil)
}

func (s *SSD) transferChannel(ch *Channel, bytes int64, done sim.Event, doneFn func()) {
	if bytes <= 0 {
		s.skip(done, doneFn)
		return
	}
	op := s.newOp(1, done, doneFn)
	xfer := sim.TransferTime(bytes, s.Cfg.ChannelBytesPerSec)
	ch.Bus.AcquireEvent(xfer, sim.Event{Target: s, Kind: fkXferChan, A: op, C: bytes})
}

// TransferHost occupies the PCIe link for an arbitrary payload.
func (s *SSD) TransferHost(bytes int64, done func()) {
	if bytes <= 0 {
		s.skip(sim.Event{}, done)
		return
	}
	op := s.newOp(1, sim.Event{}, done)
	xfer := sim.TransferTime(bytes, s.Cfg.PCIeBytesPerSec)
	s.pcie.AcquireEvent(xfer, sim.Event{Target: s, Kind: fkXferHost, A: op, C: bytes})
}

// ReadPageAt senses one page on a specific plane of a chip (used by the
// FTL, which tracks physical placement itself). done fires when the page
// is in the plane register; no bus time is charged.
func (s *SSD) ReadPageAt(chipIdx, plane int, done func()) {
	op := s.newOp(1, sim.Event{}, done)
	chip := s.Chip(chipIdx)
	chip.planes[plane].AcquireEvent(s.senseService(chipIdx),
		sim.Event{Target: s, Kind: fkReadDone, A: op, B: int32(chipIdx), C: int64(plane)})
}

// ProgramPageAt programs one page on a specific plane of a chip.
func (s *SSD) ProgramPageAt(chipIdx, plane int, done func()) {
	op := s.newOp(1, sim.Event{}, done)
	chip := s.Chip(chipIdx)
	chip.planes[plane].AcquireEvent(s.Cfg.ProgramLatency,
		sim.Event{Target: s, Kind: fkProgramDone, A: op})
}

// EraseBlockAt erases one block on a specific plane of a chip.
func (s *SSD) EraseBlockAt(chipIdx, plane int, done func()) {
	op := s.newOp(1, sim.Event{}, done)
	chip := s.Chip(chipIdx)
	chip.planes[plane].AcquireEvent(s.Cfg.EraseLatency,
		sim.Event{Target: s, Kind: fkErased, A: op})
}

// PagesFor reports how many pages a payload of the given size occupies.
func (s *SSD) PagesFor(bytes int64) int {
	if bytes <= 0 {
		return 0
	}
	return int((bytes + s.Cfg.PageBytes - 1) / s.Cfg.PageBytes)
}
