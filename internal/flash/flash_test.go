package flash

import (
	"testing"

	"flashwalker/internal/metrics"
	"flashwalker/internal/sim"
)

// smallCfg is a 2-channel, 2-chip geometry with simple numbers for
// hand-computable timing.
func smallCfg() Config {
	c := Default()
	c.Channels = 2
	c.ChipsPerChannel = 2
	return c
}

func newSSD(t *testing.T, cfg Config) (*sim.Engine, *SSD) {
	t.Helper()
	eng := sim.New()
	s, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, s
}

func TestDefaultConfigMatchesPaperTables(t *testing.T) {
	c := Default()
	if c.Channels != 32 || c.ChipsPerChannel != 4 || c.DiesPerChip != 2 || c.PlanesPerDie != 4 {
		t.Fatal("geometry differs from Table I/III")
	}
	if c.ReadLatency != 35*sim.Microsecond || c.ProgramLatency != 350*sim.Microsecond {
		t.Fatal("latencies differ from Table I")
	}
	if c.PageBytes != 4096 || c.PagesPerBlock != 64 || c.BlocksPerPlane != 2048 {
		t.Fatal("page geometry differs from Table III")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NumChips() != 128 || c.PlanesPerChip() != 8 {
		t.Fatal("derived counts wrong")
	}
}

func TestTheoreticalBandwidthCeilings(t *testing.T) {
	c := Default()
	// Figure 8 quotes 10.4 GB/s aggregate channel BW (32 x 333 MB/s).
	if bw := c.MaxChannelBW(); bw < 10.3e9 || bw > 10.7e9 {
		t.Fatalf("MaxChannelBW = %v", bw)
	}
	// And ~55.8 GB/s max read: 1024 planes * 4KB / 35us = 119 GB/s per the
	// raw math, but the paper's 55.8 GB/s ceiling counts die-level (two
	// planes share a die bus); our model exposes plane parallelism, so
	// just assert it exceeds the channel ceiling by a large factor.
	if c.MaxReadBW() < 5*c.MaxChannelBW() {
		t.Fatalf("MaxReadBW = %v not >> channel BW", c.MaxReadBW())
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := Default()
	bad.Channels = 0
	if bad.Validate() == nil {
		t.Fatal("zero channels accepted")
	}
	bad = Default()
	bad.PageBytes = 0
	if bad.Validate() == nil {
		t.Fatal("zero page accepted")
	}
	bad = Default()
	bad.ReadLatency = 0
	if bad.Validate() == nil {
		t.Fatal("zero latency accepted")
	}
	bad = Default()
	bad.PCIeBytesPerSec = 0
	if bad.Validate() == nil {
		t.Fatal("zero PCIe accepted")
	}
	if _, err := New(sim.New(), bad); err == nil {
		t.Fatal("New accepted invalid config")
	}
}

func TestCapacity(t *testing.T) {
	c := Default()
	// 128 chips * 8 planes * 2048 blocks * 64 pages * 4KB = 512 GiB.
	want := int64(128) * 8 * 2048 * 64 * 4096
	if c.CapacityBytes() != want {
		t.Fatalf("capacity = %d, want %d", c.CapacityBytes(), want)
	}
}

func TestChipIndexing(t *testing.T) {
	_, s := newSSD(t, smallCfg())
	for idx := 0; idx < 4; idx++ {
		chip := s.Chip(idx)
		if chip.ID != idx {
			t.Fatalf("chip %d has ID %d", idx, chip.ID)
		}
		if chip.Channel.ID != idx/2 {
			t.Fatalf("chip %d on channel %d", idx, chip.Channel.ID)
		}
	}
	if s.NumChips() != 4 {
		t.Fatal("NumChips")
	}
}

func TestReadPagesLocalParallelism(t *testing.T) {
	// 8 planes per chip: reading 8 pages takes exactly one ReadLatency;
	// 16 pages takes two.
	eng, s := newSSD(t, smallCfg())
	chip := s.Chip(0)
	var done sim.Time
	s.ReadPagesLocal(chip, 8, func() { done = eng.Now() })
	eng.Run()
	if done != s.Cfg.ReadLatency {
		t.Fatalf("8 pages on 8 planes took %v, want %v", done, s.Cfg.ReadLatency)
	}

	eng2, s2 := newSSD(t, smallCfg())
	var done2 sim.Time
	s2.ReadPagesLocal(s2.Chip(0), 16, func() { done2 = eng2.Now() })
	eng2.Run()
	if done2 != 2*s2.Cfg.ReadLatency {
		t.Fatalf("16 pages took %v, want %v", done2, 2*s2.Cfg.ReadLatency)
	}
}

func TestReadPagesLocalDoesNotUseChannel(t *testing.T) {
	eng, s := newSSD(t, smallCfg())
	s.ReadPagesLocal(s.Chip(0), 32, nil)
	eng.Run()
	if s.Counters.ChannelBytes != 0 {
		t.Fatalf("local read moved %d bytes over channel", s.Counters.ChannelBytes)
	}
	if s.Counters.ReadBytes != 32*4096 {
		t.Fatalf("ReadBytes = %d", s.Counters.ReadBytes)
	}
	if s.Counters.ReadPages != 32 {
		t.Fatalf("ReadPages = %d", s.Counters.ReadPages)
	}
}

func TestReadPagesToChannelPaysBusTime(t *testing.T) {
	eng, s := newSSD(t, smallCfg())
	var done sim.Time
	s.ReadPagesToChannel(s.Chip(0), 1, func() { done = eng.Now() })
	eng.Run()
	want := s.Cfg.ReadLatency + sim.TransferTime(4096, s.Cfg.ChannelBytesPerSec)
	if done != want {
		t.Fatalf("1 page to channel took %v, want %v", done, want)
	}
	if s.Counters.ChannelBytes != 4096 {
		t.Fatalf("ChannelBytes = %d", s.Counters.ChannelBytes)
	}
}

func TestChannelBusSerializesAcrossChips(t *testing.T) {
	// Two chips on one channel reading one page each: sensing overlaps but
	// the two bus transfers serialize.
	eng, s := newSSD(t, smallCfg())
	var last sim.Time
	each := func() { last = eng.Now() }
	s.ReadPagesToChannel(s.Chip(0), 1, each)
	s.ReadPagesToChannel(s.Chip(1), 1, each)
	eng.Run()
	xfer := sim.TransferTime(4096, s.Cfg.ChannelBytesPerSec)
	want := s.Cfg.ReadLatency + 2*xfer
	if last != want {
		t.Fatalf("two-chip channel reads finished at %v, want %v", last, want)
	}
}

func TestDifferentChannelsIndependent(t *testing.T) {
	eng, s := newSSD(t, smallCfg())
	var a, b sim.Time
	s.ReadPagesToChannel(s.Chip(0), 1, func() { a = eng.Now() })
	s.ReadPagesToChannel(s.Chip(2), 1, func() { b = eng.Now() }) // other channel
	eng.Run()
	if a != b {
		t.Fatalf("independent channels serialized: %v vs %v", a, b)
	}
}

func TestReadPagesToHostAddsPCIe(t *testing.T) {
	eng, s := newSSD(t, smallCfg())
	var done sim.Time
	s.ReadPagesToHost(s.Chip(0), 1, func() { done = eng.Now() })
	eng.Run()
	want := s.Cfg.ReadLatency +
		sim.TransferTime(4096, s.Cfg.ChannelBytesPerSec) +
		sim.TransferTime(4096, s.Cfg.PCIeBytesPerSec)
	if done != want {
		t.Fatalf("host read took %v, want %v", done, want)
	}
	if s.Counters.HostBytes != 4096 {
		t.Fatalf("HostBytes = %d", s.Counters.HostBytes)
	}
}

func TestProgramPagesLocal(t *testing.T) {
	eng, s := newSSD(t, smallCfg())
	var done sim.Time
	s.ProgramPagesLocal(s.Chip(0), 1, func() { done = eng.Now() })
	eng.Run()
	if done != s.Cfg.ProgramLatency {
		t.Fatalf("program took %v", done)
	}
	if s.Counters.WriteBytes != 4096 || s.Counters.ProgramPages != 1 {
		t.Fatal("write counters wrong")
	}
}

func TestProgramPagesFromBoardCrossesBus(t *testing.T) {
	eng, s := newSSD(t, smallCfg())
	var done sim.Time
	s.ProgramPagesFromBoard(s.Chip(0), 1, func() { done = eng.Now() })
	eng.Run()
	want := sim.TransferTime(4096, s.Cfg.ChannelBytesPerSec) + s.Cfg.ProgramLatency
	if done != want {
		t.Fatalf("board program took %v, want %v", done, want)
	}
	if s.Counters.ChannelBytes != 4096 {
		t.Fatal("bus bytes not counted")
	}
}

func TestTransferChannel(t *testing.T) {
	eng, s := newSSD(t, smallCfg())
	var done sim.Time
	s.TransferChannel(s.Channel(0), 333, func() { done = eng.Now() })
	eng.Run()
	if done != sim.TransferTime(333, s.Cfg.ChannelBytesPerSec) {
		t.Fatalf("transfer took %v", done)
	}
	if s.Counters.ChannelBytes != 333 {
		t.Fatal("channel bytes")
	}
	// Zero-byte transfer still completes.
	fired := false
	s.TransferChannel(s.Channel(0), 0, func() { fired = true })
	eng.Run()
	if !fired {
		t.Fatal("zero transfer did not complete")
	}
}

func TestTransferHost(t *testing.T) {
	eng, s := newSSD(t, smallCfg())
	var done sim.Time
	s.TransferHost(4_000_000, func() { done = eng.Now() })
	eng.Run()
	if done != sim.Millisecond {
		t.Fatalf("4MB over 4GB/s took %v, want 1ms", done)
	}
}

func TestZeroPageOpsComplete(t *testing.T) {
	eng, s := newSSD(t, smallCfg())
	calls := 0
	s.ReadPagesLocal(s.Chip(0), 0, func() { calls++ })
	s.ReadPagesToChannel(s.Chip(0), 0, func() { calls++ })
	s.ReadPagesToHost(s.Chip(0), 0, func() { calls++ })
	s.ProgramPagesLocal(s.Chip(0), 0, func() { calls++ })
	s.ProgramPagesFromBoard(s.Chip(0), 0, func() { calls++ })
	eng.Run()
	if calls != 5 {
		t.Fatalf("zero-page callbacks fired %d of 5", calls)
	}
	if s.Counters.ReadBytes != 0 || s.Counters.WriteBytes != 0 {
		t.Fatal("zero ops moved bytes")
	}
}

func TestTimeSeriesHookRecords(t *testing.T) {
	eng, s := newSSD(t, smallCfg())
	s.ReadTS = metrics.NewTimeSeries(10 * sim.Microsecond)
	s.ChannelTS = metrics.NewTimeSeries(10 * sim.Microsecond)
	s.ReadPagesToChannel(s.Chip(0), 4, nil)
	eng.Run()
	if s.ReadTS.Total() != 4*4096 {
		t.Fatalf("ReadTS total %v", s.ReadTS.Total())
	}
	if s.ChannelTS.Total() != 4*4096 {
		t.Fatalf("ChannelTS total %v", s.ChannelTS.Total())
	}
}

func TestPagesFor(t *testing.T) {
	_, s := newSSD(t, smallCfg())
	if s.PagesFor(0) != 0 || s.PagesFor(1) != 1 || s.PagesFor(4096) != 1 || s.PagesFor(4097) != 2 {
		t.Fatal("PagesFor rounding wrong")
	}
}

func TestPlaneRoundRobinBalances(t *testing.T) {
	// 80 local reads over 8 planes must finish in exactly 10 read latencies.
	eng, s := newSSD(t, smallCfg())
	var done sim.Time
	s.ReadPagesLocal(s.Chip(0), 80, func() { done = eng.Now() })
	eng.Run()
	if done != 10*s.Cfg.ReadLatency {
		t.Fatalf("80 pages took %v, want %v", done, 10*s.Cfg.ReadLatency)
	}
}
