package flash

import "fmt"

// FTL implements the flash translation layer of §II-C: page-level
// logical-to-physical mapping with out-of-place updates, log-structured
// allocation across planes, greedy garbage collection, and wear counters.
//
// The in-storage accelerators bypass the FTL — graph blocks are placed
// physically by internal/partition.Placement and read in place (that is
// the point of near-data processing) — but host-side writes (GraphWalker
// spills, result files) go through an FTL in a real device, and the GC
// machinery is exercised by tests and available to experiments.
type FTL struct {
	ssd *SSD

	planes         int // total plane count
	blocksPerPlane int
	pagesPerBlock  int

	l2p []int64 // logical page -> physical page, -1 unmapped
	p2l []int64 // physical page -> logical page, -1 free/invalid

	blocks []blockMeta // global block index: plane*blocksPerPlane + b
	free   [][]int     // per plane: free block indices (within plane)
	open   []openBlock // per plane: current log head

	cursor int // round-robin plane cursor for new writes

	gcThreshold int  // run GC on a plane when its free list shrinks to this
	inGC        bool // guards against re-entrant GC during migration

	Stats FTLStats
}

type blockMeta struct {
	written int // pages programmed since last erase
	valid   int // pages still mapped
	erases  int
}

type openBlock struct {
	block    int // block index within the plane, -1 none
	nextPage int
}

// FTLStats accumulates host vs. GC traffic.
type FTLStats struct {
	HostWrites  uint64 // pages written on behalf of the host
	GCWrites    uint64 // pages migrated by garbage collection
	HostReads   uint64
	Erases      uint64
	GCRuns      uint64
	FailedAlloc uint64 // writes refused because the device is full
}

// WriteAmplification reports (host + GC writes) / host writes.
func (s FTLStats) WriteAmplification() float64 {
	if s.HostWrites == 0 {
		return 1
	}
	return float64(s.HostWrites+s.GCWrites) / float64(s.HostWrites)
}

// NewFTL builds an FTL over the SSD exposing logicalPages of address
// space. The physical space must exceed the logical space (the difference
// is the overprovisioning GC needs).
func NewFTL(ssd *SSD, logicalPages int64) (*FTL, error) {
	cfg := ssd.Cfg
	planes := cfg.NumChips() * cfg.PlanesPerChip()
	physPages := int64(planes) * int64(cfg.BlocksPerPlane) * int64(cfg.PagesPerBlock)
	if logicalPages <= 0 {
		return nil, fmt.Errorf("flash: non-positive logical space")
	}
	// GC migrates within a plane and needs its reserve (gcThreshold free
	// blocks plus the log head) to always be able to make net progress:
	// cap the logical space at physical minus that reserve.
	const gcReserveBlocks = 3 // gcThreshold (2) + open block
	maxLogical := physPages - int64(planes*gcReserveBlocks*cfg.PagesPerBlock)
	if logicalPages > maxLogical {
		return nil, fmt.Errorf("flash: logical space %d exceeds %d (physical %d minus GC reserve)",
			logicalPages, maxLogical, physPages)
	}
	f := &FTL{
		ssd:            ssd,
		planes:         planes,
		blocksPerPlane: cfg.BlocksPerPlane,
		pagesPerBlock:  cfg.PagesPerBlock,
		l2p:            make([]int64, logicalPages),
		p2l:            make([]int64, physPages),
		blocks:         make([]blockMeta, planes*cfg.BlocksPerPlane),
		free:           make([][]int, planes),
		open:           make([]openBlock, planes),
		gcThreshold:    2,
	}
	for i := range f.l2p {
		f.l2p[i] = -1
	}
	for i := range f.p2l {
		f.p2l[i] = -1
	}
	for p := 0; p < planes; p++ {
		f.free[p] = make([]int, cfg.BlocksPerPlane)
		for b := range f.free[p] {
			f.free[p][b] = b
		}
		f.open[p] = openBlock{block: -1}
	}
	return f, nil
}

// LogicalPages reports the logical address space size.
func (f *FTL) LogicalPages() int64 { return int64(len(f.l2p)) }

// planeChip converts a global plane index to (chip, plane-within-chip).
func (f *FTL) planeChip(plane int) (chip, pl int) {
	per := f.ssd.Cfg.PlanesPerChip()
	return plane / per, plane % per
}

// ppn composes a physical page number.
func (f *FTL) ppn(plane, block, page int) int64 {
	return (int64(plane)*int64(f.blocksPerPlane)+int64(block))*int64(f.pagesPerBlock) + int64(page)
}

// decompose splits a physical page number.
func (f *FTL) decompose(ppn int64) (plane, block, page int) {
	page = int(ppn % int64(f.pagesPerBlock))
	blockGlobal := ppn / int64(f.pagesPerBlock)
	block = int(blockGlobal % int64(f.blocksPerPlane))
	plane = int(blockGlobal / int64(f.blocksPerPlane))
	return
}

// globalBlock indexes blocks across planes.
func (f *FTL) globalBlock(plane, block int) int { return plane*f.blocksPerPlane + block }

// Mapped reports whether a logical page currently has data.
func (f *FTL) Mapped(lpn int64) bool { return f.l2p[lpn] >= 0 }

// invalidate unmaps the current physical page of lpn, if any.
func (f *FTL) invalidate(lpn int64) {
	old := f.l2p[lpn]
	if old < 0 {
		return
	}
	plane, block, _ := f.decompose(old)
	f.blocks[f.globalBlock(plane, block)].valid--
	f.p2l[old] = -1
	f.l2p[lpn] = -1
}

// allocate returns the next physical page on the plane, opening a fresh
// block (and garbage-collecting) as needed. Returns -1 when the plane is
// truly full.
func (f *FTL) allocate(plane int) int64 {
	ob := &f.open[plane]
	if ob.block < 0 || ob.nextPage == f.pagesPerBlock {
		if !f.inGC {
			// Reclaim until the reserve is healthy or no garbage remains.
			for len(f.free[plane]) <= f.gcThreshold && f.gcPlane(plane) {
			}
		}
		if len(f.free[plane]) == 0 {
			return -1
		}
		// Wear-leveling: take the least-erased free block.
		best := 0
		for i, b := range f.free[plane] {
			if f.blocks[f.globalBlock(plane, b)].erases <
				f.blocks[f.globalBlock(plane, f.free[plane][best])].erases {
				best = i
			}
		}
		blk := f.free[plane][best]
		f.free[plane] = append(f.free[plane][:best], f.free[plane][best+1:]...)
		*ob = openBlock{block: blk, nextPage: 0}
	}
	ppn := f.ppn(plane, ob.block, ob.nextPage)
	ob.nextPage++
	f.blocks[f.globalBlock(plane, ob.block)].written++
	return ppn
}

// place maps lpn to a fresh physical page (invalidating any old mapping)
// and returns its location, or ok=false when the device is full.
func (f *FTL) place(lpn int64) (chip, planeInChip int, ok bool) {
	f.invalidate(lpn)
	start := f.cursor
	for {
		plane := f.cursor
		f.cursor = (f.cursor + 1) % f.planes
		ppn := f.allocate(plane)
		if ppn >= 0 {
			f.l2p[lpn] = ppn
			f.p2l[ppn] = lpn
			pl, blk, _ := f.decompose(ppn)
			f.blocks[f.globalBlock(pl, blk)].valid++
			c, pic := f.planeChip(plane)
			return c, pic, true
		}
		if f.cursor == start {
			return 0, 0, false
		}
	}
}

// Write writes one logical page out-of-place; done fires when the program
// completes. Returns an error when no physical space remains.
func (f *FTL) Write(lpn int64, done func()) error {
	if lpn < 0 || lpn >= int64(len(f.l2p)) {
		return fmt.Errorf("flash: lpn %d out of range", lpn)
	}
	chip, plane, ok := f.place(lpn)
	if !ok {
		f.Stats.FailedAlloc++
		return fmt.Errorf("flash: device full writing lpn %d", lpn)
	}
	f.Stats.HostWrites++
	f.ssd.ProgramPageAt(chip, plane, done)
	return nil
}

// Read reads one logical page; done fires when the page is sensed. Reading
// an unmapped page is an error.
func (f *FTL) Read(lpn int64, done func()) error {
	if lpn < 0 || lpn >= int64(len(f.l2p)) {
		return fmt.Errorf("flash: lpn %d out of range", lpn)
	}
	ppn := f.l2p[lpn]
	if ppn < 0 {
		return fmt.Errorf("flash: lpn %d unmapped", lpn)
	}
	plane, _, _ := f.decompose(ppn)
	chip, pic := f.planeChip(plane)
	f.Stats.HostReads++
	f.ssd.ReadPageAt(chip, pic, done)
	return nil
}

// Trim unmaps a logical page (discard).
func (f *FTL) Trim(lpn int64) error {
	if lpn < 0 || lpn >= int64(len(f.l2p)) {
		return fmt.Errorf("flash: lpn %d out of range", lpn)
	}
	f.invalidate(lpn)
	return nil
}

// wearLevelEvery makes every N-th GC run pick its victim by erase count
// instead of valid count (static wear-leveling): cold blocks whose data
// never invalidates are eventually recycled too, bounding the wear spread.
const wearLevelEvery = 8

// gcPlane reclaims one block on the plane, migrating its live pages into
// the same plane's log head. It reports whether it made progress.
//
// Victim policy guarantees net progress: the normal (greedy) victim is the
// fully-written block with the fewest valid pages, and must contain at
// least one invalid page. When the free list still has slack (>= 2), every
// wearLevelEvery-th run instead recycles the least-erased block (static
// wear-leveling) even if fully valid. When the free list is empty, only a
// victim whose valid pages fit in the open block's remaining slack is
// acceptable (migration must not need a fresh block).
func (f *FTL) gcPlane(plane int) bool {
	freeN := len(f.free[plane])
	wearPass := freeN >= 2 && f.Stats.GCRuns%wearLevelEvery == wearLevelEvery-1
	openSlack := 0
	if ob := f.open[plane]; ob.block >= 0 {
		openSlack = f.pagesPerBlock - ob.nextPage
	}
	victim := -1
	victimValid := f.pagesPerBlock + 1
	victimErases := int(^uint(0) >> 1)
	for b := 0; b < f.blocksPerPlane; b++ {
		m := f.blocks[f.globalBlock(plane, b)]
		if m.written == 0 {
			continue // free
		}
		if b == f.open[plane].block {
			continue
		}
		if wearPass {
			if m.erases < victimErases {
				victim, victimErases = b, m.erases
			}
			continue
		}
		if m.valid == f.pagesPerBlock {
			continue // no garbage: erasing it buys nothing
		}
		if freeN == 0 && m.valid > openSlack && !f.anyFreeElsewhere(plane) {
			continue // migration has nowhere to put the valid pages
		}
		if m.valid < victimValid {
			victim, victimValid = b, m.valid
		}
	}
	if victim < 0 && wearPass {
		// Fall back to a greedy pass rather than skipping reclamation.
		f.Stats.GCRuns++ // advance the phase so we don't wear-pass forever
		return f.gcPlane(plane)
	}
	if victim < 0 {
		// The only reclaimable garbage may be trapped in the open block:
		// close it (its remaining pages are sacrificed as unwritten) and
		// retry once, so the next pass can collect it.
		if ob := f.open[plane]; ob.block >= 0 {
			m := f.blocks[f.globalBlock(plane, ob.block)]
			if m.valid < m.written {
				f.open[plane] = openBlock{block: -1}
				return f.gcPlane(plane)
			}
		}
		return false
	}
	f.inGC = true
	defer func() { f.inGC = false }()
	f.Stats.GCRuns++
	chip, pic := f.planeChip(plane)
	victimGB := f.globalBlock(plane, victim)
	// Migrate valid pages into the same plane's log head. The reserved
	// free blocks (gcThreshold) guarantee space; inGC suppresses nested
	// GC so the free list cannot be corrupted mid-migration.
	for page := 0; page < f.pagesPerBlock; page++ {
		ppn := f.ppn(plane, victim, page)
		lpn := f.p2l[ppn]
		if lpn < 0 {
			continue
		}
		nppn := f.migrateTarget(plane)
		if nppn < 0 {
			// No space anywhere to migrate into: stop; the victim keeps
			// its remaining valid pages and is not erased.
			return false
		}
		// Read the victim page, move the mapping, rewrite it.
		f.ssd.ReadPageAt(chip, pic, nil)
		f.p2l[ppn] = -1
		f.blocks[victimGB].valid--
		f.l2p[lpn] = nppn
		f.p2l[nppn] = lpn
		npl, nblk, _ := f.decompose(nppn)
		f.blocks[f.globalBlock(npl, nblk)].valid++
		f.Stats.GCWrites++
		nchip, npic := f.planeChip(npl)
		f.ssd.ProgramPageAt(nchip, npic, nil)
	}
	// Erase and free the victim.
	f.blocks[victimGB].written = 0
	f.blocks[victimGB].valid = 0
	f.blocks[victimGB].erases++
	f.Stats.Erases++
	f.ssd.EraseBlockAt(chip, pic, nil)
	f.free[plane] = append(f.free[plane], victim)
	return true
}

// migrateTarget finds a physical page for a GC migration: the victim's own
// plane first (cheap copy-back), then any other plane with space. inGC is
// held by the caller, so these allocations never recurse into GC.
func (f *FTL) migrateTarget(plane int) int64 {
	if ppn := f.allocate(plane); ppn >= 0 {
		return ppn
	}
	for step := 1; step < f.planes; step++ {
		if ppn := f.allocate((plane + step) % f.planes); ppn >= 0 {
			return ppn
		}
	}
	return -1
}

// anyFreeElsewhere reports whether any other plane has a free block or
// open-block slack for cross-plane migration.
func (f *FTL) anyFreeElsewhere(plane int) bool {
	for p := 0; p < f.planes; p++ {
		if p == plane {
			continue
		}
		if len(f.free[p]) > 0 {
			return true
		}
		if ob := f.open[p]; ob.block >= 0 && ob.nextPage < f.pagesPerBlock {
			return true
		}
	}
	return false
}

// MaxErases reports the highest per-block erase count (wear).
func (f *FTL) MaxErases() int {
	max := 0
	for _, b := range f.blocks {
		if b.erases > max {
			max = b.erases
		}
	}
	return max
}

// MinErasesFullyUsed reports the lowest erase count among blocks that have
// ever been written (wear-leveling quality indicator).
func (f *FTL) MinErasesFullyUsed() int {
	min := -1
	for _, b := range f.blocks {
		if b.erases == 0 && b.written == 0 {
			continue
		}
		if min < 0 || b.erases < min {
			min = b.erases
		}
	}
	if min < 0 {
		return 0
	}
	return min
}

// ValidPages reports the number of currently mapped logical pages.
func (f *FTL) ValidPages() int64 {
	var n int64
	for _, p := range f.l2p {
		if p >= 0 {
			n++
		}
	}
	return n
}
