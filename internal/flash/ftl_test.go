package flash

import (
	"testing"
	"testing/quick"

	"flashwalker/internal/rng"
	"flashwalker/internal/sim"
)

// ftlCfg is a tiny geometry so GC triggers quickly: 1 channel, 1 chip,
// 1 die, 2 planes, 8 blocks/plane, 4 pages/block = 64 physical pages.
func ftlCfg() Config {
	c := Default()
	c.Channels = 1
	c.ChipsPerChannel = 1
	c.DiesPerChip = 1
	c.PlanesPerDie = 2
	c.BlocksPerPlane = 8
	c.PagesPerBlock = 4
	return c
}

func newFTL(t *testing.T, logical int64) (*sim.Engine, *SSD, *FTL) {
	t.Helper()
	eng := sim.New()
	ssd, err := New(eng, ftlCfg())
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFTL(ssd, logical)
	if err != nil {
		t.Fatal(err)
	}
	return eng, ssd, f
}

func TestFTLRejectsBadSizing(t *testing.T) {
	eng := sim.New()
	ssd, _ := New(eng, ftlCfg())
	if _, err := NewFTL(ssd, 0); err == nil {
		t.Fatal("zero logical space accepted")
	}
	// 64 physical pages, 2 planes x 3 reserve blocks x 4 pages = 24
	// reserved: logical space beyond 40 must be rejected.
	if _, err := NewFTL(ssd, 41); err == nil {
		t.Fatal("logical space inside the GC reserve accepted")
	}
	if _, err := NewFTL(ssd, 40); err != nil {
		t.Fatalf("maximum legal logical space rejected: %v", err)
	}
}

func TestFTLWriteReadRoundTrip(t *testing.T) {
	eng, _, f := newFTL(t, 32)
	if f.Mapped(5) {
		t.Fatal("unwritten page mapped")
	}
	if err := f.Write(5, nil); err != nil {
		t.Fatal(err)
	}
	if !f.Mapped(5) {
		t.Fatal("written page unmapped")
	}
	fired := false
	if err := f.Read(5, func() { fired = true }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !fired {
		t.Fatal("read callback never fired")
	}
}

func TestFTLReadUnmappedFails(t *testing.T) {
	_, _, f := newFTL(t, 32)
	if err := f.Read(3, nil); err == nil {
		t.Fatal("unmapped read succeeded")
	}
	if err := f.Read(-1, nil); err == nil {
		t.Fatal("negative lpn accepted")
	}
	if err := f.Read(99, nil); err == nil {
		t.Fatal("out-of-range lpn accepted")
	}
	if err := f.Write(99, nil); err == nil {
		t.Fatal("out-of-range write accepted")
	}
}

func TestFTLOverwriteInvalidatesOld(t *testing.T) {
	eng, _, f := newFTL(t, 32)
	for i := 0; i < 5; i++ {
		if err := f.Write(7, nil); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if f.ValidPages() != 1 {
		t.Fatalf("ValidPages = %d after overwrites, want 1", f.ValidPages())
	}
	if f.Stats.HostWrites != 5 {
		t.Fatalf("HostWrites = %d", f.Stats.HostWrites)
	}
}

func TestFTLTrim(t *testing.T) {
	_, _, f := newFTL(t, 32)
	if err := f.Write(4, nil); err != nil {
		t.Fatal(err)
	}
	if err := f.Trim(4); err != nil {
		t.Fatal(err)
	}
	if f.Mapped(4) {
		t.Fatal("trimmed page still mapped")
	}
	if err := f.Trim(-1); err == nil {
		t.Fatal("bad trim accepted")
	}
	// Trimming an unmapped page is a no-op.
	if err := f.Trim(4); err != nil {
		t.Fatal(err)
	}
}

func TestFTLGarbageCollectionReclaims(t *testing.T) {
	// Hammer a small logical space: GC must run and the device must never
	// fill.
	eng, ssd, f := newFTL(t, 24)
	r := rng.New(1)
	for i := 0; i < 2000; i++ {
		lpn := int64(r.Intn(24))
		if err := f.Write(lpn, nil); err != nil {
			t.Fatalf("write %d failed: %v (GC runs=%d)", i, err, f.Stats.GCRuns)
		}
	}
	eng.Run()
	if f.Stats.GCRuns == 0 {
		t.Fatal("GC never ran despite heavy overwrites")
	}
	if f.Stats.Erases == 0 || ssd.Counters.ErasedBlocks == 0 {
		t.Fatal("no erases recorded")
	}
	if f.Stats.WriteAmplification() <= 1 {
		t.Fatalf("write amplification %v <= 1 with GC active", f.Stats.WriteAmplification())
	}
	// All 24 logical pages last written are still readable.
	for lpn := int64(0); lpn < 24; lpn++ {
		if f.Mapped(lpn) {
			if err := f.Read(lpn, nil); err != nil {
				t.Fatalf("read after GC failed: %v", err)
			}
		}
	}
}

func TestFTLMappingConsistencyUnderChurn(t *testing.T) {
	// Property: after arbitrary write/trim sequences, l2p and p2l agree.
	eng, _, f := newFTL(t, 24)
	r := rng.New(2)
	for i := 0; i < 3000; i++ {
		lpn := int64(r.Intn(24))
		if r.Bool(0.2) {
			if err := f.Trim(lpn); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if err := f.Write(lpn, nil); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	// Check the bidirectional mapping.
	for lpn, ppn := range f.l2p {
		if ppn >= 0 && f.p2l[ppn] != int64(lpn) {
			t.Fatalf("l2p[%d]=%d but p2l[%d]=%d", lpn, ppn, ppn, f.p2l[ppn])
		}
	}
	mapped := int64(0)
	for ppn, lpn := range f.p2l {
		if lpn >= 0 {
			mapped++
			if f.l2p[lpn] != int64(ppn) {
				t.Fatalf("p2l[%d]=%d but l2p[%d]=%d", ppn, lpn, lpn, f.l2p[lpn])
			}
		}
	}
	if mapped != f.ValidPages() {
		t.Fatalf("p2l has %d mapped, ValidPages %d", mapped, f.ValidPages())
	}
}

func TestFTLValidCountsConsistent(t *testing.T) {
	eng, _, f := newFTL(t, 24)
	r := rng.New(3)
	for i := 0; i < 1500; i++ {
		if err := f.Write(int64(r.Intn(24)), nil); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	var metaValid int
	for _, b := range f.blocks {
		if b.valid < 0 || b.valid > f.pagesPerBlock {
			t.Fatalf("block valid count %d out of range", b.valid)
		}
		metaValid += b.valid
	}
	if int64(metaValid) != f.ValidPages() {
		t.Fatalf("block metadata says %d valid, maps say %d", metaValid, f.ValidPages())
	}
}

func TestFTLWearLeveling(t *testing.T) {
	// After long uniform churn, wear should be reasonably even: the max
	// erase count should not exceed a small multiple of the min.
	eng, _, f := newFTL(t, 24)
	r := rng.New(4)
	for i := 0; i < 20000; i++ {
		if err := f.Write(int64(r.Intn(24)), nil); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	max, min := f.MaxErases(), f.MinErasesFullyUsed()
	if max == 0 {
		t.Fatal("no wear recorded")
	}
	if min == 0 || max > 8*min {
		t.Fatalf("wear imbalance: max %d, min %d", max, min)
	}
}

func TestFTLTimingUsesPlanes(t *testing.T) {
	eng, ssd, f := newFTL(t, 32)
	var done sim.Time
	if err := f.Write(0, func() { done = eng.Now() }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if done != ssd.Cfg.ProgramLatency {
		t.Fatalf("write completed at %v, want %v", done, ssd.Cfg.ProgramLatency)
	}
}

func TestFTLDeviceFull(t *testing.T) {
	// Fill the entire logical space, then keep overwriting: every write
	// must succeed (GC reclaims invalidated space out of the reserve).
	eng, _, f := newFTL(t, 40) // the maximum legal logical space
	for lpn := int64(0); lpn < 40; lpn++ {
		if err := f.Write(lpn, nil); err != nil {
			t.Fatalf("initial fill failed at %d: %v", lpn, err)
		}
	}
	r := rng.New(5)
	for i := 0; i < 2000; i++ {
		if err := f.Write(int64(r.Intn(40)), nil); err != nil {
			t.Fatalf("overwrite %d failed: %v", i, err)
		}
	}
	eng.Run()
	if f.ValidPages() != 40 {
		t.Fatalf("ValidPages = %d, want 40", f.ValidPages())
	}
}

func TestFTLLogicalPages(t *testing.T) {
	_, _, f := newFTL(t, 40)
	if f.LogicalPages() != 40 {
		t.Fatal("LogicalPages")
	}
}

func TestFTLAddressingRoundTripProperty(t *testing.T) {
	_, _, f := newFTL(t, 32)
	check := func(plane8, block8, page8 uint8) bool {
		plane := int(plane8) % f.planes
		block := int(block8) % f.blocksPerPlane
		page := int(page8) % f.pagesPerBlock
		p, b, pg := f.decompose(f.ppn(plane, block, page))
		return p == plane && b == block && pg == page
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestFTLWriteAmplificationNoGC(t *testing.T) {
	var s FTLStats
	if s.WriteAmplification() != 1 {
		t.Fatal("empty stats WA != 1")
	}
	s.HostWrites = 10
	s.GCWrites = 5
	if s.WriteAmplification() != 1.5 {
		t.Fatal("WA math wrong")
	}
}
