package flash

import (
	"fmt"

	"flashwalker/internal/sim"
)

// HIL models the host-interface logic of §II-C: an NVMe-style submission /
// completion path in front of the FTL. Commands queue up to a bounded
// depth, pay a fixed controller processing latency, execute against the
// FTL, and complete back to the host over PCIe.
//
// GraphWalker-style host I/O goes through this layer in a real device; the
// in-storage accelerators do not (their commands ride the extended ONFI
// protocol on the channel buses instead, §III-C).
type HIL struct {
	ssd *SSD
	ftl *FTL

	// queueDepth bounds outstanding commands (NVMe queue depth).
	queueDepth int
	inFlight   int
	waiting    []queuedCmd

	// procLatency is the controller's per-command processing time
	// (firmware decode + dispatch).
	procLatency sim.Time

	Stats HILStats
}

type queuedCmd struct {
	write bool
	lpn   int64
	done  func(error)
}

// HILStats counts command traffic.
type HILStats struct {
	Submitted uint64
	Completed uint64
	Rejected  uint64 // malformed commands (bad LPN, device full)
	MaxQueued int
}

// NewHIL builds the host interface over an FTL.
func NewHIL(ssd *SSD, ftl *FTL, queueDepth int, procLatency sim.Time) (*HIL, error) {
	if queueDepth <= 0 {
		return nil, fmt.Errorf("flash: queue depth %d <= 0", queueDepth)
	}
	if procLatency < 0 {
		return nil, fmt.Errorf("flash: negative processing latency")
	}
	return &HIL{ssd: ssd, ftl: ftl, queueDepth: queueDepth, procLatency: procLatency}, nil
}

// SubmitRead enqueues a one-page read command; done fires with the
// command's outcome after data has crossed PCIe.
func (h *HIL) SubmitRead(lpn int64, done func(error)) {
	h.submit(queuedCmd{write: false, lpn: lpn, done: done})
}

// SubmitWrite enqueues a one-page write command; done fires after the
// program completes.
func (h *HIL) SubmitWrite(lpn int64, done func(error)) {
	h.submit(queuedCmd{write: true, lpn: lpn, done: done})
}

func (h *HIL) submit(c queuedCmd) {
	h.Stats.Submitted++
	if h.inFlight >= h.queueDepth {
		h.waiting = append(h.waiting, c)
		if len(h.waiting) > h.Stats.MaxQueued {
			h.Stats.MaxQueued = len(h.waiting)
		}
		return
	}
	h.start(c)
}

func (h *HIL) start(c queuedCmd) {
	h.inFlight++
	h.ssd.Eng.After(h.procLatency, func() {
		h.execute(c)
	})
}

func (h *HIL) execute(c queuedCmd) {
	finish := func(err error) {
		if err != nil {
			h.Stats.Rejected++
			h.complete(c, err)
			return
		}
		h.complete(c, nil)
	}
	if c.write {
		// Data moves host -> device over PCIe, then programs via the FTL.
		h.ssd.TransferHost(h.ssd.Cfg.PageBytes, func() {
			if err := h.ftl.Write(c.lpn, func() { finish(nil) }); err != nil {
				finish(err)
			}
		})
		return
	}
	// Read: sense via the FTL, then move device -> host over PCIe.
	err := h.ftl.Read(c.lpn, func() {
		h.ssd.TransferHost(h.ssd.Cfg.PageBytes, func() { finish(nil) })
	})
	if err != nil {
		finish(err)
	}
}

func (h *HIL) complete(c queuedCmd, err error) {
	h.Stats.Completed++
	h.inFlight--
	if len(h.waiting) > 0 {
		next := h.waiting[0]
		h.waiting = h.waiting[1:]
		h.start(next)
	}
	if c.done != nil {
		c.done(err)
	}
}

// InFlight reports commands currently being processed.
func (h *HIL) InFlight() int { return h.inFlight }

// QueuedCommands reports commands waiting for a queue slot.
func (h *HIL) QueuedCommands() int { return len(h.waiting) }
