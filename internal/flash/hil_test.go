package flash

import (
	"testing"

	"flashwalker/internal/sim"
)

func newHIL(t *testing.T, depth int) (*sim.Engine, *SSD, *HIL) {
	t.Helper()
	eng := sim.New()
	ssd, err := New(eng, ftlCfg())
	if err != nil {
		t.Fatal(err)
	}
	ftl, err := NewFTL(ssd, 32)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHIL(ssd, ftl, depth, 5*sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	return eng, ssd, h
}

func TestHILRejectsBadParams(t *testing.T) {
	eng := sim.New()
	ssd, _ := New(eng, ftlCfg())
	ftl, _ := NewFTL(ssd, 32)
	if _, err := NewHIL(ssd, ftl, 0, 1); err == nil {
		t.Fatal("zero depth accepted")
	}
	if _, err := NewHIL(ssd, ftl, 4, -1); err == nil {
		t.Fatal("negative latency accepted")
	}
}

func TestHILWriteThenRead(t *testing.T) {
	eng, _, h := newHIL(t, 8)
	var writeErr, readErr error
	gotRead := false
	h.SubmitWrite(3, func(err error) {
		writeErr = err
		h.SubmitRead(3, func(err error) {
			readErr = err
			gotRead = true
		})
	})
	eng.Run()
	if writeErr != nil || readErr != nil {
		t.Fatalf("errors: %v %v", writeErr, readErr)
	}
	if !gotRead {
		t.Fatal("read never completed")
	}
	if h.Stats.Completed != 2 || h.Stats.Submitted != 2 {
		t.Fatalf("stats %+v", h.Stats)
	}
}

func TestHILReadUnmappedFails(t *testing.T) {
	eng, _, h := newHIL(t, 8)
	var got error
	h.SubmitRead(9, func(err error) { got = err })
	eng.Run()
	if got == nil {
		t.Fatal("unmapped read succeeded")
	}
	if h.Stats.Rejected != 1 {
		t.Fatalf("Rejected = %d", h.Stats.Rejected)
	}
}

func TestHILQueueDepthEnforced(t *testing.T) {
	eng, _, h := newHIL(t, 2)
	done := 0
	for i := int64(0); i < 10; i++ {
		h.SubmitWrite(i, func(err error) {
			if err != nil {
				t.Errorf("write failed: %v", err)
			}
			done++
		})
	}
	if h.InFlight() != 2 {
		t.Fatalf("InFlight = %d, want 2", h.InFlight())
	}
	if h.QueuedCommands() != 8 {
		t.Fatalf("Queued = %d, want 8", h.QueuedCommands())
	}
	if h.Stats.MaxQueued != 8 {
		t.Fatalf("MaxQueued = %d", h.Stats.MaxQueued)
	}
	eng.Run()
	if done != 10 {
		t.Fatalf("completed %d of 10", done)
	}
	if h.InFlight() != 0 || h.QueuedCommands() != 0 {
		t.Fatal("queue not drained")
	}
}

func TestHILCommandLatencyApplied(t *testing.T) {
	eng, ssd, h := newHIL(t, 8)
	var at sim.Time
	h.SubmitWrite(0, func(error) { at = eng.Now() })
	eng.Run()
	// proc latency + PCIe page transfer + program latency.
	min := 5*sim.Microsecond + ssd.Cfg.ProgramLatency
	if at < min {
		t.Fatalf("write completed at %v, before minimum %v", at, min)
	}
}

func TestHILPCIeCharged(t *testing.T) {
	eng, ssd, h := newHIL(t, 8)
	h.SubmitWrite(1, nil)
	eng.Run()
	if ssd.Counters.HostBytes != ssd.Cfg.PageBytes {
		t.Fatalf("HostBytes = %d", ssd.Counters.HostBytes)
	}
	h.SubmitRead(1, nil)
	eng.Run()
	if ssd.Counters.HostBytes != 2*ssd.Cfg.PageBytes {
		t.Fatalf("HostBytes after read = %d", ssd.Counters.HostBytes)
	}
}

func TestHILManyCommandsDrain(t *testing.T) {
	eng, _, h := newHIL(t, 4)
	completed := 0
	for i := 0; i < 200; i++ {
		lpn := int64(i % 24)
		if i%2 == 0 {
			h.SubmitWrite(lpn, func(error) { completed++ })
		} else {
			h.SubmitRead(lpn, func(error) { completed++ })
		}
	}
	eng.Run()
	if completed != 200 {
		t.Fatalf("completed %d of 200", completed)
	}
}
