package flash

import (
	"fmt"

	"flashwalker/internal/sim"
)

// Snapshot support. The SSD's mid-run state is the queue bookings (planes,
// channel buses, PCIe), the per-chip round-robin cursors, the traffic
// counters, and the pooled multi-part op records. Live ops whose completion
// is a typed event serialize cleanly (the event's target is mapped to a
// small integer by the caller, as in sim.Engine.ExportState); live ops with
// a func() completion cannot be serialized and make ExportState fail —
// the accelerator hot path only uses typed or nil completions, so in
// steady state this never triggers.

// OpEvent is a typed completion event in serializable form.
type OpEvent struct {
	Target int32
	Kind   uint16
	A, B   int32
	C      int64
}

// OpState is one pooled op record. Remaining > 0 marks a live op; free
// records carry only their free-list link.
type OpState struct {
	Remaining int32
	Free      int32
	HasDone   bool
	Done      OpEvent
}

// State is the serializable mid-run state of an SSD. Geometry and timing
// are not included: a restored run rebuilds the SSD from the same validated
// Config and overlays this state.
type State struct {
	Counters Counters
	PCIe     sim.QueueState
	Buses    []sim.QueueState // one per channel
	Planes   []sim.QueueState // chip-major: chip*PlanesPerChip() + plane
	ChipNext []int            // per-chip round-robin plane cursor
	Ops      []OpState
	FreeOp   int32
}

// ExportState captures the SSD's queues, cursors, counters, and op pool.
// targetID maps completion-event targets exactly as in
// sim.Engine.ExportState. It fails if a live op holds a closure completion.
func (s *SSD) ExportState(targetID func(sim.Handler) (int32, error)) (State, error) {
	st := State{
		Counters: s.Counters,
		PCIe:     s.pcie.State(),
		Buses:    make([]sim.QueueState, 0, len(s.channels)),
		ChipNext: make([]int, 0, s.NumChips()),
		Ops:      make([]OpState, 0, len(s.ops)),
		FreeOp:   s.freeOp,
	}
	for _, ch := range s.channels {
		st.Buses = append(st.Buses, ch.Bus.State())
		for _, chip := range ch.Chips {
			st.ChipNext = append(st.ChipNext, chip.next)
			for _, pl := range chip.planes {
				st.Planes = append(st.Planes, pl.State())
			}
		}
	}
	for i := range s.ops {
		op := &s.ops[i]
		os := OpState{Remaining: op.remaining, Free: op.free}
		if op.remaining > 0 {
			if op.doneFn != nil {
				return State{}, fmt.Errorf("flash: cannot export op %d with closure completion", i)
			}
			if !op.done.None() {
				id, err := targetID(op.done.Target)
				if err != nil {
					return State{}, fmt.Errorf("flash: export op %d completion: %w", i, err)
				}
				os.HasDone = true
				os.Done = OpEvent{Target: id, Kind: op.done.Kind, A: op.done.A, B: op.done.B, C: op.done.C}
			}
		}
		st.Ops = append(st.Ops, os)
	}
	return st, nil
}

// ImportState overlays a captured State onto a freshly built SSD of the
// same geometry. target is the inverse of ExportState's targetID mapping.
func (s *SSD) ImportState(st State, target func(int32) (sim.Handler, error)) error {
	if len(st.Buses) != len(s.channels) {
		return fmt.Errorf("flash: import: %d channels in state, SSD has %d", len(st.Buses), len(s.channels))
	}
	if len(st.ChipNext) != s.NumChips() {
		return fmt.Errorf("flash: import: %d chips in state, SSD has %d", len(st.ChipNext), s.NumChips())
	}
	if len(st.Planes) != s.NumChips()*s.Cfg.PlanesPerChip() {
		return fmt.Errorf("flash: import: %d planes in state, SSD has %d",
			len(st.Planes), s.NumChips()*s.Cfg.PlanesPerChip())
	}
	s.Counters = st.Counters
	s.pcie.Restore(st.PCIe)
	chipIdx, planeIdx := 0, 0
	for ci, ch := range s.channels {
		ch.Bus.Restore(st.Buses[ci])
		for _, chip := range ch.Chips {
			chip.next = st.ChipNext[chipIdx]
			chipIdx++
			for _, pl := range chip.planes {
				pl.Restore(st.Planes[planeIdx])
				planeIdx++
			}
		}
	}
	s.ops = make([]flashOp, len(st.Ops))
	for i, os := range st.Ops {
		op := flashOp{remaining: os.Remaining, free: os.Free}
		if os.HasDone {
			h, err := target(os.Done.Target)
			if err != nil {
				return fmt.Errorf("flash: import op %d completion: %w", i, err)
			}
			op.done = sim.Event{Target: h, Kind: os.Done.Kind, A: os.Done.A, B: os.Done.B, C: os.Done.C}
		}
		s.ops[i] = op
	}
	s.freeOp = st.FreeOp
	return nil
}
