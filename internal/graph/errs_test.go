package graph

import (
	"errors"
	"testing"

	"flashwalker/internal/errs"
)

func TestGeneratorErrorsWrapInvalidConfig(t *testing.T) {
	cases := map[string]func() error{
		"rmat zero vertices": func() error {
			_, err := RMAT(RMATConfig{NumEdges: 8})
			return err
		},
		"rmat bad probabilities": func() error {
			cfg := DefaultRMAT(16, 64, 1)
			cfg.A, cfg.B, cfg.C, cfg.D = 0.9, 0.9, 0.9, 0.9
			_, err := RMAT(cfg)
			return err
		},
		"powerlaw zero vertices": func() error {
			_, err := PowerLaw(PowerLawConfig{NumEdges: 8, Alpha: 0.8})
			return err
		},
		"uniform zero vertices": func() error {
			_, err := Uniform(0, 8, 1)
			return err
		},
	}
	for name, gen := range cases {
		err := gen()
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if !errors.Is(err, errs.ErrInvalidConfig) {
			t.Errorf("%s: error %v does not wrap ErrInvalidConfig", name, err)
		}
	}
}
