package graph_test

import (
	"fmt"

	"flashwalker/internal/graph"
)

// Build a small graph by hand and inspect its CSR structure.
func ExampleBuilder() {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(2, 3)
	g, _ := b.Build()
	fmt.Println("vertices:", g.NumVertices())
	fmt.Println("edges:", g.NumEdges())
	fmt.Println("out(0):", g.OutEdges(0))
	// Output:
	// vertices: 4
	// edges: 3
	// out(0): [1 2]
}

// Generate a deterministic synthetic graph.
func ExampleRMAT() {
	g, _ := graph.RMAT(graph.DefaultRMAT(256, 1024, 7))
	s := graph.ComputeStats(g)
	fmt.Println("vertices:", s.NumVertices)
	fmt.Println("edges >= 1000:", s.NumEdges >= 1000)
	// Output:
	// vertices: 256
	// edges >= 1000: true
}

// Reverse transposes every edge.
func ExampleReverse() {
	b := graph.NewBuilder(2)
	b.AddEdge(0, 1)
	g, _ := b.Build()
	r := graph.Reverse(g)
	fmt.Println("reversed out(1):", r.OutEdges(1))
	// Output:
	// reversed out(1): [0]
}
