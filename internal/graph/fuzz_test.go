package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList hardens the text parser: arbitrary input must either
// parse into a valid graph or return an error — never panic, never yield a
// graph failing Validate.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# comment\n5 6 0.5\n")
	f.Add("")
	f.Add("0 1 2 3 4\n")
	f.Add("9999999999999999999999 1\n")
	f.Add("1 2 -1\n")
	f.Add("0 0\n0 0\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("parsed graph fails validation: %v", verr)
		}
	})
}

// FuzzRead hardens the binary decoder against corrupt files.
func FuzzRead(f *testing.F) {
	// Seed with a genuine file and mutations of it.
	var buf bytes.Buffer
	if err := Write(&buf, Ring(16)); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("FWGRAPH1garbage"))
	f.Add([]byte{})
	corrupt := append([]byte(nil), valid...)
	if len(corrupt) > 20 {
		corrupt[18] ^= 0xff
	}
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("decoded graph fails validation: %v", verr)
		}
	})
}
