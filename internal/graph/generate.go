package graph

import (
	"fmt"
	"math"

	"flashwalker/internal/errs"
	"flashwalker/internal/rng"
)

// RMATConfig parameterizes the R-MAT generator (the model PaRMAT
// implements, used for the paper's R2B/R8B synthetic graphs).
type RMATConfig struct {
	// NumVertices is rounded up to a power of two internally; generated IDs
	// are then mapped back into [0, NumVertices).
	NumVertices uint64
	NumEdges    uint64
	// Quadrant probabilities; must sum to ~1. PaRMAT defaults: 0.45, 0.22,
	// 0.22, 0.11.
	A, B, C, D float64
	// Noise perturbs the quadrant probabilities per level, as PaRMAT's
	// smoothing does, preventing degenerate diagonal artifacts.
	Noise float64
	// RemoveDuplicates drops exact duplicate edges (PaRMAT's -noDuplicateEdges).
	RemoveDuplicates bool
	// Weighted assigns uniform random weights in (0, 1].
	Weighted bool
	Seed     uint64
}

// DefaultRMAT returns PaRMAT-default parameters for the given size.
func DefaultRMAT(v, e uint64, seed uint64) RMATConfig {
	return RMATConfig{
		NumVertices: v, NumEdges: e,
		A: 0.45, B: 0.22, C: 0.22, D: 0.11,
		Noise: 0.05, RemoveDuplicates: true, Seed: seed,
	}
}

// RMAT generates a directed graph with the recursive-matrix model.
func RMAT(cfg RMATConfig) (*Graph, error) {
	if cfg.NumVertices == 0 {
		return nil, fmt.Errorf("graph: RMAT with zero vertices: %w", errs.ErrInvalidConfig)
	}
	sum := cfg.A + cfg.B + cfg.C + cfg.D
	if sum < 0.99 || sum > 1.01 {
		return nil, fmt.Errorf("graph: RMAT probabilities sum to %v, want 1: %w", sum, errs.ErrInvalidConfig)
	}
	levels := 0
	pow := uint64(1)
	for pow < cfg.NumVertices {
		pow <<= 1
		levels++
	}
	r := rng.New(cfg.Seed)
	b := NewBuilder(cfg.NumVertices)
	seen := map[uint64]struct{}{}
	attempts := uint64(0)
	maxAttempts := cfg.NumEdges*20 + 1000
	for uint64(b.NumEdges()) < cfg.NumEdges {
		attempts++
		if attempts > maxAttempts {
			// Dense duplicate-heavy corner: give up removing duplicates and
			// accept what we have rather than loop forever.
			break
		}
		var src, dst uint64
		for l := 0; l < levels; l++ {
			a, bb, c := cfg.A, cfg.B, cfg.C
			if cfg.Noise > 0 {
				// Symmetric per-level perturbation, renormalized.
				na := a * (1 - cfg.Noise + 2*cfg.Noise*r.Float64())
				nb := bb * (1 - cfg.Noise + 2*cfg.Noise*r.Float64())
				nc := c * (1 - cfg.Noise + 2*cfg.Noise*r.Float64())
				nd := cfg.D * (1 - cfg.Noise + 2*cfg.Noise*r.Float64())
				tot := na + nb + nc + nd
				a, bb, c = na/tot, nb/tot, nc/tot
			}
			u := r.Float64()
			switch {
			case u < a:
				// top-left: no bits set
			case u < a+bb:
				dst |= 1 << l
			case u < a+bb+c:
				src |= 1 << l
			default:
				src |= 1 << l
				dst |= 1 << l
			}
		}
		src %= cfg.NumVertices
		dst %= cfg.NumVertices
		if cfg.RemoveDuplicates {
			key := src*cfg.NumVertices + dst
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
		}
		if cfg.Weighted {
			b.AddWeightedEdge(src, dst, float32(r.Float64())+1e-6)
		} else {
			b.AddEdge(src, dst)
		}
	}
	return b.Build()
}

// PowerLawConfig parameterizes a Chung-Lu style power-law generator: vertex
// v's expected out-degree is proportional to (v+1)^(-alpha), then vertex IDs
// are shuffled so degree does not correlate with ID.
type PowerLawConfig struct {
	NumVertices uint64
	NumEdges    uint64
	Alpha       float64 // skew exponent; 0.6-0.9 resembles social graphs
	Weighted    bool
	Seed        uint64
}

// PowerLaw generates a directed power-law graph.
func PowerLaw(cfg PowerLawConfig) (*Graph, error) {
	if cfg.NumVertices == 0 {
		return nil, fmt.Errorf("graph: PowerLaw with zero vertices: %w", errs.ErrInvalidConfig)
	}
	if cfg.Alpha <= 0 {
		cfg.Alpha = 0.7
	}
	r := rng.New(cfg.Seed)
	n := cfg.NumVertices
	// Build the cumulative degree-weight table.
	cum := make([]float64, n)
	acc := 0.0
	for i := uint64(0); i < n; i++ {
		acc += math.Pow(float64(i+1), -cfg.Alpha)
		cum[i] = acc
	}
	total := acc
	// Random relabeling so hot vertices are spread over the ID space.
	label := make([]int, n)
	r.Perm(label)
	sample := func() VertexID {
		u := r.Float64() * total
		lo, hi := 0, int(n)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return VertexID(label[lo])
	}
	b := NewBuilder(n)
	for uint64(b.NumEdges()) < cfg.NumEdges {
		src := sample()
		dst := VertexID(r.Uint64n(n))
		if cfg.Weighted {
			b.AddWeightedEdge(src, dst, float32(r.Float64())+1e-6)
		} else {
			b.AddEdge(src, dst)
		}
	}
	return b.Build()
}

// Uniform generates an Erdős–Rényi-style directed graph with exactly
// numEdges uniformly random edges.
func Uniform(numVertices, numEdges, seed uint64) (*Graph, error) {
	if numVertices == 0 {
		return nil, fmt.Errorf("graph: Uniform with zero vertices: %w", errs.ErrInvalidConfig)
	}
	r := rng.New(seed)
	b := NewBuilder(numVertices)
	for uint64(b.NumEdges()) < numEdges {
		b.AddEdge(VertexID(r.Uint64n(numVertices)), VertexID(r.Uint64n(numVertices)))
	}
	return b.Build()
}

// Ring generates a cycle graph: v -> (v+1) mod n. Useful in tests because
// every walk's trajectory is fully determined.
func Ring(numVertices uint64) *Graph {
	b := NewBuilder(numVertices)
	for v := uint64(0); v < numVertices; v++ {
		b.AddEdge(v, (v+1)%numVertices)
	}
	g, err := b.Build()
	if err != nil {
		panic(err) // cannot fail: all endpoints in range
	}
	return g
}

// Complete generates a complete directed graph without self-loops.
func Complete(numVertices uint64) *Graph {
	b := NewBuilder(numVertices)
	for u := uint64(0); u < numVertices; u++ {
		for v := uint64(0); v < numVertices; v++ {
			if u != v {
				b.AddEdge(u, v)
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// Star generates a hub-and-spoke graph: the hub (vertex 0) points at every
// spoke and every spoke points back. Vertex 0 is a guaranteed dense vertex,
// which exercises the pre-walking path.
func Star(numSpokes uint64) *Graph {
	b := NewBuilder(numSpokes + 1)
	for v := uint64(1); v <= numSpokes; v++ {
		b.AddEdge(0, v)
		b.AddEdge(v, 0)
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}
