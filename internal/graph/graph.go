// Package graph provides the directed-graph representation used by both
// engines: an immutable CSR (compressed sparse row) structure with optional
// edge weights, plus builders, synthetic generators, binary serialization
// and degree statistics.
//
// Vertex IDs are uint64 because ClueWeb-scale graphs exceed the 4-byte ID
// range (paper §IV-A); the scaled analogues in this repo fit easily, but the
// representation matches the paper's.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// VertexID identifies a vertex.
type VertexID = uint64

// Edge is a directed edge, optionally weighted.
type Edge struct {
	Src, Dst VertexID
	Weight   float32
}

// Graph is an immutable directed graph in CSR form. Offsets has
// NumVertices+1 entries; the out-edges of vertex v are
// Edges[Offsets[v]:Offsets[v+1]] (and Weights likewise when weighted).
type Graph struct {
	Offsets []uint64
	Edges   []VertexID
	Weights []float32 // nil for unweighted graphs

	// CumWeights[i] is the cumulative weight of edges of a vertex up to and
	// including edge i, restarting at each vertex. Present only on weighted
	// graphs; it is the pre-computed cumulative-distribution list CL that
	// inverse transform sampling binary-searches (paper §III-B).
	CumWeights []float32
}

// NumVertices reports the number of vertices.
func (g *Graph) NumVertices() uint64 { return uint64(len(g.Offsets)) - 1 }

// NumEdges reports the number of directed edges.
func (g *Graph) NumEdges() uint64 { return uint64(len(g.Edges)) }

// Weighted reports whether the graph carries edge weights.
func (g *Graph) Weighted() bool { return g.Weights != nil }

// OutDegree reports the out-degree of v.
func (g *Graph) OutDegree(v VertexID) uint64 {
	return g.Offsets[v+1] - g.Offsets[v]
}

// OutEdges returns the out-neighbor slice of v (aliasing internal storage).
func (g *Graph) OutEdges(v VertexID) []VertexID {
	return g.Edges[g.Offsets[v]:g.Offsets[v+1]]
}

// OutWeights returns the edge-weight slice of v, or nil if unweighted.
func (g *Graph) OutWeights(v VertexID) []float32 {
	if g.Weights == nil {
		return nil
	}
	return g.Weights[g.Offsets[v]:g.Offsets[v+1]]
}

// OutCumWeights returns the per-vertex cumulative weight list of v, or nil.
func (g *Graph) OutCumWeights(v VertexID) []float32 {
	if g.CumWeights == nil {
		return nil
	}
	return g.CumWeights[g.Offsets[v]:g.Offsets[v+1]]
}

// SumWeight returns the total out-edge weight of v (paper's v.sumWeight).
// For unweighted graphs it equals the out-degree.
func (g *Graph) SumWeight(v VertexID) float64 {
	deg := g.OutDegree(v)
	if deg == 0 {
		return 0
	}
	if g.CumWeights == nil {
		return float64(deg)
	}
	return float64(g.CumWeights[g.Offsets[v+1]-1])
}

// CSRBytes reports the size of the CSR representation in bytes, using the
// given per-ID width (4 or 8 as in Table IV) for both offsets and edges.
func (g *Graph) CSRBytes(idBytes int) int64 {
	n := int64(len(g.Offsets))*int64(idBytes) + int64(len(g.Edges))*int64(idBytes)
	if g.Weights != nil {
		n += int64(len(g.Weights)) * 4
	}
	return n
}

// Validate checks structural invariants and returns a descriptive error for
// the first violation found.
func (g *Graph) Validate() error {
	if len(g.Offsets) == 0 {
		return errors.New("graph: empty offsets array")
	}
	if g.Offsets[0] != 0 {
		return fmt.Errorf("graph: offsets[0] = %d, want 0", g.Offsets[0])
	}
	if g.Offsets[len(g.Offsets)-1] != uint64(len(g.Edges)) {
		return fmt.Errorf("graph: offsets end %d != %d edges",
			g.Offsets[len(g.Offsets)-1], len(g.Edges))
	}
	for i := 1; i < len(g.Offsets); i++ {
		if g.Offsets[i] < g.Offsets[i-1] {
			return fmt.Errorf("graph: offsets not monotone at %d", i)
		}
	}
	n := g.NumVertices()
	for i, dst := range g.Edges {
		if dst >= n {
			return fmt.Errorf("graph: edge %d targets %d >= %d vertices", i, dst, n)
		}
	}
	if g.Weights != nil {
		if len(g.Weights) != len(g.Edges) {
			return fmt.Errorf("graph: %d weights for %d edges", len(g.Weights), len(g.Edges))
		}
		for i, w := range g.Weights {
			if w < 0 {
				return fmt.Errorf("graph: negative weight at edge %d", i)
			}
		}
	}
	return nil
}

// Builder accumulates edges and produces a CSR Graph.
type Builder struct {
	numVertices uint64
	edges       []Edge
	weighted    bool
}

// NewBuilder creates a builder for a graph with numVertices vertices.
func NewBuilder(numVertices uint64) *Builder {
	return &Builder{numVertices: numVertices}
}

// AddEdge appends a directed, unweighted edge.
func (b *Builder) AddEdge(src, dst VertexID) {
	b.edges = append(b.edges, Edge{Src: src, Dst: dst, Weight: 1})
}

// AddWeightedEdge appends a directed edge with weight w; the resulting
// graph will be weighted.
func (b *Builder) AddWeightedEdge(src, dst VertexID, w float32) {
	b.weighted = true
	b.edges = append(b.edges, Edge{Src: src, Dst: dst, Weight: w})
}

// NumEdges reports the number of edges added so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// Build sorts the edges into CSR form and returns the graph. Self-loops are
// kept; exact duplicates are kept (multigraphs are legal inputs for random
// walks). It returns an error if any endpoint is out of range.
func (b *Builder) Build() (*Graph, error) {
	for _, e := range b.edges {
		if e.Src >= b.numVertices || e.Dst >= b.numVertices {
			return nil, fmt.Errorf("graph: edge (%d,%d) outside %d vertices",
				e.Src, e.Dst, b.numVertices)
		}
	}
	// Counting sort by source for O(V+E) CSR construction.
	offsets := make([]uint64, b.numVertices+1)
	for _, e := range b.edges {
		offsets[e.Src+1]++
	}
	for i := 1; i < len(offsets); i++ {
		offsets[i] += offsets[i-1]
	}
	edges := make([]VertexID, len(b.edges))
	var weights []float32
	if b.weighted {
		weights = make([]float32, len(b.edges))
	}
	cursor := make([]uint64, b.numVertices)
	copy(cursor, offsets[:b.numVertices])
	for _, e := range b.edges {
		p := cursor[e.Src]
		edges[p] = e.Dst
		if weights != nil {
			weights[p] = e.Weight
		}
		cursor[e.Src] = p + 1
	}
	// Sort each adjacency list for deterministic layout and binary-search
	// friendliness.
	for v := uint64(0); v < b.numVertices; v++ {
		lo, hi := offsets[v], offsets[v+1]
		if weights == nil {
			s := edges[lo:hi]
			sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		} else {
			idx := make([]int, hi-lo)
			for i := range idx {
				idx[i] = i
			}
			e, w := edges[lo:hi], weights[lo:hi]
			sort.Slice(idx, func(i, j int) bool { return e[idx[i]] < e[idx[j]] })
			se := make([]VertexID, len(idx))
			sw := make([]float32, len(idx))
			for i, k := range idx {
				se[i], sw[i] = e[k], w[k]
			}
			copy(e, se)
			copy(w, sw)
		}
	}
	g := &Graph{Offsets: offsets, Edges: edges, Weights: weights}
	if weights != nil {
		g.CumWeights = buildCumWeights(offsets, weights)
	}
	return g, nil
}

// buildCumWeights computes the per-vertex cumulative weight lists.
func buildCumWeights(offsets []uint64, weights []float32) []float32 {
	cum := make([]float32, len(weights))
	for v := 0; v+1 < len(offsets); v++ {
		var acc float32
		for i := offsets[v]; i < offsets[v+1]; i++ {
			acc += weights[i]
			cum[i] = acc
		}
	}
	return cum
}

// FromEdges builds an unweighted graph directly from an edge list.
func FromEdges(numVertices uint64, edges []Edge) (*Graph, error) {
	b := NewBuilder(numVertices)
	for _, e := range edges {
		b.AddEdge(e.Src, e.Dst)
	}
	return b.Build()
}
