package graph

import (
	"testing"
	"testing/quick"

	"flashwalker/internal/rng"
)

func mustBuild(t *testing.T, b *Builder) *Graph {
	t.Helper()
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return g
}

func TestEmptyGraph(t *testing.T) {
	g := mustBuild(t, NewBuilder(0))
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph has %d vertices %d edges", g.NumVertices(), g.NumEdges())
	}
}

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 0)
	g := mustBuild(t, b)
	if g.NumVertices() != 4 || g.NumEdges() != 4 {
		t.Fatalf("got %d vertices %d edges", g.NumVertices(), g.NumEdges())
	}
	if g.OutDegree(0) != 2 || g.OutDegree(1) != 0 || g.OutDegree(2) != 1 {
		t.Fatal("wrong out-degrees")
	}
	e0 := g.OutEdges(0)
	if len(e0) != 2 || e0[0] != 1 || e0[1] != 2 {
		t.Fatalf("OutEdges(0) = %v", e0)
	}
}

func TestBuilderSortsAdjacency(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(0, 4)
	b.AddEdge(0, 1)
	b.AddEdge(0, 3)
	b.AddEdge(0, 2)
	g := mustBuild(t, b)
	e := g.OutEdges(0)
	for i := 1; i < len(e); i++ {
		if e[i-1] > e[i] {
			t.Fatalf("adjacency not sorted: %v", e)
		}
	}
}

func TestBuilderRejectsOutOfRange(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 3)
	if _, err := b.Build(); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	b2 := NewBuilder(3)
	b2.AddEdge(7, 0)
	if _, err := b2.Build(); err == nil {
		t.Fatal("out-of-range source accepted")
	}
}

func TestWeightedBuild(t *testing.T) {
	b := NewBuilder(3)
	b.AddWeightedEdge(0, 1, 2.0)
	b.AddWeightedEdge(0, 2, 3.0)
	g := mustBuild(t, b)
	if !g.Weighted() {
		t.Fatal("graph not weighted")
	}
	w := g.OutWeights(0)
	if len(w) != 2 || w[0] != 2.0 || w[1] != 3.0 {
		t.Fatalf("weights = %v", w)
	}
	cw := g.OutCumWeights(0)
	if cw[0] != 2.0 || cw[1] != 5.0 {
		t.Fatalf("cumulative weights = %v", cw)
	}
	if g.SumWeight(0) != 5.0 {
		t.Fatalf("SumWeight = %v", g.SumWeight(0))
	}
}

func TestWeightedSortKeepsPairing(t *testing.T) {
	b := NewBuilder(4)
	b.AddWeightedEdge(0, 3, 30)
	b.AddWeightedEdge(0, 1, 10)
	b.AddWeightedEdge(0, 2, 20)
	g := mustBuild(t, b)
	e, w := g.OutEdges(0), g.OutWeights(0)
	for i := range e {
		if float32(e[i]*10) != w[i] {
			t.Fatalf("edge %d paired with weight %v", e[i], w[i])
		}
	}
}

func TestUnweightedSumWeightIsDegree(t *testing.T) {
	g := Ring(10)
	if g.SumWeight(3) != 1 {
		t.Fatalf("SumWeight on ring = %v, want 1", g.SumWeight(3))
	}
	if g.SumWeight(0) != float64(g.OutDegree(0)) {
		t.Fatal("SumWeight != OutDegree for unweighted")
	}
}

func TestDuplicateEdgesKept(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 1)
	b.AddEdge(0, 1)
	g := mustBuild(t, b)
	if g.NumEdges() != 2 {
		t.Fatalf("duplicates dropped: %d edges", g.NumEdges())
	}
}

func TestSelfLoopsKept(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(1, 1)
	g := mustBuild(t, b)
	if g.OutDegree(1) != 1 || g.OutEdges(1)[0] != 1 {
		t.Fatal("self loop lost")
	}
}

func TestCSRBytes(t *testing.T) {
	g := Ring(10) // 11 offsets + 10 edges
	if got := g.CSRBytes(4); got != (11+10)*4 {
		t.Fatalf("CSRBytes(4) = %d", got)
	}
	if got := g.CSRBytes(8); got != (11+10)*8 {
		t.Fatalf("CSRBytes(8) = %d", got)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := Ring(5)
	bad := &Graph{Offsets: append([]uint64{}, g.Offsets...), Edges: append([]VertexID{}, g.Edges...)}
	bad.Edges[0] = 99
	if bad.Validate() == nil {
		t.Fatal("out-of-range edge not caught")
	}
	bad2 := &Graph{Offsets: []uint64{0, 2, 1}, Edges: []VertexID{0, 0}}
	if bad2.Validate() == nil {
		t.Fatal("non-monotone offsets not caught")
	}
	bad3 := &Graph{Offsets: []uint64{1, 2}, Edges: []VertexID{0}}
	if bad3.Validate() == nil {
		t.Fatal("offsets[0] != 0 not caught")
	}
}

func TestRingStructure(t *testing.T) {
	g := Ring(7)
	for v := uint64(0); v < 7; v++ {
		e := g.OutEdges(v)
		if len(e) != 1 || e[0] != (v+1)%7 {
			t.Fatalf("ring vertex %d edges %v", v, e)
		}
	}
}

func TestCompleteStructure(t *testing.T) {
	g := Complete(5)
	if g.NumEdges() != 20 {
		t.Fatalf("K5 has %d edges, want 20", g.NumEdges())
	}
	for v := uint64(0); v < 5; v++ {
		if g.OutDegree(v) != 4 {
			t.Fatalf("vertex %d degree %d", v, g.OutDegree(v))
		}
		for _, d := range g.OutEdges(v) {
			if d == v {
				t.Fatal("self loop in Complete")
			}
		}
	}
}

func TestStarStructure(t *testing.T) {
	g := Star(100)
	if g.OutDegree(0) != 100 {
		t.Fatalf("hub degree %d", g.OutDegree(0))
	}
	for v := uint64(1); v <= 100; v++ {
		if g.OutDegree(v) != 1 || g.OutEdges(v)[0] != 0 {
			t.Fatalf("spoke %d wrong", v)
		}
	}
}

func TestRMATBasic(t *testing.T) {
	g, err := RMAT(DefaultRMAT(1024, 8192, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1024 {
		t.Fatalf("V = %d", g.NumVertices())
	}
	if g.NumEdges() < 8000 {
		t.Fatalf("E = %d, want ~8192", g.NumEdges())
	}
}

func TestRMATDeterministic(t *testing.T) {
	a, _ := RMAT(DefaultRMAT(512, 2048, 7))
	b, _ := RMAT(DefaultRMAT(512, 2048, 7))
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("RMAT not deterministic in edge count")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatal("RMAT not deterministic in edges")
		}
	}
}

func TestRMATSkewed(t *testing.T) {
	// R-MAT with default params must be much more skewed than uniform.
	rm, _ := RMAT(DefaultRMAT(2048, 16384, 3))
	un, _ := Uniform(2048, 16384, 3)
	srm, sun := ComputeStats(rm), ComputeStats(un)
	if srm.GiniOut <= sun.GiniOut {
		t.Fatalf("RMAT gini %.3f <= uniform gini %.3f", srm.GiniOut, sun.GiniOut)
	}
	if srm.MaxOutDeg <= sun.MaxOutDeg {
		t.Fatalf("RMAT max degree %d <= uniform %d", srm.MaxOutDeg, sun.MaxOutDeg)
	}
}

func TestRMATNoDuplicatesWhenRequested(t *testing.T) {
	cfg := DefaultRMAT(256, 2000, 5)
	g, err := RMAT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[[2]uint64]bool{}
	for v := uint64(0); v < g.NumVertices(); v++ {
		for _, d := range g.OutEdges(v) {
			k := [2]uint64{v, d}
			if seen[k] {
				t.Fatalf("duplicate edge (%d,%d)", v, d)
			}
			seen[k] = true
		}
	}
}

func TestRMATWeighted(t *testing.T) {
	cfg := DefaultRMAT(256, 1024, 9)
	cfg.Weighted = true
	g, err := RMAT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Weighted() {
		t.Fatal("not weighted")
	}
	for _, w := range g.Weights {
		if w <= 0 {
			t.Fatalf("non-positive weight %v", w)
		}
	}
}

func TestRMATRejectsBadProbabilities(t *testing.T) {
	cfg := DefaultRMAT(64, 64, 1)
	cfg.A = 0.9
	if _, err := RMAT(cfg); err == nil {
		t.Fatal("bad probabilities accepted")
	}
	if _, err := RMAT(RMATConfig{NumVertices: 0, A: 0.25, B: 0.25, C: 0.25, D: 0.25}); err == nil {
		t.Fatal("zero vertices accepted")
	}
}

func TestPowerLawSkew(t *testing.T) {
	g, err := PowerLaw(PowerLawConfig{NumVertices: 2048, NumEdges: 16384, Alpha: 0.8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	s := ComputeStats(g)
	if s.GiniOut < 0.3 {
		t.Fatalf("power-law gini %.3f too uniform", s.GiniOut)
	}
}

func TestPowerLawDefaultsAlpha(t *testing.T) {
	g, err := PowerLaw(PowerLawConfig{NumVertices: 128, NumEdges: 512, Seed: 1})
	if err != nil || g.NumEdges() != 512 {
		t.Fatalf("err=%v edges=%d", err, g.NumEdges())
	}
	if _, err := PowerLaw(PowerLawConfig{NumVertices: 0}); err == nil {
		t.Fatal("zero vertices accepted")
	}
}

func TestUniformExactEdgeCount(t *testing.T) {
	g, err := Uniform(100, 1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1000 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	if _, err := Uniform(0, 10, 1); err == nil {
		t.Fatal("zero vertices accepted")
	}
}

func TestComputeStats(t *testing.T) {
	g := Star(10)
	s := ComputeStats(g)
	if s.MaxOutDeg != 10 {
		t.Fatalf("MaxOutDeg = %d", s.MaxOutDeg)
	}
	if s.NumEdges != 20 || s.NumVertices != 11 {
		t.Fatalf("stats %+v", s)
	}
	if s.ZeroOutDeg != 0 {
		t.Fatalf("ZeroOutDeg = %d", s.ZeroOutDeg)
	}
	// A graph with an isolated vertex.
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	g2 := mustBuild(t, b)
	if ComputeStats(g2).ZeroOutDeg != 2 {
		t.Fatal("zero-out-degree count wrong")
	}
}

func TestGiniBounds(t *testing.T) {
	if g := gini([]uint64{5, 5, 5, 5}); g > 0.001 {
		t.Fatalf("uniform gini = %v", g)
	}
	if g := gini([]uint64{0, 0, 0, 100}); g < 0.7 {
		t.Fatalf("concentrated gini = %v", g)
	}
	if g := gini(nil); g != 0 {
		t.Fatalf("empty gini = %v", g)
	}
	if g := gini([]uint64{0, 0}); g != 0 {
		t.Fatalf("all-zero gini = %v", g)
	}
}

func TestInDegrees(t *testing.T) {
	g := Star(4)
	in := InDegrees(g)
	if in[0] != 4 {
		t.Fatalf("hub in-degree %d", in[0])
	}
	for v := 1; v <= 4; v++ {
		if in[v] != 1 {
			t.Fatalf("spoke %d in-degree %d", v, in[v])
		}
	}
}

func TestTextSizeEstimate(t *testing.T) {
	g := Ring(100)
	if TextSizeEstimate(g) <= 0 {
		t.Fatal("estimate not positive")
	}
	empty := mustBuild(t, NewBuilder(1))
	if TextSizeEstimate(empty) != 0 {
		t.Fatal("empty estimate not zero")
	}
}

// Property: CSR preserves the multiset of edges added.
func TestCSRPreservesEdgesProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := uint64(r.Intn(50) + 1)
		m := r.Intn(200)
		type pair struct{ s, d VertexID }
		added := map[pair]int{}
		b := NewBuilder(n)
		for i := 0; i < m; i++ {
			s, d := VertexID(r.Uint64n(n)), VertexID(r.Uint64n(n))
			b.AddEdge(s, d)
			added[pair{s, d}]++
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		got := map[pair]int{}
		for v := uint64(0); v < n; v++ {
			for _, d := range g.OutEdges(v) {
				got[pair{v, d}]++
			}
		}
		if len(got) != len(added) {
			return false
		}
		for k, c := range added {
			if got[k] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: sum of out-degrees equals edge count.
func TestDegreeSumProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g, err := Uniform(64, 256, seed)
		if err != nil {
			return false
		}
		var sum uint64
		for v := uint64(0); v < g.NumVertices(); v++ {
			sum += g.OutDegree(v)
		}
		return sum == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
