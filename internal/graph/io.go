package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// Binary format:
//
//	magic   [8]byte  "FWGRAPH1"
//	flags   uint64   bit0 = weighted
//	V       uint64   number of vertices
//	E       uint64   number of edges
//	offsets [V+1]uint64
//	edges   [E]uint64
//	weights [E]float32 (iff weighted)
const magic = "FWGRAPH1"

// Write serializes g to w in the binary format above.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	var flags uint64
	if g.Weighted() {
		flags |= 1
	}
	hdr := []uint64{flags, g.NumVertices(), g.NumEdges()}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Offsets); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Edges); err != nil {
		return err
	}
	if g.Weighted() {
		if err := binary.Write(bw, binary.LittleEndian, g.Weights); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read deserializes a graph written by Write and validates it.
func Read(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	got := make([]byte, len(magic))
	if _, err := io.ReadFull(br, got); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if string(got) != magic {
		return nil, fmt.Errorf("graph: bad magic %q", got)
	}
	var flags, v, e uint64
	for _, p := range []*uint64{&flags, &v, &e} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("graph: reading header: %w", err)
		}
	}
	const maxReasonable = 1 << 33 // 8G entries; guards corrupt headers
	if v+1 > maxReasonable || e > maxReasonable {
		return nil, fmt.Errorf("graph: implausible header V=%d E=%d", v, e)
	}
	g := &Graph{
		Offsets: make([]uint64, v+1),
		Edges:   make([]VertexID, e),
	}
	if err := binary.Read(br, binary.LittleEndian, g.Offsets); err != nil {
		return nil, fmt.Errorf("graph: reading offsets: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, g.Edges); err != nil {
		return nil, fmt.Errorf("graph: reading edges: %w", err)
	}
	if flags&1 != 0 {
		g.Weights = make([]float32, e)
		if err := binary.Read(br, binary.LittleEndian, g.Weights); err != nil {
			return nil, fmt.Errorf("graph: reading weights: %w", err)
		}
		g.CumWeights = buildCumWeights(g.Offsets, g.Weights)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Save writes the graph to the named file.
func Save(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := Write(f, g); err != nil {
		return err
	}
	return f.Sync()
}

// Load reads a graph from the named file.
func Load(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// Stats summarizes a graph's degree distribution.
type Stats struct {
	NumVertices uint64
	NumEdges    uint64
	MaxOutDeg   uint64
	AvgOutDeg   float64
	// GiniOut in [0,1] measures out-degree skew (0 = uniform).
	GiniOut float64
	// ZeroOutDeg counts dead-end vertices.
	ZeroOutDeg uint64
}

// ComputeStats scans the graph once and returns its Stats.
func ComputeStats(g *Graph) Stats {
	s := Stats{NumVertices: g.NumVertices(), NumEdges: g.NumEdges()}
	if s.NumVertices == 0 {
		return s
	}
	degs := make([]uint64, s.NumVertices)
	for v := uint64(0); v < s.NumVertices; v++ {
		d := g.OutDegree(v)
		degs[v] = d
		if d > s.MaxOutDeg {
			s.MaxOutDeg = d
		}
		if d == 0 {
			s.ZeroOutDeg++
		}
	}
	s.AvgOutDeg = float64(s.NumEdges) / float64(s.NumVertices)
	s.GiniOut = gini(degs)
	return s
}

// gini computes the Gini coefficient of the given non-negative values.
func gini(vals []uint64) float64 {
	n := len(vals)
	if n == 0 {
		return 0
	}
	sorted := make([]float64, n)
	var sum float64
	for i, v := range vals {
		sorted[i] = float64(v)
		sum += float64(v)
	}
	if sum == 0 {
		return 0
	}
	sort.Float64s(sorted)
	var weighted float64
	for i, v := range sorted {
		weighted += float64(i+1) * v
	}
	g := (2*weighted)/(float64(n)*sum) - float64(n+1)/float64(n)
	if g < 0 {
		g = 0
	}
	return g
}

// InDegrees computes the in-degree of every vertex (used by the hot-subgraph
// selection, which keeps subgraphs with top in-degrees).
func InDegrees(g *Graph) []uint64 {
	in := make([]uint64, g.NumVertices())
	for _, dst := range g.Edges {
		in[dst]++
	}
	return in
}

// TextSizeEstimate estimates an edge-list text representation size, mirroring
// Table IV's "Text Size" column (src dst per line, ~decimal digits).
func TextSizeEstimate(g *Graph) int64 {
	if g.NumEdges() == 0 {
		return 0
	}
	digits := int64(math.Log10(float64(g.NumVertices()))) + 1
	// "src<space>dst\n" per edge.
	return int64(g.NumEdges()) * (2*digits + 2)
}
