package graph

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	g, err := RMAT(DefaultRMAT(512, 4096, 1))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatal("shape changed in round trip")
	}
	for i := range g.Offsets {
		if g.Offsets[i] != g2.Offsets[i] {
			t.Fatal("offsets changed")
		}
	}
	for i := range g.Edges {
		if g.Edges[i] != g2.Edges[i] {
			t.Fatal("edges changed")
		}
	}
	if g2.Weighted() {
		t.Fatal("unweighted graph read back weighted")
	}
}

func TestWeightedRoundTrip(t *testing.T) {
	cfg := DefaultRMAT(128, 512, 2)
	cfg.Weighted = true
	g, err := RMAT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !g2.Weighted() {
		t.Fatal("weights lost")
	}
	for i := range g.Weights {
		if g.Weights[i] != g2.Weights[i] {
			t.Fatal("weights changed")
		}
	}
	// Cumulative weights must be rebuilt on read.
	if g2.CumWeights == nil {
		t.Fatal("cumulative weights not rebuilt")
	}
	for i := range g.CumWeights {
		if g.CumWeights[i] != g2.CumWeights[i] {
			t.Fatal("cumulative weights differ")
		}
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("NOTMAGIC-------"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestReadRejectsTruncated(t *testing.T) {
	g := Ring(16)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{4, 10, 30, len(full) - 3} {
		if _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestReadRejectsImplausibleHeader(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(magic)
	// flags=0, V=huge, E=0.
	buf.Write(make([]byte, 8)) // flags
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
	buf.Write(make([]byte, 8))
	if _, err := Read(&buf); err == nil {
		t.Fatal("implausible header accepted")
	}
}

func TestSaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.bin")
	g := Ring(64)
	if err := Save(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != 64 {
		t.Fatalf("loaded %d edges", g2.NumEdges())
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.bin")); err == nil {
		t.Fatal("missing file accepted")
	}
}
