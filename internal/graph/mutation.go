package graph

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// Dynamic-graph mutations: a deterministic, timestamped stream of edge
// inserts and deletes that the simulation applies strictly between events.
// The graph type stays "immutable" from the walkers' point of view — a
// mutation is only ever applied at an event boundary by the engine that
// owns a private Clone, never concurrently with a hop decision.
//
// Apply order is fully deterministic: an inserted edge lands at the upper
// bound of its destination's run in the (sorted) adjacency list, which is
// exactly where Builder.Build's per-vertex sort would put it, and a delete
// removes the last parallel edge of its (src, dst) pair. The per-vertex
// cumulative-weight run is recomputed left to right in the same float32
// order Builder uses, so a stream applied incrementally yields the same
// CSR arrays — bit for bit — as rebuilding the mutated edge list from
// scratch. (The one unspecified case is parallel *weighted* edges with
// distinct weights: Builder's adjacency sort is not stable, so their
// relative order is unspecified there too.)

// MutationOp names a mutation operation.
type MutationOp string

const (
	// OpInsertEdge adds one directed edge (src, dst) with the given weight
	// (weight must be 0 on unweighted graphs, positive on weighted ones).
	OpInsertEdge MutationOp = "insert"
	// OpDeleteEdge removes one directed edge (src, dst); the last parallel
	// edge of the pair when duplicates exist. Weight must be 0.
	OpDeleteEdge MutationOp = "delete"
)

// Mutation is one timestamped edge mutation. At is in simulated nanoseconds:
// a mutation at time T is visible to the first simulation event at time
// >= T and invisible to every event before it. At == 0 means "before the
// run": the mutation is visible everywhere, including to construction-time
// decisions such as hot-subgraph selection.
type Mutation struct {
	At     int64      `json:"at_ns"`
	Op     MutationOp `json:"op"`
	Src    VertexID   `json:"src"`
	Dst    VertexID   `json:"dst"`
	Weight float32    `json:"weight,omitempty"`
}

// MutationStream is a time-ordered mutation sequence. Equal timestamps
// apply in stream order.
type MutationStream []Mutation

// ValidateShape checks the graph-independent invariants of a stream:
// non-decreasing non-negative timestamps, recognized ops, and finite
// non-negative weights (zero on deletes). It never panics on arbitrary
// decoded input — the service fuzz target drives it directly.
func (ms MutationStream) ValidateShape() error {
	prev := int64(0)
	for i, m := range ms {
		if m.At < 0 {
			return fmt.Errorf("graph: mutation %d at negative time %d", i, m.At)
		}
		if m.At < prev {
			return fmt.Errorf("graph: mutation %d at %d before predecessor at %d (stream must be time-sorted)", i, m.At, prev)
		}
		prev = m.At
		switch m.Op {
		case OpInsertEdge:
			w := float64(m.Weight)
			if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
				return fmt.Errorf("graph: mutation %d has invalid weight %v", i, m.Weight)
			}
		case OpDeleteEdge:
			if m.Weight != 0 {
				return fmt.Errorf("graph: mutation %d deletes with non-zero weight %v", i, m.Weight)
			}
		default:
			return fmt.Errorf("graph: mutation %d has unknown op %q", i, m.Op)
		}
	}
	return nil
}

// Validate checks the full stream against the graph it will be applied to:
// shape, endpoint ranges, weight rules, delete-must-exist (multiset-aware
// across the stream), and — when maxDegree > 0 — that no touched vertex
// starts above or is pushed above maxDegree out-edges. The degree cap is
// how callers forbid mutations on dense vertices and density flips, both
// of which would move the frozen partition skeleton.
func (ms MutationStream) Validate(g *Graph, maxDegree uint64) error {
	if err := ms.ValidateShape(); err != nil {
		return err
	}
	if len(ms) == 0 {
		return nil
	}
	n := g.NumVertices()
	// Running per-vertex degree and per-pair parallel-edge deltas.
	degDelta := map[VertexID]int64{}
	pairDelta := map[[2]VertexID]int64{}
	for i, m := range ms {
		if m.Src >= n || m.Dst >= n {
			return fmt.Errorf("graph: mutation %d edge (%d,%d) outside %d vertices", i, m.Src, m.Dst, n)
		}
		deg := int64(g.OutDegree(m.Src)) + degDelta[m.Src]
		if maxDegree > 0 && uint64(g.OutDegree(m.Src)) > maxDegree {
			return fmt.Errorf("graph: mutation %d touches dense vertex %d (degree %d > %d)",
				i, m.Src, g.OutDegree(m.Src), maxDegree)
		}
		switch m.Op {
		case OpInsertEdge:
			if g.Weighted() {
				if m.Weight <= 0 {
					return fmt.Errorf("graph: mutation %d inserts weight %v into a weighted graph (must be > 0)", i, m.Weight)
				}
			} else if m.Weight != 0 {
				return fmt.Errorf("graph: mutation %d inserts weight %v into an unweighted graph (must be 0)", i, m.Weight)
			}
			if maxDegree > 0 && uint64(deg+1) > maxDegree {
				return fmt.Errorf("graph: mutation %d pushes vertex %d to %d out-edges, above the dense threshold %d",
					i, m.Src, deg+1, maxDegree)
			}
			degDelta[m.Src]++
			pairDelta[[2]VertexID{m.Src, m.Dst}]++
		case OpDeleteEdge:
			pair := [2]VertexID{m.Src, m.Dst}
			if int64(countParallel(g, m.Src, m.Dst))+pairDelta[pair] < 1 {
				return fmt.Errorf("graph: mutation %d deletes missing edge (%d,%d)", i, m.Src, m.Dst)
			}
			degDelta[m.Src]--
			pairDelta[pair]--
		}
	}
	return nil
}

// countParallel reports how many (src, dst) edges the graph holds, using
// the sorted adjacency invariant.
func countParallel(g *Graph, src, dst VertexID) int {
	adj := g.OutEdges(src)
	lo := sort.Search(len(adj), func(i int) bool { return adj[i] >= dst })
	hi := sort.Search(len(adj), func(i int) bool { return adj[i] > dst })
	return hi - lo
}

// NetEdges reports the stream's net edge-count change from entry `from`
// onward (inserts minus deletes).
func (ms MutationStream) NetEdges(from int) int64 {
	var net int64
	for _, m := range ms[from:] {
		if m.Op == OpInsertEdge {
			net++
		} else {
			net--
		}
	}
	return net
}

// Hash returns a SHA-256 over the stream's canonical binary encoding. The
// zero stream hashes to the zero array, so cache keys for mutation-free
// jobs are unchanged by the field's introduction.
func (ms MutationStream) Hash() [sha256.Size]byte {
	if len(ms) == 0 {
		return [sha256.Size]byte{}
	}
	h := sha256.New()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	for _, m := range ms {
		put(uint64(m.At))
		if m.Op == OpInsertEdge {
			put(0)
		} else {
			put(1)
		}
		put(m.Src)
		put(m.Dst)
		put(uint64(math.Float32bits(m.Weight)))
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// Clone returns a deep copy of the graph. Engines that apply a mutation
// stream clone first so shared graphs (dataset registries, caches) are
// never mutated in place.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		Offsets: append([]uint64(nil), g.Offsets...),
		Edges:   append([]VertexID(nil), g.Edges...),
	}
	if g.Weights != nil {
		c.Weights = append([]float32(nil), g.Weights...)
	}
	if g.CumWeights != nil {
		c.CumWeights = append([]float32(nil), g.CumWeights...)
	}
	return c
}

// ApplyMutation applies one validated mutation in place, keeping every CSR
// invariant: the adjacency stays sorted, Offsets stay monotone, and the
// source vertex's cumulative-weight run is recomputed left to right in
// Builder order. Callers own the graph exclusively (see Clone).
func (g *Graph) ApplyMutation(m Mutation) error {
	n := g.NumVertices()
	if m.Src >= n || m.Dst >= n {
		return fmt.Errorf("graph: mutation edge (%d,%d) outside %d vertices", m.Src, m.Dst, n)
	}
	switch m.Op {
	case OpInsertEdge:
		if g.Weighted() == (m.Weight == 0) {
			return fmt.Errorf("graph: insert weight %v does not match weighted=%v", m.Weight, g.Weighted())
		}
		adj := g.OutEdges(m.Src)
		// Upper bound of the equal-dst run: where Builder's sort would
		// place a fresh duplicate.
		at := g.Offsets[m.Src] + uint64(sort.Search(len(adj), func(i int) bool { return adj[i] > m.Dst }))
		g.Edges = spliceIn(g.Edges, at, m.Dst)
		if g.Weighted() {
			g.Weights = spliceIn(g.Weights, at, m.Weight)
			g.CumWeights = spliceIn(g.CumWeights, at, 0)
		}
		for v := m.Src + 1; v <= n; v++ {
			g.Offsets[v]++
		}
	case OpDeleteEdge:
		adj := g.OutEdges(m.Src)
		hi := sort.Search(len(adj), func(i int) bool { return adj[i] > m.Dst })
		if hi == 0 || adj[hi-1] != m.Dst {
			return fmt.Errorf("graph: delete of missing edge (%d,%d)", m.Src, m.Dst)
		}
		at := g.Offsets[m.Src] + uint64(hi-1)
		g.Edges = spliceOut(g.Edges, at)
		if g.Weighted() {
			g.Weights = spliceOut(g.Weights, at)
			g.CumWeights = spliceOut(g.CumWeights, at)
		}
		for v := m.Src + 1; v <= n; v++ {
			g.Offsets[v]--
		}
	default:
		return fmt.Errorf("graph: unknown mutation op %q", m.Op)
	}
	if g.Weighted() {
		// Recompute the touched vertex's cumulative run in the exact
		// float32 accumulation order Builder.Build uses.
		var acc float32
		for i := g.Offsets[m.Src]; i < g.Offsets[m.Src+1]; i++ {
			acc += g.Weights[i]
			g.CumWeights[i] = acc
		}
	}
	return nil
}

// spliceIn inserts v at index at, shifting the tail right.
func spliceIn[T any](s []T, at uint64, v T) []T {
	var zero T
	s = append(s, zero)
	copy(s[at+1:], s[at:])
	s[at] = v
	return s
}

// spliceOut removes the element at index at, shifting the tail left.
func spliceOut[T any](s []T, at uint64) []T {
	copy(s[at:], s[at+1:])
	return s[:len(s)-1]
}
