package graph

import (
	"testing"
)

// mutatedRebuild applies ms to a fresh Builder edge list (the "full
// rebuild" leg the incremental path must match bit for bit).
func mutatedRebuild(t *testing.T, numVertices uint64, edges []Edge, ms MutationStream, weighted bool) *Graph {
	t.Helper()
	list := append([]Edge(nil), edges...)
	for _, m := range ms {
		switch m.Op {
		case OpInsertEdge:
			w := m.Weight
			if !weighted {
				w = 1
			}
			list = append(list, Edge{Src: m.Src, Dst: m.Dst, Weight: w})
		case OpDeleteEdge:
			// Remove one (src, dst) instance; which one is irrelevant for
			// identical-weight duplicates, and the tests avoid
			// distinct-weight duplicates (Builder's sort is unstable there).
			for i := len(list) - 1; i >= 0; i-- {
				if list[i].Src == m.Src && list[i].Dst == m.Dst {
					list = append(list[:i], list[i+1:]...)
					break
				}
			}
		}
	}
	b := NewBuilder(numVertices)
	for _, e := range list {
		if weighted {
			b.AddWeightedEdge(e.Src, e.Dst, e.Weight)
		} else {
			b.AddEdge(e.Src, e.Dst)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	return g
}

func graphsEqual(t *testing.T, got, want *Graph) {
	t.Helper()
	if len(got.Offsets) != len(want.Offsets) {
		t.Fatalf("offsets length %d != %d", len(got.Offsets), len(want.Offsets))
	}
	for i := range got.Offsets {
		if got.Offsets[i] != want.Offsets[i] {
			t.Fatalf("offsets[%d] = %d, want %d", i, got.Offsets[i], want.Offsets[i])
		}
	}
	if len(got.Edges) != len(want.Edges) {
		t.Fatalf("edges length %d != %d", len(got.Edges), len(want.Edges))
	}
	for i := range got.Edges {
		if got.Edges[i] != want.Edges[i] {
			t.Fatalf("edges[%d] = %d, want %d", i, got.Edges[i], want.Edges[i])
		}
	}
	if (got.Weights == nil) != (want.Weights == nil) {
		t.Fatalf("weighted mismatch")
	}
	for i := range got.Weights {
		if got.Weights[i] != want.Weights[i] {
			t.Fatalf("weights[%d] = %v, want %v", i, got.Weights[i], want.Weights[i])
		}
		if got.CumWeights[i] != want.CumWeights[i] {
			t.Fatalf("cumweights[%d] = %v, want %v", i, got.CumWeights[i], want.CumWeights[i])
		}
	}
}

func testEdgesUnweighted() (uint64, []Edge) {
	return 8, []Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 3}, {Src: 0, Dst: 5},
		{Src: 1, Dst: 2}, {Src: 1, Dst: 2}, // parallel pair
		{Src: 2, Dst: 0}, {Src: 2, Dst: 7},
		{Src: 3, Dst: 4}, {Src: 4, Dst: 5}, {Src: 5, Dst: 6},
		{Src: 6, Dst: 7}, {Src: 7, Dst: 0},
	}
}

// TestApplyMutationMatchesRebuild is the package-level half of the
// metamorphic proof: applying a stream in place must produce the same CSR
// arrays as rebuilding the mutated edge list with Builder.
func TestApplyMutationMatchesRebuild(t *testing.T) {
	nv, edges := testEdgesUnweighted()
	ms := MutationStream{
		{At: 0, Op: OpInsertEdge, Src: 0, Dst: 7},
		{At: 0, Op: OpDeleteEdge, Src: 1, Dst: 2},
		{At: 5, Op: OpInsertEdge, Src: 4, Dst: 0},
		{At: 5, Op: OpInsertEdge, Src: 4, Dst: 2},
		{At: 9, Op: OpDeleteEdge, Src: 0, Dst: 3},
		{At: 12, Op: OpInsertEdge, Src: 7, Dst: 3},
		{At: 12, Op: OpDeleteEdge, Src: 7, Dst: 3},
	}
	base, err := FromEdges(nv, edges)
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.Validate(base, 0); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	got := base.Clone()
	for _, m := range ms {
		if err := got.ApplyMutation(m); err != nil {
			t.Fatalf("ApplyMutation(%+v): %v", m, err)
		}
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("mutated graph invalid: %v", err)
	}
	graphsEqual(t, got, mutatedRebuild(t, nv, edges, ms, false))
	// The clone protected the original.
	orig, _ := FromEdges(nv, edges)
	graphsEqual(t, base, orig)
}

func TestApplyMutationMatchesRebuildWeighted(t *testing.T) {
	nv := uint64(6)
	b := NewBuilder(nv)
	edges := []Edge{
		{Src: 0, Dst: 1, Weight: 2}, {Src: 0, Dst: 2, Weight: 0.5},
		{Src: 1, Dst: 3, Weight: 1.25}, {Src: 2, Dst: 4, Weight: 3},
		{Src: 3, Dst: 5, Weight: 0.75}, {Src: 4, Dst: 0, Weight: 1},
		{Src: 5, Dst: 1, Weight: 2.5},
	}
	for _, e := range edges {
		b.AddWeightedEdge(e.Src, e.Dst, e.Weight)
	}
	base, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ms := MutationStream{
		{At: 0, Op: OpInsertEdge, Src: 0, Dst: 4, Weight: 1.5},
		{At: 3, Op: OpDeleteEdge, Src: 0, Dst: 2},
		{At: 3, Op: OpInsertEdge, Src: 5, Dst: 0, Weight: 0.25},
		{At: 7, Op: OpInsertEdge, Src: 2, Dst: 1, Weight: 4},
	}
	if err := ms.Validate(base, 0); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	got := base.Clone()
	for _, m := range ms {
		if err := got.ApplyMutation(m); err != nil {
			t.Fatalf("ApplyMutation(%+v): %v", m, err)
		}
	}
	graphsEqual(t, got, mutatedRebuild(t, nv, edges, ms, true))
}

// TestValidateMutationsRejects is the table of submission-time rejections:
// every bad stream must fail validation up front, never crash an apply.
func TestValidateMutationsRejects(t *testing.T) {
	nv, edges := testEdgesUnweighted()
	g, err := FromEdges(nv, edges)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		ms   MutationStream
		deg  uint64
	}{
		{"negative time", MutationStream{{At: -1, Op: OpInsertEdge, Src: 0, Dst: 1}}, 0},
		{"unsorted", MutationStream{{At: 5, Op: OpInsertEdge, Src: 0, Dst: 1}, {At: 4, Op: OpInsertEdge, Src: 0, Dst: 2}}, 0},
		{"unknown op", MutationStream{{At: 0, Op: "upsert", Src: 0, Dst: 1}}, 0},
		{"src out of range", MutationStream{{At: 0, Op: OpInsertEdge, Src: nv, Dst: 1}}, 0},
		{"dst out of range", MutationStream{{At: 0, Op: OpInsertEdge, Src: 0, Dst: nv}}, 0},
		{"weight on unweighted", MutationStream{{At: 0, Op: OpInsertEdge, Src: 0, Dst: 1, Weight: 2}}, 0},
		{"weight on delete", MutationStream{{At: 0, Op: OpDeleteEdge, Src: 0, Dst: 1, Weight: 1}}, 0},
		{"delete missing edge", MutationStream{{At: 0, Op: OpDeleteEdge, Src: 0, Dst: 2}}, 0},
		{"delete beyond multiplicity", MutationStream{
			{At: 0, Op: OpDeleteEdge, Src: 1, Dst: 2},
			{At: 1, Op: OpDeleteEdge, Src: 1, Dst: 2},
			{At: 2, Op: OpDeleteEdge, Src: 1, Dst: 2},
		}, 0},
		{"degree cap", MutationStream{
			{At: 0, Op: OpInsertEdge, Src: 0, Dst: 6},
			{At: 0, Op: OpInsertEdge, Src: 0, Dst: 7},
		}, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.ms.Validate(g, tc.deg); err == nil {
				t.Fatalf("stream validated but should not have: %+v", tc.ms)
			}
		})
	}
	// Sanity: delete-then-reinsert of the parallel pair is legal, as is a
	// delete made possible by an earlier insert in the same stream.
	ok := MutationStream{
		{At: 0, Op: OpDeleteEdge, Src: 1, Dst: 2},
		{At: 0, Op: OpDeleteEdge, Src: 1, Dst: 2},
		{At: 1, Op: OpInsertEdge, Src: 1, Dst: 4},
		{At: 1, Op: OpDeleteEdge, Src: 1, Dst: 4},
	}
	if err := ok.Validate(g, 0); err != nil {
		t.Fatalf("legal stream rejected: %v", err)
	}
}

func TestMutationStreamHash(t *testing.T) {
	var empty MutationStream
	if empty.Hash() != (MutationStream{}).Hash() {
		t.Fatal("empty-stream hashes differ")
	}
	if empty.Hash() != [32]byte{} {
		t.Fatal("empty stream must hash to the zero array (cache-key compatibility)")
	}
	a := MutationStream{{At: 1, Op: OpInsertEdge, Src: 2, Dst: 3}}
	b := MutationStream{{At: 1, Op: OpInsertEdge, Src: 2, Dst: 3}}
	if a.Hash() != b.Hash() {
		t.Fatal("identical streams hash differently")
	}
	c := MutationStream{{At: 1, Op: OpDeleteEdge, Src: 2, Dst: 3}}
	d := MutationStream{{At: 2, Op: OpInsertEdge, Src: 2, Dst: 3}}
	if a.Hash() == c.Hash() || a.Hash() == d.Hash() {
		t.Fatal("distinct streams collide")
	}
	if a.Hash() == empty.Hash() {
		t.Fatal("non-empty stream hashed to the zero array")
	}
}

func TestNetEdges(t *testing.T) {
	ms := MutationStream{
		{At: 0, Op: OpInsertEdge, Src: 0, Dst: 1},
		{At: 1, Op: OpInsertEdge, Src: 0, Dst: 2},
		{At: 2, Op: OpDeleteEdge, Src: 0, Dst: 1},
	}
	if got := ms.NetEdges(0); got != 1 {
		t.Fatalf("NetEdges(0) = %d, want 1", got)
	}
	if got := ms.NetEdges(2); got != -1 {
		t.Fatalf("NetEdges(2) = %d, want -1", got)
	}
}
