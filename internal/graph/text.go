package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadEdgeList parses the whitespace-separated text edge-list format the
// paper's datasets ship in ("src dst" or "src dst weight" per line; '#'
// and '%' lines are comments). Vertex IDs may be sparse; they are used
// as-is, so numVertices is max(ID)+1.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []Edge
	var maxID VertexID
	weighted := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: need at least 2 fields", lineNo)
		}
		src, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad source: %w", lineNo, err)
		}
		dst, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad destination: %w", lineNo, err)
		}
		w := float32(1)
		if len(fields) >= 3 {
			wf, err := strconv.ParseFloat(fields[2], 32)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight: %w", lineNo, err)
			}
			if wf < 0 {
				return nil, fmt.Errorf("graph: line %d: negative weight", lineNo)
			}
			w = float32(wf)
			weighted = true
		}
		if src > maxID {
			maxID = src
		}
		if dst > maxID {
			maxID = dst
		}
		edges = append(edges, Edge{Src: src, Dst: dst, Weight: w})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	if len(edges) == 0 {
		return nil, fmt.Errorf("graph: empty edge list")
	}
	b := NewBuilder(maxID + 1)
	for _, e := range edges {
		if weighted {
			b.AddWeightedEdge(e.Src, e.Dst, e.Weight)
		} else {
			b.AddEdge(e.Src, e.Dst)
		}
	}
	return b.Build()
}

// WriteEdgeList writes the graph as a text edge list (with weights when
// present), the inverse of ReadEdgeList.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	fmt.Fprintf(bw, "# %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
	for v := VertexID(0); v < g.NumVertices(); v++ {
		edges := g.OutEdges(v)
		weights := g.OutWeights(v)
		for i, d := range edges {
			if weights != nil {
				fmt.Fprintf(bw, "%d %d %g\n", v, d, weights[i])
			} else {
				fmt.Fprintf(bw, "%d %d\n", v, d)
			}
		}
	}
	return bw.Flush()
}

// Reverse returns the transpose graph (every edge u->v becomes v->u,
// weights preserved). SimRank's in-link semantics and in-degree-based
// analyses use it.
func Reverse(g *Graph) *Graph {
	b := NewBuilder(g.NumVertices())
	for v := VertexID(0); v < g.NumVertices(); v++ {
		edges := g.OutEdges(v)
		weights := g.OutWeights(v)
		for i, d := range edges {
			if weights != nil {
				b.AddWeightedEdge(d, v, weights[i])
			} else {
				b.AddEdge(d, v)
			}
		}
	}
	rg, err := b.Build()
	if err != nil {
		// Cannot happen: all endpoints come from a valid graph.
		panic(err)
	}
	return rg
}
