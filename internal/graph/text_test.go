package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadEdgeListBasic(t *testing.T) {
	in := `# comment
% also comment
0 1
1 2

2 0
`
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got %d vertices %d edges", g.NumVertices(), g.NumEdges())
	}
	if g.Weighted() {
		t.Fatal("unweighted input read as weighted")
	}
}

func TestReadEdgeListWeighted(t *testing.T) {
	in := "0 1 2.5\n1 0 0.5\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !g.Weighted() {
		t.Fatal("weights lost")
	}
	if g.OutWeights(0)[0] != 2.5 {
		t.Fatalf("weight = %v", g.OutWeights(0)[0])
	}
}

func TestReadEdgeListSparseIDs(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 100\n100 7\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 101 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"",             // empty
		"0\n",          // one field
		"x 1\n",        // bad src
		"1 y\n",        // bad dst
		"1 2 notnum\n", // bad weight
		"1 2 -3\n",     // negative weight
	}
	for i, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g, _ := RMAT(DefaultRMAT(256, 2048, 1))
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("edges %d != %d", g2.NumEdges(), g.NumEdges())
	}
	for v := VertexID(0); v < g.NumVertices(); v++ {
		a, b := g.OutEdges(v), g2.OutEdges(v)
		if len(a) != len(b) {
			t.Fatalf("vertex %d degree changed", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d adjacency changed", v)
			}
		}
	}
}

func TestEdgeListWeightedRoundTrip(t *testing.T) {
	cfg := DefaultRMAT(128, 512, 2)
	cfg.Weighted = true
	g, _ := RMAT(cfg)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !g2.Weighted() {
		t.Fatal("weights lost in text round trip")
	}
}

func TestReverse(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(3, 0)
	g, _ := b.Build()
	r := Reverse(g)
	if r.NumEdges() != 3 {
		t.Fatal("edge count changed")
	}
	if r.OutDegree(1) != 1 || r.OutEdges(1)[0] != 0 {
		t.Fatal("reverse edge 1->0 missing")
	}
	if r.OutDegree(0) != 1 || r.OutEdges(0)[0] != 3 {
		t.Fatal("reverse edge 0->3 missing")
	}
	// Double reverse is the original.
	rr := Reverse(r)
	for v := VertexID(0); v < 4; v++ {
		a, b := g.OutEdges(v), rr.OutEdges(v)
		if len(a) != len(b) {
			t.Fatal("double reverse changed degrees")
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("double reverse changed edges")
			}
		}
	}
}

func TestReverseWeighted(t *testing.T) {
	b := NewBuilder(2)
	b.AddWeightedEdge(0, 1, 7)
	g, _ := b.Build()
	r := Reverse(g)
	if !r.Weighted() || r.OutWeights(1)[0] != 7 {
		t.Fatal("weight not carried through reverse")
	}
}

func TestReverseInOutDegreeDuality(t *testing.T) {
	g, _ := RMAT(DefaultRMAT(512, 4096, 3))
	r := Reverse(g)
	in := InDegrees(g)
	for v := VertexID(0); v < g.NumVertices(); v++ {
		if r.OutDegree(v) != in[v] {
			t.Fatalf("vertex %d: reverse out-degree %d != in-degree %d", v, r.OutDegree(v), in[v])
		}
	}
}
