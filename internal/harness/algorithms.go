package harness

import (
	"context"
	"fmt"

	"flashwalker/internal/core"
	"flashwalker/internal/graph"
	"flashwalker/internal/metrics"
	"flashwalker/internal/sim"
	"flashwalker/internal/walk"
)

// AlgorithmRow is one walk-algorithm family run through the in-storage
// accelerator — an extension beyond the paper's evaluation (which fixes
// unbiased walks of length 6) demonstrating the engine's support for
// every §II-A walk class.
type AlgorithmRow struct {
	Name    string
	Spec    walk.Spec
	Walks   int
	Time    sim.Time
	Hops    uint64
	HopRate float64 // hops per simulated second
	Probes  uint64  // edge-filter probes (second-order only)
}

// ExtAlgorithms runs unbiased, biased (ITS), restart (PPR), and
// second-order (node2vec) walks through FlashWalker on a weighted
// Friendster-shaped graph and reports the relative cost of each sampling
// scheme. The graph is generated once up front; the four algorithm runs
// then sweep as independent grid points on workers goroutines.
func ExtAlgorithms(ctx context.Context, scale float64, seed uint64, workers int) ([]AlgorithmRow, error) {
	// A weighted FS-S-shaped graph (biased walks need weights; the
	// unweighted kinds ignore them).
	cfg := graph.RMATConfig{
		NumVertices: 16_016, NumEdges: 881_000,
		A: 0.48, B: 0.22, C: 0.22, D: 0.08,
		Noise: 0.05, RemoveDuplicates: true, Weighted: true, Seed: 42,
	}
	g, err := graph.RMAT(cfg)
	if err != nil {
		return nil, err
	}
	d := Dataset{Name: "FS-S-weighted", IDBytes: 4, SubgraphBytes: 4 << 10}
	walks := scaleWalks(50_000, scale)

	specs := []struct {
		name string
		spec walk.Spec
	}{
		{"unbiased", walk.Spec{Kind: walk.Unbiased, Length: WalkLength}},
		{"biased (ITS)", walk.Spec{Kind: walk.Biased, Length: WalkLength}},
		{"restart (PPR)", walk.Spec{Kind: walk.Restart, Length: 64, StopProb: 1.0 / WalkLength}},
		{"second-order (p=0.5,q=2)", walk.Spec{Kind: walk.SecondOrder, Length: WalkLength, P: 0.5, Q: 2}},
	}
	rows := make([]AlgorithmRow, len(specs))
	err = sweep(ctx, workers, len(specs), func(i int) error {
		s := specs[i]
		rc := FlashWalkerConfig(d, core.AllOptions(), walks, seed)
		rc.Spec = s.spec
		e, err := core.NewEngine(g, rc)
		if err != nil {
			return fmt.Errorf("algorithms %s: %w", s.name, err)
		}
		res, err := e.RunContext(ctx)
		if err != nil {
			return fmt.Errorf("algorithms %s: %w", s.name, err)
		}
		rows[i] = AlgorithmRow{
			Name: s.name, Spec: s.spec, Walks: walks,
			Time: res.Time, Hops: res.Hops,
			HopRate: res.HopRate(), Probes: res.FilterProbes,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatExtAlgorithms renders the algorithm comparison.
func FormatExtAlgorithms(rows []AlgorithmRow) string {
	t := &metrics.Table{
		Title:   "Extension: walk-algorithm families on the in-storage accelerator",
		Headers: []string{"algorithm", "walks", "time", "hops", "Mhops/s", "filter probes"},
	}
	for _, r := range rows {
		t.AddRow(r.Name, fmt.Sprint(r.Walks), r.Time.String(), fmt.Sprint(r.Hops),
			fmt.Sprintf("%.1f", r.HopRate/1e6), fmt.Sprint(r.Probes))
	}
	return t.Render()
}
