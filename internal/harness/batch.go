package harness

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"time"

	"flashwalker/internal/core"
	"flashwalker/internal/metrics"
	"flashwalker/internal/sim"
	"flashwalker/internal/walk"
)

// BatchRow is one kernel mode's outcome in the batched-update-kernel
// extension experiment: the same figure-scale second-order workload decided
// per-walk versus in locality-sorted batches (core/batch.go), measured in
// HOST wall-clock. The simulated timeline is bit-identical by construction,
// so the only axis that can move is how fast the host retires it.
type BatchRow struct {
	Kernel    string // "per-walk" or "batched"
	Walks     int
	Wall      time.Duration
	SimTime   sim.Time
	Hops      uint64
	WallMhops float64 // simulated hops retired per wall-clock second, millions
	Speedup   float64 // per-walk wall time / this wall time
}

// ExtBatch runs the FS-S second-order workload with the batched update
// kernel off and then on, sequentially on an otherwise idle process so the
// wall-clock numbers are comparable, and enforces the kernel's equivalence
// guarantee in production form: if batching changes any outcome — walks
// completed, hops, the simulated finish time, or the filter-probe count —
// the experiment fails rather than reporting a meaningless speedup.
func ExtBatch(ctx context.Context, scale float64, seed uint64) ([]BatchRow, error) {
	d, err := DatasetByName("FS-S")
	if err != nil {
		return nil, err
	}
	g, err := d.Graph()
	if err != nil {
		return nil, err
	}
	walks := scaleWalks(d.DefaultWalks, scale)

	run := func(disable bool) (*core.Result, time.Duration, error) {
		rc := FlashWalkerConfig(d, core.AllOptions(), walks, seed)
		rc.Spec = walk.Spec{Kind: walk.SecondOrder, Length: 6, P: 0.5, Q: 2}
		rc.Cfg.DisableBatchKernel = disable
		e, err := core.NewEngine(g, rc)
		if err != nil {
			return nil, 0, err
		}
		start := time.Now()
		res, err := e.RunContext(ctx)
		return res, time.Since(start), err
	}

	perWalk, perWalkWall, err := run(true)
	if err != nil {
		return nil, fmt.Errorf("per-walk kernel: %w", err)
	}
	batched, batchedWall, err := run(false)
	if err != nil {
		return nil, fmt.Errorf("batched kernel: %w", err)
	}

	if batched.Completed != perWalk.Completed || batched.Hops != perWalk.Hops ||
		batched.Time != perWalk.Time || batched.FilterProbes != perWalk.FilterProbes {
		return nil, fmt.Errorf("batched kernel diverged from per-walk: completed %d vs %d, hops %d vs %d, time %v vs %v, probes %d vs %d",
			batched.Completed, perWalk.Completed, batched.Hops, perWalk.Hops,
			batched.Time, perWalk.Time, batched.FilterProbes, perWalk.FilterProbes)
	}

	row := func(kernel string, res *core.Result, wall time.Duration) BatchRow {
		return BatchRow{
			Kernel: kernel, Walks: walks,
			Wall: wall, SimTime: res.Time, Hops: res.Hops,
			WallMhops: float64(res.Hops) / 1e6 / wall.Seconds(),
			Speedup:   float64(perWalkWall) / float64(wall),
		}
	}
	return []BatchRow{
		row("per-walk", perWalk, perWalkWall),
		row("batched", batched, batchedWall),
	}, nil
}

// FormatExtBatch renders the kernel before/after comparison.
func FormatExtBatch(rows []BatchRow) string {
	t := &metrics.Table{
		Title:   "Extension: batched update kernel (FS-S second-order), identical walk outcomes",
		Headers: []string{"kernel", "walks", "wall", "sim time", "hops", "wall-Mhops/s", "speedup"},
	}
	for _, r := range rows {
		t.AddRow(r.Kernel, fmt.Sprint(r.Walks),
			r.Wall.Round(time.Millisecond).String(), r.SimTime.String(),
			fmt.Sprint(r.Hops), fmt.Sprintf("%.3f", r.WallMhops),
			fmt.Sprintf("%.3fx", r.Speedup))
	}
	return t.Render()
}

// BatchCSV writes the kernel-comparison rows as CSV.
func BatchCSV(w io.Writer, rows []BatchRow) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			r.Kernel, strconv.Itoa(r.Walks),
			strconv.FormatInt(r.Wall.Nanoseconds(), 10), ns(r.SimTime),
			strconv.FormatUint(r.Hops, 10), f(r.WallMhops), f(r.Speedup),
		}
	}
	return writeCSV(w, []string{
		"kernel", "walks", "wall_ns", "sim_time_ns", "hops", "wall_mhops_per_s", "speedup",
	}, out)
}
