package harness

import (
	"context"
	"fmt"
	"io"
	"strconv"

	"flashwalker/internal/core"
	"flashwalker/internal/metrics"
	"flashwalker/internal/sim"
)

// BoardRow is one board count's outcome on the multi-board dataset — an
// extension experiment measuring how end-to-end time and hop rate scale
// with the array size while walk outcomes stay bit-identical.
type BoardRow struct {
	Boards        int
	Walks         int
	Time          sim.Time
	HopRate       float64 // hops per simulated second
	Speedup       float64 // single-board time / this time
	FabricWalks   uint64
	FabricBatches uint64
	FabricBytes   int64
}

// ExtBoardCounts is the board-count sweep of the array extension
// experiment.
var ExtBoardCounts = []int{1, 2, 4, 8}

// ExtBoards runs the multi-board dataset (MB-S) at each board count, one
// count per grid point on workers goroutines, and enforces the array's
// metamorphic guarantee in production form: if the board count changes any
// walk outcome, the sweep fails rather than reporting a corrupted scaling
// curve.
func ExtBoards(ctx context.Context, scale float64, seed uint64, workers int) ([]BoardRow, error) {
	d, err := DatasetByName("MB-S")
	if err != nil {
		return nil, err
	}
	walks := scaleWalks(d.DefaultWalks, scale)
	rows := make([]BoardRow, len(ExtBoardCounts))
	results := make([]*core.Result, len(ExtBoardCounts))
	err = sweep(ctx, workers, len(ExtBoardCounts), func(i int) error {
		nb := ExtBoardCounts[i]
		res, err := RunFlashWalkerBoards(ctx, d, core.AllOptions(), walks, nb, seed)
		if err != nil {
			return fmt.Errorf("boards=%d: %w", nb, err)
		}
		results[i] = res
		rows[i] = BoardRow{
			Boards: nb, Walks: walks,
			Time: res.Time, HopRate: res.HopRate(),
			FabricWalks:   res.FabricWalks,
			FabricBatches: res.FabricBatches,
			FabricBytes:   res.FabricBytes,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	base := results[0]
	for i, res := range results {
		if res.Completed != base.Completed || res.Hops != base.Hops {
			return nil, fmt.Errorf("boards %d: outcomes diverged from single-board (completed %d vs %d, hops %d vs %d)",
				rows[i].Boards, res.Completed, base.Completed, res.Hops, base.Hops)
		}
		rows[i].Speedup = float64(base.Time) / float64(res.Time)
	}
	return rows, nil
}

// FormatExtBoards renders the board-scaling comparison.
func FormatExtBoards(rows []BoardRow) string {
	t := &metrics.Table{
		Title:   "Extension: multi-board SSD array scaling (MB-S), identical walk outcomes",
		Headers: []string{"boards", "walks", "time", "hops/s", "speedup", "fabric walks", "fabric bytes"},
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprint(r.Boards), fmt.Sprint(r.Walks),
			r.Time.String(), fmt.Sprintf("%.2fM", r.HopRate/1e6),
			fmt.Sprintf("%.3fx", r.Speedup),
			fmt.Sprint(r.FabricWalks), metrics.FormatBytes(r.FabricBytes))
	}
	return t.Render()
}

// BoardsCSV writes the board-scaling rows as CSV.
func BoardsCSV(w io.Writer, rows []BoardRow) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			strconv.Itoa(r.Boards), strconv.Itoa(r.Walks),
			ns(r.Time), f(r.HopRate), f(r.Speedup),
			strconv.FormatUint(r.FabricWalks, 10),
			strconv.FormatUint(r.FabricBatches, 10),
			strconv.FormatInt(r.FabricBytes, 10),
		}
	}
	return writeCSV(w, []string{
		"boards", "walks", "time_ns", "hop_rate", "speedup",
		"fabric_walks", "fabric_batches", "fabric_bytes",
	}, out)
}
