package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"flashwalker/internal/sim"
)

// CSV export: each figure's rows in a machine-readable form so external
// plotting tools can redraw the paper's charts.

func writeCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string   { return strconv.FormatFloat(v, 'g', 8, 64) }
func ns(t sim.Time) string { return strconv.FormatInt(int64(t), 10) }

// Fig1CSV writes Figure 1 rows as CSV.
func Fig1CSV(w io.Writer, rows []Fig1Row) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			strconv.Itoa(r.Walks), ns(r.Total),
			f(r.LoadGraph), f(r.Update), f(r.WalkIO),
		}
	}
	return writeCSV(w, []string{"walks", "total_ns", "load_graph_frac", "update_frac", "walk_io_frac"}, out)
}

// Fig5CSV writes Figure 5 rows as CSV.
func Fig5CSV(w io.Writer, rows []Fig5Row) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			r.Dataset, strconv.Itoa(r.Walks),
			ns(r.FWTime), ns(r.GWTime), f(r.Speedup),
		}
	}
	return writeCSV(w, []string{"dataset", "walks", "flashwalker_ns", "graphwalker_ns", "speedup"}, out)
}

// Fig6CSV writes Figure 6 rows as CSV.
func Fig6CSV(w io.Writer, rows []Fig6Row) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			r.Dataset, strconv.Itoa(r.Walks),
			strconv.FormatInt(r.FWReadBytes, 10), strconv.FormatInt(r.GWReadBytes, 10),
			f(r.TrafficReduction), f(r.FWBandwidth), f(r.GWBandwidth), f(r.BandwidthGain),
		}
	}
	return writeCSV(w, []string{
		"dataset", "walks", "fw_read_bytes", "gw_read_bytes",
		"traffic_reduction", "fw_bw_bps", "gw_bw_bps", "bw_gain",
	}, out)
}

// Fig7CSV writes Figure 7 rows as CSV.
func Fig7CSV(w io.Writer, rows []Fig7Row) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Dataset, r.MemLabel, strconv.FormatInt(r.MemBytes, 10), f(r.Speedup)}
	}
	return writeCSV(w, []string{"dataset", "gw_memory", "gw_memory_bytes", "speedup"}, out)
}

// Fig8CSV writes a Figure 8 series as CSV (one row per bin).
func Fig8CSV(w io.Writer, s *Fig8Series) error {
	out := make([][]string, len(s.ReadBW))
	for i := range s.ReadBW {
		out[i] = []string{
			ns(sim.Time(i) * s.Bin),
			f(s.ReadBW[i]), f(s.WriteBW[i]), f(s.ChanBW[i]), f(s.Progress[i]),
		}
	}
	return writeCSV(w, []string{"t_ns", "read_bps", "write_bps", "channel_bps", "progress"}, out)
}

// Fig9CSV writes Figure 9 rows as CSV.
func Fig9CSV(w io.Writer, rows []Fig9Row) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			r.Dataset, strconv.Itoa(r.Walks), ns(r.BaseTime),
			f(r.WQ), f(r.WQHS), f(r.WQHSSS),
		}
	}
	return writeCSV(w, []string{"dataset", "walks", "baseline_ns", "wq", "wq_hs", "wq_hs_ss"}, out)
}

// EnergyCSV writes the energy-extension rows as CSV.
func EnergyCSV(w io.Writer, rows []EnergyRow) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Dataset, strconv.Itoa(r.Walks), f(r.FWJ), f(r.GWJ), f(r.Ratio)}
	}
	return writeCSV(w, []string{"dataset", "walks", "fw_joules", "gw_joules", "ratio"}, out)
}

// Table4CSV writes Table IV rows as CSV.
func Table4CSV(w io.Writer, rows []Table4Row) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			r.Name, r.Mirrors,
			strconv.FormatUint(r.V, 10), strconv.FormatUint(r.E, 10),
			strconv.FormatInt(r.CSRBytes, 10), strconv.FormatInt(r.TextEst, 10),
			strconv.FormatUint(r.MaxDeg, 10), fmt.Sprintf("%.4f", r.Gini),
		}
	}
	return writeCSV(w, []string{
		"dataset", "mirrors", "vertices", "edges", "csr_bytes", "text_bytes_est", "max_out_degree", "gini",
	}, out)
}
