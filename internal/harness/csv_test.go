package harness

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"flashwalker/internal/core"
	"flashwalker/internal/sim"
)

func parseCSV(t *testing.T, buf *bytes.Buffer) [][]string {
	t.Helper()
	rows, err := csv.NewReader(buf).ReadAll()
	if err != nil {
		t.Fatalf("parse CSV: %v", err)
	}
	return rows
}

func TestFig1CSV(t *testing.T) {
	rows := []Fig1Row{{Walks: 100, Total: sim.Millisecond, LoadGraph: 0.7, Update: 0.2, WalkIO: 0.1}}
	var buf bytes.Buffer
	if err := Fig1CSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	got := parseCSV(t, &buf)
	if len(got) != 2 || got[1][0] != "100" || got[1][1] != "1000000" {
		t.Fatalf("csv = %v", got)
	}
}

func TestFig5CSV(t *testing.T) {
	rows := []Fig5Row{{Dataset: "TT-S", Walks: 10, FWTime: 1, GWTime: 5, Speedup: 5}}
	var buf bytes.Buffer
	if err := Fig5CSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	got := parseCSV(t, &buf)
	if got[1][0] != "TT-S" || got[1][4] != "5" {
		t.Fatalf("csv = %v", got)
	}
}

func TestFig6CSV(t *testing.T) {
	rows := []Fig6Row{{Dataset: "FS-S", Walks: 5, FWReadBytes: 100, GWReadBytes: 200, TrafficReduction: 2}}
	var buf bytes.Buffer
	if err := Fig6CSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	got := parseCSV(t, &buf)
	if got[1][2] != "100" || got[1][4] != "2" {
		t.Fatalf("csv = %v", got)
	}
}

func TestFig7CSV(t *testing.T) {
	rows := []Fig7Row{{Dataset: "CW-S", MemLabel: "8GB", MemBytes: GWMem8GB, Speedup: 3.5}}
	var buf bytes.Buffer
	if err := Fig7CSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	got := parseCSV(t, &buf)
	if got[1][1] != "8GB" || got[1][3] != "3.5" {
		t.Fatalf("csv = %v", got)
	}
}

func TestFig8CSV(t *testing.T) {
	s := &Fig8Series{
		Bin:      sim.Microsecond,
		ReadBW:   []float64{1, 2},
		WriteBW:  []float64{3, 4},
		ChanBW:   []float64{5, 6},
		Progress: []float64{0.5, 1},
	}
	var buf bytes.Buffer
	if err := Fig8CSV(&buf, s); err != nil {
		t.Fatal(err)
	}
	got := parseCSV(t, &buf)
	if len(got) != 3 || got[2][0] != "1000" || got[2][4] != "1" {
		t.Fatalf("csv = %v", got)
	}
}

func TestFig9CSV(t *testing.T) {
	rows := []Fig9Row{{Dataset: "R2B-S", Walks: 7, BaseTime: 2, WQ: 1.1, WQHS: 1.2, WQHSSS: 1.3}}
	var buf bytes.Buffer
	if err := Fig9CSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	got := parseCSV(t, &buf)
	if got[1][3] != "1.1" || got[1][5] != "1.3" {
		t.Fatalf("csv = %v", got)
	}
}

func TestEnergyCSV(t *testing.T) {
	rows := []EnergyRow{{Dataset: "TT-S", Walks: 3, FWJ: 0.5, GWJ: 1.5, Ratio: 3, FWBreak: core.Energy{}}}
	var buf bytes.Buffer
	if err := EnergyCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	got := parseCSV(t, &buf)
	if got[1][2] != "0.5" || got[1][4] != "3" {
		t.Fatalf("csv = %v", got)
	}
}

func TestTable4CSV(t *testing.T) {
	rows := []Table4Row{{Name: "X", Mirrors: "Y", V: 1, E: 2, CSRBytes: 3, TextEst: 4, MaxDeg: 5, Gini: 0.5}}
	var buf bytes.Buffer
	if err := Table4CSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "X,Y,1,2,3,4,5,0.5000") {
		t.Fatalf("csv = %q", out)
	}
}
