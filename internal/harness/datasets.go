// Package harness binds the engines to the paper's evaluation: it defines
// the scaled dataset registry (Table IV analogues), derives proportionally
// scaled engine configurations, and regenerates every table and figure of
// the evaluation section.
//
// Scaling rule (DESIGN.md §5): the paper's graphs are ~4096× larger than
// the analogues here, so GraphWalker's memory, GraphWalker's block size,
// FlashWalker's subgraph size and the walk counts are divided by the same
// factor; SSD geometry and accelerator cycle times are kept at their
// Table I/II/III values because they are the physics being studied, not
// the workload.
package harness

import (
	"fmt"
	"sync"

	"flashwalker/internal/errs"
	"flashwalker/internal/graph"
)

// Dataset is one scaled analogue of a Table IV graph.
type Dataset struct {
	// Name is the short code used throughout the paper (TT, FS, CW, R2B,
	// R8B) with an -S suffix marking the scaled analogue.
	Name string
	// Mirrors names the paper's original dataset.
	Mirrors string
	// IDBytes is the vertex ID width (8 for ClueWeb, 4 otherwise).
	IDBytes int
	// SubgraphBytes is FlashWalker's graph-block size for this dataset
	// (paper: 256 KB, 512 KB for ClueWeb; scaled by 1/64 to 4/8 KiB so a
	// block is 1-2 flash pages).
	SubgraphBytes int64
	// DefaultWalks is the scaled analogue of the paper's fixed walk count
	// (4x10^8, 10^9 for ClueWeb).
	DefaultWalks int
	// SubgraphsPerPartition overrides the partition granularity (0 keeps
	// the default 4096). The multi-board preset (MB-S) cuts partitions
	// fine so the graph spans many of them and an N-board array has real
	// shards to own; the single-board datasets fit one partition.
	SubgraphsPerPartition int
	// Gen generates the graph.
	Gen func() (*graph.Graph, error)
}

// cacheEntry guards one dataset's generated graph with its own sync.Once,
// so concurrent sweep runners share each graph safely: the registry lock
// only covers the map lookup, and generating one dataset never blocks
// generation of another.
type cacheEntry struct {
	once sync.Once
	g    *graph.Graph
	err  error
}

var (
	cacheMu sync.Mutex
	cache   = map[string]*cacheEntry{}
)

// Graph returns the dataset's graph, generating it on first use and caching
// it for the process lifetime. Safe for concurrent use; generation runs at
// most once per dataset name, and different datasets generate in parallel.
func (d Dataset) Graph() (*graph.Graph, error) {
	cacheMu.Lock()
	e, ok := cache[d.Name]
	if !ok {
		e = &cacheEntry{}
		cache[d.Name] = e
	}
	cacheMu.Unlock()
	e.once.Do(func() {
		g, err := d.Gen()
		if err != nil {
			e.err = fmt.Errorf("harness: generating %s: %w", d.Name, err)
			return
		}
		e.g = g
	})
	return e.g, e.err
}

// Datasets returns the five scaled analogues of Table IV, in the paper's
// order.
func Datasets() []Dataset {
	return []Dataset{
		{
			// Twitter: 41.6M vertices, 1.46B edges, heavy skew (celebrity
			// hubs). Scaled: avg degree ~35 kept, strong R-MAT skew.
			Name: "TT-S", Mirrors: "Twitter", IDBytes: 4,
			SubgraphBytes: 4 << 10, DefaultWalks: 100_000,
			Gen: func() (*graph.Graph, error) {
				cfg := graph.RMATConfig{
					NumVertices: 10_156, NumEdges: 356_000,
					A: 0.57, B: 0.19, C: 0.19, D: 0.05,
					Noise: 0.05, RemoveDuplicates: true, Seed: 41,
				}
				return graph.RMAT(cfg)
			},
		},
		{
			// Friendster: 65.6M vertices, 3.61B edges, avg degree ~55,
			// milder skew than Twitter.
			Name: "FS-S", Mirrors: "Friendster", IDBytes: 4,
			SubgraphBytes: 4 << 10, DefaultWalks: 100_000,
			Gen: func() (*graph.Graph, error) {
				cfg := graph.RMATConfig{
					NumVertices: 16_016, NumEdges: 881_000,
					A: 0.48, B: 0.22, C: 0.22, D: 0.08,
					Noise: 0.05, RemoveDuplicates: true, Seed: 42,
				}
				return graph.RMAT(cfg)
			},
		},
		{
			// ClueWeb: 4.78B vertices, 7.94B edges — avg out-degree only
			// 1.66, so walks dead-end quickly and stragglers dominate
			// (Figure 8d). 8-byte IDs (vertex count exceeds 4 bytes in the
			// original).
			Name: "CW-S", Mirrors: "ClueWeb", IDBytes: 8,
			SubgraphBytes: 8 << 10, DefaultWalks: 250_000,
			Gen: func() (*graph.Graph, error) {
				cfg := graph.RMATConfig{
					NumVertices: 1_166_848, NumEdges: 1_940_000,
					A: 0.50, B: 0.21, C: 0.21, D: 0.08,
					Noise: 0.05, RemoveDuplicates: true, Seed: 43,
				}
				return graph.RMAT(cfg)
			},
		},
		{
			// RMAT2B: PaRMAT defaults, 62.5M vertices, 2B edges.
			Name: "R2B-S", Mirrors: "RMAT2B", IDBytes: 4,
			SubgraphBytes: 4 << 10, DefaultWalks: 100_000,
			Gen: func() (*graph.Graph, error) {
				return graph.RMAT(graph.DefaultRMAT(15_258, 488_000, 44))
			},
		},
		{
			// RMAT8B: PaRMAT defaults, 250M vertices, 8B edges.
			Name: "R8B-S", Mirrors: "RMAT8B", IDBytes: 4,
			SubgraphBytes: 4 << 10, DefaultWalks: 100_000,
			Gen: func() (*graph.Graph, error) {
				return graph.RMAT(graph.DefaultRMAT(61_035, 1_950_000, 45))
			},
		},
	}
}

// ExtraDatasets returns the presets that exist beyond the paper's Table IV —
// resolvable by name everywhere (DatasetByName, the service registry, the
// CLIs) but excluded from Datasets() so the figure and table sweeps stay on
// the paper's five graphs.
func ExtraDatasets() []Dataset {
	return []Dataset{
		{
			// Multi-board preset: an R8B-scale graph cut into 256-subgraph
			// partitions, so the CSR spans several partitions and an N-board
			// array has one shard per board — a workload no single board's
			// 64-subgraph buffer tier can hold resident.
			Name: "MB-S", Mirrors: "RMAT8B/array", IDBytes: 4,
			SubgraphBytes: 4 << 10, DefaultWalks: 100_000,
			SubgraphsPerPartition: 256,
			Gen: func() (*graph.Graph, error) {
				return graph.RMAT(graph.DefaultRMAT(65_536, 2_000_000, 46))
			},
		},
	}
}

// CustomDataset wraps a user-provided graph file as a Dataset so the
// experiment machinery (configs, figures, energy) runs on it. idBytes is
// 4 or 8; subgraphBytes is FlashWalker's block size for this graph;
// defaultWalks anchors the walk-count sweeps.
func CustomDataset(name, path string, idBytes int, subgraphBytes int64, defaultWalks int) Dataset {
	return Dataset{
		Name:          name,
		Mirrors:       path,
		IDBytes:       idBytes,
		SubgraphBytes: subgraphBytes,
		DefaultWalks:  defaultWalks,
		Gen: func() (*graph.Graph, error) {
			return graph.Load(path)
		},
	}
}

// DatasetByName finds a dataset by its short code, searching the Table IV
// analogues and the extra presets.
func DatasetByName(name string) (Dataset, error) {
	for _, d := range Datasets() {
		if d.Name == name {
			return d, nil
		}
	}
	for _, d := range ExtraDatasets() {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("harness: unknown dataset %q: %w", name, errs.ErrUnknownDataset)
}

// Scaled memory capacities for GraphWalker (paper: 4/8/16 GB at full
// scale; divided by 4096).
const (
	GWMem4GB  = 1 << 20 // analogue of 4 GB
	GWMem8GB  = 2 << 20 // analogue of 8 GB (the default)
	GWMem16GB = 4 << 20 // analogue of 16 GB
)
