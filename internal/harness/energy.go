package harness

import (
	"context"
	"fmt"

	"flashwalker/internal/core"
	"flashwalker/internal/metrics"
)

// EnergyRow compares the estimated energy of one workload on both systems
// — an extension experiment quantifying the paper's §I claim that
// host-based random walks carry "high memory cost and energy consumption".
type EnergyRow struct {
	Dataset string
	Walks   int
	FWJ     float64
	GWJ     float64
	Ratio   float64 // GW / FW
	FWBreak core.Energy
	GWBreak core.Energy
}

// ExtEnergy runs both engines on every dataset at the default walk counts
// and converts their traffic counters into joule estimates. One dataset
// per grid point, swept on workers goroutines.
func ExtEnergy(ctx context.Context, scale float64, seed uint64, workers int) ([]EnergyRow, error) {
	ec := core.DefaultEnergy()
	ds := Datasets()
	rows := make([]EnergyRow, len(ds))
	err := sweep(ctx, workers, len(ds), func(i int) error {
		d := ds[i]
		walks := scaleWalks(d.DefaultWalks, scale)
		fw, err := RunFlashWalker(ctx, d, core.AllOptions(), walks, seed, 0)
		if err != nil {
			return err
		}
		gw, err := RunGraphWalker(ctx, d, GWMem8GB, walks, seed)
		if err != nil {
			return err
		}
		fwE := core.FlashWalkerEnergy(ec, fw)
		gwE := core.GraphWalkerEnergy(ec, core.GraphWalkerEnergyInput{
			Time:          gw.Time,
			CPUBusy:       gw.Breakdown.Get("update walks"),
			ReadPages:     gw.Flash.ReadPages,
			ProgramPages:  gw.Flash.ProgramPages,
			ErasedBlocks:  gw.Flash.ErasedBlocks,
			ChannelBytes:  gw.Flash.ChannelBytes,
			HostBytes:     gw.Flash.HostBytes,
			HostDRAMBytes: gw.BlockBytes + gw.WalkSpillBytes + gw.WalkLoadBytes,
		})
		rows[i] = EnergyRow{
			Dataset: d.Name, Walks: walks,
			FWJ: fwE.Total(), GWJ: gwE.Total(),
			Ratio:   gwE.Total() / fwE.Total(),
			FWBreak: fwE, GWBreak: gwE,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatExtEnergy renders the energy comparison.
func FormatExtEnergy(rows []EnergyRow) string {
	t := &metrics.Table{
		Title:   "Extension: estimated energy per workload (literature per-op estimates)",
		Headers: []string{"dataset", "walks", "FlashWalker", "GraphWalker", "GW/FW"},
	}
	for _, r := range rows {
		t.AddRow(r.Dataset, fmt.Sprint(r.Walks),
			fmt.Sprintf("%.4g J", r.FWJ), fmt.Sprintf("%.4g J", r.GWJ),
			fmt.Sprintf("%.1fx", r.Ratio))
	}
	return t.Render()
}
