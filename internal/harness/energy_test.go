package harness

import (
	"context"
	"strings"
	"testing"
)

func TestExtEnergy(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := ExtEnergy(context.Background(), testScale, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.FWJ <= 0 || r.GWJ <= 0 {
			t.Fatalf("%s: non-positive energy", r.Dataset)
		}
		if r.Ratio <= 1 {
			t.Errorf("%s: in-storage not more energy-efficient (ratio %.2f)", r.Dataset, r.Ratio)
		}
		// The components must account for the totals.
		if r.FWBreak.Total() != r.FWJ || r.GWBreak.Total() != r.GWJ {
			t.Fatalf("%s: breakdown does not sum", r.Dataset)
		}
	}
	out := FormatExtEnergy(rows)
	if !strings.Contains(out, "GW/FW") {
		t.Fatal("format broken")
	}
}

func TestExtAlgorithms(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := ExtAlgorithms(context.Background(), testScale, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	byName := map[string]AlgorithmRow{}
	for _, r := range rows {
		if r.Time <= 0 || r.Hops == 0 {
			t.Fatalf("%s: empty run", r.Name)
		}
		byName[r.Name] = r
	}
	// Only the second-order family probes the edge filter.
	for name, r := range byName {
		probed := r.Probes > 0
		wantProbes := strings.HasPrefix(name, "second-order")
		if probed != wantProbes {
			t.Errorf("%s: probes=%d", name, r.Probes)
		}
	}
	if !strings.Contains(FormatExtAlgorithms(rows), "Mhops/s") {
		t.Fatal("format broken")
	}
}
