package harness

import (
	"context"
	"errors"
	"testing"

	"flashwalker/internal/errs"
)

func TestDatasetByNameWrapsUnknownDataset(t *testing.T) {
	if _, err := DatasetByName("no-such-graph"); !errors.Is(err, errs.ErrUnknownDataset) {
		t.Errorf("error %v does not wrap ErrUnknownDataset", err)
	}
	if _, err := DatasetByName("TT-S"); err != nil {
		t.Errorf("known dataset rejected: %v", err)
	}
}

func TestSweepCancellationWrapsErrCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := sweep(ctx, 1, 4, func(i int) error { return nil })
	if !errors.Is(err, errs.ErrCanceled) {
		t.Errorf("serial sweep: error %v does not wrap ErrCanceled", err)
	}
	err = sweep(ctx, 4, 8, func(i int) error { return nil })
	if !errors.Is(err, errs.ErrCanceled) {
		t.Errorf("parallel sweep: error %v does not wrap ErrCanceled", err)
	}
}
