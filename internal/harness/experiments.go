package harness

import (
	"context"
	"fmt"
	"strings"

	"flashwalker/internal/core"
	"flashwalker/internal/metrics"
	"flashwalker/internal/sim"
)

// scaleWalks applies the run-scale multiplier with a floor of 100 walks.
func scaleWalks(n int, scale float64) int {
	if scale <= 0 {
		scale = 1
	}
	v := int(float64(n) * scale)
	if v < 100 {
		v = 100
	}
	return v
}

// walkSweep returns the scaled analogue of Figure 5's walk-count sweep for
// a dataset (the paper sweeps up to 4x10^8, 10^9 for ClueWeb).
func walkSweep(d Dataset, scale float64) []int {
	base := []int{d.DefaultWalks / 100, d.DefaultWalks / 10, d.DefaultWalks / 2, d.DefaultWalks}
	out := make([]int, len(base))
	for i, n := range base {
		out[i] = scaleWalks(n, scale)
	}
	return out
}

// ---------------------------------------------------------------- Figure 1

// Fig1Row is one bar of Figure 1: GraphWalker's time-cost breakdown on the
// ClueWeb analogue at one walk count.
type Fig1Row struct {
	Walks     int
	Total     sim.Time
	LoadGraph float64 // fraction of component time
	Update    float64
	WalkIO    float64
}

// Fig1 reproduces Figure 1: GraphWalker's execution time on CW is
// dominated by loading graph structure from the SSD. Grid points run on
// workers goroutines (Workers semantics).
func Fig1(ctx context.Context, scale float64, seed uint64, workers int) ([]Fig1Row, error) {
	d, err := DatasetByName("CW-S")
	if err != nil {
		return nil, err
	}
	grid := walkSweep(d, scale)
	rows := make([]Fig1Row, len(grid))
	err = sweep(ctx, workers, len(grid), func(i int) error {
		walks := grid[i]
		res, err := RunGraphWalker(ctx, d, GWMem8GB, walks, seed)
		if err != nil {
			return err
		}
		b := res.Breakdown
		rows[i] = Fig1Row{
			Walks:     walks,
			Total:     res.Time,
			LoadGraph: b.Fraction("load graph"),
			Update:    b.Fraction("update walks"),
			WalkIO:    b.Fraction("walk I/O"),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatFig1 renders Figure 1 rows as a text table.
func FormatFig1(rows []Fig1Row) string {
	t := &metrics.Table{
		Title:   "Fig 1: GraphWalker time cost breakdown on ClueWeb (scaled analogue)",
		Headers: []string{"walks", "total", "load graph", "update walks", "walk I/O"},
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprint(r.Walks), r.Total.String(),
			fmt.Sprintf("%.1f%%", 100*r.LoadGraph),
			fmt.Sprintf("%.1f%%", 100*r.Update),
			fmt.Sprintf("%.1f%%", 100*r.WalkIO))
	}
	return t.Render()
}

// ---------------------------------------------------------------- Figure 5

// Fig5Row is one bar of Figure 5: FlashWalker's speedup over GraphWalker
// at one (dataset, walk count) point.
type Fig5Row struct {
	Dataset string
	Walks   int
	FWTime  sim.Time
	GWTime  sim.Time
	Speedup float64
}

// Fig5 reproduces Figure 5: FlashWalker speedup over GraphWalker across
// datasets and walk counts. The (dataset, walks) grid is flattened in the
// paper's order and swept on workers goroutines.
func Fig5(ctx context.Context, scale float64, seed uint64, workers int) ([]Fig5Row, error) {
	type point struct {
		d     Dataset
		walks int
	}
	var grid []point
	for _, d := range Datasets() {
		for _, walks := range walkSweep(d, scale) {
			grid = append(grid, point{d, walks})
		}
	}
	rows := make([]Fig5Row, len(grid))
	err := sweep(ctx, workers, len(grid), func(i int) error {
		d, walks := grid[i].d, grid[i].walks
		fw, err := RunFlashWalker(ctx, d, core.AllOptions(), walks, seed, 0)
		if err != nil {
			return fmt.Errorf("fig5 %s/%d flashwalker: %w", d.Name, walks, err)
		}
		gw, err := RunGraphWalker(ctx, d, GWMem8GB, walks, seed)
		if err != nil {
			return fmt.Errorf("fig5 %s/%d graphwalker: %w", d.Name, walks, err)
		}
		rows[i] = Fig5Row{
			Dataset: d.Name, Walks: walks,
			FWTime: fw.Time, GWTime: gw.Time,
			Speedup: float64(gw.Time) / float64(fw.Time),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Fig5Summary reports the min, geometric-mean-free average and max speedup
// (the paper quotes 4.79x to 660.50x, 51.56x average).
func Fig5Summary(rows []Fig5Row) (min, avg, max float64) {
	if len(rows) == 0 {
		return 0, 0, 0
	}
	min, max = rows[0].Speedup, rows[0].Speedup
	var sum float64
	for _, r := range rows {
		if r.Speedup < min {
			min = r.Speedup
		}
		if r.Speedup > max {
			max = r.Speedup
		}
		sum += r.Speedup
	}
	return min, sum / float64(len(rows)), max
}

// FormatFig5 renders Figure 5 rows.
func FormatFig5(rows []Fig5Row) string {
	t := &metrics.Table{
		Title:   "Fig 5: FlashWalker speedup over GraphWalker vs number of walks",
		Headers: []string{"dataset", "walks", "FlashWalker", "GraphWalker", "speedup"},
	}
	for _, r := range rows {
		t.AddRow(r.Dataset, fmt.Sprint(r.Walks), r.FWTime.String(), r.GWTime.String(),
			fmt.Sprintf("%.2fx", r.Speedup))
	}
	min, avg, max := Fig5Summary(rows)
	return t.Render() + fmt.Sprintf("speedup min %.2fx / avg %.2fx / max %.2fx (paper: 4.79x / 51.56x / 660.50x)\n", min, avg, max)
}

// ---------------------------------------------------------------- Figure 6

// Fig6Row is one dataset of Figure 6: flash read-traffic reduction and
// achieved flash bandwidth improvement over GraphWalker.
type Fig6Row struct {
	Dataset          string
	Walks            int
	FWReadBytes      int64
	GWReadBytes      int64
	TrafficReduction float64 // GW bytes / FW bytes; < 1 means FW reads more
	FWBandwidth      float64 // bytes/s
	GWBandwidth      float64
	BandwidthGain    float64
}

// Fig6 reproduces Figure 6 at the paper's fixed walk counts, one dataset
// per grid point.
func Fig6(ctx context.Context, scale float64, seed uint64, workers int) ([]Fig6Row, error) {
	ds := Datasets()
	rows := make([]Fig6Row, len(ds))
	err := sweep(ctx, workers, len(ds), func(i int) error {
		d := ds[i]
		walks := scaleWalks(d.DefaultWalks, scale)
		fw, err := RunFlashWalker(ctx, d, core.AllOptions(), walks, seed, 0)
		if err != nil {
			return err
		}
		gw, err := RunGraphWalker(ctx, d, GWMem8GB, walks, seed)
		if err != nil {
			return err
		}
		fwBW := float64(fw.Flash.ReadBytes) / fw.Time.Seconds()
		gwBW := float64(gw.Flash.ReadBytes) / gw.Time.Seconds()
		rows[i] = Fig6Row{
			Dataset: d.Name, Walks: walks,
			FWReadBytes:      fw.Flash.ReadBytes,
			GWReadBytes:      gw.Flash.ReadBytes,
			TrafficReduction: float64(gw.Flash.ReadBytes) / float64(fw.Flash.ReadBytes),
			FWBandwidth:      fwBW,
			GWBandwidth:      gwBW,
			BandwidthGain:    fwBW / gwBW,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatFig6 renders Figure 6 rows.
func FormatFig6(rows []Fig6Row) string {
	t := &metrics.Table{
		Title:   "Fig 6: flash read traffic reduction and bandwidth improvement",
		Headers: []string{"dataset", "walks", "FW read", "GW read", "traffic red.", "FW BW", "GW BW", "BW gain"},
	}
	for _, r := range rows {
		t.AddRow(r.Dataset, fmt.Sprint(r.Walks),
			metrics.FormatBytes(r.FWReadBytes), metrics.FormatBytes(r.GWReadBytes),
			fmt.Sprintf("%.2fx", r.TrafficReduction),
			metrics.FormatRate(r.FWBandwidth), metrics.FormatRate(r.GWBandwidth),
			fmt.Sprintf("%.2fx", r.BandwidthGain))
	}
	return t.Render()
}

// ---------------------------------------------------------------- Figure 7

// Fig7Row is one bar of Figure 7: speedup at one GraphWalker memory size.
type Fig7Row struct {
	Dataset  string
	MemLabel string
	MemBytes int64
	Speedup  float64
}

// Fig7 reproduces Figure 7: FlashWalker speedup versus GraphWalker with
// 4/8/16 GB (scaled) host memory; the FlashWalker configuration is fixed.
// Each grid point is one dataset (the fixed FlashWalker run is shared by
// its three memory points), so rows land at i*3+j.
func Fig7(ctx context.Context, scale float64, seed uint64, workers int) ([]Fig7Row, error) {
	mems := []struct {
		label string
		bytes int64
	}{
		{"4GB", GWMem4GB}, {"8GB", GWMem8GB}, {"16GB", GWMem16GB},
	}
	ds := Datasets()
	rows := make([]Fig7Row, len(ds)*len(mems))
	err := sweep(ctx, workers, len(ds), func(i int) error {
		d := ds[i]
		walks := scaleWalks(d.DefaultWalks, scale)
		fw, err := RunFlashWalker(ctx, d, core.AllOptions(), walks, seed, 0)
		if err != nil {
			return err
		}
		for j, m := range mems {
			gw, err := RunGraphWalker(ctx, d, m.bytes, walks, seed)
			if err != nil {
				return err
			}
			rows[i*len(mems)+j] = Fig7Row{
				Dataset: d.Name, MemLabel: m.label, MemBytes: m.bytes,
				Speedup: float64(gw.Time) / float64(fw.Time),
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatFig7 renders Figure 7 rows.
func FormatFig7(rows []Fig7Row) string {
	t := &metrics.Table{
		Title:   "Fig 7: speedup over GraphWalker with varied DRAM capacities (scaled 4/8/16GB)",
		Headers: []string{"dataset", "GW memory", "speedup"},
	}
	for _, r := range rows {
		t.AddRow(r.Dataset, r.MemLabel, fmt.Sprintf("%.2fx", r.Speedup))
	}
	return t.Render()
}

// ---------------------------------------------------------------- Figure 8

// Fig8Series is the resource-consumption time series of one dataset.
type Fig8Series struct {
	Dataset  string
	Walks    int
	Bin      sim.Time
	Total    sim.Time
	ReadBW   []float64 // bytes/s per bin
	WriteBW  []float64
	ChanBW   []float64
	Progress []float64 // cumulative fraction of walks finished
}

// Fig8 reproduces Figure 8: per-interval flash read/write bandwidth,
// channel bandwidth, and walk-completion progression. It takes no worker
// count: its second run derives the bin width from the first run's
// measured time, so the two runs are inherently sequential.
func Fig8(ctx context.Context, datasetName string, scale float64, seed uint64) (*Fig8Series, error) {
	d, err := DatasetByName(datasetName)
	if err != nil {
		return nil, err
	}
	walks := scaleWalks(d.DefaultWalks, scale)
	res, err := RunFlashWalker(ctx, d, core.AllOptions(), walks, seed, 0)
	if err != nil {
		return nil, err
	}
	// Re-run with a bin width that yields ~40 bins of the measured time.
	bin := res.Time / 40
	if bin < sim.Microsecond {
		bin = sim.Microsecond
	}
	res, err = RunFlashWalker(ctx, d, core.AllOptions(), walks, seed, bin)
	if err != nil {
		return nil, err
	}
	n := res.ProgressTS.NumBins()
	s := &Fig8Series{Dataset: d.Name, Walks: walks, Bin: bin, Total: res.Time}
	var done float64
	total := float64(res.WalksFinished())
	for i := 0; i < n; i++ {
		s.ReadBW = append(s.ReadBW, res.ReadTS.Rate(i))
		s.WriteBW = append(s.WriteBW, res.WriteTS.Rate(i))
		s.ChanBW = append(s.ChanBW, res.ChannelTS.Rate(i))
		done += res.ProgressTS.Value(i)
		s.Progress = append(s.Progress, done/total)
	}
	return s, nil
}

// StragglerTail reports the fraction of total time spent finishing the
// last (1-threshold) of walks — Figure 8d's observation that ClueWeb
// spends most of its time on the final 10% of walks.
func (s *Fig8Series) StragglerTail(threshold float64) float64 {
	for i, p := range s.Progress {
		if p >= threshold {
			return 1 - float64(i+1)/float64(len(s.Progress))
		}
	}
	return 0
}

// FormatFig8 renders the series as a text table.
func FormatFig8(s *Fig8Series) string {
	t := &metrics.Table{
		Title: fmt.Sprintf("Fig 8: resource consumption on %s (%d walks, %v bins, total %v)",
			s.Dataset, s.Walks, s.Bin, s.Total),
		Headers: []string{"t", "read BW", "write BW", "channel BW", "progress"},
	}
	for i := range s.ReadBW {
		t.AddRow(
			(sim.Time(i) * s.Bin).String(),
			metrics.FormatRate(s.ReadBW[i]),
			metrics.FormatRate(s.WriteBW[i]),
			metrics.FormatRate(s.ChanBW[i]),
			fmt.Sprintf("%.1f%%", 100*s.Progress[i]))
	}
	return t.Render()
}

// ---------------------------------------------------------------- Figure 9

// Fig9Row is one dataset's ablation series: speedups of the incremental
// optimization sets over the no-optimization baseline.
type Fig9Row struct {
	Dataset  string
	Walks    int
	BaseTime sim.Time
	WQ       float64 // +WQ speedup over base
	WQHS     float64 // +WQ+HS
	WQHSSS   float64 // +WQ+HS+SS
}

// Fig9 reproduces Figure 9: optimizations enabled incrementally, each
// applied on top of the previous ones (§IV-E; SS runs with α=0.4). The
// (dataset, option-set) grid is fully flattened — all 4 ablation runs of a
// dataset are independent simulations, so they sweep as separate points
// and the rows are assembled afterwards.
func Fig9(ctx context.Context, scale float64, seed uint64, workers int) ([]Fig9Row, error) {
	sets := []core.Options{
		{},
		{WalkQuery: true},
		{WalkQuery: true, HotSubgraphs: true},
		{WalkQuery: true, HotSubgraphs: true, SmartSchedule: true},
	}
	ds := Datasets()
	times := make([]sim.Time, len(ds)*len(sets))
	err := sweep(ctx, workers, len(times), func(i int) error {
		d := ds[i/len(sets)]
		set := i % len(sets)
		walks := scaleWalks(d.DefaultWalks/2, scale)
		res, err := RunFlashWalker(ctx, d, sets[set], walks, seed, 0)
		if err != nil {
			return fmt.Errorf("fig9 %s set %d: %w", d.Name, set, err)
		}
		times[i] = res.Time
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]Fig9Row, len(ds))
	for i, d := range ds {
		t := times[i*len(sets) : (i+1)*len(sets)]
		rows[i] = Fig9Row{
			Dataset: d.Name, Walks: scaleWalks(d.DefaultWalks/2, scale), BaseTime: t[0],
			WQ:     float64(t[0]) / float64(t[1]),
			WQHS:   float64(t[0]) / float64(t[2]),
			WQHSSS: float64(t[0]) / float64(t[3]),
		}
	}
	return rows, nil
}

// FormatFig9 renders Figure 9 rows.
func FormatFig9(rows []Fig9Row) string {
	t := &metrics.Table{
		Title:   "Fig 9: FlashWalker speedup under incrementally enabled optimizations",
		Headers: []string{"dataset", "walks", "baseline", "+WQ", "+WQ+HS", "+WQ+HS+SS"},
	}
	for _, r := range rows {
		t.AddRow(r.Dataset, fmt.Sprint(r.Walks), r.BaseTime.String(),
			fmt.Sprintf("%.3fx", r.WQ), fmt.Sprintf("%.3fx", r.WQHS), fmt.Sprintf("%.3fx", r.WQHSSS))
	}
	return t.Render()
}

// sparkline renders a tiny ASCII intensity strip for a series (handy for
// eyeballing Figure 8 output in a terminal).
func sparkline(vals []float64) string {
	if len(vals) == 0 {
		return ""
	}
	glyphs := []rune(" .:-=+*#%@")
	max := vals[0]
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	if max <= 0 {
		return strings.Repeat(" ", len(vals))
	}
	var sb strings.Builder
	for _, v := range vals {
		i := int(v / max * float64(len(glyphs)-1))
		sb.WriteRune(glyphs[i])
	}
	return sb.String()
}

// Sparklines summarizes a Fig8Series as four labelled ASCII strips.
func (s *Fig8Series) Sparklines() string {
	return fmt.Sprintf("read    |%s|\nwrite   |%s|\nchannel |%s|\nprogress|%s|\n",
		sparkline(s.ReadBW), sparkline(s.WriteBW), sparkline(s.ChanBW), sparkline(s.Progress))
}
