package harness

import (
	"context"
	"fmt"
	"io"
	"strconv"

	"flashwalker/internal/core"
	"flashwalker/internal/fault"
	"flashwalker/internal/metrics"
	"flashwalker/internal/sim"
)

// FaultRow compares one dataset's clean run against the identical workload
// under the default fault profile — an extension experiment measuring how
// much wall-clock the retry/degradation machinery costs while the walk
// outcomes stay bit-identical.
type FaultRow struct {
	Dataset    string
	Walks      int
	CleanTime  sim.Time
	FaultyTime sim.Time
	Slowdown   float64 // faulty / clean
	Faults     fault.Counters
	Reroutes   uint64 // walks rerouted off degraded chips
	Failover   uint64 // blocks failed over into channel hot sets
}

// ExtFaults runs every dataset clean and under fault.Default(), one dataset
// per grid point on workers goroutines. It also enforces the metamorphic
// guarantee in production form: if faults change any walk outcome, the
// sweep fails rather than reporting a corrupted comparison.
func ExtFaults(ctx context.Context, scale float64, seed uint64, workers int) ([]FaultRow, error) {
	fc := fault.Default()
	ds := Datasets()
	rows := make([]FaultRow, len(ds))
	err := sweep(ctx, workers, len(ds), func(i int) error {
		d := ds[i]
		walks := scaleWalks(d.DefaultWalks, scale)
		clean, err := RunFlashWalker(ctx, d, core.AllOptions(), walks, seed, 0)
		if err != nil {
			return err
		}
		faulty, err := RunFlashWalkerFaults(ctx, d, core.AllOptions(), walks, seed, fc)
		if err != nil {
			return err
		}
		if clean.Completed != faulty.Completed || clean.Hops != faulty.Hops {
			return fmt.Errorf("faults %s: outcomes diverged (clean completed=%d hops=%d, faulty completed=%d hops=%d)",
				d.Name, clean.Completed, clean.Hops, faulty.Completed, faulty.Hops)
		}
		rows[i] = FaultRow{
			Dataset: d.Name, Walks: walks,
			CleanTime: clean.Time, FaultyTime: faulty.Time,
			Slowdown: float64(faulty.Time) / float64(clean.Time),
			Faults:   faulty.Faults,
			Reroutes: faulty.FaultReroutes,
			Failover: faulty.FailoverBlocks,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatExtFaults renders the fault-injection comparison.
func FormatExtFaults(rows []FaultRow) string {
	t := &metrics.Table{
		Title:   "Extension: fault injection (default profile) vs clean run, identical walk outcomes",
		Headers: []string{"dataset", "walks", "clean", "faulty", "slowdown", "errors", "retries", "stalls", "degraded", "reroutes"},
	}
	for _, r := range rows {
		t.AddRow(r.Dataset, fmt.Sprint(r.Walks),
			r.CleanTime.String(), r.FaultyTime.String(),
			fmt.Sprintf("%.3fx", r.Slowdown),
			fmt.Sprint(r.Faults.ReadErrors), fmt.Sprint(r.Faults.Retries),
			fmt.Sprint(r.Faults.PlaneBusyStalls), fmt.Sprint(r.Faults.DegradedChips),
			fmt.Sprint(r.Reroutes))
	}
	return t.Render()
}

// FaultsCSV writes the fault-extension rows as CSV.
func FaultsCSV(w io.Writer, rows []FaultRow) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			r.Dataset, strconv.Itoa(r.Walks),
			ns(r.CleanTime), ns(r.FaultyTime), f(r.Slowdown),
			strconv.FormatUint(r.Faults.ReadErrors, 10),
			strconv.FormatUint(r.Faults.Retries, 10),
			strconv.FormatUint(r.Faults.RetriesExhausted, 10),
			strconv.FormatUint(r.Faults.PlaneBusyStalls, 10),
			ns(r.Faults.StallTime), ns(r.Faults.BackoffTime),
			strconv.FormatUint(r.Faults.DegradedChips, 10),
			strconv.FormatUint(r.Reroutes, 10),
			strconv.FormatUint(r.Failover, 10),
		}
	}
	return writeCSV(w, []string{
		"dataset", "walks", "clean_ns", "faulty_ns", "slowdown",
		"read_errors", "retries", "retries_exhausted",
		"plane_busy_stalls", "stall_ns", "backoff_ns",
		"degraded_chips", "reroutes", "failover_blocks",
	}, out)
}
