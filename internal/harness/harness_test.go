package harness

import (
	"context"
	"strings"
	"testing"

	"flashwalker/internal/core"
	"flashwalker/internal/graph"
)

// tiny scale keeps harness tests fast; each run still exercises the full
// engine pipeline.
const testScale = 0.01

func TestDatasetsRegistry(t *testing.T) {
	ds := Datasets()
	if len(ds) != 5 {
		t.Fatalf("%d datasets, want 5", len(ds))
	}
	wantNames := []string{"TT-S", "FS-S", "CW-S", "R2B-S", "R8B-S"}
	for i, d := range ds {
		if d.Name != wantNames[i] {
			t.Fatalf("dataset %d = %s, want %s", i, d.Name, wantNames[i])
		}
		if d.DefaultWalks <= 0 || d.SubgraphBytes <= 0 {
			t.Fatalf("dataset %s has invalid defaults", d.Name)
		}
	}
	// CW uses 8-byte IDs; the rest use 4 (Table IV).
	for _, d := range ds {
		want := 4
		if d.Name == "CW-S" {
			want = 8
		}
		if d.IDBytes != want {
			t.Fatalf("%s IDBytes = %d, want %d", d.Name, d.IDBytes, want)
		}
	}
}

func TestDatasetByName(t *testing.T) {
	d, err := DatasetByName("TT-S")
	if err != nil || d.Name != "TT-S" {
		t.Fatalf("DatasetByName: %v %v", d, err)
	}
	if _, err := DatasetByName("nope"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestGraphCaching(t *testing.T) {
	d, _ := DatasetByName("TT-S")
	a, err := d.Graph()
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("graph not cached (different pointers)")
	}
}

func TestDatasetShapes(t *testing.T) {
	// The scaled analogues must roughly match DESIGN.md §5: edge counts
	// within 10% of the targets and CW's average degree near 1.66.
	targets := map[string]struct {
		v, e float64
	}{
		"TT-S":  {10156, 356000},
		"FS-S":  {16016, 881000},
		"CW-S":  {1166848, 1940000},
		"R2B-S": {15258, 488000},
		"R8B-S": {61035, 1950000},
	}
	for _, d := range Datasets() {
		g, err := d.Graph()
		if err != nil {
			t.Fatal(err)
		}
		want := targets[d.Name]
		if v := float64(g.NumVertices()); v != want.v {
			t.Errorf("%s |V| = %v, want %v", d.Name, v, want.v)
		}
		if e := float64(g.NumEdges()); e < want.e*0.9 || e > want.e*1.1 {
			t.Errorf("%s |E| = %v, want ~%v", d.Name, e, want.e)
		}
	}
	cw, _ := DatasetByName("CW-S")
	g, _ := cw.Graph()
	avg := float64(g.NumEdges()) / float64(g.NumVertices())
	if avg < 1.3 || avg > 2.1 {
		t.Errorf("CW-S average degree %v, want ~1.66", avg)
	}
}

func TestCustomDataset(t *testing.T) {
	g := graph.Ring(64)
	path := t.TempDir() + "/ring.bin"
	if err := graph.Save(path, g); err != nil {
		t.Fatal(err)
	}
	d := CustomDataset("ring", path, 4, 1<<10, 1000)
	loaded, err := d.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumEdges() != 64 {
		t.Fatalf("loaded %d edges", loaded.NumEdges())
	}
	// The experiment machinery must run on it.
	res, err := RunFlashWalker(context.Background(), d, core.AllOptions(), 200, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.WalksFinished() != 200 {
		t.Fatalf("finished %d", res.WalksFinished())
	}
	bad := CustomDataset("missing", t.TempDir()+"/no.bin", 4, 1<<10, 10)
	if _, err := bad.Graph(); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestScaleWalksFloor(t *testing.T) {
	if scaleWalks(100000, 0.0001) != 100 {
		t.Fatal("floor not applied")
	}
	if scaleWalks(100000, 0) != 100000 {
		t.Fatal("zero scale should mean full scale")
	}
	if scaleWalks(100000, 0.5) != 50000 {
		t.Fatal("scaling wrong")
	}
}

func TestWalkSweepMonotone(t *testing.T) {
	d, _ := DatasetByName("TT-S")
	sweep := walkSweep(d, 1)
	if len(sweep) != 4 {
		t.Fatalf("sweep len %d", len(sweep))
	}
	for i := 1; i < len(sweep); i++ {
		if sweep[i] < sweep[i-1] {
			t.Fatalf("sweep not monotone: %v", sweep)
		}
	}
	if sweep[len(sweep)-1] != d.DefaultWalks {
		t.Fatal("sweep does not end at DefaultWalks")
	}
}

func TestRunBothEnginesTiny(t *testing.T) {
	d, _ := DatasetByName("TT-S")
	fw, err := RunFlashWalker(context.Background(), d, core.AllOptions(), 500, 1, 0)
	if err != nil {
		t.Fatalf("FlashWalker: %v", err)
	}
	gw, err := RunGraphWalker(context.Background(), d, GWMem8GB, 500, 1)
	if err != nil {
		t.Fatalf("GraphWalker: %v", err)
	}
	if fw.WalksFinished() != 500 || gw.WalksFinished() != 500 {
		t.Fatalf("finished fw=%d gw=%d", fw.WalksFinished(), gw.WalksFinished())
	}
	if fw.Time >= gw.Time {
		t.Errorf("FlashWalker (%v) not faster than GraphWalker (%v)", fw.Time, gw.Time)
	}
}

func TestFig1Shape(t *testing.T) {
	rows, err := Fig1(context.Background(), testScale, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		sum := r.LoadGraph + r.Update + r.WalkIO
		if sum < 0.99 || sum > 1.01 {
			t.Fatalf("fractions sum to %v", sum)
		}
		// Figure 1's claim: loading dominates on ClueWeb.
		if r.LoadGraph < r.Update {
			t.Errorf("walks=%d: load fraction %.2f below update %.2f", r.Walks, r.LoadGraph, r.Update)
		}
	}
	out := FormatFig1(rows)
	if !strings.Contains(out, "Fig 1") || !strings.Contains(out, "%") {
		t.Fatal("format broken")
	}
}

func TestFig5TinyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := Fig5(context.Background(), testScale, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 {
		t.Fatalf("%d rows, want 20", len(rows))
	}
	min, avg, _ := Fig5Summary(rows)
	if avg <= 1 {
		t.Errorf("average speedup %.2f <= 1", avg)
	}
	_ = min
	out := FormatFig5(rows)
	if !strings.Contains(out, "speedup min") {
		t.Fatal("summary missing")
	}
}

func TestFig6Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := Fig6(context.Background(), testScale, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.FWReadBytes <= 0 || r.GWReadBytes <= 0 {
			t.Fatal("zero traffic")
		}
		if r.BandwidthGain <= 1 {
			t.Errorf("%s: FlashWalker bandwidth gain %.2f <= 1", r.Dataset, r.BandwidthGain)
		}
	}
	if !strings.Contains(FormatFig6(rows), "Fig 6") {
		t.Fatal("format broken")
	}
}

func TestFig7Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := Fig7(context.Background(), testScale, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 {
		t.Fatalf("%d rows", len(rows))
	}
	// Per dataset: smaller GraphWalker memory must not shrink the speedup.
	byDataset := map[string][]Fig7Row{}
	for _, r := range rows {
		byDataset[r.Dataset] = append(byDataset[r.Dataset], r)
	}
	for name, rs := range byDataset {
		if len(rs) != 3 {
			t.Fatalf("%s has %d memory points", name, len(rs))
		}
		if rs[0].Speedup < rs[2].Speedup*0.8 {
			t.Errorf("%s: 4GB speedup %.2f far below 16GB %.2f", name, rs[0].Speedup, rs[2].Speedup)
		}
	}
	if !strings.Contains(FormatFig7(rows), "Fig 7") {
		t.Fatal("format broken")
	}
}

func TestFig8Tiny(t *testing.T) {
	s, err := Fig8(context.Background(), "TT-S", testScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.ReadBW) == 0 || len(s.Progress) != len(s.ReadBW) {
		t.Fatal("series malformed")
	}
	last := s.Progress[len(s.Progress)-1]
	if last < 0.999 {
		t.Fatalf("progress ends at %v", last)
	}
	for i := 1; i < len(s.Progress); i++ {
		if s.Progress[i] < s.Progress[i-1] {
			t.Fatal("progress not monotone")
		}
	}
	if s.StragglerTail(0.9) < 0 || s.StragglerTail(0.9) > 1 {
		t.Fatal("straggler tail out of range")
	}
	if !strings.Contains(FormatFig8(s), "Fig 8") {
		t.Fatal("format broken")
	}
	if len(s.Sparklines()) == 0 {
		t.Fatal("sparklines empty")
	}
}

func TestFig9Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := Fig9(context.Background(), testScale, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.BaseTime <= 0 {
			t.Fatal("zero base time")
		}
		// Full optimizations should not be dramatically slower than the
		// baseline on any dataset. The bound is loose: at this tiny scale
		// the ratio is noisy across RNG-stream layouts (0.68 was observed
		// after the per-walk stream change), so it only guards against
		// gross regressions.
		if r.WQHSSS < 0.6 {
			t.Errorf("%s: all-opts slowdown %.2fx", r.Dataset, r.WQHSSS)
		}
	}
	if !strings.Contains(FormatFig9(rows), "Fig 9") {
		t.Fatal("format broken")
	}
}

func TestConfigTables(t *testing.T) {
	for name, s := range map[string]string{
		"Table1": Table1(), "Table2": Table2(), "Table3": Table3(),
	} {
		if len(s) < 100 {
			t.Errorf("%s too short: %q", name, s)
		}
	}
	if !strings.Contains(Table1(), "32 channels") {
		t.Error("Table1 missing geometry")
	}
	if !strings.Contains(Table2(), "1000MHz") && !strings.Contains(Table2(), "250MHz") {
		// chip-level 16ns -> 62MHz? frequency formatting sanity only.
		t.Log(Table2())
	}
	if !strings.Contains(Table3(), "DDR4") {
		t.Error("Table3 missing DRAM")
	}
}

func TestTable4(t *testing.T) {
	rows, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.V == 0 || r.E == 0 || r.CSRBytes == 0 {
			t.Fatalf("empty stats for %s", r.Name)
		}
	}
	out := FormatTable4(rows)
	if !strings.Contains(out, "Twitter") || !strings.Contains(out, "ClueWeb") {
		t.Fatal("format broken")
	}
}

func TestSparkline(t *testing.T) {
	if sparkline(nil) != "" {
		t.Fatal("empty input")
	}
	s := sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Fatalf("len %d", len(s))
	}
	if sparkline([]float64{0, 0}) != "  " {
		t.Fatal("all-zero")
	}
}

func TestFlashWalkerConfigScaling(t *testing.T) {
	d, _ := DatasetByName("CW-S")
	rc := FlashWalkerConfig(d, core.AllOptions(), 1000, 1)
	if rc.Cfg.ChipSubgraphBufBytes != 4*d.SubgraphBytes {
		t.Fatal("chip buffer not 4 slots")
	}
	if rc.PartCfg.BlockBytes != d.SubgraphBytes || rc.PartCfg.IDBytes != 8 {
		t.Fatal("partition config not derived from dataset")
	}
	if err := rc.Cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	// SS on -> α = 0.4 (Fig 9 note).
	if rc.Cfg.Alpha != 0.4 {
		t.Fatalf("alpha = %v", rc.Cfg.Alpha)
	}
	rc2 := FlashWalkerConfig(d, core.Options{}, 1000, 1)
	if rc2.Cfg.Alpha != core.Default().Alpha {
		t.Fatal("alpha overridden without SS")
	}
}

func TestGraphWalkerConfigScaling(t *testing.T) {
	d, _ := DatasetByName("CW-S")
	cfg := GraphWalkerConfig(d, GWMem8GB, 1)
	if cfg.MemoryBytes != GWMem8GB || cfg.IDBytes != 8 {
		t.Fatal("config not derived")
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}
