package harness

import (
	"context"
	"fmt"
	"io"
	"strconv"

	"flashwalker/internal/core"
	"flashwalker/internal/graph"
	"flashwalker/internal/metrics"
	"flashwalker/internal/sim"
	"flashwalker/internal/snapshot"
)

// resumeSnapshotAt is how many engine snapshots into a run the interrupted
// leg is killed; with SnapshotEvery=1 each snapshot is one checkpoint
// interval, so the cut lands a few thousand events in — late enough that
// every buffer tier holds live state, early enough that most of the run
// happens on the resumed engine.
const resumeSnapshotAt = 3

// ResumeRow compares one dataset's uninterrupted run against the same
// workload snapshotted mid-flight, serialized through the on-disk codec,
// and resumed — the durability extension's metamorphic check in production
// form: the two runs must agree on every walk outcome and on simulated
// time.
type ResumeRow struct {
	Dataset     string
	Walks       int
	DoneAtSnap  int   // walks finished when the snapshot was cut
	SnapBytes   int   // encoded snapshot container size
	CleanTime   sim.Time
	ResumedTime sim.Time
}

// ExtResume runs every dataset to completion, then reruns it with an
// interrupt at the resumeSnapshotAt-th checkpoint snapshot, round-trips
// the snapshot through snapshot.Encode/Decode, resumes, and verifies the
// resumed Result is identical. Any divergence fails the sweep rather than
// producing a row.
func ExtResume(ctx context.Context, scale float64, seed uint64, workers int) ([]ResumeRow, error) {
	ds := Datasets()
	rows := make([]ResumeRow, len(ds))
	err := sweep(ctx, workers, len(ds), func(i int) error {
		d := ds[i]
		walks := scaleWalks(d.DefaultWalks, scale)
		g, err := d.Graph()
		if err != nil {
			return err
		}
		rc := FlashWalkerConfig(d, core.AllOptions(), walks, seed)
		clean, err := runTo(ctx, g, rc)
		if err != nil {
			return err
		}

		// Interrupted leg: cancel the run at the Nth snapshot, exactly as
		// a killed daemon would leave it.
		runCtx, cut := context.WithCancel(ctx)
		defer cut()
		var snap *core.Snapshot
		count := 0
		rc2 := rc
		rc2.SnapshotEvery = 1
		rc2.OnSnapshot = func(s *core.Snapshot) {
			count++
			if count == resumeSnapshotAt {
				snap = s
				cut()
			}
		}
		e, err := core.NewEngine(g, rc2)
		if err != nil {
			return err
		}
		if _, err := e.RunContext(runCtx); err == nil {
			return fmt.Errorf("resume %s: run finished before snapshot %d landed", d.Name, resumeSnapshotAt)
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if snap == nil {
			return fmt.Errorf("resume %s: interrupted after %d snapshots, wanted %d", d.Name, count, resumeSnapshotAt)
		}

		// Round-trip through the codec so the sweep also exercises the
		// serialized form, then resume to completion.
		data, err := snapshot.Encode("core-engine", snap)
		if err != nil {
			return err
		}
		back := new(core.Snapshot)
		if err := snapshot.Decode(data, "core-engine", back); err != nil {
			return err
		}
		resumed, err := core.ResumeContext(ctx, g, back, core.ResumeOptions{})
		if err != nil {
			return err
		}

		if clean.Time != resumed.Time || clean.Completed != resumed.Completed ||
			clean.DeadEnded != resumed.DeadEnded || clean.Hops != resumed.Hops {
			return fmt.Errorf("resume %s: outcomes diverged (clean time=%v completed=%d hops=%d, resumed time=%v completed=%d hops=%d)",
				d.Name, clean.Time, clean.Completed, clean.Hops,
				resumed.Time, resumed.Completed, resumed.Hops)
		}
		rows[i] = ResumeRow{
			Dataset: d.Name, Walks: walks,
			DoneAtSnap: snap.Res.Completed + snap.Res.DeadEnded,
			SnapBytes:  len(data),
			CleanTime:  clean.Time, ResumedTime: resumed.Time,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// runTo executes rc on g to completion.
func runTo(ctx context.Context, g *graph.Graph, rc core.RunConfig) (*core.Result, error) {
	e, err := core.NewEngine(g, rc)
	if err != nil {
		return nil, err
	}
	return e.RunContext(ctx)
}

// FormatExtResume renders the snapshot/resume comparison.
func FormatExtResume(rows []ResumeRow) string {
	t := &metrics.Table{
		Title:   "Extension: snapshot -> serialize -> resume vs uninterrupted run, identical outcomes",
		Headers: []string{"dataset", "walks", "done@snap", "snapshot", "clean", "resumed"},
	}
	for _, r := range rows {
		t.AddRow(r.Dataset, fmt.Sprint(r.Walks),
			fmt.Sprint(r.DoneAtSnap),
			metrics.FormatBytes(int64(r.SnapBytes)),
			r.CleanTime.String(), r.ResumedTime.String())
	}
	return t.Render()
}

// ResumeCSV writes the resume-extension rows as CSV.
func ResumeCSV(w io.Writer, rows []ResumeRow) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			r.Dataset, strconv.Itoa(r.Walks),
			strconv.Itoa(r.DoneAtSnap), strconv.Itoa(r.SnapBytes),
			ns(r.CleanTime), ns(r.ResumedTime),
		}
	}
	return writeCSV(w, []string{
		"dataset", "walks", "done_at_snapshot", "snapshot_bytes",
		"clean_ns", "resumed_ns",
	}, out)
}
