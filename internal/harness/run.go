package harness

import (
	"context"

	"flashwalker/internal/baseline"
	"flashwalker/internal/core"
	"flashwalker/internal/dram"
	"flashwalker/internal/fault"
	"flashwalker/internal/flash"
	"flashwalker/internal/partition"
	"flashwalker/internal/sim"
	"flashwalker/internal/walk"
)

// WalkLength is fixed at 6 in every experiment (paper §IV-A).
const WalkLength = 6

// FlashWalkerConfig derives a scaled core.RunConfig for a dataset. Cycle
// times and unit counts stay at Table II values; subgraph buffers keep the
// paper's slot counts (4 chip slots, 8 channel-resident and 64
// board-resident hot subgraphs) against the scaled block size; walk
// buffers are scaled so overflow pressure appears at the scaled walk
// counts.
func FlashWalkerConfig(d Dataset, opts core.Options, numWalks int, seed uint64) core.RunConfig {
	cfg := core.Default()
	cfg.Opts = opts
	cfg.Seed = seed

	cfg.ChipSubgraphBufBytes = 4 * d.SubgraphBytes
	cfg.ChannelSubgraphBufBytes = 8 * d.SubgraphBytes
	cfg.BoardSubgraphBufBytes = 64 * d.SubgraphBytes

	cfg.ChipWalkQueueBytes = 16 << 10
	cfg.ChannelWalkQueueBytes = 32 << 10
	cfg.BoardWalkQueueBytes = 256 << 10
	cfg.ChipRovingBufBytes = 8 << 10

	cfg.PartitionWalkEntryBytes = 4 << 10
	cfg.CompletedBufBytes = 16 << 10
	cfg.ForeignerBufBytes = 16 << 10
	cfg.ChipCompletedBufBytes = 2 << 10

	// Load batching compensates for the scaled walk density (the paper's
	// walks-per-subgraph is ~300x ours); see DESIGN.md §6.
	cfg.MinWalksToLoad = 8
	cfg.LoadIdleDelay = 20 * sim.Microsecond

	if opts.SmartSchedule {
		// Figure 9 uses α = 0.4 for the SS configuration to relieve the
		// channel bus (§IV-E); β stays 1.5.
		cfg.Alpha = 0.4
		cfg.Beta = 1.5
	}

	return core.RunConfig{
		Cfg:      cfg,
		FlashCfg: flash.Default(),
		DRAMCfg:  dram.Default(),
		PartCfg: partition.Config{
			BlockBytes:            d.SubgraphBytes,
			IDBytes:               d.IDBytes,
			SubgraphsPerPartition: subgraphsPerPartition(d),
			RangeSize:             32,
		},
		Spec:      walk.Spec{Kind: walk.Unbiased, Length: WalkLength},
		NumWalks:  numWalks,
		StartSeed: seed + 100,
	}
}

// subgraphsPerPartition is the dataset's partition granularity (the
// registry default is one 4096-subgraph partition per ~16 MiB of CSR; the
// multi-board preset cuts finer).
func subgraphsPerPartition(d Dataset) int {
	if d.SubgraphsPerPartition > 0 {
		return d.SubgraphsPerPartition
	}
	return 4096
}

// GraphWalkerConfig derives the scaled baseline configuration: block size
// is the paper's 1 GB divided by 4096 (256 KiB), memory is the scaled
// 4/8/16 GB knob.
func GraphWalkerConfig(d Dataset, memBytes int64, seed uint64) baseline.Config {
	return baseline.Config{
		MemoryBytes:  memBytes,
		WalkMemBytes: 64 << 10,
		BlockBytes:   256 << 10,
		IDBytes:      d.IDBytes,
		// GraphWalker (ATC'20) reports up to ~4.9e7 steps/s on an 8-core
		// host; 250 ns per hop per thread across 8 threads gives 3.2e7
		// effective steps/s, a representative mid-range rate.
		CPUHopTime: 250 * sim.Nanosecond,
		Threads:    8,
		Seed:       seed,
	}
}

// RunFlashWalker executes FlashWalker on the dataset. Canceling ctx halts
// the simulation at the next event boundary (see core.Engine.RunContext).
func RunFlashWalker(ctx context.Context, d Dataset, opts core.Options, numWalks int, seed uint64, progressBin sim.Time) (*core.Result, error) {
	g, err := d.Graph()
	if err != nil {
		return nil, err
	}
	rc := FlashWalkerConfig(d, opts, numWalks, seed)
	rc.ProgressBin = progressBin
	e, err := core.NewEngine(g, rc)
	if err != nil {
		return nil, err
	}
	return e.RunContext(ctx)
}

// RunFlashWalkerBoards executes FlashWalker on an nb-board SSD array over
// the dataset. nb <= 1 is the classic single-board engine; time series are
// per-board and therefore unavailable on arrays (progressBin is ignored
// when nb > 1).
func RunFlashWalkerBoards(ctx context.Context, d Dataset, opts core.Options, numWalks, nb int, seed uint64) (*core.Result, error) {
	g, err := d.Graph()
	if err != nil {
		return nil, err
	}
	rc := FlashWalkerConfig(d, opts, numWalks, seed)
	rc.Cfg.Boards = nb
	if nb > 1 {
		a, err := core.NewArray(g, rc)
		if err != nil {
			return nil, err
		}
		return a.RunContext(ctx)
	}
	e, err := core.NewEngine(g, rc)
	if err != nil {
		return nil, err
	}
	return e.RunContext(ctx)
}

// RunFlashWalkerFaults is RunFlashWalker under a fault-injection profile:
// the same workload, with the flash stack perturbed by fc's deterministic
// fault stream.
func RunFlashWalkerFaults(ctx context.Context, d Dataset, opts core.Options, numWalks int, seed uint64, fc fault.Config) (*core.Result, error) {
	g, err := d.Graph()
	if err != nil {
		return nil, err
	}
	rc := FlashWalkerConfig(d, opts, numWalks, seed)
	rc.Cfg.Faults = fc
	e, err := core.NewEngine(g, rc)
	if err != nil {
		return nil, err
	}
	return e.RunContext(ctx)
}

// RunGraphWalker executes the baseline on the dataset with the given
// memory capacity. Canceling ctx halts the simulation at the next event
// boundary (see baseline.Engine.RunContext).
func RunGraphWalker(ctx context.Context, d Dataset, memBytes int64, numWalks int, seed uint64) (*baseline.Result, error) {
	g, err := d.Graph()
	if err != nil {
		return nil, err
	}
	cfg := GraphWalkerConfig(d, memBytes, seed)
	spec := walk.Spec{Kind: walk.Unbiased, Length: WalkLength}
	e, err := baseline.New(g, cfg, spec, numWalks, seed+100)
	if err != nil {
		return nil, err
	}
	return e.RunContext(ctx)
}
