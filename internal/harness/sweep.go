package harness

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"flashwalker/internal/errs"
)

// Every figure of the evaluation is a grid of independent, seed-
// deterministic simulations (dataset × walk count × configuration). The
// sweep runner below fans those grid points out over a worker pool:
// each point derives its RNG roots from the same (seed, point) inputs as
// the serial loop and writes its result into a slot indexed by grid
// position, so the assembled tables are byte-identical to a serial run
// regardless of worker count or completion order.

// Workers resolves a -parallel style worker-count request: n <= 0 means
// one worker per available CPU (GOMAXPROCS).
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// sweep runs fn(i) for every grid point i in [0, n) on a pool of workers
// goroutines (resolved via Workers). fn must write its result into a
// pre-sized slot for index i and must not touch other indices. All points
// run even if one fails; the error for the lowest grid index wins, so the
// reported failure is deterministic too.
//
// Canceling ctx stops new points from being claimed; points already in
// flight finish on their own (their fn is expected to observe the same ctx
// through the engines' RunContext). A canceled sweep reports an error
// satisfying errors.Is(err, errs.ErrCanceled).
func sweep(ctx context.Context, workers, n int, fn func(i int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	canceled := func(i int) error {
		return fmt.Errorf("harness: sweep canceled before point %d of %d: %w", i, n, errs.ErrCanceled)
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return canceled(i)
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errors := make([]error, n)
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				if ctx.Err() != nil {
					errors[i] = canceled(i)
					continue
				}
				errors[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errors {
		if err != nil {
			return err
		}
	}
	return nil
}
