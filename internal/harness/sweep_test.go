package harness

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-1); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-1) = %d", got)
	}
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
}

func TestSweepCoversEveryPoint(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 50
		out := make([]int, n)
		var calls int64
		err := sweep(context.Background(), workers, n, func(i int) error {
			atomic.AddInt64(&calls, 1)
			out[i] = i * i
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if calls != n {
			t.Fatalf("workers=%d: %d calls, want %d", workers, calls, n)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestSweepDeterministicError(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	// Whatever order the workers hit the failing points in, the error for
	// the lowest grid index must win.
	for trial := 0; trial < 10; trial++ {
		err := sweep(context.Background(), 4, 20, func(i int) error {
			switch i {
			case 3:
				return errLow
			case 17:
				return errHigh
			}
			return nil
		})
		if err != errLow {
			t.Fatalf("trial %d: got %v, want %v", trial, err, errLow)
		}
	}
}

func TestSweepZeroPoints(t *testing.T) {
	if err := sweep(context.Background(), 8, 0, func(i int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

// TestFigParallelMatchesSerial is the bit-identity contract behind
// -parallel: the same figure at worker counts 1 and 4 must produce
// deeply equal rows, because every grid point derives its randomness from
// (seed, point) alone.
func TestFigParallelMatchesSerial(t *testing.T) {
	serial, err := Fig1(context.Background(), testScale, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Fig1(context.Background(), testScale, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("Fig1 diverges across worker counts:\nserial: %+v\nparallel: %+v", serial, par)
	}
}
