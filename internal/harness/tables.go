package harness

import (
	"fmt"

	"flashwalker/internal/core"
	"flashwalker/internal/dram"
	"flashwalker/internal/flash"
	"flashwalker/internal/graph"
	"flashwalker/internal/metrics"
	"flashwalker/internal/sim"
)

// Table1 renders Table I: SSD architectural characteristics.
func Table1() string {
	c := flash.Default()
	t := &metrics.Table{
		Title:   "Table I: SSD architectural characteristics",
		Headers: []string{"parameter", "value"},
	}
	t.AddRow("SSD organization", fmt.Sprintf("%d channels, %d chips per channel", c.Channels, c.ChipsPerChannel))
	t.AddRow("Flash channel", fmt.Sprintf("ONFI 3.1 (NV-DDR2), width 8 bit, rate %d MB/s", c.ChannelBytesPerSec/1_000_000))
	t.AddRow("Flash microarchitecture", fmt.Sprintf("%dKB page, %d planes per die, %d dies per chip",
		c.PageBytes/1024, c.PlanesPerDie, c.DiesPerChip))
	t.AddRow("Read latency", c.ReadLatency.String())
	t.AddRow("Program latency", c.ProgramLatency.String())
	return t.Render()
}

// Table2 renders Table II: FlashWalker accelerator configurations.
func Table2() string {
	c := core.Default()
	t := &metrics.Table{
		Title:   "Table II: FlashWalker accelerators configurations",
		Headers: []string{"module", "chip-level", "channel-level", "board-level"},
	}
	freq := func(cycle sim.Time) string { return fmt.Sprintf("%dMHz", 1_000/int64(cycle)) }
	t.AddRow("frequency", freq(c.ChipUpdaterCycle), freq(c.ChannelUpdaterCycle), freq(c.BoardUpdaterCycle))
	t.AddRow("# updaters", fmt.Sprint(c.ChipUpdaters), fmt.Sprint(c.ChannelUpdaters), fmt.Sprint(c.BoardUpdaters))
	t.AddRow("updater cycle", c.ChipUpdaterCycle.String(), c.ChannelUpdaterCycle.String(), c.BoardUpdaterCycle.String())
	t.AddRow("# guiders", fmt.Sprint(c.ChipGuiders), fmt.Sprint(c.ChannelGuiders), fmt.Sprint(c.BoardGuiders))
	t.AddRow("guider cycle", c.ChipGuiderCycle.String(), c.ChannelGuiderCycle.String(), c.BoardGuiderCycle.String())
	t.AddRow("subgraph buffer", metrics.FormatBytes(c.ChipSubgraphBufBytes),
		metrics.FormatBytes(c.ChannelSubgraphBufBytes), metrics.FormatBytes(c.BoardSubgraphBufBytes))
	t.AddRow("walk queues", metrics.FormatBytes(c.ChipWalkQueueBytes),
		metrics.FormatBytes(c.ChannelWalkQueueBytes), metrics.FormatBytes(c.BoardWalkQueueBytes))
	t.AddRow("roving walk buffer", metrics.FormatBytes(c.ChipRovingBufBytes), "-", "-")
	t.AddRow("area (mm^2, paper RTL)", "1.30", "1.84", "14.31")
	return t.Render()
}

// Table3 renders Table III: SSD & DRAM configurations.
func Table3() string {
	f := flash.Default()
	d := dram.Default()
	t := &metrics.Table{
		Title:   "Table III: FlashWalker SSD & DRAM configurations",
		Headers: []string{"parameter", "value"},
	}
	t.AddRow("PCIe bandwidth", fmt.Sprintf("%s (1GB/s x 4)", metrics.FormatRate(float64(f.PCIeBytesPerSec))))
	t.AddRow("host interface", "NVMe")
	t.AddRow("# chans, chips, dies, planes",
		fmt.Sprintf("%d, %d, %d, %d", f.Channels, f.ChipsPerChannel, f.DiesPerChip, f.PlanesPerDie))
	t.AddRow("# blocks, pages", fmt.Sprintf("%d, %d", f.BlocksPerPlane, f.PagesPerBlock))
	t.AddRow("page capacity", metrics.FormatBytes(f.PageBytes))
	t.AddRow("flash comm protocol", "NV-DDR2")
	t.AddRow("channel transfer rate", metrics.FormatRate(float64(f.ChannelBytesPerSec)))
	t.AddRow("flash read latency", f.ReadLatency.String())
	t.AddRow("flash program latency", f.ProgramLatency.String())
	t.AddRow("flash erase latency", f.EraseLatency.String())
	t.AddRow("DRAM protocol", "DDR4")
	t.AddRow("DRAM capacity", metrics.FormatBytes(d.CapacityBytes))
	t.AddRow("DRAM bandwidth", metrics.FormatRate(float64(d.BytesPerSec)))
	t.AddRow("DRAM access latency", d.AccessLatency.String())
	return t.Render()
}

// Table4Row is one dataset row of Table IV.
type Table4Row struct {
	Name     string
	Mirrors  string
	V, E     uint64
	CSRBytes int64
	TextEst  int64
	MaxDeg   uint64
	Gini     float64
}

// Table4 computes the scaled dataset statistics.
func Table4() ([]Table4Row, error) {
	var rows []Table4Row
	for _, d := range Datasets() {
		g, err := d.Graph()
		if err != nil {
			return nil, err
		}
		s := graph.ComputeStats(g)
		rows = append(rows, Table4Row{
			Name: d.Name, Mirrors: d.Mirrors,
			V: s.NumVertices, E: s.NumEdges,
			CSRBytes: g.CSRBytes(d.IDBytes),
			TextEst:  graph.TextSizeEstimate(g),
			MaxDeg:   s.MaxOutDeg,
			Gini:     s.GiniOut,
		})
	}
	return rows, nil
}

// FormatTable4 renders Table IV rows.
func FormatTable4(rows []Table4Row) string {
	t := &metrics.Table{
		Title:   "Table IV: statistics of datasets (scaled analogues, 1/4096 of the originals)",
		Headers: []string{"dataset", "mirrors", "|V|", "|E|", "CSR size", "text size (est)", "max deg", "gini"},
	}
	for _, r := range rows {
		t.AddRow(r.Name, r.Mirrors, fmt.Sprint(r.V), fmt.Sprint(r.E),
			metrics.FormatBytes(r.CSRBytes), metrics.FormatBytes(r.TextEst),
			fmt.Sprint(r.MaxDeg), fmt.Sprintf("%.3f", r.Gini))
	}
	return t.Render()
}
