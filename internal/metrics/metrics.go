// Package metrics provides the measurement plumbing shared by both engines:
// binned time series (for the Figure-8 resource-consumption plots), labelled
// time breakdowns (Figure 1), and plain-text table rendering for the
// experiment harness.
package metrics

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"sort"
	"strings"

	"flashwalker/internal/sim"
)

// TimeSeries accumulates a quantity (usually bytes) into fixed-width time
// bins so per-interval rates can be reported.
type TimeSeries struct {
	bin  sim.Time
	vals []float64
}

// NewTimeSeries creates a series with the given bin width.
func NewTimeSeries(bin sim.Time) *TimeSeries {
	if bin <= 0 {
		panic("metrics: non-positive bin width")
	}
	return &TimeSeries{bin: bin}
}

// maxBins bounds a series' memory: a single Add with a pathological
// timestamp must not allocate a bin per interval between zero and it. When
// a sample lands past the cap the series re-bins — the bin width doubles
// and adjacent bins fold together — until the sample fits, so totals are
// preserved and memory stays O(maxBins) for any input.
const maxBins = 1 << 16

// Add accumulates v into the bin containing time at.
func (ts *TimeSeries) Add(at sim.Time, v float64) {
	if at < 0 {
		at = 0
	}
	for at/ts.bin >= maxBins {
		ts.rebin()
	}
	i := int(at / ts.bin)
	for len(ts.vals) <= i {
		ts.vals = append(ts.vals, 0)
	}
	ts.vals[i] += v
}

// rebin doubles the bin width and folds adjacent bins pairwise. Once the
// width can no longer double without overflowing it saturates at the
// maximum representable time, which every sample fits under.
func (ts *TimeSeries) rebin() {
	if ts.bin > math.MaxInt64/2 {
		ts.bin = math.MaxInt64
	} else {
		ts.bin *= 2
	}
	half := (len(ts.vals) + 1) / 2
	for i := 0; i < half; i++ {
		v := ts.vals[2*i]
		if 2*i+1 < len(ts.vals) {
			v += ts.vals[2*i+1]
		}
		ts.vals[i] = v
	}
	ts.vals = ts.vals[:half]
}

// NumBins reports the number of bins touched so far.
func (ts *TimeSeries) NumBins() int { return len(ts.vals) }

// BinWidth reports the bin width.
func (ts *TimeSeries) BinWidth() sim.Time { return ts.bin }

// Value reports the raw accumulated value of bin i (0 beyond the end).
func (ts *TimeSeries) Value(i int) float64 {
	if i < 0 || i >= len(ts.vals) {
		return 0
	}
	return ts.vals[i]
}

// Rate reports bin i's value converted to a per-second rate.
func (ts *TimeSeries) Rate(i int) float64 {
	return ts.Value(i) / ts.bin.Seconds()
}

// Total reports the sum over all bins.
func (ts *TimeSeries) Total() float64 {
	var s float64
	for _, v := range ts.vals {
		s += v
	}
	return s
}

// Peak reports the maximum per-second rate across bins.
func (ts *TimeSeries) Peak() float64 {
	var m float64
	for i := range ts.vals {
		if r := ts.Rate(i); r > m {
			m = r
		}
	}
	return m
}

// timeSeriesWire is the gob shape of a TimeSeries.
type timeSeriesWire struct {
	Bin  sim.Time
	Vals []float64
}

// GobEncode lets a TimeSeries ride inside gob-encoded snapshots despite
// its unexported fields.
func (ts *TimeSeries) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(timeSeriesWire{Bin: ts.bin, Vals: ts.vals})
	return buf.Bytes(), err
}

// GobDecode is the inverse of GobEncode.
func (ts *TimeSeries) GobDecode(data []byte) error {
	var w timeSeriesWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	if w.Bin <= 0 {
		return fmt.Errorf("metrics: decoded non-positive bin width %d", w.Bin)
	}
	ts.bin = w.Bin
	ts.vals = w.Vals
	return nil
}

// Breakdown is an ordered label -> duration map (Figure 1's stacked bars).
type Breakdown struct {
	labels []string
	vals   map[string]sim.Time
}

// NewBreakdown returns an empty breakdown.
func NewBreakdown() *Breakdown {
	return &Breakdown{vals: map[string]sim.Time{}}
}

// Add accumulates d under label, creating the label on first use.
func (b *Breakdown) Add(label string, d sim.Time) {
	if _, ok := b.vals[label]; !ok {
		b.labels = append(b.labels, label)
	}
	b.vals[label] += d
}

// Get returns the accumulated duration for label.
func (b *Breakdown) Get(label string) sim.Time { return b.vals[label] }

// Labels returns labels in first-use order.
func (b *Breakdown) Labels() []string { return append([]string(nil), b.labels...) }

// Total sums all components.
func (b *Breakdown) Total() sim.Time {
	var t sim.Time
	for _, v := range b.vals {
		t += v
	}
	return t
}

// Fraction reports label's share of the total (0 when empty).
func (b *Breakdown) Fraction(label string) float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return float64(b.vals[label]) / float64(t)
}

// String renders the breakdown sorted by share, largest first.
func (b *Breakdown) String() string {
	labels := b.Labels()
	sort.Slice(labels, func(i, j int) bool { return b.vals[labels[i]] > b.vals[labels[j]] })
	var sb strings.Builder
	for _, l := range labels {
		fmt.Fprintf(&sb, "%-24s %12v %6.1f%%\n", l, b.vals[l], 100*b.Fraction(l))
	}
	return sb.String()
}

// Table is a simple fixed-width text table, enough for the experiment
// harness to print paper-style rows.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render formats the table with padded columns.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, r := range t.Rows {
		writeRow(r)
	}
	return sb.String()
}

// FormatBytes renders a byte count with binary units.
func FormatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// FormatRate renders a bytes-per-second rate with decimal units.
func FormatRate(bps float64) string {
	switch {
	case bps >= 1e9:
		return fmt.Sprintf("%.2fGB/s", bps/1e9)
	case bps >= 1e6:
		return fmt.Sprintf("%.2fMB/s", bps/1e6)
	case bps >= 1e3:
		return fmt.Sprintf("%.2fKB/s", bps/1e3)
	default:
		return fmt.Sprintf("%.0fB/s", bps)
	}
}
