package metrics

import (
	"strings"
	"testing"

	"flashwalker/internal/sim"
)

func TestTimeSeriesBinning(t *testing.T) {
	ts := NewTimeSeries(100 * sim.Millisecond)
	ts.Add(0, 10)
	ts.Add(50*sim.Millisecond, 5)
	ts.Add(150*sim.Millisecond, 7)
	if ts.NumBins() != 2 {
		t.Fatalf("NumBins = %d", ts.NumBins())
	}
	if ts.Value(0) != 15 || ts.Value(1) != 7 {
		t.Fatalf("bins = %v %v", ts.Value(0), ts.Value(1))
	}
	if ts.Value(99) != 0 || ts.Value(-1) != 0 {
		t.Fatal("out-of-range bins not zero")
	}
}

func TestTimeSeriesRate(t *testing.T) {
	ts := NewTimeSeries(sim.Second / 2)
	ts.Add(0, 1e6) // 1 MB in half a second -> 2 MB/s
	if r := ts.Rate(0); r != 2e6 {
		t.Fatalf("Rate = %v", r)
	}
}

func TestTimeSeriesTotalAndPeak(t *testing.T) {
	ts := NewTimeSeries(sim.Second)
	ts.Add(0, 3)
	ts.Add(sim.Second, 10)
	ts.Add(2*sim.Second, 5)
	if ts.Total() != 18 {
		t.Fatalf("Total = %v", ts.Total())
	}
	if ts.Peak() != 10 {
		t.Fatalf("Peak = %v", ts.Peak())
	}
}

func TestTimeSeriesNegativeTimeClamped(t *testing.T) {
	ts := NewTimeSeries(sim.Second)
	ts.Add(-5, 1)
	if ts.Value(0) != 1 {
		t.Fatal("negative time not clamped into bin 0")
	}
}

func TestTimeSeriesBadBinPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero bin width did not panic")
		}
	}()
	NewTimeSeries(0)
}

func TestBreakdown(t *testing.T) {
	b := NewBreakdown()
	b.Add("io", 75*sim.Millisecond)
	b.Add("cpu", 25*sim.Millisecond)
	b.Add("io", 25*sim.Millisecond)
	if b.Total() != 125*sim.Millisecond {
		t.Fatalf("Total = %v", b.Total())
	}
	if b.Get("io") != 100*sim.Millisecond {
		t.Fatalf("io = %v", b.Get("io"))
	}
	if f := b.Fraction("io"); f != 0.8 {
		t.Fatalf("Fraction(io) = %v", f)
	}
	labels := b.Labels()
	if len(labels) != 2 || labels[0] != "io" || labels[1] != "cpu" {
		t.Fatalf("Labels = %v", labels)
	}
	s := b.String()
	if !strings.Contains(s, "io") || !strings.Contains(s, "80.0%") {
		t.Fatalf("String = %q", s)
	}
}

func TestBreakdownEmptyFraction(t *testing.T) {
	b := NewBreakdown()
	if b.Fraction("nothing") != 0 {
		t.Fatal("empty breakdown fraction not 0")
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{Title: "T", Headers: []string{"a", "bbbb"}}
	tb.AddRow("xxxxx", "y")
	tb.AddRow("1", "2")
	out := tb.Render()
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "xxxxx") {
		t.Fatalf("render:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{512, "512B"},
		{2048, "2.00KiB"},
		{3 << 20, "3.00MiB"},
		{5 << 30, "5.00GiB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.in); got != c.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFormatRate(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{500, "500B/s"},
		{2e3, "2.00KB/s"},
		{3.5e6, "3.50MB/s"},
		{10.4e9, "10.40GB/s"},
	}
	for _, c := range cases {
		if got := FormatRate(c.in); got != c.want {
			t.Errorf("FormatRate(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}
