package metrics

import (
	"bytes"
	"encoding/gob"
	"math"
	"strings"
	"testing"

	"flashwalker/internal/sim"
)

func TestTimeSeriesBinning(t *testing.T) {
	ts := NewTimeSeries(100 * sim.Millisecond)
	ts.Add(0, 10)
	ts.Add(50*sim.Millisecond, 5)
	ts.Add(150*sim.Millisecond, 7)
	if ts.NumBins() != 2 {
		t.Fatalf("NumBins = %d", ts.NumBins())
	}
	if ts.Value(0) != 15 || ts.Value(1) != 7 {
		t.Fatalf("bins = %v %v", ts.Value(0), ts.Value(1))
	}
	if ts.Value(99) != 0 || ts.Value(-1) != 0 {
		t.Fatal("out-of-range bins not zero")
	}
}

func TestTimeSeriesRate(t *testing.T) {
	ts := NewTimeSeries(sim.Second / 2)
	ts.Add(0, 1e6) // 1 MB in half a second -> 2 MB/s
	if r := ts.Rate(0); r != 2e6 {
		t.Fatalf("Rate = %v", r)
	}
}

func TestTimeSeriesTotalAndPeak(t *testing.T) {
	ts := NewTimeSeries(sim.Second)
	ts.Add(0, 3)
	ts.Add(sim.Second, 10)
	ts.Add(2*sim.Second, 5)
	if ts.Total() != 18 {
		t.Fatalf("Total = %v", ts.Total())
	}
	if ts.Peak() != 10 {
		t.Fatalf("Peak = %v", ts.Peak())
	}
}

func TestTimeSeriesNegativeTimeClamped(t *testing.T) {
	ts := NewTimeSeries(sim.Second)
	ts.Add(-5, 1)
	if ts.Value(0) != 1 {
		t.Fatal("negative time not clamped into bin 0")
	}
}

func TestTimeSeriesPathologicalTimestampBounded(t *testing.T) {
	// A sample at the far end of the time axis used to allocate one bin per
	// interval between zero and it — gigabytes for a nanosecond bin width.
	// It must instead re-bin into a bounded number of wider bins with the
	// total preserved.
	ts := NewTimeSeries(sim.Nanosecond)
	ts.Add(0, 3)
	ts.Add(sim.Time(math.MaxInt64), 7)
	if n := ts.NumBins(); n > maxBins {
		t.Fatalf("pathological timestamp grew the series to %d bins", n)
	}
	if got := ts.Total(); got != 10 {
		t.Fatalf("Total = %v after re-binning, want 10", got)
	}
	if ts.BinWidth() <= sim.Nanosecond {
		t.Fatal("bin width did not widen")
	}
	// The early sample folded into bin 0; the late one is in the last bin.
	if ts.Value(0) != 3 {
		t.Fatalf("bin 0 = %v, want 3", ts.Value(0))
	}

	// Follow-up samples at ordinary times keep working.
	ts.Add(sim.Second, 5)
	if got := ts.Total(); got != 15 {
		t.Fatalf("Total = %v after follow-up, want 15", got)
	}
}

func TestTimeSeriesRebinPreservesTotals(t *testing.T) {
	ts := NewTimeSeries(sim.Nanosecond)
	var want float64
	for i := 0; i < 1000; i++ {
		ts.Add(sim.Time(i)*sim.Microsecond, float64(i))
		want += float64(i)
	}
	// Force several rebins with a far-future sample.
	ts.Add(sim.Time(1)<<40, 1)
	want++
	if got := ts.Total(); got != want {
		t.Fatalf("Total = %v, want %v", got, want)
	}
	if n := ts.NumBins(); n > maxBins {
		t.Fatalf("NumBins = %d exceeds cap", n)
	}
}

func TestTimeSeriesGobRoundTrip(t *testing.T) {
	in := NewTimeSeries(100 * sim.Millisecond)
	in.Add(0, 4)
	in.Add(250*sim.Millisecond, 9)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(in); err != nil {
		t.Fatal(err)
	}
	out := new(TimeSeries)
	if err := gob.NewDecoder(&buf).Decode(out); err != nil {
		t.Fatal(err)
	}
	if out.BinWidth() != in.BinWidth() || out.NumBins() != in.NumBins() || out.Total() != in.Total() {
		t.Fatalf("gob round trip mangled series: bin %v bins %d total %v",
			out.BinWidth(), out.NumBins(), out.Total())
	}
}

func TestTimeSeriesBadBinPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero bin width did not panic")
		}
	}()
	NewTimeSeries(0)
}

func TestBreakdown(t *testing.T) {
	b := NewBreakdown()
	b.Add("io", 75*sim.Millisecond)
	b.Add("cpu", 25*sim.Millisecond)
	b.Add("io", 25*sim.Millisecond)
	if b.Total() != 125*sim.Millisecond {
		t.Fatalf("Total = %v", b.Total())
	}
	if b.Get("io") != 100*sim.Millisecond {
		t.Fatalf("io = %v", b.Get("io"))
	}
	if f := b.Fraction("io"); f != 0.8 {
		t.Fatalf("Fraction(io) = %v", f)
	}
	labels := b.Labels()
	if len(labels) != 2 || labels[0] != "io" || labels[1] != "cpu" {
		t.Fatalf("Labels = %v", labels)
	}
	s := b.String()
	if !strings.Contains(s, "io") || !strings.Contains(s, "80.0%") {
		t.Fatalf("String = %q", s)
	}
}

func TestBreakdownEmptyFraction(t *testing.T) {
	b := NewBreakdown()
	if b.Fraction("nothing") != 0 {
		t.Fatal("empty breakdown fraction not 0")
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{Title: "T", Headers: []string{"a", "bbbb"}}
	tb.AddRow("xxxxx", "y")
	tb.AddRow("1", "2")
	out := tb.Render()
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "xxxxx") {
		t.Fatalf("render:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{512, "512B"},
		{2048, "2.00KiB"},
		{3 << 20, "3.00MiB"},
		{5 << 30, "5.00GiB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.in); got != c.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFormatRate(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{500, "500B/s"},
		{2e3, "2.00KB/s"},
		{3.5e6, "3.50MB/s"},
		{10.4e9, "10.40GB/s"},
	}
	for _, c := range cases {
		if got := FormatRate(c.in); got != c.want {
			t.Errorf("FormatRate(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}
