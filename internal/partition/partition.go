// Package partition splits a graph into fixed-size graph blocks (the
// paper's subgraphs), builds the subgraph mapping table, the subgraph
// range table used by the approximate walk search, and the dense-vertices
// mapping table used by pre-walking, and assigns blocks to flash chips.
//
// Terminology follows the paper (§III-D):
//
//   - A *graph block* stores a run of consecutive vertices and all their
//     out-edges in CSR form within a fixed byte budget. Because vertices
//     have varying degree, blocks hold varying numbers of vertices.
//   - A *dense vertex* has more out-edges than fit in one block; its edges
//     are split across several consecutive dense blocks, each holding a
//     contiguous slice of the edge list.
//   - A *partition* is a fixed-length run of consecutive blocks. The
//     engine processes one partition at a time; walks leaving the current
//     partition are "foreigners".
//   - A *range* is a fixed-length run of consecutive blocks used by
//     channel-level accelerators to answer approximate (range-granular)
//     walk queries against a table RangeSize× smaller than the full
//     mapping table.
package partition

import (
	"fmt"

	"flashwalker/internal/bloom"
	"flashwalker/internal/graph"
)

// Config controls partitioning.
type Config struct {
	// BlockBytes is the graph-block payload capacity (the paper uses
	// 256 KB, 512 KB for ClueWeb; the scaled defaults here are smaller).
	BlockBytes int64
	// IDBytes is the on-flash width of a vertex ID (4 or 8, Table IV).
	IDBytes int
	// SubgraphsPerPartition is the number of blocks per graph partition.
	SubgraphsPerPartition int
	// RangeSize is the number of blocks per subgraph range (paper example:
	// 256).
	RangeSize int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.BlockBytes <= 0 {
		return fmt.Errorf("partition: BlockBytes %d <= 0", c.BlockBytes)
	}
	if c.IDBytes != 4 && c.IDBytes != 8 {
		return fmt.Errorf("partition: IDBytes %d not 4 or 8", c.IDBytes)
	}
	if c.SubgraphsPerPartition <= 0 {
		return fmt.Errorf("partition: SubgraphsPerPartition %d <= 0", c.SubgraphsPerPartition)
	}
	if c.RangeSize <= 0 {
		return fmt.Errorf("partition: RangeSize %d <= 0", c.RangeSize)
	}
	return nil
}

// EdgeBytes reports the per-edge storage cost for a graph (ID plus a float32
// weight when weighted).
func (c Config) EdgeBytes(weighted bool) int64 {
	b := int64(c.IDBytes)
	if weighted {
		b += 4
	}
	return b
}

// EdgesPerBlock reports the dense-vertex threshold: the largest out-degree
// that still fits one block alongside its vertex header. A vertex above it
// is dense, and a mutation stream must keep every touched vertex at or
// below it so the frozen partition skeleton stays valid (no density flips,
// no block overflow).
func (c Config) EdgesPerBlock(weighted bool) uint64 {
	return uint64((c.BlockBytes - int64(c.IDBytes)) / c.EdgeBytes(weighted))
}

// Block describes one graph block (one subgraph mapping table entry: the two
// end vertices, the flash address — assigned by Placement — and the summed
// out-degree, per paper §III-D).
type Block struct {
	ID int
	// LowVertex..HighVertex is the inclusive vertex range stored here. For
	// a dense block both equal the dense vertex.
	LowVertex, HighVertex graph.VertexID
	// SumOutDeg is the number of edges stored in this block.
	SumOutDeg uint64
	// Bytes is the payload size.
	Bytes int64
	// Dense marks a block holding a slice of a dense vertex's edges.
	Dense bool
	// DenseEdgeStart is the offset of this block's first edge within the
	// dense vertex's edge list (0 for non-dense blocks).
	DenseEdgeStart uint64
}

// DenseMeta is the dense-vertices mapping table payload (paper §III-D): the
// number of graph blocks of the vertex, the ID of its first block, and the
// out-degree stored in the last block.
type DenseMeta struct {
	Vertex       graph.VertexID
	NumBlocks    int
	FirstBlockID int
	LastBlockDeg uint64
	// EdgesPerBlock is size(gb) in the pre-walking formula: every block of
	// the vertex except the last holds exactly this many edges.
	EdgesPerBlock uint64
	OutDegree     uint64
}

// DenseTable is the bloom filter + hash table combination of §III-D.
type DenseTable struct {
	filter *bloom.Filter
	meta   map[graph.VertexID]DenseMeta
}

// Contains runs the bloom-filter membership check. False is authoritative.
func (d *DenseTable) Contains(v graph.VertexID) bool { return d.filter.Contains(uint64(v)) }

// Lookup returns the metadata for v; ok is false on a bloom false positive
// (the hash table misses, so the caller falls back to the normal mapping
// table — the correctness argument in the paper).
func (d *DenseTable) Lookup(v graph.VertexID) (DenseMeta, bool) {
	m, ok := d.meta[v]
	return m, ok
}

// Len reports the number of dense vertices.
func (d *DenseTable) Len() int { return len(d.meta) }

// FilterBytes reports the bloom filter size.
func (d *DenseTable) FilterBytes() int { return d.filter.SizeBytes() }

// Range is one subgraph-range mapping table entry: the low-end and high-end
// vertex of a run of RangeSize consecutive blocks.
type Range struct {
	ID                    int
	LowVertex, HighVertex graph.VertexID
	FirstBlock, LastBlock int // inclusive block span
}

// Partitioned is the partitioning result.
type Partitioned struct {
	G      *graph.Graph
	Cfg    Config
	Blocks []Block
	// table holds IDs of non-dense blocks in vertex order; it is the
	// subgraph mapping table the board-level guider binary-searches.
	table []int
	// tabLow/tabHigh/tabID are the mapping table's boundary columns in
	// flat struct-of-arrays form: a search probe reads two adjacent vertex
	// IDs instead of dereferencing a full Block record, so the hot binary
	// searches stay inside a handful of cache lines. Parallel to table.
	tabLow, tabHigh []graph.VertexID
	tabID           []int32
	// rngLow/rngHigh mirror Ranges the same way for RangeOf.
	rngLow, rngHigh []graph.VertexID
	Dense           *DenseTable
	Ranges          []Range
	// NumPartitions is ceil(len(Blocks)/SubgraphsPerPartition).
	NumPartitions int
}

// Partition splits g according to cfg.
func Partition(g *graph.Graph, cfg Config) (*Partitioned, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	edgeBytes := cfg.EdgeBytes(g.Weighted())
	vertexHeader := int64(cfg.IDBytes) // per-vertex offset entry
	// Dense threshold: a vertex that cannot fit alone in one block.
	edgesPerBlock := uint64((cfg.BlockBytes - vertexHeader) / edgeBytes)
	if edgesPerBlock == 0 {
		return nil, fmt.Errorf("partition: BlockBytes %d cannot hold a single edge", cfg.BlockBytes)
	}

	p := &Partitioned{G: g, Cfg: cfg}
	denseMeta := map[graph.VertexID]DenseMeta{}

	var cur *Block
	var curBytes int64
	flush := func() {
		if cur != nil {
			cur.Bytes = curBytes
			p.Blocks = append(p.Blocks, *cur)
			p.table = append(p.table, cur.ID)
			cur = nil
			curBytes = 0
		}
	}
	n := g.NumVertices()
	for v := graph.VertexID(0); v < n; v++ {
		deg := g.OutDegree(v)
		need := vertexHeader + int64(deg)*edgeBytes
		if need > cfg.BlockBytes {
			// Dense vertex: close the running block and emit dedicated
			// dense blocks.
			flush()
			numBlocks := int((deg + edgesPerBlock - 1) / edgesPerBlock)
			first := len(p.Blocks)
			remaining := deg
			var start uint64
			for b := 0; b < numBlocks; b++ {
				take := edgesPerBlock
				if remaining < take {
					take = remaining
				}
				p.Blocks = append(p.Blocks, Block{
					ID:             len(p.Blocks),
					LowVertex:      v,
					HighVertex:     v,
					SumOutDeg:      take,
					Bytes:          vertexHeader + int64(take)*edgeBytes,
					Dense:          true,
					DenseEdgeStart: start,
				})
				start += take
				remaining -= take
			}
			denseMeta[v] = DenseMeta{
				Vertex:        v,
				NumBlocks:     numBlocks,
				FirstBlockID:  first,
				LastBlockDeg:  deg - uint64(numBlocks-1)*edgesPerBlock,
				EdgesPerBlock: edgesPerBlock,
				OutDegree:     deg,
			}
			continue
		}
		if cur != nil && curBytes+need > cfg.BlockBytes {
			flush()
		}
		if cur == nil {
			cur = &Block{ID: len(p.Blocks), LowVertex: v, HighVertex: v}
		}
		cur.HighVertex = v
		cur.SumOutDeg += deg
		curBytes += need
	}
	flush()

	if len(p.Blocks) == 0 {
		// Degenerate zero-vertex graph: one empty block keeps downstream
		// bookkeeping uniform.
		p.Blocks = append(p.Blocks, Block{ID: 0})
		p.table = append(p.table, 0)
	}

	// Dense table: bloom sized for the dense population.
	f := bloom.New(maxInt(len(denseMeta), 1), 0.001)
	for v := range denseMeta {
		f.Add(uint64(v))
	}
	p.Dense = &DenseTable{filter: f, meta: denseMeta}

	// Ranges over all blocks.
	for first := 0; first < len(p.Blocks); first += cfg.RangeSize {
		last := first + cfg.RangeSize - 1
		if last >= len(p.Blocks) {
			last = len(p.Blocks) - 1
		}
		p.Ranges = append(p.Ranges, Range{
			ID:         len(p.Ranges),
			LowVertex:  p.Blocks[first].LowVertex,
			HighVertex: p.Blocks[last].HighVertex,
			FirstBlock: first,
			LastBlock:  last,
		})
	}

	p.NumPartitions = (len(p.Blocks) + cfg.SubgraphsPerPartition - 1) / cfg.SubgraphsPerPartition

	// Flatten the search columns (see the field comments).
	p.tabLow = make([]graph.VertexID, len(p.table))
	p.tabHigh = make([]graph.VertexID, len(p.table))
	p.tabID = make([]int32, len(p.table))
	for i, id := range p.table {
		b := &p.Blocks[id]
		p.tabLow[i], p.tabHigh[i], p.tabID[i] = b.LowVertex, b.HighVertex, int32(id)
	}
	p.rngLow = make([]graph.VertexID, len(p.Ranges))
	p.rngHigh = make([]graph.VertexID, len(p.Ranges))
	for i := range p.Ranges {
		p.rngLow[i], p.rngHigh[i] = p.Ranges[i].LowVertex, p.Ranges[i].HighVertex
	}
	return p, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// NumBlocks reports the total number of graph blocks.
func (p *Partitioned) NumBlocks() int { return len(p.Blocks) }

// TableLen reports the number of entries in the (non-dense) subgraph
// mapping table.
func (p *Partitioned) TableLen() int { return len(p.table) }

// TableEntry returns the i-th mapping-table block ID (entries are sorted by
// LowVertex by construction).
func (p *Partitioned) TableEntry(i int) int { return p.table[i] }

// PartitionOf reports the partition index of a block.
func (p *Partitioned) PartitionOf(blockID int) int {
	return blockID / p.Cfg.SubgraphsPerPartition
}

// PartitionSpan returns the inclusive block-ID span of partition pi.
func (p *Partitioned) PartitionSpan(pi int) (first, last int) {
	first = pi * p.Cfg.SubgraphsPerPartition
	last = first + p.Cfg.SubgraphsPerPartition - 1
	if last >= len(p.Blocks) {
		last = len(p.Blocks) - 1
	}
	return first, last
}

// BlockOf binary-searches the subgraph mapping table for the non-dense block
// containing v. It returns the block ID and the number of search steps the
// hardware would perform (for the guider cost model). It returns -1 when v
// is not covered by any non-dense block (i.e. v is dense — callers must
// consult the dense table first, as the board-level guider does).
func (p *Partitioned) BlockOf(v graph.VertexID) (blockID, steps int) {
	return p.searchTable(v, 0, len(p.table)-1)
}

// BlockOfInRange is BlockOf restricted to the table entries of range r —
// the reduced search a board-level guider performs on a walk tagged by a
// channel-level approximate query.
func (p *Partitioned) BlockOfInRange(v graph.VertexID, r Range) (blockID, steps int) {
	lo := p.lowerTableIndex(r.FirstBlock)
	hi := p.upperTableIndex(r.LastBlock)
	return p.searchTable(v, lo, hi)
}

// lowerTableIndex finds the first table index whose block ID >= blockID.
func (p *Partitioned) lowerTableIndex(blockID int) int {
	lo, hi := 0, len(p.table)
	for lo < hi {
		mid := (lo + hi) / 2
		if p.table[mid] < blockID {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// upperTableIndex finds the last table index whose block ID <= blockID.
func (p *Partitioned) upperTableIndex(blockID int) int {
	lo, hi := 0, len(p.table)
	for lo < hi {
		mid := (lo + hi) / 2
		if p.table[mid] <= blockID {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}

// searchTable runs the guider's binary search over the flattened boundary
// columns. The loop (and so the modelled step count) is identical to a
// search over the Block records; only the memory layout differs.
func (p *Partitioned) searchTable(v graph.VertexID, lo, hi int) (blockID, steps int) {
	low, high := p.tabLow, p.tabHigh
	for lo <= hi {
		steps++
		mid := (lo + hi) / 2
		switch {
		case v < low[mid]:
			hi = mid - 1
		case v > high[mid]:
			lo = mid + 1
		default:
			return int(p.tabID[mid]), steps
		}
	}
	return -1, steps
}

// RangeOf binary-searches the subgraph range table for the range containing
// v, returning the range index and search steps. Every vertex (dense or
// not) is covered by exactly one range.
func (p *Partitioned) RangeOf(v graph.VertexID) (rangeID, steps int) {
	low, high := p.rngLow, p.rngHigh
	lo, hi := 0, len(low)-1
	for lo <= hi {
		steps++
		mid := (lo + hi) / 2
		switch {
		case v < low[mid]:
			hi = mid - 1
		case v > high[mid]:
			lo = mid + 1
		default:
			return mid, steps
		}
	}
	return -1, steps
}

// DenseBlockFor implements pre-walking's block selection (paper §III-D):
// given a dense vertex's metadata and the raw random edge index rnd in
// [0, outDegree), it returns the block ID holding that edge and the offset
// of the edge within the block.
func DenseBlockFor(m DenseMeta, rnd uint64) (blockID int, edgeInBlock uint64) {
	b := rnd / m.EdgesPerBlock
	return m.FirstBlockID + int(b), rnd % m.EdgesPerBlock
}

// BlockEdges returns the global edge-index span [first, last) of the edges
// stored in block b.
func (p *Partitioned) BlockEdges(b *Block) (first, last uint64) {
	off := p.G.Offsets
	if b.Dense {
		first = off[b.LowVertex] + b.DenseEdgeStart
		return first, first + b.SumOutDeg
	}
	return off[b.LowVertex], off[b.HighVertex+1]
}

// Pages reports the number of flash pages of size pageBytes block b
// occupies.
func (p *Partitioned) Pages(b *Block, pageBytes int64) int {
	if b.Bytes == 0 {
		return 1
	}
	return int((b.Bytes + pageBytes - 1) / pageBytes)
}

// EdgeKey combines a directed edge's endpoints into one filter key.
func EdgeKey(src, dst graph.VertexID) uint64 {
	return src*0x100000001b3 ^ dst
}

// EdgeFilter builds a Bloom filter over the graph's directed edges. The
// in-storage second-order walk sampler keeps it in on-board DRAM to answer
// "is x a neighbor of the walk's previous vertex" without loading that
// vertex's subgraph; false positives slightly overweight the
// common-neighbor class, which rejection sampling tolerates.
func EdgeFilter(g *graph.Graph, fp float64) *bloom.Filter {
	f := bloom.New(int(g.NumEdges())+1, fp)
	for v := graph.VertexID(0); v < g.NumVertices(); v++ {
		for _, d := range g.OutEdges(v) {
			f.Add(EdgeKey(v, d))
		}
	}
	return f
}

// EdgeFilterCounting is EdgeFilter's delete-capable variant for dynamic
// runs: sized for `capacity` keys (the edge count after the whole mutation
// stream, so the geometry matches the plain filter a from-scratch build of
// the final graph would use) and populated with the graph's current edges.
// Counts are additive over the edge multiset, so incremental Add/Remove
// keeps the bit array — and every probe answer — identical to rebuilding.
func EdgeFilterCounting(g *graph.Graph, fp float64, capacity int) *bloom.Counting {
	f := bloom.NewCounting(capacity, fp)
	for v := graph.VertexID(0); v < g.NumVertices(); v++ {
		for _, d := range g.OutEdges(v) {
			f.Add(EdgeKey(v, d))
		}
	}
	return f
}

// ApplyEdgeDelta patches the frozen skeleton's per-block stats for a
// mutation on src's out-edges: SumOutDeg and Bytes move by delta edges.
// The skeleton itself — block boundaries, mapping and range tables, the
// dense set — never changes; stream validation already rejected mutations
// that would move it (dense vertices, block overflow, density flips).
func (p *Partitioned) ApplyEdgeDelta(src graph.VertexID, delta int64) error {
	id, _ := p.BlockOf(src)
	if id < 0 || id >= len(p.Blocks) {
		return fmt.Errorf("partition: no block for mutated vertex %d", src)
	}
	b := &p.Blocks[id]
	if b.Dense {
		return fmt.Errorf("partition: mutation touches dense vertex %d", src)
	}
	newDeg := int64(b.SumOutDeg) + delta
	newBytes := b.Bytes + delta*p.Cfg.EdgeBytes(p.G.Weighted())
	if newDeg < 0 || newBytes < 0 || newBytes > p.Cfg.BlockBytes {
		return fmt.Errorf("partition: mutation on vertex %d leaves block %d at %d edges / %d bytes",
			src, id, newDeg, newBytes)
	}
	b.SumOutDeg = uint64(newDeg)
	b.Bytes = newBytes
	return nil
}

// InDegreeSums computes, per block, the total in-degree of the vertices it
// stores (dense blocks share their vertex's in-degree proportionally to the
// edge slice they hold). Hot-subgraph selection keeps the top-K by this
// metric (paper §III-C).
func (p *Partitioned) InDegreeSums() []uint64 {
	in := graph.InDegrees(p.G)
	sums := make([]uint64, len(p.Blocks))
	for i := range p.Blocks {
		b := &p.Blocks[i]
		if b.Dense {
			total := in[b.LowVertex]
			deg := p.G.OutDegree(b.LowVertex)
			if deg > 0 {
				sums[i] = total * b.SumOutDeg / deg
			}
			continue
		}
		var s uint64
		for v := b.LowVertex; v <= b.HighVertex; v++ {
			s += in[v]
		}
		sums[i] = s
	}
	return sums
}
