package partition

import (
	"testing"
	"testing/quick"

	"flashwalker/internal/graph"
	"flashwalker/internal/rng"
)

func cfg4k() Config {
	return Config{BlockBytes: 4096, IDBytes: 4, SubgraphsPerPartition: 8, RangeSize: 4}
}

func mustPartition(t *testing.T, g *graph.Graph, cfg Config) *Partitioned {
	t.Helper()
	p, err := Partition(g, cfg)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	return p
}

func TestConfigValidate(t *testing.T) {
	good := cfg4k()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{BlockBytes: 0, IDBytes: 4, SubgraphsPerPartition: 1, RangeSize: 1},
		{BlockBytes: 100, IDBytes: 3, SubgraphsPerPartition: 1, RangeSize: 1},
		{BlockBytes: 100, IDBytes: 4, SubgraphsPerPartition: 0, RangeSize: 1},
		{BlockBytes: 100, IDBytes: 4, SubgraphsPerPartition: 1, RangeSize: 0},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestEdgeBytes(t *testing.T) {
	c := cfg4k()
	if c.EdgeBytes(false) != 4 {
		t.Fatal("unweighted edge bytes")
	}
	if c.EdgeBytes(true) != 8 {
		t.Fatal("weighted edge bytes")
	}
}

func TestBlocksCoverAllVerticesOnce(t *testing.T) {
	g, _ := graph.RMAT(graph.DefaultRMAT(2048, 16384, 1))
	p := mustPartition(t, g, cfg4k())
	covered := make([]int, g.NumVertices())
	for _, b := range p.Blocks {
		if b.Dense {
			continue
		}
		for v := b.LowVertex; v <= b.HighVertex; v++ {
			covered[v]++
		}
	}
	for v, c := range covered {
		dense := p.Dense.Contains(graph.VertexID(v))
		if _, isDense := p.Dense.Lookup(graph.VertexID(v)); isDense {
			if c != 0 {
				t.Fatalf("dense vertex %d also in non-dense block", v)
			}
			continue
		}
		_ = dense
		if c != 1 {
			t.Fatalf("vertex %d covered %d times", v, c)
		}
	}
}

func TestBlocksCoverAllEdges(t *testing.T) {
	g, _ := graph.RMAT(graph.DefaultRMAT(1024, 8192, 2))
	p := mustPartition(t, g, cfg4k())
	var total uint64
	for _, b := range p.Blocks {
		total += b.SumOutDeg
	}
	if total != g.NumEdges() {
		t.Fatalf("blocks hold %d edges, graph has %d", total, g.NumEdges())
	}
}

func TestBlockByteBudgetRespected(t *testing.T) {
	g, _ := graph.RMAT(graph.DefaultRMAT(1024, 8192, 3))
	c := cfg4k()
	p := mustPartition(t, g, c)
	for _, b := range p.Blocks {
		if b.Bytes > c.BlockBytes {
			t.Fatalf("block %d is %d bytes > budget %d", b.ID, b.Bytes, c.BlockBytes)
		}
	}
}

func TestDenseVertexSplit(t *testing.T) {
	// Star hub has 3000 out-edges; with 4 KB blocks and 4-byte IDs
	// edgesPerBlock = (4096-4)/4 = 1023, so the hub needs 3 blocks.
	g := graph.Star(3000)
	p := mustPartition(t, g, cfg4k())
	m, ok := p.Dense.Lookup(0)
	if !ok {
		t.Fatal("hub not in dense table")
	}
	if m.NumBlocks != 3 {
		t.Fatalf("NumBlocks = %d, want 3", m.NumBlocks)
	}
	if m.EdgesPerBlock != 1023 {
		t.Fatalf("EdgesPerBlock = %d, want 1023", m.EdgesPerBlock)
	}
	if m.LastBlockDeg != 3000-2*1023 {
		t.Fatalf("LastBlockDeg = %d", m.LastBlockDeg)
	}
	if m.OutDegree != 3000 {
		t.Fatalf("OutDegree = %d", m.OutDegree)
	}
	// Dense blocks must be consecutive, flagged, and partition the edge list.
	var sum uint64
	for i := 0; i < m.NumBlocks; i++ {
		b := p.Blocks[m.FirstBlockID+i]
		if !b.Dense || b.LowVertex != 0 || b.HighVertex != 0 {
			t.Fatalf("dense block %d malformed: %+v", i, b)
		}
		if b.DenseEdgeStart != uint64(i)*m.EdgesPerBlock {
			t.Fatalf("dense block %d starts at %d", i, b.DenseEdgeStart)
		}
		sum += b.SumOutDeg
	}
	if sum != 3000 {
		t.Fatalf("dense blocks hold %d edges", sum)
	}
}

func TestDenseBlockForPreWalking(t *testing.T) {
	m := DenseMeta{FirstBlockID: 10, NumBlocks: 3, EdgesPerBlock: 100, OutDegree: 250}
	cases := []struct {
		rnd   uint64
		block int
		off   uint64
	}{
		{0, 10, 0}, {99, 10, 99}, {100, 11, 0}, {199, 11, 99}, {200, 12, 0}, {249, 12, 49},
	}
	for _, c := range cases {
		b, off := DenseBlockFor(m, c.rnd)
		if b != c.block || off != c.off {
			t.Errorf("DenseBlockFor(%d) = (%d,%d), want (%d,%d)", c.rnd, b, off, c.block, c.off)
		}
	}
}

func TestBlockOfFindsEveryNonDenseVertex(t *testing.T) {
	g, _ := graph.RMAT(graph.DefaultRMAT(2048, 8192, 4))
	p := mustPartition(t, g, cfg4k())
	for v := graph.VertexID(0); v < g.NumVertices(); v++ {
		if _, isDense := p.Dense.Lookup(v); isDense {
			if id, _ := p.BlockOf(v); id != -1 {
				t.Fatalf("dense vertex %d found in non-dense table (block %d)", v, id)
			}
			continue
		}
		id, steps := p.BlockOf(v)
		if id < 0 {
			t.Fatalf("vertex %d not found", v)
		}
		b := p.Blocks[id]
		if v < b.LowVertex || v > b.HighVertex || b.Dense {
			t.Fatalf("vertex %d mapped to wrong block %+v", v, b)
		}
		if steps < 1 {
			t.Fatal("zero search steps reported")
		}
	}
}

func TestBlockOfSearchStepsLogarithmic(t *testing.T) {
	g, _ := graph.Uniform(4096, 32768, 5)
	p := mustPartition(t, g, cfg4k())
	maxSteps := 0
	for v := graph.VertexID(0); v < g.NumVertices(); v += 17 {
		if _, steps := p.BlockOf(v); steps > maxSteps {
			maxSteps = steps
		}
	}
	// log2(TableLen) + 1 bound.
	bound := 1
	for n := p.TableLen(); n > 0; n >>= 1 {
		bound++
	}
	if maxSteps > bound {
		t.Fatalf("max steps %d exceeds log bound %d (table %d)", maxSteps, bound, p.TableLen())
	}
}

func TestBlockOfInRangeMatchesGlobal(t *testing.T) {
	g, _ := graph.RMAT(graph.DefaultRMAT(2048, 16384, 6))
	p := mustPartition(t, g, cfg4k())
	for v := graph.VertexID(0); v < g.NumVertices(); v += 3 {
		global, globalSteps := p.BlockOf(v)
		ri, _ := p.RangeOf(v)
		if ri < 0 {
			t.Fatalf("vertex %d not in any range", v)
		}
		local, localSteps := p.BlockOfInRange(v, p.Ranges[ri])
		if local != global {
			t.Fatalf("vertex %d: range search %d != global %d", v, local, global)
		}
		if global >= 0 && localSteps > globalSteps {
			t.Fatalf("vertex %d: range search took %d steps > global %d", v, localSteps, globalSteps)
		}
	}
}

func TestRangeOfCoversAllVertices(t *testing.T) {
	g := graph.Star(3000) // includes a dense vertex
	p := mustPartition(t, g, cfg4k())
	for v := graph.VertexID(0); v < g.NumVertices(); v++ {
		ri, steps := p.RangeOf(v)
		if ri < 0 {
			t.Fatalf("vertex %d not in any range", v)
		}
		r := p.Ranges[ri]
		if v < r.LowVertex || v > r.HighVertex {
			t.Fatalf("vertex %d outside its range %+v", v, r)
		}
		if steps < 1 {
			t.Fatal("no steps counted")
		}
	}
}

func TestRangesTileBlocks(t *testing.T) {
	g, _ := graph.RMAT(graph.DefaultRMAT(2048, 16384, 7))
	c := cfg4k()
	p := mustPartition(t, g, c)
	next := 0
	for i, r := range p.Ranges {
		if r.ID != i || r.FirstBlock != next {
			t.Fatalf("range %d misaligned: %+v", i, r)
		}
		if r.LastBlock-r.FirstBlock+1 > c.RangeSize {
			t.Fatalf("range %d too large", i)
		}
		next = r.LastBlock + 1
	}
	if next != len(p.Blocks) {
		t.Fatalf("ranges cover %d of %d blocks", next, len(p.Blocks))
	}
}

func TestPartitionSpans(t *testing.T) {
	g, _ := graph.RMAT(graph.DefaultRMAT(2048, 16384, 8))
	c := cfg4k()
	p := mustPartition(t, g, c)
	if p.NumPartitions != (len(p.Blocks)+c.SubgraphsPerPartition-1)/c.SubgraphsPerPartition {
		t.Fatal("NumPartitions wrong")
	}
	seen := 0
	for pi := 0; pi < p.NumPartitions; pi++ {
		first, last := p.PartitionSpan(pi)
		for b := first; b <= last; b++ {
			if p.PartitionOf(b) != pi {
				t.Fatalf("block %d: PartitionOf = %d, want %d", b, p.PartitionOf(b), pi)
			}
			seen++
		}
	}
	if seen != len(p.Blocks) {
		t.Fatalf("partitions cover %d of %d blocks", seen, len(p.Blocks))
	}
}

func TestBlockEdgesSpans(t *testing.T) {
	g := graph.Star(3000)
	p := mustPartition(t, g, cfg4k())
	// Union of all block edge spans must cover [0, E) exactly once.
	covered := make([]int, g.NumEdges())
	for i := range p.Blocks {
		first, last := p.BlockEdges(&p.Blocks[i])
		if last < first || last > g.NumEdges() {
			t.Fatalf("block %d span [%d,%d)", i, first, last)
		}
		for e := first; e < last; e++ {
			covered[e]++
		}
	}
	for e, c := range covered {
		if c != 1 {
			t.Fatalf("edge %d covered %d times", e, c)
		}
	}
}

func TestPages(t *testing.T) {
	p := &Partitioned{}
	b := &Block{Bytes: 4096}
	if p.Pages(b, 4096) != 1 {
		t.Fatal("exact page")
	}
	b.Bytes = 4097
	if p.Pages(b, 4096) != 2 {
		t.Fatal("page round up")
	}
	b.Bytes = 0
	if p.Pages(b, 4096) != 1 {
		t.Fatal("empty block should still cost one page")
	}
}

func TestDenseTableNoFalseNegatives(t *testing.T) {
	g := graph.Star(5000)
	p := mustPartition(t, g, cfg4k())
	if !p.Dense.Contains(0) {
		t.Fatal("bloom misses a dense vertex")
	}
	if p.Dense.Len() != 1 {
		t.Fatalf("dense count %d", p.Dense.Len())
	}
	if p.Dense.FilterBytes() <= 0 {
		t.Fatal("filter has no size")
	}
}

func TestInDegreeSums(t *testing.T) {
	g := graph.Star(3000)
	p := mustPartition(t, g, cfg4k())
	sums := p.InDegreeSums()
	var denseSum, rest uint64
	for i, b := range p.Blocks {
		if b.Dense {
			denseSum += sums[i]
		} else {
			rest += sums[i]
		}
	}
	// Hub in-degree = 3000 shared across dense blocks; spokes have 1 each.
	if denseSum == 0 || denseSum > 3000 {
		t.Fatalf("dense in-degree share %d", denseSum)
	}
	if rest != 3000 {
		t.Fatalf("spoke in-degrees %d, want 3000", rest)
	}
}

func TestTinyBlockRejected(t *testing.T) {
	g := graph.Ring(4)
	_, err := Partition(g, Config{BlockBytes: 4, IDBytes: 4, SubgraphsPerPartition: 1, RangeSize: 1})
	if err == nil {
		t.Fatal("block too small for one edge accepted")
	}
}

func TestEmptyGraphPartition(t *testing.T) {
	b := graph.NewBuilder(0)
	g, _ := b.Build()
	p := mustPartition(t, g, cfg4k())
	if p.NumBlocks() != 1 || p.NumPartitions != 1 {
		t.Fatalf("empty graph: %d blocks %d partitions", p.NumBlocks(), p.NumPartitions)
	}
}

func TestZeroDegreeVerticesCovered(t *testing.T) {
	b := graph.NewBuilder(100)
	b.AddEdge(0, 99)
	g, _ := b.Build()
	p := mustPartition(t, g, cfg4k())
	for v := graph.VertexID(0); v < 100; v++ {
		if id, _ := p.BlockOf(v); id < 0 {
			t.Fatalf("zero-degree vertex %d unmapped", v)
		}
	}
}

func TestPlacementRoundRobin(t *testing.T) {
	g, _ := graph.RMAT(graph.DefaultRMAT(2048, 16384, 9))
	p := mustPartition(t, g, cfg4k())
	pl, err := NewPlacement(p, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pl.NumChips() != 8 {
		t.Fatal("chip count")
	}
	counts := make([]int, 8)
	for id := range p.Blocks {
		chip := pl.ChipOf(id)
		counts[chip]++
		if pl.ChannelOf(id) != chip/2 || pl.ChipWithinChannel(id) != chip%2 {
			t.Fatal("channel/chip decomposition inconsistent")
		}
	}
	// Round-robin: max-min difference <= 1.
	mn, mx := counts[0], counts[0]
	for _, c := range counts {
		if c < mn {
			mn = c
		}
		if c > mx {
			mx = c
		}
	}
	if mx-mn > 1 {
		t.Fatalf("unbalanced placement: %v", counts)
	}
	// BlocksOnChip / BlocksOnChannel consistency.
	total := 0
	for chip := 0; chip < 8; chip++ {
		for _, id := range pl.BlocksOnChip(chip) {
			if pl.ChipOf(id) != chip {
				t.Fatal("BlocksOnChip inconsistent")
			}
			total++
		}
	}
	if total != len(p.Blocks) {
		t.Fatal("blocks lost in placement")
	}
	if len(pl.BlocksOnChannel(0)) != counts[0]+counts[1] {
		t.Fatal("BlocksOnChannel inconsistent")
	}
}

func TestPlacementRejectsBadGeometry(t *testing.T) {
	g := graph.Ring(8)
	p := mustPartition(t, g, cfg4k())
	if _, err := NewPlacement(p, 0, 4); err == nil {
		t.Fatal("zero channels accepted")
	}
	if _, err := NewPlacement(p, 4, 0); err == nil {
		t.Fatal("zero chips accepted")
	}
}

func TestEdgeFilterMembership(t *testing.T) {
	g, _ := graph.RMAT(graph.DefaultRMAT(512, 4096, 11))
	f := EdgeFilter(g, 0.01)
	// Every real edge must be present (no false negatives).
	for v := graph.VertexID(0); v < g.NumVertices(); v++ {
		for _, d := range g.OutEdges(v) {
			if !f.Contains(EdgeKey(v, d)) {
				t.Fatalf("edge (%d,%d) missing from filter", v, d)
			}
		}
	}
	// Random non-edges are mostly absent.
	r := rng.New(1)
	fp := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		s := graph.VertexID(r.Uint64n(g.NumVertices()))
		d := graph.VertexID(r.Uint64n(g.NumVertices()))
		real := false
		for _, e := range g.OutEdges(s) {
			if e == d {
				real = true
				break
			}
		}
		if !real && f.Contains(EdgeKey(s, d)) {
			fp++
		}
	}
	if rate := float64(fp) / probes; rate > 0.03 {
		t.Fatalf("edge filter false positive rate %.4f", rate)
	}
}

func TestEdgeKeyDirectionality(t *testing.T) {
	if EdgeKey(1, 2) == EdgeKey(2, 1) {
		t.Fatal("edge key is symmetric; directed edges would collide")
	}
}

// Property: partitioning a random graph preserves edge count, respects the
// byte budget, and every non-dense vertex is findable.
func TestPartitionInvariantsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		v := uint64(r.Intn(500) + 2)
		e := uint64(r.Intn(4000))
		g, err := graph.Uniform(v, e, seed)
		if err != nil {
			return false
		}
		c := Config{BlockBytes: 256, IDBytes: 4, SubgraphsPerPartition: 4, RangeSize: 4}
		p, err := Partition(g, c)
		if err != nil {
			return false
		}
		var total uint64
		for _, b := range p.Blocks {
			if b.Bytes > c.BlockBytes {
				return false
			}
			total += b.SumOutDeg
		}
		if total != g.NumEdges() {
			return false
		}
		for vv := graph.VertexID(0); vv < v; vv++ {
			if _, dense := p.Dense.Lookup(vv); dense {
				continue
			}
			if id, _ := p.BlockOf(vv); id < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
