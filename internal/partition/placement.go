package partition

import "fmt"

// Placement assigns graph blocks to flash chips. FlashWalker restricts a
// chip-level accelerator to subgraphs stored in its own chip's planes
// (paper §III-D, subgraph scheduling), so the assignment determines which
// chip can process which walks.
//
// Blocks are striped round-robin across all chips, which spreads both
// capacity and load; the chips of one channel therefore hold an
// interleaved sample of the vertex space.
type Placement struct {
	NumChannels     int
	ChipsPerChannel int
	chipOf          []int // blockID -> global chip index
	blocksOf        [][]int
}

// NewPlacement stripes the blocks of p across channels×chips chips.
func NewPlacement(p *Partitioned, numChannels, chipsPerChannel int) (*Placement, error) {
	if numChannels <= 0 || chipsPerChannel <= 0 {
		return nil, fmt.Errorf("partition: invalid geometry %dx%d", numChannels, chipsPerChannel)
	}
	n := numChannels * chipsPerChannel
	pl := &Placement{
		NumChannels:     numChannels,
		ChipsPerChannel: chipsPerChannel,
		chipOf:          make([]int, len(p.Blocks)),
		blocksOf:        make([][]int, n),
	}
	for id := range p.Blocks {
		chip := id % n
		pl.chipOf[id] = chip
		pl.blocksOf[chip] = append(pl.blocksOf[chip], id)
	}
	return pl, nil
}

// NumChips reports the total chip count.
func (pl *Placement) NumChips() int { return pl.NumChannels * pl.ChipsPerChannel }

// ChipOf reports the global chip index storing blockID.
func (pl *Placement) ChipOf(blockID int) int { return pl.chipOf[blockID] }

// ChannelOf reports the channel index storing blockID.
func (pl *Placement) ChannelOf(blockID int) int {
	return pl.chipOf[blockID] / pl.ChipsPerChannel
}

// ChipWithinChannel reports the chip's index within its channel.
func (pl *Placement) ChipWithinChannel(blockID int) int {
	return pl.chipOf[blockID] % pl.ChipsPerChannel
}

// BlocksOnChip returns the block IDs stored on the global chip index.
func (pl *Placement) BlocksOnChip(chip int) []int { return pl.blocksOf[chip] }

// BlocksOnChannel returns all block IDs stored on a channel's chips.
func (pl *Placement) BlocksOnChannel(ch int) []int {
	var out []int
	for c := ch * pl.ChipsPerChannel; c < (ch+1)*pl.ChipsPerChannel; c++ {
		out = append(out, pl.blocksOf[c]...)
	}
	return out
}
