package partition

import "fmt"

// ShardMap assigns graph partitions to the boards of a simulated SSD array.
// Each board owns a shard — the set of partitions whose subgraphs live on
// its flash — and a walk is always processed by the board owning its current
// partition; crossing a shard boundary sends the walk over the inter-board
// fabric (see internal/core's array layer).
//
// Partitions are striped round-robin across boards, the same policy
// Placement uses for blocks within a board: consecutive partitions land on
// consecutive boards, spreading both capacity and load. When a board dies,
// Reassign redistributes its partitions round-robin over the survivors so
// every partition always has exactly one live owner.
type ShardMap struct {
	numBoards int
	boardOf   []int32 // partition -> owning board
}

// NewShardMap stripes numPartitions partitions across boards. A board count
// larger than the partition count is allowed: the excess boards simply own
// empty shards (they still participate in the fabric and can inherit
// partitions on failover).
func NewShardMap(numPartitions, boards int) (*ShardMap, error) {
	if boards <= 0 {
		return nil, fmt.Errorf("partition: shard map needs at least one board, got %d", boards)
	}
	if numPartitions < 0 {
		return nil, fmt.Errorf("partition: negative partition count %d", numPartitions)
	}
	m := &ShardMap{numBoards: boards, boardOf: make([]int32, numPartitions)}
	for p := range m.boardOf {
		m.boardOf[p] = int32(p % boards)
	}
	return m, nil
}

// NumBoards reports the board count the map was built for (dead boards
// included; they just own nothing after Reassign).
func (m *ShardMap) NumBoards() int { return m.numBoards }

// NumPartitions reports the mapped partition count.
func (m *ShardMap) NumPartitions() int { return len(m.boardOf) }

// BoardOf reports the board owning partition p.
func (m *ShardMap) BoardOf(p int) int { return int(m.boardOf[p]) }

// PartitionsOn returns the partitions owned by board b, in ascending order.
func (m *ShardMap) PartitionsOn(b int) []int {
	var out []int
	for p, owner := range m.boardOf {
		if int(owner) == b {
			out = append(out, p)
		}
	}
	return out
}

// Reassign moves every partition owned by dead onto the alive boards,
// round-robin in partition order, and reports how many partitions moved.
// The alive list must be non-empty and must not contain dead; the
// redistribution is deterministic given the same map state and arguments.
func (m *ShardMap) Reassign(dead int, alive []int) (int, error) {
	if len(alive) == 0 {
		return 0, fmt.Errorf("partition: reassign from board %d: no boards left alive", dead)
	}
	for _, b := range alive {
		if b == dead {
			return 0, fmt.Errorf("partition: reassign: board %d is both dead and alive", dead)
		}
		if b < 0 || b >= m.numBoards {
			return 0, fmt.Errorf("partition: reassign: alive board %d outside [0,%d)", b, m.numBoards)
		}
	}
	moved := 0
	for p, owner := range m.boardOf {
		if int(owner) != dead {
			continue
		}
		m.boardOf[p] = int32(alive[moved%len(alive)])
		moved++
	}
	return moved, nil
}

// Owners returns a copy of the partition->board assignment (for snapshots).
func (m *ShardMap) Owners() []int32 { return append([]int32(nil), m.boardOf...) }

// SetOwners overwrites the assignment from a snapshot taken with Owners.
func (m *ShardMap) SetOwners(owners []int32) error {
	if len(owners) != len(m.boardOf) {
		return fmt.Errorf("partition: shard map has %d partitions, snapshot has %d", len(m.boardOf), len(owners))
	}
	for p, b := range owners {
		if b < 0 || int(b) >= m.numBoards {
			return fmt.Errorf("partition: snapshot owner %d of partition %d outside [0,%d)", b, p, m.numBoards)
		}
	}
	copy(m.boardOf, owners)
	return nil
}
