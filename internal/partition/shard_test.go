package partition

import (
	"testing"

	"flashwalker/internal/graph"
)

// lineGraph builds a path graph over n vertices (n-1 edges), the smallest
// structured workload that still exercises block formation.
func lineGraph(t *testing.T, n uint64) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	for v := uint64(0); v+1 < n; v++ {
		b.AddEdge(graph.VertexID(v), graph.VertexID(v+1))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("build line graph: %v", err)
	}
	return g
}

// TestShardMapPlacementEdgeCases drives partitioning, chip placement, and
// the board shard map through the degenerate shapes the round-trip tests
// never hit: a single-vertex graph, vertex counts not divisible by the
// shard count, and more boards than partitions (empty shards).
func TestShardMapPlacementEdgeCases(t *testing.T) {
	cases := []struct {
		name     string
		vertices uint64
		boards   int
		// subPerPart shrinks partitions so small graphs still yield
		// several partitions.
		subPerPart int
	}{
		{name: "single-vertex graph", vertices: 1, boards: 2, subPerPart: 1},
		{name: "two vertices three boards", vertices: 2, boards: 3, subPerPart: 1},
		{name: "vertices not divisible by boards", vertices: 1000, boards: 3, subPerPart: 2},
		{name: "more boards than partitions", vertices: 64, boards: 8, subPerPart: 4},
		{name: "one board owns everything", vertices: 500, boards: 1, subPerPart: 2},
		{name: "boards equal partitions", vertices: 512, boards: 4, subPerPart: 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := lineGraph(t, tc.vertices)
			cfg := Config{BlockBytes: 256, IDBytes: 4, SubgraphsPerPartition: tc.subPerPart, RangeSize: 2}
			p := mustPartition(t, g, cfg)
			if p.NumPartitions < 1 {
				t.Fatalf("no partitions for %d vertices", tc.vertices)
			}

			// Every vertex must resolve to exactly one block and that
			// block to an in-range partition.
			for v := graph.VertexID(0); v < graph.VertexID(tc.vertices); v++ {
				var id int
				if m, ok := p.Dense.Lookup(v); ok {
					id = m.FirstBlockID
				} else if id, _ = p.BlockOf(v); id < 0 {
					t.Fatalf("vertex %d has no block", v)
				}
				if pi := p.PartitionOf(id); pi < 0 || pi >= p.NumPartitions {
					t.Fatalf("vertex %d: partition %d outside [0,%d)", v, pi, p.NumPartitions)
				}
			}

			// Chip placement must accept the degenerate block counts.
			pl, err := NewPlacement(p, 2, 2)
			if err != nil {
				t.Fatalf("NewPlacement: %v", err)
			}
			seen := 0
			for chip := 0; chip < pl.NumChips(); chip++ {
				seen += len(pl.BlocksOnChip(chip))
			}
			if seen != len(p.Blocks) {
				t.Fatalf("placement covers %d blocks, partitioning has %d", seen, len(p.Blocks))
			}

			// The shard map must give every partition exactly one owner
			// and the per-board shards must partition the partition set.
			m, err := NewShardMap(p.NumPartitions, tc.boards)
			if err != nil {
				t.Fatalf("NewShardMap: %v", err)
			}
			owned := make([]int, p.NumPartitions)
			for b := 0; b < tc.boards; b++ {
				for _, pi := range m.PartitionsOn(b) {
					if m.BoardOf(pi) != b {
						t.Fatalf("PartitionsOn(%d) lists %d but BoardOf says %d", b, pi, m.BoardOf(pi))
					}
					owned[pi]++
				}
			}
			for pi, n := range owned {
				if n != 1 {
					t.Fatalf("partition %d owned %d times", pi, n)
				}
			}
			// Striping must be balanced within one partition.
			max, min := 0, p.NumPartitions+1
			for b := 0; b < tc.boards; b++ {
				n := len(m.PartitionsOn(b))
				if n > max {
					max = n
				}
				if n < min {
					min = n
				}
			}
			if max-min > 1 {
				t.Fatalf("unbalanced striping: min %d max %d", min, max)
			}
		})
	}
}

func TestShardMapReassign(t *testing.T) {
	m, err := NewShardMap(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	dead := 1
	moved, err := m.Reassign(dead, []int{0, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 || len(m.PartitionsOn(dead)) != 0 {
		t.Fatalf("moved %d partitions, board %d still owns %d", moved, dead, len(m.PartitionsOn(dead)))
	}
	total := 0
	for b := 0; b < 4; b++ {
		total += len(m.PartitionsOn(b))
	}
	if total != 10 {
		t.Fatalf("reassign lost partitions: %d of 10 owned", total)
	}
	// A second kill concentrates everything on the last survivors.
	if _, err := m.Reassign(0, []int{2, 3}); err != nil {
		t.Fatal(err)
	}
	if n := len(m.PartitionsOn(0)) + len(m.PartitionsOn(1)); n != 0 {
		t.Fatalf("dead boards still own %d partitions", n)
	}

	// Error paths.
	if _, err := m.Reassign(2, nil); err == nil {
		t.Fatal("reassign with no survivors accepted")
	}
	if _, err := m.Reassign(2, []int{2}); err == nil {
		t.Fatal("reassign onto the dead board accepted")
	}
	if _, err := m.Reassign(2, []int{9}); err == nil {
		t.Fatal("reassign onto an out-of-range board accepted")
	}
}

func TestShardMapOwnersRoundTrip(t *testing.T) {
	m, _ := NewShardMap(7, 3)
	if _, err := m.Reassign(0, []int{1, 2}); err != nil {
		t.Fatal(err)
	}
	owners := m.Owners()
	m2, _ := NewShardMap(7, 3)
	if err := m2.SetOwners(owners); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 7; p++ {
		if m.BoardOf(p) != m2.BoardOf(p) {
			t.Fatalf("partition %d: %d != %d after round trip", p, m.BoardOf(p), m2.BoardOf(p))
		}
	}
	if err := m2.SetOwners(make([]int32, 3)); err == nil {
		t.Fatal("SetOwners with wrong length accepted")
	}
	bad := m.Owners()
	bad[0] = 99
	if err := m2.SetOwners(bad); err == nil {
		t.Fatal("SetOwners with out-of-range owner accepted")
	}
	if _, err := NewShardMap(5, 0); err == nil {
		t.Fatal("zero boards accepted")
	}
}
