// Package rng provides the deterministic pseudo-random number generators
// used throughout the simulator.
//
// Every simulated component (each walk updater's hardware RNG, the graph
// generators, the workload builders) owns its own RNG stream so that a run
// is reproducible from a single root seed regardless of event interleaving.
// Streams are derived with SplitMix64 and generated with xoshiro256**,
// which is small, fast, and has no stdlib dependencies.
package rng

import "math"

// RNG is a xoshiro256** generator. The zero value is not valid; construct
// with New.
type RNG struct {
	s [4]uint64
}

// splitmix64 advances the seed-expansion state and returns the next value.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed via SplitMix64 expansion, so any
// seed (including 0) yields a well-mixed state.
func New(seed uint64) *RNG {
	r := &RNG{}
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	return r
}

// Derive returns an independent stream for the given sub-identifier. Two
// different ids on the same parent yield decorrelated streams; the parent
// is not advanced.
func (r *RNG) Derive(id uint64) *RNG {
	x := r.s[0] ^ (id * 0x9e3779b97f4a7c15)
	d := &RNG{}
	for i := range d.s {
		d.s[i] = splitmix64(&x)
	}
	return d
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Uint32 returns 32 random bits.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// This is the operation the walk updater's ALU performs to turn the raw
// hardware random number rnd0 into the edge offset rnd1 (paper §III-B).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform integer in [0, n) using Lemire's multiply-shift
// rejection method (unbiased). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Rejection sampling on the top bits.
	threshold := -n % n
	for {
		v := r.Uint64()
		if v >= threshold {
			return v % n
		}
	}
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Perm fills out with a uniform random permutation of [0, len(out)).
func (r *RNG) Perm(out []int) {
	for i := range out {
		out[i] = i
	}
	for i := len(out) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
}

// Shuffle randomly permutes n elements using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
