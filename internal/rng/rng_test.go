package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws of 100", same)
	}
}

func TestZeroSeedIsValid(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("zero seed produced only %d distinct values of 100", len(seen))
	}
}

func TestDeriveIndependentStreams(t *testing.T) {
	root := New(7)
	a, b := root.Derive(1), root.Derive(2)
	a2 := New(7).Derive(1)
	for i := 0; i < 100; i++ {
		if a.Uint64() != a2.Uint64() {
			t.Fatal("Derive is not deterministic")
		}
	}
	// Derive must not advance the parent.
	c, d := New(7), New(7)
	c.Derive(99)
	for i := 0; i < 10; i++ {
		if c.Uint64() != d.Uint64() {
			t.Fatal("Derive advanced the parent stream")
		}
	}
	_ = b
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for n := 1; n <= 64; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	r := New(1)
	for _, n := range []int{0, -5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) did not panic", n)
				}
			}()
			r.Intn(n)
		}()
	}
}

func TestUint64nUniformity(t *testing.T) {
	// Chi-square over 10 buckets; 100k draws. Critical value for 9 dof at
	// p=0.001 is 27.88; allow margin.
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	expected := float64(draws) / n
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 30 {
		t.Fatalf("chi-square = %.2f too high; counts = %v", chi2, counts)
	}
}

func TestUint64nPowerOfTwo(t *testing.T) {
	r := New(5)
	for i := 0; i < 1000; i++ {
		if v := r.Uint64n(8); v >= 8 {
			t.Fatalf("Uint64n(8) = %d", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	mean := sum / draws
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(13)
	hits := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / draws
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) rate = %v", p)
	}
	if r.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Error("Bool(1) returned false")
	}
}

func TestExpMean(t *testing.T) {
	r := New(17)
	sum := 0.0
	const draws = 200000
	for i := 0; i < draws; i++ {
		v := r.Exp(5.0)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	mean := sum / draws
	if math.Abs(mean-5.0) > 0.1 {
		t.Fatalf("Exp(5) mean = %v", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(19)
	out := make([]int, 50)
	r.Perm(out)
	seen := make([]bool, 50)
	for _, v := range out {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", out)
		}
		seen[v] = true
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := New(23)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range s {
		sum += v
	}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	got := 0
	for _, v := range s {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed elements: %v", s)
	}
}

// Property: Uint64n(n) < n for all n >= 1.
func TestUint64nBoundProperty(t *testing.T) {
	r := New(29)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return r.Uint64n(n) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Intn(1000)
	}
}
