package rng

// State returns the generator's internal xoshiro256** state for
// serialization. The four words fully determine the stream: restoring them
// with FromState resumes the sequence exactly where it left off.
func (r *RNG) State() [4]uint64 { return r.s }

// SetState overwrites the generator with a previously captured State.
func (r *RNG) SetState(s [4]uint64) { r.s = s }

// FromState reconstructs a generator from a captured State.
func FromState(s [4]uint64) *RNG { return &RNG{s: s} }
