package service

import (
	"errors"
	"time"
)

// Multi-tenant admission control. Every JobSpec carries a tenant (empty
// means "default"); the manager enforces, at submission time:
//
//   - a token-bucket submission rate limit per tenant (Config.TenantRatePerSec
//     / TenantRateBurst) — rejected with ErrRateLimited;
//   - a per-tenant queued-job quota (Config.TenantMaxQueued) — rejected with
//     ErrTenantQuota;
//   - the global bounded queue (Config.QueueDepth) — rejected with
//     ErrQueueFull;
//
// and, at dequeue time, fair-share scheduling: workers round-robin across
// tenants with queued jobs instead of draining strict FIFO, so a flooding
// tenant cannot starve the others, and Config.TenantMaxRunning caps how
// many of one tenant's jobs run concurrently (a capped tenant's jobs are
// skipped, not dropped — they run when a slot frees). Every rejection is
// counted by reason in flashwalker_admission_rejected_total{reason}.

var (
	// ErrRateLimited reports a submission rejected by the tenant's
	// token-bucket rate limit. Retry after a pause.
	ErrRateLimited = errors.New("tenant submission rate limit exceeded")
	// ErrTenantQuota reports a submission rejected because the tenant
	// already has its full quota of queued jobs.
	ErrTenantQuota = errors.New("tenant queued-job quota exceeded")
)

// DefaultTenant is the tenant jobs with an empty tenant field belong to.
const DefaultTenant = "default"

// maxTenantLen bounds the tenant label (it appears in IDs, metrics, and
// file paths derived from specs; keep it short and printable).
const maxTenantLen = 64

// tenantOf resolves a spec's effective tenant.
func tenantOf(spec *JobSpec) string {
	if spec.Tenant == "" {
		return DefaultTenant
	}
	return spec.Tenant
}

// fairQueue is the bounded multi-tenant job queue: one FIFO per tenant plus
// a round-robin rotation over tenants that have jobs queued. All methods
// require the manager's lock.
type fairQueue struct {
	depth int
	n     int
	q     map[string][]*Job
	rr    []string // tenants with queued jobs, in rotation order
	next  int      // rotation cursor into rr
}

func newFairQueue(depth int) *fairQueue {
	return &fairQueue{depth: depth, q: map[string][]*Job{}}
}

// push appends j to its tenant's FIFO; false when the global queue is full.
func (f *fairQueue) push(tenant string, j *Job) bool {
	if f.n >= f.depth {
		return false
	}
	if len(f.q[tenant]) == 0 {
		f.rr = append(f.rr, tenant)
	}
	f.q[tenant] = append(f.q[tenant], j)
	f.n++
	return true
}

// pop removes and returns the next job in fair-share order: tenants are
// visited round-robin from the rotation cursor, skipping tenants canRun
// rejects (at their running cap). Nil when no eligible job is queued.
func (f *fairQueue) pop(canRun func(tenant string) bool) *Job {
	for i := 0; i < len(f.rr); i++ {
		idx := (f.next + i) % len(f.rr)
		t := f.rr[idx]
		if canRun != nil && !canRun(t) {
			continue
		}
		l := f.q[t]
		j := l[0]
		l[0] = nil // release the head for GC; the backing array is reused
		if len(l) == 1 {
			delete(f.q, t)
			f.rr = append(f.rr[:idx], f.rr[idx+1:]...)
			if f.next > idx {
				f.next--
			}
			if len(f.rr) > 0 {
				f.next %= len(f.rr)
			} else {
				f.next = 0
			}
		} else {
			f.q[t] = l[1:]
			f.next = (idx + 1) % len(f.rr)
		}
		f.n--
		return j
	}
	return nil
}

// queued reports how many jobs tenant has waiting.
func (f *fairQueue) queued(tenant string) int { return len(f.q[tenant]) }

// len reports the total queued-job count.
func (f *fairQueue) len() int { return f.n }

// drain empties the queue, returning the remaining jobs in rotation order.
func (f *fairQueue) drain() []*Job {
	var out []*Job
	for {
		j := f.pop(nil)
		if j == nil {
			return out
		}
		out = append(out, j)
	}
}

// tokenBucket is one tenant's submission budget: capacity burst, refilled
// at rate tokens/second, one token per submission.
type tokenBucket struct {
	tokens float64
	last   time.Time
}

// allowSubmit consumes one token from tenant's bucket, reporting false when
// the bucket is empty. Requires the manager's lock. A zero rate disables
// rate limiting entirely.
func (m *Manager) allowSubmit(tenant string, now time.Time) bool {
	if m.tenantRate <= 0 {
		return true
	}
	b := m.buckets[tenant]
	if b == nil {
		b = &tokenBucket{tokens: m.tenantBurst, last: now}
		m.buckets[tenant] = b
	} else {
		b.tokens += m.tenantRate * now.Sub(b.last).Seconds()
		if b.tokens > m.tenantBurst {
			b.tokens = m.tenantBurst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// canRunLocked reports whether tenant may start another job under
// TenantMaxRunning. Requires the manager's lock.
func (m *Manager) canRunLocked(tenant string) bool {
	return m.tenantMaxRunning <= 0 || m.runningBy[tenant] < m.tenantMaxRunning
}
