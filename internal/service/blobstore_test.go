package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"flashwalker/internal/blob"
)

// TestBodyTooLarge: both POST endpoints reject oversized bodies with the
// stable body_too_large envelope code instead of reading them unbounded,
// and a normal-size request on the same server still succeeds.
func TestBodyTooLarge(t *testing.T) {
	srv, _ := newTestServer(t, Config{Workers: 1, MaxBodyBytes: 1024})

	huge := map[string]string{"graph": strings.Repeat("x", 64<<10)}
	for _, path := range []string{"/v1/jobs", "/v1/graphs"} {
		resp, body := postJSON(t, srv.URL+path, huge)
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("POST %s oversized: status %d, body %s", path, resp.StatusCode, body)
		}
		var env errorEnvelope
		if err := json.Unmarshal(body, &env); err != nil {
			t.Fatalf("POST %s oversized: non-envelope body %s: %v", path, body, err)
		}
		if env.Error.Code != "body_too_large" {
			t.Errorf("POST %s oversized: code %q, want body_too_large", path, env.Error.Code)
		}
	}

	// The cap must not reject legitimate requests.
	st := submitJob(t, srv, JobSpec{Graph: "TT-S", NumWalks: 100, Seed: 1})
	if st.ID == "" {
		t.Fatal("normal-size submission rejected under body cap")
	}
}

// TestRetentionPrunesTerminal: with RetainJobs set, every finish prunes
// terminal jobs past the cap — journal, spool, and snapshots gone from the
// store — while a still-running job is never touched, and a restart on the
// pruned store recovers exactly the retained set.
func TestRetentionPrunesTerminal(t *testing.T) {
	store := blob.NewMem()
	m1 := newTestManager(t, Config{Workers: 2, Store: store, RetainJobs: 1})

	// A long job pins one worker for the whole test: non-terminal, so
	// retention must never touch it no matter how many jobs finish.
	long, err := m1.Submit(JobSpec{Graph: "TT-S", NumWalks: 500_000, Seed: 1, CheckpointEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Three short jobs run sequentially on the other worker; after the
	// third finishes, RetainJobs=1 must have pruned the first two.
	var shorts []*Job
	for i := 0; i < 3; i++ {
		j, err := m1.Submit(JobSpec{Graph: "TT-S", NumWalks: 200, Seed: uint64(i + 2)})
		if err != nil {
			t.Fatal(err)
		}
		shorts = append(shorts, j)
		waitTerminal(t, j)
	}

	for _, j := range shorts[:2] {
		if _, err := store.Get(jobKey(j.ID)); !errors.Is(err, blob.ErrNotFound) {
			t.Errorf("pruned job %s journal still in store (err %v)", j.ID, err)
		}
		if _, err := store.Get(streamKey(j.ID)); !errors.Is(err, blob.ErrNotFound) {
			t.Errorf("pruned job %s spool still in store (err %v)", j.ID, err)
		}
		if _, err := m1.Get(j.ID); err == nil {
			t.Errorf("pruned job %s still listed by the manager", j.ID)
		}
	}
	if _, err := store.Get(jobKey(shorts[2].ID)); err != nil {
		t.Errorf("retained job %s journal missing: %v", shorts[2].ID, err)
	}
	if _, err := store.Get(jobKey(long.ID)); err != nil {
		t.Errorf("running job %s journal pruned: %v", long.ID, err)
	}
	if got := m1.metrics.jobsPruned.Load(); got != 2 {
		t.Errorf("jobsPruned = %d, want 2", got)
	}

	if err := m1.Cancel(long.ID); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, long)
	m1.Close()

	// Restart on the pruned store: only what retention kept comes back.
	// Retention keeps the newest terminal jobs in submission order, so the
	// final prune (after the long job was canceled) kept the last short
	// and dropped the earlier-submitted long job.
	m2 := newTestManager(t, Config{Workers: 1, Store: store, RetainJobs: 1})
	defer m2.Close()
	list := m2.List()
	if len(list) != 1 || list[0].ID != shorts[2].ID {
		t.Fatalf("recovered %d jobs %+v, want exactly %s", len(list), list, shorts[2].ID)
	}
}

// faultStore fails every write while leaving reads intact — the double
// behind the durability-degradation contract: writes may fail, jobs must
// not.
type faultStore struct {
	blob.Store
}

var errInjectedWrite = errors.New("injected write failure")

func (f *faultStore) Put(key string, data []byte) error    { return errInjectedWrite }
func (f *faultStore) Append(key string, data []byte) error { return errInjectedWrite }

// TestPersistErrorsCountedJobCompletes: with a store whose writes all
// fail, a job still runs to Done, and every durability path it exercised
// (journal, snapshot, spool) shows up in
// flashwalker_persist_errors_total{kind}.
func TestPersistErrorsCountedJobCompletes(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, Store: &faultStore{blob.NewMem()}})
	defer m.Close()

	j, err := m.Submit(JobSpec{Graph: "TT-S", NumWalks: 5_000, Seed: 3, CheckpointEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j)
	if st := j.Status(); st.State != StateDone {
		t.Fatalf("job under failing store: state %q, error %q", st.State, st.Error)
	}

	for kind, v := range map[string]int64{
		persistKindJournal:  m.metrics.persistErrJournal.Load(),
		persistKindSnapshot: m.metrics.persistErrSnapshot.Load(),
		persistKindSpool:    m.metrics.persistErrSpool.Load(),
	} {
		if v == 0 {
			t.Errorf("persist_errors_total{kind=%q} = 0, want > 0", kind)
		}
	}
	if !strings.Contains(m.Metrics(), `flashwalker_persist_errors_total{kind="journal"}`) {
		t.Error("metrics output missing the persist_errors_total journal series")
	}
}

// TestManagerRecoveryHTTPStore is the durable-jobs recovery scenario run
// end-to-end through the HTTP object-store client against the in-package
// object server: a job interrupted mid-run (journal says running, full
// snapshot plus at least one delta in the store) resumes on restart and
// converges on the uninterrupted result exactly.
func TestManagerRecoveryHTTPStore(t *testing.T) {
	osrv := httptest.NewServer(blob.Handler(blob.NewMem()))
	defer osrv.Close()
	store, err := blob.NewHTTP(osrv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{Graph: "TT-S", NumWalks: 20_000, Seed: 5, CheckpointEvery: 64}

	// Reference result: the same spec run to completion, no persistence.
	mr := newTestManager(t, Config{Workers: 1})
	jr, err := mr.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, jr)
	ref := jr.Status().Result
	if ref == nil || jr.Status().State != StateDone {
		t.Fatalf("reference run: %+v", jr.Status())
	}
	mr.Close()

	// First life: run against the object store until a full snapshot AND a
	// delta have landed — proof the chain writer works over HTTP — then
	// save the chain and cancel.
	m1 := newTestManager(t, Config{Workers: 1, Store: store, SnapshotDeltas: 2})
	j1, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	saved := map[string][]byte{}
	deadline := time.Now().Add(time.Minute)
	for {
		full, ferr := store.Get(snapshotKey(j1.ID))
		d1, derr := store.Get(deltaKey(j1.ID, 1))
		if ferr == nil && derr == nil {
			saved[snapshotKey(j1.ID)] = full
			saved[deltaKey(j1.ID, 1)] = d1
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no full+delta chain in store (full: %v, delta: %v)", ferr, derr)
		}
		time.Sleep(time.Millisecond)
	}
	if err := m1.Cancel(j1.ID); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j1)
	m1.Close()

	// Forge the crash the cancel cleaned up after: journal back to
	// running, snapshot chain back in the store.
	data, err := store.Get(jobKey(j1.ID))
	if err != nil {
		t.Fatal(err)
	}
	var rec map[string]any
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	rec["state"] = StateRunning
	delete(rec, "result")
	delete(rec, "error")
	data, err = json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put(jobKey(j1.ID), data); err != nil {
		t.Fatal(err)
	}
	for key, b := range saved {
		if err := store.Put(key, b); err != nil {
			t.Fatal(err)
		}
	}

	// Second life: recovered over HTTP, resumed from the delta chain, and
	// bit-identical to the clean run.
	m2 := newTestManager(t, Config{Workers: 1, Store: store, SnapshotDeltas: 2})
	defer m2.Close()
	j2, err := m2.Get(j1.ID)
	if err != nil {
		t.Fatalf("recovered manager lost job %s: %v", j1.ID, err)
	}
	waitTerminal(t, j2)
	st := j2.Status()
	if st.State != StateDone {
		t.Fatalf("recovered job state %q, error %q", st.State, st.Error)
	}
	if st.Result == nil || *st.Result != *ref {
		t.Fatalf("resumed result diverged:\n got %+v\nwant %+v", st.Result, ref)
	}
	// Completion must retire the whole chain, deltas included.
	if _, err := store.Get(snapshotKey(j1.ID)); !errors.Is(err, blob.ErrNotFound) {
		t.Errorf("full snapshot survived completion (err %v)", err)
	}
	keys, err := store.List(deltaPrefix(j1.ID))
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 0 {
		t.Errorf("delta containers survived completion: %v", keys)
	}
}
