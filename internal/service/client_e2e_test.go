// The client e2e suite lives in an external test package: the typed
// client imports internal/service, so in-package tests would form an
// import cycle. Everything here goes through real HTTP — this is also the
// coverage proving every /v1 handler works through the client and speaks
// the error envelope.
package service_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"flashwalker/client"
	"flashwalker/internal/graph"
	"flashwalker/internal/service"
)

func newClientServer(t *testing.T, cfg service.Config) (*client.Client, *service.Manager) {
	t.Helper()
	m, err := service.NewManager(service.NewRegistry(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	srv := httptest.NewServer(service.NewHandler(m))
	t.Cleanup(srv.Close)
	return client.New(srv.URL, nil), m
}

func wantCode(t *testing.T, err error, status int, code string) {
	t.Helper()
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("error %v (%T) is not an APIError", err, err)
	}
	if apiErr.Status != status || apiErr.Code != code {
		t.Fatalf("got %d %q, want %d %q (message %q)", apiErr.Status, apiErr.Code, status, code, apiErr.Message)
	}
}

// TestClientEndToEnd drives the full v1 surface through the typed client:
// health, submit, wait, get, list, stream, corpus, graphs, metrics.
func TestClientEndToEnd(t *testing.T) {
	c, _ := newClientServer(t, service.Config{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	if err := c.Health(ctx); err != nil {
		t.Fatalf("health: %v", err)
	}

	st, err := c.Submit(ctx, client.JobSpec{Graph: "TT-S", NumWalks: 600, Seed: 1, Tenant: "e2e"})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if st.State != client.StateQueued && st.State != client.StateRunning {
		t.Fatalf("fresh job state %q", st.State)
	}

	// Stream the job live from 0 while it runs.
	s, err := c.Stream(ctx, st.ID, 0)
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	defer s.Close()
	var next uint64
	for {
		rec, ok := s.Next()
		if !ok {
			break
		}
		if rec.Seq != next {
			t.Fatalf("stream gap: seq %d, want %d", rec.Seq, next)
		}
		next++
	}
	if s.Err() != nil {
		t.Fatalf("stream error: %v", s.Err())
	}
	if s.End() == nil || !s.End().Done || s.End().State != client.StateDone {
		t.Fatalf("stream trailer: %+v", s.End())
	}

	fin, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if fin.State != client.StateDone || fin.Result == nil {
		t.Fatalf("final status: %+v", fin)
	}
	if got := fin.Result.Completed + fin.Result.DeadEnded; uint64(got) != next {
		t.Fatalf("streamed %d walks, result finished %d", next, got)
	}

	// DeepWalk: corpus endpoint plus stream with paths.
	dw, err := c.Submit(ctx, client.JobSpec{Kind: client.KindDeepWalk, Graph: "TT-S", Seed: 2, WalkLength: 6})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, dw.ID); err != nil {
		t.Fatal(err)
	}
	data, sha, err := c.Corpus(ctx, dw.ID)
	if err != nil {
		t.Fatalf("corpus: %v", err)
	}
	if len(data) == 0 || len(sha) != 64 {
		t.Fatalf("corpus %d bytes, sha %q", len(data), sha)
	}
	ds, err := c.Stream(ctx, dw.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	rec, ok := ds.Next()
	if !ok || len(rec.Path) == 0 {
		t.Fatalf("deepwalk stream first record %+v ok=%v", rec, ok)
	}

	// Listing with tenant filter and pagination.
	page, err := c.List(ctx, client.ListQuery{Tenant: "e2e", Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Jobs) != 1 || page.Jobs[0].ID != st.ID || page.NextCursor != "" {
		t.Fatalf("tenant page: %+v", page)
	}
	all, err := c.ListAll(ctx, client.ListQuery{Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("listed %d jobs, want 2", len(all))
	}
	done, err := c.ListAll(ctx, client.ListQuery{Status: client.StateDone})
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 2 {
		t.Fatalf("status filter returned %d jobs", len(done))
	}

	// Graph registry round trip.
	graphs, err := c.Graphs(ctx)
	if err != nil || len(graphs) == 0 {
		t.Fatalf("graphs: %v (%d entries)", err, len(graphs))
	}

	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metrics, "flashwalker_jobs_submitted_total 2") {
		t.Error("metrics missing submit counter")
	}
	if !strings.Contains(metrics, `flashwalker_admission_rejected_total{reason="queue_full"} 0`) {
		t.Error("metrics missing labeled admission counter")
	}
}

// TestClientErrorEnvelope checks that every error path surfaces the
// envelope with its table code, through every client method.
func TestClientErrorEnvelope(t *testing.T) {
	c, m := newClientServer(t, service.Config{
		Workers: 1, QueueDepth: 2, TenantMaxQueued: 1,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	_, err := c.Get(ctx, "job-999")
	wantCode(t, err, http.StatusNotFound, "unknown_job")
	_, err = c.Cancel(ctx, "job-999")
	wantCode(t, err, http.StatusNotFound, "unknown_job")
	_, err = c.Stream(ctx, "job-999", 0)
	wantCode(t, err, http.StatusNotFound, "unknown_job")
	_, _, err = c.Corpus(ctx, "job-999")
	wantCode(t, err, http.StatusNotFound, "unknown_job")

	_, err = c.Submit(ctx, client.JobSpec{Graph: "no-such-graph"})
	wantCode(t, err, http.StatusNotFound, "unknown_graph")
	_, err = c.Submit(ctx, client.JobSpec{Graph: "TT-S", Kind: "warp-drive"})
	wantCode(t, err, http.StatusBadRequest, "invalid_config")
	_, err = c.Submit(ctx, client.JobSpec{Graph: "TT-S", Mutations: graph.MutationStream{{Op: "rewire"}}})
	wantCode(t, err, http.StatusBadRequest, "invalid_config")
	_, err = c.List(ctx, client.ListQuery{Status: "sideways"})
	wantCode(t, err, http.StatusBadRequest, "bad_request")
	_, err = c.LoadGraph(ctx, "broken", "/no/such/file.bin")
	wantCode(t, err, http.StatusBadRequest, "bad_request")

	// Tenant quota: one running, one queued, the next is a 429 with the
	// quota code.
	long := client.JobSpec{Graph: "TT-S", NumWalks: 200_000, CheckpointEvery: 64, Tenant: "q"}
	first, err := c.Submit(ctx, long)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, first.ID, client.StateRunning)
	second, err := c.Submit(ctx, long)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Submit(ctx, long)
	wantCode(t, err, http.StatusTooManyRequests, "tenant_quota")

	// Queue full: another tenant fills the remaining global slot, then
	// overflows with the distinct queue_full code.
	other := long
	other.Tenant = "r"
	third, err := c.Submit(ctx, other)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Submit(ctx, other)
	wantCode(t, err, http.StatusTooManyRequests, "queue_full")

	// Drain: canceled queued jobs free their slots once a worker pops
	// them, so retry the next submission through the transient 429s.
	for _, id := range []string{first.ID, second.ID, third.ID} {
		if _, err := c.Cancel(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	var gw client.JobStatus
	for {
		gw, err = c.Submit(ctx, client.JobSpec{Kind: client.KindGraphWalker, Graph: "TT-S", NumWalks: 100, Tenant: "gw"})
		if err == nil {
			break
		}
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) || apiErr.Code != "queue_full" {
			t.Fatalf("graphwalker submit: %v", err)
		}
		select {
		case <-ctx.Done():
			t.Fatal("queue never drained after cancellations")
		case <-time.After(5 * time.Millisecond):
		}
	}
	// A graphwalker job has no stream: 409 stream_unsupported.
	_, err = c.Stream(ctx, gw.ID, 0)
	wantCode(t, err, http.StatusConflict, "stream_unsupported")

	for _, j := range m.List() {
		_, _ = c.Cancel(ctx, j.ID)
	}
}

// TestClientStreamReconnect: a dropped stream resumes at NextSeq over a
// fresh connection with no gaps and no duplicates, concurrent with the
// running job. The manager is durable: the server-side cursor runs ahead
// of what the client actually consumed (TCP buffering), so a resume
// offset may point below the ring — the spool replays it.
func TestClientStreamReconnect(t *testing.T) {
	c, _ := newClientServer(t, service.Config{Workers: 1, StateDir: t.TempDir()})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	st, err := c.Submit(ctx, client.JobSpec{Graph: "TT-S", NumWalks: 5000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}

	// First connection: take a handful of records, then drop the
	// connection without reading the rest.
	s1, err := c.Stream(ctx, st.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	var seen uint64
	for seen < 5 {
		rec, ok := s1.Next()
		if !ok {
			t.Fatalf("stream ended after %d records: err=%v end=%+v", seen, s1.Err(), s1.End())
		}
		if rec.Seq != seen {
			t.Fatalf("gap: seq %d, want %d", rec.Seq, seen)
		}
		seen++
	}
	s1.Close()

	// Second connection resumes exactly where the first left off.
	s2, err := c.Stream(ctx, st.ID, s1.NextSeq())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for {
		rec, ok := s2.Next()
		if !ok {
			break
		}
		if rec.Seq != seen {
			t.Fatalf("gap after reconnect: seq %d, want %d", rec.Seq, seen)
		}
		seen++
	}
	if s2.Err() != nil || s2.End() == nil || s2.End().State != client.StateDone {
		t.Fatalf("reconnect end: err=%v end=%+v", s2.Err(), s2.End())
	}
	fin, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if total := fin.Result.Completed + fin.Result.DeadEnded; uint64(total) != seen {
		t.Fatalf("reconnected stream saw %d walks, result finished %d", seen, total)
	}
}

// TestClientStreamCancel: canceling through the client ends an attached
// stream with a canceled trailer instead of leaving it hanging.
func TestClientStreamCancel(t *testing.T) {
	c, _ := newClientServer(t, service.Config{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	st, err := c.Submit(ctx, client.JobSpec{Graph: "TT-S", NumWalks: 200_000, Seed: 4, CheckpointEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	s, err := c.Stream(ctx, st.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if _, ok := s.Next(); !ok {
		t.Fatalf("no records before cancel: err=%v end=%+v", s.Err(), s.End())
	}
	if _, err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok := s.Next(); !ok {
			break
		}
	}
	if s.Err() != nil {
		t.Fatal(s.Err())
	}
	if end := s.End(); end == nil || end.State != client.StateCanceled {
		t.Fatalf("trailer after cancel: %+v", end)
	}
}

func waitState(t *testing.T, c *client.Client, id, state string) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	for {
		st, err := c.Get(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == state {
			return
		}
		select {
		case <-ctx.Done():
			t.Fatalf("job %s never reached %s (now %s)", id, state, st.State)
		case <-time.After(time.Millisecond):
		}
	}
}
