package service

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"flashwalker/internal/errs"
)

// TestDeepWalkCorpusCacheHit is the corpus-cache acceptance criterion:
// resubmitting an identical DeepWalk job returns an identical corpus
// without invoking the engine, proven via the engine-run counter.
func TestDeepWalkCorpusCacheHit(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	defer m.Close()

	spec := JobSpec{Kind: KindDeepWalk, Graph: "TT-S", Seed: 7, WalksPerVertex: 1, WalkLength: 4}
	first, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, first)
	st := first.Status()
	if st.State != StateDone {
		t.Fatalf("first job: state %s, error %q", st.State, st.Error)
	}
	if st.Result.CorpusCached {
		t.Fatal("first job claims a cache hit on an empty cache")
	}
	if st.Result.CorpusWalks == 0 || st.Result.CorpusSHA256 == "" {
		t.Fatalf("first job produced no corpus: %+v", st.Result)
	}
	if runs := m.CorpusEngineRuns(); runs != 1 {
		t.Fatalf("engine runs after first job: %d, want 1", runs)
	}
	firstCorpus := first.Corpus()
	if firstCorpus == nil {
		t.Fatal("first job has no attached corpus")
	}

	// Identical resubmission: must be served from the cache — identical
	// bytes, identical seal, and the engine-run counter unchanged.
	second, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, second)
	st2 := second.Status()
	if st2.State != StateDone {
		t.Fatalf("second job: state %s, error %q", st2.State, st2.Error)
	}
	if !st2.Result.CorpusCached {
		t.Fatal("identical resubmission was not served from the cache")
	}
	if st2.Result.CorpusSHA256 != st.Result.CorpusSHA256 {
		t.Fatalf("corpus seal changed: %s vs %s", st2.Result.CorpusSHA256, st.Result.CorpusSHA256)
	}
	if !bytes.Equal(second.Corpus().Data, firstCorpus.Data) {
		t.Fatal("cached corpus bytes differ from the original")
	}
	if runs := m.CorpusEngineRuns(); runs != 1 {
		t.Fatalf("cache hit still invoked the engine: %d runs", runs)
	}

	// Any key change — here the seed — must miss and re-run the engine.
	diff := spec
	diff.Seed = 8
	third, err := m.Submit(diff)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, third)
	if st3 := third.Status(); st3.State != StateDone || st3.Result.CorpusCached {
		t.Fatalf("different-seed job: %+v", st3.Result)
	}
	if runs := m.CorpusEngineRuns(); runs != 2 {
		t.Fatalf("engine runs after different-seed job: %d, want 2", runs)
	}
}

func TestDeepWalkSpecValidation(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	defer m.Close()
	bad := []JobSpec{
		{Graph: "TT-S", WalksPerVertex: 2},                       // deepwalk-only field on default kind
		{Kind: KindGraphWalker, Graph: "TT-S", WalkLength: 6},    // ... and on the baseline
		{Kind: KindDeepWalk, Graph: "TT-S", WalksPerVertex: -1},  // negative fan-out
		{Kind: KindDeepWalk, Graph: "TT-S", WalkLength: 1 << 21}, // over the length bound
		{Kind: KindDeepWalk, Graph: "TT-S", WalksPerVertex: 1<<20 + 1},
	}
	for i, spec := range bad {
		if _, err := m.Submit(spec); !errors.Is(err, errs.ErrInvalidConfig) {
			t.Errorf("bad spec %d accepted (err=%v)", i, err)
		}
	}
}

// TestCorpusEndpointAndCacheMetrics drives the HTTP surface: the corpus
// download endpoint and the Prometheus counters for both caches
// (mapping-table query cache and the corpus cache).
func TestCorpusEndpointAndCacheMetrics(t *testing.T) {
	srv, m := newTestServer(t, Config{Workers: 1})

	// A FlashWalker job feeds the query-cache aggregates.
	fw := submitJob(t, srv, JobSpec{Graph: "TT-S", NumWalks: 500, Seed: 1})
	if st := pollJob(t, srv, fw.ID); st.State != StateDone {
		t.Fatalf("flashwalker job: %+v", st)
	} else if st.Result.QueryCacheHits == 0 {
		t.Fatalf("flashwalker job reported no query-cache hits: %+v", st.Result)
	}

	// The corpus endpoint 404s for a non-deepwalk job.
	resp, err := http.Get(srv.URL + "/v1/jobs/" + fw.ID + "/corpus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("corpus of a flashwalker job: %d, want 404", resp.StatusCode)
	}

	spec := JobSpec{Kind: KindDeepWalk, Graph: "TT-S", Seed: 3, WalksPerVertex: 1, WalkLength: 4}
	dw := submitJob(t, srv, spec)
	dwSt := pollJob(t, srv, dw.ID)
	if dwSt.State != StateDone {
		t.Fatalf("deepwalk job: %+v", dwSt)
	}
	resp, err = http.Get(srv.URL + "/v1/jobs/" + dw.ID + "/corpus")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("corpus download: %d (err=%v)", resp.StatusCode, err)
	}
	if got := resp.Header.Get("X-Corpus-SHA256"); got != dwSt.Result.CorpusSHA256 {
		t.Fatalf("corpus seal header %q, result says %q", got, dwSt.Result.CorpusSHA256)
	}
	if lines := bytes.Count(body, []byte("\n")); lines != dwSt.Result.CorpusWalks {
		t.Fatalf("corpus has %d lines, result says %d walks", lines, dwSt.Result.CorpusWalks)
	}

	// Resubmit for a cache hit, then check every new Prometheus series.
	if st := pollJob(t, srv, submitJob(t, srv, spec).ID); !st.Result.CorpusCached {
		t.Fatal("resubmission over HTTP missed the cache")
	}
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	metrics := string(mbody)
	for _, want := range []string{
		fmt.Sprintf("flashwalker_query_cache_hits_total %d", m.metrics.queryCacheHits.Load()),
		"flashwalker_query_cache_misses_total ",
		"flashwalker_corpus_cache_hits_total 1",
		"flashwalker_corpus_cache_misses_total 1",
		"flashwalker_corpus_engine_runs_total 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if m.metrics.queryCacheHits.Load() == 0 {
		t.Error("query-cache hit aggregate is zero after a FlashWalker job")
	}
}
