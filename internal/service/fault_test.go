package service

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"flashwalker/internal/fault"
)

// testFaultConfig is a profile hot enough to inject visible faults on the
// small TT-S dataset.
func testFaultConfig() *fault.Config {
	c := fault.Default()
	c.ReadErrorRate = 0.1
	c.PlaneBusyRate = 0.1
	c.DegradeAfterErrors = 8
	return &c
}

// TestSubmitInvalidFaultConfigRejected pins the submission-time contract: a
// job whose fault_config fails validation is rejected with 400 at the API
// boundary — it never reaches a worker, so the failure is synchronous and
// attributable, not an async job in state "failed".
func TestSubmitInvalidFaultConfigRejected(t *testing.T) {
	srv, m := newTestServer(t, Config{Workers: 1})

	bad := testFaultConfig()
	bad.ReadErrorRate = 2 // outside [0, 1]
	resp, body := postJSON(t, srv.URL+"/v1/jobs", JobSpec{
		Graph: "TT-S", NumWalks: 100, FaultConfig: bad,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid fault_config submit: %d %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "fault_config") {
		t.Errorf("error %s does not name fault_config", body)
	}
	if jobs := m.List(); len(jobs) != 0 {
		t.Errorf("rejected job was tracked: %+v", jobs)
	}
	if !strings.Contains(m.Metrics(), "flashwalker_jobs_rejected_total 1") {
		t.Error("rejection not counted in metrics")
	}

	// Other invalid shapes take the same path.
	bad2 := testFaultConfig()
	bad2.MaxRetries = -1
	if resp, _ := postJSON(t, srv.URL+"/v1/jobs", JobSpec{Graph: "TT-S", FaultConfig: bad2}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative max_retries submit: %d", resp.StatusCode)
	}
}

// TestFaultJobEndToEnd runs a fault-enabled job through the HTTP API twice
// and checks the counters surface in the result and /metrics — and that both
// runs agree exactly (fault injection is deterministic per (workload, seed)).
func TestFaultJobEndToEnd(t *testing.T) {
	srv, _ := newTestServer(t, Config{Workers: 1})

	spec := JobSpec{Graph: "TT-S", NumWalks: 500, Seed: 4, FaultConfig: testFaultConfig()}
	a := pollJob(t, srv, submitJob(t, srv, spec).ID)
	b := pollJob(t, srv, submitJob(t, srv, spec).ID)
	if a.State != StateDone || b.State != StateDone {
		t.Fatalf("fault jobs did not finish: %s / %s", a.State, b.State)
	}
	if a.Result.FaultReadErrors == 0 || a.Result.FaultRetries == 0 {
		t.Fatalf("fault job injected nothing: %+v", a.Result)
	}
	if *a.Result != *b.Result {
		t.Fatalf("identical fault jobs diverged:\n a %+v\n b %+v", a.Result, b.Result)
	}

	// A clean job on the same graph reports zero fault counters.
	clean := pollJob(t, srv, submitJob(t, srv, JobSpec{Graph: "TT-S", NumWalks: 500, Seed: 4}).ID)
	if clean.Result.FaultReadErrors != 0 || clean.Result.DegradedChips != 0 {
		t.Fatalf("clean job reports faults: %+v", clean.Result)
	}
	// Faults must not change walk outcomes (the metamorphic guarantee,
	// visible end to end through the API).
	if clean.Result.Completed != a.Result.Completed || clean.Result.Hops != a.Result.Hops {
		t.Fatalf("faults changed outcomes: clean completed=%d hops=%d, faulty completed=%d hops=%d",
			clean.Result.Completed, clean.Result.Hops, a.Result.Completed, a.Result.Hops)
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf strings.Builder
	if _, err := io.Copy(&buf, mresp.Body); err != nil {
		t.Fatal(err)
	}
	metrics := buf.String()
	for _, name := range []string{
		"flashwalker_fault_read_errors_total",
		"flashwalker_fault_retries_total",
		"flashwalker_fault_plane_busy_stalls_total",
		"flashwalker_fault_chips_degraded_total",
		"flashwalker_fault_reroutes_total",
	} {
		if !strings.Contains(metrics, name) {
			t.Errorf("/metrics missing %s", name)
		}
		if strings.Contains(metrics, name+" 0\n") && strings.HasPrefix(name, "flashwalker_fault_read") {
			t.Errorf("%s stayed zero after a fault-enabled job", name)
		}
	}
}
