package service

import (
	"encoding/json"
	"errors"
	"testing"

	"flashwalker/internal/errs"
	"flashwalker/internal/graph"
)

// FuzzJobSpecDecode hardens the submission path's pure half: arbitrary bytes
// either fail JSON decoding, fail shape validation with a typed
// errs.ErrInvalidConfig (so the HTTP layer maps them to 400), or yield a spec
// with a recognized kind. It must never panic and never classify a bad spec
// as anything but an invalid-config error — fault_config included, since that
// is the field the worker would otherwise choke on asynchronously.
func FuzzJobSpecDecode(f *testing.F) {
	for _, seed := range []string{
		`{}`,
		`{"kind":"flashwalker","graph":"TT-S","num_walks":100,"seed":7}`,
		`{"kind":"graphwalker","graph":"TT-S","mem_bytes":1048576}`,
		`{"kind":"bogus"}`,
		`{"num_walks":-1}`,
		`{"mem_bytes":-5}`,
		`{"fault_config":{"enabled":true,"seed":64023,"read_error_rate":0.02,"plane_busy_rate":0.05,"plane_busy_time":25000,"max_retries":4,"retry_backoff":10000,"degrade_after_errors":64,"degraded_read_penalty":35000}}`,
		`{"fault_config":{"enabled":true,"read_error_rate":2}}`,
		`{"fault_config":{"max_retries":-1}}`,
		`{"fault_config":{"max_retries":1000}}`,
		`{"fault_config":{"retry_backoff":-1}}`,
		`{"fault_config":null}`,
		`{"checkpoint_every":18446744073709551615}`,
		`{"kind":"flashwalker","graph":"MB-S","boards":4}`,
		`{"boards":-1}`,
		`{"boards":65}`,
		`{"boards":2,"fabric_latency_ns":1000,"fabric_mbps":4000}`,
		`{"fabric_latency_ns":-1}`,
		`{"fabric_mbps":-1}`,
		`{"boards":2,"fault_config":{"kill_board_at":500000,"kill_board":1}}`,
		`{"boards":1,"fault_config":{"kill_board_at":500000}}`,
		`{"boards":2,"fault_config":{"kill_board_at":500000,"kill_board":2}}`,
		`{"fault_config":{"kill_board_at":-1}}`,
		`{"kind":"flashwalker","graph":"TT-S","mutations":[{"at_ns":0,"op":"insert","src":1,"dst":2}]}`,
		`{"kind":"graphwalker","graph":"TT-S","mutations":[{"op":"insert","src":1,"dst":2}]}`,
		`{"mutations":[{"at_ns":-1,"op":"insert","src":0,"dst":0}]}`,
		`{"mutations":[{"op":"rewire","src":0,"dst":0}]}`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var spec JobSpec
		if err := json.Unmarshal(data, &spec); err != nil {
			return
		}
		err := spec.validate()
		if err != nil {
			if !errors.Is(err, errs.ErrInvalidConfig) {
				t.Fatalf("validate returned an untyped error: %v", err)
			}
			return
		}
		// A spec that validates must be fully normalized in shape: a
		// recognized kind and non-negative scalars.
		if spec.Kind != KindFlashWalker && spec.Kind != KindGraphWalker {
			t.Fatalf("validated spec has kind %q", spec.Kind)
		}
		if spec.NumWalks < 0 || spec.MemBytes < 0 {
			t.Fatalf("validated spec kept negative scalars: %+v", spec)
		}
		if spec.Boards < 0 || spec.FabricLatencyNS < 0 || spec.FabricMBps < 0 {
			t.Fatalf("validated spec kept negative array fields: %+v", spec)
		}
		if spec.FaultConfig != nil {
			if fc := *spec.FaultConfig; fc.MaxRetries < 0 || fc.RetryBackoff < 0 {
				t.Fatalf("validated spec kept invalid fault_config: %+v", fc)
			}
			// A validated kill must have a live target: boards > 1 and the
			// killed index inside the array.
			if fc := *spec.FaultConfig; fc.KillBoardAt > 0 && (spec.Boards <= 1 || fc.KillBoard >= spec.Boards) {
				t.Fatalf("validated spec kept an untargetable kill: %+v", spec)
			}
		}
		// A validated mutation stream must be well-shaped and never ride on
		// the host baseline, which does not support mutations.
		if len(spec.Mutations) > 0 {
			if spec.Kind == KindGraphWalker {
				t.Fatalf("validated spec kept mutations on the host baseline: %+v", spec)
			}
			if err := spec.Mutations.ValidateShape(); err != nil {
				t.Fatalf("validated spec kept a malformed mutation stream: %v", err)
			}
		}
	})
}

// FuzzMutationStreamDecode hardens the mutation-stream half of the
// submission path: arbitrary bytes either fail JSON decoding, fail
// validation with a typed errs.ErrInvalidConfig (so the HTTP layer maps
// them to 400 invalid_config), or decode to a stream whose shape invariants
// all hold. It must never panic — graph.MutationStream.ValidateShape and
// JobSpec.validate are both driven directly with whatever decodes.
func FuzzMutationStreamDecode(f *testing.F) {
	for _, seed := range []string{
		`[]`,
		`null`,
		`[{"at_ns":0,"op":"insert","src":1,"dst":2}]`,
		`[{"at_ns":0,"op":"insert","src":1,"dst":2,"weight":2.5}]`,
		`[{"at_ns":1000,"op":"delete","src":3,"dst":4}]`,
		`[{"at_ns":5,"op":"insert","src":0,"dst":0},{"at_ns":5,"op":"delete","src":0,"dst":0}]`,
		`[{"at_ns":10,"op":"insert","src":0,"dst":1},{"at_ns":9,"op":"insert","src":0,"dst":2}]`,
		`[{"at_ns":-1,"op":"insert","src":0,"dst":0}]`,
		`[{"op":"rewire","src":0,"dst":0}]`,
		`[{"op":"delete","src":0,"dst":0,"weight":1.5}]`,
		`[{"op":"insert","src":0,"dst":0,"weight":-1}]`,
		`[{"op":"insert","src":0,"dst":0,"weight":1e39}]`,
		`[{"op":"insert","src":18446744073709551615,"dst":0}]`,
		`[{}]`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var ms graph.MutationStream
		if err := json.Unmarshal(data, &ms); err != nil {
			return
		}
		shapeErr := ms.ValidateShape()

		// The stream embedded in a spec must classify the same way: a
		// malformed stream is an invalid-config error, never a panic and
		// never an untyped failure.
		spec := JobSpec{Kind: KindFlashWalker, Graph: "TT-S", Mutations: ms}
		err := spec.validate()
		if err != nil {
			if !errors.Is(err, errs.ErrInvalidConfig) {
				t.Fatalf("validate returned an untyped error: %v", err)
			}
			return
		}
		if shapeErr != nil && len(ms) <= maxMutations {
			t.Fatalf("spec validated but stream shape is bad: %v", shapeErr)
		}
		// Shape holds: re-check the invariants validation promises.
		prev := int64(0)
		for i, m := range ms {
			if m.At < prev {
				t.Fatalf("validated stream is unsorted at %d", i)
			}
			prev = m.At
			if m.Op != graph.OpInsertEdge && m.Op != graph.OpDeleteEdge {
				t.Fatalf("validated stream kept unknown op %q", m.Op)
			}
			if m.Op == graph.OpDeleteEdge && m.Weight != 0 {
				t.Fatalf("validated stream kept a weighted delete at %d", i)
			}
		}
	})
}
