package service

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"flashwalker/internal/errs"
)

// v1 API errors that don't originate in the manager itself.
var (
	// ErrNoCorpus reports a corpus request against a job that has none
	// (not a finished "deepwalk" job).
	ErrNoCorpus = errors.New("job has no corpus")
	// ErrBadRequest reports a malformed request (undecodable body, bad
	// query parameter).
	ErrBadRequest = errors.New("bad request")
	// ErrBodyTooLarge reports a request body over the configured cap
	// (Config.MaxBodyBytes).
	ErrBodyTooLarge = errors.New("request body too large")
)

// The v1 error contract: every handler answers failures with one JSON
// envelope,
//
//	{"error": {"code": "...", "message": "...", "job_id": "..."}}
//
// where code is a stable machine-readable identifier and job_id is set
// when the failure concerns a specific job. errorTable is the single
// mapping from the service error taxonomy to HTTP status and code; it is
// ordered, and the first errors.Is match wins. Anything unmapped is a 500
// "internal".
var errorTable = []struct {
	target error
	status int
	code   string
}{
	{ErrQueueFull, http.StatusTooManyRequests, "queue_full"},
	{ErrRateLimited, http.StatusTooManyRequests, "rate_limited"},
	{ErrTenantQuota, http.StatusTooManyRequests, "tenant_quota"},
	{ErrUnknownJob, http.StatusNotFound, "unknown_job"},
	{errs.ErrUnknownDataset, http.StatusNotFound, "unknown_graph"},
	{ErrNoCorpus, http.StatusNotFound, "no_corpus"},
	{ErrNoStream, http.StatusConflict, "stream_unsupported"},
	{ErrStreamEvicted, http.StatusGone, "stream_evicted"},
	// Before bad_request: an oversized body is a decode failure too, and
	// the specific code must win.
	{ErrBodyTooLarge, http.StatusRequestEntityTooLarge, "body_too_large"},
	{errs.ErrInvalidConfig, http.StatusBadRequest, "invalid_config"},
	{ErrBadRequest, http.StatusBadRequest, "bad_request"},
}

// apiError is the body of the v1 error envelope.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	JobID   string `json:"job_id,omitempty"`
}

type errorEnvelope struct {
	Error apiError `json:"error"`
}

// httpError resolves err against the error table.
func httpError(err error) (status int, code string) {
	for _, e := range errorTable {
		if errors.Is(err, e.target) {
			return e.status, e.code
		}
	}
	return http.StatusInternalServerError, "internal"
}

// writeError emits the v1 error envelope for err; jobID may be empty.
func writeError(w http.ResponseWriter, err error, jobID string) {
	status, code := httpError(err)
	writeJSON(w, status, errorEnvelope{Error: apiError{
		Code: code, Message: err.Error(), JobID: jobID,
	}})
}

// jobsPage is the GET /v1/jobs response.
type jobsPage struct {
	Jobs []JobStatus `json:"jobs"`
	// NextCursor is non-empty exactly when more matching jobs exist; pass
	// it back as ?cursor= to continue.
	NextCursor string `json:"next_cursor,omitempty"`
}

// NewHandler wires the HTTP/JSON v1 API around a Manager:
//
//	POST   /v1/jobs             submit a job (202; 429 on admission rejection)
//	GET    /v1/jobs             page of jobs: ?status= ?tenant= ?limit= ?cursor=
//	GET    /v1/jobs/{id}        one job's status, live progress included
//	POST   /v1/jobs/{id}/cancel request cancellation (202)
//	GET    /v1/jobs/{id}/stream NDJSON of completed walks, live; ?from=seq resumes
//	GET    /v1/jobs/{id}/corpus a finished "deepwalk" job's corpus text
//	GET    /v1/graphs           list registered graphs
//	POST   /v1/graphs           load a graph file into the registry
//	GET    /healthz             liveness probe
//	GET    /metrics             Prometheus text metrics
//
// Every failure is the JSON error envelope; see errorTable for the
// status/code contract.
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()

	// decodeBody decodes a JSON request body under the configured size
	// cap. Oversized bodies map to the stable body_too_large code rather
	// than a generic decode failure.
	decodeBody := func(w http.ResponseWriter, r *http.Request, what string, v any) error {
		body := http.MaxBytesReader(w, r.Body, m.maxBodyBytes)
		if err := json.NewDecoder(body).Decode(v); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				return fmt.Errorf("service: %s exceeds the %d-byte request cap: %w",
					what, tooBig.Limit, ErrBodyTooLarge)
			}
			return fmt.Errorf("service: decoding %s: %v: %w", what, err, ErrBadRequest)
		}
		return nil
	}

	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec JobSpec
		if err := decodeBody(w, r, "job spec", &spec); err != nil {
			writeError(w, err, "")
			return
		}
		j, err := m.Submit(spec)
		if err != nil {
			writeError(w, err, "")
			return
		}
		writeJSON(w, http.StatusAccepted, j.Status())
	})

	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		f := ListFilter{
			Status: q.Get("status"),
			Tenant: q.Get("tenant"),
			Cursor: q.Get("cursor"),
		}
		switch f.Status {
		case "", StateQueued, StateRunning, StateDone, StateCanceled, StateFailed:
		default:
			writeError(w, fmt.Errorf("service: unknown status %q: %w", f.Status, ErrBadRequest), "")
			return
		}
		if s := q.Get("limit"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n < 0 {
				writeError(w, fmt.Errorf("service: bad limit %q: %w", s, ErrBadRequest), "")
				return
			}
			f.Limit = n
		}
		jobs, next := m.ListPage(f)
		writeJSON(w, http.StatusOK, jobsPage{Jobs: jobs, NextCursor: next})
	})

	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		j, err := m.Get(id)
		if err != nil {
			writeError(w, err, id)
			return
		}
		writeJSON(w, http.StatusOK, j.Status())
	})

	mux.HandleFunc("POST /v1/jobs/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if err := m.Cancel(id); err != nil {
			writeError(w, err, id)
			return
		}
		j, err := m.Get(id)
		if err != nil {
			writeError(w, err, id)
			return
		}
		writeJSON(w, http.StatusAccepted, j.Status())
	})

	mux.HandleFunc("GET /v1/jobs/{id}/stream", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		j, err := m.Get(id)
		if err != nil {
			writeError(w, err, id)
			return
		}
		if j.stream == nil {
			writeError(w, fmt.Errorf("service: %q job %s: %w", j.Spec.Kind, id, ErrNoStream), id)
			return
		}
		var from uint64
		if s := r.URL.Query().Get("from"); s != "" {
			v, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				writeError(w, fmt.Errorf("service: bad from offset %q: %w", s, ErrBadRequest), id)
				return
			}
			from = v
		}
		rd, err := j.stream.attach(from)
		if err != nil {
			writeError(w, err, id)
			return
		}
		defer rd.detach()

		// The stream is long-lived: clear the per-request read deadline the
		// server armed from ReadTimeout, or it would sever a healthy stream
		// once the deadline lapses.
		_ = http.NewResponseController(w).SetReadDeadline(time.Time{})

		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		fl, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		for {
			batch, end, err := rd.next(r.Context())
			if err != nil {
				return // client went away
			}
			if end != nil {
				_ = enc.Encode(end)
				if fl != nil {
					fl.Flush()
				}
				return
			}
			for i := range batch {
				if enc.Encode(&batch[i]) != nil {
					return
				}
			}
			if fl != nil {
				fl.Flush()
			}
		}
	})

	mux.HandleFunc("GET /v1/jobs/{id}/corpus", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		j, err := m.Get(id)
		if err != nil {
			writeError(w, err, id)
			return
		}
		c := j.Corpus()
		if c == nil {
			writeError(w, fmt.Errorf("service: %w (not a finished deepwalk job)", ErrNoCorpus), id)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Header().Set("X-Corpus-SHA256", hex.EncodeToString(c.SHA[:]))
		_, _ = w.Write(c.Data)
	})

	mux.HandleFunc("GET /v1/graphs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.Registry().List())
	})

	mux.HandleFunc("POST /v1/graphs", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Name string `json:"name"`
			Path string `json:"path"`
		}
		if err := decodeBody(w, r, "graph request", &req); err != nil {
			writeError(w, err, "")
			return
		}
		gi, err := m.Registry().Load(req.Name, req.Path)
		if err != nil {
			if _, code := httpError(err); code == "internal" {
				// Load failures (unreadable path, parse error) are the
				// caller's fault, not the service's.
				err = fmt.Errorf("service: loading graph: %v: %w", err, ErrBadRequest)
			}
			writeError(w, err, "")
			return
		}
		writeJSON(w, http.StatusCreated, gi)
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(m.Metrics()))
	})

	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
