package service

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"net/http"

	"flashwalker/internal/errs"
)

// NewHandler wires the HTTP/JSON API around a Manager:
//
//	POST   /v1/jobs             submit a job (202, or 429 when the queue is full)
//	GET    /v1/jobs             list all jobs
//	GET    /v1/jobs/{id}        one job's status, live progress included
//	POST   /v1/jobs/{id}/cancel request cancellation (202)
//	GET    /v1/jobs/{id}/corpus a finished "deepwalk" job's corpus text
//	GET    /v1/graphs           list registered graphs
//	POST   /v1/graphs           load a graph file into the registry
//	GET    /healthz             liveness probe
//	GET    /metrics             Prometheus text metrics
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec JobSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		j, err := m.Submit(spec)
		if err != nil {
			writeError(w, submitStatus(err), err)
			return
		}
		writeJSON(w, http.StatusAccepted, j.Status())
	})

	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.List())
	})

	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, err := m.Get(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, j.Status())
	})

	mux.HandleFunc("POST /v1/jobs/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if err := m.Cancel(id); err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		j, err := m.Get(id)
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusAccepted, j.Status())
	})

	mux.HandleFunc("GET /v1/jobs/{id}/corpus", func(w http.ResponseWriter, r *http.Request) {
		j, err := m.Get(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		c := j.Corpus()
		if c == nil {
			writeError(w, http.StatusNotFound, errors.New("service: job has no corpus (not a finished deepwalk job)"))
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Header().Set("X-Corpus-SHA256", hex.EncodeToString(c.SHA[:]))
		_, _ = w.Write(c.Data)
	})

	mux.HandleFunc("GET /v1/graphs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.Registry().List())
	})

	mux.HandleFunc("POST /v1/graphs", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Name string `json:"name"`
			Path string `json:"path"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		gi, err := m.Registry().Load(req.Name, req.Path)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusCreated, gi)
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(m.Metrics()))
	})

	return mux
}

// submitStatus maps a Submit error onto its HTTP status via the error
// taxonomy: full queue is backpressure (429), unknown graph is 404, and
// everything else a bad request.
func submitStatus(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, errs.ErrUnknownDataset):
		return http.StatusNotFound
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
