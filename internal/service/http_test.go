package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"flashwalker/internal/graph"
	"flashwalker/internal/harness"
)

func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *Manager) {
	t.Helper()
	m, err := NewManager(NewRegistry(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	srv := httptest.NewServer(NewHandler(m))
	t.Cleanup(srv.Close)
	return srv, m
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func submitJob(t *testing.T, srv *httptest.Server, spec JobSpec) JobStatus {
	t.Helper()
	resp, body := postJSON(t, srv.URL+"/v1/jobs", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	return st
}

func pollJob(t *testing.T, srv *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		var st JobStatus
		if resp := getJSON(t, srv.URL+"/v1/jobs/"+id, &st); resp.StatusCode != http.StatusOK {
			t.Fatalf("get %s: %d", id, resp.StatusCode)
		}
		switch st.State {
		case StateDone, StateCanceled, StateFailed:
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServiceEndToEnd is the acceptance scenario: two concurrent jobs run
// to completion while a third is canceled mid-run and keeps a partial
// result; /healthz and /metrics respond throughout.
func TestServiceEndToEnd(t *testing.T) {
	srv, m := newTestServer(t, Config{Workers: 3})

	if resp := getJSON(t, srv.URL+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	a := submitJob(t, srv, JobSpec{Graph: "TT-S", NumWalks: 500, Seed: 1})
	b := submitJob(t, srv, JobSpec{Kind: KindGraphWalker, Graph: "TT-S", NumWalks: 500, Seed: 2})
	c := submitJob(t, srv, JobSpec{Graph: "TT-S", NumWalks: 100_000, Seed: 3, CheckpointEvery: 64})

	// Wait until the long job reports progress, then cancel it mid-run.
	jc, err := m.Get(c.ID)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Minute)
	for jc.progress.Load() == nil {
		if time.Now().After(deadline) {
			t.Fatal("long job never reported progress")
		}
		time.Sleep(time.Millisecond)
	}
	resp, body := postJSON(t, srv.URL+"/v1/jobs/"+c.ID+"/cancel", nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: %d %s", resp.StatusCode, body)
	}

	stA, stB, stC := pollJob(t, srv, a.ID), pollJob(t, srv, b.ID), pollJob(t, srv, c.ID)
	if stA.State != StateDone || stA.Result.Completed+stA.Result.DeadEnded != 500 {
		t.Errorf("job A: %+v", stA)
	}
	if stB.State != StateDone || stB.Result.Completed+stB.Result.DeadEnded != 500 {
		t.Errorf("job B: %+v", stB)
	}
	if stC.State != StateCanceled {
		t.Fatalf("job C state %s (error %q)", stC.State, stC.Error)
	}
	if stC.Result == nil || !stC.Result.Partial {
		t.Fatalf("job C has no partial result: %+v", stC.Result)
	}
	if fin := stC.Result.Completed + stC.Result.DeadEnded; fin >= 100_000 {
		t.Errorf("canceled job claims %d finished walks", fin)
	}
	if !strings.Contains(stC.Error, "canceled") {
		t.Errorf("job C error %q does not mention cancellation", stC.Error)
	}

	var page jobsPage
	getJSON(t, srv.URL+"/v1/jobs", &page)
	if len(page.Jobs) != 3 {
		t.Errorf("listed %d jobs, want 3", len(page.Jobs))
	}
	if page.NextCursor != "" {
		t.Errorf("full listing returned next_cursor %q", page.NextCursor)
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	// Prometheus scrapers negotiate on the text exposition content type.
	if ct := mresp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("metrics Content-Type %q, want Prometheus text exposition", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	metrics := buf.String()
	for _, want := range []string{
		"flashwalker_jobs_submitted_total 3",
		"flashwalker_jobs_completed_total 2",
		"flashwalker_jobs_canceled_total 1",
		"flashwalker_jobs_running 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestServiceBackpressureHTTP(t *testing.T) {
	srv, _ := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	long := JobSpec{Graph: "TT-S", NumWalks: 100_000, Seed: 1, CheckpointEvery: 64}
	var ids []string
	got429 := false
	for i := 0; i < 3; i++ {
		resp, body := postJSON(t, srv.URL+"/v1/jobs", long)
		switch resp.StatusCode {
		case http.StatusAccepted:
			var st JobStatus
			if err := json.Unmarshal(body, &st); err != nil {
				t.Fatal(err)
			}
			ids = append(ids, st.ID)
		case http.StatusTooManyRequests:
			got429 = true
		default:
			t.Fatalf("submit %d: %d %s", i, resp.StatusCode, body)
		}
	}
	if !got429 {
		t.Fatal("full queue never returned 429")
	}
	for _, id := range ids {
		if resp, body := postJSON(t, srv.URL+"/v1/jobs/"+id+"/cancel", nil); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("cancel %s: %d %s", id, resp.StatusCode, body)
		}
	}
	for _, id := range ids {
		pollJob(t, srv, id)
	}
}

func TestServiceGraphEndpoints(t *testing.T) {
	srv, _ := newTestServer(t, Config{Workers: 1})

	var graphs []GraphInfo
	getJSON(t, srv.URL+"/v1/graphs", &graphs)
	if want := len(harness.Datasets()) + len(harness.ExtraDatasets()); len(graphs) != want {
		t.Fatalf("listed %d graphs, want the %d registry datasets", len(graphs), want)
	}
	found := false
	for _, gi := range graphs {
		if gi.Name == "MB-S" && gi.Source == "dataset" {
			found = true
		}
	}
	if !found {
		t.Fatal("multi-board preset MB-S missing from the graph listing")
	}

	// Load a custom graph file and run a job against it.
	g, err := graph.RMAT(graph.DefaultRMAT(2048, 16384, 9))
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/custom.bin"
	if err := graph.Save(path, g); err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, srv.URL+"/v1/graphs", map[string]string{"name": "custom", "path": path})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("load graph: %d %s", resp.StatusCode, body)
	}
	var gi GraphInfo
	if err := json.Unmarshal(body, &gi); err != nil {
		t.Fatal(err)
	}
	if gi.Source != "file" || !gi.Loaded || gi.Edges == 0 {
		t.Fatalf("bad graph info: %+v", gi)
	}

	st := submitJob(t, srv, JobSpec{Graph: "custom", NumWalks: 300, Seed: 1})
	if fin := pollJob(t, srv, st.ID); fin.State != StateDone {
		t.Fatalf("custom-graph job: %+v", fin)
	}

	// Unknown graph in a submission is a 404.
	resp, _ = postJSON(t, srv.URL+"/v1/jobs", JobSpec{Graph: "missing"})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown graph submit: %d", resp.StatusCode)
	}
	// Duplicate registration is a 400.
	resp, _ = postJSON(t, srv.URL+"/v1/graphs", map[string]string{"name": "custom", "path": path})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("duplicate graph load: %d", resp.StatusCode)
	}
}
