package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"flashwalker/internal/baseline"
	"flashwalker/internal/blob"
	"flashwalker/internal/core"
	"flashwalker/internal/errs"
	"flashwalker/internal/fault"
	"flashwalker/internal/graph"
	"flashwalker/internal/harness"
	"flashwalker/internal/sim"
	"flashwalker/internal/walk"
)

// Service-level errors. Engine- and registry-level failures surface the
// shared taxonomy (errs.ErrCanceled, errs.ErrInvalidConfig,
// errs.ErrUnknownDataset); these two are specific to the job manager.
var (
	// ErrQueueFull reports a submission rejected by backpressure: the
	// bounded job queue has no free slot. Retry later.
	ErrQueueFull = errors.New("job queue full")
	// ErrUnknownJob reports a job ID with no matching job.
	ErrUnknownJob = errors.New("unknown job")
)

// Snapshot cadence for durable jobs: a snapshot is attempted every
// snapshotCheckpointRatio checkpoint intervals (spec.checkpoint_every
// events each, or the engine default), and actually written at most once
// per snapshotMinInterval of wall time.
const (
	snapshotCheckpointRatio = 16
	snapshotMinInterval     = 200 * time.Millisecond
)

// DeepWalk spec bounds: generous for real workloads, tight enough that a
// fuzz-decoded spec can never ask for an absurd corpus.
const (
	maxWalksPerVertex = 1 << 20
	maxWalkLength     = 1 << 20
)

// maxMutations caps the mutation-stream length a single submission may
// carry: generous for real dynamic-graph workloads, tight enough that a
// fuzz-decoded spec can never make validation itself expensive.
const maxMutations = 1 << 17

// Job kinds.
const (
	// KindFlashWalker runs the in-storage accelerator (the default).
	KindFlashWalker = "flashwalker"
	// KindGraphWalker runs the host-CPU baseline for comparison.
	KindGraphWalker = "graphwalker"
	// KindDeepWalk generates a DeepWalk training corpus (walks_per_vertex
	// unbiased walks of walk_length hops from every vertex). Identical
	// submissions — same (graph, spec, seed, start set) — are served from
	// the manager's sealed corpus cache without re-running the engine.
	KindDeepWalk = "deepwalk"
)

// Job states.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateCanceled = "canceled"
	StateFailed   = "failed"
)

// JobSpec is a job submission.
type JobSpec struct {
	// Kind selects the engine: "flashwalker" (default) or "graphwalker".
	Kind string `json:"kind"`
	// Tenant names the submitting tenant for admission control (quotas,
	// rate limits, fair-share scheduling). Empty means "default".
	Tenant string `json:"tenant,omitempty"`
	// Graph names a registry entry (dataset or loaded file).
	Graph string `json:"graph"`
	// NumWalks is the walk count; 0 uses the graph's default.
	NumWalks int `json:"num_walks"`
	// Seed is the root RNG seed (0 is a valid seed).
	Seed uint64 `json:"seed"`
	// MemBytes is the baseline's memory capacity; 0 uses the scaled-8GB
	// analogue. Ignored by FlashWalker jobs.
	MemBytes int64 `json:"mem_bytes"`
	// CheckpointEvery overrides the event interval between cancellation
	// checks and progress snapshots; 0 uses the engine default.
	CheckpointEvery uint64 `json:"checkpoint_every"`
	// FaultConfig, when non-nil, enables deterministic fault injection for
	// FlashWalker jobs (ignored by the host baseline). An invalid config is
	// rejected at submission — 400, not an async worker failure.
	FaultConfig *fault.Config `json:"fault_config,omitempty"`
	// Boards selects the simulated device topology for FlashWalker jobs:
	// 0 or 1 runs the classic single board, N > 1 an N-board SSD array
	// over the inter-board fabric (ignored by the host baseline).
	Boards int `json:"boards,omitempty"`
	// FabricLatencyNS overrides the fabric per-message latency (ns); 0
	// keeps the engine default. Only meaningful with Boards > 1.
	FabricLatencyNS int64 `json:"fabric_latency_ns,omitempty"`
	// FabricMBps overrides the per-board fabric bandwidth (MB/s); 0 keeps
	// the engine default. Only meaningful with Boards > 1.
	FabricMBps int64 `json:"fabric_mbps,omitempty"`
	// WalksPerVertex is the DeepWalk corpus fan-out (kind "deepwalk"
	// only): that many walks start from every vertex. 0 means 1.
	WalksPerVertex int `json:"walks_per_vertex,omitempty"`
	// WalkLength is the per-walk hop budget for "deepwalk" jobs. 0 uses
	// the harness default walk length.
	WalkLength uint32 `json:"walk_length,omitempty"`
	// Mutations is a deterministic, time-sorted edge insert/delete stream.
	// FlashWalker jobs apply it strictly between simulated events (a
	// mutation stamped T ns is visible to the first event at time >= T;
	// at_ns == 0 applies before the run). DeepWalk jobs apply the whole
	// stream up front — corpus generation runs on the host, with no
	// simulated clock. The host baseline does not support mutations; a
	// graphwalker job carrying a stream is rejected at submission.
	Mutations graph.MutationStream `json:"mutations,omitempty"`
}

// validate is the pure half of normalize: shape checks only, no registry
// access, no I/O. The fuzz target drives it directly with arbitrary decoded
// specs, so it must reject every bad shape with errs.ErrInvalidConfig and
// never panic.
func (s *JobSpec) validate() error {
	if s.Kind == "" {
		s.Kind = KindFlashWalker
	}
	if s.Kind != KindFlashWalker && s.Kind != KindGraphWalker && s.Kind != KindDeepWalk {
		return fmt.Errorf("service: unknown job kind %q: %w", s.Kind, errs.ErrInvalidConfig)
	}
	if len(s.Tenant) > maxTenantLen {
		return fmt.Errorf("service: tenant longer than %d bytes: %w", maxTenantLen, errs.ErrInvalidConfig)
	}
	if s.NumWalks < 0 {
		return fmt.Errorf("service: num_walks must be non-negative: %w", errs.ErrInvalidConfig)
	}
	if s.WalksPerVertex < 0 || s.WalksPerVertex > maxWalksPerVertex {
		return fmt.Errorf("service: walks_per_vertex %d outside [0, %d]: %w",
			s.WalksPerVertex, maxWalksPerVertex, errs.ErrInvalidConfig)
	}
	if s.WalkLength > maxWalkLength {
		return fmt.Errorf("service: walk_length %d exceeds %d: %w", s.WalkLength, maxWalkLength, errs.ErrInvalidConfig)
	}
	if s.Kind != KindDeepWalk && (s.WalksPerVertex != 0 || s.WalkLength != 0) {
		return fmt.Errorf("service: walks_per_vertex/walk_length only apply to %q jobs: %w",
			KindDeepWalk, errs.ErrInvalidConfig)
	}
	if s.MemBytes < 0 {
		return fmt.Errorf("service: mem_bytes must be non-negative: %w", errs.ErrInvalidConfig)
	}
	if s.FaultConfig != nil {
		if err := s.FaultConfig.Validate(); err != nil {
			return fmt.Errorf("service: fault_config: %w", err)
		}
	}
	if s.Boards < 0 || s.Boards > core.MaxBoards {
		return fmt.Errorf("service: boards %d outside [0, %d]: %w", s.Boards, core.MaxBoards, errs.ErrInvalidConfig)
	}
	if s.FabricLatencyNS < 0 {
		return fmt.Errorf("service: fabric_latency_ns must be non-negative: %w", errs.ErrInvalidConfig)
	}
	if s.FabricMBps < 0 {
		return fmt.Errorf("service: fabric_mbps must be non-negative: %w", errs.ErrInvalidConfig)
	}
	if len(s.Mutations) > maxMutations {
		return fmt.Errorf("service: mutation stream of %d entries exceeds %d: %w",
			len(s.Mutations), maxMutations, errs.ErrInvalidConfig)
	}
	if len(s.Mutations) > 0 {
		if s.Kind == KindGraphWalker {
			return fmt.Errorf("service: the host baseline does not support mutations: %w", errs.ErrInvalidConfig)
		}
		if err := s.Mutations.ValidateShape(); err != nil {
			return fmt.Errorf("service: mutations: %v: %w", err, errs.ErrInvalidConfig)
		}
	}
	if s.FaultConfig != nil && s.FaultConfig.KillBoardAt > 0 {
		// The whole-device kill needs survivors; reject the mismatch here so
		// it is a 400, never an async worker failure.
		if s.Boards <= 1 {
			return fmt.Errorf("service: fault_config.kill_board_at requires boards > 1: %w", errs.ErrInvalidConfig)
		}
		if s.FaultConfig.KillBoard >= s.Boards {
			return fmt.Errorf("service: fault_config.kill_board %d outside array of %d boards: %w",
				s.FaultConfig.KillBoard, s.Boards, errs.ErrInvalidConfig)
		}
	}
	return nil
}

// normalize fills defaults and validates; registry lookup happens at
// submission so unknown graphs fail the request, not the worker.
func (s *JobSpec) normalize(reg *Registry) error {
	if err := s.validate(); err != nil {
		return err
	}
	if s.Tenant == "" {
		s.Tenant = DefaultTenant
	}
	if s.MemBytes == 0 {
		s.MemBytes = harness.GWMem8GB
	}
	g, ds, err := reg.Get(s.Graph)
	if err != nil {
		return err
	}
	if s.NumWalks == 0 {
		s.NumWalks = ds.DefaultWalks
	}
	if s.Kind == KindDeepWalk {
		if s.WalksPerVertex == 0 {
			s.WalksPerVertex = 1
		}
		if s.WalkLength == 0 {
			s.WalkLength = harness.WalkLength
		}
	}
	if len(s.Mutations) > 0 {
		// Deep validation needs the graph, so it lives here rather than in
		// validate: endpoint ranges, weight rules, delete-must-exist, and —
		// for FlashWalker jobs — the partitioning's dense-vertex degree cap
		// that keeps the frozen block skeleton valid.
		switch s.Kind {
		case KindDeepWalk:
			// Host-side corpus generation has no partition skeleton to
			// protect; only the graph-level invariants apply.
			if err := s.Mutations.Validate(g, 0); err != nil {
				return fmt.Errorf("service: mutations: %v: %w", err, errs.ErrInvalidConfig)
			}
		default:
			pc := harness.FlashWalkerConfig(ds, core.AllOptions(), s.NumWalks, s.Seed).PartCfg
			if err := core.ValidateMutations(g, pc, s.Mutations); err != nil {
				return err
			}
		}
	}
	return nil
}

// Progress is a live job snapshot, engine-agnostic.
type Progress struct {
	SimTimeNS     int64  `json:"sim_time_ns"`
	Events        uint64 `json:"events"`
	Started       int    `json:"started"`
	Completed     int    `json:"completed"`
	DeadEnded     int    `json:"dead_ended"`
	Hops          uint64 `json:"hops"`
	WalksFinished int    `json:"walks_finished"`
}

// JobResult is the engine-agnostic outcome summary.
type JobResult struct {
	SimTimeNS       int64   `json:"sim_time_ns"`
	Started         int     `json:"started"`
	Completed       int     `json:"completed"`
	DeadEnded       int     `json:"dead_ended"`
	Hops            uint64  `json:"hops"`
	HopRate         float64 `json:"hops_per_sim_sec"`
	FlashReadBytes  int64   `json:"flash_read_bytes"`
	FlashWriteBytes int64   `json:"flash_write_bytes"`
	// Partial marks a result snapshotted at a cancellation boundary
	// rather than at completion.
	Partial bool `json:"partial"`
	// Mapping-table query-cache outcome (FlashWalker jobs).
	QueryCacheHits   uint64 `json:"query_cache_hits,omitempty"`
	QueryCacheMisses uint64 `json:"query_cache_misses,omitempty"`
	// MutationsApplied counts the mutation-stream entries applied before
	// the run ended (FlashWalker jobs; a stream entry stamped after the
	// simulation's end time is never applied).
	MutationsApplied uint64 `json:"mutations_applied,omitempty"`
	// DeepWalk corpus outcome (kind "deepwalk" only). CorpusSHA256 is the
	// seal over the corpus text; CorpusCached marks a result served from
	// the corpus cache without running the engine.
	CorpusWalks    int     `json:"corpus_walks,omitempty"`
	CorpusTokens   int     `json:"corpus_tokens,omitempty"`
	CorpusMeanHops float64 `json:"corpus_mean_hops,omitempty"`
	CorpusSHA256   string  `json:"corpus_sha256,omitempty"`
	CorpusCached   bool    `json:"corpus_cached,omitempty"`
	// Fault-injection outcome; all zero when the job ran without a
	// FaultConfig.
	FaultReadErrors  uint64 `json:"fault_read_errors,omitempty"`
	FaultRetries     uint64 `json:"fault_retries,omitempty"`
	FaultStalls      uint64 `json:"fault_plane_busy_stalls,omitempty"`
	DegradedChips    uint64 `json:"degraded_chips,omitempty"`
	FaultReroutes    uint64 `json:"fault_reroutes,omitempty"`
	FailoverBlocks   uint64 `json:"failover_blocks,omitempty"`
	RetriesExhausted uint64 `json:"fault_retries_exhausted,omitempty"`
}

// Job is one tracked run. Fields under mu change as the job advances; the
// Status method returns consistent copies for the API.
type Job struct {
	ID        string  `json:"id"`
	Spec      JobSpec `json:"spec"`
	Submitted time.Time

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	// stream is the completed-walk stream (nil for kinds that don't
	// produce one). Set before the job is visible; immutable afterwards.
	stream *jobStream

	progress atomic.Pointer[Progress]

	// persistLogged latches the job's first durability-write failure so
	// degradation is logged once per job, not per checkpoint.
	persistLogged atomic.Bool

	mu       sync.Mutex
	state    string
	err      error
	result   *JobResult
	started  time.Time
	finished time.Time
	// finishing guards finish() against concurrent callers (worker
	// completion vs. queued-job cancel vs. Close drain) during the window
	// where on-disk state is settled but the terminal state is not yet
	// visible.
	finishing bool
	// corpus is the sealed DeepWalk corpus this job produced or was served
	// (kind "deepwalk" only), exposed via /v1/jobs/{id}/corpus.
	corpus *walk.CachedCorpus
}

// Corpus returns the job's sealed DeepWalk corpus, nil until a "deepwalk"
// job finishes successfully.
func (j *Job) Corpus() *walk.CachedCorpus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.corpus
}

// JobStatus is the API view of a job.
type JobStatus struct {
	ID          string     `json:"id"`
	Spec        JobSpec    `json:"spec"`
	State       string     `json:"state"`
	Error       string     `json:"error,omitempty"`
	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	Progress    *Progress  `json:"progress,omitempty"`
	Result      *JobResult `json:"result,omitempty"`
}

// Status snapshots the job for the API.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	st := JobStatus{
		ID: j.ID, Spec: j.Spec, State: j.state, SubmittedAt: j.Submitted,
		Result: j.result,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	j.mu.Unlock()
	st.Progress = j.progress.Load()
	return st
}

// Err returns the job's final error (nil while queued/running or on
// success). A canceled job's error wraps errs.ErrCanceled.
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Config parameterizes a Manager.
type Config struct {
	// QueueDepth bounds the number of queued-but-not-running jobs;
	// submissions beyond it are rejected with ErrQueueFull. 0 means 16.
	QueueDepth int
	// Workers is the number of jobs run concurrently. 0 means 2.
	Workers int
	// StateDir, when non-empty, makes jobs durable: specs are journaled at
	// submission, running engines snapshot at their checkpoint cadence, and
	// a restarted manager recovers the journal — finished jobs as history,
	// unfinished ones re-enqueued and resumed. Empty keeps the manager
	// fully in-memory. StateDir is shorthand for Store = blob.NewFS(dir);
	// the on-disk layout is byte-compatible with earlier versions.
	StateDir string
	// Store routes ALL durable state — job journals, engine snapshots, and
	// stream spools — through a pluggable blob store. Takes precedence over
	// StateDir when both are set. Nil with an empty StateDir keeps the
	// manager fully in-memory.
	Store blob.Store
	// SnapshotDeltas is the checkpoint chain length for single-board
	// FlashWalker jobs: after each full snapshot container, up to this
	// many delta containers (each carrying only the walk stores dirtied
	// since the previous cut) before the next full cut. 0 uses the default
	// (4); negative disables deltas — every cut writes a full snapshot.
	SnapshotDeltas int
	// RetainJobs keeps at most this many terminal jobs' durable state
	// (journal + spool); older terminal jobs are pruned at startup and on
	// finish, oldest-first. 0 retains everything. Non-terminal jobs are
	// never pruned.
	RetainJobs int
	// RetainAge prunes terminal jobs that finished longer than this ago.
	// 0 disables the age bound.
	RetainAge time.Duration
	// MaxBodyBytes caps request bodies on the mutating v1 endpoints
	// (POST /v1/jobs, POST /v1/graphs); oversized bodies are rejected with
	// the stable "body_too_large" error code. 0 uses the default (4 MiB).
	MaxBodyBytes int64
	// CorpusCacheEntries bounds the precomputed walk-corpus cache serving
	// repeat "deepwalk" jobs. 0 uses the default (16); negative disables
	// caching entirely.
	CorpusCacheEntries int
	// TenantMaxQueued caps how many jobs one tenant may have queued;
	// submissions beyond it are rejected with ErrTenantQuota. 0 disables
	// the quota.
	TenantMaxQueued int
	// TenantMaxRunning caps how many of one tenant's jobs run
	// concurrently; capped tenants' queued jobs wait (they are skipped by
	// the fair-share dequeue, not dropped). 0 disables the cap.
	TenantMaxRunning int
	// TenantRatePerSec is the per-tenant submission token-bucket refill
	// rate; TenantRateBurst is its capacity (0 means 1 when a rate is
	// set). A zero rate disables rate limiting.
	TenantRatePerSec float64
	TenantRateBurst  int
	// StreamRingWalks bounds each job's in-memory completed-walk ring for
	// /v1/jobs/{id}/stream. 0 uses the default (4096).
	StreamRingWalks int
}

// defaultCorpusCacheEntries is the corpus-cache capacity when the config
// leaves it unset.
const defaultCorpusCacheEntries = 16

// defaultMaxBodyBytes caps v1 request bodies when Config.MaxBodyBytes is
// zero. Job specs with the largest allowed mutation stream still fit.
const defaultMaxBodyBytes = 4 << 20

// Manager owns the job queue and worker pool.
type Manager struct {
	reg     *Registry
	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup
	// store is the durable-state backend; nil keeps the manager fully
	// in-memory.
	store          blob.Store
	snapshotDeltas int
	retainJobs     int
	retainAge      time.Duration
	maxBodyBytes   int64

	// Admission settings (immutable after NewManager).
	tenantMaxQueued  int
	tenantMaxRunning int
	tenantRate       float64
	tenantBurst      float64
	streamRing       int

	mu    sync.Mutex
	cond  *sync.Cond // signals workers when fq or runningBy changes
	fq    *fairQueue
	// runningBy counts each tenant's currently running jobs (for
	// TenantMaxRunning); buckets hold each tenant's submission tokens.
	runningBy map[string]int
	buckets   map[string]*tokenBucket
	closed    bool
	jobs      map[string]*Job
	order     []string
	seq       uint64

	// corpora is the precomputed walk-corpus cache (nil when disabled).
	corpora *walk.CorpusCache

	metrics managerMetrics
}

// NewManager starts cfg.Workers worker goroutines draining the queue.
// Close releases them. With cfg.StateDir set, the state directory is
// created if needed and any journaled jobs from a previous process are
// recovered before the workers start: terminal jobs reappear as history,
// queued and running jobs are re-enqueued (ahead of new submissions, in
// their original order).
func NewManager(reg *Registry, cfg Config) (*Manager, error) {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.TenantRateBurst <= 0 {
		cfg.TenantRateBurst = 1
	}
	store := cfg.Store
	if store == nil && cfg.StateDir != "" {
		fsStore, err := blob.NewFS(cfg.StateDir)
		if err != nil {
			return nil, fmt.Errorf("service: state dir: %w", err)
		}
		store = fsStore
	}
	deltas := cfg.SnapshotDeltas
	switch {
	case deltas == 0:
		deltas = defaultSnapshotDeltas
	case deltas < 0:
		deltas = 0
	}
	maxBody := cfg.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = defaultMaxBodyBytes
	}
	ctx, stop := context.WithCancel(context.Background())
	m := &Manager{
		reg:            reg,
		baseCtx:        ctx,
		stop:           stop,
		jobs:           map[string]*Job{},
		store:          store,
		snapshotDeltas: deltas,
		retainJobs:     cfg.RetainJobs,
		retainAge:      cfg.RetainAge,
		maxBodyBytes:   maxBody,

		tenantMaxQueued:  cfg.TenantMaxQueued,
		tenantMaxRunning: cfg.TenantMaxRunning,
		tenantRate:       cfg.TenantRatePerSec,
		tenantBurst:      float64(cfg.TenantRateBurst),
		streamRing:       cfg.StreamRingWalks,
		runningBy:        map[string]int{},
		buckets:          map[string]*tokenBucket{},
	}
	m.cond = sync.NewCond(&m.mu)
	if cfg.CorpusCacheEntries >= 0 {
		n := cfg.CorpusCacheEntries
		if n == 0 {
			n = defaultCorpusCacheEntries
		}
		m.corpora = walk.NewCorpusCache(n)
	}
	var pending []*Job
	if m.store != nil {
		var err error
		if pending, err = m.recoverJobs(); err != nil {
			stop()
			return nil, fmt.Errorf("service: recover jobs: %w", err)
		}
	}
	// Recovered jobs must all fit back on the queue even when there are
	// more of them than the configured depth allows.
	depth := cfg.QueueDepth
	if len(pending) > depth {
		depth = len(pending)
	}
	m.fq = newFairQueue(depth)
	for _, j := range pending {
		m.fq.push(tenantOf(&j.Spec), j)
	}
	// Recovered jobs get their streams back before any worker can run
	// them: the spool's contiguous record count is where publishing
	// resumes, and a terminal job's stream replays entirely from disk.
	for _, j := range m.jobs {
		m.newStreamFor(j)
		if j.stream != nil {
			j.mu.Lock()
			state, errMsg := j.state, ""
			if j.err != nil {
				errMsg = j.err.Error()
			}
			j.mu.Unlock()
			switch state {
			case StateDone, StateCanceled, StateFailed:
				j.stream.finish(state, errMsg)
			}
		}
	}
	// Retention runs after recovery so the startup prune sees the full
	// terminal set, and before the workers so nothing races the sweep.
	m.pruneTerminal()
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m, nil
}

// streamable reports whether a job kind produces a completed-walk stream.
func streamable(kind string) bool {
	return kind == KindFlashWalker || kind == KindDeepWalk
}

// newStreamFor attaches j's walk stream, spooled to disk when the manager
// is durable. A spool that fails to open degrades the stream to in-memory
// only — streaming must never block a job from running.
func (m *Manager) newStreamFor(j *Job) {
	if !streamable(j.Spec.Kind) || j.stream != nil {
		return
	}
	var sp *spoolFile
	if m.store != nil {
		onErr := func(err error) { m.persistError(j, persistKindSpool, err) }
		if s, err := openSpool(m.store, streamKey(j.ID), onErr); err == nil {
			sp = s
		} else {
			m.persistError(j, persistKindSpool, err)
		}
	}
	j.stream = newJobStream(m.streamRing, sp)
}

// Close stops the workers, then drains the queue: every job still queued
// is finished as canceled so no job is left in a non-terminal state with
// its Done channel never closing. Running jobs are canceled and reach
// their terminal state before Close returns. With a state directory, the
// journal records survive — canceled-by-shutdown jobs are NOT re-run on
// restart (they are terminal); only jobs that never reached Close (a
// crash) come back.
func (m *Manager) Close() {
	m.stop()
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
	m.wg.Wait()
	m.mu.Lock()
	left := m.fq.drain()
	m.mu.Unlock()
	for _, j := range left {
		m.finish(j, nil, &errs.Canceled{
			Op: "service", Finished: 0, Total: j.Spec.NumWalks, Cause: m.baseCtx.Err(),
		})
	}
}

// Registry exposes the graph registry backing this manager.
func (m *Manager) Registry() *Registry { return m.reg }

// CorpusEngineRuns reports how many "deepwalk" jobs actually invoked the
// walk engine (corpus-cache misses). A resubmitted identical job served
// from the cache leaves this counter unchanged — the property the
// corpus-cache tests pin.
func (m *Manager) CorpusEngineRuns() int64 { return m.metrics.corpusEngineRuns.Load() }

// Submit validates spec and runs it through admission control: the
// tenant's submission rate limit (ErrRateLimited), the tenant's
// queued-job quota (ErrTenantQuota), then the bounded global queue
// (ErrQueueFull). Every rejection is immediate — backpressure, never
// blocking — and counted by reason in
// flashwalker_admission_rejected_total.
func (m *Manager) Submit(spec JobSpec) (*Job, error) {
	if err := spec.normalize(m.reg); err != nil {
		m.metrics.rejected.Add(1)
		if errors.Is(err, errs.ErrUnknownDataset) {
			m.metrics.rejUnknownGraph.Add(1)
		} else {
			m.metrics.rejInvalid.Add(1)
		}
		return nil, err
	}
	tenant := tenantOf(&spec)
	ctx, cancel := context.WithCancel(m.baseCtx)
	j := &Job{
		Spec:      spec,
		Submitted: time.Now(),
		ctx:       ctx,
		cancel:    cancel,
		done:      make(chan struct{}),
		state:     StateQueued,
	}

	reject := func(reason *atomic.Int64, err error) (*Job, error) {
		m.mu.Unlock()
		cancel()
		m.metrics.rejected.Add(1)
		reason.Add(1)
		return nil, err
	}
	m.mu.Lock()
	if m.closed || m.fq.len() >= m.fq.depth {
		return reject(&m.metrics.rejQueueFull,
			fmt.Errorf("service: %w (depth %d)", ErrQueueFull, m.fq.depth))
	}
	if !m.allowSubmit(tenant, time.Now()) {
		return reject(&m.metrics.rejRateLimited,
			fmt.Errorf("service: tenant %q: %w", tenant, ErrRateLimited))
	}
	if m.tenantMaxQueued > 0 && m.fq.queued(tenant) >= m.tenantMaxQueued {
		return reject(&m.metrics.rejTenantQuota,
			fmt.Errorf("service: tenant %q already has %d jobs queued: %w",
				tenant, m.tenantMaxQueued, ErrTenantQuota))
	}
	m.seq++
	j.ID = fmt.Sprintf("job-%d", m.seq)
	// The stream must exist before a worker can claim the job; the push
	// is what makes it claimable (capacity was checked above).
	m.newStreamFor(j)
	m.fq.push(tenant, j)
	m.jobs[j.ID] = j
	m.order = append(m.order, j.ID)
	m.cond.Signal()
	m.mu.Unlock()

	m.journal(j)
	m.metrics.submitted.Add(1)
	return j, nil
}

// Get returns a job by ID.
func (m *Manager) Get(id string) (*Job, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("service: %w: %q", ErrUnknownJob, id)
	}
	return j, nil
}

// List returns every job's status, oldest first.
func (m *Manager) List() []JobStatus {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	m.mu.Unlock()
	out := make([]JobStatus, 0, len(ids))
	for _, id := range ids {
		if j, err := m.Get(id); err == nil {
			out = append(out, j.Status())
		}
	}
	return out
}

// ListFilter selects and pages the job listing.
type ListFilter struct {
	// Status and Tenant, when non-empty, keep only matching jobs.
	Status string
	Tenant string
	// Cursor is the ID of the last job on the previous page (the
	// next_cursor a previous call returned); empty starts from the oldest
	// job.
	Cursor string
	// Limit caps the page size; 0 means 100, the hard maximum is 1000.
	Limit int
}

// ListPage returns one page of job statuses in stable submission order
// (oldest first). next is non-empty exactly when at least one further
// matching job exists past the page; pass it back as the cursor to
// continue.
func (m *Manager) ListPage(f ListFilter) (page []JobStatus, next string) {
	const defaultPageLimit, maxPageLimit = 100, 1000
	limit := f.Limit
	if limit <= 0 {
		limit = defaultPageLimit
	}
	if limit > maxPageLimit {
		limit = maxPageLimit
	}
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	m.mu.Unlock()
	start := 0
	if f.Cursor != "" {
		// Position strictly after the cursor. IDs are "job-N" with N
		// increasing in submission order, so the comparison tolerates a
		// cursor that no longer names a live job.
		cs, _ := jobSeq(f.Cursor)
		for i, id := range ids {
			if s, ok := jobSeq(id); ok && s <= cs {
				start = i + 1
			}
		}
	}
	page = []JobStatus{}
	for _, id := range ids[start:] {
		j, err := m.Get(id)
		if err != nil {
			continue
		}
		st := j.Status()
		if f.Status != "" && st.State != f.Status {
			continue
		}
		if f.Tenant != "" && tenantOf(&st.Spec) != f.Tenant {
			continue
		}
		if len(page) == limit {
			return page, page[len(page)-1].ID
		}
		page = append(page, st)
	}
	return page, ""
}

// Cancel requests cancellation. A still-queued job moves straight to the
// canceled state — its Done channel closes immediately, without waiting
// for a worker to pull it off the queue. Running jobs halt at the
// engine's next checkpoint and keep their partial result. Canceling a
// finished job is a no-op.
func (m *Manager) Cancel(id string) error {
	j, err := m.Get(id)
	if err != nil {
		return err
	}
	j.cancel()
	j.mu.Lock()
	queued := j.state == StateQueued
	j.mu.Unlock()
	if queued {
		// The job may concurrently be claimed by a worker; finish is
		// idempotent and run refuses jobs that left the queued state, so
		// exactly one terminal transition wins.
		m.finish(j, nil, &errs.Canceled{
			Op: "service", Finished: 0, Total: j.Spec.NumWalks, Cause: context.Canceled,
		})
	}
	return nil
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		j := m.dequeue()
		if j == nil {
			return
		}
		m.run(j)
		m.mu.Lock()
		t := tenantOf(&j.Spec)
		if m.runningBy[t]--; m.runningBy[t] <= 0 {
			delete(m.runningBy, t)
		}
		// The freed slot may make a capped tenant's jobs eligible again.
		m.cond.Broadcast()
		m.mu.Unlock()
	}
}

// dequeue blocks until a job is eligible (fair-share order, running caps
// respected) or the manager closes (nil). Claiming counts against the
// tenant's running cap.
func (m *Manager) dequeue() *Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if m.closed {
			return nil
		}
		if j := m.fq.pop(m.canRunLocked); j != nil {
			m.runningBy[tenantOf(&j.Spec)]++
			return j
		}
		m.cond.Wait()
	}
}

// run executes one job end to end.
func (m *Manager) run(j *Job) {
	ctx := j.ctx
	if ctx.Err() != nil { // canceled while queued
		m.finish(j, nil, &errs.Canceled{
			Op: "service", Finished: 0, Total: j.Spec.NumWalks, Cause: ctx.Err(),
		})
		return
	}
	j.mu.Lock()
	// Lost the race with a queued-job Cancel: either the terminal state
	// already landed, or its finish() is mid-settlement (finishing set).
	if j.state != StateQueued || j.finishing {
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	j.mu.Unlock()
	m.journal(j)
	m.metrics.running.Add(1)
	defer m.metrics.running.Add(-1)

	g, ds, err := m.reg.Get(j.Spec.Graph)
	if err != nil {
		m.finish(j, nil, err)
		return
	}

	var res *JobResult
	switch j.Spec.Kind {
	case KindGraphWalker:
		res, err = m.runGraphWalker(ctx, j, g, ds)
	case KindDeepWalk:
		res, err = m.runDeepWalk(ctx, j, g)
	default:
		res, err = m.runFlashWalker(ctx, j, g, ds)
	}
	m.finish(j, res, err)
}

// runDeepWalk serves a corpus job: from the sealed corpus cache when an
// identical job (same graph, spec, seed, start set) ran before, otherwise
// by generating the corpus — the only path that touches the walk engine,
// which the corpusEngineRuns counter records so tests can prove a cache hit
// skipped it.
func (m *Manager) runDeepWalk(ctx context.Context, j *Job, g *graph.Graph) (*JobResult, error) {
	key := walk.CorpusKey{
		Graph:          j.Spec.Graph,
		Spec:           walk.Spec{Kind: walk.Unbiased, Length: j.Spec.WalkLength},
		Seed:           j.Spec.Seed,
		WalksPerVertex: j.Spec.WalksPerVertex,
		MutationsHash:  j.Spec.Mutations.Hash(),
	}
	if m.corpora != nil {
		if c, ok, _ := m.corpora.Get(key); ok {
			m.streamCorpus(j, c)
			return m.deepWalkResult(j, c, true), nil
		}
	}

	m.metrics.corpusEngineRuns.Add(1)
	if len(j.Spec.Mutations) > 0 {
		// Corpus generation runs on the host with no simulated clock, so
		// the whole stream applies up front — on a private clone; the
		// registry's graph is shared and immutable.
		mg := g.Clone()
		for _, mut := range j.Spec.Mutations {
			if err := mg.ApplyMutation(mut); err != nil {
				return nil, fmt.Errorf("service: mutations: %v: %w", err, errs.ErrInvalidConfig)
			}
		}
		g = mg
	}
	starts := walk.AllStarts(g)
	ws := walk.NewWalks(key.Spec, starts, len(starts)*j.Spec.WalksPerVertex)
	corpus := make([][]graph.VertexID, 0, len(ws))
	var batch []WalkRecord
	_, err := walk.RunContext(ctx, g, key.Spec, ws, j.Spec.Seed,
		func(i int, path []graph.VertexID) {
			cp := append([]graph.VertexID(nil), path...)
			corpus = append(corpus, cp)
			if j.stream != nil {
				batch = append(batch, corpusWalkRecord(uint64(i), cp, key.Spec.Length))
				if len(batch) >= 128 {
					j.stream.publish(batch)
					batch = batch[:0]
				}
			}
		})
	if err != nil {
		return nil, err
	}
	if j.stream != nil && len(batch) > 0 {
		j.stream.publish(batch)
	}
	c, err := walk.Seal(key, corpus)
	if err != nil {
		return nil, err
	}
	if m.corpora != nil {
		m.corpora.Put(c)
	}
	return m.deepWalkResult(j, c, false), nil
}

// corpusWalkRecord shapes one DeepWalk path as a wire record (paths are
// included; the simulated-time field stays zero — corpus generation runs
// on the host, not the simulator).
func corpusWalkRecord(seq uint64, path []graph.VertexID, length uint32) WalkRecord {
	hops := uint32(len(path) - 1)
	return WalkRecord{
		Seq: seq, Src: path[0], End: path[len(path)-1],
		Hops: hops, DeadEnd: hops < length, Path: path,
	}
}

// streamCorpus replays a cache-served corpus into j's stream so a cache
// hit and an engine run produce the same record sequence.
func (m *Manager) streamCorpus(j *Job, c *walk.CachedCorpus) {
	if j.stream == nil {
		return
	}
	paths, err := walk.ReadCorpus(bytes.NewReader(c.Data))
	if err != nil {
		return
	}
	recs := make([]WalkRecord, len(paths))
	for i, p := range paths {
		recs[i] = corpusWalkRecord(uint64(i), p, j.Spec.WalkLength)
	}
	j.stream.publish(recs)
}

// coreWalkRecords converts an engine export batch to wire records (the
// engine reuses the batch slice, so the values are copied out).
func coreWalkRecords(recs []core.WalkDone) []WalkRecord {
	out := make([]WalkRecord, len(recs))
	for i, r := range recs {
		out[i] = WalkRecord{
			Seq: r.Seq, Src: r.Src, End: r.End, Hops: r.Hops,
			DeadEnd: r.DeadEnd, SimTimeNS: int64(r.At),
		}
	}
	return out
}

// deepWalkResult attaches the sealed corpus to the job and shapes the API
// result.
func (m *Manager) deepWalkResult(j *Job, c *walk.CachedCorpus, cached bool) *JobResult {
	j.mu.Lock()
	j.corpus = c
	j.mu.Unlock()
	return &JobResult{
		Started:        c.Walks,
		Completed:      c.Walks,
		Hops:           uint64(c.Tokens - c.Walks),
		CorpusWalks:    c.Walks,
		CorpusTokens:   c.Tokens,
		CorpusMeanHops: c.MeanHops,
		CorpusSHA256:   fmt.Sprintf("%x", c.SHA),
		CorpusCached:   cached,
	}
}

func (m *Manager) runFlashWalker(ctx context.Context, j *Job, g *graph.Graph, ds harness.Dataset) (*JobResult, error) {
	rc := harness.FlashWalkerConfig(ds, core.AllOptions(), j.Spec.NumWalks, j.Spec.Seed)
	rc.CheckpointEvery = j.Spec.CheckpointEvery
	// The mutation stream rides in the run config; snapshots carry the
	// stream plus an applied-prefix cursor, so the recovery paths below
	// resume mid-stream without re-threading it here.
	rc.Mutations = j.Spec.Mutations
	if j.Spec.FaultConfig != nil {
		rc.Cfg.Faults = *j.Spec.FaultConfig
	}
	rc.Cfg.Boards = j.Spec.Boards
	if j.Spec.FabricLatencyNS > 0 {
		rc.Cfg.FabricLatency = sim.Time(j.Spec.FabricLatencyNS)
	}
	if j.Spec.FabricMBps > 0 {
		rc.Cfg.FabricBytesPerSec = j.Spec.FabricMBps * 1_000_000
	}
	rc.OnProgress = func(p core.Progress) {
		j.progress.Store(&Progress{
			SimTimeNS: int64(p.Now), Events: p.Events,
			Started: p.Started, Completed: p.Completed, DeadEnded: p.DeadEnded,
			Hops: p.Hops, WalksFinished: p.WalksFinished(),
		})
	}
	if st := j.stream; st != nil {
		// The export callback only appends to the stream's buffers — it
		// never blocks on consumers, so attaching it cannot perturb the
		// simulated timeline.
		rc.OnWalks = func(recs []core.WalkDone) { st.publish(coreWalkRecords(recs)) }
	}
	if j.Spec.Boards > 1 {
		return m.runFlashWalkerArray(ctx, j, g, rc)
	}
	if m.store != nil {
		// Snapshots piggyback on the checkpoint observer every
		// snapshotCheckpointRatio checkpoints; the chain writer throttles
		// serialization and alternates full and delta containers.
		every := j.Spec.CheckpointEvery
		if every == 0 {
			every = core.DefaultCheckpointEvery
		}
		w := &coreSnapWriter{m: m, j: j, maxDeltas: m.snapshotDeltas}
		// A recovered job picks up from its last consistent chain image; a
		// fresh job (or one whose snapshot is unreadable) runs from the
		// start and begins writing snapshots at the checkpoint cadence.
		if snap, sha, chain, ok := m.loadCoreSnap(j.ID); ok {
			// The writer continues the stored chain exactly where the image
			// came from, so the next cut extends (or overwrites the invalid
			// suffix of) what is already in the store.
			w.base, w.baseSHA, w.deltas = snap, sha, chain
			r, err := core.ResumeContext(ctx, g, snap, core.ResumeOptions{
				OnProgress: rc.OnProgress, OnSnapshot: w.write, OnWalks: rc.OnWalks,
				SnapshotEvery: every * snapshotCheckpointRatio, CheckpointEvery: j.Spec.CheckpointEvery,
			})
			return coreJobResult(r, err)
		}
		rc.OnSnapshot = w.write
		rc.SnapshotEvery = every * snapshotCheckpointRatio
	}
	e, err := core.NewEngine(g, rc)
	if err != nil {
		return nil, err
	}
	r, err := e.RunContext(ctx)
	return coreJobResult(r, err)
}

// runFlashWalkerArray is the multi-board leg of runFlashWalker: the same
// durability contract (snapshot at the checkpoint cadence, resume a
// recovered job from its last image), with the array's fleet-wide snapshot
// under its own kind tag.
func (m *Manager) runFlashWalkerArray(ctx context.Context, j *Job, g *graph.Graph, rc core.RunConfig) (*JobResult, error) {
	if m.store != nil {
		every := j.Spec.CheckpointEvery
		if every == 0 {
			every = core.DefaultCheckpointEvery
		}
		// Array jobs keep full-image snapshots: the fleet-wide image spans
		// every board's stores, so the single-board delta chain does not
		// apply (a scope bound documented in DESIGN.md §15).
		var lastWrite time.Time
		onSnap := func(s *core.ArraySnapshot) {
			if time.Since(lastWrite) < snapshotMinInterval {
				return
			}
			lastWrite = time.Now()
			m.putSnap(j, snapshotKey(j.ID), snapKindArray, s)
		}
		var snap core.ArraySnapshot
		if _, err := m.getSnap(snapshotKey(j.ID), snapKindArray, &snap); err == nil {
			r, err := core.ResumeArrayContext(ctx, g, &snap, core.ArrayResumeOptions{
				OnProgress: rc.OnProgress, OnSnapshot: onSnap, OnWalks: rc.OnWalks,
				SnapshotEvery: every * snapshotCheckpointRatio, CheckpointEvery: j.Spec.CheckpointEvery,
			})
			return coreJobResult(r, err)
		}
		a, err := core.NewArray(g, rc)
		if err != nil {
			return nil, err
		}
		a.SetSnapshotHook(onSnap, every*snapshotCheckpointRatio)
		r, err := a.RunContext(ctx)
		return coreJobResult(r, err)
	}
	a, err := core.NewArray(g, rc)
	if err != nil {
		return nil, err
	}
	r, err := a.RunContext(ctx)
	return coreJobResult(r, err)
}

// coreJobResult converts a core result (possibly partial) to the API shape.
func coreJobResult(r *core.Result, err error) (*JobResult, error) {
	if r == nil {
		return nil, err
	}
	return &JobResult{
		SimTimeNS: int64(r.Time), Started: r.Started, Completed: r.Completed,
		DeadEnded: r.DeadEnded, Hops: r.Hops, HopRate: r.HopRate(),
		FlashReadBytes: r.Flash.ReadBytes, FlashWriteBytes: r.Flash.WriteBytes,
		Partial:          err != nil,
		QueryCacheHits:   r.QueryCacheHits,
		QueryCacheMisses: r.QueryCacheMisses,
		MutationsApplied: r.MutationsApplied,
		FaultReadErrors:  r.Faults.ReadErrors,
		FaultRetries:     r.Faults.Retries,
		FaultStalls:      r.Faults.PlaneBusyStalls,
		DegradedChips:    r.Faults.DegradedChips,
		FaultReroutes:    r.FaultReroutes,
		FailoverBlocks:   r.FailoverBlocks,
		RetriesExhausted: r.Faults.RetriesExhausted,
	}, err
}

func (m *Manager) runGraphWalker(ctx context.Context, j *Job, g *graph.Graph, ds harness.Dataset) (*JobResult, error) {
	cfg := harness.GraphWalkerConfig(ds, j.Spec.MemBytes, j.Spec.Seed)
	cfg.CheckpointEvery = j.Spec.CheckpointEvery
	cfg.OnProgress = func(p baseline.Progress) {
		j.progress.Store(&Progress{
			SimTimeNS: int64(p.Now), Events: p.Events,
			Started: p.Started, Completed: p.Completed, DeadEnded: p.DeadEnded,
			Hops: p.Hops, WalksFinished: p.WalksFinished(),
		})
	}
	spec := walk.Spec{Kind: walk.Unbiased, Length: harness.WalkLength}
	if m.store != nil {
		// The baseline's snapshot is a replay record; recovery re-runs the
		// job from event zero, which is result-identical.
		var snap baseline.Snapshot
		if _, err := m.getSnap(snapshotKey(j.ID), snapKindBaseline, &snap); err == nil {
			r, err := baseline.ResumeContext(ctx, g, &snap, cfg.OnProgress)
			return baselineJobResult(r, err)
		}
	}
	e, err := baseline.New(g, cfg, spec, j.Spec.NumWalks, j.Spec.Seed+100)
	if err != nil {
		return nil, err
	}
	if m.store != nil {
		m.putSnap(j, snapshotKey(j.ID), snapKindBaseline, e.Snapshot())
	}
	r, err := e.RunContext(ctx)
	return baselineJobResult(r, err)
}

// baselineJobResult converts a baseline result to the API shape.
func baselineJobResult(r *baseline.Result, err error) (*JobResult, error) {
	if r == nil {
		return nil, err
	}
	return &JobResult{
		SimTimeNS: int64(r.Time), Started: r.Started, Completed: r.Completed,
		DeadEnded: r.DeadEnded, Hops: r.Hops,
		FlashReadBytes: r.Flash.ReadBytes, FlashWriteBytes: r.Flash.WriteBytes,
		Partial: err != nil,
	}, err
}

// finish moves the job to its terminal state and updates the aggregate
// counters. It is idempotent: a job can race toward two terminal
// transitions (queued-job Cancel vs. the worker claiming it) and only the
// first wins.
func (m *Manager) finish(j *Job, res *JobResult, err error) {
	j.mu.Lock()
	switch j.state {
	case StateDone, StateCanceled, StateFailed:
		j.mu.Unlock()
		return
	}
	if j.finishing {
		j.mu.Unlock()
		return
	}
	j.finishing = true
	j.mu.Unlock()

	var state string
	switch {
	case err == nil:
		state = StateDone
	case errors.Is(err, errs.ErrCanceled):
		state = StateCanceled
	default:
		state = StateFailed
	}
	// Settle everything observable on disk — stream trailer, snapshot
	// removal — before the terminal state becomes visible, so a poller
	// (or a waiter that wakes on Done) that sees a terminal job never
	// finds leftover in-flight state.
	if j.stream != nil {
		msg := ""
		if err != nil {
			msg = err.Error()
		}
		j.stream.finish(state, msg)
	}
	m.dropSnapshot(j)

	j.mu.Lock()
	j.result = res
	j.err = err
	j.finished = time.Now()
	j.state = state
	j.mu.Unlock()
	m.journal(j)
	close(j.done)

	switch state {
	case StateDone:
		m.metrics.completed.Add(1)
	case StateCanceled:
		m.metrics.canceled.Add(1)
	default:
		m.metrics.failed.Add(1)
	}
	if res != nil {
		m.metrics.walksFinished.Add(int64(res.Completed + res.DeadEnded))
		m.metrics.hops.Add(int64(res.Hops))
		m.metrics.queryCacheHits.Add(int64(res.QueryCacheHits))
		m.metrics.queryCacheMisses.Add(int64(res.QueryCacheMisses))
		m.metrics.faultReadErrors.Add(int64(res.FaultReadErrors))
		m.metrics.faultRetries.Add(int64(res.FaultRetries))
		m.metrics.faultStalls.Add(int64(res.FaultStalls))
		m.metrics.chipsDegraded.Add(int64(res.DegradedChips))
		m.metrics.faultReroutes.Add(int64(res.FaultReroutes))
	}
	// This job may have pushed the terminal set past the retention bound.
	m.pruneTerminal()
}
