package service

import (
	"errors"
	"testing"
	"time"

	"flashwalker/internal/errs"
)

func newTestManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	m, err := NewManager(NewRegistry(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func waitTerminal(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(2 * time.Minute):
		t.Fatalf("job %s did not finish (state %s)", j.ID, j.Status().State)
	}
}

func TestManagerRunsJob(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	defer m.Close()
	j, err := m.Submit(JobSpec{Graph: "TT-S", NumWalks: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j)
	st := j.Status()
	if st.State != StateDone {
		t.Fatalf("state %s, error %q", st.State, st.Error)
	}
	if st.Result == nil || st.Result.Completed+st.Result.DeadEnded != 500 {
		t.Fatalf("bad result: %+v", st.Result)
	}
	if st.Result.Partial {
		t.Error("completed job marked partial")
	}
	if st.Progress == nil || st.Progress.WalksFinished != 500 {
		t.Errorf("final progress snapshot missing or stale: %+v", st.Progress)
	}
}

func TestManagerBaselineJob(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	defer m.Close()
	j, err := m.Submit(JobSpec{Kind: KindGraphWalker, Graph: "TT-S", NumWalks: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j)
	if st := j.Status(); st.State != StateDone || st.Result.Completed+st.Result.DeadEnded != 500 {
		t.Fatalf("baseline job: %+v", st)
	}
}

func TestManagerCancellationPartialResult(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	defer m.Close()
	j, err := m.Submit(JobSpec{Graph: "TT-S", NumWalks: 100_000, Seed: 1, CheckpointEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the first progress snapshot so the cancel lands mid-run.
	deadline := time.Now().Add(time.Minute)
	for j.progress.Load() == nil {
		if time.Now().After(deadline) {
			t.Fatal("job never reported progress")
		}
		time.Sleep(time.Millisecond)
	}
	if err := m.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j)
	st := j.Status()
	if st.State != StateCanceled {
		t.Fatalf("state %s, error %q", st.State, st.Error)
	}
	if !errors.Is(j.Err(), errs.ErrCanceled) {
		t.Errorf("error %v does not wrap ErrCanceled", j.Err())
	}
	var c *errs.Canceled
	if !errors.As(j.Err(), &c) {
		t.Error("errors.As failed to recover *errs.Canceled")
	}
	if st.Result == nil || !st.Result.Partial {
		t.Fatalf("canceled job has no partial result: %+v", st.Result)
	}
	if fin := st.Result.Completed + st.Result.DeadEnded; fin >= 100_000 {
		t.Errorf("canceled run claims %d finished walks", fin)
	}
}

func TestManagerBackpressure(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, QueueDepth: 1})
	defer m.Close()
	// Occupy the single worker with a long job, fill the one queue slot,
	// then watch the next submission bounce.
	long := JobSpec{Graph: "TT-S", NumWalks: 100_000, Seed: 1, CheckpointEvery: 64}
	j1, err := m.Submit(long)
	if err != nil {
		t.Fatal(err)
	}
	var j2 *Job
	rejected := false
	for i := 0; i < 3; i++ {
		j, err := m.Submit(long)
		if errors.Is(err, ErrQueueFull) {
			rejected = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		j2 = j
	}
	if !rejected {
		t.Fatal("queue of depth 1 accepted 3 concurrent submissions")
	}
	// Cancel what we queued so the test exits promptly.
	if err := m.Cancel(j1.ID); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j1)
	if j2 != nil {
		if err := m.Cancel(j2.ID); err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, j2)
		// j2 was canceled while queued: no result, still ErrCanceled.
		if st := j2.Status(); st.State != StateCanceled {
			t.Errorf("queued-then-canceled job state %s", st.State)
		}
	}
}

func TestManagerSubmitValidation(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	defer m.Close()
	if _, err := m.Submit(JobSpec{Graph: "nope"}); !errors.Is(err, errs.ErrUnknownDataset) {
		t.Errorf("unknown graph: %v", err)
	}
	if _, err := m.Submit(JobSpec{Graph: "TT-S", Kind: "warp-drive"}); !errors.Is(err, errs.ErrInvalidConfig) {
		t.Errorf("unknown kind: %v", err)
	}
	if _, err := m.Submit(JobSpec{Graph: "TT-S", NumWalks: -1}); !errors.Is(err, errs.ErrInvalidConfig) {
		t.Errorf("negative walks: %v", err)
	}
	if _, err := m.Get("job-999"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("unknown job: %v", err)
	}
}
