package service

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// managerMetrics are the service's aggregate counters, exported in
// Prometheus text exposition format by Metrics (no client library; the
// format is four lines of text per series).
type managerMetrics struct {
	submitted     atomic.Int64
	completed     atomic.Int64
	canceled      atomic.Int64
	failed        atomic.Int64
	rejected      atomic.Int64
	running       atomic.Int64
	walksFinished atomic.Int64
	hops          atomic.Int64

	// Admission rejections by reason (each also bumps rejected).
	rejInvalid      atomic.Int64
	rejUnknownGraph atomic.Int64
	rejQueueFull    atomic.Int64
	rejRateLimited  atomic.Int64
	rejTenantQuota  atomic.Int64

	// Mapping-table query-cache aggregates across FlashWalker jobs.
	queryCacheHits   atomic.Int64
	queryCacheMisses atomic.Int64

	// corpusEngineRuns counts "deepwalk" jobs that had to invoke the walk
	// engine (corpus-cache misses); cache-served jobs don't touch it.
	corpusEngineRuns atomic.Int64

	// Fault-injection aggregates across fault-enabled jobs.
	faultReadErrors atomic.Int64
	faultRetries    atomic.Int64
	faultStalls     atomic.Int64
	chipsDegraded   atomic.Int64
	faultReroutes   atomic.Int64

	// Failed durability writes by kind (best-effort degradation is
	// observable here, not just in one log line per job).
	persistErrJournal   atomic.Int64
	persistErrSnapshot  atomic.Int64
	persistErrSpool     atomic.Int64
	persistErrRetention atomic.Int64

	// jobsPruned counts terminal jobs whose durable state the retention
	// policy removed.
	jobsPruned atomic.Int64
}

// Metrics renders the service counters in Prometheus text format.
func (m *Manager) Metrics() string {
	var b strings.Builder
	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("flashwalker_jobs_submitted_total", "Jobs accepted into the queue.", m.metrics.submitted.Load())
	counter("flashwalker_jobs_completed_total", "Jobs that ran to completion.", m.metrics.completed.Load())
	counter("flashwalker_jobs_canceled_total", "Jobs canceled before completion.", m.metrics.canceled.Load())
	counter("flashwalker_jobs_failed_total", "Jobs that ended in an error.", m.metrics.failed.Load())
	counter("flashwalker_jobs_rejected_total", "Submissions rejected (validation or admission control).", m.metrics.rejected.Load())
	fmt.Fprintf(&b, "# HELP flashwalker_admission_rejected_total Submissions rejected by admission control, by reason.\n"+
		"# TYPE flashwalker_admission_rejected_total counter\n")
	for _, r := range []struct {
		reason string
		v      int64
	}{
		{"invalid_config", m.metrics.rejInvalid.Load()},
		{"unknown_graph", m.metrics.rejUnknownGraph.Load()},
		{"queue_full", m.metrics.rejQueueFull.Load()},
		{"rate_limited", m.metrics.rejRateLimited.Load()},
		{"tenant_quota", m.metrics.rejTenantQuota.Load()},
	} {
		fmt.Fprintf(&b, "flashwalker_admission_rejected_total{reason=%q} %d\n", r.reason, r.v)
	}
	counter("flashwalker_walks_finished_total", "Walks finished across all jobs (including partial runs).", m.metrics.walksFinished.Load())
	counter("flashwalker_hops_total", "Walk hops simulated across all jobs.", m.metrics.hops.Load())
	counter("flashwalker_query_cache_hits_total", "Mapping-table query-cache hits across FlashWalker jobs.", m.metrics.queryCacheHits.Load())
	counter("flashwalker_query_cache_misses_total", "Mapping-table query-cache misses across FlashWalker jobs.", m.metrics.queryCacheMisses.Load())
	var corpusHits, corpusMisses uint64
	if m.corpora != nil {
		corpusHits, corpusMisses = m.corpora.Stats()
	}
	counter("flashwalker_corpus_cache_hits_total", "DeepWalk corpus-cache hits (jobs served without running the engine).", int64(corpusHits))
	counter("flashwalker_corpus_cache_misses_total", "DeepWalk corpus-cache misses.", int64(corpusMisses))
	counter("flashwalker_corpus_engine_runs_total", "DeepWalk jobs that invoked the walk engine.", m.metrics.corpusEngineRuns.Load())
	counter("flashwalker_fault_read_errors_total", "Injected uncorrectable read errors across fault-enabled jobs.", m.metrics.faultReadErrors.Load())
	counter("flashwalker_fault_retries_total", "Read retries issued in response to injected errors.", m.metrics.faultRetries.Load())
	counter("flashwalker_fault_plane_busy_stalls_total", "Injected plane-busy stalls.", m.metrics.faultStalls.Load())
	counter("flashwalker_fault_chips_degraded_total", "Chips driven into sticky degradation.", m.metrics.chipsDegraded.Load())
	counter("flashwalker_fault_reroutes_total", "Walks rerouted from degraded chips to their channel accelerator.", m.metrics.faultReroutes.Load())
	fmt.Fprintf(&b, "# HELP flashwalker_persist_errors_total Durability writes that failed (best-effort degradation), by kind.\n"+
		"# TYPE flashwalker_persist_errors_total counter\n")
	for _, k := range []struct {
		kind string
		v    int64
	}{
		{persistKindJournal, m.metrics.persistErrJournal.Load()},
		{persistKindSnapshot, m.metrics.persistErrSnapshot.Load()},
		{persistKindSpool, m.metrics.persistErrSpool.Load()},
		{persistKindRetention, m.metrics.persistErrRetention.Load()},
	} {
		fmt.Fprintf(&b, "flashwalker_persist_errors_total{kind=%q} %d\n", k.kind, k.v)
	}
	counter("flashwalker_jobs_pruned_total", "Terminal jobs whose durable state retention removed.", m.metrics.jobsPruned.Load())
	gauge("flashwalker_jobs_running", "Jobs currently executing.", m.metrics.running.Load())
	m.mu.Lock()
	qLen, qCap := m.fq.len(), m.fq.depth
	m.mu.Unlock()
	gauge("flashwalker_queue_depth", "Jobs waiting in the bounded queue.", int64(qLen))
	gauge("flashwalker_queue_capacity", "Bounded queue capacity.", int64(qCap))
	gauge("flashwalker_graphs_registered", "Graphs in the registry.", int64(len(m.reg.List())))
	return b.String()
}
