package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"

	"flashwalker/internal/core"
	"flashwalker/internal/errs"
	"flashwalker/internal/graph"
	"flashwalker/internal/harness"
)

// mutationProbe inspects a registry dataset and returns an existing edge
// whose source vertex is safely below the partitioning's dense-vertex
// threshold, so deleting and re-inserting it is always a valid stream, plus
// a destination that is NOT an out-neighbor (for delete-must-exist tests).
func mutationProbe(t *testing.T, name string) (src, dst, missing graph.VertexID, weighted bool) {
	t.Helper()
	reg := NewRegistry()
	g, ds, err := reg.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	pc := harness.FlashWalkerConfig(ds, core.AllOptions(), 500, 1).PartCfg
	cap := pc.EdgesPerBlock(g.Weighted())
	n := g.NumVertices()
	for v := graph.VertexID(0); v < n; v++ {
		if d := g.OutDegree(v); d >= 1 && uint64(d)+1 < cap {
			adj := g.OutEdges(v)
			src, dst = v, adj[0]
			// The adjacency is sorted; the first gap is a missing edge.
			missing = graph.VertexID(0)
			for _, w := range adj {
				if w != missing {
					break
				}
				missing++
			}
			return src, dst, missing, g.Weighted()
		}
	}
	t.Fatalf("dataset %q has no sparse vertex with out-edges", name)
	return 0, 0, 0, false
}

// insertWeight returns a weight valid for an insert on the probed graph.
func insertWeight(weighted bool) float32 {
	if weighted {
		return 1
	}
	return 0
}

// TestManagerMutationJob runs a FlashWalker job with a mutation stream
// through the manager: the At == 0 prefix (a delete/re-insert pair on a
// real edge) must be applied and reported in the result.
func TestManagerMutationJob(t *testing.T) {
	src, dst, _, weighted := mutationProbe(t, "TT-S")
	m := newTestManager(t, Config{Workers: 1})
	defer m.Close()
	ms := graph.MutationStream{
		{At: 0, Op: graph.OpDeleteEdge, Src: src, Dst: dst},
		{At: 0, Op: graph.OpInsertEdge, Src: src, Dst: dst, Weight: insertWeight(weighted)},
	}
	j, err := m.Submit(JobSpec{Graph: "TT-S", NumWalks: 500, Seed: 1, Mutations: ms})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j)
	st := j.Status()
	if st.State != StateDone {
		t.Fatalf("state %s, error %q", st.State, st.Error)
	}
	if st.Result.Completed+st.Result.DeadEnded != 500 {
		t.Fatalf("bad result: %+v", st.Result)
	}
	if st.Result.MutationsApplied != uint64(len(ms)) {
		t.Fatalf("mutations_applied = %d, want %d", st.Result.MutationsApplied, len(ms))
	}
}

// TestManagerMutationSubmitValidation proves every malformed stream is
// rejected at submission with the typed invalid-config error — a 400 at
// the HTTP layer, never an asynchronous worker failure.
func TestManagerMutationSubmitValidation(t *testing.T) {
	src, dst, missing, weighted := mutationProbe(t, "TT-S")
	m := newTestManager(t, Config{Workers: 1})
	defer m.Close()
	w := insertWeight(weighted)
	badWeight := float32(1.5)
	if weighted {
		badWeight = 0 // weighted graphs require a positive insert weight
	}
	overlong := make(graph.MutationStream, maxMutations+1)
	bad := map[string]JobSpec{
		"time-unsorted": {Graph: "TT-S", Mutations: graph.MutationStream{
			{At: 10, Op: graph.OpInsertEdge, Src: src, Dst: dst, Weight: w},
			{At: 5, Op: graph.OpInsertEdge, Src: src, Dst: dst, Weight: w},
		}},
		"negative-time": {Graph: "TT-S", Mutations: graph.MutationStream{
			{At: -1, Op: graph.OpInsertEdge, Src: src, Dst: dst, Weight: w},
		}},
		"unknown-op": {Graph: "TT-S", Mutations: graph.MutationStream{
			{Op: "rewire", Src: src, Dst: dst},
		}},
		"missing-edge-delete": {Graph: "TT-S", Mutations: graph.MutationStream{
			{Op: graph.OpDeleteEdge, Src: src, Dst: missing},
		}},
		"weight-mismatch": {Graph: "TT-S", Mutations: graph.MutationStream{
			{Op: graph.OpInsertEdge, Src: src, Dst: dst, Weight: badWeight},
		}},
		"vertex-out-of-range": {Graph: "TT-S", Mutations: graph.MutationStream{
			{Op: graph.OpInsertEdge, Src: 1 << 40, Dst: dst, Weight: w},
		}},
		"baseline-with-stream": {Kind: KindGraphWalker, Graph: "TT-S", Mutations: graph.MutationStream{
			{Op: graph.OpInsertEdge, Src: src, Dst: dst, Weight: w},
		}},
		"overlong-stream": {Graph: "TT-S", Mutations: overlong},
	}
	for name, spec := range bad {
		if _, err := m.Submit(spec); !errors.Is(err, errs.ErrInvalidConfig) {
			t.Errorf("%s: accepted (err=%v)", name, err)
		}
	}
}

// TestServiceMutationHTTP400 drives the HTTP surface: a malformed stream in
// the submission body is a 400 with the invalid_config code.
func TestServiceMutationHTTP400(t *testing.T) {
	srv, _ := newTestServer(t, Config{Workers: 1})
	body := strings.NewReader(`{"graph":"TT-S","mutations":[{"at_ns":-1,"op":"insert","src":0,"dst":0}]}`)
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	var env errorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != "invalid_config" {
		t.Fatalf("error code %q, want invalid_config", env.Error.Code)
	}
}

// TestDeepWalkMutatedCorpusKey is the service-level regression test for the
// corpus-cache key bug: a corpus generated on a mutated graph must never be
// served for an unmutated job or a differently mutated one — the mutation
// stream hash is part of the cache key.
func TestDeepWalkMutatedCorpusKey(t *testing.T) {
	src, dst, _, _ := mutationProbe(t, "TT-S")
	m := newTestManager(t, Config{Workers: 1})
	defer m.Close()

	plain := JobSpec{Kind: KindDeepWalk, Graph: "TT-S", Seed: 7, WalksPerVertex: 1, WalkLength: 4}
	mutated := plain
	mutated.Mutations = graph.MutationStream{{Op: graph.OpDeleteEdge, Src: src, Dst: dst}}

	run := func(spec JobSpec) *JobResult {
		t.Helper()
		j, err := m.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, j)
		st := j.Status()
		if st.State != StateDone {
			t.Fatalf("state %s, error %q", st.State, st.Error)
		}
		return st.Result
	}

	r1 := run(plain)
	if r1.CorpusCached || m.CorpusEngineRuns() != 1 {
		t.Fatalf("plain job: cached=%v runs=%d", r1.CorpusCached, m.CorpusEngineRuns())
	}
	// Before the key fix this submission hit the plain job's cache entry
	// and never invoked the engine — the mutated graph was ignored.
	r2 := run(mutated)
	if r2.CorpusCached {
		t.Fatal("mutated job was served the unmutated corpus from the cache")
	}
	if m.CorpusEngineRuns() != 2 {
		t.Fatalf("mutated job did not run the engine (runs=%d)", m.CorpusEngineRuns())
	}
	if r2.CorpusSHA256 == r1.CorpusSHA256 {
		t.Fatal("deleting a walked edge left the corpus byte-identical")
	}
	// Resubmissions hit their own entries; the counter stays put.
	if r := run(mutated); !r.CorpusCached || r.CorpusSHA256 != r2.CorpusSHA256 {
		t.Fatalf("mutated resubmission missed its cache entry: %+v", r)
	}
	if r := run(plain); !r.CorpusCached || r.CorpusSHA256 != r1.CorpusSHA256 {
		t.Fatalf("plain resubmission missed its cache entry: %+v", r)
	}
	if m.CorpusEngineRuns() != 2 {
		t.Fatalf("cache hits invoked the engine (runs=%d)", m.CorpusEngineRuns())
	}
}
