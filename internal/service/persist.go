package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"sort"
	"strconv"
	"strings"
	"time"

	"flashwalker/internal/core"
	"flashwalker/internal/snapshot"
)

// Durable job state. When the manager has a blob store (Config.Store, or
// Config.StateDir wrapped in the byte-compatible FS store) it keeps three
// families of keys in it:
//
//	jobs/<id>.json         one JSON journal record per job, atomically
//	                       rewritten at submit, start, and finish
//	snapshots/<id>.snap    the job's latest FULL engine snapshot
//	                       (codec container), removed at finish
//	snapshots/<id>.dN.snap delta containers chained to the full snapshot
//	                       (single-board FlashWalker jobs only), each
//	                       naming its base by the preceding container's
//	                       SHA-256 seal; removed at the next full cut and
//	                       at finish
//	streams/<id>.ndjson    the completed-walk stream spool
//
// On startup the manager replays the journal: terminal jobs come back as
// history, queued and running jobs are re-enqueued. A re-enqueued running
// job resumes from its last consistent snapshot image — the full container
// plus the longest verifiable delta chain on top of it; otherwise it
// re-runs from the start, which — the engines being deterministic —
// produces the identical result, just later. Journal and snapshot writes
// are best-effort: a full disk (or unreachable store) degrades durability,
// never a running job — but every failed write now counts in
// flashwalker_persist_errors_total and logs once per job.

// Snapshot container kind tags.
const (
	snapKindCore     = "flashwalker-core-engine"
	snapKindDelta    = "flashwalker-core-delta"
	snapKindArray    = "flashwalker-core-array"
	snapKindBaseline = "flashwalker-baseline-engine"
)

// defaultSnapshotDeltas is the delta-chain length between full snapshot
// cuts when Config.SnapshotDeltas is 0.
const defaultSnapshotDeltas = 4

// Persist-error kinds, the label values of
// flashwalker_persist_errors_total.
const (
	persistKindJournal   = "journal"
	persistKindSnapshot  = "snapshot"
	persistKindSpool     = "spool"
	persistKindRetention = "retention"
)

// jobRecord is the journal shape of one job.
type jobRecord struct {
	ID        string     `json:"id"`
	Spec      JobSpec    `json:"spec"`
	State     string     `json:"state"`
	Error     string     `json:"error,omitempty"`
	Submitted time.Time  `json:"submitted_at"`
	Started   time.Time  `json:"started_at,omitempty"`
	Finished  time.Time  `json:"finished_at,omitempty"`
	Result    *JobResult `json:"result,omitempty"`
}

func jobKey(id string) string      { return "jobs/" + id + ".json" }
func snapshotKey(id string) string { return "snapshots/" + id + ".snap" }
func streamKey(id string) string   { return "streams/" + id + ".ndjson" }

// deltaKey names the n-th delta container (1-based) in a job's chain.
func deltaKey(id string, n int) string {
	return fmt.Sprintf("snapshots/%s.d%d.snap", id, n)
}

// deltaPrefix matches exactly one job's delta containers: "job-1.d" cannot
// prefix "job-10.d1.snap" because the character after the shared "job-1"
// differs ("." vs "0").
func deltaPrefix(id string) string { return "snapshots/" + id + ".d" }

// persistError records one failed durability write: counted by kind in
// flashwalker_persist_errors_total and logged once per job on the first
// failure, so best-effort degradation is observable instead of invisible.
// j may be nil for writes not tied to one job (retention).
func (m *Manager) persistError(j *Job, kind string, err error) {
	switch kind {
	case persistKindJournal:
		m.metrics.persistErrJournal.Add(1)
	case persistKindSnapshot:
		m.metrics.persistErrSnapshot.Add(1)
	case persistKindSpool:
		m.metrics.persistErrSpool.Add(1)
	default:
		m.metrics.persistErrRetention.Add(1)
	}
	if j == nil {
		log.Printf("service: %s persistence error: %v", kind, err)
		return
	}
	if j.persistLogged.CompareAndSwap(false, true) {
		log.Printf("service: job %s: durability degraded (%s write failed; further failures counted, not logged): %v",
			j.ID, kind, err)
	}
}

// journal rewrites j's journal record. Best-effort; no-op without a store.
func (m *Manager) journal(j *Job) {
	if m.store == nil {
		return
	}
	j.mu.Lock()
	rec := jobRecord{
		ID: j.ID, Spec: j.Spec, State: j.state,
		Submitted: j.Submitted, Started: j.started, Finished: j.finished,
		Result: j.result,
	}
	if j.err != nil {
		rec.Error = j.err.Error()
	}
	j.mu.Unlock()
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		m.persistError(j, persistKindJournal, err)
		return
	}
	if err := m.store.Put(jobKey(j.ID), data); err != nil {
		m.persistError(j, persistKindJournal, err)
	}
}

// dropSnapshot removes a terminal job's snapshot containers — the full
// image and any delta chain; the journal record is the durable trace that
// remains.
func (m *Manager) dropSnapshot(j *Job) {
	if m.store == nil {
		return
	}
	if err := m.store.Delete(snapshotKey(j.ID)); err != nil {
		m.persistError(j, persistKindSnapshot, err)
	}
	keys, err := m.store.List(deltaPrefix(j.ID))
	if err != nil {
		m.persistError(j, persistKindSnapshot, err)
		return
	}
	for _, k := range keys {
		if err := m.store.Delete(k); err != nil {
			m.persistError(j, persistKindSnapshot, err)
		}
	}
}

// putSnap encodes v into a kind-tagged container and stores it under key,
// returning the container's seal. Failures are counted, not fatal: the
// previous blob (if any) stays in place thanks to atomic Put.
func (m *Manager) putSnap(j *Job, key, kind string, v any) ([32]byte, bool) {
	var zero [32]byte
	data, err := snapshot.Encode(kind, v)
	if err != nil {
		m.persistError(j, persistKindSnapshot, err)
		return zero, false
	}
	if err := m.store.Put(key, data); err != nil {
		m.persistError(j, persistKindSnapshot, err)
		return zero, false
	}
	seal, err := snapshot.Seal(data)
	if err != nil {
		m.persistError(j, persistKindSnapshot, err)
		return zero, false
	}
	return seal, true
}

// getSnap fetches and decodes a container, returning its seal alongside.
func (m *Manager) getSnap(key, kind string, v any) ([32]byte, error) {
	var zero [32]byte
	data, err := m.store.Get(key)
	if err != nil {
		return zero, err
	}
	if err := snapshot.Decode(data, kind, v); err != nil {
		return zero, err
	}
	seal, err := snapshot.Seal(data)
	if err != nil {
		return zero, err
	}
	return seal, nil
}

// coreSnapWriter drives a single-board FlashWalker job's checkpoint chain:
// a full snapshot container, then up to maxDeltas delta containers each
// chaining to its predecessor by seal, then a fresh full cut (which
// retires the superseded chain). A failed write never advances the chain
// head — the next cut diffs against the last image actually stored, so the
// chain on the store is always internally consistent, just coarser.
type coreSnapWriter struct {
	m         *Manager
	j         *Job
	maxDeltas int
	lastWrite time.Time
	base      *core.Snapshot
	baseSHA   [32]byte
	deltas    int
}

func (w *coreSnapWriter) write(s *core.Snapshot) {
	// Serializing the engine image is throttled to at most one write per
	// snapshotMinInterval of wall time so short checkpoint intervals don't
	// turn the job into an fsync loop.
	if time.Since(w.lastWrite) < snapshotMinInterval {
		return
	}
	w.lastWrite = time.Now()
	if w.base != nil && w.deltas < w.maxDeltas {
		d := core.DiffSnapshot(w.base, s, w.baseSHA, w.deltas+1)
		if sha, ok := w.m.putSnap(w.j, deltaKey(w.j.ID, w.deltas+1), snapKindDelta, d); ok {
			w.deltas++
			w.base, w.baseSHA = s, sha
		}
		return
	}
	sha, ok := w.m.putSnap(w.j, snapshotKey(w.j.ID), snapKindCore, s)
	if !ok {
		return
	}
	retire := w.deltas
	w.base, w.baseSHA, w.deltas = s, sha, 0
	// The new full image supersedes the old chain; stale deltas chained to
	// the previous full snapshot must not survive it (their BaseSHA would
	// fail verification anyway, but leaving them would leak storage).
	for n := 1; n <= retire; n++ {
		if err := w.m.store.Delete(deltaKey(w.j.ID, n)); err != nil {
			w.m.persistError(w.j, persistKindSnapshot, err)
		}
	}
}

// loadCoreSnap reads a job's checkpoint chain — the full container plus
// any delta containers — and reconstructs the most recent consistent
// image. A delta that is missing, corrupt, mis-chained (BaseSHA does not
// match the container before it), or structurally inapplicable ends the
// walk: the prefix up to it is still a consistent cut, and the engine's
// determinism makes resuming from any consistent cut result-identical.
// Returns the image, the seal of the last container consumed, and the
// chain position, so a resumed job's writer continues the chain in place.
func (m *Manager) loadCoreSnap(id string) (*core.Snapshot, [32]byte, int, bool) {
	var full core.Snapshot
	sha, err := m.getSnap(snapshotKey(id), snapKindCore, &full)
	if err != nil {
		return nil, sha, 0, false
	}
	cur := &full
	n := 0
	for {
		var d core.SnapshotDelta
		dsha, err := m.getSnap(deltaKey(id, n+1), snapKindDelta, &d)
		if err != nil {
			break
		}
		if d.BaseSHA != sha {
			break
		}
		next, err := core.ApplyDelta(cur, &d)
		if err != nil {
			break
		}
		cur, sha = next, dsha
		n++
	}
	return cur, sha, n, true
}

// jobSeq extracts the numeric suffix of a "job-N" ID.
func jobSeq(id string) (uint64, bool) {
	s, ok := strings.CutPrefix(id, "job-")
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseUint(s, 10, 64)
	return n, err == nil
}

// recoverJobs replays the journal into the manager's tables and returns
// the non-terminal jobs to re-enqueue, oldest first. Unreadable or
// malformed records are skipped — recovery restores what it can rather
// than refusing to start.
func (m *Manager) recoverJobs() ([]*Job, error) {
	keys, err := m.store.List("jobs/")
	if err != nil {
		return nil, err
	}
	var recs []jobRecord
	for _, key := range keys {
		if !strings.HasSuffix(key, ".json") {
			continue
		}
		data, err := m.store.Get(key)
		if err != nil {
			continue
		}
		var rec jobRecord
		if json.Unmarshal(data, &rec) != nil || rec.ID == "" {
			continue
		}
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(i, j int) bool {
		a, _ := jobSeq(recs[i].ID)
		b, _ := jobSeq(recs[j].ID)
		if a != b {
			return a < b
		}
		return recs[i].ID < recs[j].ID
	})

	var pending []*Job
	for _, rec := range recs {
		if _, dup := m.jobs[rec.ID]; dup {
			continue
		}
		if n, ok := jobSeq(rec.ID); ok && n > m.seq {
			m.seq = n
		}
		ctx, cancel := context.WithCancel(m.baseCtx)
		j := &Job{
			ID: rec.ID, Spec: rec.Spec, Submitted: rec.Submitted,
			ctx: ctx, cancel: cancel, done: make(chan struct{}),
		}
		switch rec.State {
		case StateDone, StateCanceled, StateFailed:
			j.state = rec.State
			j.result = rec.Result
			j.started, j.finished = rec.Started, rec.Finished
			if rec.Error != "" {
				j.err = errors.New(rec.Error)
			}
			close(j.done)
		default:
			// Queued and running jobs go back on the queue; a previously
			// running job resumes from its last snapshot when it has one.
			j.state = StateQueued
			pending = append(pending, j)
		}
		m.jobs[j.ID] = j
		m.order = append(m.order, j.ID)
	}
	return pending, nil
}

// pruneTerminal enforces the retention policy: keep the newest RetainJobs
// terminal jobs (0 = unlimited) and drop terminal jobs whose finish time
// is older than RetainAge (0 = no age bound). Pruning removes the job's
// journal, spool, and any leftover snapshot containers from the store AND
// the job from the manager's tables, oldest-first in submission order.
// Non-terminal jobs are never touched. Runs at startup (after recovery)
// and after every finish.
func (m *Manager) pruneTerminal() {
	if m.store == nil || (m.retainJobs <= 0 && m.retainAge <= 0) {
		return
	}
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		if j := m.jobs[id]; j != nil {
			jobs = append(jobs, j)
		}
	}
	m.mu.Unlock()

	type termJob struct {
		j        *Job
		finished time.Time
	}
	var term []termJob
	for _, j := range jobs {
		j.mu.Lock()
		terminal := j.state == StateDone || j.state == StateCanceled || j.state == StateFailed
		fin := j.finished
		j.mu.Unlock()
		if terminal {
			term = append(term, termJob{j, fin})
		}
	}

	prune := map[string]bool{}
	if m.retainJobs > 0 {
		for i := 0; i < len(term)-m.retainJobs; i++ {
			prune[term[i].j.ID] = true
		}
	}
	if m.retainAge > 0 {
		cutoff := time.Now().Add(-m.retainAge)
		for _, tj := range term {
			if !tj.finished.IsZero() && tj.finished.Before(cutoff) {
				prune[tj.j.ID] = true
			}
		}
	}
	if len(prune) == 0 {
		return
	}

	m.mu.Lock()
	kept := m.order[:0]
	for _, id := range m.order {
		if prune[id] {
			delete(m.jobs, id)
		} else {
			kept = append(kept, id)
		}
	}
	m.order = kept
	m.mu.Unlock()

	for id := range prune {
		for _, key := range []string{jobKey(id), streamKey(id), snapshotKey(id)} {
			if err := m.store.Delete(key); err != nil {
				m.persistError(nil, persistKindRetention, err)
			}
		}
		keys, err := m.store.List(deltaPrefix(id))
		if err != nil {
			m.persistError(nil, persistKindRetention, err)
			continue
		}
		for _, key := range keys {
			if err := m.store.Delete(key); err != nil {
				m.persistError(nil, persistKindRetention, err)
			}
		}
		m.metrics.jobsPruned.Add(1)
	}
}
