package service

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"flashwalker/internal/snapshot"
)

// Durable job state. When Config.StateDir is set the manager keeps two
// things under it:
//
//	<stateDir>/jobs/<id>.json       one JSON journal record per job,
//	                                atomically rewritten at submit, start,
//	                                and finish
//	<stateDir>/snapshots/<id>.snap  the job's latest engine snapshot
//	                                (codec container), rewritten at the
//	                                checkpoint cadence, removed at finish
//
// On startup the manager replays the journal: terminal jobs come back as
// history, queued and running jobs are re-enqueued. A re-enqueued running
// job resumes from its last snapshot when one is readable; otherwise it
// re-runs from the start, which — the engines being deterministic —
// produces the identical result, just later. Journal and snapshot writes
// are best-effort: a full disk degrades durability, never a running job.

// Snapshot container kind tags.
const (
	snapKindCore     = "flashwalker-core-engine"
	snapKindArray    = "flashwalker-core-array"
	snapKindBaseline = "flashwalker-baseline-engine"
)

// jobRecord is the journal shape of one job.
type jobRecord struct {
	ID        string     `json:"id"`
	Spec      JobSpec    `json:"spec"`
	State     string     `json:"state"`
	Error     string     `json:"error,omitempty"`
	Submitted time.Time  `json:"submitted_at"`
	Started   time.Time  `json:"started_at,omitempty"`
	Finished  time.Time  `json:"finished_at,omitempty"`
	Result    *JobResult `json:"result,omitempty"`
}

func (m *Manager) jobPath(id string) string {
	return filepath.Join(m.stateDir, "jobs", id+".json")
}

func (m *Manager) snapshotPath(id string) string {
	return filepath.Join(m.stateDir, "snapshots", id+".snap")
}

// streamPath is a job's completed-walk spool: NDJSON, one wire-format
// WalkRecord per line, kept after the job finishes so /stream replays
// survive a restart.
func (m *Manager) streamPath(id string) string {
	return filepath.Join(m.stateDir, "streams", id+".ndjson")
}

// journal rewrites j's journal record. Best-effort; no-op without a state
// directory.
func (m *Manager) journal(j *Job) {
	if m.stateDir == "" {
		return
	}
	j.mu.Lock()
	rec := jobRecord{
		ID: j.ID, Spec: j.Spec, State: j.state,
		Submitted: j.Submitted, Started: j.started, Finished: j.finished,
		Result: j.result,
	}
	if j.err != nil {
		rec.Error = j.err.Error()
	}
	j.mu.Unlock()
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return
	}
	_ = snapshot.WriteFileAtomic(m.jobPath(j.ID), data, 0o644)
}

// dropSnapshot removes a terminal job's snapshot; the journal record is
// the durable trace that remains.
func (m *Manager) dropSnapshot(id string) {
	if m.stateDir != "" {
		os.Remove(m.snapshotPath(id))
	}
}

// jobSeq extracts the numeric suffix of a "job-N" ID.
func jobSeq(id string) (uint64, bool) {
	s, ok := strings.CutPrefix(id, "job-")
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseUint(s, 10, 64)
	return n, err == nil
}

// recoverJobs replays the journal into the manager's tables and returns
// the non-terminal jobs to re-enqueue, oldest first. Unreadable or
// malformed records are skipped — recovery restores what it can rather
// than refusing to start.
func (m *Manager) recoverJobs() ([]*Job, error) {
	entries, err := os.ReadDir(filepath.Join(m.stateDir, "jobs"))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	var recs []jobRecord
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(m.stateDir, "jobs", ent.Name()))
		if err != nil {
			continue
		}
		var rec jobRecord
		if json.Unmarshal(data, &rec) != nil || rec.ID == "" {
			continue
		}
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(i, j int) bool {
		a, _ := jobSeq(recs[i].ID)
		b, _ := jobSeq(recs[j].ID)
		if a != b {
			return a < b
		}
		return recs[i].ID < recs[j].ID
	})

	var pending []*Job
	for _, rec := range recs {
		if _, dup := m.jobs[rec.ID]; dup {
			continue
		}
		if n, ok := jobSeq(rec.ID); ok && n > m.seq {
			m.seq = n
		}
		ctx, cancel := context.WithCancel(m.baseCtx)
		j := &Job{
			ID: rec.ID, Spec: rec.Spec, Submitted: rec.Submitted,
			ctx: ctx, cancel: cancel, done: make(chan struct{}),
		}
		switch rec.State {
		case StateDone, StateCanceled, StateFailed:
			j.state = rec.State
			j.result = rec.Result
			j.started, j.finished = rec.Started, rec.Finished
			if rec.Error != "" {
				j.err = errors.New(rec.Error)
			}
			close(j.done)
		default:
			// Queued and running jobs go back on the queue; a previously
			// running job resumes from its last snapshot when it has one.
			j.state = StateQueued
			pending = append(pending, j)
		}
		m.jobs[j.ID] = j
		m.order = append(m.order, j.ID)
	}
	return pending, nil
}
