package service

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestManagerCloseDrainsQueue is the regression test for the lifecycle bug
// where Close left queued jobs in StateQueued forever with their Done
// channels never closing: after Close, every job the manager ever accepted
// must be terminal.
func TestManagerCloseDrainsQueue(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, QueueDepth: 4})
	long := JobSpec{Graph: "TT-S", NumWalks: 100_000, Seed: 1, CheckpointEvery: 64}
	jobs := []*Job{}
	// One job occupies the single worker; the rest sit in the queue.
	for i := 0; i < 4; i++ {
		j, err := m.Submit(long)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	m.Close()
	for _, st := range m.List() {
		switch st.State {
		case StateDone, StateCanceled, StateFailed:
		default:
			t.Errorf("job %s left in non-terminal state %q after Close", st.ID, st.State)
		}
	}
	for _, j := range jobs {
		select {
		case <-j.Done():
		default:
			t.Errorf("job %s Done channel still open after Close", j.ID)
		}
	}
}

// TestManagerCancelQueuedImmediate is the regression test for Cancel on a
// still-queued job: it must move straight to canceled — Done closed, no
// engine run — without waiting for a worker to pull it off the queue.
func TestManagerCancelQueuedImmediate(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, QueueDepth: 2})
	defer m.Close()
	long := JobSpec{Graph: "TT-S", NumWalks: 100_000, Seed: 1, CheckpointEvery: 64}
	j1, err := m.Submit(long) // occupies the worker
	if err != nil {
		t.Fatal(err)
	}
	j2, err := m.Submit(long) // stays queued behind it
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Cancel(j2.ID); err != nil {
		t.Fatal(err)
	}
	// The worker is still busy with j1, so only an immediate transition
	// can close j2's Done channel here.
	select {
	case <-j2.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("queued job not terminal after Cancel; it waited for a worker")
	}
	st := j2.Status()
	if st.State != StateCanceled {
		t.Fatalf("queued-then-canceled job state %q", st.State)
	}
	if st.StartedAt != nil {
		t.Error("canceled-while-queued job has a start time; it ran")
	}
	if err := m.Cancel(j1.ID); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j1)
}

// TestManagerRecoveryResumesFromSnapshot is the durable-jobs scenario: a
// job interrupted mid-run (journal says running, snapshot on disk) is
// re-enqueued on restart, resumes from the snapshot, and finishes with a
// result identical to an uninterrupted run of the same spec.
func TestManagerRecoveryResumesFromSnapshot(t *testing.T) {
	dir := t.TempDir()
	spec := JobSpec{Graph: "TT-S", NumWalks: 20_000, Seed: 5, CheckpointEvery: 64}

	// Reference result: the same spec run to completion, no persistence.
	mr := newTestManager(t, Config{Workers: 1})
	jr, err := mr.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, jr)
	ref := jr.Status().Result
	if ref == nil || jr.Status().State != StateDone {
		t.Fatalf("reference run: %+v", jr.Status())
	}
	mr.Close()

	// First life: run with persistence until a snapshot lands on disk, then
	// grab a copy and cancel.
	m1 := newTestManager(t, Config{Workers: 1, StateDir: dir})
	j1, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(dir, "snapshots", j1.ID+".snap")
	var saved []byte
	deadline := time.Now().Add(time.Minute)
	for {
		if b, err := os.ReadFile(snapPath); err == nil && len(b) > 0 {
			saved = b
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("running job never wrote a snapshot")
		}
		time.Sleep(time.Millisecond)
	}
	if err := m1.Cancel(j1.ID); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j1)
	m1.Close()

	// Forge the crash the cancel cleaned up after: journal back to running,
	// snapshot back on disk.
	jobPath := filepath.Join(dir, "jobs", j1.ID+".json")
	data, err := os.ReadFile(jobPath)
	if err != nil {
		t.Fatal(err)
	}
	var rec map[string]any
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	rec["state"] = StateRunning
	delete(rec, "result")
	delete(rec, "error")
	data, err = json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(jobPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snapPath, saved, 0o644); err != nil {
		t.Fatal(err)
	}

	// Second life: the job is recovered, resumed, and must converge on the
	// uninterrupted result exactly.
	m2 := newTestManager(t, Config{Workers: 1, StateDir: dir})
	defer m2.Close()
	j2, err := m2.Get(j1.ID)
	if err != nil {
		t.Fatalf("recovered manager lost job %s: %v", j1.ID, err)
	}
	waitTerminal(t, j2)
	st := j2.Status()
	if st.State != StateDone {
		t.Fatalf("recovered job state %q, error %q", st.State, st.Error)
	}
	if st.Result == nil || *st.Result != *ref {
		t.Fatalf("resumed result diverged:\n got %+v\nwant %+v", st.Result, ref)
	}
	if _, err := os.Stat(snapPath); !os.IsNotExist(err) {
		t.Errorf("snapshot survived job completion: %v", err)
	}
}

// TestManagerRecoveryHistoryAndSeq: terminal jobs come back as history
// (Done already closed, result intact), queued jobs re-run, and the ID
// sequence continues past the recovered jobs instead of colliding.
func TestManagerRecoveryHistoryAndSeq(t *testing.T) {
	dir := t.TempDir()
	m1 := newTestManager(t, Config{Workers: 1, StateDir: dir})
	spec := JobSpec{Graph: "TT-S", NumWalks: 500, Seed: 1}
	j1, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j1)
	doneResult := j1.Status().Result
	m1.Close()

	// Forge a queued job the first life never got to.
	rec := jobRecord{ID: "job-7", Spec: spec, State: StateQueued, Submitted: time.Now()}
	data, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "jobs", "job-7.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}

	m2 := newTestManager(t, Config{Workers: 1, StateDir: dir})
	defer m2.Close()

	// History: terminal, Done closed, result preserved verbatim.
	h, err := m2.Get(j1.ID)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-h.Done():
	default:
		t.Error("recovered terminal job's Done channel not closed")
	}
	if st := h.Status(); st.State != StateDone || st.Result == nil || *st.Result != *doneResult {
		t.Fatalf("recovered history mangled: %+v", st)
	}

	// The forged queued job runs to completion.
	q, err := m2.Get("job-7")
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, q)
	if st := q.Status(); st.State != StateDone {
		t.Fatalf("recovered queued job state %q, error %q", st.State, st.Error)
	}

	// Fresh submissions continue after the highest recovered ID.
	jn, err := m2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if jn.ID != "job-8" {
		t.Errorf("post-recovery ID %s, want job-8", jn.ID)
	}
	waitTerminal(t, jn)
}
